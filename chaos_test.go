package eventspace

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"eventspace/internal/viz"
)

// chaosTopology builds the crash-matrix system: an instrumented tree
// with a live load-balance monitor and a checkpointed archive recorder
// whose writer (and checkpointer) is armed with the given crash plan.
// Trace buffers are sized to retain the whole run, so a recovered
// front end can close its gather gap by re-reading them.
const (
	chaosIt1, chaosIt2 = 40, 40
	chaosPull          = 200 * time.Microsecond
)

// chaosDelay is the workload's deterministic straggler schedule: every
// thread gets a distinct (mod 8) delay each iteration, spaced 100us
// apart. The spacing dominates contention-scale timing noise (monitor
// gathers, recorder pulls), so each round's last-arrival verdict is
// fixed by the schedule alone — which is what lets a recovered run be
// compared byte-for-byte against an uncrashed control whose monitor
// traffic differed.
func chaosDelay(thread, iteration int) time.Duration {
	return time.Duration((iteration*3+thread)%8) * 100 * time.Microsecond
}

func chaosRun(t *testing.T, cps *CrashPoints) (out string) {
	t.Helper()
	dir1, dir2 := t.TempDir(), t.TempDir()
	var vizOut bytes.Buffer
	err := RunVirtual(func() error {
		sys, err := New(SingleTin(8), CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(TreeSpec{
			Name: "T", Fanout: 4, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 8192,
		})
		if err != nil {
			return err
		}
		cfg := DefaultMonitorConfig()
		cfg.PullInterval = chaosPull
		lb, err := sys.AttachLoadBalance(tree, SingleScope, cfg)
		if err != nil {
			return err
		}
		rec, err := sys.AttachArchiveCheckpointed(tree, chaosPull, ArchiveOptions{
			Dir: dir1, SegmentBytes: 4096, CrashPoints: cps,
		}, CheckpointConfig{EveryTuples: 256, Keep: 3})
		if err != nil {
			return err
		}
		if _, err := sys.RunWorkload(Workload{Trees: []*Tree{tree}, Iterations: chaosIt1, Delay: chaosDelay}); err != nil {
			return err
		}
		want1 := uint64(chaosIt1 * len(tree.Nodes))
		for i := 0; lb.RoundsObserved() < want1; i++ {
			if i > 5000 {
				t.Errorf("phase 1 observed %d rounds, want %d", lb.RoundsObserved(), want1)
				break
			}
			SleepOutside(100 * time.Microsecond)
		}
		// The front end dies at the quiesce point: recorder (mid-crash or
		// not) and monitor state are gone. Stop errors are the crash
		// surfacing, not test failures.
		rec.Stop()
		lb.Stop()
		if cps != nil && len(cps.Fired()) == 0 {
			t.Fatalf("armed crash site never fired (plan %+v)", cps.Specs)
		}

		// Recovery: checkpoint ladder plus archive suffix, then a
		// replacement monitor that re-reads the retained windows, and a
		// resumed recorder continuing into a fresh directory.
		lb2, st, err := sys.RecoverLoadBalance(tree, cfg, dir1)
		if err != nil {
			return err
		}
		if st.RoundsRecovered == 0 {
			t.Error("recovery rebuilt no rounds")
		}
		if !st.Resume.ReRead {
			t.Error("crash recovery handoff must re-read retained windows")
		}
		rec2, err := sys.ResumeArchiveFrom(tree, chaosPull, ArchiveOptions{
			Dir: dir2, SegmentBytes: 4096,
		}, st, nil)
		if err != nil {
			return err
		}
		if _, err := sys.RunWorkload(Workload{Trees: []*Tree{tree}, Iterations: chaosIt2, Delay: chaosDelay}); err != nil {
			return err
		}
		want := uint64((chaosIt1 + chaosIt2) * len(tree.Nodes))
		for i := 0; lb2.RoundsObserved() < want; i++ {
			if i > 5000 {
				t.Errorf("after recovery observed %d rounds, want %d", lb2.RoundsObserved(), want)
				break
			}
			SleepOutside(100 * time.Microsecond)
		}
		rec2.Stop()
		if err := rec2.Err(); err != nil {
			return err
		}
		if err := viz.WeightedTree(&vizOut, lb2.Weighted()); err != nil {
			return err
		}
		sys.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if vizOut.Len() == 0 {
		t.Fatal("empty weighted tree rendered")
	}
	return vizOut.String()
}

// chaosControl runs the same workload uncrashed, with the same
// checkpointed recorder but no failover, and renders the live weighted
// tree — the ground truth every crash-site recovery must reproduce.
func chaosControl(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	var vizOut bytes.Buffer
	err := RunVirtual(func() error {
		sys, err := New(SingleTin(8), CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(TreeSpec{
			Name: "T", Fanout: 4, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 8192,
		})
		if err != nil {
			return err
		}
		cfg := DefaultMonitorConfig()
		cfg.PullInterval = chaosPull
		lb, err := sys.AttachLoadBalance(tree, SingleScope, cfg)
		if err != nil {
			return err
		}
		rec, err := sys.AttachArchiveCheckpointed(tree, chaosPull, ArchiveOptions{
			Dir: dir, SegmentBytes: 4096,
		}, CheckpointConfig{EveryTuples: 256, Keep: 3})
		if err != nil {
			return err
		}
		for _, n := range []int{chaosIt1, chaosIt2} {
			if _, err := sys.RunWorkload(Workload{Trees: []*Tree{tree}, Iterations: n, Delay: chaosDelay}); err != nil {
				return err
			}
		}
		want := uint64((chaosIt1 + chaosIt2) * len(tree.Nodes))
		for i := 0; lb.RoundsObserved() < want; i++ {
			if i > 5000 {
				t.Errorf("control observed %d rounds, want %d", lb.RoundsObserved(), want)
				break
			}
			SleepOutside(100 * time.Microsecond)
		}
		rec.Stop()
		if err := rec.Err(); err != nil {
			return err
		}
		if err := viz.WeightedTree(&vizOut, lb.Weighted()); err != nil {
			return err
		}
		sys.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return vizOut.String()
}

// TestCrashMatrixRecoversByteIdentical is the chaos acceptance
// contract: for every seeded crash site — mid-block-flush, mid-seal,
// mid-rotate, mid-checkpoint-write — and three injection seeds, a front
// end killed at a quiesce point and recovered through the checkpoint
// ladder must end the run with a weighted tree byte-identical to the
// same workload run without any crash. Damage moves recovery down the
// fallback ladder; it must never change the answer.
func TestCrashMatrixRecoversByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is the long chaos suite")
	}
	control := chaosControl(t)
	sites := []struct {
		site  CrashSite
		count int
	}{
		{CrashBlockFlush, 3},
		{CrashSeal, 1},
		{CrashRotate, 1},
		{CrashCheckpoint, 2},
	}
	for _, sc := range sites {
		for seed := uint64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("%s/seed%d", sc.site, seed)
			sc := sc
			seed := seed
			t.Run(name, func(t *testing.T) {
				cps := &CrashPoints{Seed: seed, Specs: []CrashSpec{{Site: sc.site, Count: sc.count}}}
				got := chaosRun(t, cps)
				if got != control {
					t.Fatalf("recovered run diverged from uncrashed control\n--- control ---\n%s--- recovered ---\n%s",
						control, got)
				}
			})
		}
	}
}

// TestCrashMatrixUncrashedBaseline pins the harness itself: with no
// crash plan at all, the kill-at-quiesce + recover + resume path is
// also byte-identical to the straight-through control (the recovery
// machinery must be invisible when nothing is damaged).
func TestCrashMatrixUncrashedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is the long chaos suite")
	}
	control := chaosControl(t)
	got := chaosRun(t, nil)
	if got != control {
		t.Fatalf("uncrashed failover run diverged from control\n--- control ---\n%s--- got ---\n%s", control, got)
	}
}
