package eventspace

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. The
// experiment benches execute under the discrete-event virtual clock, so
// ns/op measures harness execution, while the reproduced quantities —
// overheads, per-op latencies, gather rates — are reported as custom
// metrics (paper_* values are the paper's figures where they are scalar).
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"eventspace/internal/bench"
	"eventspace/internal/cluster"
	"eventspace/internal/cosched"
	"eventspace/internal/monitor"
)

// reportRows logs every row and aggregates worst-case metrics.
func reportRows(b *testing.B, rows []bench.Row) {
	b.Helper()
	var maxOverhead, minGather float64
	minGather = 1
	for _, r := range rows {
		b.Log(r.String())
		if r.Overhead == r.Overhead && r.Overhead > maxOverhead { // NaN-safe
			maxOverhead = r.Overhead
		}
		for _, g := range []float64{r.GatherRate, r.WrapperGatherRate} {
			if g > 0 && g < minGather {
				minGather = g
			}
		}
	}
	b.ReportMetric(maxOverhead*100, "max_overhead_%")
	b.ReportMetric(minGather*100, "min_gather_%")
}

// BenchmarkSec5TopologyLatency reproduces section 5's average time per
// allreduce for each topology (paper: ~0.5 ms, ~0.6 ms, ~1 ms, ~65 ms).
func BenchmarkSec5TopologyLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Section5Topology(bench.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("%-24s per op %v  [paper %s]", r.Config, r.PerOp.Round(time.Microsecond), r.Paper)
			if i == 0 {
				unit := "us/" + strings.ReplaceAll(r.Config, " ", "_")
				b.ReportMetric(float64(r.PerOp.Microseconds()), unit)
			}
		}
	}
}

// BenchmarkSec61CollectionOverhead reproduces section 6.1: event
// collectors add 0-2% to gsum and compute-gsum.
func BenchmarkSec61CollectionOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Section61Collection(bench.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkTable1 reproduces the load-balance monitor with a single event
// scope (sequential gathering discards tuples; parallel costs <= 0.4%).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1(bench.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkTable2 reproduces the load-balance monitor with distributed
// analysis (0-3% overhead; 45-100% gather rates).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(bench.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkTable3 reproduces the statistics monitor: the 5-9% -> 3% -> 1%
// coscheduling ladder and the wrapper/thread gather rates.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3(bench.QuickOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkScalabilityTrees reproduces sections 6.2/6.3: monitoring one,
// two or four spanning trees does not increase overhead.
func BenchmarkScalabilityTrees(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.ScalabilityTrees(bench.QuickOptions(), bench.LBDistributed)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkAblationGatherHelpers sweeps the helper-thread count of the
// monitor's gather wrappers — the paper's central tuning knob — showing
// the sequential-to-parallel gather-rate crossover.
func BenchmarkAblationGatherHelpers(b *testing.B) {
	for _, helpers := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("helpers=%d", helpers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := bench.RunSpec{
					Testbed:     cluster.SingleTin(16),
					Fanout:      8,
					Trees:       2,
					Workload:    bench.Gsum,
					Iterations:  400,
					Monitor:     bench.LBDistributed,
					TimeScale:   1,
					TraceBufCap: 80,
				}
				cfg := monitor.DefaultConfig()
				cfg.GatewayHelpers, cfg.RootHelpers = helpers, helpers
				cfg.PullInterval = 400 * time.Microsecond
				cfg.AnalysisInterval = 500 * time.Microsecond
				cfg.IntermediateCap = 80
				spec.MonitorCfg = cfg
				res, err := bench.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.GatherRate*100, "gather_%")
			}
		})
	}
}

// BenchmarkAblationCosched sweeps the coscheduling strategy under the
// statistics monitor's analysis threads (the section 6.3.1 experiment).
func BenchmarkAblationCosched(b *testing.B) {
	for _, s := range []cosched.Strategy{cosched.None, cosched.AfterSend, cosched.AfterUnblock} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := bench.RunSpec{
					Testbed:     cluster.SingleTin(16),
					Fanout:      8,
					Trees:       2,
					Workload:    bench.Gsum,
					Iterations:  400,
					Monitor:     bench.StatsmNoGather,
					TimeScale:   1,
					TraceBufCap: 80,
				}
				cfg := monitor.DefaultConfig()
				cfg.Strategy = s
				cfg.IntermediateCap = 80
				spec.MonitorCfg = cfg
				ov, _, err := bench.Overhead(spec, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(ov*100, "overhead_%")
			}
		})
	}
}

// BenchmarkAblationTreeFanout sweeps the host-level fanout of the
// monitored allreduce tree (flat vs 4-way vs 8-way), the reconfiguration
// axis of the paper's earlier tuning work.
func BenchmarkAblationTreeFanout(b *testing.B) {
	for _, fanout := range []int{0, 2, 4, 8} {
		name := fmt.Sprintf("fanout=%d", fanout)
		if fanout == 0 {
			name = "flat"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := bench.RunSpec{
					Testbed:    cluster.SingleTin(16),
					Fanout:     fanout,
					Trees:      1,
					Workload:   bench.Gsum,
					Iterations: 300,
					Monitor:    bench.NoMonitor,
					TimeScale:  1,
				}
				res, err := bench.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.PerOp.Microseconds()), "us/op_modelled")
			}
		})
	}
}
