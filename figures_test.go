package eventspace

// Structural tests for the paper's figures: the instrumented allreduce
// spanning tree (figure 1), the collector -> event space -> event scope ->
// view pipeline (figure 2), the two load-balance monitor organizations
// (figure 3), and statsm's thread/gather-tree structure (figure 4).

import (
	"strings"
	"testing"
	"time"

	"eventspace/internal/analysis"
	"eventspace/internal/cluster"
	"eventspace/internal/collect"
	"eventspace/internal/core"
	"eventspace/internal/cosched"
	"eventspace/internal/monitor"
)

// TestFigure1Structure verifies the figure-1 anatomy: per-host allreduce
// wrappers joined into a tree, event collectors on every contributor path
// and after every allreduce wrapper, and EC pairs around each inter-host
// connection whose timestamps yield the two-way TCP latency.
func TestFigure1Structure(t *testing.T) {
	err := core.RunVirtual(func() error {
		sys, err := core.New(cluster.SingleTin(9), cosched.None)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(cluster.TreeSpec{
			Name: "fig1", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 64,
		})
		if err != nil {
			return err
		}
		// 9 hosts, 8-way: one root allreduce joining the local thread
		// plus 8 remote feeds.
		root := tree.Nodes[0]
		if root.AR.Fanin() != 9 {
			t.Errorf("root fan-in = %d", root.AR.Fanin())
		}
		if len(tree.Links) != 8 {
			t.Errorf("links = %d", len(tree.Links))
		}
		// Roles: one collective EC per wrapper, one contributor EC per
		// port, one client+server EC per link.
		if root.CollectiveEC.Meta().Role != collect.RoleCollective {
			t.Error("collective EC role wrong")
		}
		for i, ec := range root.ContribECs {
			m := ec.Meta()
			if m.Role != collect.RoleContributor || m.Contributor != i {
				t.Errorf("contributor EC %d meta = %+v", i, m)
			}
		}
		for _, lk := range tree.Links {
			if lk.ClientEC.Meta().Role != collect.RoleStubClient || lk.ServerEC.Meta().Role != collect.RoleStubServer {
				t.Errorf("link %s roles wrong", lk.Name)
			}
		}
		// Drive one round; every EC must have recorded one tuple, and
		// the TCP latency formula must be positive on every link.
		if _, err := sys.RunWorkload(core.Workload{Trees: []*cluster.Tree{tree}, Iterations: 1}); err != nil {
			return err
		}
		for _, lk := range tree.Links {
			cli, err1 := lk.ClientEC.Buffer().Latest()
			srv, err2 := lk.ServerEC.Buffer().Latest()
			if err1 != nil || err2 != nil {
				t.Fatalf("link %s missing tuples: %v %v", lk.Name, err1, err2)
			}
			ct, _ := collect.Decode(cli.Data)
			st, _ := collect.Decode(srv.Data)
			if lat := analysis.TCPLatency(ct, st); lat <= 0 {
				t.Errorf("link %s TCP latency %v", lk.Name, lat)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFigure2Architecture verifies the figure-2 pipeline: event collectors
// record trace tuples into the event space (bounded PastSet buffers); an
// event scope extracts and combines them into a view for a consumer.
func TestFigure2Architecture(t *testing.T) {
	err := core.RunVirtual(func() error {
		sys, err := core.New(cluster.SingleTin(4), cosched.None)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(cluster.TreeSpec{
			Name: "fig2", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 64,
		})
		if err != nil {
			return err
		}
		const rounds = 16
		if _, err := sys.RunWorkload(core.Workload{Trees: []*cluster.Tree{tree}, Iterations: rounds}); err != nil {
			return err
		}
		// The event space: every collector's bounded buffer holds the
		// recorded 28-byte tuples.
		for _, ec := range tree.Collectors.All() {
			st := ec.Buffer().Stats()
			if st.Written != rounds {
				t.Errorf("collector %s recorded %d of %d", ec.Name(), st.Written, rounds)
			}
			if st.Capacity != 64 {
				t.Errorf("collector %s capacity %d", ec.Name(), st.Capacity)
			}
		}
		// Buffers are addressable through the per-host PastSet
		// registries (storage separated from collection).
		root := tree.Nodes[0]
		found := false
		for _, name := range root.Host.Registry.Names() {
			if strings.HasPrefix(name, "trace/") {
				found = true
				break
			}
		}
		if !found {
			t.Error("no trace buffers registered in the host's PastSet")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFigure3Monitors verifies the two load-balance organizations deliver
// the same verdict: the straggler dominates the weighted tree whether the
// reduce happens inside a single event scope or in per-host analysis
// threads gathering only intermediate results.
func TestFigure3Monitors(t *testing.T) {
	err := core.RunVirtual(func() error {
		sys, err := core.New(cluster.SingleTin(6), cosched.None)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(cluster.TreeSpec{
			Name: "fig3", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 256,
		})
		if err != nil {
			return err
		}
		cfg := monitor.DefaultConfig()
		cfg.PullInterval = 300 * time.Microsecond
		cfg.AnalysisInterval = 300 * time.Microsecond
		single, err := sys.AttachLoadBalance(tree, monitor.SingleScope, cfg)
		if err != nil {
			return err
		}
		dist, err := sys.AttachLoadBalance(tree, monitor.Distributed, cfg)
		if err != nil {
			return err
		}
		const rounds = 80
		_, err = sys.RunWorkload(core.Workload{
			Trees: []*cluster.Tree{tree}, Iterations: rounds,
			Delay: func(thread, iter int) time.Duration {
				if thread == 0 {
					return 3 * time.Millisecond
				}
				return 0
			},
		})
		if err != nil {
			return err
		}
		root := tree.Nodes[0]
		for _, lb := range []*monitor.LoadBalance{single, dist} {
			if got := lb.Weighted().Count(root.Name, 0); got < rounds/2 {
				t.Errorf("%v monitor: straggler count %d of %d", lb.Mode(), got, rounds)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFigure4Statsm verifies statsm's structure: analysis threads only on
// hosts with collective wrappers, per-wrapper statistics for every latency
// kind, per-thread wait-time records, and two gather trees feeding the
// front-end analysis tree.
func TestFigure4Statsm(t *testing.T) {
	err := core.RunVirtual(func() error {
		sys, err := core.New(cluster.SingleTin(10), cosched.AfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(cluster.TreeSpec{
			Name: "fig4", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 256,
		})
		if err != nil {
			return err
		}
		cfg := monitor.DefaultConfig()
		cfg.PullInterval = 300 * time.Microsecond
		sm, err := sys.AttachStatsm(tree, cfg)
		if err != nil {
			return err
		}
		if _, err := sys.RunWorkload(core.Workload{Trees: []*cluster.Tree{tree}, Iterations: 120}); err != nil {
			return err
		}
		if sm.RoundsAnalyzed() == 0 {
			t.Fatal("no rounds analyzed")
		}
		// Wrapper statistics for the root, all five kinds.
		rootID := tree.Nodes[0].CollectiveEC.ID()
		for _, kind := range []int{analysis.KindDown, analysis.KindUp, analysis.KindTotal,
			analysis.KindArrivalWait, analysis.KindDepartureWait} {
			if _, ok := sm.Tree().Get(rootID, kind); !ok {
				t.Errorf("missing %s record for root wrapper", analysis.KindName(kind))
			}
		}
		// Per-thread means behind the second gather tree.
		if _, ok := sm.Tree().Get(tree.Nodes[0].ContribECs[0].ID(), analysis.KindArrivalWait); !ok {
			t.Error("missing per-thread record")
		}
		// TCP statistics for the links.
		if sm.TCPSamples() == 0 {
			t.Error("no TCP samples")
		}
		if sm.WrapperGatherRate() <= 0 || sm.ThreadGatherRate() <= 0 {
			t.Error("gather trees delivered nothing")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
