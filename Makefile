# EventSpace development entry points. Everything is standard-library
# Go; the only external tools are the optional CI linters installed on
# demand (staticcheck, govulncheck).

GO ?= go

.PHONY: build test test-short bench lint vet eslint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short -race ./...

bench:
	$(GO) test -bench=. -benchmem

vet:
	$(GO) vet ./...

# eslint is the project-specific invariant suite (DESIGN.md §8).
eslint:
	$(GO) run ./cmd/eslint ./...

lint: vet eslint

# ci mirrors the GitHub Actions job, minus the tool installs.
ci: build lint test-short
