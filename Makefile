# EventSpace development entry points. Everything is standard-library
# Go; the only external tools are the optional CI linters installed on
# demand (staticcheck, govulncheck).

GO ?= go

.PHONY: build test test-short bench bench-archive bench-staleness bench-query bench-recovery lint vet eslint lint-fix-check ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short -race ./...

bench:
	$(GO) test -bench=. -benchmem

# bench-archive builds the archive query CLI, runs the trace-archive
# tests under the race detector, and records write/scan throughput in
# BENCH_archive.json.
bench-archive:
	$(GO) build -o /dev/null ./cmd/esquery
	$(GO) test -race ./internal/archive/
	ARCHIVE_BENCH_OUT=$(CURDIR)/BENCH_archive.json \
		$(GO) test -race -run TestRecordArchiveBench ./internal/bench/

# bench-query runs the esql test suite under the race detector and
# records parse cost, evaluator throughput, and the static-pushdown
# speedup on a selective predicate in BENCH_query.json.
bench-query:
	$(GO) test -race ./internal/query/ ./cmd/esquery/
	QUERY_BENCH_OUT=$(CURDIR)/BENCH_query.json \
		$(GO) test -race -run TestRecordQueryBench ./internal/bench/

# bench-staleness runs the straggler-storm chaos suite under the race
# detector and records the degradation ladder's accuracy-versus-overhead
# table (3 modes x 3 seeds) in BENCH_staleness.json.
bench-staleness:
	$(GO) test -race -run TestStragglerStormBoundedStaleness ./internal/escope/
	STALENESS_BENCH_OUT=$(CURDIR)/BENCH_staleness.json \
		$(GO) test -race -run TestRecordStalenessBench ./internal/bench/

# bench-recovery runs the checkpoint and failover suites under the race
# detector, then records recovery time and bytes replayed — checkpointed
# fast path versus full replay, both segment formats, three archive
# sizes — in BENCH_recovery.json. The run fails unless the fast path
# replays at least 5x fewer bytes at the largest archive size.
bench-recovery:
	$(GO) test -race ./internal/checkpoint/ ./internal/reconfig/
	RECOVERY_BENCH_OUT=$(CURDIR)/BENCH_recovery.json \
		$(GO) test -race -run TestRecordRecoveryBench ./internal/bench/

vet:
	$(GO) vet ./...

# eslint is the project-specific invariant suite (DESIGN.md §8, §13).
eslint:
	$(GO) run ./cmd/eslint ./...

# lint-fix-check audits the suppression annotations themselves: every
# //lint:allow must carry a reason and name a real analyzer. Parse-only,
# so it is fast enough for a pre-commit hook.
lint-fix-check:
	$(GO) run ./cmd/eslint -check-annotations

lint: vet eslint lint-fix-check

# ci mirrors the GitHub Actions job, minus the tool installs.
ci: build lint test-short
