// Command esrun executes a single monitored benchmark run and reports
// its measurements: modelled duration, per-allreduce latency, and the
// monitor's gather rates. It is the ad-hoc counterpart to esbench's
// fixed experiment suite.
//
// Usage:
//
//	esrun [-topology tin32|tin49|lan|lanfour|wan] [-hosts N]
//	      [-workload gsum|compute-gsum] [-iterations N]
//	      [-monitor none|collectors|lb-single|lb-distributed|statsm]
//	      [-parallel] [-cosched none|1|2] [-overhead] [-selfmetrics]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eventspace/internal/bench"
	"eventspace/internal/cluster"
	"eventspace/internal/cosched"
	"eventspace/internal/monitor"
	"eventspace/internal/viz"
)

func main() {
	topology := flag.String("topology", "tin32", "testbed: tin32, tin49, lan, lanfour, wan")
	hosts := flag.Int("hosts", 0, "override per-cluster host count (0 = topology default)")
	workload := flag.String("workload", "gsum", "workload: gsum or compute-gsum")
	iterations := flag.Int("iterations", 500, "iterations per thread")
	monitorKind := flag.String("monitor", "lb-distributed", "monitor: none, collectors, lb-single, lb-distributed, statsm")
	parallel := flag.Bool("parallel", true, "gather with helper threads (parallel) instead of sequentially")
	coschedStrategy := flag.String("cosched", "2", "coscheduling strategy: none, 1 or 2")
	overhead := flag.Bool("overhead", false, "also run the unmonitored base and report relative overhead")
	selfMetrics := flag.Bool("selfmetrics", false, "account the monitoring stack's own per-wrapper costs and print the table")
	flag.Parse()

	spec, err := buildSpec(*topology, *hosts, *workload, *iterations, *monitorKind, *parallel, *coschedStrategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esrun: %v\n", err)
		os.Exit(2)
	}
	spec.SelfMetrics = *selfMetrics

	if spec.Workload == bench.ComputeGsum {
		d, err := bench.TuneCompute(spec, 60)
		if err != nil {
			fmt.Fprintf(os.Stderr, "esrun: tuning compute: %v\n", err)
			os.Exit(1)
		}
		spec.ComputeDuration = d
		fmt.Printf("compute-gsum tuned: %v computation per iteration (50/50 split)\n", d.Round(time.Microsecond))
	}

	if *overhead {
		ov, res, err := bench.Overhead(spec, 2)
		if err != nil {
			fmt.Fprintf(os.Stderr, "esrun: %v\n", err)
			os.Exit(1)
		}
		report(spec, res)
		fmt.Printf("monitoring overhead: %s\n", bench.FormatOverhead(ov))
		return
	}
	res, err := bench.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "esrun: %v\n", err)
		os.Exit(1)
	}
	report(spec, res)
}

func buildSpec(topology string, hosts int, workload string, iterations int, monitorKind string, parallel bool, strategy string) (bench.RunSpec, error) {
	var tb cluster.TestbedSpec
	switch topology {
	case "tin32":
		tb = cluster.SingleTin(pick(hosts, 32))
	case "tin49":
		tb = cluster.SingleTin(pick(hosts, 49))
	case "lan":
		tb = cluster.LANMulti(pick(hosts, 43), pick(hosts, 39))
	case "lanfour":
		tb = cluster.LANMultiFour(pick(hosts, 49), pick(hosts, 18), pick(hosts, 10))
	case "wan":
		tb = cluster.WANMulti(pick(hosts, 14), pick(hosts, 13), 2005, 0)
	default:
		return bench.RunSpec{}, fmt.Errorf("unknown topology %q", topology)
	}

	spec := bench.RunSpec{
		Testbed:     tb,
		Fanout:      8,
		Trees:       2,
		Iterations:  iterations,
		TimeScale:   1,
		TraceBufCap: iterations / 5,
	}
	switch workload {
	case "gsum":
		spec.Workload = bench.Gsum
	case "compute-gsum":
		spec.Workload = bench.ComputeGsum
		spec.Trees = 1
	default:
		return spec, fmt.Errorf("unknown workload %q", workload)
	}
	switch monitorKind {
	case "none":
		spec.Monitor = bench.NoMonitor
	case "collectors":
		spec.Monitor = bench.CollectorsOnly
	case "lb-single":
		spec.Monitor = bench.LBSingleScope
	case "lb-distributed":
		spec.Monitor = bench.LBDistributed
	case "statsm":
		spec.Monitor = bench.Statsm
	default:
		return spec, fmt.Errorf("unknown monitor %q", monitorKind)
	}

	cfg := monitor.DefaultConfig()
	cfg.IntermediateCap = iterations / 5
	cfg.PullInterval = 400 * time.Microsecond
	cfg.AnalysisInterval = 500 * time.Microsecond
	if !parallel {
		cfg.GatewayHelpers, cfg.RootHelpers = 0, 0
	}
	switch strategy {
	case "none":
		cfg.Strategy = cosched.None
	case "1":
		cfg.Strategy = cosched.AfterSend
	case "2":
		cfg.Strategy = cosched.AfterUnblock
	default:
		return spec, fmt.Errorf("unknown cosched strategy %q", strategy)
	}
	spec.MonitorCfg = cfg
	return spec, nil
}

func pick(override, def int) int {
	if override > 0 {
		return override
	}
	return def
}

func report(spec bench.RunSpec, res bench.RunResult) {
	fmt.Printf("workload %s on %d cluster(s), monitor %s\n",
		spec.Workload, len(spec.Testbed.Clusters), spec.Monitor)
	fmt.Printf("  modelled duration : %v\n", res.Duration.Round(time.Microsecond))
	fmt.Printf("  per allreduce     : %v\n", res.PerOp.Round(time.Microsecond))
	fmt.Printf("  network messages  : %d\n", res.Messages)
	if res.GatherRate > 0 {
		fmt.Printf("  gather rate       : %s\n", bench.FormatRate(res.GatherRate))
		fmt.Printf("  trace read rate   : %s\n", bench.FormatRate(res.TraceReadRate))
	}
	if res.WrapperGatherRate > 0 {
		fmt.Printf("  wrapper stats rate: %s\n", bench.FormatRate(res.WrapperGatherRate))
		fmt.Printf("  thread stats rate : %s\n", bench.FormatRate(res.ThreadGatherRate))
	}
	if res.Self != nil {
		viz.SelfMetrics(os.Stdout, *res.Self)
	}
}
