// Command esbench reproduces the paper's evaluation: the per-topology
// allreduce latencies of section 5, the data-collection overhead of
// section 6.1, Tables 1-3, and the spanning-tree scalability series of
// sections 6.2-6.3. Each row prints the measured overhead and gather
// rates next to the paper's reported figures.
//
// Usage:
//
//	esbench [-full] [-experiment all|sec5|sec61|table1|table2|table3|scalability]
//	        [-repeats N] [-markdown] [-selfmetrics]
//
// -selfmetrics additionally runs a short instrumented demo and prints
// the self-metrics table: the per-wrapper cost of the monitoring stack
// itself ("monitoring the monitor").
//
// The default quick mode scales host counts and iterations down so the
// whole suite completes in minutes; -full uses the paper's host counts.
// Everything executes under the discrete-event virtual clock, so results
// are exact and machine-independent.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"eventspace/internal/bench"
	"eventspace/internal/cluster"
	"eventspace/internal/monitor"
	"eventspace/internal/viz"
)

func main() {
	full := flag.Bool("full", false, "use the paper's full host counts and iteration budgets")
	experiment := flag.String("experiment", "all", "which experiment to run: all, sec5, sec61, table1, table2, table3, scalability")
	repeats := flag.Int("repeats", 0, "repetitions per measurement (0 = preset default)")
	markdown := flag.Bool("markdown", false, "emit rows as a markdown table (for EXPERIMENTS.md)")
	selfMetrics := flag.Bool("selfmetrics", false, "also run a short demo with self-metrics and print the cost table")
	flag.Parse()

	opts := bench.QuickOptions()
	if *full {
		opts = bench.DefaultOptions()
	}
	if *repeats > 0 {
		opts.Repeats = *repeats
	}

	type experimentFn struct {
		name  string
		title string
		run   func(bench.Options) ([]bench.Row, error)
	}
	suite := []experimentFn{
		{"sec5", "Section 5 — average time per allreduce", bench.Section5Topology},
		{"sec61", "Section 6.1 — data collection overhead", bench.Section61Collection},
		{"table1", "Table 1 — load balance monitor, single event scope", bench.Table1},
		{"table2", "Table 2 — load balance monitor, distributed analysis", bench.Table2},
		{"table3", "Table 3 — statistics monitor overhead and gather rates", bench.Table3},
		{"scalability", "Sections 6.2/6.3 — monitoring 1, 2 and 4 spanning trees", func(o bench.Options) ([]bench.Row, error) {
			rows, err := bench.ScalabilityTrees(o, bench.LBDistributed)
			if err != nil {
				return nil, err
			}
			more, err := bench.ScalabilityTrees(o, bench.Statsm)
			if err != nil {
				return nil, err
			}
			return append(rows, more...), nil
		}},
	}

	ran := false
	start := time.Now()
	for _, e := range suite {
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		ran = true
		fmt.Printf("== %s ==\n", e.title)
		rows, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "esbench: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *markdown {
			printMarkdown(rows)
		} else {
			for _, r := range rows {
				if r.Table == "sec5" {
					fmt.Printf("  %-30s per allreduce %-12v [paper: %s]\n", r.Config, r.PerOp.Round(time.Microsecond), r.Paper)
					continue
				}
				fmt.Printf("  %s\n", r)
			}
		}
		fmt.Println()
	}
	if !ran && !*selfMetrics {
		fmt.Fprintf(os.Stderr, "esbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if *selfMetrics {
		fmt.Println("== self-metrics — cost of monitoring the monitor ==")
		if err := runSelfMetrics(); err != nil {
			fmt.Fprintf(os.Stderr, "esbench: selfmetrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	fmt.Printf("completed in %v (mode: %s, repeats: %d)\n",
		time.Since(start).Round(time.Millisecond), mode(*full), opts.Repeats)
}

func mode(full bool) string {
	if full {
		return "full"
	}
	return "quick"
}

// runSelfMetrics executes a small instrumented run with the self-metrics
// registry attached and prints the resulting cost table.
func runSelfMetrics() error {
	cfg := monitor.DefaultConfig()
	cfg.PullInterval = 400 * time.Microsecond
	cfg.AnalysisInterval = 500 * time.Microsecond
	cfg.IntermediateCap = 100
	res, err := bench.Run(bench.RunSpec{
		Testbed:     cluster.SingleTin(8),
		Fanout:      8,
		Trees:       2,
		Workload:    bench.Gsum,
		Iterations:  300,
		Monitor:     bench.LBDistributed,
		MonitorCfg:  cfg,
		TimeScale:   1,
		TraceBufCap: 100,
		SelfMetrics: true,
	})
	if err != nil {
		return err
	}
	if res.Self == nil {
		return fmt.Errorf("run returned no self-metrics snapshot")
	}
	return viz.SelfMetrics(os.Stdout, *res.Self)
}

func printMarkdown(rows []bench.Row) {
	fmt.Println("| Configuration | Measured overhead | Measured rates | Paper |")
	fmt.Println("|---|---|---|---|")
	for _, r := range rows {
		var rates []string
		if r.Table == "sec5" {
			rates = append(rates, fmt.Sprintf("per op %v", r.PerOp.Round(time.Microsecond)))
		}
		if r.GatherRate > 0 {
			rates = append(rates, "gather "+bench.FormatRate(r.GatherRate))
		}
		if r.WrapperGatherRate > 0 {
			rates = append(rates, "wrapper "+bench.FormatRate(r.WrapperGatherRate),
				"thread "+bench.FormatRate(r.ThreadGatherRate))
		}
		overhead := bench.FormatOverhead(r.Overhead)
		if r.Discarded {
			overhead += " (tuples discarded)"
		}
		fmt.Printf("| %s | %s | %s | %s |\n", r.Config, overhead, strings.Join(rates, ", "), r.Paper)
	}
}
