// Command esquery queries and replays EventSpace trace archives: the
// persistent segment directories written by System.AttachArchive (or an
// archive.Writer directly). Everything it prints is computed from the
// archived tuples' own timestamps, so running it twice over the same
// archive produces byte-identical output.
//
// Usage:
//
//	esquery info    -dir DIR
//	esquery filter  -dir DIR [-ecids 1,2] [-ops read,write,mode] [-min N] [-max N]
//	                [-since D] [-until D] [-limit N]
//	esquery summarize -dir DIR [filters] [-bucket D]
//	esquery replay  -dir DIR [filters] [-monitor loadbalance|stats] [-window N]
//
// info lists the segments and their header indexes; filter streams
// matching tuples as text; summarize aggregates per collector (and per
// time bucket with -bucket); replay feeds the archive through the
// load-balance or statistics join offline and renders the same viz
// output the live monitor would.
//
// Exit status: 0 ok, 1 query/replay failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/paths"
	"eventspace/internal/viz"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: esquery <info|filter|summarize|replay> -dir DIR [flags]")
	fmt.Fprintln(os.Stderr, "run 'esquery <subcommand> -h' for the subcommand's flags")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	sub, args := os.Args[1], os.Args[2:]
	var err error
	switch sub {
	case "info":
		err = runInfo(args)
	case "filter":
		err = runFilter(args)
	case "summarize":
		err = runSummarize(args)
	case "replay":
		err = runReplay(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "esquery:", err)
		os.Exit(1)
	}
}

// queryFlags registers the shared -dir and filter flags on fs.
type queryFlags struct {
	dir   *string
	ecids *string
	ops   *string
	min   *int64
	max   *int64
	since *time.Duration
	until *time.Duration
}

func addQueryFlags(fs *flag.FlagSet) *queryFlags {
	return &queryFlags{
		dir:   fs.String("dir", "", "archive directory (required)"),
		ecids: fs.String("ecids", "", "comma-separated event-collector ids to keep (empty: all)"),
		ops:   fs.String("ops", "", "comma-separated op kinds to keep: read,write,mode (empty: all)"),
		min:   fs.Int64("min", 0, "minimum tuple Start stamp, inclusive"),
		max:   fs.Int64("max", 0, "maximum tuple Start stamp, inclusive (0: unbounded)"),
		since: fs.Duration("since", 0, "minimum tuple Start as model time past the virtual epoch (e.g. 800us); overrides -min"),
		until: fs.Duration("until", 0, "maximum tuple Start as model time past the virtual epoch (0: unbounded); overrides -max"),
	}
}

// parse opens the reader and builds the query out of the flag values.
func (qf *queryFlags) parse() (*archive.Reader, archive.Query, error) {
	var q archive.Query
	if *qf.dir == "" {
		return nil, q, fmt.Errorf("-dir is required")
	}
	if *qf.ecids != "" {
		for _, s := range strings.Split(*qf.ecids, ",") {
			id, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
			if err != nil {
				return nil, q, fmt.Errorf("-ecids: %v", err)
			}
			q.ECIDs = append(q.ECIDs, uint32(id))
		}
	}
	if *qf.ops != "" {
		for _, s := range strings.Split(*qf.ops, ",") {
			switch strings.TrimSpace(s) {
			case "read":
				q.Ops = append(q.Ops, paths.OpRead)
			case "write":
				q.Ops = append(q.Ops, paths.OpWrite)
			case "mode":
				q.Ops = append(q.Ops, paths.OpMode)
			default:
				return nil, q, fmt.Errorf("-ops: unknown op %q (want read, write or mode)", s)
			}
		}
	}
	q.MinStamp, q.MaxStamp = *qf.min, *qf.max
	// -since/-until express the same stamp range as model time past the
	// virtual epoch; like -min/-max they ride the segment header-index
	// pushdown, so out-of-range segments are skipped without decoding.
	if *qf.since > 0 {
		q.MinStamp = int64(*qf.since)
	}
	if *qf.until > 0 {
		q.MaxStamp = int64(*qf.until)
	}
	if *qf.until < 0 || *qf.since < 0 {
		return nil, q, fmt.Errorf("-since/-until must be non-negative")
	}
	r, err := archive.OpenReader(*qf.dir)
	if err != nil {
		return nil, q, err
	}
	return r, q, nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("esquery info", flag.ExitOnError)
	qf := addQueryFlags(fs)
	fs.Parse(args)
	r, _, err := qf.parse()
	if err != nil {
		return err
	}
	segs := r.Segments()
	fmt.Printf("archive %s: %d segments, %d tuples\n", r.Dir(), len(segs), r.Tuples())
	for _, s := range segs {
		state := "sealed"
		if !s.Sealed {
			state = "open"
		}
		if s.Torn {
			state += ",torn"
		}
		format := "row"
		if s.Format == archive.FormatColumnar {
			format = "columnar"
		}
		fmt.Printf("  seg %4d  %-11s %-8s %8d B  %6d tuples  %4d blocks  ecids [%d,%d]  stamps [%d,%d]\n",
			s.ID, state, format, s.Bytes, s.Index.Tuples, s.Index.Blocks,
			s.Index.MinECID, s.Index.MaxECID, s.Index.MinStamp, s.Index.MaxStamp)
	}
	if infos, err := archive.ReadMeta(r.Dir()); err == nil && len(infos) > 0 {
		fmt.Printf("collectors (%d):\n", len(infos))
		for _, in := range infos {
			fmt.Printf("  ec %4d  %-12s node %-14s contributor %2d  %s\n",
				in.ID, in.Role, in.Node, in.Contributor, in.Name)
		}
	}
	return nil
}

func runFilter(args []string) error {
	fs := flag.NewFlagSet("esquery filter", flag.ExitOnError)
	qf := addQueryFlags(fs)
	limit := fs.Int("limit", 0, "stop after N matching tuples (0: no limit)")
	fs.Parse(args)
	r, q, err := qf.parse()
	if err != nil {
		return err
	}
	n := 0
	stats, err := r.Scan(q, func(t collect.TraceTuple) bool {
		fmt.Printf("ec %4d  %-5s ret %3d  seq %8d  start %12d  end %12d  lat %s\n",
			t.ECID, opName(t.Op), t.Ret, t.Seq, t.Start, t.End, time.Duration(t.End-t.Start))
		n++
		return *limit == 0 || n < *limit
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d tuples matched (%d scanned, %d/%d segments skipped)\n",
		stats.TuplesMatched, stats.TuplesScanned, stats.SegmentsSkipped, stats.Segments)
	return nil
}

func runSummarize(args []string) error {
	fs := flag.NewFlagSet("esquery summarize", flag.ExitOnError)
	qf := addQueryFlags(fs)
	bucket := fs.Duration("bucket", 0, "also print a per-collector time series with this bucket width")
	fs.Parse(args)
	r, q, err := qf.parse()
	if err != nil {
		return err
	}
	sums, stats, err := r.Summarize(q)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %10s %8s %14s %14s %12s\n", "ecid", "tuples", "errors", "first-start", "last-end", "mean-lat")
	for _, c := range sums {
		fmt.Printf("%-6d %10d %8d %14d %14d %12s\n",
			c.ECID, c.Tuples, c.Errors, c.FirstStart, c.LastEnd, c.MeanLatency())
	}
	fmt.Printf("%d tuples matched (%d/%d segments skipped)\n",
		stats.TuplesMatched, stats.SegmentsSkipped, stats.Segments)
	if *bucket > 0 {
		series, _, err := r.TimeSeries(q, *bucket)
		if err != nil {
			return err
		}
		ids := make([]uint32, 0, len(series))
		for id := range series {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			fmt.Printf("ec %d series (bucket %s):\n", id, *bucket)
			for _, p := range series[id] {
				fmt.Printf("  %12d  %8d tuples  mean-lat %s\n", p.Bucket, p.Tuples, p.MeanLatency())
			}
		}
	}
	return nil
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("esquery replay", flag.ExitOnError)
	qf := addQueryFlags(fs)
	mon := fs.String("monitor", "loadbalance", "which monitor to replay: loadbalance or stats")
	window := fs.Int("window", 0, "sliding median window for stats replay (0: default)")
	fs.Parse(args)
	r, q, err := qf.parse()
	if err != nil {
		return err
	}
	infos, err := archive.ReadMeta(r.Dir())
	if err != nil {
		return err
	}
	switch *mon {
	case "loadbalance":
		rep, stats, err := archive.ReplayLastArrival(r, infos, q)
		if err != nil {
			return err
		}
		fed, matched := rep.Fed()
		fmt.Printf("replayed %d tuples (%d contributor tuples, %d rounds lost, %d/%d segments skipped)\n",
			fed, matched, rep.Lost(), stats.SegmentsSkipped, stats.Segments)
		return viz.WeightedTree(os.Stdout, rep.Weighted())
	case "stats":
		rep, stats, err := archive.ReplayStats(r, infos, q, *window)
		if err != nil {
			return err
		}
		fed, matched := rep.Fed()
		fmt.Printf("replayed %d tuples (%d joined, %d rounds, %d/%d segments skipped)\n",
			fed, matched, rep.RoundsAnalyzed(), stats.SegmentsSkipped, stats.Segments)
		return viz.AnalysisTree(os.Stdout, rep.Tree(), nil)
	default:
		return fmt.Errorf("-monitor: unknown monitor %q (want loadbalance or stats)", *mon)
	}
}

func opName(op paths.OpKind) string {
	switch op {
	case paths.OpRead:
		return "read"
	case paths.OpWrite:
		return "write"
	case paths.OpMode:
		return "mode"
	default:
		return fmt.Sprintf("op(%d)", op)
	}
}
