// Command esquery queries and replays EventSpace trace archives: the
// persistent segment directories written by System.AttachArchive (or an
// archive.Writer directly). Everything it prints is computed from the
// archived tuples' own timestamps, so running it twice over the same
// archive produces byte-identical output (watch, which follows a live
// directory, is the one exception).
//
// Usage:
//
//	esquery info    -dir DIR
//	esquery query   -dir DIR -q "select * where ecid in (1, 2) and latency > 500us limit 10"
//	esquery filter  -dir DIR [-ecids 1,2] [-ops read,write,mode,alert] [-min N] [-max N]
//	                [-since D] [-until D] [-limit N]
//	esquery summarize -dir DIR [filters] [-bucket D]
//	esquery replay  -dir DIR [filters] [-monitor loadbalance|stats|alerts]
//	                [-window N] [-alerts "stmt[; stmt]"]
//	esquery watch   -dir DIR -q "alert when ..." [-poll D] [-once]
//
// info lists the segments and their header indexes; query runs one esql
// statement (select * streams tuples, aggregate selects print a result
// table, alert statements replay the archive's data tuples through the
// continuous-query engine); filter and summarize are flag sugar that
// compiles to esql and runs through the same evaluator; replay feeds
// the archive through the load-balance or statistics join offline — or,
// with -monitor alerts, regenerates an alert stream and verifies it
// against the archived alert tuples; watch tails a live archive
// directory, evaluating standing alert statements as segments grow.
//
// Select predicates are pushed down into the archive's header-index and
// columnar block-skip paths, so selective queries touch only the
// segments they must.
//
// Exit status: 0 ok, 1 query/replay failure, 2 usage error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"eventspace/internal/archive"
	"eventspace/internal/checkpoint"
	"eventspace/internal/collect"
	"eventspace/internal/query"
	"eventspace/internal/viz"
)

// usageError marks an error caused by bad invocation (exit 2) rather
// than a failing query (exit 1).
type usageError struct{ error }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func printUsage(w io.Writer) {
	fmt.Fprintln(w, "usage: esquery <info|query|filter|summarize|replay|watch> -dir DIR [flags]")
	fmt.Fprintln(w, "run 'esquery <subcommand> -h' for the subcommand's flags")
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run dispatches one invocation and maps its error to an exit status.
func run(args []string, stderr io.Writer) int {
	if len(args) < 1 {
		printUsage(stderr)
		return 2
	}
	sub, rest := args[0], args[1:]
	var err error
	switch sub {
	case "info":
		err = runInfo(rest)
	case "query":
		err = runQuery(rest)
	case "filter":
		err = runFilter(rest)
	case "summarize":
		err = runSummarize(rest)
	case "replay":
		err = runReplay(rest)
	case "watch":
		err = runWatch(rest)
	default:
		fmt.Fprintf(stderr, "esquery: unknown subcommand %q\n", sub)
		printUsage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "esquery:", err)
		var ue usageError
		if errors.As(err, &ue) {
			return 2
		}
		return 1
	}
	return 0
}

// newFlagSet builds a subcommand flag set whose errors flow back as
// usage errors naming the offending flag, instead of exiting inline.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// parseFlags parses args, converting failures into usage errors that
// say which flag was at fault (the flag package's own message does).
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(os.Stderr)
			fs.Usage()
			return usageError{errors.New("help requested")}
		}
		return usageError{err}
	}
	return nil
}

// queryFlags registers the shared -dir and filter flags on fs. The
// filter flags are sugar: they compile to an esql predicate and run
// through the same evaluator and pushdown as an explicit -q statement.
type queryFlags struct {
	dir   *string
	ecids *string
	ops   *string
	min   *int64
	max   *int64
	since *time.Duration
	until *time.Duration
}

func addQueryFlags(fs *flag.FlagSet) *queryFlags {
	return &queryFlags{
		dir:   fs.String("dir", "", "archive directory (required)"),
		ecids: fs.String("ecids", "", "comma-separated event-collector ids to keep (empty: all)"),
		ops:   fs.String("ops", "", "comma-separated op kinds to keep: read,write,mode,alert (empty: all)"),
		min:   fs.Int64("min", 0, "minimum tuple Start stamp, inclusive"),
		max:   fs.Int64("max", 0, "maximum tuple Start stamp, inclusive (0: unbounded)"),
		since: fs.Duration("since", 0, "minimum tuple Start as model time past the virtual epoch (e.g. 800us); overrides -min"),
		until: fs.Duration("until", 0, "maximum tuple Start as model time past the virtual epoch (0: unbounded); overrides -max"),
	}
}

// predicate compiles the filter flags into an esql where-predicate
// (empty when the flags select everything).
func (qf *queryFlags) predicate() (string, error) {
	var conj []string
	if *qf.ecids != "" {
		var ids []string
		for _, s := range strings.Split(*qf.ecids, ",") {
			id, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
			if err != nil {
				return "", usagef("-ecids: %v", err)
			}
			ids = append(ids, strconv.FormatUint(id, 10))
		}
		conj = append(conj, "ecid in ("+strings.Join(ids, ", ")+")")
	}
	if *qf.ops != "" {
		var ops []string
		for _, s := range strings.Split(*qf.ops, ",") {
			op := strings.TrimSpace(s)
			switch op {
			case "read", "write", "mode", "alert":
				ops = append(ops, op)
			default:
				return "", usagef("-ops: unknown op %q (want read, write, mode or alert)", s)
			}
		}
		conj = append(conj, "op in ("+strings.Join(ops, ", ")+")")
	}
	if *qf.until < 0 || *qf.since < 0 {
		return "", usagef("-since/-until must be non-negative")
	}
	// -since/-until express the same stamp range as model time past the
	// virtual epoch; both spellings compile to start bounds, which the
	// static pushdown turns back into the segment header-index skip.
	min, max := *qf.min, *qf.max
	if *qf.since > 0 {
		min = int64(*qf.since)
	}
	if *qf.until > 0 {
		max = int64(*qf.until)
	}
	if min > 0 {
		conj = append(conj, fmt.Sprintf("start >= %d", min))
	}
	if max > 0 {
		conj = append(conj, fmt.Sprintf("start <= %d", max))
	}
	return strings.Join(conj, " and "), nil
}

// compile builds the esql statement the flags express and parses it
// through the one evaluator code path.
func (qf *queryFlags) compile(selectList string, trailer string) (*query.Stmt, error) {
	pred, err := qf.predicate()
	if err != nil {
		return nil, err
	}
	src := "select " + selectList
	if pred != "" {
		src += " where " + pred
	}
	if trailer != "" {
		src += " " + trailer
	}
	stmt, err := query.Parse(src)
	if err != nil {
		// The flags were already validated; a parse failure here is a
		// compiler bug, not a user error.
		return nil, fmt.Errorf("internal: flags compiled to bad esql %q: %v", src, err)
	}
	return stmt, nil
}

// open opens the archive named by -dir.
func (qf *queryFlags) open() (*archive.Reader, error) {
	if *qf.dir == "" {
		return nil, usagef("-dir is required")
	}
	return archive.OpenReader(*qf.dir)
}

func runInfo(args []string) error {
	fs := newFlagSet("esquery info")
	qf := addQueryFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	r, err := qf.open()
	if err != nil {
		return err
	}
	segs := r.Segments()
	fmt.Printf("archive %s: %d segments, %d tuples\n", r.Dir(), len(segs), r.Tuples())
	for _, s := range segs {
		state := "sealed"
		if !s.Sealed {
			state = "open"
		}
		if s.Torn {
			state += ",torn"
		}
		format := "row"
		if s.Format == archive.FormatColumnar {
			format = "columnar"
		}
		fmt.Printf("  seg %4d  %-11s %-8s %8d B  %6d tuples  %4d blocks  ecids [%d,%d]  stamps [%d,%d]\n",
			s.ID, state, format, s.Bytes, s.Index.Tuples, s.Index.Blocks,
			s.Index.MinECID, s.Index.MaxECID, s.Index.MinStamp, s.Index.MaxStamp)
	}
	if infos, err := archive.ReadMeta(r.Dir()); err == nil && len(infos) > 0 {
		fmt.Printf("collectors (%d):\n", len(infos))
		for _, in := range infos {
			fmt.Printf("  ec %4d  %-12s node %-14s contributor %2d  %s\n",
				in.ID, in.Role, in.Node, in.Contributor, in.Name)
		}
	}
	printCheckpoints(r)
	return nil
}

// printCheckpoints renders the archive's checkpoint chain, if any: each
// sidecar frame, which one recovery would restore from, and how much of
// the archive a recovery would actually replay (the suffix behind the
// newest valid checkpoint's cursor — the chain's whole point).
func printCheckpoints(r *archive.Reader) {
	entries, err := checkpoint.List(r.Dir())
	if err != nil || len(entries) == 0 {
		return
	}
	cp, info, ok := checkpoint.LoadNewest(r.Dir())
	bad := make(map[string]bool, len(info.Bad))
	for _, p := range info.Bad {
		bad[p] = true
	}
	if !ok {
		fmt.Printf("checkpoints (%d): none valid — recovery falls back to full replay\n", len(entries))
	} else {
		line := fmt.Sprintf("checkpoints (%d): newest seq %d at stamp %d, cursor %d tuples", len(entries), cp.Seq, cp.At, cp.Cursor.Tuples)
		if suffix, err := r.ScanFrom(cp.Cursor, archive.Query{}, func(collect.TraceTuple) bool { return true }); err == nil {
			line += fmt.Sprintf(", replay suffix %d tuples / %d B", r.Tuples()-suffix.TuplesSkipped, suffix.BytesScanned)
		} else {
			line += fmt.Sprintf(", replay suffix unreadable (%v)", err)
		}
		fmt.Println(line)
	}
	for _, e := range entries {
		state := "ok"
		if bad[e.Path] {
			state = "torn"
		}
		fmt.Printf("  ckpt %4d  %-4s %8d B\n", e.Seq, state, e.Size)
	}
}

// printTuple renders one tuple in the filter/select-* line format.
func printTuple(t collect.TraceTuple) bool {
	fmt.Printf("ec %4d  %-5s ret %3d  seq %8d  start %12d  end %12d  lat %s\n",
		t.ECID, t.Op, t.Ret, t.Seq, t.Start, t.End, time.Duration(t.End-t.Start))
	return true
}

// streamStmt runs a select-* statement against the archive, printing
// matching tuples and the pushdown accounting line.
func streamStmt(r *archive.Reader, stmt *query.Stmt) error {
	stats, err := query.Scan(r, stmt, printTuple)
	if err != nil {
		return err
	}
	fmt.Printf("%d tuples matched (%d scanned, %d/%d segments skipped)\n",
		stats.TuplesMatched, stats.TuplesScanned, stats.SegmentsSkipped, stats.Segments)
	return nil
}

func runFilter(args []string) error {
	fs := newFlagSet("esquery filter")
	qf := addQueryFlags(fs)
	limit := fs.Int("limit", 0, "stop after N matching tuples (0: no limit)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	trailer := ""
	if *limit > 0 {
		trailer = fmt.Sprintf("limit %d", *limit)
	}
	stmt, err := qf.compile("*", trailer)
	if err != nil {
		return err
	}
	r, err := qf.open()
	if err != nil {
		return err
	}
	return streamStmt(r, stmt)
}

func runSummarize(args []string) error {
	fs := newFlagSet("esquery summarize")
	qf := addQueryFlags(fs)
	bucket := fs.Duration("bucket", 0, "also print a per-collector time series with this bucket width")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	stmt, err := qf.compile("count(), errors(), min(start), max(end), mean(latency)", "by ecid")
	if err != nil {
		return err
	}
	r, err := qf.open()
	if err != nil {
		return err
	}
	res, stats, err := query.Run(r, stmt)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %10s %8s %14s %14s %12s\n", "ecid", "tuples", "errors", "first-start", "last-end", "mean-lat")
	for _, row := range res.Rows {
		fmt.Printf("%-6d %10d %8d %14d %14d %12s\n",
			row.Group, row.Vals[0].I, row.Vals[1].I, row.Vals[2].I, row.Vals[3].I,
			time.Duration(row.Vals[4].I))
	}
	fmt.Printf("%d tuples matched (%d/%d segments skipped)\n",
		stats.TuplesMatched, stats.SegmentsSkipped, stats.Segments)
	if *bucket > 0 {
		series, err := qf.compile("count(), mean(latency)", fmt.Sprintf("by ecid window %s", *bucket))
		if err != nil {
			return err
		}
		sres, _, err := query.Run(r, series)
		if err != nil {
			return err
		}
		var cur uint32
		started := false
		for _, row := range sres.Rows {
			if !started || row.Group != cur {
				fmt.Printf("ec %d series (bucket %s):\n", row.Group, *bucket)
				cur, started = row.Group, true
			}
			fmt.Printf("  %12d  %8d tuples  mean-lat %s\n",
				row.Bucket, row.Vals[0].I, time.Duration(row.Vals[1].I))
		}
	}
	return nil
}

// printResult renders an aggregate select's result table.
func printResult(res *query.Result) {
	if res.Grouped {
		fmt.Printf("%-6s ", "ecid")
	}
	if res.Windowed {
		fmt.Printf("%14s ", "bucket")
	}
	for _, c := range res.Cols {
		fmt.Printf("%16s ", c)
	}
	fmt.Println()
	for _, row := range res.Rows {
		if res.Grouped {
			fmt.Printf("%-6d ", row.Group)
		}
		if res.Windowed {
			fmt.Printf("%14d ", row.Bucket)
		}
		for _, v := range row.Vals {
			fmt.Printf("%16s ", v)
		}
		fmt.Println()
	}
}

// queryNames maps statement hashes to their canonical spellings, for
// labelling alert output.
func queryNames(stmts ...*query.Stmt) map[uint64]string {
	names := make(map[uint64]string, len(stmts))
	for _, s := range stmts {
		names[s.Hash()] = s.String()
	}
	return names
}

func runQuery(args []string) error {
	fs := newFlagSet("esquery query")
	qf := addQueryFlags(fs)
	qsrc := fs.String("q", "", "esql statement to run (required)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *qsrc == "" {
		return usagef("-q is required")
	}
	stmt, err := query.Parse(*qsrc)
	if err != nil {
		return usageError{err}
	}
	r, err := qf.open()
	if err != nil {
		return err
	}
	switch {
	case stmt.Alert:
		// Running an alert statement offline is a replay: the archive's
		// data tuples stream through a fresh engine.
		expected := 0
		if infos, err := archive.ReadMeta(r.Dir()); err == nil {
			expected = len(infos)
		}
		alerts, err := query.Replay(r, []*query.Stmt{stmt}, expected)
		if err != nil {
			return err
		}
		return viz.Alerts(os.Stdout, stmt.String(), alerts, queryNames(stmt))
	case stmt.Star:
		return streamStmt(r, stmt)
	default:
		res, stats, err := query.Run(r, stmt)
		if err != nil {
			return err
		}
		printResult(res)
		fmt.Printf("%d tuples matched (%d/%d segments skipped)\n",
			stats.TuplesMatched, stats.SegmentsSkipped, stats.Segments)
		return nil
	}
}

// parseAlertList parses a ';'-separated list of standing alert
// statements.
func parseAlertList(src string) ([]*query.Stmt, error) {
	var stmts []*query.Stmt
	for _, part := range strings.Split(src, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		st, err := query.Parse(part)
		if err != nil {
			return nil, usageError{err}
		}
		if !st.Alert {
			return nil, usagef("%q is not an alert statement", part)
		}
		stmts = append(stmts, st)
	}
	if len(stmts) == 0 {
		return nil, usagef("no alert statements given")
	}
	return stmts, nil
}

func runReplay(args []string) error {
	fs := newFlagSet("esquery replay")
	qf := addQueryFlags(fs)
	mon := fs.String("monitor", "loadbalance", "what to replay: loadbalance, stats, or alerts")
	window := fs.Int("window", 0, "sliding median window for stats replay (0: default)")
	alertsSrc := fs.String("alerts", "", "standing alert statements for -monitor alerts, ';'-separated")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	pred, err := qf.predicate()
	if err != nil {
		return err
	}
	var q archive.Query
	if pred != "" {
		// The replay filters reuse the esql compile + pushdown path; for
		// these flag shapes the extraction is exact, not just
		// conservative, so the Query is the same one the old flag
		// plumbing built.
		stmt, err := qf.compile("*", "")
		if err != nil {
			return err
		}
		q = stmt.Pushdown()
	}
	r, err := qf.open()
	if err != nil {
		return err
	}
	switch *mon {
	case "loadbalance", "stats":
		infos, err := archive.ReadMeta(r.Dir())
		if err != nil {
			return err
		}
		if *mon == "loadbalance" {
			rep, stats, err := archive.ReplayLastArrival(r, infos, q)
			if err != nil {
				return err
			}
			fed, matched := rep.Fed()
			fmt.Printf("replayed %d tuples (%d contributor tuples, %d rounds lost, %d/%d segments skipped)\n",
				fed, matched, rep.Lost(), stats.SegmentsSkipped, stats.Segments)
			return viz.WeightedTree(os.Stdout, rep.Weighted())
		}
		rep, stats, err := archive.ReplayStats(r, infos, q, *window)
		if err != nil {
			return err
		}
		fed, matched := rep.Fed()
		fmt.Printf("replayed %d tuples (%d joined, %d rounds, %d/%d segments skipped)\n",
			fed, matched, rep.RoundsAnalyzed(), stats.SegmentsSkipped, stats.Segments)
		return viz.AnalysisTree(os.Stdout, rep.Tree(), nil)
	case "alerts":
		if *alertsSrc == "" {
			return usagef("-monitor alerts needs -alerts \"stmt[; stmt]\"")
		}
		stmts, err := parseAlertList(*alertsSrc)
		if err != nil {
			return err
		}
		expected := 0
		if infos, err := archive.ReadMeta(r.Dir()); err == nil {
			expected = len(infos)
		}
		// Regenerate from the data tuples, then verify against the alert
		// tuples the live engine archived. The filter flags do not apply
		// here: the engine needs the whole stream to be faithful.
		regen, err := query.Replay(r, stmts, expected)
		if err != nil {
			return err
		}
		archived, _, err := archive.ReplayAlerts(r, archive.Query{})
		if err != nil {
			return err
		}
		if err := viz.Alerts(os.Stdout, "replayed "+r.Dir(), regen, queryNames(stmts...)); err != nil {
			return err
		}
		if len(archived) == 0 {
			fmt.Printf("no archived alerts to verify against (%d regenerated)\n", len(regen))
			return nil
		}
		if len(archived) != len(regen) {
			return fmt.Errorf("alert stream mismatch: %d archived, %d regenerated", len(archived), len(regen))
		}
		for i := range archived {
			if archived[i] != regen[i] {
				return fmt.Errorf("alert stream mismatch at #%d: archived %+v, regenerated %+v", i, archived[i], regen[i])
			}
		}
		fmt.Printf("alert streams match (%d alerts)\n", len(regen))
		return nil
	default:
		return usagef("-monitor: unknown monitor %q (want loadbalance, stats or alerts)", *mon)
	}
}

func runWatch(args []string) error {
	fs := newFlagSet("esquery watch")
	dir := fs.String("dir", "", "archive directory to follow (required)")
	qsrc := fs.String("q", "", "standing alert statements, ';'-separated (required)")
	poll := fs.Duration("poll", time.Second, "poll interval between archive re-scans")
	once := fs.Bool("once", false, "evaluate what the archive holds now, then exit")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dir == "" {
		return usagef("-dir is required")
	}
	if *qsrc == "" {
		return usagef("-q is required")
	}
	if *poll <= 0 {
		return usagef("-poll must be positive")
	}
	stmts, err := parseAlertList(*qsrc)
	if err != nil {
		return err
	}
	expected := 0
	if infos, err := archive.ReadMeta(*dir); err == nil {
		expected = len(infos)
	}
	names := queryNames(stmts...)
	eng := query.NewEngine(nil)
	eng.SetExpected(expected)
	eng.OnAlert(func(a collect.AlertTuple) {
		group := "all"
		if a.Group != 0 {
			group = fmt.Sprintf("ec %d", a.Group)
		}
		fmt.Printf("#%-3d %12v  %-6s  %s\n", a.Seq, time.Duration(a.At), group, names[a.QueryHash])
	})
	for _, st := range stmts {
		if err := eng.Register(st); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "watching %s: %d standing queries (poll %s)\n", *dir, len(stmts), *poll)
	// Each pass snapshots the directory and feeds only the tuples past
	// the high-water mark: the archive is append-only in segment-id
	// order, so the already-fed prefix is stable across re-scans and the
	// engine sees each tuple exactly once, in archive order.
	var fed uint64
	for {
		r, err := archive.OpenReader(*dir)
		if err != nil {
			return err
		}
		var seen uint64
		var offerErr error
		_, err = r.Scan(archive.Query{}, func(t collect.TraceTuple) bool {
			seen++
			if seen <= fed {
				return true
			}
			if oerr := eng.Offer(t); oerr != nil {
				offerErr = oerr
				return false
			}
			return true
		})
		if err == nil {
			err = offerErr
		}
		if err != nil {
			return err
		}
		if seen > fed {
			fed = seen
		}
		if *once {
			return nil
		}
		// The watch loop follows a real on-disk archive from outside any
		// model run, so it must pace itself on real time.
		time.Sleep(*poll) //lint:allow wallclock watch tails a live directory from outside the model; modelled time does not advance here
	}
}
