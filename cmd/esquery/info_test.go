package main

import (
	"os"
	"strings"
	"testing"

	"eventspace/internal/archive"
	"eventspace/internal/checkpoint"
	"eventspace/internal/collect"
	"eventspace/internal/paths"
)

// writeCheckpointedArchive builds a small archive with collector
// metadata and a real checkpoint chain: two single-contributor nodes,
// checkpointed every 8 tuples by the same checkpointer the recorder
// uses.
func writeCheckpointedArchive(t *testing.T, dir string) {
	t.Helper()
	w, err := archive.Create(archive.Options{Dir: dir, SegmentBytes: 600, BlockTuples: 8})
	if err != nil {
		t.Fatal(err)
	}
	infos := []archive.CollectorInfo{
		{ID: 10, Name: "coll-a", Role: collect.RoleCollective, Tree: "T", Node: "a", Contributor: -1},
		{ID: 1, Name: "c-a", Role: collect.RoleContributor, Tree: "T", Node: "a", Contributor: 0},
		{ID: 20, Name: "coll-b", Role: collect.RoleCollective, Tree: "T", Node: "b", Contributor: -1},
		{ID: 2, Name: "c-b", Role: collect.RoleContributor, Tree: "T", Node: "b", Contributor: 0},
	}
	if err := archive.WriteMeta(dir, infos); err != nil {
		t.Fatal(err)
	}
	ck, err := checkpoint.New(w, w, nil, infos, checkpoint.Config{EveryTuples: 8, Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint32(1); seq <= 10; seq++ {
		base := int64(seq) * 1000
		tuples := []collect.TraceTuple{
			{ECID: 1, Op: paths.OpWrite, Seq: seq, Start: base, End: base + 100},
			{ECID: 10, Op: paths.OpWrite, Seq: seq, Start: base + 50, End: base + 150},
			{ECID: 2, Op: paths.OpWrite, Seq: seq, Start: base + 10, End: base + 110},
			{ECID: 20, Op: paths.OpWrite, Seq: seq, Start: base + 60, End: base + 160},
		}
		buf := make([]byte, len(tuples)*collect.TupleSize)
		for i := range tuples {
			tuples[i].EncodeTo(buf[i*collect.TupleSize:])
		}
		if err := ck.AppendRaw(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInfoCheckpointColumn pins the info table's checkpoint section:
// chain length, newest checkpoint's stamp and cursor, the replay-suffix
// size a recovery would actually read, and the per-frame rows.
func TestInfoCheckpointColumn(t *testing.T) {
	dir := t.TempDir()
	writeCheckpointedArchive(t, dir)

	out := capture(t, func() error {
		return runInfo([]string{"-dir", dir})
	})
	cp, info, ok := checkpoint.LoadNewest(dir)
	if !ok || info.Entries == 0 {
		t.Fatalf("test archive has no checkpoint chain: %+v", info)
	}
	wantHeader := "checkpoints (" // chain length prefix
	if !strings.Contains(out, wantHeader) {
		t.Fatalf("info output missing checkpoint section:\n%s", out)
	}
	for _, want := range []string{
		"newest seq",
		"at stamp",
		"replay suffix",
		" tuples / ",
		"ckpt",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("info checkpoint section missing %q:\n%s", want, out)
		}
	}
	// The replay suffix must be the tuples after the newest cursor, not
	// the whole archive.
	r, err := archive.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	suffix := r.Tuples() - cp.Cursor.Tuples
	if suffix == 0 || suffix >= r.Tuples() {
		t.Fatalf("degenerate suffix %d of %d tuples", suffix, r.Tuples())
	}
	if !strings.Contains(out, "replay suffix") || strings.Contains(out, "replay suffix unreadable") {
		t.Fatalf("suffix not computed:\n%s", out)
	}

	// A torn chain head is reported, and recovery's fallback is visible.
	entries, err := checkpoint.List(dir)
	if err != nil || len(entries) == 0 {
		t.Fatal(err)
	}
	newest := entries[len(entries)-1]
	buf, err := os.ReadFile(newest.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest.Path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	out = capture(t, func() error {
		return runInfo([]string{"-dir", dir})
	})
	if !strings.Contains(out, "torn") {
		t.Errorf("torn chain head not marked:\n%s", out)
	}
}

// TestInfoWithoutCheckpoints: archives recorded without a checkpointer
// print no checkpoint section at all.
func TestInfoWithoutCheckpoints(t *testing.T) {
	dir := t.TempDir()
	writeTestArchive(t, dir)
	out := capture(t, func() error {
		return runInfo([]string{"-dir", dir})
	})
	if strings.Contains(out, "checkpoints") {
		t.Fatalf("checkpoint section printed for chainless archive:\n%s", out)
	}
}
