package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitStatus pins the exit-status contract: 0 on success, 1 on
// runtime failures (bad archive, query errors), 2 on usage errors —
// which must name what was wrong, including the offending flag.
func TestExitStatus(t *testing.T) {
	dir := t.TempDir()
	writeTestArchive(t, dir)
	cases := []struct {
		name   string
		args   []string
		want   int
		stderr string // substring the diagnostics must contain
	}{
		{"ok info", []string{"info", "-dir", dir}, 0, ""},
		{"ok filter", []string{"filter", "-dir", dir, "-ecids", "1"}, 0, ""},
		{"ok query", []string{"query", "-dir", dir, "-q", "select count()"}, 0, ""},
		{"no args", []string{}, 2, "usage"},
		{"unknown subcommand", []string{"frobnicate"}, 2, `unknown subcommand "frobnicate"`},
		{"unknown flag", []string{"filter", "-dir", dir, "-bogus"}, 2, "-bogus"},
		{"bad flag value", []string{"filter", "-dir", dir, "-since", "soon"}, 2, "-since"},
		{"bad ecid list", []string{"filter", "-dir", dir, "-ecids", "abc"}, 2, "-ecids"},
		{"bad op name", []string{"filter", "-dir", dir, "-ops", "bogus"}, 2, "-ops"},
		{"negative since", []string{"filter", "-dir", dir, "-since", "-5"}, 2, "-since"},
		{"missing dir", []string{"filter"}, 2, "-dir is required"},
		{"missing query", []string{"query", "-dir", dir}, 2, "-q is required"},
		{"bad esql", []string{"query", "-dir", dir, "-q", "select bogus("}, 2, "esql"},
		{"missing archive", []string{"info", "-dir", dir + "/nope"}, 1, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stderr bytes.Buffer
			got := 999
			out := capture(t, func() error {
				got = run(tc.args, &stderr)
				return nil
			})
			if got != tc.want {
				t.Fatalf("run(%q) = %d, want %d\nstderr: %s\nstdout: %s",
					tc.args, got, tc.want, stderr.String(), out)
			}
			if tc.stderr != "" && !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("stderr %q does not mention %q", stderr.String(), tc.stderr)
			}
		})
	}
}
