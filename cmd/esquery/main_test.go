package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/paths"
)

// writeTestArchive builds a small archive with tuples at known stamps:
// ten tuples on ECID 1, Start = i microseconds (0..9), plus one mode
// control tuple at 4us. Small segments force several rotations so the
// stamp-range pushdown has segments to skip.
func writeTestArchive(t *testing.T, dir string) {
	t.Helper()
	w, err := archive.Create(archive.Options{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		start := int64(i) * 1000
		err := w.Append([]collect.TraceTuple{{
			ECID: 1, Op: paths.OpRead, Seq: uint32(i), Start: start, End: start + 100,
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	err = w.Append([]collect.TraceTuple{collect.EncodeMode(collect.ModeTuple{
		ScopeHash: collect.HashName("s"), From: 0, To: 1, Seq: 1, At: 4000,
	})})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		_, _ = io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

// TestFilterSinceUntil exercises the -since/-until stamp-range flags:
// only tuples whose Start falls inside the model-time window are
// printed, and segments wholly outside the window are skipped by the
// header-index pushdown.
func TestFilterSinceUntil(t *testing.T) {
	dir := t.TempDir()
	writeTestArchive(t, dir)

	out := capture(t, func() error {
		return runFilter([]string{"-dir", dir, "-ops", "read", "-since", "2us", "-until", "5us"})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Tuples at 2000, 3000, 4000, 5000 ns plus the trailing stats line.
	if len(lines) != 5 {
		t.Fatalf("filter printed %d lines, want 5:\n%s", len(lines), out)
	}
	for _, want := range []string{"start         2000", "start         5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("filter output missing %q:\n%s", want, out)
		}
	}
	for _, reject := range []string{"start         1000", "start         6000"} {
		if strings.Contains(out, reject) {
			t.Errorf("filter output leaked out-of-range tuple %q:\n%s", reject, out)
		}
	}
	if !strings.Contains(out, "4 tuples matched") {
		t.Errorf("filter stats line wrong:\n%s", out)
	}
	// The small segments guarantee at least one was skipped unscanned.
	if strings.Contains(out, "0/") {
		t.Errorf("stamp range skipped no segments (pushdown not engaged):\n%s", out)
	}
}

// TestSummarizeSinceUntil checks the same window through summarize, and
// that -since/-until override -min/-max.
func TestSummarizeSinceUntil(t *testing.T) {
	dir := t.TempDir()
	writeTestArchive(t, dir)

	out := capture(t, func() error {
		return runSummarize([]string{"-dir", dir, "-min", "999999", "-since", "7us"})
	})
	if !strings.Contains(out, "3 tuples matched") {
		t.Errorf("summarize window [7us,∞) should match stamps 7000..9000:\n%s", out)
	}
	if !strings.Contains(out, "7000") {
		t.Errorf("summarize first-start should be 7000:\n%s", out)
	}
}

// TestFilterModeOp checks that mode control tuples are selectable and
// rendered with their op name.
func TestFilterModeOp(t *testing.T) {
	dir := t.TempDir()
	writeTestArchive(t, dir)

	out := capture(t, func() error {
		return runFilter([]string{"-dir", dir, "-ops", "mode"})
	})
	if !strings.Contains(out, "mode") || !strings.Contains(out, "1 tuples matched") {
		t.Errorf("mode filter should match exactly the control tuple:\n%s", out)
	}
}

// TestInfoShowsFormat checks that info labels each segment's block
// codec, covering a directory that mixes both formats.
func TestInfoShowsFormat(t *testing.T) {
	dir := t.TempDir()
	w, err := archive.Create(archive.Options{Dir: dir, Format: archive.FormatRow})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]collect.TraceTuple{{ECID: 1, Op: paths.OpRead, Start: 1, End: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = archive.Create(archive.Options{Dir: dir, Format: archive.FormatColumnar})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]collect.TraceTuple{{ECID: 2, Op: paths.OpWrite, Start: 3, End: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error { return runInfo([]string{"-dir", dir}) })
	if !strings.Contains(out, "row") || !strings.Contains(out, "columnar") {
		t.Errorf("info should label both segment formats:\n%s", out)
	}
}

// TestNegativeSinceRejected checks flag validation.
func TestNegativeSinceRejected(t *testing.T) {
	dir := t.TempDir()
	writeTestArchive(t, dir)
	if err := runFilter([]string{"-dir", dir, "-since", "-1us"}); err == nil {
		t.Fatal("negative -since accepted")
	}
}
