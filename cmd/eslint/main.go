// Command eslint runs EventSpace's project-specific static-analysis
// suite (internal/lint): the invariants the monitoring stack's
// low-overhead claim rests on, enforced at compile time. It is a
// multichecker in the x/tools mold, built on the standard library
// only, and runs in CI alongside go vet and staticcheck:
//
//	go run ./cmd/eslint ./...        # whole module (the usual form)
//	go run ./cmd/eslint -list        # describe the analyzers
//	go run ./cmd/eslint -run wallclock,goroleak ./...
//	go run ./cmd/eslint -json ./...  # machine-readable findings
//	go run ./cmd/eslint -check-annotations   # audit //lint:allow only
//
// Packages are analyzed in parallel (one worker per CPU by default;
// -workers overrides) with deterministic output order, and the summary
// line reports wall time so CI logs track the suite's cost.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"eventspace/internal/lint"
)

func main() {
	os.Exit(run())
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run() int {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	workers := flag.Int("workers", 0, "packages analyzed in parallel (0 = one per CPU)")
	annotations := flag.Bool("check-annotations", false,
		"audit //lint:allow annotations only (reasons present, analyzer names known); skips analysis")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: eslint [-list] [-run names] [-json] [-workers n] [-check-annotations] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "eslint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	// The only supported patterns are the whole module (./... or no
	// argument) — the suite is cheap enough to always run whole.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "eslint: unsupported pattern %q; the suite runs whole-module (./...)\n", arg)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eslint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eslint:", err)
		return 2
	}

	start := time.Now()

	if *annotations {
		diags, err := lint.AuditAnnotations(root, lint.Suite())
		if err != nil {
			fmt.Fprintln(os.Stderr, "eslint:", err)
			return 2
		}
		return report(diags, root, *asJSON, func(n int) string {
			if n > 0 {
				return fmt.Sprintf("eslint: %d malformed annotation(s) in %v", n, time.Since(start).Round(time.Millisecond))
			}
			return fmt.Sprintf("eslint: annotations clean in %v", time.Since(start).Round(time.Millisecond))
		})
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eslint:", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eslint:", err)
		return 2
	}
	perPkg, err := lint.RunPackages(pkgs, analyzers, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eslint:", err)
		return 2
	}
	var diags []lint.Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	return report(diags, root, *asJSON, func(n int) string {
		elapsed := time.Since(start).Round(time.Millisecond)
		if n > 0 {
			return fmt.Sprintf("eslint: %d finding(s) across %d package(s) in %v", n, len(pkgs), elapsed)
		}
		return fmt.Sprintf("eslint: clean — %d package(s), %d analyzer(s) in %v", len(pkgs), len(analyzers), elapsed)
	})
}

// report prints the findings (plain or JSON, paths relative to root)
// plus a summary line on stderr, and returns the exit status.
func report(diags []lint.Diagnostic, root string, asJSON bool, summary func(n int) string) int {
	rel := func(name string) string {
		if r, err := filepath.Rel(root, name); err == nil {
			return r
		}
		return name
	}
	if asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File: rel(d.Pos.Filename), Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "eslint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s (%s)\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	fmt.Fprintln(os.Stderr, summary(len(diags)))
	if len(diags) > 0 {
		return 1
	}
	return 0
}
