// Command eslint runs EventSpace's project-specific static-analysis
// suite (internal/lint): the invariants the monitoring stack's
// low-overhead claim rests on, enforced at compile time. It is a
// multichecker in the x/tools mold, built on the standard library
// only, and runs in CI alongside go vet and staticcheck:
//
//	go run ./cmd/eslint ./...        # whole module (the usual form)
//	go run ./cmd/eslint -list        # describe the analyzers
//	go run ./cmd/eslint -run wallclock,closeonce ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"eventspace/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: eslint [-list] [-run names] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Suite()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "eslint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	// The only supported patterns are the whole module (./... or no
	// argument) — the suite is cheap enough to always run whole.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "eslint: unsupported pattern %q; the suite runs whole-module (./...)\n", arg)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eslint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eslint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eslint:", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eslint:", err)
		return 2
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eslint:", err)
			return 2
		}
		for _, d := range diags {
			findings++
			pos := d.Pos
			if rel, err := filepath.Rel(root, pos.Filename); err == nil {
				pos.Filename = rel
			}
			fmt.Printf("%s:%d:%d: %s (%s)\n", pos.Filename, pos.Line, pos.Column, d.Message, d.Analyzer)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "eslint: %d finding(s) across %d package(s)\n", findings, len(pkgs))
		return 1
	}
	fmt.Fprintf(os.Stderr, "eslint: clean — %d package(s), %d analyzer(s)\n", len(pkgs), len(analyzers))
	return 0
}
