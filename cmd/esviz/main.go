// Command esviz runs a short monitored workload with an injected
// straggler and renders the monitoring views as text: the testbed
// topology, the instrumented spanning tree (figure 1), the load-balance
// monitor's weighted tree (figure 3's visualization input), statsm's
// per-wrapper statistics table (figure 4's analysis tree), and the
// self-metrics table accounting the monitoring stack's own costs.
//
// Usage:
//
//	esviz [-hosts N] [-iterations N] [-straggler port] [-delay d]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eventspace/internal/cluster"
	"eventspace/internal/core"
	"eventspace/internal/cosched"
	"eventspace/internal/metrics"
	"eventspace/internal/monitor"
	"eventspace/internal/viz"
)

func main() {
	hosts := flag.Int("hosts", 8, "Tin hosts in the cluster")
	iterations := flag.Int("iterations", 400, "workload iterations")
	straggler := flag.Int("straggler", 0, "thread index made artificially slow (-1 disables)")
	delay := flag.Duration("delay", 2*time.Millisecond, "straggler's extra per-iteration delay")
	flag.Parse()

	err := core.RunVirtual(func() error {
		sys, err := core.New(cluster.SingleTin(*hosts), cosched.AfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()
		reg := metrics.New()
		sys.UseMetrics(reg)

		tree, err := sys.BuildTree(cluster.TreeSpec{
			Name: "T1", Fanout: 8, ThreadsPerHost: 1,
			Instrument: true, TraceBufCap: *iterations / 4,
		})
		if err != nil {
			return err
		}

		cfg := monitor.DefaultConfig()
		cfg.PullInterval = 400 * time.Microsecond
		cfg.AnalysisInterval = 400 * time.Microsecond
		cfg.IntermediateCap = *iterations / 4
		lb, err := sys.AttachLoadBalance(tree, monitor.Distributed, cfg)
		if err != nil {
			return err
		}
		sm, err := sys.AttachStatsm(tree, cfg)
		if err != nil {
			return err
		}

		wl := core.Workload{Trees: []*cluster.Tree{tree}, Iterations: *iterations}
		if *straggler >= 0 {
			idx, d := *straggler, *delay
			wl.Delay = func(thread, iter int) time.Duration {
				if thread == idx {
					return d
				}
				return 0
			}
		}
		duration, err := sys.RunWorkload(wl)
		if err != nil {
			return err
		}

		fmt.Println("== topology ==")
		viz.Topology(os.Stdout, sys.Testbed())
		fmt.Println("\n== spanning tree (figure 1) ==")
		viz.Tree(os.Stdout, tree)
		fmt.Printf("\n== load-balance weighted tree (%v of modelled run) ==\n", duration.Round(time.Millisecond))
		viz.WeightedTree(os.Stdout, lb.Weighted())
		fmt.Println("\n== statsm analysis tree ==")
		viz.AnalysisTree(os.Stdout, sm.Tree(), tree)
		fmt.Println("\n== gather accounting ==")
		viz.GatherReport(os.Stdout, "load-balance scope", lb.GatherRate(), 0)
		viz.GatherReport(os.Stdout, "statsm wrapper scope", sm.WrapperGatherRate(), 0)
		viz.GatherReport(os.Stdout, "statsm thread scope", sm.ThreadGatherRate(), 0)
		fmt.Println("\n== self-metrics ==")
		viz.SelfMetrics(os.Stdout, reg.Snapshot())
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "esviz: %v\n", err)
		os.Exit(1)
	}
}
