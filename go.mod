module eventspace

go 1.22
