// Package eventspace is a Go reproduction of the EventSpace system from
// "Low Overhead High Performance Runtime Monitoring of Collective
// Communication" (Bongo, Anshus, Bjørndalen — ICPP 2005).
//
// EventSpace monitors collective communication from inside the
// communication system: event collectors record 28-byte trace tuples into
// bounded in-memory buffers on every host, and monitors pull, reduce and
// gather those tuples through configurable event scopes — collective
// communication structures of their own — analysing them on the fly with
// analysis threads coscheduled with the application.
//
// The package is a façade over the implementation packages:
//
//   - internal/pastset — the PastSet structured shared memory (bounded
//     tuple buffers with per-reader cursors);
//   - internal/paths — the PATHS communication system (wrappers, paths,
//     allreduce spanning trees, remote stubs, gather/scatter, all-to-all);
//   - internal/vnet — the virtual cluster testbed (hosts with CPU slots,
//     links, gateways, a real-TCP transport for the wire format);
//   - internal/wantrace — the Longcut WAN emulator's delay model;
//   - internal/vclock — the discrete-event virtual clock that makes
//     experiments exact, deterministic and fast;
//   - internal/collect, internal/escope, internal/analysis,
//     internal/cosched, internal/monitor — EventSpace itself;
//   - internal/cluster — the paper's testbed and tree generators;
//   - internal/bench — the experiment harness reproducing every table
//     and figure of the evaluation.
//
// # Quick start
//
//	err := eventspace.RunVirtual(func() error {
//	    sys, _ := eventspace.New(eventspace.SingleTin(8), eventspace.CoschedAfterUnblock)
//	    defer sys.Close()
//	    tree, _ := sys.BuildTree(eventspace.TreeSpec{
//	        Name: "T", Fanout: 8, ThreadsPerHost: 1, Instrument: true,
//	    })
//	    lb, _ := sys.AttachLoadBalance(tree, eventspace.Distributed, eventspace.DefaultMonitorConfig())
//	    sys.RunWorkload(eventspace.Workload{Trees: []*eventspace.Tree{tree}, Iterations: 1000})
//	    fmt.Println(lb.Weighted().Counts(tree.Nodes[0].Name))
//	    return nil
//	})
//
// See the examples directory for complete programs and EXPERIMENTS.md for
// the paper-versus-measured results.
package eventspace

import (
	"time"

	"eventspace/internal/archive"
	"eventspace/internal/checkpoint"
	"eventspace/internal/cluster"
	"eventspace/internal/collect"
	"eventspace/internal/core"
	"eventspace/internal/cosched"
	"eventspace/internal/escope"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/monitor"
	"eventspace/internal/paths"
	"eventspace/internal/query"
	"eventspace/internal/reconfig"
	"eventspace/internal/vnet"
)

// Core façade types.
type (
	// System is one EventSpace instance over a virtual testbed.
	System = core.System
	// Workload drives application threads over one or more trees.
	Workload = core.Workload

	// TestbedSpec describes the virtual testbed (clusters, sites, WAN).
	TestbedSpec = cluster.TestbedSpec
	// ClusterSpec places hosts of one class at a site.
	ClusterSpec = cluster.ClusterSpec
	// TreeSpec describes a collective spanning tree.
	TreeSpec = cluster.TreeSpec
	// Tree is a built spanning tree with its instrumentation.
	Tree = cluster.Tree
	// Testbed is the built virtual testbed.
	Testbed = cluster.Testbed

	// MonitorConfig tunes a monitor (helpers, pacing, coscheduling).
	MonitorConfig = monitor.Config
	// LoadBalance is the load-balance monitor (figure 3).
	LoadBalance = monitor.LoadBalance
	// Statsm is the statistics monitor (figure 4).
	Statsm = monitor.Statsm
	// WeightedTree is the front-end last-arrival state.
	WeightedTree = monitor.WeightedTree
	// AnalysisTree is the front-end statistics state.
	AnalysisTree = monitor.AnalysisTree
	// LoadBalanceMode selects single-scope or distributed analysis.
	LoadBalanceMode = monitor.LoadBalanceMode

	// Strategy selects the analysis-thread coscheduling strategy.
	Strategy = cosched.Strategy
)

// Load-balance monitor modes.
const (
	SingleScope = monitor.SingleScope
	Distributed = monitor.Distributed
)

// Coscheduling strategies (section 4.1).
const (
	CoschedNone         = cosched.None
	CoschedAfterSend    = cosched.AfterSend    // strategy 1
	CoschedAfterUnblock = cosched.AfterUnblock // strategy 2
)

// Fault injection and robustness (see DESIGN.md "Fault model").
type (
	// FaultPlan is a deterministic, seeded schedule of failures to
	// inject into the virtual network (Testbed.Net.InjectFaults).
	FaultPlan = vnet.FaultPlan
	// FaultEvent is one scheduled failure (crash, restart, partition,
	// heal, reset) applied at a virtual-time offset.
	FaultEvent = vnet.FaultEvent
	// FaultRule injects per-call drops and latency spikes, scoped by
	// host or cluster name.
	FaultRule = vnet.FaultRule
	// HealthPolicy enables per-child health tracking in monitor event
	// scopes (MonitorConfig.Health).
	HealthPolicy = escope.HealthPolicy
	// RetryPolicy makes remote stubs retry transport faults with capped
	// exponential backoff (MonitorConfig.Retry).
	RetryPolicy = paths.RetryPolicy
	// Coverage reports which source hosts a monitor currently hears from.
	Coverage = escope.Coverage
	// ChildHealth is a snapshot of one guarded gather child.
	ChildHealth = escope.ChildHealth
	// GuardRole says where in the scope tree a guarded link sits.
	GuardRole = escope.GuardRole
	// Transition is one guard state change, as delivered to transition
	// hooks and repair managers.
	Transition = escope.Transition

	// BreakerPolicy enables per-child straggler circuit breakers in
	// monitor event scopes (MonitorConfig.Breaker, requires Health):
	// outside strict mode every gather round's wait on a child is
	// bounded, and slow children are skipped and served stale within the
	// policy's staleness bound.
	BreakerPolicy = escope.BreakerPolicy
	// BreakerHealth is a snapshot of one child's straggler breaker.
	BreakerHealth = escope.BreakerHealth
	// ScopeMode is a rung of a scope's degradation ladder (strict,
	// bounded-staleness, summary-only).
	ScopeMode = escope.Mode
	// ModeChange is one degradation-ladder transition, as logged by the
	// scope and persisted to the archive as a control tuple.
	ModeChange = escope.ModeChange
	// IngestStats is a monitor ingest queue's shed/summarize accounting.
	IngestStats = collect.IngestStats
	// ModeReplay reconstructs a scope's mode history from an archive.
	ModeReplay = monitor.ModeReplay
)

// Degradation-ladder rungs (MonitorConfig.ScopeMode /
// LoadBalance.SetScopeMode). Strict is the paper's behaviour: every
// gather round waits for every child. Bounded-staleness cuts stragglers
// at the breaker deadline and coasts on stale data within the bound.
// Summary-only additionally sheds gathered payloads at the ingest queue,
// keeping only aggregate counts.
const (
	ModeStrict  = escope.ModeStrict
	ModeBounded = escope.ModeBounded
	ModeSummary = escope.ModeSummary
)

// Runtime tree repair (see DESIGN.md "Runtime reconfiguration"): a
// ReconfigManager attached to a load-balance monitor re-parents orphaned
// hosts or promotes a replacement gateway when a cluster gateway dies,
// and FailoverLoadBalance rebuilds a lost front-end's state from its
// sealed trace archive.
type (
	// ReconfigPolicy tunes the repair manager (fan-in cap, metrics,
	// plan observer).
	ReconfigPolicy = reconfig.Policy
	// ReconfigManager plans and executes runtime tree repairs
	// (System.AttachReconfig).
	ReconfigManager = reconfig.Manager
	// RepairPlan is one trigger's complete repair, with timing.
	RepairPlan = reconfig.RepairPlan
	// RepairStep is one action inside a repair plan.
	RepairStep = reconfig.RepairStep
	// RepairStepKind labels a repair step (reparent or promote).
	RepairStepKind = reconfig.StepKind
	// FailoverState is the archive-rebuilt front-end state handoff
	// (System.FailoverLoadBalance / System.FailoverStatsm).
	FailoverState = reconfig.FailoverState
	// LoadBalanceResume seeds a replacement load-balance monitor after a
	// front-end failover (LastArrivalReplay.Resume).
	LoadBalanceResume = monitor.LoadBalanceResume
)

// Guard roles (where in the scope tree a guarded link sits).
const (
	RoleLeaf   = escope.RoleLeaf
	RoleUplink = escope.RoleUplink
	RoleDirect = escope.RoleDirect
)

// Repair step kinds.
const (
	StepReparent = reconfig.StepReparent
	StepPromote  = reconfig.StepPromote
)

// Guard health states.
const (
	GuardAlive   = escope.Alive
	GuardSuspect = escope.Suspect
	GuardDead    = escope.Dead
)

// Self-metrics ("monitor the monitor", see DESIGN.md "Self-metrics").
type (
	// MetricsRegistry collects per-wrapper cost accounting for the
	// monitoring stack itself. Install it with System.UseMetrics or via
	// TreeSpec.Metrics / MonitorConfig.Metrics; nil disables.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of every site and counter.
	MetricsSnapshot = metrics.Snapshot
	// MetricsOpStats is one instrumented operation site's snapshot.
	MetricsOpStats = metrics.OpStats
)

// NewMetricsRegistry returns an empty self-metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// Trace archive: the persistent flight recorder (see DESIGN.md "Trace
// archive"). Record a run with System.AttachArchive, query it back with
// OpenArchive, and replay it through the monitors' joins with
// ReplayLastArrival / ReplayStats — or from the command line with
// cmd/esquery.
type (
	// ArchiveOptions configures an archive writer (directory, segment
	// size cap, retention cap, block size, self-metrics).
	ArchiveOptions = archive.Options
	// ArchiveWriter appends trace tuples to a segmented archive.
	ArchiveWriter = archive.Writer
	// ArchiveReader queries an archive directory.
	ArchiveReader = archive.Reader
	// ArchiveQuery selects tuples (ECID set, op kinds, stamp range).
	ArchiveQuery = archive.Query
	// ArchiveRecorder records a tree's trace tuples into an archive
	// alongside the live monitors (System.AttachArchive).
	ArchiveRecorder = core.ArchiveRecorder
	// CollectorInfo is one collector's identity in the archive's
	// metadata sidecar.
	CollectorInfo = archive.CollectorInfo
	// LastArrivalReplay re-runs the load-balance reduction offline.
	LastArrivalReplay = monitor.LastArrivalReplay
	// StatsReplay re-runs statsm's wrapper statistics offline.
	StatsReplay = monitor.StatsReplay
)

// Archive segment formats for ArchiveOptions.Format. Readers accept
// both per segment, so mixed-format directories stay fully queryable.
const (
	// ArchiveFormatRow stores blocks as rows of 28-byte tuples.
	ArchiveFormatRow = archive.FormatRow
	// ArchiveFormatColumnar (the default) stores blocks column by
	// column with dictionary/delta encodings and per-column CRCs, so
	// scans decode only the columns a query needs and skip blocks whose
	// dictionaries cannot match it.
	ArchiveFormatColumnar = archive.FormatColumnar
)

// Checkpointed crash recovery (see DESIGN.md "Checkpointed crash
// recovery"): a recorder attached with System.AttachArchiveCheckpointed
// periodically snapshots the front-end state its archive implies into a
// sidecar chain of ckpt-*.eckpt files. After a crash,
// System.RecoverLoadBalance restores from the newest valid checkpoint
// and replays only the archive suffix behind it — falling back rung by
// rung to full replay when the chain is damaged — and
// System.ResumeArchiveFrom continues recording (and alerting,
// mid-streak) from the recovered state.
type (
	// ArchiveCursor is a durable position in an archive's tuple stream
	// (ArchiveWriter.Position); checkpoints anchor their replay suffix
	// to one.
	ArchiveCursor = archive.Cursor
	// CheckpointConfig tunes a recorder's checkpointer (cadence in
	// tuples, chain length, metrics).
	CheckpointConfig = checkpoint.Config
	// Checkpointer rides a recorder's sink chain, snapshotting monitor
	// and query-engine state on cadence (ArchiveRecorder.Checkpointer).
	Checkpointer = checkpoint.Checkpointer
	// Checkpoint is one decoded snapshot frame.
	Checkpoint = checkpoint.Checkpoint
	// CheckpointChainInfo describes a directory's checkpoint chain walk
	// (entries found, invalid frames skipped).
	CheckpointChainInfo = checkpoint.ChainInfo
	// CrashPoints is a seeded crash-injection plan for an archive
	// writer and its checkpointer (ArchiveOptions.CrashPoints) —
	// test-only, for proving recovery invariants.
	CrashPoints = archive.CrashPoints
	// CrashSpec arms one injection site within a plan.
	CrashSpec = archive.CrashSpec
	// CrashSite names an injection site.
	CrashSite = archive.CrashSite
)

// Crash-injection sites (CrashSpec.Site).
const (
	CrashBlockFlush = archive.CrashBlockFlush
	CrashSeal       = archive.CrashSeal
	CrashRotate     = archive.CrashRotate
	CrashCheckpoint = archive.CrashCheckpoint
)

// ErrInjectedCrash is the sticky error a writer or checkpointer reports
// after its armed crash point fired.
var ErrInjectedCrash = archive.ErrInjectedCrash

// LoadNewestCheckpoint walks dir's checkpoint chain newest-first and
// returns the first frame that validates, with the walk's accounting.
// ok is false when no valid checkpoint exists.
func LoadNewestCheckpoint(dir string) (Checkpoint, CheckpointChainInfo, bool) {
	return checkpoint.LoadNewest(dir)
}

// RecoverFrontEnd rebuilds a crashed front end's state through the
// checkpoint recovery ladder without building a replacement monitor —
// the offline counterpart of System.RecoverLoadBalance. alerts are the
// crashed recorder's standing esql alert statements (none is fine).
func RecoverFrontEnd(dir string, reg *MetricsRegistry, alerts ...string) (*FailoverState, error) {
	stmts := make([]*query.Stmt, 0, len(alerts))
	for _, src := range alerts {
		st, err := query.Parse(src)
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
	}
	return reconfig.RecoverFrontEnd(dir, reg, stmts)
}

// NewArchiveWriter opens (or crash-safely reopens) an archive directory
// for appending.
func NewArchiveWriter(opts ArchiveOptions) (*ArchiveWriter, error) { return archive.Create(opts) }

// OpenArchive opens an archive directory for querying.
func OpenArchive(dir string) (*ArchiveReader, error) { return archive.OpenReader(dir) }

// ReadArchiveMeta loads an archive's collector-metadata sidecar.
func ReadArchiveMeta(dir string) ([]CollectorInfo, error) { return archive.ReadMeta(dir) }

// ReplayLastArrival re-runs the load-balance monitor's last-arrival
// reduction over archived tuples matching q.
func ReplayLastArrival(r *ArchiveReader, infos []CollectorInfo, q ArchiveQuery) (*LastArrivalReplay, error) {
	rep, _, err := archive.ReplayLastArrival(r, infos, q)
	return rep, err
}

// ReplayStats re-runs statsm's wrapper-statistics computation over
// archived tuples matching q (window < 1 uses the analysis default).
func ReplayStats(r *ArchiveReader, infos []CollectorInfo, q ArchiveQuery, window int) (*StatsReplay, error) {
	rep, _, err := archive.ReplayStats(r, infos, q, window)
	return rep, err
}

// ReplayModes reconstructs the named scope's degradation-ladder history
// from archived mode-transition control tuples matching q.
func ReplayModes(r *ArchiveReader, scope string, q ArchiveQuery) (*ModeReplay, error) {
	rep, _, err := archive.ReplayModes(r, scope, q)
	return rep, err
}

// Continuous queries (esql, see DESIGN.md "Query language"): a small
// typed query language over trace tuples. One-shot selects run against
// an archive with predicate pushdown into the header-index and columnar
// block-skip paths (cmd/esquery "query"); standing alert statements run
// continuously on the live gather stream
// (System.AttachArchiveQueries), firing alerts that are archived as
// OpAlert control tuples and regenerate byte-identically on replay.
type (
	// QueryStmt is a parsed, type-checked esql statement. Its String is
	// the canonical spelling; its Hash identifies it in alert tuples.
	QueryStmt = query.Stmt
	// QueryEngine evaluates standing alert statements over a tuple
	// stream (live or replayed).
	QueryEngine = query.Engine
	// QueryResult is an aggregate select's result table.
	QueryResult = query.Result
	// QueryRow is one result row (group, window bucket, values).
	QueryRow = query.Row
	// AlertTuple is one fired continuous-query alert, as encoded into
	// an OpAlert control tuple.
	AlertTuple = collect.AlertTuple
)

// ParseQuery parses and type-checks one esql statement.
func ParseQuery(src string) (*QueryStmt, error) { return query.Parse(src) }

// ReplayAlerts extracts the archived alert control tuples matching q,
// in firing order.
func ReplayAlerts(r *ArchiveReader, q ArchiveQuery) ([]AlertTuple, error) {
	out, _, err := archive.ReplayAlerts(r, q)
	return out, err
}

// RegenerateAlerts re-runs standing alert statements over an archive's
// data tuples, regenerating the alert stream a live engine with the
// same statements produced. expected is the coverage() roster size
// (len of ReadArchiveMeta's result for the recorded tree).
func RegenerateAlerts(r *ArchiveReader, stmts []*QueryStmt, expected int) ([]AlertTuple, error) {
	return query.Replay(r, stmts, expected)
}

// Fault event kinds.
const (
	FaultCrash     = vnet.FaultCrash
	FaultRestart   = vnet.FaultRestart
	FaultPartition = vnet.FaultPartition
	FaultHeal      = vnet.FaultHeal
	FaultReset     = vnet.FaultReset
	FaultSlow      = vnet.FaultSlow
	FaultFast      = vnet.FaultFast
)

// New builds a System over the given testbed specification.
func New(spec TestbedSpec, strategy Strategy) (*System, error) {
	return core.New(spec, strategy)
}

// RunVirtual executes fn under the discrete-event virtual clock: modelled
// delays cost no real time and results are exact and deterministic.
func RunVirtual(fn func() error) error { return core.RunVirtual(fn) }

// SleepOutside waits d of model time from the driver goroutine (the
// function passed to RunVirtual), e.g. between polls of monitor state.
// The driver is not a model participant, so it must not use a model
// sleep; this parks it on an outside timer that the clock honours
// without counting the driver as a runnable model goroutine.
func SleepOutside(d time.Duration) { hrtime.SleepOutside(d) }

// DefaultMonitorConfig returns the configuration the paper converged on:
// parallel gathering, coscheduling strategy 2, TCP statistics computed at
// the destination host.
func DefaultMonitorConfig() MonitorConfig { return monitor.DefaultConfig() }

// Standard topologies from the paper's evaluation (section 5).
var (
	// SingleTin is a one-cluster testbed of n Tin hosts.
	SingleTin = cluster.SingleTin
	// LANMulti joins Tin and Iron clusters over 100 Mbit Ethernet.
	LANMulti = cluster.LANMulti
	// LANMultiFour adds the Copper and Lead clusters.
	LANMultiFour = cluster.LANMultiFour
	// WANMulti splits Tin and Iron into six sub-clusters across the
	// Longcut trace sites.
	WANMulti = cluster.WANMulti
)
