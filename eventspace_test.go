package eventspace

import (
	"testing"
	"time"
)

// TestFacadeQuickstart runs the doc-comment quick start end to end.
func TestFacadeQuickstart(t *testing.T) {
	err := RunVirtual(func() error {
		sys, err := New(SingleTin(8), CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(TreeSpec{
			Name: "T", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 256,
		})
		if err != nil {
			return err
		}
		cfg := DefaultMonitorConfig()
		cfg.PullInterval = 300 * time.Microsecond
		cfg.AnalysisInterval = 300 * time.Microsecond
		lb, err := sys.AttachLoadBalance(tree, Distributed, cfg)
		if err != nil {
			return err
		}
		if _, err := sys.RunWorkload(Workload{Trees: []*Tree{tree}, Iterations: 100}); err != nil {
			return err
		}
		if lb.TraceReadRate() <= 0 {
			t.Error("monitor read nothing")
		}
		sys.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTopologies(t *testing.T) {
	for _, spec := range []TestbedSpec{
		SingleTin(4), LANMulti(3, 3), LANMultiFour(3, 2, 2), WANMulti(2, 2, 1, 0),
	} {
		if len(spec.Clusters) == 0 {
			t.Fatal("empty topology")
		}
	}
}

func TestFacadeConstants(t *testing.T) {
	if SingleScope == Distributed {
		t.Fatal("modes collide")
	}
	if CoschedNone == CoschedAfterSend || CoschedAfterSend == CoschedAfterUnblock {
		t.Fatal("strategies collide")
	}
	cfg := DefaultMonitorConfig()
	if cfg.Strategy != CoschedAfterUnblock {
		t.Fatal("default strategy diverges from the paper")
	}
}
