package eventspace

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"eventspace/internal/collect"
	"eventspace/internal/viz"
)

// TestFacadeQuickstart runs the doc-comment quick start end to end.
func TestFacadeQuickstart(t *testing.T) {
	err := RunVirtual(func() error {
		sys, err := New(SingleTin(8), CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(TreeSpec{
			Name: "T", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 256,
		})
		if err != nil {
			return err
		}
		cfg := DefaultMonitorConfig()
		cfg.PullInterval = 300 * time.Microsecond
		cfg.AnalysisInterval = 300 * time.Microsecond
		lb, err := sys.AttachLoadBalance(tree, Distributed, cfg)
		if err != nil {
			return err
		}
		if _, err := sys.RunWorkload(Workload{Trees: []*Tree{tree}, Iterations: 100}); err != nil {
			return err
		}
		if lb.TraceReadRate() <= 0 {
			t.Error("monitor read nothing")
		}
		sys.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestArchiveReplayMatchesLiveLoadBalance is the determinism contract of
// the trace archive: recording a run and replaying the archive through
// the load-balance join offline must reproduce the live single-scope
// monitor's per-round last-arrival verdicts exactly — same weighted
// tree, byte for byte in the viz rendering — whichever segment format
// the recorder wrote. The run is sized so neither side loses tuples
// (large trace buffers, continuous pulls, no retention), which the test
// asserts before comparing.
func TestArchiveReplayMatchesLiveLoadBalance(t *testing.T) {
	for _, format := range []struct {
		name string
		f    int
	}{{"row", ArchiveFormatRow}, {"columnar", ArchiveFormatColumnar}} {
		t.Run(format.name, func(t *testing.T) {
			testArchiveReplayMatchesLiveLoadBalance(t, format.f)
		})
	}
}

func testArchiveReplayMatchesLiveLoadBalance(t *testing.T, format int) {
	dir := t.TempDir()
	var liveOut bytes.Buffer
	const iters = 60
	err := RunVirtual(func() error {
		sys, err := New(SingleTin(8), CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(TreeSpec{
			Name: "T", Fanout: 4, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 4096,
		})
		if err != nil {
			return err
		}
		cfg := DefaultMonitorConfig()
		cfg.PullInterval = 200 * time.Microsecond
		lb, err := sys.AttachLoadBalance(tree, SingleScope, cfg)
		if err != nil {
			return err
		}
		// Small segments force several rotations mid-run; no retention
		// cap, so nothing recorded is deleted.
		rec, err := sys.AttachArchive(tree, 200*time.Microsecond, ArchiveOptions{
			Dir: dir, SegmentBytes: 4096, Format: format,
		})
		if err != nil {
			return err
		}
		if _, err := sys.RunWorkload(Workload{Trees: []*Tree{tree}, Iterations: iters}); err != nil {
			return err
		}
		// Every node joins every iteration: wait for the live monitor to
		// observe all rounds so the comparison is loss-free on its side.
		want := uint64(iters * len(tree.Nodes))
		for i := 0; lb.RoundsObserved() < want; i++ {
			if i > 5000 {
				t.Errorf("live monitor observed %d rounds, want %d", lb.RoundsObserved(), want)
				break
			}
			SleepOutside(100 * time.Microsecond)
		}
		rec.Stop()
		if err := rec.Err(); err != nil {
			return err
		}
		if rate := lb.GatherRate(); rate < 1 {
			t.Errorf("live monitor lost tuples (gather rate %v); comparison not meaningful", rate)
		}
		if err := viz.WeightedTree(&liveOut, lb.Weighted()); err != nil {
			return err
		}
		sys.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	r, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := ReadArchiveMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayLastArrival(r, infos, ArchiveQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if lost := rep.Lost(); lost != 0 {
		t.Fatalf("replay evicted %d incomplete rounds", lost)
	}
	var replayOut bytes.Buffer
	if err := viz.WeightedTree(&replayOut, rep.Weighted()); err != nil {
		t.Fatal(err)
	}
	if liveOut.String() != replayOut.String() {
		t.Fatalf("replay diverged from live monitor\n--- live ---\n%s--- replay ---\n%s",
			liveOut.String(), replayOut.String())
	}
	if replayOut.Len() == 0 {
		t.Fatal("empty weighted trees compared")
	}
}

// TestFrontEndFailoverResumesByteIdentical is the failover acceptance
// contract: a run whose front-end monitor dies at a quiesce point and is
// replaced by one rebuilt from the sealed archive must, at the end, have
// a weighted tree byte-identical to an offline replay of the run's
// complete archive (the sealed pre-failover directory plus the resumed
// one, fed in sequence) — no round lost to the handoff, none counted
// twice.
func TestFrontEndFailoverResumesByteIdentical(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	var liveOut bytes.Buffer
	const it1, it2 = 40, 40
	err := RunVirtual(func() error {
		sys, err := New(SingleTin(8), CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(TreeSpec{
			Name: "T", Fanout: 4, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 4096,
		})
		if err != nil {
			return err
		}
		cfg := DefaultMonitorConfig()
		cfg.PullInterval = 200 * time.Microsecond
		lb, err := sys.AttachLoadBalance(tree, SingleScope, cfg)
		if err != nil {
			return err
		}
		rec, err := sys.AttachArchive(tree, 200*time.Microsecond, ArchiveOptions{
			Dir: dir1, SegmentBytes: 4096,
		})
		if err != nil {
			return err
		}
		if _, err := sys.RunWorkload(Workload{Trees: []*Tree{tree}, Iterations: it1}); err != nil {
			return err
		}
		// Quiesce: the live monitor observes every phase-1 round, then the
		// archive is sealed with its final drain.
		want1 := uint64(it1 * len(tree.Nodes))
		for i := 0; lb.RoundsObserved() < want1; i++ {
			if i > 5000 {
				t.Errorf("phase 1 observed %d rounds, want %d", lb.RoundsObserved(), want1)
				break
			}
			SleepOutside(100 * time.Microsecond)
		}
		rec.Stop()
		if err := rec.Err(); err != nil {
			return err
		}
		// The front-end "dies": its monitor and in-memory state are gone.
		lb.Stop()

		// Failover: a replacement monitor seeded from the sealed archive,
		// plus a recorder continuing into a fresh directory.
		lb2, st, err := sys.FailoverLoadBalance(tree, cfg, dir1)
		if err != nil {
			return err
		}
		if st.RoundsRecovered != want1 {
			t.Errorf("failover recovered %d rounds, want %d", st.RoundsRecovered, want1)
		}
		if st.TuplesMatched == 0 {
			t.Error("failover replay matched no tuples")
		}
		if lb2.RoundsObserved() != want1 {
			t.Errorf("replacement starts at %d rounds, want %d", lb2.RoundsObserved(), want1)
		}
		// The statistics side of the handoff: a replacement statsm starts
		// from the archive-replayed analysis tree, not from zero.
		sm2, err := sys.FailoverStatsm(tree, cfg, st)
		if err != nil {
			return err
		}
		if len(sm2.Tree().IDs()) == 0 {
			t.Error("failover statsm seeded with an empty analysis tree")
		}
		rec2, err := sys.ResumeArchive(tree, 200*time.Microsecond, ArchiveOptions{
			Dir: dir2, SegmentBytes: 4096,
		})
		if err != nil {
			return err
		}
		if _, err := sys.RunWorkload(Workload{Trees: []*Tree{tree}, Iterations: it2}); err != nil {
			return err
		}
		want := uint64((it1 + it2) * len(tree.Nodes))
		for i := 0; lb2.RoundsObserved() < want; i++ {
			if i > 5000 {
				t.Errorf("after failover observed %d rounds, want %d", lb2.RoundsObserved(), want)
				break
			}
			SleepOutside(100 * time.Microsecond)
		}
		rec2.Stop()
		if err := rec2.Err(); err != nil {
			return err
		}
		if err := viz.WeightedTree(&liveOut, lb2.Weighted()); err != nil {
			return err
		}
		sys.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Offline: the sealed and resumed archives, fed in sequence into one
	// replay, must reproduce the failover run's live weighted tree.
	r1, err := OpenArchive(dir1)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := ReadArchiveMeta(dir1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayLastArrival(r1, infos, ArchiveQuery{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OpenArchive(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Scan(ArchiveQuery{}, func(tu collect.TraceTuple) bool {
		rep.Feed(tu)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if lost := rep.Lost(); lost != 0 {
		t.Fatalf("combined replay evicted %d rounds", lost)
	}
	var replayOut bytes.Buffer
	if err := viz.WeightedTree(&replayOut, rep.Weighted()); err != nil {
		t.Fatal(err)
	}
	if liveOut.String() != replayOut.String() {
		t.Fatalf("failover run diverged from its own archive\n--- live ---\n%s--- replay ---\n%s",
			liveOut.String(), replayOut.String())
	}
	if replayOut.Len() == 0 {
		t.Fatal("empty weighted trees compared")
	}
}

// TestDegradedRunReplaysByteIdentical is the degradation-ladder
// acceptance contract: a run that walks the ladder (strict ->
// bounded-staleness mid-traffic, then summary-only at quiesce) while an
// archive recorder captures both data and mode-transition control
// tuples must replay byte-identically — the offline mode history
// renders exactly as the live scope's log, and the data replay is
// undisturbed by the interleaved control tuples.
func TestDegradedRunReplaysByteIdentical(t *testing.T) {
	dir := t.TempDir()
	var liveModes, liveTree bytes.Buffer
	var scopeName string
	const it1, it2 = 30, 30
	err := RunVirtual(func() error {
		sys, err := New(SingleTin(8), CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(TreeSpec{
			Name: "T", Fanout: 4, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 4096,
		})
		if err != nil {
			return err
		}
		cfg := DefaultMonitorConfig()
		cfg.PullInterval = 200 * time.Microsecond
		cfg.Health = &HealthPolicy{}
		// A breaker with a generous deadline: the ladder engages but no
		// child is slow enough to trip, so no round loses data.
		cfg.Breaker = &BreakerPolicy{RoundDeadline: 50 * time.Millisecond}
		lb, err := sys.AttachLoadBalance(tree, SingleScope, cfg)
		if err != nil {
			return err
		}
		scopeName = lb.Scope().Name()
		if lb.ScopeMode() != ModeStrict {
			t.Errorf("initial mode %v, want strict", lb.ScopeMode())
		}
		rec, err := sys.AttachArchive(tree, 200*time.Microsecond, ArchiveOptions{
			Dir: dir, SegmentBytes: 4096,
		})
		if err != nil {
			return err
		}
		rec.RecordModes(lb)
		if _, err := sys.RunWorkload(Workload{Trees: []*Tree{tree}, Iterations: it1}); err != nil {
			return err
		}
		// Walk the ladder mid-traffic: strict -> bounded-staleness.
		lb.SetScopeMode(ModeBounded)
		if _, err := sys.RunWorkload(Workload{Trees: []*Tree{tree}, Iterations: it2}); err != nil {
			return err
		}
		want := uint64((it1 + it2) * len(tree.Nodes))
		for i := 0; lb.RoundsObserved() < want; i++ {
			if i > 5000 {
				t.Errorf("observed %d rounds, want %d", lb.RoundsObserved(), want)
				break
			}
			SleepOutside(100 * time.Microsecond)
		}
		// Final rung at quiesce, so the shed counters stay zero and the
		// weighted trees stay comparable.
		lb.SetScopeMode(ModeSummary)
		if lb.ScopeMode() != ModeSummary {
			t.Errorf("mode %v after final rung, want summary-only", lb.ScopeMode())
		}
		rec.Stop()
		if err := rec.Err(); err != nil {
			return err
		}
		if rate := lb.GatherRate(); rate < 1 {
			t.Errorf("degraded run lost tuples (gather rate %v) despite idle breaker", rate)
		}
		if st := lb.IngestStats(); st.ShedBatches != 0 || st.ShedTuples != 0 {
			t.Errorf("ingest shed %d batches / %d tuples in an unloaded run", st.ShedBatches, st.ShedTuples)
		}
		if err := viz.Modes(&liveModes, scopeName, lb.ScopeModeLog()); err != nil {
			return err
		}
		if err := viz.WeightedTree(&liveTree, lb.Weighted()); err != nil {
			return err
		}
		sys.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	r, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayModes(r, scopeName, ArchiveQuery{})
	if err != nil {
		t.Fatal(err)
	}
	changes := rep.Changes()
	if len(changes) != 2 {
		t.Fatalf("replayed %d mode transitions, want 2 (got %+v)", len(changes), changes)
	}
	if changes[0].From != ModeStrict || changes[0].To != ModeBounded ||
		changes[1].From != ModeBounded || changes[1].To != ModeSummary {
		t.Fatalf("replayed ladder %+v, want strict->bounded->summary", changes)
	}
	var repModes bytes.Buffer
	if err := viz.Modes(&repModes, scopeName, changes); err != nil {
		t.Fatal(err)
	}
	if liveModes.String() != repModes.String() {
		t.Fatalf("mode history diverged\n--- live ---\n%s--- replay ---\n%s",
			liveModes.String(), repModes.String())
	}
	// The interleaved control tuples must not perturb the data replay.
	infos, err := ReadArchiveMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	larep, err := ReplayLastArrival(r, infos, ArchiveQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if lost := larep.Lost(); lost != 0 {
		t.Fatalf("data replay evicted %d rounds", lost)
	}
	var repTree bytes.Buffer
	if err := viz.WeightedTree(&repTree, larep.Weighted()); err != nil {
		t.Fatal(err)
	}
	if liveTree.String() != repTree.String() {
		t.Fatalf("degraded run's data diverged from its archive\n--- live ---\n%s--- replay ---\n%s",
			liveTree.String(), repTree.String())
	}
	if repTree.Len() == 0 || repModes.Len() == 0 {
		t.Fatal("empty renderings compared")
	}
}

func TestFacadeTopologies(t *testing.T) {
	for _, spec := range []TestbedSpec{
		SingleTin(4), LANMulti(3, 3), LANMultiFour(3, 2, 2), WANMulti(2, 2, 1, 0),
	} {
		if len(spec.Clusters) == 0 {
			t.Fatal("empty topology")
		}
	}
}

func TestFacadeConstants(t *testing.T) {
	if SingleScope == Distributed {
		t.Fatal("modes collide")
	}
	if CoschedNone == CoschedAfterSend || CoschedAfterSend == CoschedAfterUnblock {
		t.Fatal("strategies collide")
	}
	cfg := DefaultMonitorConfig()
	if cfg.Strategy != CoschedAfterUnblock {
		t.Fatal("default strategy diverges from the paper")
	}
}

// TestContinuousQueryAlertFiresAndReplays is the alert-replay contract
// of the continuous-query engine, end to end through the façade: a
// chaos run with injected latency spikes fires standing esql alerts,
// the alerts are archived as OpAlert control tuples next to the data
// tuples, and two independent offline paths — decoding the archived
// alert tuples, and re-running the same statements over the archived
// data — reproduce the live alert stream exactly, on both segment
// formats.
func TestContinuousQueryAlertFiresAndReplays(t *testing.T) {
	for _, format := range []struct {
		name string
		f    int
	}{{"row", ArchiveFormatRow}, {"columnar", ArchiveFormatColumnar}} {
		t.Run(format.name, func(t *testing.T) {
			testContinuousQueryAlertFiresAndReplays(t, format.f)
		})
	}
}

func testContinuousQueryAlertFiresAndReplays(t *testing.T, format int) {
	dir := t.TempDir()
	// Two standing queries: a latency-spike detector the injected chaos
	// should trip, and an activity alert guaranteed to fire once two
	// consecutive windows hold data.
	sources := []string{
		"alert when p99(latency) > 1ms by ecid window 1ms",
		"alert when count() > 0 window 1ms for 2 rounds",
	}
	var live []AlertTuple
	err := RunVirtual(func() error {
		sys, err := New(SingleTin(8), CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()
		tree, err := sys.BuildTree(TreeSpec{
			Name: "T", Fanout: 4, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 4096,
		})
		if err != nil {
			return err
		}
		// Latency chaos: a third of all message legs take an extra 2ms.
		sys.Testbed().Net.InjectFaults(FaultPlan{
			Seed:  11,
			Rules: []FaultRule{{SpikeProb: 0.3, SpikeDelay: 2 * time.Millisecond}},
		})
		rec, err := sys.AttachArchiveQueries(tree, 200*time.Microsecond, ArchiveOptions{
			Dir: dir, SegmentBytes: 4096, Format: format,
		}, sources...)
		if err != nil {
			return err
		}
		if _, err := sys.RunWorkload(Workload{Trees: []*Tree{tree}, Iterations: 60}); err != nil {
			return err
		}
		rec.Stop()
		if err := rec.Err(); err != nil {
			return err
		}
		live = rec.Alerts()
		sys.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		t.Fatal("no alerts fired during the chaos run")
	}

	r, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	archived, err := ReplayAlerts(r, ArchiveQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(archived, live) {
		t.Fatalf("archived alert tuples differ from live:\narchived %v\nlive     %v", archived, live)
	}
	stmts := make([]*QueryStmt, len(sources))
	for i, src := range sources {
		if stmts[i], err = ParseQuery(src); err != nil {
			t.Fatal(err)
		}
	}
	regen, err := RegenerateAlerts(r, stmts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(regen, live) {
		t.Fatalf("regenerated alerts differ from live:\nregen %v\nlive  %v", regen, live)
	}
}
