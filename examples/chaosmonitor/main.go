// Chaos monitoring: a compute-gsum application on a LAN multi-cluster is
// observed by a load-balance monitor hardened with retrying stubs and
// per-child health guards. A deterministic fault plan first crashes a
// *gateway*: the reconfig manager repairs the scope tree at runtime by
// re-parenting the orphaned host chains, and monitoring continues through
// the repaired paths. A straggler storm then slows one compute host 100x:
// the monitor walks its degradation ladder (strict -> bounded-staleness
// -> summary-only), circuit-breaking the straggler at the round deadline
// instead of stalling. Finally a plan crashes one compute host: the
// monitor degrades to partial coverage (reporting who is missing) instead
// of failing, and recovers on its own once the host restarts — the
// robustness layers of DESIGN.md's "Fault model", "Runtime
// reconfiguration" and "Degraded monitoring modes".
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"eventspace"
	"eventspace/internal/viz"
)

func main() {
	err := eventspace.RunVirtual(func() error {
		sys, err := eventspace.New(eventspace.LANMulti(4, 3), eventspace.CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()

		tree, err := sys.BuildTree(eventspace.TreeSpec{
			Name: "cg", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 400,
		})
		if err != nil {
			return err
		}

		cfg := eventspace.DefaultMonitorConfig()
		cfg.PullInterval = 400 * time.Microsecond
		cfg.Health = &eventspace.HealthPolicy{DeadAfter: 2, ProbeBase: 2 * time.Millisecond, ProbeMax: 20 * time.Millisecond}
		cfg.Retry = &eventspace.RetryPolicy{MaxAttempts: 2, BaseBackoff: 200 * time.Microsecond}
		// Straggler circuit breakers for the degradation-ladder phase:
		// pass-through while the scope stays in strict mode.
		cfg.Breaker = &eventspace.BreakerPolicy{
			RoundDeadline:  2 * time.Millisecond,
			TripAfter:      2,
			ReopenBase:     4 * time.Millisecond,
			ReopenMax:      40 * time.Millisecond,
			StalenessBound: 100 * time.Millisecond,
		}
		lb, err := sys.AttachLoadBalance(tree, eventspace.SingleScope, cfg)
		if err != nil {
			return err
		}

		report := func(phase string) {
			cov := lb.Coverage()
			fmt.Printf("%-22s coverage %d/%d", phase, cov.Reporting, cov.Expected)
			if len(cov.Missing) > 0 {
				fmt.Printf("  missing %v", cov.Missing)
			}
			fmt.Println()
		}

		// Phase 1: a healthy run. The monitor observes every host.
		if _, err := sys.RunWorkload(eventspace.Workload{
			Trees: []*eventspace.Tree{tree}, Iterations: 600, Compute: 200 * time.Microsecond,
		}); err != nil {
			return err
		}
		waitCoverage := func(want func(eventspace.Coverage) bool) bool {
			for i := 0; i < 4000; i++ {
				if want(lb.Coverage()) {
					return true
				}
				eventspace.SleepOutside(time.Millisecond)
			}
			return false
		}
		if !waitCoverage(func(c eventspace.Coverage) bool { return c.Complete() }) {
			return fmt.Errorf("monitor never reached full coverage")
		}
		report("healthy:")
		fmt.Printf("rounds observed: %d, gather rate %.2f\n", lb.RoundsObserved(), lb.GatherRate())

		// Phase 2: runtime tree repair. A reconfig manager subscribes to
		// the scope's guard transitions; crashing a *gateway* orphans its
		// whole cluster behind a dead uplink — a failure the probe/redial
		// machinery alone cannot route around. The manager re-parents the
		// orphaned hosts under the surviving gateway, and coverage closes
		// without restarting anything. Gateways carry no application
		// traffic, so the compute tree is untouched.
		mgr, err := sys.AttachReconfig(lb, eventspace.ReconfigPolicy{})
		if err != nil {
			return err
		}
		gw := sys.Testbed().Clusters[1].Gateway()
		net := sys.Testbed().Net
		net.InjectFaults(eventspace.FaultPlan{
			Events: []eventspace.FaultEvent{{Kind: eventspace.FaultCrash, Host: gw.Name()}},
		})
		if !waitCoverage(func(c eventspace.Coverage) bool { return c.Complete() && len(mgr.Plans()) > 0 }) {
			return fmt.Errorf("coverage never recovered after crashing gateway %s: %+v", gw.Name(), lb.Coverage())
		}
		report("after gw repair:")

		// Phase 3: the repaired tree keeps monitoring. Another workload
		// burst flows through the re-parented paths.
		before := lb.RoundsObserved()
		if _, err := sys.RunWorkload(eventspace.Workload{
			Trees: []*eventspace.Tree{tree}, Iterations: 200, Compute: 200 * time.Microsecond,
		}); err != nil {
			return err
		}
		for i := 0; i < 4000 && lb.RoundsObserved() == before; i++ {
			eventspace.SleepOutside(time.Millisecond)
		}
		fmt.Printf("rounds observed through repaired tree: %d (was %d)\n", lb.RoundsObserved(), before)
		viz.RepairPlans(os.Stdout, mgr.Plans())

		// Phase 4: graceful overload degradation. A *straggler* this
		// time, not a crash: FaultSlow inflates one compute host's
		// service time 100x, so a strict gather round would wait several
		// milliseconds on it. Stepping the ladder down to
		// bounded-staleness cuts the straggler off at the breaker's round
		// deadline: rounds stay fast, coverage names the host as stale
		// (served from its last delivered data, age-bounded) or skipped,
		// and every rung change is logged as a first-class mode event.
		// The straggler must be a monitored source: the tree places its
		// wrappers (and trace buffers) on the per-cluster node hosts, so
		// slow the iron cluster's node host.
		slowpoke := sys.Testbed().Clusters[1].Hosts()[0]
		net.InjectFaults(eventspace.FaultPlan{
			Seed:   7,
			Events: []eventspace.FaultEvent{{Kind: eventspace.FaultSlow, Host: slowpoke.Name(), Factor: 100}},
		})
		lb.SetScopeMode(eventspace.ModeBounded)
		if _, err := sys.RunWorkload(eventspace.Workload{
			Trees: []*eventspace.Tree{tree}, Iterations: 150, Compute: 200 * time.Microsecond,
		}); err != nil {
			return err
		}
		degraded := func(c eventspace.Coverage) bool {
			for _, h := range append(append([]string{}, c.Stale...), c.Skipped...) {
				if h == slowpoke.Name() {
					return true
				}
			}
			return false
		}
		if !waitCoverage(degraded) {
			return fmt.Errorf("straggler %s never reported stale/skipped: %+v", slowpoke.Name(), lb.Coverage())
		}
		cov := lb.Coverage()
		fmt.Printf("degraded (bounded):    straggler %s  stale %v  skipped %v  staleness bound %v\n",
			slowpoke.Name(), cov.Stale, cov.Skipped, cov.Bound)
		var trips uint64
		for _, brh := range lb.Breakers() {
			trips += brh.Trips
		}
		fmt.Printf("breaker trips so far: %d\n", trips)

		// The last rung, summary-only, additionally sheds gathered
		// payloads at the ingest queue, keeping aggregate counts.
		lb.SetScopeMode(eventspace.ModeSummary)
		if _, err := sys.RunWorkload(eventspace.Workload{
			Trees: []*eventspace.Tree{tree}, Iterations: 100, Compute: 200 * time.Microsecond,
		}); err != nil {
			return err
		}
		for i := 0; i < 4000 && lb.IngestStats().SummarizedBatches == 0; i++ {
			eventspace.SleepOutside(time.Millisecond)
		}
		st := lb.IngestStats()
		fmt.Printf("summary-only: %d batches (%d tuples) folded to counters\n",
			st.SummarizedBatches, st.SummarizedTuples)

		// The straggler recovers; climb back to strict and continue.
		net.ClearFaults()
		lb.SetScopeMode(eventspace.ModeStrict)
		viz.Modes(os.Stdout, lb.Scope().Name(), lb.ScopeModeLog())

		// Phase 5: a second fault plan crashes one compute host. The
		// monitor's pulls keep succeeding on partial data; the health
		// guards declare the host dead and coverage reports the gap.
		// (Crashing a compute host also resets its application-tree
		// connections, which have no redial layer — so this is the
		// example's final act.)
		victim := sys.Testbed().Clusters[1].Hosts()[0]
		inj := net.InjectFaults(eventspace.FaultPlan{
			Seed:   42,
			Events: []eventspace.FaultEvent{{Kind: eventspace.FaultCrash, Host: victim.Name()}},
		})
		if !waitCoverage(func(c eventspace.Coverage) bool { return !c.Complete() }) {
			return fmt.Errorf("coverage never dipped after crashing %s", victim.Name())
		}
		report("after crash:")
		fmt.Printf("monitor still answering: rounds observed %d\n", lb.RoundsObserved())

		// Phase 6: restart the host. Backed-off probes redial, the guard
		// recovers, and coverage closes without operator action.
		net.ClearFaults()
		net.InjectFaults(eventspace.FaultPlan{
			Events: []eventspace.FaultEvent{{Kind: eventspace.FaultRestart, Host: victim.Name()}},
		})
		if !waitCoverage(func(c eventspace.Coverage) bool { return c.Complete() }) {
			return fmt.Errorf("coverage never recovered after restarting %s: %+v", victim.Name(), lb.ChildHealth())
		}
		report("after restart:")
		var recoveries, faults uint64
		for _, h := range lb.ChildHealth() {
			recoveries += h.Recoveries
			faults += h.Faults
		}
		fmt.Printf("guards absorbed %d transport faults, %d recoveries\n", faults, recoveries)
		for _, rec := range inj.Log() {
			fmt.Printf("fault log: t=%-8v %s %s\n", rec.At, rec.Kind, rec.Target)
		}
		viz.CoverageDetail(os.Stdout, lb.Coverage())
		net.ClearFaults()
		return nil
	})
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}
