// Statistics monitoring with coscheduling: runs gsum under statsm three
// times — analysis threads free-running, with coscheduling strategy 1,
// and with strategy 2 — and reports each configuration's monitoring
// overhead, reproducing the section 6.3.1 experiment that cut statsm's
// overhead from 9% to 1%.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"eventspace"
	"eventspace/internal/analysis"
	"eventspace/internal/viz"
)

func run(strategy eventspace.Strategy, label string) error {
	return eventspace.RunVirtual(func() error {
		const rounds = 2400

		// gsum alternates between two identical trees; only the first
		// is monitored, as in the paper's experiments.
		buildTrees := func(sys *eventspace.System, instrument bool) ([]*eventspace.Tree, error) {
			var trees []*eventspace.Tree
			for _, name := range []string{"g1", "g2"} {
				tr, err := sys.BuildTree(eventspace.TreeSpec{
					Name: name, Fanout: 8, ThreadsPerHost: 1,
					Instrument: instrument, TraceBufCap: rounds / 5,
				})
				if err != nil {
					return nil, err
				}
				trees = append(trees, tr)
			}
			return trees, nil
		}

		// Base: the same trees without any monitor.
		base, err := eventspace.New(eventspace.SingleTin(16), strategy)
		if err != nil {
			return err
		}
		trees, err := buildTrees(base, false)
		if err != nil {
			return err
		}
		baseDur, err := base.RunWorkload(eventspace.Workload{Trees: trees, Iterations: rounds})
		if err != nil {
			return err
		}
		base.Close()

		// Monitored: identical trees with statsm attached to the first.
		sys, err := eventspace.New(eventspace.SingleTin(16), strategy)
		if err != nil {
			return err
		}
		defer sys.Close()
		trees, err = buildTrees(sys, true)
		if err != nil {
			return err
		}
		tree := trees[0]
		cfg := eventspace.DefaultMonitorConfig()
		cfg.Strategy = strategy
		cfg.PullInterval = 400 * time.Microsecond
		cfg.IntermediateCap = rounds / 5
		sm, err := sys.AttachStatsm(tree, cfg)
		if err != nil {
			return err
		}
		monDur, err := sys.RunWorkload(eventspace.Workload{Trees: trees, Iterations: rounds})
		if err != nil {
			return err
		}

		overhead := float64(monDur-baseDur) / float64(baseDur) * 100
		fmt.Printf("%-22s base=%-12v monitored=%-12v overhead=%5.1f%%  (rounds analyzed: %d, tcp samples: %d)\n",
			label, baseDur.Round(time.Microsecond), monDur.Round(time.Microsecond),
			overhead, sm.RoundsAnalyzed(), sm.TCPSamples())

		if strategy == eventspace.CoschedAfterUnblock {
			// Show what the front-end sees for the root wrapper.
			root := tree.Nodes[0]
			fmt.Println("\nfront-end analysis tree (root wrapper excerpt):")
			if rec, ok := sm.Tree().Get(root.CollectiveEC.ID(), analysis.KindTotal); ok {
				fmt.Printf("  total latency: mean=%.0fus min=%.0fus max=%.0fus std=%.0fus median=%.0fus\n",
					rec.Mean, rec.Min, rec.Max, rec.Std, rec.Median)
			}
			viz.GatherReport(os.Stdout, "  wrapper statistics", sm.WrapperGatherRate(), 0)
			viz.GatherReport(os.Stdout, "  per-thread statistics", sm.ThreadGatherRate(), 0)
		}
		return nil
	})
}

func main() {
	fmt.Println("statsm overhead under the three scheduling regimes (paper: 5-9% / 3% / 1%):")
	for _, c := range []struct {
		strategy eventspace.Strategy
		label    string
	}{
		{eventspace.CoschedNone, "free-running"},
		{eventspace.CoschedAfterSend, "coscheduling 1"},
		{eventspace.CoschedAfterUnblock, "coscheduling 2"},
	} {
		if err := run(c.strategy, c.label); err != nil {
			log.Fatal(err)
		}
	}
}
