// Load-balance hunting: a compute-gsum application with one slow host
// (an induced workload imbalance) is monitored by both variants of the
// load-balance monitor, and the weighted tree exposes the straggler —
// the analysis workflow of section 3, steps (i)-(iii).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"eventspace"
	"eventspace/internal/viz"
)

func main() {
	err := eventspace.RunVirtual(func() error {
		sys, err := eventspace.New(eventspace.SingleTin(12), eventspace.CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()

		tree, err := sys.BuildTree(eventspace.TreeSpec{
			Name: "cg", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 400,
		})
		if err != nil {
			return err
		}

		// Both figure-3 monitor variants observe the same tree; each
		// maintains its own cursors into the trace buffers.
		cfg := eventspace.DefaultMonitorConfig()
		cfg.PullInterval = 400 * time.Microsecond
		cfg.AnalysisInterval = 400 * time.Microsecond
		single, err := sys.AttachLoadBalance(tree, eventspace.SingleScope, cfg)
		if err != nil {
			return err
		}
		distributed, err := sys.AttachLoadBalance(tree, eventspace.Distributed, cfg)
		if err != nil {
			return err
		}

		// compute-gsum with a straggler: thread 7 computes twice as
		// long as everyone else each iteration — a workload imbalance
		// large enough to outweigh the tree-depth skew of the deeper
		// sub-tree feeds.
		const rounds = 1500
		const compute = 400 * time.Microsecond
		duration, err := sys.RunWorkload(eventspace.Workload{
			Trees:      []*eventspace.Tree{tree},
			Iterations: rounds,
			Compute:    compute,
			Delay: func(thread, iteration int) time.Duration {
				if thread == 7 {
					return compute
				}
				return 0
			},
		})
		if err != nil {
			return err
		}
		fmt.Printf("compute-gsum: %d rounds in %v\n", rounds, duration.Round(time.Millisecond))

		fmt.Println("\nsingle event scope's weighted tree:")
		viz.WeightedTree(os.Stdout, single.Weighted())
		fmt.Println("\ndistributed analysis' weighted tree:")
		viz.WeightedTree(os.Stdout, distributed.Weighted())

		// Step (i) of the paper's analysis: the contributor that
		// dominates the last-arrival counts is the load-balance
		// problem. Thread 7 feeds the root through one of its child
		// ports; find the dominant port.
		root := tree.Nodes[0]
		counts := distributed.Weighted().Counts(root.Name)
		worst, worstCount := -1, uint64(0)
		for c, n := range counts {
			if n > worstCount {
				worst, worstCount = c, n
			}
		}
		fmt.Printf("\nverdict: contributor %d of %s arrived last in %d of %d observed rounds\n",
			worst, root.Name, worstCount, rounds)
		fmt.Printf("gather rates: single=%.0f%% distributed=%.0f%%\n",
			single.GatherRate()*100, distributed.GatherRate()*100)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
