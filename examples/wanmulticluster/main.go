// WAN multi-cluster monitoring: six sub-clusters spread over the Longcut
// trace sites (Tromsø, Trondheim, Odense, Aalborg) run gsum over an
// allreduce tree whose inter-cluster stage is the MagPIe-style all-to-all
// exchange; the load-balance monitor gathers across the emulated WAN and
// the example shows why "high performance monitoring of a WAN
// multi-cluster is often easier than a single cluster" (section 8).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"eventspace"
	"eventspace/internal/viz"
)

func main() {
	err := eventspace.RunVirtual(func() error {
		// Three Tin and three Iron sub-clusters, four hosts each, with
		// per-sub-cluster gateways running the Longcut emulator.
		sys, err := eventspace.New(eventspace.WANMulti(4, 4, 2005, 0), eventspace.CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()

		fmt.Println("testbed:")
		viz.Topology(os.Stdout, sys.Testbed())

		tree, err := sys.BuildTree(eventspace.TreeSpec{
			Name: "wan", Fanout: 8, ThreadsPerHost: 1,
			WANAllToAll: true, Instrument: true, TraceBufCap: 100,
		})
		if err != nil {
			return err
		}
		fmt.Println("\nspanning tree:")
		viz.Tree(os.Stdout, tree)

		// Sequential gathering usually suffices over WAN links: the
		// monitored operation is latency bound and slow, so per-pull
		// WAN round trips overlap whole collective rounds (Table 2's
		// WAN rows). The analysis threads pace their cumulative
		// intermediate results to the slow WAN rounds.
		cfg := eventspace.DefaultMonitorConfig()
		cfg.GatewayHelpers, cfg.RootHelpers = 0, 0
		cfg.PullInterval = time.Millisecond
		cfg.AnalysisInterval = 25 * time.Millisecond
		cfg.ReadBatch = 5
		cfg.IntermediateCap = 100
		lb, err := sys.AttachLoadBalance(tree, eventspace.Distributed, cfg)
		if err != nil {
			return err
		}

		const rounds = 300
		duration, err := sys.RunWorkload(eventspace.Workload{
			Trees:      []*eventspace.Tree{tree},
			Iterations: rounds,
		})
		if err != nil {
			return err
		}
		perOp := (duration / rounds).Round(time.Microsecond)
		fmt.Printf("\ngsum over WAN: %d rounds, %v per allreduce (paper: ~65 ms)\n", rounds, perOp)
		fmt.Printf("WAN delays emulated: %d messages through Longcut gateways\n", sys.Testbed().Net.Messages())

		fmt.Println("\nload-balance state gathered across the WAN:")
		viz.WeightedTree(os.Stdout, lb.Weighted())
		viz.GatherReport(os.Stdout, "sequential WAN gathering", lb.GatherRate(), 0)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
