// Quickstart: build a monitored allreduce tree, run the gsum benchmark,
// and read the monitoring results — the smallest complete EventSpace
// program.
package main

import (
	"fmt"
	"log"
	"time"

	"eventspace"
)

func main() {
	err := eventspace.RunVirtual(func() error {
		// A cluster of eight Tin hosts plus a monitor front-end.
		sys, err := eventspace.New(eventspace.SingleTin(8), eventspace.CoschedAfterUnblock)
		if err != nil {
			return err
		}
		defer sys.Close()

		// An instrumented 8-way allreduce spanning tree: every wrapper
		// gets event collectors recording 28-byte trace tuples into
		// bounded buffers.
		tree, err := sys.BuildTree(eventspace.TreeSpec{
			Name:           "gsum",
			Fanout:         8,
			ThreadsPerHost: 1,
			Instrument:     true,
			TraceBufCap:    500,
		})
		if err != nil {
			return err
		}
		fmt.Printf("tree: %d collective wrappers, %d links, %d event collectors\n",
			len(tree.Nodes), len(tree.Links), tree.ECCount())

		// Attach the distributed-analysis load-balance monitor.
		cfg := eventspace.DefaultMonitorConfig()
		cfg.PullInterval = 400 * time.Microsecond
		cfg.AnalysisInterval = 400 * time.Microsecond
		lb, err := sys.AttachLoadBalance(tree, eventspace.Distributed, cfg)
		if err != nil {
			return err
		}

		// Run gsum: every thread contributes to a global sum per round.
		const rounds = 2000
		duration, err := sys.RunWorkload(eventspace.Workload{
			Trees:      []*eventspace.Tree{tree},
			Iterations: rounds,
		})
		if err != nil {
			return err
		}
		fmt.Printf("gsum: %d rounds in %v (%v per allreduce)\n",
			rounds, duration.Round(time.Microsecond), (duration / rounds).Round(time.Microsecond))

		// The monitor's verdict: how often each contributor arrived
		// last at the root wrapper, and how much of the trace the
		// monitor managed to observe.
		root := tree.Nodes[0]
		fmt.Printf("last arrivals at %s: %v\n", root.Name, lb.Weighted().Counts(root.Name))
		fmt.Printf("gather rate: %.0f%%  trace read rate: %.0f%%\n",
			lb.GatherRate()*100, lb.TraceReadRate()*100)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
