package hrtime

import (
	"testing"
	"time"
)

func TestNowMonotonic(t *testing.T) {
	a := Now()
	b := Now()
	if b < a {
		t.Fatalf("Now went backwards: %d then %d", a, b)
	}
	time.Sleep(time.Millisecond)
	if Since(a) < int64(time.Millisecond) {
		t.Fatalf("Since(a) = %d after 1ms sleep", Since(a))
	}
}

func TestScaleRoundTrip(t *testing.T) {
	old := Scale()
	defer SetScale(old)
	SetScale(0.5)
	if got := Scale(); got < 0.49 || got > 0.51 {
		t.Fatalf("Scale = %v, want ~0.5", got)
	}
	if d := ScaleDelay(time.Millisecond); d < 480*time.Microsecond || d > 520*time.Microsecond {
		t.Fatalf("ScaleDelay(1ms) = %v at scale 0.5", d)
	}
	SetScale(-1)
	if Scale() != 0 {
		t.Fatalf("negative scale not clamped: %v", Scale())
	}
	if ScaleDelay(time.Hour) != 0 {
		t.Fatal("scale 0 did not zero delays")
	}
	SetScale(100)
	if Scale() != 16 {
		t.Fatalf("huge scale not clamped: %v", Scale())
	}
}

func TestSleepSkipsSubMicrosecond(t *testing.T) {
	old := Scale()
	defer SetScale(old)
	SetScale(0.0001)
	start := time.Now()
	Sleep(time.Millisecond) // scaled to 100ns: skipped
	if el := time.Since(start); el > 500*time.Microsecond {
		t.Fatalf("sub-microsecond sleep took %v", el)
	}
}

func TestSleepHonorsScale(t *testing.T) {
	old := Scale()
	defer SetScale(old)
	SetScale(1)
	start := time.Now()
	Sleep(10 * time.Millisecond)
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("Sleep(10ms) returned after %v", el)
	}
}

func TestWorkBurnsRoughlyRequestedTime(t *testing.T) {
	// Warm the calibration.
	Work(time.Microsecond)
	start := time.Now()
	Work(20 * time.Millisecond)
	el := time.Since(start)
	if el < 5*time.Millisecond {
		t.Fatalf("Work(20ms) burned only %v", el)
	}
	if el > 400*time.Millisecond {
		t.Fatalf("Work(20ms) burned %v", el)
	}
}

func TestWorkZeroAndNegative(t *testing.T) {
	if Work(0) != 0 {
		t.Fatal("Work(0) did work")
	}
	if Work(-time.Second) != 0 {
		t.Fatal("Work(<0) did work")
	}
}

func TestWorkIterationsPositive(t *testing.T) {
	if n := WorkIterations(time.Millisecond); n < 1 {
		t.Fatalf("WorkIterations = %d", n)
	}
	if n := WorkIterations(0); n != 1 {
		t.Fatalf("WorkIterations(0) = %d, want clamp to 1", n)
	}
	// WorkN with the returned count must not panic and returns a value.
	WorkN(WorkIterations(10 * time.Microsecond))
}

func BenchmarkNow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Now()
	}
}
