// Package hrtime provides the high-resolution monotonic timestamps used by
// event collectors, the calibrated busy-work primitive used to model
// application computation, and the global virtual-time scale applied to
// modelled network delays.
//
// The paper's event collectors record two timestamps per communication
// operation using the host's cycle counter. Go's time package exposes a
// monotonic clock with nanosecond resolution which serves the same purpose;
// Stamp values are nanoseconds since an arbitrary process-local epoch.
package hrtime

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eventspace/internal/vclock"
)

// Stamp is a monotonic timestamp in nanoseconds since the process epoch.
type Stamp = int64

var epoch = time.Now()

// Now returns the current monotonic timestamp: virtual nanoseconds when
// the discrete-event clock is active, real monotonic nanoseconds
// otherwise.
func Now() Stamp {
	if vclock.Active() {
		return vclock.Now()
	}
	return int64(time.Since(epoch))
}

// Since returns the elapsed nanoseconds since s.
func Since(s Stamp) int64 {
	return Now() - s
}

// scale is the global virtual-time scale in parts-per-1024 applied by
// ScaleDelay. 1024 means real time.
var scale atomic.Int64

func init() { scale.Store(1024) }

// SetScale sets the global delay scale factor. A factor of 1.0 models
// delays at their configured value; 0.1 shrinks all modelled network
// delays tenfold so the test suite runs quickly while preserving ratios.
// Factors are clamped to [0, 16].
func SetScale(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 16 {
		f = 16
	}
	scale.Store(int64(f * 1024))
}

// Scale reports the current global delay scale factor.
func Scale() float64 {
	return float64(scale.Load()) / 1024
}

// ScaleDelay applies the global scale factor to a modelled delay.
func ScaleDelay(d time.Duration) time.Duration {
	return time.Duration(int64(d) * scale.Load() / 1024)
}

// sleepFloor is the coarse-timer granularity margin: time.Sleep on the
// target environments can overshoot by more than a millisecond, so waits
// within this distance of their deadline are yield-spun instead.
const sleepFloor = 2 * time.Millisecond

// Sleep waits for the scaled duration with microsecond-level precision.
// Sub-microsecond scaled delays are skipped entirely (below any useful
// resolution). Short delays yield-spin: on a machine with a coarse timer
// tick, time.Sleep overshoots by over a millisecond, which would destroy
// the microsecond-scale delay model; yielding keeps other goroutines
// runnable while this one polls the clock. Long delays sleep coarsely to
// within the floor and spin the remainder.
func Sleep(d time.Duration) {
	sd := ScaleDelay(d)
	if vclock.Active() {
		vclock.Sleep(sd)
		return
	}
	if sd < time.Microsecond {
		return
	}
	SleepUnscaled(sd)
}

// SleepOutside waits d of model time from a goroutine that is not a
// registered model participant — a driver loop polling monitor state
// between phases. Under the virtual clock it parks on an outside timer
// that never touches the clock's runnable accounting (see
// vclock.SleepOutside); with the clock disabled it is an ordinary scaled
// sleep.
func SleepOutside(d time.Duration) {
	sd := ScaleDelay(d)
	if vclock.Active() {
		vclock.SleepOutside(sd)
		return
	}
	if sd < time.Microsecond {
		return
	}
	SleepUnscaled(sd)
}

// SleepUnscaled is Sleep without the scale factor: a precise wait for the
// given duration (virtual when the discrete-event clock is active).
func SleepUnscaled(d time.Duration) {
	if vclock.Active() {
		vclock.Sleep(d)
		return
	}
	deadline := Now() + int64(d)
	if d > 2*sleepFloor {
		time.Sleep(d - sleepFloor)
	}
	for Now() < deadline {
		runtime.Gosched()
	}
}

// spinCalibration holds the measured iterations-per-microsecond of the
// busy-work loop, computed once on first use.
var spinCalibration struct {
	once      sync.Once
	perMicro  float64
	minirants uint64 // defeat dead-code elimination
}

// spin executes n dependent integer operations.
func spin(n int) uint64 {
	var acc uint64 = 0x9e3779b97f4a7c15
	for i := 0; i < n; i++ {
		acc ^= acc << 13
		acc ^= acc >> 7
		acc ^= acc << 17
	}
	return acc
}

func calibrate() {
	const probe = 1 << 20
	start := time.Now()
	spinCalibration.minirants += spin(probe)
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	spinCalibration.perMicro = float64(probe) / (float64(elapsed) / float64(time.Microsecond))
	if spinCalibration.perMicro < 1 {
		spinCalibration.perMicro = 1
	}
}

// Work busy-spins for approximately d of CPU time. Unlike Sleep it consumes
// a processor, so it must be called while holding a vnet CPU slot; it is the
// building block for modelled application computation whose duration must
// not depend on trace content. d is not scaled by the virtual-time factor:
// computation is real work in this reproduction.
func Work(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	spinCalibration.once.Do(calibrate)
	n := int(spinCalibration.perMicro * float64(d) / float64(time.Microsecond))
	if n < 1 {
		n = 1
	}
	return spin(n)
}

// WorkIterations converts a duration to the spin iteration count that Work
// would use, for callers that want to split work into slices.
func WorkIterations(d time.Duration) int {
	spinCalibration.once.Do(calibrate)
	n := int(spinCalibration.perMicro * float64(d) / float64(time.Microsecond))
	if n < 1 {
		n = 1
	}
	return n
}

// WorkN runs n spin iterations (see WorkIterations).
func WorkN(n int) uint64 { return spin(n) }
