package archive

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/paths"
)

// Query selects tuples out of an archive. The zero value matches
// everything. Filters are pushed down to the per-segment header index:
// a segment whose ECID or stamp range cannot intersect the query is
// skipped without reading its blocks.
type Query struct {
	// ECIDs restricts to these event-collector ids (empty: all).
	ECIDs []uint32
	// Ops restricts to these operation kinds (empty: all).
	Ops []paths.OpKind
	// MinStamp / MaxStamp bound the tuple's Start timestamp,
	// inclusive. MaxStamp <= 0 means unbounded above.
	MinStamp hrtime.Stamp
	MaxStamp hrtime.Stamp
}

// match applies the per-tuple filters.
func (q *Query) match(t collect.TraceTuple) bool {
	if len(q.ECIDs) > 0 {
		ok := false
		for _, id := range q.ECIDs {
			if t.ECID == id {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(q.Ops) > 0 {
		ok := false
		for _, op := range q.Ops {
			if t.Op == op {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if t.Start < q.MinStamp {
		return false
	}
	if q.MaxStamp > 0 && t.Start > q.MaxStamp {
		return false
	}
	return true
}

// SegmentInfo describes one archived segment for tooling.
type SegmentInfo struct {
	ID        uint32
	Path      string
	Bytes     int64
	Format    uint16 // block codec: FormatRow or FormatColumnar
	Sealed    bool
	Torn      bool  // the segment carries a damaged tail (ignored by reads)
	TornBytes int64 // bytes in the damaged tail beyond the last intact block
	Index     SegmentIndex
}

// ScanStats reports what one query actually touched — the pushdown
// accounting that the query-scan benchmark and tests pin down.
type ScanStats struct {
	Segments        int    // segments in the archive
	SegmentsSkipped int    // skipped wholesale via the header index
	SegmentsScanned int    // segments whose blocks were read
	BlocksScanned   uint64 // blocks decoded
	BlocksSkipped   uint64 // blocks skipped undecoded (dictionary or cursor skips)
	TuplesScanned   uint64 // tuples decoded
	TuplesMatched   uint64 // tuples that passed the filters
	TuplesSkipped   uint64 // tuples jumped over without decoding (cursor scans)
	BytesScanned    uint64 // segment bytes read off disk
	BytesSkipped    uint64 // segment bytes never read (index or cursor skips)
	TornSegments    int    // scanned segments with a damaged tail
}

// Reader queries an archive directory. It snapshots the segment list
// and headers at open time; segments written afterwards are not seen.
// A reader never modifies the archive.
type Reader struct {
	dir  string
	segs []SegmentInfo

	// skipped lists files tolerated-but-ignored at open time (a crash's
	// header-less newest segment). Close surfaces them so recovery paths
	// can report the damage they silently worked around.
	skipped []string

	opScan *metrics.Op
}

// OpenReader opens the archive directory for querying. Unsealed
// segments (an in-progress or crashed tail) are indexed by scanning
// their blocks; sealed segments load their header index only.
func OpenReader(dir string) (*Reader, error) {
	return OpenReaderMetrics(dir, nil)
}

// OpenReaderMetrics is OpenReader with scan-cost accounting in reg
// (nil disables, equivalent to OpenReader).
func OpenReaderMetrics(dir string, reg *metrics.Registry) (*Reader, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{dir: dir}
	if reg != nil {
		r.opScan = reg.Op(metrics.KindArchive, "archive-scan("+dir+")")
	}
	for _, s := range segs {
		buf, err := os.ReadFile(s.path)
		if err != nil {
			return nil, fmt.Errorf("archive: %v", err)
		}
		if len(buf) < segmentHeaderSize {
			// A crash can leave a header-less newest file; skip it, but
			// remember the damage for Close.
			r.skipped = append(r.skipped, s.path)
			continue
		}
		hdr, err := decodeHeader(buf)
		if err != nil {
			return nil, fmt.Errorf("archive: segment %s: %v", s.path, err)
		}
		info := SegmentInfo{ID: hdr.ID, Path: s.path, Bytes: s.size, Format: hdr.Version, Sealed: hdr.Sealed, Index: hdr.Index}
		if !hdr.Sealed {
			// No trustworthy index: recover it from the blocks.
			res, err := scanSegment(buf)
			if err != nil {
				return nil, fmt.Errorf("archive: segment %s: %v", s.path, err)
			}
			info.Index = res.Index
			info.Torn = res.Torn
			if res.Torn {
				info.TornBytes = s.size - res.ValidBytes
			}
		}
		r.segs = append(r.segs, info)
	}
	sort.Slice(r.segs, func(i, j int) bool { return r.segs[i].ID < r.segs[j].ID })
	return r, nil
}

// Dir returns the archive directory.
func (r *Reader) Dir() string { return r.dir }

// Close reports the damage the reader tolerated silently while opening:
// header-less segment files a crash left behind, which open skips so
// queries still run. nil means the directory opened clean. A Reader
// holds no file handles between scans, so Close releases nothing; it
// exists to surface repair context that recovery paths must not drop.
func (r *Reader) Close() error {
	if len(r.skipped) == 0 {
		return nil
	}
	return fmt.Errorf("archive: skipped %d header-less segment file(s): %s",
		len(r.skipped), strings.Join(r.skipped, ", "))
}

// SkippedFiles lists the header-less segment files open tolerated.
func (r *Reader) SkippedFiles() []string {
	return append([]string(nil), r.skipped...)
}

// Segments lists the archive's segments in id (write) order.
func (r *Reader) Segments() []SegmentInfo {
	return append([]SegmentInfo(nil), r.segs...)
}

// Tuples returns the archive's total tuple count across segments.
func (r *Reader) Tuples() uint64 {
	var n uint64
	for _, s := range r.segs {
		n += s.Index.Tuples
	}
	return n
}

// Scan streams every tuple matching q, in archive (write) order,
// through fn. fn returning false stops the scan early. Damaged tails
// end a segment's scan without failing the query.
//
// Segments are walked block by block into one reused decode batch —
// never materialized whole — and columnar blocks whose ECID/op
// dictionaries cannot intersect q are skipped after a dictionary-only
// CRC check, without decoding any column.
func (r *Reader) Scan(q Query, fn func(collect.TraceTuple) bool) (ScanStats, error) {
	stats := ScanStats{Segments: len(r.segs)}
	start := hrtime.Now()
	var bytes int
	defer func() {
		r.opScan.Record(hrtime.Since(start), bytes, nil)
	}()
	var dec blockDecoder
	for _, s := range r.segs {
		if s.Index.empty() || !s.Index.overlapECIDs(q.ECIDs) || !s.Index.overlapStamps(q.MinStamp, q.MaxStamp) {
			stats.SegmentsSkipped++
			stats.BytesSkipped += uint64(s.Bytes)
			continue
		}
		buf, err := os.ReadFile(s.Path)
		if err != nil {
			return stats, fmt.Errorf("archive: %v", err)
		}
		bytes += len(buf)
		stats.BytesScanned += uint64(len(buf))
		h, err := decodeHeader(buf)
		if err != nil {
			return stats, fmt.Errorf("archive: segment %s: %v", s.Path, err)
		}
		stats.SegmentsScanned++
		if scanBlocks(buf, segmentHeaderSize, h.Version, &q, &dec, &stats, fn) {
			return stats, nil
		}
	}
	return stats, nil
}

// scanBlocks walks one segment image block by block from byte offset
// off (segmentHeaderSize for a whole-segment walk; past it when a
// cursor scan already skipped a prefix), skipping columnar blocks the
// query cannot match, and streams decoded tuples through fn. It reports
// whether fn stopped the scan. A torn tail ends the walk and is
// counted, matching the recovery semantics of scanSegment.
func scanBlocks(buf []byte, off int64, version uint16, q *Query, dec *blockDecoder, stats *ScanStats, fn func(collect.TraceTuple) bool) (stopped bool) {
	for {
		rest := buf[off:]
		if len(rest) == 0 {
			return false
		}
		var batch []collect.TraceTuple
		if version == segmentVersionCol {
			f, ok := frameColumnarBlock(rest)
			if !ok {
				stats.TornSegments++
				return false
			}
			if dec.skipColumnar(&f, q) {
				stats.BlocksSkipped++
				off += f.size
				continue
			}
			b, err := dec.decodeColumnar(&f)
			if err != nil {
				stats.TornSegments++
				return false
			}
			batch = b
			off += f.size
		} else {
			b, size, ok := decodeNextBlock(version, rest, dec)
			if !ok {
				stats.TornSegments++
				return false
			}
			batch = b
			off += size
		}
		stats.BlocksScanned++
		stats.TuplesScanned += uint64(len(batch))
		for _, t := range batch {
			if !q.match(t) {
				continue
			}
			stats.TuplesMatched++
			if !fn(t) {
				return true
			}
		}
	}
}

// Select materializes the matching tuples in archive order.
func (r *Reader) Select(q Query) ([]collect.TraceTuple, ScanStats, error) {
	var out []collect.TraceTuple
	stats, err := r.Scan(q, func(t collect.TraceTuple) bool {
		out = append(out, t)
		return true
	})
	return out, stats, err
}

// CollectorSummary aggregates one collector's archived tuples.
type CollectorSummary struct {
	ECID       uint32
	Tuples     uint64
	Errors     uint64 // tuples with Ret < 0 (failed operations)
	FirstStart hrtime.Stamp
	LastEnd    hrtime.Stamp
	TotalLatNS int64 // sum of End-Start
}

// MeanLatency returns the collector's mean operation latency.
func (c CollectorSummary) MeanLatency() time.Duration {
	if c.Tuples == 0 {
		return 0
	}
	return time.Duration(c.TotalLatNS / int64(c.Tuples))
}

// Summarize aggregates matching tuples per collector, in ECID order.
// Summaries accumulate in a flat slice — the map holds only indexes
// into it, so aggregation costs one allocation per distinct collector,
// not one per collector plus map-bucket churn.
func (r *Reader) Summarize(q Query) ([]CollectorSummary, ScanStats, error) {
	var out []CollectorSummary
	by := make(map[uint32]int)
	stats, err := r.Scan(q, func(t collect.TraceTuple) bool {
		i, ok := by[t.ECID]
		if !ok {
			i = len(out)
			out = append(out, CollectorSummary{ECID: t.ECID, FirstStart: math.MaxInt64})
			by[t.ECID] = i
		}
		c := &out[i]
		c.Tuples++
		if t.Ret < 0 {
			c.Errors++
		}
		if t.Start < c.FirstStart {
			c.FirstStart = t.Start
		}
		if t.End > c.LastEnd {
			c.LastEnd = t.End
		}
		c.TotalLatNS += t.End - t.Start
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ECID < out[j].ECID })
	return out, stats, nil
}

// SeriesPoint is one bucket of a per-collector time series.
type SeriesPoint struct {
	Bucket     hrtime.Stamp // bucket start (tuple Start stamps)
	Tuples     uint64
	TotalLatNS int64
}

// MeanLatency returns the bucket's mean operation latency.
func (p SeriesPoint) MeanLatency() time.Duration {
	if p.Tuples == 0 {
		return 0
	}
	return time.Duration(p.TotalLatNS / int64(p.Tuples))
}

// TimeSeries buckets matching tuples by their Start stamp into windows
// of the given width, per collector. Buckets are returned in time
// order. The series is computed entirely from tuple stamps: replaying
// it any number of times yields identical output.
func (r *Reader) TimeSeries(q Query, bucket time.Duration) (map[uint32][]SeriesPoint, ScanStats, error) {
	if bucket <= 0 {
		return nil, ScanStats{}, fmt.Errorf("archive: time series bucket %v", bucket)
	}
	// Points accumulate in per-collector slices; the bucket maps hold
	// indexes into them rather than per-bucket heap objects. Tuples
	// arrive in rough time order, so the common case is appending to or
	// revisiting the newest bucket.
	type series struct {
		pts []SeriesPoint
		by  map[hrtime.Stamp]int
	}
	acc := make(map[uint32]*series)
	stats, err := r.Scan(q, func(t collect.TraceTuple) bool {
		b := t.Start - t.Start%int64(bucket)
		s, ok := acc[t.ECID]
		if !ok {
			s = &series{by: make(map[hrtime.Stamp]int)}
			acc[t.ECID] = s
		}
		i, ok := s.by[b]
		if !ok {
			i = len(s.pts)
			s.pts = append(s.pts, SeriesPoint{Bucket: b})
			s.by[b] = i
		}
		s.pts[i].Tuples++
		s.pts[i].TotalLatNS += t.End - t.Start
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	out := make(map[uint32][]SeriesPoint, len(acc))
	for id, s := range acc {
		sort.Slice(s.pts, func(i, j int) bool { return s.pts[i].Bucket < s.pts[j].Bucket })
		out[id] = s.pts
	}
	return out, stats, nil
}
