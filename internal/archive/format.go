package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
)

// Segment header layout (64 bytes, little endian):
//
//	off  size  field
//	  0     4  magic "ESG1"
//	  4     2  version (1)
//	  6     2  flags (bit 0: sealed)
//	  8     4  segment id
//	 12     4  min ECID        ┐
//	 16     4  max ECID        │ index over the segment's tuples,
//	 20     8  min stamp       │ valid once sealed; recovered by a
//	 28     8  max stamp       │ block scan otherwise
//	 36     8  tuple count     │
//	 44     4  block count     ┘
//	 48    12  reserved (zero)
//	 60     4  CRC32(header[0:60])
const (
	segmentMagic      = 0x31475345 // "ESG1" little-endian
	segmentVersion    = 1
	segmentHeaderSize = 64
	blockHeaderSize   = 8

	flagSealed = 1 << 0
)

// SegmentIndex is the queryable summary of one segment's tuples: the
// pushdown filters skip a whole segment when its ranges cannot
// intersect the query.
type SegmentIndex struct {
	MinECID, MaxECID   uint32
	MinStamp, MaxStamp hrtime.Stamp
	Tuples             uint64
	Blocks             uint32
}

// empty reports whether the index has absorbed no tuples.
func (x *SegmentIndex) empty() bool { return x.Tuples == 0 }

// add folds one tuple into the index. Stamps use the tuple's own
// Start/End timestamps — the archive never consults a clock.
func (x *SegmentIndex) add(t collect.TraceTuple) {
	if x.Tuples == 0 {
		x.MinECID, x.MaxECID = t.ECID, t.ECID
		x.MinStamp, x.MaxStamp = t.Start, t.End
	} else {
		if t.ECID < x.MinECID {
			x.MinECID = t.ECID
		}
		if t.ECID > x.MaxECID {
			x.MaxECID = t.ECID
		}
		if t.Start < x.MinStamp {
			x.MinStamp = t.Start
		}
		if t.End > x.MaxStamp {
			x.MaxStamp = t.End
		}
	}
	x.Tuples++
}

// segmentHeader is the decoded form of a segment file's first 64 bytes.
type segmentHeader struct {
	ID     uint32
	Sealed bool
	Index  SegmentIndex
}

func encodeHeader(h segmentHeader) []byte {
	buf := make([]byte, segmentHeaderSize)
	binary.LittleEndian.PutUint32(buf[0:4], segmentMagic)
	binary.LittleEndian.PutUint16(buf[4:6], segmentVersion)
	var flags uint16
	if h.Sealed {
		flags |= flagSealed
	}
	binary.LittleEndian.PutUint16(buf[6:8], flags)
	binary.LittleEndian.PutUint32(buf[8:12], h.ID)
	binary.LittleEndian.PutUint32(buf[12:16], h.Index.MinECID)
	binary.LittleEndian.PutUint32(buf[16:20], h.Index.MaxECID)
	binary.LittleEndian.PutUint64(buf[20:28], uint64(h.Index.MinStamp))
	binary.LittleEndian.PutUint64(buf[28:36], uint64(h.Index.MaxStamp))
	binary.LittleEndian.PutUint64(buf[36:44], h.Index.Tuples)
	binary.LittleEndian.PutUint32(buf[44:48], h.Index.Blocks)
	binary.LittleEndian.PutUint32(buf[60:64], crc32.ChecksumIEEE(buf[:60]))
	return buf
}

func decodeHeader(buf []byte) (segmentHeader, error) {
	if len(buf) < segmentHeaderSize {
		return segmentHeader{}, fmt.Errorf("archive: short segment header (%d bytes)", len(buf))
	}
	if m := binary.LittleEndian.Uint32(buf[0:4]); m != segmentMagic {
		return segmentHeader{}, fmt.Errorf("archive: bad segment magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != segmentVersion {
		return segmentHeader{}, fmt.Errorf("archive: unsupported segment version %d", v)
	}
	if got, want := crc32.ChecksumIEEE(buf[:60]), binary.LittleEndian.Uint32(buf[60:64]); got != want {
		return segmentHeader{}, fmt.Errorf("archive: segment header CRC mismatch (%#x != %#x)", got, want)
	}
	h := segmentHeader{
		ID:     binary.LittleEndian.Uint32(buf[8:12]),
		Sealed: binary.LittleEndian.Uint16(buf[6:8])&flagSealed != 0,
	}
	h.Index = SegmentIndex{
		MinECID:  binary.LittleEndian.Uint32(buf[12:16]),
		MaxECID:  binary.LittleEndian.Uint32(buf[16:20]),
		MinStamp: int64(binary.LittleEndian.Uint64(buf[20:28])),
		MaxStamp: int64(binary.LittleEndian.Uint64(buf[28:36])),
		Tuples:   binary.LittleEndian.Uint64(buf[36:44]),
		Blocks:   binary.LittleEndian.Uint32(buf[44:48]),
	}
	return h, nil
}

// encodeBlock frames a batch of tuples: an 8-byte header (count,
// payload CRC) followed by the tuples' 28-byte encodings.
func encodeBlock(tuples []collect.TraceTuple) []byte {
	buf := make([]byte, blockHeaderSize+len(tuples)*collect.TupleSize)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(tuples)))
	payload := buf[blockHeaderSize:]
	for i, t := range tuples {
		t.EncodeTo(payload[i*collect.TupleSize:])
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return buf
}

// scanResult is what scanSegment recovered from a segment's bytes.
type scanResult struct {
	Header segmentHeader
	Index  SegmentIndex // recomputed from the blocks actually read
	Tuples []collect.TraceTuple
	// ValidBytes is the offset just past the last intact block: the
	// truncation point for a crash-safe reopen.
	ValidBytes int64
	// Torn reports that trailing bytes past ValidBytes were dropped
	// (a partial block header, short payload, bad CRC, or an invalid
	// count — the torn-tail signature).
	Torn bool
}

// scanSegment decodes a whole segment image: the header, then every
// intact block in order. It never fails on a damaged tail — it stops
// there and reports how much was valid — but it does fail on a
// missing/corrupt header, which no crash of an append-only writer can
// produce (headers are written before the first block).
func scanSegment(buf []byte) (scanResult, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return scanResult{}, err
	}
	res := scanResult{Header: h, ValidBytes: segmentHeaderSize}
	off := int64(segmentHeaderSize)
	for {
		rest := buf[off:]
		if len(rest) == 0 {
			return res, nil
		}
		if len(rest) < blockHeaderSize {
			res.Torn = true
			return res, nil
		}
		count := binary.LittleEndian.Uint32(rest[0:4])
		if count == 0 || count > MaxBlockTuples ||
			int64(count) > (int64(len(rest))-blockHeaderSize)/collect.TupleSize {
			res.Torn = true
			return res, nil
		}
		payload := rest[blockHeaderSize : blockHeaderSize+int(count)*collect.TupleSize]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			res.Torn = true
			return res, nil
		}
		tuples, err := collect.DecodeAll(payload)
		if err != nil {
			// Unreachable for a CRC-valid whole-tuple payload; treat
			// it as a torn tail rather than failing the scan.
			res.Torn = true
			return res, nil
		}
		for _, t := range tuples {
			res.Index.add(t)
		}
		res.Tuples = append(res.Tuples, tuples...)
		res.Index.Blocks++
		off += blockHeaderSize + int64(count)*collect.TupleSize
		res.ValidBytes = off
	}
}

// overlapECIDs reports whether any queried ECID can fall inside the
// index's ECID range.
func (x *SegmentIndex) overlapECIDs(ecids []uint32) bool {
	if len(ecids) == 0 {
		return true
	}
	for _, id := range ecids {
		if id >= x.MinECID && id <= x.MaxECID {
			return true
		}
	}
	return false
}

// overlapStamps reports whether the index's stamp range intersects
// [min, max] (max <= 0 means unbounded).
func (x *SegmentIndex) overlapStamps(min, max hrtime.Stamp) bool {
	hi := max
	if hi <= 0 {
		hi = math.MaxInt64
	}
	return x.MinStamp <= hi && x.MaxStamp >= min
}
