package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
)

// Segment header layout (64 bytes, little endian):
//
//	off  size  field
//	  0     4  magic "ESG1"
//	  4     2  version (1: row blocks, 2: columnar blocks)
//	  6     2  flags (bit 0: sealed)
//	  8     4  segment id
//	 12     4  min ECID        ┐
//	 16     4  max ECID        │ index over the segment's tuples,
//	 20     8  min stamp       │ valid once sealed; recovered by a
//	 28     8  max stamp       │ block scan otherwise
//	 36     8  tuple count     │
//	 44     4  block count     ┘
//	 48    12  reserved (zero)
//	 60     4  CRC32(header[0:60])
//
// The version selects the block codec for the whole segment: version 1
// segments hold row blocks (8-byte header + count × 28-byte tuples),
// version 2 segments hold columnar blocks (see columnar.go). Readers
// accept both, per segment, so archives written across a format change
// stay queryable end to end.
const (
	segmentMagic      = 0x31475345 // "ESG1" little-endian
	segmentVersionRow = 1
	segmentVersionCol = 2
	segmentHeaderSize = 64
	blockHeaderSize   = 8

	flagSealed = 1 << 0
)

// SegmentIndex is the queryable summary of one segment's tuples: the
// pushdown filters skip a whole segment when its ranges cannot
// intersect the query.
type SegmentIndex struct {
	MinECID, MaxECID   uint32
	MinStamp, MaxStamp hrtime.Stamp
	Tuples             uint64
	Blocks             uint32
}

// empty reports whether the index has absorbed no tuples.
func (x *SegmentIndex) empty() bool { return x.Tuples == 0 }

// add folds one tuple into the index. Stamps use the tuple's own
// Start/End timestamps — the archive never consults a clock.
func (x *SegmentIndex) add(t collect.TraceTuple) {
	if x.Tuples == 0 {
		x.MinECID, x.MaxECID = t.ECID, t.ECID
		x.MinStamp, x.MaxStamp = t.Start, t.End
	} else {
		if t.ECID < x.MinECID {
			x.MinECID = t.ECID
		}
		if t.ECID > x.MaxECID {
			x.MaxECID = t.ECID
		}
		if t.Start < x.MinStamp {
			x.MinStamp = t.Start
		}
		if t.End > x.MaxStamp {
			x.MaxStamp = t.End
		}
	}
	x.Tuples++
}

// segmentHeader is the decoded form of a segment file's first 64 bytes.
type segmentHeader struct {
	ID      uint32
	Version uint16 // block codec; 0 encodes as segmentVersionRow
	Sealed  bool
	Index   SegmentIndex
}

func encodeHeader(h segmentHeader) []byte {
	buf := make([]byte, segmentHeaderSize)
	v := h.Version
	if v == 0 {
		v = segmentVersionRow
	}
	binary.LittleEndian.PutUint32(buf[0:4], segmentMagic)
	binary.LittleEndian.PutUint16(buf[4:6], v)
	var flags uint16
	if h.Sealed {
		flags |= flagSealed
	}
	binary.LittleEndian.PutUint16(buf[6:8], flags)
	binary.LittleEndian.PutUint32(buf[8:12], h.ID)
	binary.LittleEndian.PutUint32(buf[12:16], h.Index.MinECID)
	binary.LittleEndian.PutUint32(buf[16:20], h.Index.MaxECID)
	binary.LittleEndian.PutUint64(buf[20:28], uint64(h.Index.MinStamp))
	binary.LittleEndian.PutUint64(buf[28:36], uint64(h.Index.MaxStamp))
	binary.LittleEndian.PutUint64(buf[36:44], h.Index.Tuples)
	binary.LittleEndian.PutUint32(buf[44:48], h.Index.Blocks)
	binary.LittleEndian.PutUint32(buf[60:64], crc32.ChecksumIEEE(buf[:60]))
	return buf
}

func decodeHeader(buf []byte) (segmentHeader, error) {
	if len(buf) < segmentHeaderSize {
		return segmentHeader{}, fmt.Errorf("archive: short segment header (%d bytes)", len(buf))
	}
	if m := binary.LittleEndian.Uint32(buf[0:4]); m != segmentMagic {
		return segmentHeader{}, fmt.Errorf("archive: bad segment magic %#x", m)
	}
	v := binary.LittleEndian.Uint16(buf[4:6])
	if v != segmentVersionRow && v != segmentVersionCol {
		return segmentHeader{}, fmt.Errorf("archive: unsupported segment version %d", v)
	}
	if got, want := crc32.ChecksumIEEE(buf[:60]), binary.LittleEndian.Uint32(buf[60:64]); got != want {
		return segmentHeader{}, fmt.Errorf("archive: segment header CRC mismatch (%#x != %#x)", got, want)
	}
	h := segmentHeader{
		ID:      binary.LittleEndian.Uint32(buf[8:12]),
		Version: v,
		Sealed:  binary.LittleEndian.Uint16(buf[6:8])&flagSealed != 0,
	}
	h.Index = SegmentIndex{
		MinECID:  binary.LittleEndian.Uint32(buf[12:16]),
		MaxECID:  binary.LittleEndian.Uint32(buf[16:20]),
		MinStamp: int64(binary.LittleEndian.Uint64(buf[20:28])),
		MaxStamp: int64(binary.LittleEndian.Uint64(buf[28:36])),
		Tuples:   binary.LittleEndian.Uint64(buf[36:44]),
		Blocks:   binary.LittleEndian.Uint32(buf[44:48]),
	}
	return h, nil
}

// encodeRowBlockInto frames a batch of tuples as a row (version 1)
// block into dst's spare capacity: an 8-byte header (count, payload
// CRC) followed by the tuples' 28-byte encodings. Passing a retained
// buffer's [:0] reslice makes the write path allocation-free once warm.
func encodeRowBlockInto(dst []byte, tuples []collect.TraceTuple) []byte {
	need := blockHeaderSize + len(tuples)*collect.TupleSize
	if cap(dst) < need {
		dst = make([]byte, need)
	}
	buf := dst[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(tuples)))
	payload := buf[blockHeaderSize:]
	for i := range tuples {
		tuples[i].EncodeTo(payload[i*collect.TupleSize:])
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return buf
}

// encodeBlock is encodeRowBlockInto with a fresh buffer (tests, fuzz
// seeds).
func encodeBlock(tuples []collect.TraceTuple) []byte {
	return encodeRowBlockInto(nil, tuples)
}

// decodeNextBlock frames and fully validates the block at the start of
// rest using the segment version's codec, decoding it into dec's
// reused batch. The batch aliases dec's scratch — consume it before the
// next call. ok=false is the torn-tail signature: a partial header,
// short payload, CRC mismatch, or invalid count.
func decodeNextBlock(version uint16, rest []byte, dec *blockDecoder) (batch []collect.TraceTuple, size int64, ok bool) {
	if version == segmentVersionCol {
		f, ok := frameColumnarBlock(rest)
		if !ok {
			return nil, 0, false
		}
		batch, err := dec.decodeColumnar(&f)
		if err != nil {
			return nil, 0, false
		}
		return batch, f.size, true
	}
	if len(rest) < blockHeaderSize {
		return nil, 0, false
	}
	count := binary.LittleEndian.Uint32(rest[0:4])
	if count == 0 || count > MaxBlockTuples ||
		int64(count) > (int64(len(rest))-blockHeaderSize)/collect.TupleSize {
		return nil, 0, false
	}
	payload := rest[blockHeaderSize : blockHeaderSize+int(count)*collect.TupleSize]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
		return nil, 0, false
	}
	tuples, err := collect.DecodeAppend(dec.batch[:0], payload)
	if err != nil {
		// Unreachable for a CRC-valid whole-tuple payload; treat it as
		// a torn tail rather than failing the scan.
		return nil, 0, false
	}
	dec.batch = tuples
	return tuples, blockHeaderSize + int64(count)*collect.TupleSize, true
}

// scanResult is what scanSegment recovered from a segment's bytes.
type scanResult struct {
	Header segmentHeader
	Index  SegmentIndex // recomputed from the blocks actually read
	Tuples []collect.TraceTuple
	// ValidBytes is the offset just past the last intact block: the
	// truncation point for a crash-safe reopen.
	ValidBytes int64
	// Torn reports that trailing bytes past ValidBytes were dropped
	// (a partial block header, short payload, bad CRC, or an invalid
	// count — the torn-tail signature).
	Torn bool
}

// scanSegment decodes a whole segment image: the header, then every
// intact block in order. It never fails on a damaged tail — it stops
// there and reports how much was valid — but it does fail on a
// missing/corrupt header, which no crash of an append-only writer can
// produce (headers are written before the first block).
func scanSegment(buf []byte) (scanResult, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return scanResult{}, err
	}
	res := scanResult{Header: h, ValidBytes: segmentHeaderSize}
	var dec blockDecoder
	off := int64(segmentHeaderSize)
	for {
		rest := buf[off:]
		if len(rest) == 0 {
			return res, nil
		}
		batch, size, ok := decodeNextBlock(h.Version, rest, &dec)
		if !ok {
			res.Torn = true
			return res, nil
		}
		for _, t := range batch {
			res.Index.add(t)
		}
		res.Tuples = append(res.Tuples, batch...)
		res.Index.Blocks++
		off += size
		res.ValidBytes = off
	}
}

// overlapECIDs reports whether any queried ECID can fall inside the
// index's ECID range.
func (x *SegmentIndex) overlapECIDs(ecids []uint32) bool {
	if len(ecids) == 0 {
		return true
	}
	for _, id := range ecids {
		if id >= x.MinECID && id <= x.MaxECID {
			return true
		}
	}
	return false
}

// overlapStamps reports whether the index's stamp range intersects
// [min, max] (max <= 0 means unbounded).
func (x *SegmentIndex) overlapStamps(min, max hrtime.Stamp) bool {
	hi := max
	if hi <= 0 {
		hi = math.MaxInt64
	}
	return x.MinStamp <= hi && x.MaxStamp >= min
}
