package archive

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"eventspace/internal/collect"
	"eventspace/internal/metrics"
	"eventspace/internal/monitor"
	"eventspace/internal/paths"
)

// tuple makes a synthetic trace tuple: stamps are synthetic model time,
// never a clock reading.
func tuple(ecid uint32, seq uint32, start, end int64) collect.TraceTuple {
	op := paths.OpWrite
	if seq%2 == 1 {
		op = paths.OpRead
	}
	return collect.TraceTuple{ECID: ecid, Op: op, Ret: int16(seq % 3), Seq: seq, Start: start, End: end}
}

// smallOpts forces frequent blocks and rotations so a few hundred
// tuples cross several segments.
func smallOpts(dir string) Options {
	return Options{Dir: dir, SegmentBytes: 600, BlockTuples: 8}
}

// writeCorpus appends n tuples across ecids collectors and returns them
// in append order.
func writeCorpus(t *testing.T, w *Writer, n int, ecids int) []collect.TraceTuple {
	t.Helper()
	var out []collect.TraceTuple
	for i := 0; i < n; i++ {
		tu := tuple(uint32(1+i%ecids), uint32(i), int64(1000+10*i), int64(1005+10*i))
		out = append(out, tu)
		if err := w.Append([]collect.TraceTuple{tu}); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func selectAll(t *testing.T, dir string, q Query) ([]collect.TraceTuple, ScanStats) {
	t.Helper()
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := r.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func sameTuples(t *testing.T, got, want []collect.TraceTuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tuple %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRoundTripRotations is the round-trip property test: tuples
// written across several rotations come back exactly, in order, under
// the full filter matrix.
func TestRoundTripRotations(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.New()
	opts := smallOpts(dir)
	opts.Metrics = reg
	w, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	corpus := writeCorpus(t, w, 200, 4)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Rotations < 3 {
		t.Fatalf("rotations = %d, want >= 3", st.Rotations)
	}
	if st.TuplesWritten != 200 {
		t.Fatalf("tuples written = %d", st.TuplesWritten)
	}

	// Everything, in append order.
	got, stats := selectAll(t, dir, Query{})
	sameTuples(t, got, corpus)
	if stats.TuplesScanned != 200 || stats.TuplesMatched != 200 {
		t.Fatalf("scan stats %+v", stats)
	}

	// The filter matrix against a brute-force reference.
	queries := []Query{
		{ECIDs: []uint32{2}},
		{Ops: []paths.OpKind{paths.OpRead}},
		{MinStamp: 1500, MaxStamp: 2200},
		{ECIDs: []uint32{1, 3}, Ops: []paths.OpKind{paths.OpWrite}, MinStamp: 1200},
	}
	for qi, q := range queries {
		var want []collect.TraceTuple
		for _, tu := range corpus {
			if q.match(tu) {
				want = append(want, tu)
			}
		}
		got, _ := selectAll(t, dir, q)
		if len(got) == 0 {
			t.Fatalf("query %d matched nothing", qi)
		}
		sameTuples(t, got, want)
	}

	// Pushdown: a stamp range touching only the first tuples must skip
	// later segments without reading them.
	_, stats = selectAll(t, dir, Query{MinStamp: 0, MaxStamp: 1100})
	if stats.SegmentsSkipped == 0 {
		t.Fatalf("no segments skipped for a narrow stamp range: %+v", stats)
	}
	if stats.SegmentsScanned+stats.SegmentsSkipped != stats.Segments {
		t.Fatalf("scan accounting does not add up: %+v", stats)
	}

	// Self-metrics: archive writes were accounted.
	snap := reg.Snapshot()
	if len(snap.ByKind(metrics.KindArchive)) == 0 {
		t.Fatal("no archive op sites in metrics snapshot")
	}
}

// TestUnsealedSegmentReadable covers querying a live archive: flushed
// blocks of the active (unsealed) segment are visible to a reader.
func TestUnsealedSegmentReadable(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir, BlockTuples: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	corpus := writeCorpus(t, w, 10, 2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, stats := selectAll(t, dir, Query{})
	sameTuples(t, got, corpus)
	if stats.SegmentsScanned != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestTornTailReopen simulates a crash mid-block-write: reopen must
// truncate the torn tail, lose at most that partial block, and continue
// appending into the same segment.
func TestTornTailReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, BlockTuples: 8} // one big segment: the tear hits it
	w, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	corpus := writeCorpus(t, w, 20, 2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: no Close (header stays unsealed), then a torn
	// block appended to the newest segment.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := encodeBlock([]collect.TraceTuple{tuple(9, 999, 1, 2), tuple(9, 1000, 3, 4)})
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := w2.Stats()
	if st.TornTruncations != 1 {
		t.Fatalf("torn truncations = %d, want 1", st.TornTruncations)
	}
	if st.TuplesRecovered == 0 {
		t.Fatal("no tuples recovered from the reopened segment")
	}
	// The whole pre-crash corpus survived (the torn block held only the
	// never-acknowledged tuples); the writer keeps going where it left.
	more := writeCorpus(t, w2, 10, 2)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := selectAll(t, dir, Query{})
	sameTuples(t, got, append(append([]collect.TraceTuple(nil), corpus...), more...))
}

// TestTornTailLosesOnlyLastBlock pins the acceptance bound: a tear
// inside the last written block loses that block alone.
func TestTornTailLosesOnlyLastBlock(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir, BlockTuples: 4})
	if err != nil {
		t.Fatal(err)
	}
	corpus := writeCorpus(t, w, 12, 2) // 3 full blocks
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	last := segs[len(segs)-1]
	// Corrupt the final block's payload CRC by flipping its last byte.
	buf, err := os.ReadFile(last.path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(last.path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats := selectAll(t, dir, Query{})
	sameTuples(t, got, corpus[:8]) // blocks 1 and 2 survive, block 3 is the tear
	if stats.TornSegments != 1 {
		t.Fatalf("torn segments = %d, want 1", stats.TornSegments)
	}
}

// TestHeaderlessNewestFile covers a crash between segment create and
// the header write: reopen drops the file and reuses its id.
func TestHeaderlessNewestFile(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(smallOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	writeCorpus(t, w, 30, 2)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	nextID := segs[len(segs)-1].id + 1
	stub := filepath.Join(dir, segmentFileName(nextID))
	if err := os.WriteFile(stub, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := Create(smallOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if st := w2.Stats(); st.ActiveSegment != nextID || st.TornTruncations != 1 {
		t.Fatalf("stats after header-less reopen: %+v", st)
	}
}

// TestRetention verifies the total-bytes cap deletes oldest segments
// and the reader sees exactly the retained suffix.
func TestRetention(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts(dir)
	opts.MaxTotalBytes = 2000
	w, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	corpus := writeCorpus(t, w, 400, 4)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.RetentionDeletes == 0 {
		t.Fatal("no retention deletes")
	}
	if st.TotalBytes > 2000+int64(opts.segmentBytes()) {
		t.Fatalf("total bytes %d way past the cap", st.TotalBytes)
	}
	got, _ := selectAll(t, dir, Query{})
	if len(got) == 0 || len(got) >= len(corpus) {
		t.Fatalf("retained %d of %d tuples", len(got), len(corpus))
	}
	// The retained set is exactly the newest suffix, in order.
	sameTuples(t, got, corpus[len(corpus)-len(got):])
}

// TestAppendRawPartial covers the gather-payload path: a payload torn
// mid-tuple keeps its whole prefix and reports the tear offset.
func TestAppendRawPartial(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a, b := tuple(1, 0, 10, 20), tuple(2, 1, 30, 40)
	payload := append(a.Encode(), b.Encode()...)
	err = w.AppendRaw(payload[:len(payload)-3])
	var pe *collect.PartialTupleError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *collect.PartialTupleError", err)
	}
	if pe.Offset != collect.TupleSize {
		t.Fatalf("tear offset = %d, want %d", pe.Offset, collect.TupleSize)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := selectAll(t, dir, Query{})
	sameTuples(t, got, []collect.TraceTuple{a})
}

// TestWriterClosedAndSticky covers the closed/sticky-error guards.
func TestWriterClosedAndSticky(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := w.Append([]collect.TraceTuple{tuple(1, 0, 1, 2)}); err == nil {
		t.Fatal("append after close accepted")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("flush after close accepted")
	}
	if err := w.Rotate(); err == nil {
		t.Fatal("rotate after close accepted")
	}
}

// TestMetaRoundTrip covers the collector-metadata sidecar codec.
func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := []CollectorInfo{
		{ID: 3, Name: "T/n0.c1", Role: collect.RoleContributor, Tree: "T", Node: "n0", Contributor: 1},
		{ID: 1, Name: "T/n0.coll", Role: collect.RoleCollective, Tree: "T", Node: "n0", Contributor: -1},
		{ID: 7, Name: "weird\tname\"x", Role: collect.RoleStubClient, Tree: "T", Node: "l0", Contributor: -1},
	}
	if err := WriteMeta(dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("read %d infos", len(out))
	}
	// WriteMeta sorts by id.
	want := []CollectorInfo{in[1], in[0], in[2]}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("info %d = %+v, want %+v", i, out[i], want[i])
		}
	}
	// A missing sidecar is not an error.
	if infos, err := ReadMeta(t.TempDir()); err != nil || infos != nil {
		t.Fatalf("missing sidecar: %v %v", infos, err)
	}
}

// replayMeta is a minimal two-node topology: node n0 has contributors
// ECID 1,2 (collective 10), node n1 has contributors ECID 3,4
// (collective 11).
func replayMeta() []CollectorInfo {
	return []CollectorInfo{
		{ID: 1, Name: "c0", Role: collect.RoleContributor, Tree: "T", Node: "n0", Contributor: 0},
		{ID: 2, Name: "c1", Role: collect.RoleContributor, Tree: "T", Node: "n0", Contributor: 1},
		{ID: 10, Name: "coll0", Role: collect.RoleCollective, Tree: "T", Node: "n0", Contributor: -1},
		{ID: 3, Name: "c2", Role: collect.RoleContributor, Tree: "T", Node: "n1", Contributor: 0},
		{ID: 4, Name: "c3", Role: collect.RoleContributor, Tree: "T", Node: "n1", Contributor: 1},
		{ID: 11, Name: "coll1", Role: collect.RoleCollective, Tree: "T", Node: "n1", Contributor: -1},
	}
}

// replayRound emits one round's tuples for a node: contributors with
// chosen Start stamps, plus the collective tuple.
func replayRound(contribs [2]uint32, coll uint32, seq uint32, starts [2]int64) []collect.TraceTuple {
	base := starts[0]
	if starts[1] > base {
		base = starts[1]
	}
	return []collect.TraceTuple{
		{ECID: contribs[0], Op: paths.OpWrite, Seq: seq, Start: starts[0], End: starts[0] + 5},
		{ECID: contribs[1], Op: paths.OpWrite, Seq: seq, Start: starts[1], End: starts[1] + 5},
		{ECID: coll, Op: paths.OpWrite, Seq: seq, Start: base + 1, End: base + 10},
	}
}

// TestReplayLastArrivalDeterministic archives a synthetic trace and
// checks the offline last-arrival verdicts — including their
// insensitivity to gather order.
func TestReplayLastArrivalDeterministic(t *testing.T) {
	infos := replayMeta()
	var tuples []collect.TraceTuple
	// Node n0: contributor 1 is the straggler in 7 of 10 rounds.
	for i := 0; i < 10; i++ {
		starts := [2]int64{int64(100 + 100*i), int64(150 + 100*i)}
		if i%3 == 0 {
			starts = [2]int64{int64(150 + 100*i), int64(100 + 100*i)}
		}
		tuples = append(tuples, replayRound([2]uint32{1, 2}, 10, uint32(i), starts)...)
	}
	// Node n1: contributor 0 always last.
	for i := 0; i < 5; i++ {
		tuples = append(tuples, replayRound([2]uint32{3, 4}, 11, uint32(i), [2]int64{int64(2000 + 10*i), int64(1995 + 10*i)})...)
	}

	check := func(order []collect.TraceTuple) {
		t.Helper()
		dir := t.TempDir()
		w, err := Create(smallOpts(dir))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(order); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(dir)
		if err != nil {
			t.Fatal(err)
		}
		rep, _, err := ReplayLastArrival(r, infos, Query{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Lost() != 0 {
			t.Fatalf("replay lost %d rounds", rep.Lost())
		}
		wt := rep.Weighted()
		if got := wt.Count("n0", 1); got != 6 {
			t.Fatalf("n0 contributor 1 last %d times, want 6", got)
		}
		if got := wt.Count("n0", 0); got != 4 {
			t.Fatalf("n0 contributor 0 last %d times, want 4", got)
		}
		if got := wt.Count("n1", 0); got != 5 {
			t.Fatalf("n1 contributor 0 last %d times, want 5", got)
		}
		fed, matched := rep.Fed()
		if fed != uint64(len(order)) || matched != 30 {
			t.Fatalf("fed/matched = %d/%d", fed, matched)
		}
	}
	check(tuples)
	// A deterministically permuted gather order (rounds interleaved
	// across nodes, contributors reversed) yields identical verdicts.
	perm := make([]collect.TraceTuple, len(tuples))
	copy(perm, tuples)
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	check(perm)
}

// TestReplayStats archives a synthetic trace and checks the offline
// statistics joins complete rounds and publish all five kinds.
func TestReplayStats(t *testing.T) {
	infos := replayMeta()
	dir := t.TempDir()
	w, err := Create(smallOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		round := replayRound([2]uint32{1, 2}, 10, uint32(i), [2]int64{int64(100 + 100*i), int64(150 + 100*i)})
		if err := w.Append(round); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := ReplayStats(r, infos, Query{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoundsAnalyzed() != 10 {
		t.Fatalf("rounds analyzed = %d, want 10", rep.RoundsAnalyzed())
	}
	at := rep.Tree()
	for _, kind := range []int{1, 2, 3, 4, 5} { // down..departure-wait
		rec, ok := at.Get(10, kind)
		if !ok || rec.Count == 0 {
			t.Fatalf("kind %d missing from replayed tree (%+v %v)", kind, rec, ok)
		}
	}
	// Replay needs metadata: an empty sidecar is a loud error.
	if _, _, err := ReplayLastArrival(r, nil, Query{}); err == nil {
		t.Fatal("replay without metadata accepted")
	}
	if _, _, err := ReplayStats(r, nil, Query{}, 0); err == nil {
		t.Fatal("stats replay without metadata accepted")
	}
}

// TestSummarizeAndTimeSeries covers the aggregation queries.
func TestSummarizeAndTimeSeries(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir, BlockTuples: 4})
	if err != nil {
		t.Fatal(err)
	}
	tuples := []collect.TraceTuple{
		{ECID: 1, Op: paths.OpWrite, Seq: 0, Ret: 0, Start: 100, End: 200},
		{ECID: 1, Op: paths.OpWrite, Seq: 1, Ret: -1, Start: 1100, End: 1300},
		{ECID: 2, Op: paths.OpRead, Seq: 0, Ret: 0, Start: 150, End: 250},
	}
	if err := w.Append(tuples); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	sums, _, err := r.Summarize(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 || sums[0].ECID != 1 || sums[1].ECID != 2 {
		t.Fatalf("summaries %+v", sums)
	}
	if sums[0].Tuples != 2 || sums[0].Errors != 1 || sums[0].FirstStart != 100 || sums[0].LastEnd != 1300 {
		t.Fatalf("ecid 1 summary %+v", sums[0])
	}
	if sums[0].MeanLatency() != 150 {
		t.Fatalf("ecid 1 mean latency %v", sums[0].MeanLatency())
	}
	series, _, err := r.TimeSeries(Query{ECIDs: []uint32{1}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	pts := series[1]
	if len(pts) != 2 || pts[0].Bucket != 0 || pts[1].Bucket != 1000 || pts[0].Tuples != 1 {
		t.Fatalf("series %+v", pts)
	}
	if _, _, err := r.TimeSeries(Query{}, 0); err == nil {
		t.Fatal("zero bucket accepted")
	}
}

// TestLastArrivalReplayValidation covers the port validation paths.
func TestLastArrivalReplayValidation(t *testing.T) {
	if _, err := monitor.NewLastArrivalReplay(map[uint32]monitor.ReplayPort{1: {Node: "n", Contributor: 0, Fanin: 0}}); err == nil {
		t.Fatal("fanin 0 accepted")
	}
	if _, err := monitor.NewLastArrivalReplay(map[uint32]monitor.ReplayPort{1: {Node: "n", Contributor: 2, Fanin: 2}}); err == nil {
		t.Fatal("contributor out of range accepted")
	}
	if _, err := monitor.NewStatsReplay(map[uint32]monitor.ReplayStatsPort{1: {NodeID: 9, Contributor: 0, Fanin: 0}}, 0); err == nil {
		t.Fatal("stats fanin 0 accepted")
	}
}
