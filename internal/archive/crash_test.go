package archive

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"eventspace/internal/collect"
)

// crashOpts arms one site on a small archive.
func crashOpts(dir string, format int, seed uint64, site CrashSite, count int) Options {
	o := smallOpts(dir)
	o.Format = format
	o.CrashPoints = &CrashPoints{Seed: seed, Specs: []CrashSpec{{Site: site, Count: count}}}
	return o
}

// runUntilCrash appends tuples one at a time until the writer reports
// the injected crash, returning how many tuples were accepted before
// it. Fails the test if the crash never fires within n appends.
func runUntilCrash(t *testing.T, w *Writer, n int) int {
	t.Helper()
	for i := 0; i < n; i++ {
		tu := tuple(uint32(1+i%3), uint32(i), int64(1000+10*i), int64(1005+10*i))
		if err := w.Append([]collect.TraceTuple{tu}); err != nil {
			if !errors.Is(err, ErrInjectedCrash) {
				t.Fatalf("append %d: %v", i, err)
			}
			return i
		}
	}
	t.Fatalf("crash never fired within %d appends", n)
	return 0
}

// TestCrashInjectionPrefixProperty drives every write-path crash site
// on both segment formats and several seeds, then proves the recovery
// invariant: reopening the directory yields exactly a prefix of the
// appended stream — never a divergent or reordered one — and the
// reopened writer's cursor agrees with what the reader can prove.
func TestCrashInjectionPrefixProperty(t *testing.T) {
	sites := []CrashSite{CrashBlockFlush, CrashSeal, CrashRotate}
	formats := []int{FormatRow, FormatColumnar}
	seeds := []uint64{1, 2, 3}
	for _, format := range formats {
		for _, site := range sites {
			for _, seed := range seeds {
				t.Run(formatName(format)+"/"+site.String()+"/"+string('0'+rune(seed)), func(t *testing.T) {
					dir := t.TempDir()
					// Fire on the second occurrence so the first block /
					// seal / rotation completes normally first.
					w, err := Create(crashOpts(dir, format, seed, site, 2))
					if err != nil {
						t.Fatal(err)
					}
					accepted := runUntilCrash(t, w, 4096)
					if accepted == 0 {
						t.Fatal("crash fired before any append")
					}
					// The dead writer stays dead.
					if err := w.Append([]collect.TraceTuple{tuple(9, 9, 9, 9)}); !errors.Is(err, ErrInjectedCrash) {
						t.Fatalf("append after crash = %v, want ErrInjectedCrash", err)
					}
					if err := w.Close(); err != nil && !errors.Is(err, ErrInjectedCrash) {
						t.Fatalf("close after crash: %v", err)
					}

					// Reopen crash-safely and prove the prefix property.
					w2, err := Create(Options{Dir: dir, SegmentBytes: 600, BlockTuples: 8, Format: format})
					if err != nil {
						t.Fatalf("reopen after %v crash: %v", site, err)
					}
					cur := w2.Position()
					if err := w2.Close(); err != nil {
						t.Fatal(err)
					}
					// The append whose flush crashed returns an error but
					// may have persisted its block first, so the durable
					// stream can be one tuple longer than the accepted
					// count — never more.
					got, _ := selectAll(t, dir, Query{})
					if len(got) > accepted+1 {
						t.Fatalf("recovered %d tuples from %d accepted appends", len(got), accepted)
					}
					want := make([]collect.TraceTuple, len(got))
					for i := range want {
						want[i] = tuple(uint32(1+i%3), uint32(i), int64(1000+10*i), int64(1005+10*i))
					}
					sameTuples(t, got, want)
					if cur.Tuples != uint64(len(got)) {
						t.Fatalf("reopened cursor covers %d tuples, archive holds %d", cur.Tuples, len(got))
					}
				})
			}
		}
	}
}

// TestCrashBlockFlushLeavesTornTail pins the torn-tail mechanics down:
// a mid-flush crash leaves a partial block the reader ignores and the
// reopen truncates, with the truncation accounted in the stats.
func TestCrashBlockFlushLeavesTornTail(t *testing.T) {
	for _, format := range []int{FormatRow, FormatColumnar} {
		t.Run(formatName(format), func(t *testing.T) {
			dir := t.TempDir()
			// Seed 7 tears mid-block for both formats (keep fraction
			// strictly inside (0,1) is guaranteed by tearLen only when
			// the fraction is nonzero; the prefix property holds either
			// way, this test just wants some torn bytes).
			w, err := Create(crashOpts(dir, format, 7, CrashBlockFlush, 2))
			if err != nil {
				t.Fatal(err)
			}
			accepted := runUntilCrash(t, w, 4096)
			w.Close()

			r, err := OpenReader(dir)
			if err != nil {
				t.Fatal(err)
			}
			if int(r.Tuples()) >= accepted {
				t.Fatalf("reader sees %d tuples, crash should have lost the in-flight block of %d appended", r.Tuples(), accepted)
			}
			segs := r.Segments()
			last := segs[len(segs)-1]
			if !last.Torn {
				t.Fatal("newest segment not marked torn after mid-flush crash")
			}
			if last.TornBytes <= 0 {
				t.Fatalf("TornBytes = %d, want > 0", last.TornBytes)
			}

			w2, err := Create(Options{Dir: dir, SegmentBytes: 600, BlockTuples: 8, Format: format})
			if err != nil {
				t.Fatal(err)
			}
			st := w2.Stats()
			if st.TornTruncations == 0 {
				t.Fatal("reopen did not truncate the torn tail")
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashRotateDropsHeaderlessFile verifies the rotate crash leaves a
// header-less empty next segment, that the reader tolerates it but
// surfaces it through Close, and that reopen removes it and reuses the
// id.
func TestCrashRotateDropsHeaderlessFile(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(crashOpts(dir, FormatRow, 1, CrashRotate, 1))
	if err != nil {
		t.Fatal(err)
	}
	runUntilCrash(t, w, 4096)
	w.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	if last.size != 0 {
		t.Fatalf("headerless next segment has %d bytes, want 0", last.size)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err == nil {
		t.Fatal("reader Close reported nil after skipping a header-less file")
	}
	if got := r.SkippedFiles(); len(got) != 1 || got[0] != last.path {
		t.Fatalf("SkippedFiles = %v, want [%s]", got, last.path)
	}

	w2, err := Create(Options{Dir: dir, SegmentBytes: 600, BlockTuples: 8, Format: FormatRow})
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Stats().ActiveSegment; got != last.id {
		t.Fatalf("reopen activated segment %d, want the reused id %d", got, last.id)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentFileName(last.id))); err != nil {
		t.Fatalf("reused segment file: %v", err)
	}
}

// TestCrashSealKeepsUnsealedHeader verifies the seal-site crash leaves
// the segment with its provisional header and every flushed block, and
// that a clean reopen continues it.
func TestCrashSealKeepsUnsealedHeader(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(crashOpts(dir, FormatColumnar, 1, CrashSeal, 1))
	if err != nil {
		t.Fatal(err)
	}
	accepted := runUntilCrash(t, w, 4096)
	w.Close()

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := r.Segments()
	last := segs[len(segs)-1]
	if last.Sealed {
		t.Fatal("segment sealed despite the seal-site crash")
	}
	if last.Torn {
		t.Fatal("seal-site crash must not tear blocks")
	}
	// Every flushed block survived; the rotation-triggering append's
	// block was flushed before the seal crashed, so the durable count
	// can exceed the accepted count by exactly that one tuple.
	if int(r.Tuples()) > accepted+1 {
		t.Fatalf("reader sees %d tuples, only %d appended", r.Tuples(), accepted)
	}
	if r.Tuples() == 0 {
		t.Fatal("no tuples survived the seal-site crash")
	}
}

// TestCrashPointsFireOnce verifies the schedule bookkeeping: counts are
// honoured, each site fires at most once, and nil plans never fire.
func TestCrashPointsFireOnce(t *testing.T) {
	c := &CrashPoints{Seed: 42, Specs: []CrashSpec{{Site: CrashSeal, Count: 3}}}
	for i := 1; i <= 5; i++ {
		_, fire := c.hit(CrashSeal)
		if want := i == 3; fire != want {
			t.Fatalf("hit %d: fire = %v, want %v", i, fire, want)
		}
	}
	if got := c.Fired(); len(got) != 1 || got[0] != CrashSeal {
		t.Fatalf("Fired = %v", got)
	}
	if _, fire := c.hit(CrashBlockFlush); fire {
		t.Fatal("unarmed site fired")
	}
	var nilPlan *CrashPoints
	if _, fire := nilPlan.hit(CrashSeal); fire {
		t.Fatal("nil plan fired")
	}
	if nilPlan.Fired() != nil {
		t.Fatal("nil plan reports fired sites")
	}
}

// formatName labels subtests.
func formatName(format int) string {
	if format == FormatRow {
		return "row"
	}
	return "columnar"
}
