package archive

import (
	"fmt"

	"eventspace/internal/collect"
	"eventspace/internal/monitor"
	"eventspace/internal/paths"
)

// lastArrivalPorts derives the load-balance replay wiring from archived
// collector metadata: every contributor collector becomes a port onto
// its node's join, with the node's fan-in counted from the metadata
// itself.
func lastArrivalPorts(infos []CollectorInfo) (map[uint32]monitor.ReplayPort, error) {
	if len(infos) == 0 {
		return nil, fmt.Errorf("archive: no collector metadata (missing %s?)", MetaFileName)
	}
	type nodeKey struct{ tree, node string }
	fanin := make(map[nodeKey]int)
	for _, in := range infos {
		if in.Role == collect.RoleContributor {
			fanin[nodeKey{in.Tree, in.Node}]++
		}
	}
	ports := make(map[uint32]monitor.ReplayPort)
	for _, in := range infos {
		if in.Role != collect.RoleContributor {
			continue
		}
		ports[in.ID] = monitor.ReplayPort{
			Node:        in.Node,
			Contributor: in.Contributor,
			Fanin:       fanin[nodeKey{in.Tree, in.Node}],
		}
	}
	if len(ports) == 0 {
		return nil, fmt.Errorf("archive: metadata has no contributor collectors")
	}
	return ports, nil
}

// statsPorts derives the statistics replay wiring: contributor and
// collective collectors both feed their node's round join, keyed by the
// node's collective ECID.
func statsPorts(infos []CollectorInfo) (map[uint32]monitor.ReplayStatsPort, error) {
	if len(infos) == 0 {
		return nil, fmt.Errorf("archive: no collector metadata (missing %s?)", MetaFileName)
	}
	type nodeKey struct{ tree, node string }
	fanin := make(map[nodeKey]int)
	collective := make(map[nodeKey]uint32)
	for _, in := range infos {
		switch in.Role {
		case collect.RoleContributor:
			fanin[nodeKey{in.Tree, in.Node}]++
		case collect.RoleCollective:
			collective[nodeKey{in.Tree, in.Node}] = in.ID
		}
	}
	ports := make(map[uint32]monitor.ReplayStatsPort)
	for _, in := range infos {
		key := nodeKey{in.Tree, in.Node}
		id, ok := collective[key]
		if !ok {
			continue
		}
		switch in.Role {
		case collect.RoleContributor:
			ports[in.ID] = monitor.ReplayStatsPort{NodeID: id, Contributor: in.Contributor, Fanin: fanin[key]}
		case collect.RoleCollective:
			ports[in.ID] = monitor.ReplayStatsPort{NodeID: id, Contributor: -1, Fanin: fanin[key]}
		}
	}
	if len(ports) == 0 {
		return nil, fmt.Errorf("archive: metadata has no collective/contributor collectors")
	}
	return ports, nil
}

// LastArrivalPorts exposes the load-balance replay wiring derivation
// for callers that drive the replay shadows themselves (the recovery
// checkpointer and the checkpointed failover path).
func LastArrivalPorts(infos []CollectorInfo) (map[uint32]monitor.ReplayPort, error) {
	return lastArrivalPorts(infos)
}

// StatsPorts exposes the statistics replay wiring derivation.
func StatsPorts(infos []CollectorInfo) (map[uint32]monitor.ReplayStatsPort, error) {
	return statsPorts(infos)
}

// ReplayLastArrival scans the archive and re-runs the load-balance
// monitor's last-arrival reduction offline. infos is the archived
// collector metadata (ReadMeta, or MetaFromRegistry against a live
// registry); q restricts which tuples are replayed (zero Query: all).
// The result's Weighted() tree matches the live single-scope monitor's
// verdicts whenever neither side lost rounds.
func ReplayLastArrival(r *Reader, infos []CollectorInfo, q Query) (*monitor.LastArrivalReplay, ScanStats, error) {
	ports, err := lastArrivalPorts(infos)
	if err != nil {
		return nil, ScanStats{}, err
	}
	rep, err := monitor.NewLastArrivalReplay(ports)
	if err != nil {
		return nil, ScanStats{}, err
	}
	stats, err := r.Scan(q, func(t collect.TraceTuple) bool {
		rep.Feed(t)
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	return rep, stats, nil
}

// ReplayModes scans the archive for the named scope's degradation-mode
// control tuples and reconstructs its mode-transition history. The
// ECID/op restriction rides the header-index pushdown, so segments
// without control tuples are skipped without decoding.
func ReplayModes(r *Reader, scope string, q Query) (*monitor.ModeReplay, ScanStats, error) {
	q.ECIDs = []uint32{collect.ControlECID}
	q.Ops = []paths.OpKind{paths.OpMode}
	rep := monitor.NewModeReplay(scope)
	stats, err := r.Scan(q, func(t collect.TraceTuple) bool {
		rep.Feed(t)
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	return rep, stats, nil
}

// ReplayAlerts scans the archive for continuous-query alert control
// tuples and returns them in archive (firing) order. The ECID/op
// restriction rides the header-index pushdown, so segments without
// control tuples are skipped without decoding. Comparing the result
// against a query-engine replay of the same archive's data tuples
// verifies the alert stream end to end.
func ReplayAlerts(r *Reader, q Query) ([]collect.AlertTuple, ScanStats, error) {
	q.ECIDs = []uint32{collect.ControlECID}
	q.Ops = []paths.OpKind{paths.OpAlert}
	var out []collect.AlertTuple
	stats, err := r.Scan(q, func(t collect.TraceTuple) bool {
		if a, ok := collect.DecodeAlert(t); ok {
			out = append(out, a)
		}
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// ReplayStats scans the archive and re-runs statsm's wrapper-statistics
// computation offline. window is the sliding median window (values < 1
// use the analysis default).
func ReplayStats(r *Reader, infos []CollectorInfo, q Query, window int) (*monitor.StatsReplay, ScanStats, error) {
	ports, err := statsPorts(infos)
	if err != nil {
		return nil, ScanStats{}, err
	}
	rep, err := monitor.NewStatsReplay(ports, window)
	if err != nil {
		return nil, ScanStats{}, err
	}
	stats, err := r.Scan(q, func(t collect.TraceTuple) bool {
		rep.Feed(t)
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	return rep, stats, nil
}
