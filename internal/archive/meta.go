package archive

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"eventspace/internal/collect"
)

// An archive of raw tuples is only replayable with the collector
// topology that produced them: which ECID was which node's contributor,
// which was the collective wrapper. That mapping lives in the collector
// registry of the live run, so the archive stores it alongside the
// segments as a small text sidecar ("collectors.meta"), written once at
// attach time and read back by offline tooling (esquery) that has no
// live registry.

// MetaFileName is the collector-metadata sidecar stored next to the
// segment files.
const MetaFileName = "collectors.meta"

// CollectorInfo is one event collector's identity, as recorded in the
// archive's metadata sidecar.
type CollectorInfo struct {
	ID          uint32
	Name        string
	Role        collect.Role
	Tree        string // spanning tree name
	Node        string // tree node the collector instruments
	Contributor int    // contributor index for contributor collectors, else -1
}

// MetaFromRegistry snapshots a live collector registry into sidecar
// records, in ECID order.
func MetaFromRegistry(reg *collect.Registry) []CollectorInfo {
	if reg == nil {
		return nil
	}
	var out []CollectorInfo
	for _, ec := range reg.All() {
		m := ec.Meta()
		out = append(out, CollectorInfo{
			ID:          ec.ID(),
			Name:        ec.Name(),
			Role:        m.Role,
			Tree:        m.Tree,
			Node:        m.Node,
			Contributor: m.Contributor,
		})
	}
	return out
}

// WriteMeta writes the collector sidecar into the archive directory,
// replacing any previous one. The format is one tab-separated line per
// collector: id, role, contributor, then the quoted tree, node and
// collector names.
func WriteMeta(dir string, infos []CollectorInfo) error {
	sorted := append([]CollectorInfo(nil), infos...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	var b strings.Builder
	for _, in := range sorted {
		fmt.Fprintf(&b, "%d\t%d\t%d\t%q\t%q\t%q\n",
			in.ID, uint8(in.Role), in.Contributor, in.Tree, in.Node, in.Name)
	}
	path := filepath.Join(dir, MetaFileName)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("archive: %v", err)
	}
	return nil
}

// ReadMeta loads the collector sidecar from the archive directory. A
// missing sidecar is not an error: it returns no records (raw queries
// still work; replay needs the records and says so).
func ReadMeta(dir string) ([]CollectorInfo, error) {
	data, err := os.ReadFile(filepath.Join(dir, MetaFileName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("archive: %v", err)
	}
	var out []CollectorInfo
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 6 {
			return nil, fmt.Errorf("archive: %s line %d: %d fields", MetaFileName, ln+1, len(fields))
		}
		id, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("archive: %s line %d: id: %v", MetaFileName, ln+1, err)
		}
		role, err := strconv.ParseUint(fields[1], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("archive: %s line %d: role: %v", MetaFileName, ln+1, err)
		}
		contrib, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("archive: %s line %d: contributor: %v", MetaFileName, ln+1, err)
		}
		var strs [3]string
		for i, f := range fields[3:] {
			s, err := strconv.Unquote(f)
			if err != nil {
				return nil, fmt.Errorf("archive: %s line %d: field %d: %v", MetaFileName, ln+1, i+4, err)
			}
			strs[i] = s
		}
		out = append(out, CollectorInfo{
			ID:          uint32(id),
			Name:        strs[2],
			Role:        collect.Role(role),
			Tree:        strs[0],
			Node:        strs[1],
			Contributor: contrib,
		})
	}
	return out, nil
}
