package archive

import (
	"math"
	"os"
	"testing"

	"eventspace/internal/collect"
	"eventspace/internal/paths"
)

// TestColumnarBlockRoundTrip pins the codec's losslessness: batches of
// every shape — near-monotonic stamps, adversarial overflow stamps,
// more distinct ECIDs than the dictionary holds — must decode back
// exactly.
func TestColumnarBlockRoundTrip(t *testing.T) {
	batches := map[string][]collect.TraceTuple{
		"single": {tuple(1, 0, 10, 20)},
		"monotonic": func() []collect.TraceTuple {
			var ts []collect.TraceTuple
			for i := 0; i < 300; i++ {
				ts = append(ts, tuple(uint32(1+i%4), uint32(i), int64(1000+10*i), int64(1007+10*i)))
			}
			return ts
		}(),
		"overflow": {
			{ECID: 0, Op: paths.OpMode, Ret: -32768, Seq: math.MaxUint32, Start: math.MaxInt64, End: math.MinInt64},
			{ECID: math.MaxUint32, Op: paths.OpKind(math.MaxUint16), Ret: 32767, Seq: 0, Start: math.MinInt64, End: math.MaxInt64},
			{ECID: 7, Op: paths.OpRead, Ret: 0, Seq: 3, Start: -1, End: 1},
		},
		"raw-fallback": func() []collect.TraceTuple {
			// More than 256 distinct values in every dictionary
			// candidate column forces the raw encoding.
			var ts []collect.TraceTuple
			for i := 0; i < 300; i++ {
				ts = append(ts, collect.TraceTuple{
					ECID: uint32(i), Op: paths.OpKind(i), Ret: int16(i), Seq: uint32(i),
					Start: int64(i), End: int64(2 * i),
				})
			}
			return ts
		}(),
	}
	var enc columnarEncoder
	var dec blockDecoder
	for name, tuples := range batches {
		block := append([]byte(nil), enc.encodeBlock(tuples)...)
		f, ok := frameColumnarBlock(block)
		if !ok {
			t.Fatalf("%s: encoded block does not frame", name)
		}
		if f.size != int64(len(block)) {
			t.Fatalf("%s: frame size %d, block %d", name, f.size, len(block))
		}
		got, err := dec.decodeColumnar(&f)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		sameTuples(t, got, tuples)
	}
	// The fallback actually engaged: the raw-fallback batch's ECID
	// column must not be dictionary-coded, the monotonic one's must be.
	f, _ := frameColumnarBlock(enc.encodeBlock(batches["raw-fallback"]))
	if f.enc[colECID] != colEncRaw {
		t.Fatalf("raw-fallback ecid encoding = %d, want raw", f.enc[colECID])
	}
	f, _ = frameColumnarBlock(enc.encodeBlock(batches["monotonic"]))
	if f.enc[colECID] != colEncDict || f.enc[colOp] != colEncDict {
		t.Fatalf("monotonic encodings = %v, want dict ecid/op", f.enc)
	}
}

// TestColumnarCompression pins the point of the format: a realistic
// trace corpus must occupy meaningfully fewer bytes per block than the
// 28-byte row encoding.
func TestColumnarCompression(t *testing.T) {
	var tuples []collect.TraceTuple
	for i := 0; i < 256; i++ {
		tuples = append(tuples, tuple(uint32(1+i%4), uint32(i), int64(100000+137*i), int64(100040+137*i)))
	}
	var enc columnarEncoder
	col := len(enc.encodeBlock(tuples))
	row := len(encodeBlock(tuples))
	if col*2 > row {
		t.Fatalf("columnar block %d B vs row %d B: expected at least 2x smaller", col, row)
	}
}

// TestMixedFormatArchive covers a directory written under both formats:
// a row-format writer's segments and a columnar writer's segments must
// read back as one coherent archive, in order. The reopen also crosses
// formats: the columnar writer finds the row writer's unsealed active
// segment, seals it as-is, and continues in its own format.
func TestMixedFormatArchive(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, SegmentBytes: 600, BlockTuples: 8, Format: FormatRow}
	w, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	rowCorpus := writeCorpus(t, w, 100, 4)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// No Close: the active segment stays unsealed, as after a crash.
	opts.Format = FormatColumnar
	w2, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Stats().TuplesRecovered == 0 {
		t.Fatal("cross-format reopen lost the unsealed row segment")
	}
	colCorpus := writeCorpus(t, w2, 100, 4)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	formats := map[uint16]int{}
	for _, s := range r.Segments() {
		formats[s.Format]++
	}
	if formats[FormatRow] == 0 || formats[FormatColumnar] == 0 {
		t.Fatalf("segment formats %v, want both row and columnar", formats)
	}
	got, stats, err := r.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, got, append(append([]collect.TraceTuple(nil), rowCorpus...), colCorpus...))
	if stats.TornSegments != 0 {
		t.Fatalf("mixed-format read reported tears: %+v", stats)
	}
	// Filters behave identically across the boundary.
	q := Query{ECIDs: []uint32{2}, Ops: []paths.OpKind{paths.OpRead}}
	var want []collect.TraceTuple
	for _, tu := range append(append([]collect.TraceTuple(nil), rowCorpus...), colCorpus...) {
		if q.match(tu) {
			want = append(want, tu)
		}
	}
	got, _, err = r.Select(q)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, got, want)
}

// TestColumnarTornTailReopen is the torn-tail contract under the
// columnar codec: a tear inside the last block loses that block alone,
// and reopen truncates and continues in the same segment.
func TestColumnarTornTailReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, BlockTuples: 8, Format: FormatColumnar}
	w, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	corpus := writeCorpus(t, w, 24, 2) // 3 full blocks
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	// Tear the final block mid-payload.
	buf, err := os.ReadFile(last.path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last.path, buf[:len(buf)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats := selectAll(t, dir, Query{})
	sameTuples(t, got, corpus[:16])
	if stats.TornSegments != 1 {
		t.Fatalf("torn segments = %d, want 1", stats.TornSegments)
	}

	w2, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := w2.Stats(); st.TornTruncations != 1 || st.TuplesRecovered != 16 {
		t.Fatalf("reopen stats %+v, want 1 truncation, 16 recovered", st)
	}
	more := writeCorpus(t, w2, 8, 2)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = selectAll(t, dir, Query{})
	sameTuples(t, got, append(append([]collect.TraceTuple(nil), corpus[:16]...), more...))
}

// TestColumnarCorruptColumnIsTear flips one byte inside a column
// payload: the per-column CRC must catch it and the block must read as
// a tear, never as silently wrong tuples.
func TestColumnarCorruptColumnIsTear(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir, BlockTuples: 4, Format: FormatColumnar})
	if err != nil {
		t.Fatal(err)
	}
	corpus := writeCorpus(t, w, 8, 2) // 2 blocks
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	buf, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xff // inside the last block's end column
	if err := os.WriteFile(segs[0].path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats := selectAll(t, dir, Query{})
	sameTuples(t, got, corpus[:4])
	if stats.TornSegments != 1 {
		t.Fatalf("stats %+v, want a torn segment", stats)
	}
	// The same corruption must not survive a query that skips the
	// block: a filter the block's dictionary cannot match still reports
	// the tear (the skip path checksums dictionaries before trusting
	// them) or skips on an intact dictionary — either way, no garbage.
	_, stats = selectAll(t, dir, Query{ECIDs: []uint32{99}})
	if stats.TuplesMatched != 0 {
		t.Fatalf("corrupt block leaked tuples: %+v", stats)
	}
}

// TestColumnarBlockSkip is the block-level pushdown contract: a query
// for an absent collector or op kind skips every block via its
// dictionaries, decoding no tuples at all; a selective query decodes
// only the blocks holding its collector.
func TestColumnarBlockSkip(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(Options{Dir: dir, BlockTuples: 8, Format: FormatColumnar})
	if err != nil {
		t.Fatal(err)
	}
	// Two runs of blocks with disjoint ECID sets inside one segment.
	var corpus []collect.TraceTuple
	for i := 0; i < 64; i++ {
		ecid := uint32(1 + i%2)
		if i >= 32 {
			ecid = uint32(11 + i%2)
		}
		tu := tuple(ecid, uint32(i), int64(1000+10*i), int64(1005+10*i))
		corpus = append(corpus, tu)
		if err := w.Append([]collect.TraceTuple{tu}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// An op kind no tuple carries: every block skipped, nothing decoded.
	_, stats := selectAll(t, dir, Query{Ops: []paths.OpKind{paths.OpMode}})
	if stats.TuplesScanned != 0 || stats.BlocksSkipped == 0 || stats.BlocksScanned != 0 {
		t.Fatalf("op pushdown decoded tuples: %+v", stats)
	}
	// A collector in the second half only: the first half's blocks are
	// skipped, the matched set is exact.
	got, stats := selectAll(t, dir, Query{ECIDs: []uint32{11}})
	var want []collect.TraceTuple
	for _, tu := range corpus {
		if tu.ECID == 11 {
			want = append(want, tu)
		}
	}
	sameTuples(t, got, want)
	if stats.BlocksSkipped < 4 {
		t.Fatalf("ecid pushdown skipped %d blocks, want >= 4 (%+v)", stats.BlocksSkipped, stats)
	}
	if stats.TuplesScanned >= uint64(len(corpus)) {
		t.Fatalf("ecid pushdown decoded the whole archive: %+v", stats)
	}
}

// TestOptionsFormatValidation rejects unknown formats.
func TestOptionsFormatValidation(t *testing.T) {
	if _, err := Create(Options{Dir: t.TempDir(), Format: 7}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
