package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"eventspace/internal/collect"
	"eventspace/internal/paths"
)

// Columnar (version 2) block layout. Instead of count × 28-byte row
// tuples, a block stores the batch column by column so that each column
// can use the encoding its values actually need:
//
//	off  size  field
//	  0     4  tuple count
//	  4     4  column-area bytes (directory + payloads)
//	  8     4  CRC32(directory)
//	 12    54  directory: 6 × (encoding u8, payload len u32, CRC32 u32)
//	 66     …  column payloads, in column order, back to back
//
// Columns are fixed: ECID, Op, Ret, Seq, Start, End. Each payload
// carries its own CRC so a reader can validate just the columns a query
// needs — the block-skip fast path checksums only the dictionary-coded
// ECID/Op columns before deciding whether the rest of the block is
// worth decoding at all.
//
// Encodings:
//
//	raw     fixed-width little-endian values (the row layout, columnized)
//	dict    u16 value count, the distinct values at fixed width in first-
//	        appearance order, then count × u8 indexes. Chosen when a
//	        column has at most 256 distinct values — always true in
//	        practice for ECID, Op and Ret.
//	delta   zigzag-varint difference from the previous value (first value
//	        from zero). Chosen for Seq and Start, which are near-
//	        monotonic, so deltas are tiny.
//	latency varint of End-Start per tuple (End only): the latency is
//	        orders of magnitude smaller than the absolute stamp.
//
// All arithmetic is wrapping uint64, so every int64/uint32 value round-
// trips exactly regardless of overflow; the fuzzer pins this down with
// adversarial stamps.
const (
	colECID = iota
	colOp
	colRet
	colSeq
	colStart
	colEnd
	numColumns
)

const (
	colEncRaw     = 0
	colEncDict    = 1
	colEncDelta   = 2
	colEncLatency = 3

	v2BlockHeaderSize = 12
	v2DirEntrySize    = 9
	v2DirSize         = numColumns * v2DirEntrySize
	v2MaxDictEntries  = 256
)

// colRawWidth is each column's fixed-width encoding size in bytes.
var colRawWidth = [numColumns]int{4, 2, 2, 4, 8, 8}

// colName labels columns in error messages.
var colName = [numColumns]string{"ecid", "op", "ret", "seq", "start", "end"}

// colValue extracts one column of a tuple as a uint64 (narrower columns
// are zero-extended; signed ones carry their bit pattern).
func colValue(t *collect.TraceTuple, col int) uint64 {
	switch col {
	case colECID:
		return uint64(t.ECID)
	case colOp:
		return uint64(uint16(t.Op))
	case colRet:
		return uint64(uint16(t.Ret))
	case colSeq:
		return uint64(t.Seq)
	case colStart:
		return uint64(t.Start)
	default:
		return uint64(t.End)
	}
}

// setColValue is colValue's inverse.
func setColValue(t *collect.TraceTuple, col int, v uint64) {
	switch col {
	case colECID:
		t.ECID = uint32(v)
	case colOp:
		t.Op = paths.OpKind(uint16(v))
	case colRet:
		t.Ret = int16(uint16(v))
	case colSeq:
		t.Seq = uint32(v)
	case colStart:
		t.Start = int64(v)
	default:
		t.End = int64(v)
	}
}

// appendColValue appends v at the column's fixed width.
func appendColValue(dst []byte, col int, v uint64) []byte {
	switch colRawWidth[col] {
	case 2:
		return binary.LittleEndian.AppendUint16(dst, uint16(v))
	case 4:
		return binary.LittleEndian.AppendUint32(dst, uint32(v))
	default:
		return binary.LittleEndian.AppendUint64(dst, v)
	}
}

// readColValue reads a fixed-width column value.
func readColValue(b []byte, col int) uint64 {
	switch colRawWidth[col] {
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

// zigzag folds sign into the low bit so small negatives varint-encode
// small; unzigzag inverts it.
func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// columnarEncoder turns tuple batches into version-2 blocks. All its
// buffers are reused across blocks, so a warm encoder allocates nothing
// on the write path. Not safe for concurrent use; the writer owns one
// under its lock.
type columnarEncoder struct {
	block []byte                // assembled block, valid until the next encodeBlock
	col   [numColumns][]byte    // per-column payload scratch
	dict  map[uint64]uint8      // value -> index, cleared per column
	vals  []uint64              // dictionary values in first-appearance order
}

// encodeDictOrRaw writes the column dictionary-coded, falling back to
// raw fixed-width values when the batch has more than 256 distinct
// values. Returns the encoding chosen.
func (e *columnarEncoder) encodeDictOrRaw(tuples []collect.TraceTuple, col int) byte {
	if e.dict == nil {
		e.dict = make(map[uint64]uint8, v2MaxDictEntries)
	}
	clear(e.dict)
	e.vals = e.vals[:0]
	for i := range tuples {
		v := colValue(&tuples[i], col)
		if _, ok := e.dict[v]; !ok {
			if len(e.vals) == v2MaxDictEntries {
				return e.encodeRaw(tuples, col)
			}
			e.dict[v] = uint8(len(e.vals))
			e.vals = append(e.vals, v)
		}
	}
	p := e.col[col][:0]
	p = binary.LittleEndian.AppendUint16(p, uint16(len(e.vals)))
	for _, v := range e.vals {
		p = appendColValue(p, col, v)
	}
	for i := range tuples {
		p = append(p, e.dict[colValue(&tuples[i], col)])
	}
	e.col[col] = p
	return colEncDict
}

// encodeRaw writes the column as fixed-width values.
func (e *columnarEncoder) encodeRaw(tuples []collect.TraceTuple, col int) byte {
	p := e.col[col][:0]
	for i := range tuples {
		p = appendColValue(p, col, colValue(&tuples[i], col))
	}
	e.col[col] = p
	return colEncRaw
}

// encodeDelta writes the column as zigzag-varint differences from the
// previous value (wrapping, so arbitrary values round-trip).
func (e *columnarEncoder) encodeDelta(tuples []collect.TraceTuple, col int) byte {
	p := e.col[col][:0]
	var prev uint64
	for i := range tuples {
		v := colValue(&tuples[i], col)
		p = binary.AppendUvarint(p, zigzag(int64(v-prev)))
		prev = v
	}
	e.col[col] = p
	return colEncDelta
}

// encodeLatency writes the End column as zigzag-varints of End-Start.
func (e *columnarEncoder) encodeLatency(tuples []collect.TraceTuple) byte {
	p := e.col[colEnd][:0]
	for i := range tuples {
		d := uint64(tuples[i].End) - uint64(tuples[i].Start)
		p = binary.AppendUvarint(p, zigzag(int64(d)))
	}
	e.col[colEnd] = p
	return colEncLatency
}

// encodeBlock assembles one version-2 block. The returned slice aliases
// the encoder's scratch buffer: it is valid until the next call.
func (e *columnarEncoder) encodeBlock(tuples []collect.TraceTuple) []byte {
	var enc [numColumns]byte
	enc[colECID] = e.encodeDictOrRaw(tuples, colECID)
	enc[colOp] = e.encodeDictOrRaw(tuples, colOp)
	enc[colRet] = e.encodeDictOrRaw(tuples, colRet)
	enc[colSeq] = e.encodeDelta(tuples, colSeq)
	enc[colStart] = e.encodeDelta(tuples, colStart)
	enc[colEnd] = e.encodeLatency(tuples)

	colBytes := v2DirSize
	for c := range e.col {
		colBytes += len(e.col[c])
	}
	b := e.block[:0]
	b = binary.LittleEndian.AppendUint32(b, uint32(len(tuples)))
	b = binary.LittleEndian.AppendUint32(b, uint32(colBytes))
	b = binary.LittleEndian.AppendUint32(b, 0) // directory CRC, patched below
	for c := 0; c < numColumns; c++ {
		b = append(b, enc[c])
		b = binary.LittleEndian.AppendUint32(b, uint32(len(e.col[c])))
		b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(e.col[c]))
	}
	binary.LittleEndian.PutUint32(b[8:12], crc32.ChecksumIEEE(b[v2BlockHeaderSize:v2BlockHeaderSize+v2DirSize]))
	for c := 0; c < numColumns; c++ {
		b = append(b, e.col[c]...)
	}
	e.block = b
	return b
}

// columnarFrame is a version-2 block located inside a segment image:
// header and directory validated, column payloads sliced out but not
// yet checksummed or decoded.
type columnarFrame struct {
	count int
	size  int64 // total framed size, header included
	enc   [numColumns]byte
	crc   [numColumns]uint32
	col   [numColumns][]byte
}

// frameColumnarBlock locates the next version-2 block at the start of
// rest. It validates bounds and the directory CRC only — cheap enough
// to run on every block — leaving per-column CRCs to the decode (or the
// skip check) so untouched columns cost nothing. ok=false means a torn
// or corrupt tail.
func frameColumnarBlock(rest []byte) (columnarFrame, bool) {
	var f columnarFrame
	if len(rest) < v2BlockHeaderSize+v2DirSize {
		return f, false
	}
	count := binary.LittleEndian.Uint32(rest[0:4])
	if count == 0 || count > MaxBlockTuples {
		return f, false
	}
	colBytes := int64(binary.LittleEndian.Uint32(rest[4:8]))
	if colBytes < v2DirSize || v2BlockHeaderSize+colBytes > int64(len(rest)) {
		return f, false
	}
	dir := rest[v2BlockHeaderSize : v2BlockHeaderSize+v2DirSize]
	if crc32.ChecksumIEEE(dir) != binary.LittleEndian.Uint32(rest[8:12]) {
		return f, false
	}
	f.count = int(count)
	off := int64(v2BlockHeaderSize + v2DirSize)
	end := v2BlockHeaderSize + colBytes
	for c := 0; c < numColumns; c++ {
		ent := dir[c*v2DirEntrySize : (c+1)*v2DirEntrySize]
		f.enc[c] = ent[0]
		n := int64(binary.LittleEndian.Uint32(ent[1:5]))
		f.crc[c] = binary.LittleEndian.Uint32(ent[5:9])
		if f.enc[c] > colEncLatency || n > end-off {
			return f, false
		}
		f.col[c] = rest[off : off+n]
		off += n
	}
	if off != end {
		return f, false
	}
	f.size = end
	return f, true
}

// blockDecoder decodes blocks of either format into a reused tuple
// batch, so a scan's per-block cost is bounds checks and column reads,
// not allocation. The returned batches alias dec.batch: valid until the
// next decode. Not safe for concurrent use; each scan owns one.
type blockDecoder struct {
	batch []collect.TraceTuple
	dict  []uint64
}

// decodeColumnar fully validates and decodes a framed version-2 block.
// Any failure (column CRC, short payload, bad dictionary index, varint
// overrun) is a torn/corrupt block.
func (d *blockDecoder) decodeColumnar(f *columnarFrame) ([]collect.TraceTuple, error) {
	if cap(d.batch) < f.count {
		d.batch = make([]collect.TraceTuple, f.count)
	}
	batch := d.batch[:f.count]
	for c := 0; c < numColumns; c++ {
		if err := d.decodeColumn(f, c, batch); err != nil {
			return nil, err
		}
	}
	d.batch = batch
	return batch, nil
}

// decodeColumn validates one column's CRC and decodes it into the
// batch. Column order matters only for latency, which reconstructs End
// from the already-decoded Start.
func (d *blockDecoder) decodeColumn(f *columnarFrame, col int, batch []collect.TraceTuple) error {
	p := f.col[col]
	if crc32.ChecksumIEEE(p) != f.crc[col] {
		return fmt.Errorf("archive: %s column CRC mismatch", colName[col])
	}
	switch f.enc[col] {
	case colEncRaw:
		w := colRawWidth[col]
		if len(p) != len(batch)*w {
			return fmt.Errorf("archive: %s column: %d raw bytes for %d tuples", colName[col], len(p), len(batch))
		}
		for i := range batch {
			setColValue(&batch[i], col, readColValue(p[i*w:], col))
		}
	case colEncDict:
		n, vals, idx, err := d.splitDict(p, col)
		if err != nil {
			return err
		}
		if len(idx) != len(batch) {
			return fmt.Errorf("archive: %s column: %d dictionary indexes for %d tuples", colName[col], len(idx), len(batch))
		}
		w := colRawWidth[col]
		for i, ix := range idx {
			if int(ix) >= n {
				return fmt.Errorf("archive: %s column: dictionary index %d out of %d", colName[col], ix, n)
			}
			setColValue(&batch[i], col, readColValue(vals[int(ix)*w:], col))
		}
	case colEncDelta:
		var prev uint64
		off := 0
		for i := range batch {
			u, n := binary.Uvarint(p[off:])
			if n <= 0 {
				return fmt.Errorf("archive: %s column: truncated varint at %d", colName[col], off)
			}
			off += n
			prev += uint64(unzigzag(u))
			setColValue(&batch[i], col, prev)
		}
		if off != len(p) {
			return fmt.Errorf("archive: %s column: %d trailing bytes", colName[col], len(p)-off)
		}
	case colEncLatency:
		if col != colEnd {
			return fmt.Errorf("archive: latency encoding on %s column", colName[col])
		}
		off := 0
		for i := range batch {
			u, n := binary.Uvarint(p[off:])
			if n <= 0 {
				return fmt.Errorf("archive: %s column: truncated varint at %d", colName[col], off)
			}
			off += n
			batch[i].End = int64(uint64(batch[i].Start) + uint64(unzigzag(u)))
		}
		if off != len(p) {
			return fmt.Errorf("archive: %s column: %d trailing bytes", colName[col], len(p)-off)
		}
	default:
		return fmt.Errorf("archive: %s column: unknown encoding %d", colName[col], f.enc[col])
	}
	return nil
}

// splitDict splits a dictionary payload into its value table and index
// bytes, validating the framing.
func (d *blockDecoder) splitDict(p []byte, col int) (n int, vals, idx []byte, err error) {
	if len(p) < 2 {
		return 0, nil, nil, fmt.Errorf("archive: %s column: short dictionary", colName[col])
	}
	n = int(binary.LittleEndian.Uint16(p[0:2]))
	w := colRawWidth[col]
	if n == 0 || n > v2MaxDictEntries || len(p) < 2+n*w {
		return 0, nil, nil, fmt.Errorf("archive: %s column: dictionary of %d values in %d bytes", colName[col], n, len(p))
	}
	return n, p[2 : 2+n*w], p[2+n*w:], nil
}

// dictValues checksums the column and decodes just its dictionary
// values (not the per-tuple indexes) into the decoder's scratch. The
// CRC check first is what keeps the skip path honest: a corrupt block
// is never silently skipped — the check fails, the caller falls through
// to the full decode, and the decode reports the tear.
func (d *blockDecoder) dictValues(f *columnarFrame, col int) ([]uint64, bool) {
	p := f.col[col]
	if crc32.ChecksumIEEE(p) != f.crc[col] {
		return nil, false
	}
	n, vals, _, err := d.splitDict(p, col)
	if err != nil {
		return nil, false
	}
	w := colRawWidth[col]
	d.dict = d.dict[:0]
	for i := 0; i < n; i++ {
		d.dict = append(d.dict, readColValue(vals[i*w:], col))
	}
	return d.dict, true
}

// skipColumnar reports whether the block's dictionaries prove no tuple
// in it can match q, without decoding the block. This is the columnar
// pushdown: a query for one collector or one op kind touches only the
// dictionary bytes of blocks it skips.
func (d *blockDecoder) skipColumnar(f *columnarFrame, q *Query) bool {
	if len(q.ECIDs) > 0 && f.enc[colECID] == colEncDict {
		if vals, ok := d.dictValues(f, colECID); ok && !dictHasECID(vals, q.ECIDs) {
			return true
		}
	}
	if len(q.Ops) > 0 && f.enc[colOp] == colEncDict {
		if vals, ok := d.dictValues(f, colOp); ok && !dictHasOp(vals, q.Ops) {
			return true
		}
	}
	return false
}

func dictHasECID(vals []uint64, ecids []uint32) bool {
	for _, v := range vals {
		for _, id := range ecids {
			if uint32(v) == id {
				return true
			}
		}
	}
	return false
}

func dictHasOp(vals []uint64, ops []paths.OpKind) bool {
	for _, v := range vals {
		for _, op := range ops {
			if paths.OpKind(uint16(v)) == op {
				return true
			}
		}
	}
	return false
}
