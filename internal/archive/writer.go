package archive

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
)

// segmentFileName names segment id on disk. Ids are monotonically
// increasing, so lexical order equals write order.
func segmentFileName(id uint32) string { return fmt.Sprintf("seg-%08d.eseg", id) }

// parseSegmentFileName inverts segmentFileName.
func parseSegmentFileName(name string) (uint32, bool) {
	rest, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".eseg")
	if !ok || len(rest) != 8 {
		return 0, false
	}
	var id uint32
	for _, c := range rest {
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + uint32(c-'0')
	}
	return id, true
}

// writerSegment is the writer's bookkeeping for one on-disk segment.
type writerSegment struct {
	id   uint32
	path string
	size int64
}

// WriterStats is a snapshot of a writer's activity.
type WriterStats struct {
	Segments         int    // segment files currently on disk
	ActiveSegment    uint32 // id of the segment being appended to
	TuplesWritten    uint64 // tuples persisted by this writer
	BytesWritten     uint64 // block bytes persisted by this writer
	TotalBytes       int64  // archive size on disk, headers included
	Rotations        uint64 // segments sealed because of the size cap
	RetentionDeletes uint64 // old segments deleted by the total-bytes cap
	TornTruncations  uint64 // torn tails truncated at reopen
	TuplesRecovered  uint64 // tuples found in the reopened segment
}

// Writer appends trace tuples to a segmented archive directory. All
// methods are safe for concurrent use; tuples are persisted in Append
// order. A Writer is the sink end of the archive: wire it to a puller
// with escope.ArchiveSink, or call Append from a monitor tap.
type Writer struct {
	opts    Options
	version uint16 // block codec for segments this writer creates

	mu       sync.Mutex
	f        *os.File
	active   writerSegment
	index    SegmentIndex
	pending  []collect.TraceTuple
	enc      columnarEncoder       // reused columnar block scratch
	rowBuf   []byte                // reused row block scratch
	rawBatch []collect.TraceTuple  // reused AppendRaw decode batch
	sealed   []writerSegment       // older segments, oldest first
	total    int64                 // bytes on disk across sealed + active
	closed   bool
	stats    WriterStats
	writeErr error // first unrecoverable file-system error, sticky

	// baseTuples counts the durable tuples already on disk when the
	// directory was (re)opened, so Position can report a cursor in
	// directory-lifetime tuple coordinates across crash-restart cycles.
	baseTuples uint64

	opWrite *metrics.Op
	cRot    *metrics.Counter
	cRet    *metrics.Counter
	cTrunc  *metrics.Counter
}

// Create opens (or crash-safely reopens) the archive directory and
// returns a Writer appending to it. An existing unsealed newest segment
// is continued after its torn tail, if any, is truncated away; at most
// the final partial block of the previous run is lost.
func Create(opts Options) (*Writer, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("archive: %v", err)
	}
	w := &Writer{opts: opts, version: opts.format()}
	if reg := opts.Metrics; reg != nil {
		label := filepath.Base(opts.Dir)
		w.opWrite = reg.Op(metrics.KindArchive, "archive("+label+")")
		w.cRot = reg.Counter("archive(" + label + ")/rotations")
		w.cRet = reg.Counter("archive(" + label + ")/retention.deletes")
		w.cTrunc = reg.Counter("archive(" + label + ")/truncations")
	}
	if err := w.reopen(); err != nil {
		return nil, err
	}
	return w, nil
}

// listSegments returns the directory's segment files in id order.
func listSegments(dir string) ([]writerSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("archive: %v", err)
	}
	var segs []writerSegment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		id, ok := parseSegmentFileName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("archive: %v", err)
		}
		segs = append(segs, writerSegment{id: id, path: filepath.Join(dir, e.Name()), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].id < segs[j].id })
	return segs, nil
}

// segmentTuples returns the tuple count a segment file holds: the
// header index for sealed segments, a block scan for unsealed ones. A
// file without a valid header counts zero, matching the reader, which
// skips such files.
func segmentTuples(path string) (uint64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("archive: %v", err)
	}
	if len(buf) < segmentHeaderSize {
		return 0, nil
	}
	hdr, err := decodeHeader(buf)
	if err != nil {
		return 0, nil
	}
	if hdr.Sealed {
		return hdr.Index.Tuples, nil
	}
	res, err := scanSegment(buf)
	if err != nil {
		return 0, nil
	}
	return res.Index.Tuples, nil
}

// reopen restores the writer's state from the directory: older segments
// count toward retention, and the newest is validated, truncated past
// its last intact block, and either continued (unsealed) or sealed off.
func (w *Writer) reopen() error {
	segs, err := listSegments(w.opts.Dir)
	if err != nil {
		return err
	}
	nextID := uint32(1)
	for _, s := range segs {
		w.total += s.size
		nextID = s.id + 1
	}
	// Older segments contribute their recorded tuple counts to the
	// directory-lifetime cursor basis; the newest is counted below from
	// its recovered index, after torn-tail repair.
	for _, s := range segs[:max(len(segs)-1, 0)] {
		n, err := segmentTuples(s.path)
		if err != nil {
			return err
		}
		w.baseTuples += n
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		buf, err := os.ReadFile(last.path)
		if err != nil {
			return fmt.Errorf("archive: %v", err)
		}
		res, err := scanSegment(buf)
		switch {
		case err != nil:
			// The newest file never got a valid header (crash between
			// create and the first write). Drop it and start fresh
			// under the same id.
			w.total -= last.size
			if err := os.Remove(last.path); err != nil {
				return fmt.Errorf("archive: %v", err)
			}
			w.stats.TornTruncations++
			w.cTrunc.Inc()
			segs = segs[:len(segs)-1]
			nextID = last.id
		case res.Torn:
			if err := os.Truncate(last.path, res.ValidBytes); err != nil {
				return fmt.Errorf("archive: %v", err)
			}
			w.total -= last.size - res.ValidBytes
			last.size = res.ValidBytes
			segs[len(segs)-1] = last
			w.stats.TornTruncations++
			w.cTrunc.Inc()
			fallthrough
		default:
			w.baseTuples += res.Index.Tuples
			if !res.Header.Sealed && res.Header.Version == w.version {
				// Continue appending where the previous run stopped.
				f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
				if err != nil {
					return fmt.Errorf("archive: %v", err)
				}
				if _, err := f.Seek(last.size, 0); err != nil {
					f.Close()
					return fmt.Errorf("archive: %v", err)
				}
				w.f = f
				w.active = last
				w.index = res.Index
				w.stats.TuplesRecovered = res.Index.Tuples
				w.sealed = segs[:len(segs)-1]
				w.stats.Segments = len(segs)
				w.stats.ActiveSegment = last.id
				w.stats.TotalBytes = w.total
				return nil
			}
			if !res.Header.Sealed {
				// The previous run wrote this segment in another block
				// format. Blocks within a segment must share one codec,
				// so seal it with its recovered index and start a fresh
				// segment in the writer's own format.
				hdr := encodeHeader(segmentHeader{
					ID: res.Header.ID, Version: res.Header.Version,
					Sealed: true, Index: res.Index,
				})
				f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
				if err != nil {
					return fmt.Errorf("archive: %v", err)
				}
				if _, err := f.WriteAt(hdr, 0); err != nil {
					f.Close()
					return fmt.Errorf("archive: %v", err)
				}
				if err := f.Close(); err != nil {
					return fmt.Errorf("archive: %v", err)
				}
				w.stats.TuplesRecovered = res.Index.Tuples
			}
		}
	}
	w.sealed = segs
	return w.newSegment(nextID)
}

// newSegment creates and activates segment id with a provisional
// (unsealed) header.
func (w *Writer) newSegment(id uint32) error {
	path := filepath.Join(w.opts.Dir, segmentFileName(id))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("archive: %v", err)
	}
	hdr := encodeHeader(segmentHeader{ID: id, Version: w.version})
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("archive: %v", err)
	}
	w.f = f
	w.active = writerSegment{id: id, path: path, size: segmentHeaderSize}
	w.index = SegmentIndex{}
	w.total += segmentHeaderSize
	w.stats.Segments = len(w.sealed) + 1
	w.stats.ActiveSegment = id
	w.stats.TotalBytes = w.total
	return nil
}

// Append buffers tuples and persists them in whole blocks. Tuples are
// durable after the block holding them is written; Flush or Close
// forces out a partial block.
func (w *Writer) Append(tuples []collect.TraceTuple) error {
	if len(tuples) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("archive: writer closed")
	}
	if w.writeErr != nil {
		return w.writeErr
	}
	return w.appendLocked(tuples)
}

// appendLocked buffers tuples and flushes whole blocks.
func (w *Writer) appendLocked(tuples []collect.TraceTuple) error {
	w.pending = append(w.pending, tuples...)
	bt := w.opts.blockTuples()
	for len(w.pending) >= bt {
		if err := w.flushLocked(bt); err != nil {
			return err
		}
	}
	return nil
}

// AppendRaw decodes a concatenation of encoded tuples (an event-scope
// pull reply) and appends them. The decode batch is reused across
// calls, so steady-state archiving of gather replies does not allocate
// per payload. A trailing partial tuple is reported via collect's
// offset-carrying error after the whole tuples before it were appended.
func (w *Writer) AppendRaw(data []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("archive: writer closed")
	}
	if w.writeErr != nil {
		return w.writeErr
	}
	tuples, err := collect.DecodeAppend(w.rawBatch[:0], data)
	if tuples != nil {
		w.rawBatch = tuples[:0]
	}
	if len(tuples) > 0 {
		if aerr := w.appendLocked(tuples); aerr != nil {
			return aerr
		}
	}
	return err
}

// flushLocked writes the first n pending tuples (n <= 0: all) as one
// block, updating the index and rotating when the segment is full.
func (w *Writer) flushLocked(n int) error {
	if n <= 0 || n > len(w.pending) {
		n = len(w.pending)
	}
	if n == 0 {
		return nil
	}
	batch := w.pending[:n]
	// Both codecs encode into writer-owned scratch reused across
	// blocks: the steady-state flush path allocates nothing.
	var buf []byte
	if w.version == segmentVersionCol {
		buf = w.enc.encodeBlock(batch)
	} else {
		buf = encodeRowBlockInto(w.rowBuf[:0], batch)
		w.rowBuf = buf
	}
	if frac, fire := w.opts.CrashPoints.hit(CrashBlockFlush); fire {
		// Persist only a torn prefix of the block and die: the index,
		// stats and pending buffer are untouched, exactly as a power cut
		// mid-write would leave them.
		if keep := tearLen(len(buf), frac); keep > 0 {
			w.f.Write(buf[:keep])
		}
		w.writeErr = ErrInjectedCrash
		return w.writeErr
	}
	start := hrtime.Now()
	_, err := w.f.Write(buf)
	w.opWrite.Record(hrtime.Since(start), len(buf), err)
	if err != nil {
		w.writeErr = fmt.Errorf("archive: segment %d: %v", w.active.id, err)
		return w.writeErr
	}
	for _, t := range batch {
		w.index.add(t)
	}
	w.index.Blocks++
	w.pending = w.pending[:copy(w.pending, w.pending[n:])]
	w.active.size += int64(len(buf))
	w.total += int64(len(buf))
	w.stats.TuplesWritten += uint64(n)
	w.stats.BytesWritten += uint64(len(buf))
	w.stats.TotalBytes = w.total
	if w.active.size >= w.opts.segmentBytes() {
		return w.rotateLocked()
	}
	return nil
}

// sealLocked finalizes the active segment's header in place.
func (w *Writer) sealLocked() error {
	if _, fire := w.opts.CrashPoints.hit(CrashSeal); fire {
		// Die before the header rewrite: the segment keeps its valid
		// provisional (unsealed) header and every flushed block. The
		// 64-byte in-place rewrite itself is modelled as atomic — it
		// fits one sector — so the only crash states around sealing are
		// "still unsealed" (here) and "sealed" (after).
		w.f.Close()
		w.f = nil
		w.writeErr = ErrInjectedCrash
		return w.writeErr
	}
	hdr := encodeHeader(segmentHeader{ID: w.active.id, Version: w.version, Sealed: true, Index: w.index})
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		w.writeErr = fmt.Errorf("archive: sealing segment %d: %v", w.active.id, err)
		return w.writeErr
	}
	if err := w.f.Close(); err != nil {
		w.writeErr = fmt.Errorf("archive: closing segment %d: %v", w.active.id, err)
		return w.writeErr
	}
	w.f = nil
	return nil
}

// rotateLocked seals the active segment, opens the next one, and
// applies the retention cap.
func (w *Writer) rotateLocked() error {
	if err := w.sealLocked(); err != nil {
		return err
	}
	w.sealed = append(w.sealed, w.active)
	w.stats.Rotations++
	w.cRot.Inc()
	if _, fire := w.opts.CrashPoints.hit(CrashRotate); fire {
		// Die between sealing the old segment and writing the new one's
		// header, leaving the header-less empty file a real crash at
		// this instant leaves; reopen drops it and reuses the id.
		if f, err := os.OpenFile(filepath.Join(w.opts.Dir, segmentFileName(w.active.id+1)),
			os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644); err == nil {
			f.Close()
		}
		w.writeErr = ErrInjectedCrash
		return w.writeErr
	}
	if err := w.newSegment(w.active.id + 1); err != nil {
		w.writeErr = err
		return err
	}
	// Retention: drop the oldest sealed segments until the total fits.
	// The active segment is never deleted.
	if limit := w.opts.MaxTotalBytes; limit > 0 {
		for w.total > limit && len(w.sealed) > 0 {
			old := w.sealed[0]
			if err := os.Remove(old.path); err != nil {
				w.writeErr = fmt.Errorf("archive: retention: %v", err)
				return w.writeErr
			}
			w.sealed = w.sealed[1:]
			w.total -= old.size
			w.stats.RetentionDeletes++
			w.cRet.Inc()
		}
		w.stats.Segments = len(w.sealed) + 1
		w.stats.TotalBytes = w.total
	}
	return nil
}

// Flush forces buffered tuples out as a (possibly short) block.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("archive: writer closed")
	}
	if w.writeErr != nil {
		return w.writeErr
	}
	return w.flushLocked(0)
}

// Rotate flushes and seals the active segment, starting a fresh one.
func (w *Writer) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("archive: writer closed")
	}
	if w.writeErr != nil {
		return w.writeErr
	}
	if err := w.flushLocked(0); err != nil {
		return err
	}
	return w.rotateLocked()
}

// Close flushes buffered tuples, seals the active segment, and releases
// the writer. Close is idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.writeErr != nil {
		if w.f != nil {
			w.f.Close()
			w.f = nil
		}
		return w.writeErr
	}
	if err := w.flushLocked(0); err != nil {
		if w.f != nil {
			w.f.Close()
			w.f = nil
		}
		return err
	}
	if err := w.sealLocked(); err != nil {
		if w.f != nil {
			w.f.Close()
			w.f = nil
		}
		return err
	}
	w.sealed = append(w.sealed, w.active)
	return nil
}

// Position returns the writer's current durable cursor: the tuples
// already persisted to disk, in directory-lifetime coordinates. Tuples
// still buffered in a partial block are NOT covered — call Flush first
// when the cursor must cover everything appended so far. A checkpoint
// stamped with this cursor owns exactly the archive prefix before it;
// Reader.ScanFrom replays the suffix after it.
func (w *Writer) Position() Cursor {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Cursor{
		Tuples:    w.baseTuples + w.stats.TuplesWritten,
		Segment:   w.active.id,
		SegTuples: w.index.Tuples,
	}
}

// Stats snapshots the writer's activity counters.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.stats
	s.Segments = len(w.sealed) + 1
	if w.f == nil {
		s.Segments = len(w.sealed)
	}
	s.TotalBytes = w.total
	return s
}

// Dir returns the archive directory.
func (w *Writer) Dir() string { return w.opts.Dir }
