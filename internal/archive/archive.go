// Package archive is EventSpace's flight recorder: a persistent,
// append-only, segmented binary store for the 28-byte trace tuples that
// the live monitors otherwise consume and discard.
//
// The live system's trace buffers are bounded PastSet elements that
// overwrite their oldest tuples; any analysis not running at collection
// time loses the evidence. The archive turns a monitoring run into a
// durable artifact: a Writer sinks trace-tuple batches (from an
// escope.Puller sink or a direct monitor tap) into fixed-size segment
// files, a Reader queries them back with pushdown filters that skip
// whole segments via the per-segment header index, and the replay layer
// feeds archived tuples through the same join/statistics pipelines the
// live monitors run — deterministically, because everything is keyed by
// tuple stamps and sequence numbers, never by the clock at replay time.
//
// # On-disk format
//
// A segment file is a 64-byte header followed by checksummed blocks of
// whole tuples. The header's version field selects the block codec for
// the whole segment; readers accept both versions side by side in one
// directory:
//
//	header (64 B): magic "ESG1", version, flags (sealed), segment id,
//	               ECID range, stamp range, tuple/block counts, CRC32
//
//	v1 row block (FormatRow):
//	  block   (8 B): tuple count, CRC32(payload)
//	  payload      : count × 28-byte tuples (collect.TraceTuple encoding)
//
//	v2 columnar block (FormatColumnar, the default):
//	  header (12 B): tuple count, column-area bytes, CRC32(directory)
//	  directory    : 6 × {encoding, length, CRC32} — one per column
//	  payloads     : ECID, Op, Ret, Seq, Start, End columns back to
//	                 back, each dictionary-, delta-, latency- or
//	                 raw-encoded (see DESIGN.md §12)
//
// Columnar blocks carry a CRC per column, so a query filtering on ECID
// or op kind can verify and decode just a block's dictionary column and
// skip the block entirely when the dictionary cannot intersect the
// query — the ≥4x selective-scan win recorded in BENCH_archive.json.
//
// The header is written provisionally (unsealed, empty index) when the
// segment is created and rewritten in place with the final index when
// the segment is sealed at rotation or Close. A crash can therefore
// leave the newest segment with an unsealed header and a torn final
// block; reopen and read both tolerate that by scanning blocks and
// truncating at the first invalid one, so at most the final partial
// block is lost (the round-trip and torn-tail tests pin this down).
//
// Rotation and retention are byte-capped: a segment rotates once its
// file exceeds Options.SegmentBytes, and after every rotation the
// oldest sealed segments are deleted until the archive's total size
// fits Options.MaxTotalBytes.
package archive

import (
	"fmt"

	"eventspace/internal/metrics"
)

// Options configures a Writer.
type Options struct {
	// Dir is the archive directory. Created if missing; a directory
	// holding segments from a previous run is reopened crash-safely
	// (the torn tail of the newest segment is truncated away).
	Dir string
	// SegmentBytes caps one segment file's size; the writer rotates to
	// a fresh segment once the current one exceeds it. 0 uses
	// DefaultSegmentBytes.
	SegmentBytes int64
	// MaxTotalBytes caps the archive's total size: after each rotation
	// the oldest sealed segments are deleted until the total fits.
	// 0 keeps everything.
	MaxTotalBytes int64
	// BlockTuples is the number of tuples buffered per block before the
	// block is written out. 0 uses DefaultBlockTuples; the cap is
	// MaxBlockTuples.
	BlockTuples int
	// Format selects the block codec for segments this writer creates:
	// FormatColumnar (the default) or FormatRow. Readers accept both
	// formats per segment, so a directory mixing them — e.g. after a
	// format change, or a reopen by a writer configured differently —
	// stays fully queryable.
	Format int
	// Metrics, when set, accounts archive writes (ops, bytes, latency)
	// and rotation/retention/truncation events in the self-metrics
	// registry. nil disables.
	Metrics *metrics.Registry
	// CrashPoints, when set, arms deterministic crash injection: the
	// writer (and any checkpointer sharing the options) tears the
	// in-flight write at the armed sites and goes sticky-dead with
	// ErrInjectedCrash, leaving exactly the on-disk state a power cut at
	// that instant would. Test-only; nil (the default) disables.
	CrashPoints *CrashPoints
}

// Format constants.
const (
	// DefaultSegmentBytes is the rotation cap when Options.SegmentBytes
	// is zero: 1 MiB, the paper's trace-buffer sizing unit (about
	// 37 450 tuples).
	DefaultSegmentBytes = 1 << 20
	// DefaultBlockTuples is the per-block buffering when
	// Options.BlockTuples is zero.
	DefaultBlockTuples = 256
	// MaxBlockTuples bounds a block's tuple count; a header claiming
	// more is treated as a torn/corrupt tail.
	MaxBlockTuples = 1 << 16
)

// Segment formats for Options.Format. The values match the on-disk
// segment header version.
const (
	// FormatRow stores blocks as count × 28-byte tuple rows.
	FormatRow = segmentVersionRow
	// FormatColumnar stores blocks column by column with dictionary and
	// delta encodings plus per-column CRCs; scans decode only the
	// columns a query needs and skip blocks whose dictionaries cannot
	// match it.
	FormatColumnar = segmentVersionCol
)

func (o *Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	if o.SegmentBytes < segmentHeaderSize+blockHeaderSize {
		return segmentHeaderSize + blockHeaderSize
	}
	return o.SegmentBytes
}

func (o *Options) blockTuples() int {
	switch {
	case o.BlockTuples <= 0:
		return DefaultBlockTuples
	case o.BlockTuples > MaxBlockTuples:
		return MaxBlockTuples
	default:
		return o.BlockTuples
	}
}

func (o *Options) format() uint16 {
	if o.Format == 0 {
		return FormatColumnar
	}
	return uint16(o.Format)
}

func (o *Options) validate() error {
	if o.Dir == "" {
		return fmt.Errorf("archive: no directory configured")
	}
	if o.Format != 0 && o.Format != FormatRow && o.Format != FormatColumnar {
		return fmt.Errorf("archive: unknown segment format %d", o.Format)
	}
	return nil
}
