package archive

import (
	"testing"

	"eventspace/internal/collect"
)

// captureCursor writes n tuples, flushes, and returns the durable
// cursor at that point.
func captureCursor(t *testing.T, w *Writer, n, offset int) Cursor {
	t.Helper()
	for i := 0; i < n; i++ {
		j := offset + i
		tu := tuple(uint32(1+j%3), uint32(j), int64(1000+10*j), int64(1005+10*j))
		if err := w.Append([]collect.TraceTuple{tu}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return w.Position()
}

// TestScanFromMatchesSuffix is the cursor contract on both formats:
// ScanFrom(cursor) streams exactly the tuples archived after the
// cursor, identical to the tail of a full Scan, while reading none of
// the covered segments.
func TestScanFromMatchesSuffix(t *testing.T) {
	for _, format := range []int{FormatRow, FormatColumnar} {
		t.Run(formatName(format), func(t *testing.T) {
			dir := t.TempDir()
			opts := smallOpts(dir)
			opts.Format = format
			w, err := Create(opts)
			if err != nil {
				t.Fatal(err)
			}
			// 100 tuples before the cursor (several rotations at 600 B
			// segments), 57 after, cursor mid-segment by construction.
			cur := captureCursor(t, w, 100, 0)
			captureCursor(t, w, 57, 100)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if cur.Tuples != 100 {
				t.Fatalf("cursor covers %d tuples, want 100", cur.Tuples)
			}

			r, err := OpenReader(dir)
			if err != nil {
				t.Fatal(err)
			}
			full, _, err := r.Select(Query{})
			if err != nil {
				t.Fatal(err)
			}
			var got []collect.TraceTuple
			stats, err := r.ScanFrom(cur, Query{}, func(t collect.TraceTuple) bool {
				got = append(got, t)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			sameTuples(t, got, full[100:])
			if stats.TuplesSkipped != 100 {
				t.Fatalf("TuplesSkipped = %d, want 100", stats.TuplesSkipped)
			}
			if stats.SegmentsSkipped == 0 {
				t.Fatal("no covered segment was skipped wholesale")
			}
			if stats.BytesSkipped == 0 {
				t.Fatal("BytesSkipped = 0; covered segments were read")
			}
			if stats.BytesScanned >= uint64(totalBytes(r)) {
				t.Fatalf("ScanFrom read the whole archive (%d of %d bytes)", stats.BytesScanned, totalBytes(r))
			}

			// Filters compose with the cursor.
			var filtered []collect.TraceTuple
			if _, err := r.ScanFrom(cur, Query{ECIDs: []uint32{2}}, func(t collect.TraceTuple) bool {
				filtered = append(filtered, t)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			var want []collect.TraceTuple
			for _, tu := range full[100:] {
				if tu.ECID == 2 {
					want = append(want, tu)
				}
			}
			sameTuples(t, filtered, want)
		})
	}
}

func totalBytes(r *Reader) int64 {
	var n int64
	for _, s := range r.segs {
		n += s.Bytes
	}
	return n
}

// TestScanFromSurvivesReopen verifies cursors stay valid across a
// crash-restart cycle: a cursor captured before the restart still
// replays exactly the suffix, because reopen restores the
// directory-lifetime tuple basis.
func TestScanFromSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(smallOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	cur := captureCursor(t, w, 60, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Create(smallOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	cur2 := captureCursor(t, w2, 40, 60)
	if cur2.Tuples != 100 {
		t.Fatalf("post-reopen cursor covers %d tuples, want 100 (lifetime basis lost)", cur2.Tuples)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := r.Select(Query{})
	if err != nil {
		t.Fatal(err)
	}
	var got []collect.TraceTuple
	if _, err := r.ScanFrom(cur, Query{}, func(t collect.TraceTuple) bool {
		got = append(got, t)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sameTuples(t, got, full[60:])
}

// TestScanFromRejectsInvalidCursors pins the validation ladder: a
// cursor for a missing segment, a mismatched global position, or a
// cursor claiming more tuples than its segment holds must all fail
// loudly so recovery falls back instead of diverging.
func TestScanFromRejectsInvalidCursors(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(smallOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	cur := captureCursor(t, w, 50, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	nop := func(collect.TraceTuple) bool { return true }

	missing := cur
	missing.Segment += 100
	if _, err := r.ScanFrom(missing, Query{}, nop); err == nil {
		t.Fatal("cursor for a missing segment accepted")
	}

	drifted := cur
	drifted.Tuples += 7
	if _, err := r.ScanFrom(drifted, Query{}, nop); err == nil {
		t.Fatal("cursor with mismatched global position accepted")
	}

	greedy := cur
	greedy.SegTuples += 1000
	greedy.Tuples += 1000
	if _, err := r.ScanFrom(greedy, Query{}, nop); err == nil {
		t.Fatal("cursor claiming uncovered tuples accepted")
	}
}

// TestScanFromAfterRetention verifies a cursor whose covered segments
// were retention-deleted is rejected (the prefix sum no longer proves
// the position) rather than replaying from the wrong offset.
func TestScanFromAfterRetention(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts(dir)
	w, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	cur := captureCursor(t, w, 40, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a tight retention cap and write enough to delete the
	// cursor's covered segments.
	opts.MaxTotalBytes = 1500
	w2, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	captureCursor(t, w2, 200, 40)
	if w2.Stats().RetentionDeletes == 0 {
		t.Fatal("retention never deleted a segment; cap too loose for the test")
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	nop := func(collect.TraceTuple) bool { return true }
	if _, err := r.ScanFrom(cur, Query{}, nop); err == nil {
		t.Fatal("cursor over retention-deleted segments accepted")
	}
}

// TestPositionCountsOnlyDurable verifies Position excludes buffered
// tuples: a checkpoint stamped with it owns exactly the bytes on disk.
func TestPositionCountsOnlyDurable(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(smallOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	// 3 tuples buffer below the 8-tuple block size: nothing durable.
	for i := 0; i < 3; i++ {
		if err := w.Append([]collect.TraceTuple{tuple(1, uint32(i), int64(i), int64(i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Position(); got.Tuples != 0 {
		t.Fatalf("Position covers %d buffered tuples, want 0", got.Tuples)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := w.Position(); got.Tuples != 3 {
		t.Fatalf("Position after Flush = %d, want 3", got.Tuples)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
