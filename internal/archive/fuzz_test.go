package archive

import (
	"encoding/binary"
	"math"
	"testing"

	"eventspace/internal/collect"
	"eventspace/internal/paths"
)

// FuzzSegmentDecode fuzzes the segment parser the reader and the
// crash-safe reopen both rely on: arbitrary bytes must never panic, and
// the recovered prefix must stay internally consistent (ValidBytes
// inside the buffer, index matching the tuples actually decoded).
func FuzzSegmentDecode(f *testing.F) {
	// Seed: an empty sealed segment, one with two blocks, and torn
	// variants of it.
	empty := encodeHeader(segmentHeader{ID: 1, Sealed: true})
	f.Add(empty)
	var whole []byte
	whole = append(whole, encodeHeader(segmentHeader{ID: 2})...)
	whole = append(whole, encodeBlock([]collect.TraceTuple{
		{ECID: 1, Seq: 0, Start: 10, End: 20},
		{ECID: 2, Seq: 1, Start: 30, End: 40},
	})...)
	whole = append(whole, encodeBlock([]collect.TraceTuple{
		{ECID: 3, Seq: 2, Start: 50, End: 60},
	})...)
	f.Add(whole)
	f.Add(whole[:len(whole)-7])          // torn payload
	f.Add(whole[:segmentHeaderSize+3])   // torn block header
	f.Add(whole[:segmentHeaderSize-10])  // short header
	f.Add(append([]byte(nil), whole...)) // mutated below by the engine
	// The same shapes under the columnar codec.
	var enc columnarEncoder
	var colSeg []byte
	colSeg = append(colSeg, encodeHeader(segmentHeader{ID: 3, Version: segmentVersionCol})...)
	colSeg = append(colSeg, enc.encodeBlock([]collect.TraceTuple{
		{ECID: 1, Seq: 0, Start: 10, End: 20},
		{ECID: 2, Seq: 1, Start: 30, End: 40},
	})...)
	colSeg = append(colSeg, enc.encodeBlock([]collect.TraceTuple{
		{ECID: 3, Seq: 2, Start: 50, End: 60},
	})...)
	f.Add(colSeg)
	f.Add(colSeg[:len(colSeg)-5])              // torn column payload
	f.Add(colSeg[:segmentHeaderSize+9])        // torn block header/directory
	f.Add(append([]byte(nil), colSeg...))      // mutated below by the engine

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := scanSegment(data)
		if err != nil {
			return // corrupt header: rejected outright
		}
		if res.ValidBytes < segmentHeaderSize || res.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d outside [%d, %d]", res.ValidBytes, segmentHeaderSize, len(data))
		}
		if res.Index.Tuples != uint64(len(res.Tuples)) {
			t.Fatalf("index counts %d tuples, decoded %d", res.Index.Tuples, len(res.Tuples))
		}
		if !res.Torn && res.ValidBytes != int64(len(data)) {
			t.Fatalf("not torn but ValidBytes %d < %d", res.ValidBytes, len(data))
		}
		// The recovered prefix must itself rescan identically — the
		// invariant behind truncate-and-continue reopens.
		again, err := scanSegment(data[:res.ValidBytes])
		if err != nil {
			t.Fatalf("rescan of valid prefix failed: %v", err)
		}
		if again.Torn || again.Index != res.Index {
			t.Fatalf("rescan diverged: torn=%v index=%+v want %+v", again.Torn, again.Index, res.Index)
		}
	})
}

// FuzzColumnarRoundTrip fuzzes the columnar block codec's losslessness:
// any tuple batch — the fuzz input is carved into 28-byte rows, so
// every field takes adversarial values, overflow stamps included — must
// encode, frame and decode back exactly.
func FuzzColumnarRoundTrip(f *testing.F) {
	seed := make([]byte, 3*collect.TupleSize)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed)
	var zeros [collect.TupleSize]byte
	f.Add(zeros[:])
	adversarial := collect.TraceTuple{
		ECID: math.MaxUint32, Op: paths.OpKind(math.MaxUint16), Ret: math.MinInt16,
		Seq: math.MaxUint32, Start: math.MinInt64, End: math.MaxInt64,
	}
	f.Add(adversarial.Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / collect.TupleSize
		if n == 0 {
			return
		}
		if n > MaxBlockTuples {
			n = MaxBlockTuples
		}
		tuples := make([]collect.TraceTuple, n)
		for i := range tuples {
			row := data[i*collect.TupleSize:]
			tuples[i] = collect.TraceTuple{
				ECID:  binary.LittleEndian.Uint32(row[0:4]),
				Op:    paths.OpKind(binary.LittleEndian.Uint16(row[4:6])),
				Ret:   int16(binary.LittleEndian.Uint16(row[6:8])),
				Seq:   binary.LittleEndian.Uint32(row[8:12]),
				Start: int64(binary.LittleEndian.Uint64(row[12:20])),
				End:   int64(binary.LittleEndian.Uint64(row[20:28])),
			}
		}
		var enc columnarEncoder
		block := enc.encodeBlock(tuples)
		fr, ok := frameColumnarBlock(block)
		if !ok {
			t.Fatal("encoded block does not frame")
		}
		if fr.size != int64(len(block)) {
			t.Fatalf("frame consumed %d of %d bytes", fr.size, len(block))
		}
		var dec blockDecoder
		got, err := dec.decodeColumnar(&fr)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		for i := range tuples {
			if got[i] != tuples[i] {
				t.Fatalf("tuple %d round-tripped to %+v, want %+v", i, got[i], tuples[i])
			}
		}
	})
}
