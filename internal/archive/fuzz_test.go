package archive

import (
	"testing"

	"eventspace/internal/collect"
)

// FuzzSegmentDecode fuzzes the segment parser the reader and the
// crash-safe reopen both rely on: arbitrary bytes must never panic, and
// the recovered prefix must stay internally consistent (ValidBytes
// inside the buffer, index matching the tuples actually decoded).
func FuzzSegmentDecode(f *testing.F) {
	// Seed: an empty sealed segment, one with two blocks, and torn
	// variants of it.
	empty := encodeHeader(segmentHeader{ID: 1, Sealed: true})
	f.Add(empty)
	var whole []byte
	whole = append(whole, encodeHeader(segmentHeader{ID: 2})...)
	whole = append(whole, encodeBlock([]collect.TraceTuple{
		{ECID: 1, Seq: 0, Start: 10, End: 20},
		{ECID: 2, Seq: 1, Start: 30, End: 40},
	})...)
	whole = append(whole, encodeBlock([]collect.TraceTuple{
		{ECID: 3, Seq: 2, Start: 50, End: 60},
	})...)
	f.Add(whole)
	f.Add(whole[:len(whole)-7])          // torn payload
	f.Add(whole[:segmentHeaderSize+3])   // torn block header
	f.Add(whole[:segmentHeaderSize-10])  // short header
	f.Add(append([]byte(nil), whole...)) // mutated below by the engine

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := scanSegment(data)
		if err != nil {
			return // corrupt header: rejected outright
		}
		if res.ValidBytes < segmentHeaderSize || res.ValidBytes > int64(len(data)) {
			t.Fatalf("ValidBytes %d outside [%d, %d]", res.ValidBytes, segmentHeaderSize, len(data))
		}
		if res.Index.Tuples != uint64(len(res.Tuples)) {
			t.Fatalf("index counts %d tuples, decoded %d", res.Index.Tuples, len(res.Tuples))
		}
		if !res.Torn && res.ValidBytes != int64(len(data)) {
			t.Fatalf("not torn but ValidBytes %d < %d", res.ValidBytes, len(data))
		}
		// The recovered prefix must itself rescan identically — the
		// invariant behind truncate-and-continue reopens.
		again, err := scanSegment(data[:res.ValidBytes])
		if err != nil {
			t.Fatalf("rescan of valid prefix failed: %v", err)
		}
		if again.Torn || again.Index != res.Index {
			t.Fatalf("rescan diverged: torn=%v index=%+v want %+v", again.Torn, again.Index, res.Index)
		}
	})
}
