// Deterministic crash-point injection. The archive's crash-recovery
// contract — torn tails truncated, unsealed headers re-indexed,
// checkpoint chains falling back past torn frames — is only trustworthy
// if the crashes it survives are the crashes that actually happen:
// writes torn mid-flight, not clean shutdowns. CrashPoints is the
// seeded seam the chaos matrix drives: it arms named sites inside the
// writer (and the checkpoint writer, which shares the options) and, on
// the armed occurrence, persists only a seed-derived prefix of the
// in-flight write before the writer goes sticky-dead with
// ErrInjectedCrash. The process keeps running, but the archive is left
// byte-for-byte as a power cut at that instant would leave it.
//
// The seal header rewrite (64 bytes at offset 0, a single sector) is
// modelled as atomic: CrashSeal fires before the rewrite, leaving the
// provisional unsealed header, and CrashRotate fires after the seal but
// before the next segment's header write, leaving a header-less empty
// file — the two states a real crash around rotation produces.
package archive

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrInjectedCrash is the sticky error a writer reports after an armed
// crash point fired. Everything already persisted before the tear is
// valid; the torn write and all later appends are lost, exactly as if
// the process had died.
var ErrInjectedCrash = errors.New("archive: injected crash")

// CrashSite names one injection site.
type CrashSite uint8

// Injection sites.
const (
	// CrashBlockFlush tears a data-block write mid-payload.
	CrashBlockFlush CrashSite = iota + 1
	// CrashSeal fires between the final block flush and the seal
	// header rewrite: the segment keeps its provisional unsealed header.
	CrashSeal
	// CrashRotate fires after the old segment sealed but before the new
	// segment's header write: a header-less empty file is left behind.
	CrashRotate
	// CrashCheckpoint tears a checkpoint-frame write mid-payload,
	// leaving a torn ckpt-*.eckpt file whose CRC cannot validate.
	CrashCheckpoint

	numCrashSites
)

// String names the site.
func (s CrashSite) String() string {
	switch s {
	case CrashBlockFlush:
		return "block-flush"
	case CrashSeal:
		return "seal"
	case CrashRotate:
		return "rotate"
	case CrashCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("site(%d)", uint8(s))
	}
}

// CrashSpec arms one site: the crash fires on the Count-th time the
// site is reached (1-based; Count <= 0 means the first).
type CrashSpec struct {
	Site  CrashSite
	Count int
}

// CrashPoints is a seeded, deterministic crash schedule. Each armed
// site fires at most once; the tear fraction — how much of the
// in-flight write survives — is derived from the seed and the site, so
// the same plan tears the same bytes every run.
type CrashPoints struct {
	// Seed drives the tear fractions. Two plans with the same specs but
	// different seeds crash at the same sites with different torn
	// prefixes.
	Seed uint64
	// Specs are the armed sites.
	Specs []CrashSpec

	mu    sync.Mutex
	hits  [numCrashSites]int
	done  [numCrashSites]bool
	fired []CrashSite
}

// hit records that a site was reached and reports whether an armed
// crash fires now, along with the deterministic fraction of the
// in-flight write to keep. Nil receivers never fire.
func (c *CrashPoints) hit(site CrashSite) (keepFrac float64, fire bool) {
	if c == nil || int(site) >= int(numCrashSites) {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits[site]++
	if c.done[site] {
		return 0, false
	}
	for _, sp := range c.Specs {
		if sp.Site != site {
			continue
		}
		at := sp.Count
		if at <= 0 {
			at = 1
		}
		if c.hits[site] == at {
			c.done[site] = true
			c.fired = append(c.fired, site)
			return c.frac(site), true
		}
	}
	return 0, false
}

// frac derives the site's tear fraction in [0, 1) from the seed via
// splitmix64 — deterministic, and decorrelated across sites.
func (c *CrashPoints) frac(site CrashSite) float64 {
	x := c.Seed + 0x9e3779b97f4a7c15*uint64(site+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(uint64(1)<<53)
}

// Fired returns the sites that have fired, in firing order.
func (c *CrashPoints) Fired() []CrashSite {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CrashSite(nil), c.fired...)
}

// TornWrite is the cooperative seam for sidecar writers sharing the
// archive's crash plan (the checkpoint writer): if site is armed and
// fires now, only a seed-derived strict prefix of buf reaches w and
// crashed reports true with ErrInjectedCrash; otherwise buf is written
// whole. Nil receivers never crash.
func (c *CrashPoints) TornWrite(site CrashSite, w io.Writer, buf []byte) (crashed bool, err error) {
	if frac, fire := c.hit(site); fire {
		if keep := tearLen(len(buf), frac); keep > 0 {
			if _, werr := w.Write(buf[:keep]); werr != nil {
				return true, werr
			}
		}
		return true, ErrInjectedCrash
	}
	_, err = w.Write(buf)
	return false, err
}

// tear returns how many bytes of an n-byte in-flight write survive the
// crash: a seed-derived strict prefix, so the on-disk tail is torn.
func tearLen(n int, keepFrac float64) int {
	if n <= 0 {
		return 0
	}
	keep := int(keepFrac * float64(n))
	if keep >= n {
		keep = n - 1
	}
	if keep < 0 {
		keep = 0
	}
	return keep
}
