// Archive cursors: the replay-suffix contract between the recovery
// checkpointer and the reader. Writer.Position stamps a checkpoint with
// the durable position of the stream; Reader.ScanFrom replays only the
// tuples archived after that position. Recovery time then scales with
// the suffix written since the last checkpoint, not with the archive —
// the bounded-time failover the recovery benchmark pins down.
//
// A cursor is only honoured when the directory still proves it: the
// tuple counts of the segments before the cursor must sum to exactly
// the cursor's global position, and the cursor segment must still hold
// at least the covered tuple count. Retention deletes, a torn cursor
// segment, or a cursor from some other directory all fail validation
// with an error, and the caller falls back down the recovery ladder
// (older checkpoint, then full replay) instead of silently diverging.
package archive

import (
	"encoding/binary"
	"fmt"
	"os"

	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
)

// Cursor marks a durable position in an archive directory's tuple
// stream, in directory-lifetime coordinates (reopen after a crash
// continues the same count).
type Cursor struct {
	// Tuples counts every tuple persisted to the directory before this
	// point, across all segments ever written, including any since
	// deleted by retention.
	Tuples uint64
	// Segment is the id of the segment that was active at capture.
	Segment uint32
	// SegTuples counts the tuples already persisted into that segment
	// at capture.
	SegTuples uint64
}

// frameBlock returns the tuple count and byte size of the block at the
// start of rest without decoding its payload — the cursor fast path
// skips covered blocks this way. ok=false is the torn-tail signature.
func frameBlock(version uint16, rest []byte) (count uint64, size int64, ok bool) {
	if version == segmentVersionCol {
		f, ok := frameColumnarBlock(rest)
		if !ok {
			return 0, 0, false
		}
		return uint64(f.count), f.size, true
	}
	if len(rest) < blockHeaderSize {
		return 0, 0, false
	}
	c := binary.LittleEndian.Uint32(rest[0:4])
	if c == 0 || c > MaxBlockTuples ||
		int64(c) > (int64(len(rest))-blockHeaderSize)/collect.TupleSize {
		return 0, 0, false
	}
	return uint64(c), blockHeaderSize + int64(c)*collect.TupleSize, true
}

// ScanFrom streams every tuple archived after cur that matches q, in
// archive order, through fn — the replay-suffix fast path behind
// checkpointed recovery. Segments wholly covered by the cursor are
// skipped without reading a byte; the cursor segment is skipped
// block-by-block without decoding until the cursor position, then
// scanned normally, as are all later segments. fn returning false stops
// the scan early.
//
// ScanFrom fails — rather than guessing — when the directory no longer
// matches the cursor: the cursor segment is gone or torn before the
// covered position, or the surviving prefix tuple counts do not sum to
// the cursor's global position (retention deleted covered segments).
// Callers treat that error as "this checkpoint is unusable here" and
// fall back to an older checkpoint or a full Scan.
func (r *Reader) ScanFrom(cur Cursor, q Query, fn func(collect.TraceTuple) bool) (ScanStats, error) {
	stats := ScanStats{Segments: len(r.segs)}
	start := hrtime.Now()
	var bytes int
	defer func() {
		r.opScan.Record(hrtime.Since(start), bytes, nil)
	}()

	var prefix uint64
	curSeg := -1
	for i, s := range r.segs {
		switch {
		case s.ID < cur.Segment:
			prefix += s.Index.Tuples
		case s.ID == cur.Segment:
			curSeg = i
		}
	}
	if curSeg < 0 {
		return stats, fmt.Errorf("archive: cursor segment %d not in archive", cur.Segment)
	}
	if got := prefix + cur.SegTuples; got != cur.Tuples {
		return stats, fmt.Errorf("archive: cursor mismatch: directory proves %d tuples before the cursor, cursor claims %d", got, cur.Tuples)
	}
	if have := r.segs[curSeg].Index.Tuples; have < cur.SegTuples {
		return stats, fmt.Errorf("archive: cursor segment %d holds %d tuples, cursor covers %d", cur.Segment, have, cur.SegTuples)
	}

	// Everything before the cursor segment is covered by the checkpoint:
	// skipped wholesale, never read.
	for _, s := range r.segs[:curSeg] {
		stats.SegmentsSkipped++
		stats.BytesSkipped += uint64(s.Bytes)
		stats.TuplesSkipped += s.Index.Tuples
	}

	var dec blockDecoder
	for _, s := range r.segs[curSeg:] {
		covered := uint64(0)
		if s.ID == cur.Segment {
			covered = cur.SegTuples
		}
		uncovered := s.Index.Tuples - covered
		if uncovered == 0 || !s.Index.overlapECIDs(q.ECIDs) || !s.Index.overlapStamps(q.MinStamp, q.MaxStamp) {
			stats.SegmentsSkipped++
			stats.BytesSkipped += uint64(s.Bytes)
			stats.TuplesSkipped += uncovered
			continue
		}
		buf, err := os.ReadFile(s.Path)
		if err != nil {
			return stats, fmt.Errorf("archive: %v", err)
		}
		bytes += len(buf)
		stats.BytesScanned += uint64(len(buf))
		h, err := decodeHeader(buf)
		if err != nil {
			return stats, fmt.Errorf("archive: segment %s: %v", s.Path, err)
		}
		stats.SegmentsScanned++
		off := int64(segmentHeaderSize)
		// Jump the covered prefix frame by frame: whole covered blocks
		// are sized but never decoded; the block straddling the cursor
		// is decoded once and its covered head dropped.
		for skip := covered; skip > 0; {
			count, size, ok := frameBlock(h.Version, buf[off:])
			if !ok {
				return stats, fmt.Errorf("archive: segment %s: torn before cursor position", s.Path)
			}
			if count <= skip {
				skip -= count
				off += size
				stats.BlocksSkipped++
				stats.TuplesSkipped += count
				continue
			}
			batch, size, ok := decodeNextBlock(h.Version, buf[off:], &dec)
			if !ok {
				return stats, fmt.Errorf("archive: segment %s: torn before cursor position", s.Path)
			}
			off += size
			stats.BlocksScanned++
			stats.TuplesSkipped += skip
			stats.TuplesScanned += uint64(len(batch)) - skip
			for _, t := range batch[skip:] {
				if !q.match(t) {
					continue
				}
				stats.TuplesMatched++
				if !fn(t) {
					return stats, nil
				}
			}
			skip = 0
		}
		if scanBlocks(buf, off, h.Version, &q, &dec, &stats, fn) {
			return stats, nil
		}
	}
	return stats, nil
}
