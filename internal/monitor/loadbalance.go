package monitor

import (
	"fmt"
	"sync"
	"time"

	"eventspace/internal/analysis"
	"eventspace/internal/cluster"
	"eventspace/internal/collect"
	"eventspace/internal/cosched"
	"eventspace/internal/escope"
	"eventspace/internal/hrtime"
	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// lbJoin joins contributor tuples per round and reports the last arriver.
// The load-balance monitor does not need the collective tuple: the last
// arrival is the contributor tuple with the largest down timestamp.
type lbJoin struct {
	k          int
	maxPending int
	pending    map[uint32]map[int]collect.TraceTuple
	order      []uint32
	lost       uint64
	// floor drops tuples of rounds already completed before a front-end
	// failover: a replay-seeded join ignores Seq <= floor so re-read
	// tuples cannot double-count a finished round. maxDone tracks the
	// highest completed Seq and becomes the next failover's floor.
	floor   uint32
	maxDone uint32
}

func newLBJoin(k int) *lbJoin {
	return &lbJoin{k: k, maxPending: 256, pending: make(map[uint32]map[int]collect.TraceTuple)}
}

// add feeds a contributor tuple; when the round completes it returns the
// last-arriving contributor and true.
func (j *lbJoin) add(contributor int, t collect.TraceTuple) (int, bool) {
	if j.floor > 0 && t.Seq <= j.floor {
		return 0, false
	}
	m, ok := j.pending[t.Seq]
	if !ok {
		m = make(map[int]collect.TraceTuple, j.k)
		j.pending[t.Seq] = m
		j.order = append(j.order, t.Seq)
		if len(j.pending) > j.maxPending {
			for len(j.order) > 0 {
				old := j.order[0]
				j.order = j.order[1:]
				if _, ok := j.pending[old]; ok && old != t.Seq {
					delete(j.pending, old)
					j.lost++
					break
				}
			}
		}
	}
	m[contributor] = t
	if len(m) < j.k {
		return 0, false
	}
	delete(j.pending, t.Seq)
	if t.Seq > j.maxDone {
		j.maxDone = t.Seq
	}
	last, lastStart := -1, int64(-1)
	for c, tu := range m {
		if tu.Start > lastStart || (tu.Start == lastStart && c > last) {
			last, lastStart = c, tu.Start
		}
	}
	return last, true
}

// LoadBalanceMode selects between the two figure-3 implementations.
type LoadBalanceMode int

// Load-balance monitor modes.
const (
	// SingleScope pulls raw trace tuples through one event scope with a
	// per-node reduce wrapper on each compute host.
	SingleScope LoadBalanceMode = iota
	// Distributed runs an analysis thread per host that maintains the
	// arrival-order state; only intermediate results are gathered.
	Distributed
)

// String names the mode.
func (m LoadBalanceMode) String() string {
	if m == Distributed {
		return "distributed"
	}
	return "single-scope"
}

// LoadBalance is the load-balance monitor of section 4.3.
type LoadBalance struct {
	mode LoadBalanceMode
	cfg  Config
	tree *cluster.Tree
	fe   *vnet.Host

	// Failover seeding (NewLoadBalanceFrom): source readers start at the
	// end of the retained windows and joins drop rounds at or below the
	// handoff floors, so the replacement monitor continues instead of
	// recounting.
	fromEnd bool
	floors  map[string]uint32

	scope    *escope.Scope
	puller   *escope.Puller
	weighted *WeightedTree
	ingest   *collect.IngestQueue

	feElems map[uint32]*pastset.Element // per collective wrapper, on the front-end
	names   map[uint32]string           // wrapper id -> node name
	fanins  map[uint32]int

	// Distributed-analysis state.
	cs       *cosched.Set
	hosts    []*lbHostAnalysis
	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// lbHostAnalysis is one host's analysis thread state (distributed mode).
type lbHostAnalysis struct {
	host    *vnet.Host
	nodes   []*lbNodeState
	interm  *pastset.Element
	written map[[2]uint32]uint64 // (node, contributor) -> last written count
}

type lbNodeState struct {
	node    *cluster.Node
	join    *lbJoin
	cursors []*pastset.Cursor // per contributor EC buffer
	counts  []uint64          // last-arrival counts per contributor
	dirty   bool
}

// NewLoadBalance builds a load-balance monitor over an instrumented tree.
// cs may be nil (no coscheduling); when set, it must be the same set wired
// into the tree's notifier.
func NewLoadBalance(tb *cluster.Testbed, tree *cluster.Tree, mode LoadBalanceMode, cfg Config, cs *cosched.Set) (*LoadBalance, error) {
	return newLoadBalance(tb, tree, mode, cfg, cs, nil, false)
}

// newLoadBalance is the shared constructor; a non-nil floors map marks a
// failover resume (joins floored per node), and fromEnd additionally
// starts the source readers after the newest retained tuple.
func newLoadBalance(tb *cluster.Testbed, tree *cluster.Tree, mode LoadBalanceMode, cfg Config, cs *cosched.Set, floors map[string]uint32, fromEnd bool) (*LoadBalance, error) {
	if !tree.Spec.Instrument {
		return nil, fmt.Errorf("monitor: load balance needs an instrumented tree")
	}
	lb := &LoadBalance{
		fromEnd:  fromEnd,
		floors:   floors,
		mode:     mode,
		cfg:      cfg,
		tree:     tree,
		fe:       tb.FrontEnd,
		weighted: NewWeightedTree(),
		feElems:  make(map[uint32]*pastset.Element),
		names:    make(map[uint32]string),
		fanins:   make(map[uint32]int),
		cs:       cs,
		stop:     make(chan struct{}),
	}
	for _, n := range tree.Nodes {
		id := n.CollectiveEC.ID()
		lb.names[id] = n.Name
		lb.fanins[id] = n.AR.Fanin()
		elem, err := tb.FrontEnd.Registry.Create(fmt.Sprintf("lb/%s/%s/%s", mode, tree.Name, n.Name), 4096)
		if err != nil {
			return nil, err
		}
		lb.feElems[id] = elem
	}

	var spec escope.Spec
	spec.Name = fmt.Sprintf("lbscope/%s/%s", mode, tree.Name)
	spec.FrontEnd = tb.FrontEnd
	spec.GatewayHelpers = cfg.GatewayHelpers
	spec.RootHelpers = cfg.RootHelpers
	spec.Health = cfg.Health
	spec.Retry = cfg.Retry
	spec.Breaker = cfg.Breaker
	spec.Mode = cfg.ScopeMode
	spec.Metrics = cfg.Metrics

	// The ingest queue decouples the gather thread from the front-end
	// analysis: the puller pushes gathered batches, a drainer applies
	// them, and under overload the oldest batch is shed instead of the
	// event-scope tree stalling. In summary-only mode it folds batches
	// into counters without retaining payloads.
	lb.ingest = collect.NewIngestQueue(cfg.IngestCap)
	lb.ingest.SetMetrics(
		cfg.Metrics.Counter(spec.Name+"/ingest.shed.batches"),
		cfg.Metrics.Counter(spec.Name+"/ingest.shed.tuples"))
	if cfg.ScopeMode == escope.ModeSummary {
		lb.ingest.SetSummaryOnly(true)
	}

	switch mode {
	case SingleScope:
		if err := lb.buildSingleScopeSources(&spec); err != nil {
			return nil, err
		}
	case Distributed:
		if err := lb.buildDistributed(tb, &spec); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("monitor: unknown load-balance mode %d", mode)
	}

	scope, err := escope.Build(tb.Net, spec)
	if err != nil {
		return nil, err
	}
	lb.scope = scope
	return lb, nil
}

// NewLoadBalanceFrom builds a load-balance monitor that continues from a
// dead front-end's archive-replayed state instead of starting empty: the
// weighted tree is seeded from the handoff, the source readers start
// after the newest retained tuple, and each node's join ignores rounds
// the old front-end already completed. Single-scope mode only — the
// distributed monitor's cumulative intermediate records live on the
// compute hosts and survive the front-end on their own, so it needs no
// handoff.
func NewLoadBalanceFrom(tb *cluster.Testbed, tree *cluster.Tree, mode LoadBalanceMode, cfg Config, cs *cosched.Set, resume *LoadBalanceResume) (*LoadBalance, error) {
	if mode != SingleScope {
		return nil, fmt.Errorf("monitor: failover resume supports single-scope mode only (distributed state is host-resident and would be overwritten by the seed)")
	}
	if resume == nil {
		return nil, fmt.Errorf("monitor: nil resume handoff")
	}
	// Checkpointed recovery (ReRead) re-reads the retained windows from
	// the start: the floors block every round the handoff already
	// counted, so the only effect is closing the gather gap between the
	// last archived tuple and the crash.
	lb, err := newLoadBalance(tb, tree, mode, cfg, cs, resume.Floors, !resume.ReRead)
	if err != nil {
		return nil, err
	}
	if resume.Weighted != nil {
		for _, node := range resume.Weighted.Nodes() {
			for c, n := range resume.Weighted.Counts(node) {
				lb.weighted.Add(node, c, n)
			}
		}
	}
	return lb, nil
}

// buildSingleScopeSources creates one source per collective wrapper: a
// reduce wrapper on the node's host that joins the node's contributor
// trace buffers and keeps only each round's last-arrival record.
func (lb *LoadBalance) buildSingleScopeSources(spec *escope.Spec) error {
	for _, n := range lb.tree.Nodes {
		n := n
		id := n.CollectiveEC.ID()
		var readers []*paths.BatchReader
		var chains []paths.Wrapper
		newReader := paths.NewBatchReader
		if lb.fromEnd {
			newReader = paths.NewBatchReaderAtEnd
		}
		for i, ec := range n.ContribECs {
			rd := newReader(
				fmt.Sprintf("lb/rd(%s.c%d)", n.Name, i), n.Host, ec.Buffer(), collect.TupleSize, lb.cfg.readBatch())
			readers = append(readers, rd)
			chains = append(chains, rd)
		}
		gather, err := paths.NewGather("lb/hg("+n.Name+")", n.Host, chains, 0)
		if err != nil {
			return err
		}
		join := newLBJoin(n.AR.Fanin())
		join.floor = lb.floors[n.Name]
		perPort := len(readers)
		cost := lb.cfg.AnalysisCostPerTuple
		host := n.Host
		reduce := paths.NewTransform("lb/reduce("+n.Name+")", n.Host, gather, func(rep paths.Reply) (paths.Reply, error) {
			tuples, err := collect.DecodeAll(rep.Data)
			if err != nil {
				return paths.Reply{}, err
			}
			// The concatenation is in child order: reader i's batch
			// holds contributor i's tuples; contributor identity comes
			// from the tuple's ECID.
			_ = perPort
			var out []byte
			nrec := 0
			for _, tu := range tuples {
				ec, ok := lb.tree.Collectors.ByID(tu.ECID)
				if !ok {
					continue
				}
				if last, done := join.add(ec.Meta().Contributor, tu); done {
					rec := analysis.LastArrivalRecord{Node: id, Contributor: uint16(last), Count: 1}
					out = append(out, rec.Encode()...)
					nrec++
				}
			}
			// The reduce computation costs CPU on the compute host.
			if len(tuples) > 0 && cost > 0 {
				host.Occupy(time.Duration(len(tuples)) * cost)
			}
			return paths.Reply{Data: out, Ret: int16(nrec)}, nil
		})
		spec.Sources = append(spec.Sources, escope.Source{
			Host: n.Host, Custom: reduce, Readers: readers,
		})
	}
	return nil
}

// buildDistributed creates per-host analysis state and sources over the
// hosts' intermediate-result buffers.
func (lb *LoadBalance) buildDistributed(tb *cluster.Testbed, spec *escope.Spec) error {
	byHost := make(map[*vnet.Host]*lbHostAnalysis)
	var order []*vnet.Host
	for _, n := range lb.tree.Nodes {
		ha, ok := byHost[n.Host]
		if !ok {
			interm, err := n.Host.Registry.Create(
				fmt.Sprintf("lbint/%s/%s", lb.tree.Name, n.Host.Name()), lb.cfg.intermediateCap())
			if err != nil {
				return err
			}
			ha = &lbHostAnalysis{host: n.Host, interm: interm, written: make(map[[2]uint32]uint64)}
			byHost[n.Host] = ha
			order = append(order, n.Host)
		}
		st := &lbNodeState{
			node:   n,
			join:   newLBJoin(n.AR.Fanin()),
			counts: make([]uint64, n.AR.Fanin()),
		}
		for _, ec := range n.ContribECs {
			st.cursors = append(st.cursors, ec.Buffer().NewCursor())
		}
		ha.nodes = append(ha.nodes, st)
	}
	for _, h := range order {
		ha := byHost[h]
		lb.hosts = append(lb.hosts, ha)
		spec.Sources = append(spec.Sources, escope.Source{
			Host: h, Elem: ha.interm, RecSize: analysis.LastArrivalRecordSize,
			BatchCap: lb.cfg.readBatch(),
		})
	}
	return nil
}

// analysisLoop is one host's distributed analysis thread.
func (lb *LoadBalance) analysisLoop(ha *lbHostAnalysis) {
	defer lb.wg.Done()
	var waiter *cosched.Waiter
	if lb.cs != nil {
		waiter = lb.cs.For(ha.host).NewWaiter()
	}
	var batch []pastset.Tuple
	for {
		select {
		case <-lb.stop:
			return
		default:
		}
		if waiter != nil && !waiter.Await() {
			return
		}
		processed := 0
		for _, st := range ha.nodes {
			for i, cur := range st.cursors {
				batch = cur.DrainInto(batch[:0])
				for _, raw := range batch {
					tu, err := collect.Decode(raw.Data)
					if err != nil {
						continue
					}
					if last, done := st.join.add(i, tu); done {
						st.counts[last]++
						st.dirty = true
					}
					processed++
				}
			}
		}
		if processed > 0 && lb.cfg.AnalysisCostPerTuple > 0 {
			ha.host.Occupy(time.Duration(processed) * lb.cfg.AnalysisCostPerTuple)
		}
		if processed == 0 {
			// The paper's analysis threads block in PastSet reads when
			// a trace buffer is empty; back off so an idle analysis
			// thread does not busy-spin.
			hrtime.SleepUnscaled(50 * time.Microsecond)
		}
		// Write cumulative intermediate results for nodes that changed.
		for _, st := range ha.nodes {
			if !st.dirty {
				continue
			}
			st.dirty = false
			id := st.node.CollectiveEC.ID()
			for c, cnt := range st.counts {
				key := [2]uint32{id, uint32(c)}
				if ha.written[key] == cnt {
					continue
				}
				ha.written[key] = cnt
				rec := analysis.LastArrivalRecord{Node: id, Contributor: uint16(c), Count: cnt}
				if _, err := ha.interm.Write(rec.Encode()); err != nil {
					return
				}
			}
		}
		if lb.cfg.AnalysisInterval > 0 {
			hrtime.Sleep(lb.cfg.AnalysisInterval)
		}
	}
}

// Start launches the monitor's threads: the per-host analysis threads (in
// distributed mode), the front-end gather thread, and the updater applying
// gathered records to the weighted tree.
func (lb *LoadBalance) Start() {
	if lb.mode == Distributed {
		for _, ha := range lb.hosts {
			ha := ha
			lb.wg.Add(1)
			vclock.Go(func() { lb.analysisLoop(ha) })
		}
	}
	scatter, _ := paths.NewScatter("lb/scatter", lb.fe, analysis.LastArrivalRecordSize,
		func(rec []byte) (*pastset.Element, error) {
			r, err := analysis.DecodeLastArrivalRecord(rec)
			if err != nil {
				return nil, err
			}
			return lb.feElems[r.Node], nil // unknown nodes filtered (nil)
		})
	// The gather thread only enqueues; applying records to the front-end
	// buffers happens on the drainer thread below. Push never blocks and
	// never fails, so a slow front-end analysis can no longer stall the
	// event-scope tree — it sheds the oldest undigested batch instead.
	lb.puller = lb.scope.StartPuller(lb.cfg.PullInterval, func(rep paths.Reply) error {
		lb.ingest.Push(rep.Data)
		return nil
	})
	lb.wg.Add(1)
	vclock.Go(func() {
		defer lb.wg.Done()
		for {
			data, ok := lb.ingest.Pop()
			if !ok {
				select {
				case <-lb.stop:
					// Stop halts the puller before closing lb.stop, so
					// an empty queue here is final: everything gathered
					// was applied.
					return
				default:
				}
				hrtime.SleepUnscaled(50 * time.Microsecond)
				continue
			}
			// Scatter filters unknown records itself; a decode error in
			// one batch must not kill the drainer.
			_, _ = scatter.Op(nil, paths.Request{Kind: paths.OpWrite, Data: data})
		}
	})
	// Updater thread: reads the front-end buffers and maintains the
	// weighted tree used by visualizations.
	cursors := make(map[uint32]*pastset.Cursor, len(lb.feElems))
	for id, e := range lb.feElems {
		cursors[id] = e.NewCursor()
	}
	lb.wg.Add(1)
	vclock.Go(func() {
		defer lb.wg.Done()
		var batch []pastset.Tuple
		for {
			idle := true
			for id, cur := range cursors {
				batch = cur.DrainInto(batch[:0])
				for _, raw := range batch {
					r, err := analysis.DecodeLastArrivalRecord(raw.Data)
					if err != nil {
						continue
					}
					idle = false
					name := lb.names[id]
					if lb.mode == Distributed {
						// Cumulative counts: newest state wins.
						lb.weighted.Set(name, int(r.Contributor), r.Count)
					} else {
						lb.weighted.Add(name, int(r.Contributor), r.Count)
					}
				}
			}
			select {
			case <-lb.stop:
				if idle {
					return
				}
			default:
			}
			if idle {
				hrtime.SleepUnscaled(100 * time.Microsecond)
			}
		}
	})
}

// Stop halts all monitor threads. It is idempotent and safe to call
// from multiple goroutines: the previous boolean guard raced (both
// callers observe false, both close — the Puller.Stop bug class,
// flagged by the closeonce analyzer), so teardown runs under a
// sync.Once and late callers block until the first finishes.
func (lb *LoadBalance) Stop() {
	lb.stopOnce.Do(func() {
		if lb.cs != nil {
			lb.cs.CloseAll()
		}
		// The puller stops before lb.stop closes so the ingest drainer
		// can treat empty-queue-and-stopped as "fully drained" — no
		// gathered batch is lost at a clean shutdown.
		if lb.puller != nil {
			lb.puller.Stop()
		}
		close(lb.stop)
		lb.wg.Wait()
		lb.scope.Close()
		// The front-end analysis buffers die with the monitor: a
		// replacement built after a failover re-creates them under the
		// same names (the host registry models front-end memory, and the
		// paper's front-end state is not persistent).
		for _, e := range lb.feElems {
			_ = lb.fe.Registry.Remove(e.Name())
		}
		for _, ha := range lb.hosts {
			_ = ha.host.Registry.Remove(ha.interm.Name())
		}
	})
}

// Weighted returns the front-end weighted tree.
func (lb *LoadBalance) Weighted() *WeightedTree { return lb.weighted }

// Scope exposes the monitor's event scope, for runtime tree repair
// (reconfig) and topology inspection.
func (lb *LoadBalance) Scope() *escope.Scope { return lb.scope }

// Mode returns the monitor's mode.
func (lb *LoadBalance) Mode() LoadBalanceMode { return lb.mode }

// GatherRate reports the fraction of source tuples the monitor's event
// scope read before they were discarded: raw trace tuples in single-scope
// mode, intermediate result tuples in distributed mode (Tables 1 and 2).
func (lb *LoadBalance) GatherRate() float64 { return lb.scope.GatherRate() }

// TraceReadRate reports, in distributed mode, the fraction of trace
// tuples the analysis threads read before discard.
func (lb *LoadBalance) TraceReadRate() float64 {
	if lb.mode == SingleScope {
		return lb.scope.GatherRate()
	}
	var read, skipped uint64
	for _, ha := range lb.hosts {
		for _, st := range ha.nodes {
			for _, cur := range st.cursors {
				read += cur.Read()
				skipped += cur.Skipped()
			}
		}
	}
	if read+skipped == 0 {
		return 1
	}
	return float64(read) / float64(read+skipped)
}

// RoundsObserved returns the number of last-arrival observations applied
// to the weighted tree (single-scope mode) — a liveness measure.
func (lb *LoadBalance) RoundsObserved() uint64 { return lb.weighted.Total() }

// Coverage annotates the monitor's view with who it is hearing from:
// source hosts reporting vs expected and the age of the oldest
// successful gather. With no HealthPolicy configured, coverage is always
// complete by construction (a fault fails the pull instead).
func (lb *LoadBalance) Coverage() escope.Coverage { return lb.scope.Coverage() }

// ChildHealth snapshots the health guards of the monitor's event scope.
func (lb *LoadBalance) ChildHealth() []escope.ChildHealth { return lb.scope.Health() }

// SetScopeMode moves the monitor along the degradation ladder: the event
// scope's breakers observe the new rung on their next decision, and
// summary-only additionally sheds gathered payloads at the ingest queue,
// keeping only aggregate counts. Every change is logged by the scope and
// delivered to the mode hook (see SetScopeModeHook).
func (lb *LoadBalance) SetScopeMode(m escope.Mode) {
	lb.scope.SetMode(m)
	lb.ingest.SetSummaryOnly(m == escope.ModeSummary)
}

// ScopeMode returns the current degradation-ladder rung.
func (lb *LoadBalance) ScopeMode() escope.Mode { return lb.scope.Mode() }

// ScopeModeLog returns every mode transition so far, in order.
func (lb *LoadBalance) ScopeModeLog() []escope.ModeChange { return lb.scope.ModeLog() }

// SetScopeModeHook installs the function receiving every mode
// transition (past transitions are replayed into it on install). The
// archive recorder uses it to persist mode changes as control tuples.
func (lb *LoadBalance) SetScopeModeHook(fn func(escope.ModeChange)) { lb.scope.SetModeHook(fn) }

// IngestStats snapshots the monitor's ingest-queue accounting (shed and
// summarized batches under overload).
func (lb *LoadBalance) IngestStats() collect.IngestStats { return lb.ingest.Stats() }

// Breakers snapshots the straggler circuit breakers of the monitor's
// event scope (empty without a Config.Breaker policy).
func (lb *LoadBalance) Breakers() []escope.BreakerHealth { return lb.scope.Breakers() }
