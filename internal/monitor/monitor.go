// Package monitor implements the paper's two monitors (section 4.3): the
// load-balance monitor — in both its single-event-scope and distributed-
// analysis forms (figure 3) — and the statistics monitor statsm
// (figure 4), including the coscheduling of analysis threads with the
// monitored application's computation and communication threads.
package monitor

import (
	"sync"
	"time"

	"eventspace/internal/analysis"
	"eventspace/internal/cosched"
	"eventspace/internal/escope"
	"eventspace/internal/metrics"
	"eventspace/internal/paths"
)

// Config holds the knobs shared by the monitors.
type Config struct {
	// GatewayHelpers / RootHelpers configure parallel gathering in the
	// monitor's event scopes (0 = sequential): the paper's
	// "sequential" vs "parallel" rows.
	GatewayHelpers int
	RootHelpers    int
	// PullInterval is the gather thread's pacing (modelled time;
	// 0 pulls continuously).
	PullInterval time.Duration
	// AnalysisCostPerTuple is the modelled CPU occupancy an analysis
	// thread charges its host per trace tuple processed, standing in
	// for the statistics computation cost on the paper's hosts.
	AnalysisCostPerTuple time.Duration
	// AnalysisInterval paces distributed analysis threads between
	// batches (modelled time).
	AnalysisInterval time.Duration
	// Strategy coschedules analysis threads with the application
	// (statsm experiments; cosched.None reproduces the 5-9% rows).
	Strategy cosched.Strategy
	// IntermediateCap sizes intermediate-result buffers (the paper uses
	// one megabyte: 5000 tuples).
	IntermediateCap int
	// ThreadsPerHost runs this many analysis threads on each host
	// (section 6.3.1 tries two); 0 means one.
	ThreadsPerHost int
	// TCPStatsAt selects where TCP/IP connection statistics are
	// computed (statsm); TCPStatsOff disables them.
	TCPStatsAt TCPStatsPlacement
	// MedianWindow sizes the NWS sliding-window median (default 100).
	MedianWindow int
	// ReadBatch bounds how many records one event-scope read returns per
	// source buffer (default 1, matching PastSet's one-tuple-per-read
	// operation — the property that makes sequential gathering too slow
	// in Tables 1-3). 0 keeps the default; negative drains fully.
	ReadBatch int
	// Health, when set, makes the monitor's event scopes degrade to
	// partial coverage on transport faults instead of failing the pull:
	// dead children are skipped and probed with backoff, and Coverage()
	// reports hosts reporting vs expected. nil keeps fail-fast scopes.
	Health *escope.HealthPolicy
	// Retry, when set, is applied to every remote stub in the monitor's
	// event scopes (transient faults are retried with backoff and a
	// reconnect path before the health guard counts them).
	Retry *paths.RetryPolicy
	// Breaker, when set (requires Health), wraps every health guard in a
	// straggler circuit breaker: outside escope.ModeStrict each gather
	// round's wait on a child is bounded by the policy's round deadline
	// and slow children are skipped and served stale within the
	// staleness bound. nil keeps unbounded gathers.
	Breaker *escope.BreakerPolicy
	// ScopeMode is the monitor scope's initial degradation-ladder rung
	// (escope.ModeStrict when unset). Move it at runtime with the
	// monitor's SetScopeMode.
	ScopeMode escope.Mode
	// IngestCap bounds the monitor's ingest queue, in gathered batches
	// (0: collect.DefaultIngestCap). When analysis falls behind the
	// gather thread, the oldest undigested batch is shed instead of
	// stalling the event-scope tree.
	IngestCap int
	// Metrics, when set, wires the monitor's event scopes and stubs into
	// the self-metrics registry ("monitor the monitor"). nil disables.
	Metrics *metrics.Registry
}

// TCPStatsPlacement selects the host that computes a connection's
// statistics (section 6.3.1: moving the computation from the source to the
// destination host changed statsm's overhead).
type TCPStatsPlacement int

// TCP statistics placements. The path direction runs from the thread to
// the PastSet buffer, so the stub side is the source and the
// communication-thread side the destination.
const (
	TCPStatsOff TCPStatsPlacement = iota
	TCPStatsAtSource
	TCPStatsAtDestination
)

// DefaultConfig returns the configuration the paper converged on:
// parallel gathering, coscheduling strategy 2, TCP statistics at the
// destination, one analysis thread per host.
func DefaultConfig() Config {
	return Config{
		GatewayHelpers:       4,
		RootHelpers:          4,
		AnalysisCostPerTuple: 6 * time.Microsecond,
		Strategy:             cosched.AfterUnblock,
		IntermediateCap:      5000,
		TCPStatsAt:           TCPStatsAtDestination,
	}
}

func (c *Config) intermediateCap() int {
	if c.IntermediateCap <= 0 {
		return 5000
	}
	return c.IntermediateCap
}

func (c *Config) readBatch() int {
	switch {
	case c.ReadBatch == 0:
		return 1
	case c.ReadBatch < 0:
		return 0 // drain fully
	default:
		return c.ReadBatch
	}
}

func (c *Config) analysisThreads() int {
	if c.ThreadsPerHost <= 0 {
		return 1
	}
	return c.ThreadsPerHost
}

// WeightedTree is the front-end structure the load-balance monitor
// maintains: for every collective wrapper, how many times each contributor
// arrived last. Visualizations weight the spanning-tree edges with it.
type WeightedTree struct {
	mu    sync.RWMutex
	nodes map[string]map[int]uint64 // node name -> contributor -> last-arrival count
}

// NewWeightedTree returns an empty weighted tree.
func NewWeightedTree() *WeightedTree {
	return &WeightedTree{nodes: make(map[string]map[int]uint64)}
}

// Add folds last-arrival counts for a node's contributor.
func (w *WeightedTree) Add(node string, contributor int, n uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m, ok := w.nodes[node]
	if !ok {
		m = make(map[int]uint64)
		w.nodes[node] = m
	}
	m[contributor] += n
}

// Set overwrites the count (used with cumulative intermediate results,
// where only the newest state matters).
func (w *WeightedTree) Set(node string, contributor int, n uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m, ok := w.nodes[node]
	if !ok {
		m = make(map[int]uint64)
		w.nodes[node] = m
	}
	m[contributor] = n
}

// Count returns a node contributor's last-arrival count.
func (w *WeightedTree) Count(node string, contributor int) uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.nodes[node][contributor]
}

// Nodes returns the node names present.
func (w *WeightedTree) Nodes() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.nodes))
	for n := range w.nodes {
		out = append(out, n)
	}
	return out
}

// Counts returns a copy of one node's contributor counts.
func (w *WeightedTree) Counts(node string) map[int]uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make(map[int]uint64, len(w.nodes[node]))
	for k, v := range w.nodes[node] {
		out[k] = v
	}
	return out
}

// Total returns the sum of all counts (≈ observed rounds across nodes).
func (w *WeightedTree) Total() uint64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var n uint64
	for _, m := range w.nodes {
		for _, v := range m {
			n += v
		}
	}
	return n
}

// AnalysisTree is the front-end structure statsm's updater maintains: the
// newest statistics record per (wrapper id, latency kind). Visualization
// threads read it.
type AnalysisTree struct {
	mu      sync.RWMutex
	records map[uint32]map[uint8]analysis.StatsRecord
	updates uint64
}

// NewAnalysisTree returns an empty analysis tree.
func NewAnalysisTree() *AnalysisTree {
	return &AnalysisTree{records: make(map[uint32]map[uint8]analysis.StatsRecord)}
}

// Update installs a newer record.
func (a *AnalysisTree) Update(r analysis.StatsRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.records[r.ID]
	if !ok {
		m = make(map[uint8]analysis.StatsRecord)
		a.records[r.ID] = m
	}
	m[r.Kind] = r
	a.updates++
}

// Get returns the newest record for (id, kind).
func (a *AnalysisTree) Get(id uint32, kind int) (analysis.StatsRecord, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	r, ok := a.records[id][uint8(kind)]
	return r, ok
}

// IDs returns the wrapper ids present.
func (a *AnalysisTree) IDs() []uint32 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]uint32, 0, len(a.records))
	for id := range a.records {
		out = append(out, id)
	}
	return out
}

// Updates counts record installations (monotone; used to check liveness).
func (a *AnalysisTree) Updates() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.updates
}
