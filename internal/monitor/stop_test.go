package monitor

// Regression tests for the Stop double-close bug class (the closeonce
// analyzer's first real catches): Statsm.Stop and LoadBalance.Stop
// guarded teardown with a plain boolean, so two goroutines racing into
// Stop could both observe stopped == false and both close the stop
// channel — the same shape as PR 2's Puller.Stop panic. Teardown now
// runs under a sync.Once; these tests hammer Stop concurrently (run
// them with -race) and then call it again serially to prove
// idempotence.

import (
	"sync"
	"testing"

	"eventspace/internal/cosched"
)

// stopConcurrently invokes stop from many goroutines released by one
// starting gun, maximizing the double-close window.
func stopConcurrently(t *testing.T, stop func()) {
	t.Helper()
	const goroutines = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("concurrent Stop panicked: %v", r)
				}
			}()
			stop()
		}()
	}
	close(start)
	wg.Wait()
}

func TestStatsmConcurrentStop(t *testing.T) {
	fastScale(t)
	tb, tree := buildRig(t, nil)
	cfg := DefaultConfig()
	cfg.AnalysisCostPerTuple = 0
	cfg.Strategy = cosched.None
	sm, err := NewStatsm(tb, tree, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sm.Start()
	stopConcurrently(t, sm.Stop)
	sm.Stop() // late serial Stop stays a no-op
}

func TestLoadBalanceConcurrentStop(t *testing.T) {
	fastScale(t)
	tb, tree := buildRig(t, nil)
	cfg := DefaultConfig()
	cfg.AnalysisCostPerTuple = 0
	lb, err := NewLoadBalance(tb, tree, SingleScope, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	stopConcurrently(t, lb.Stop)
	lb.Stop()
}

func TestLoadBalanceDistributedConcurrentStop(t *testing.T) {
	fastScale(t)
	tb, tree := buildRig(t, nil)
	cfg := DefaultConfig()
	cfg.AnalysisCostPerTuple = 0
	lb, err := NewLoadBalance(tb, tree, Distributed, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	stopConcurrently(t, lb.Stop)
	lb.Stop()
}
