// Snapshot/restore for the replay shadows. The recovery checkpointer
// keeps a LastArrivalReplay and a StatsReplay fed with every tuple the
// archive persists; checkpointing snapshots them with these types, and
// recovery restores them and replays only the archive suffix written
// after the checkpoint. The equivalence contract matches
// analysis/state.go: a restored shadow fed the remaining tuples ends in
// exactly the state a full replay of the whole archive produces.
package monitor

import (
	"fmt"
	"sort"

	"eventspace/internal/analysis"
	"eventspace/internal/collect"
)

// LBJoinRoundState is one partial load-balance round.
type LBJoinRoundState struct {
	Seq      uint32
	Contribs []analysis.ContribState // sorted by contributor id
}

// LBJoinState is one node's last-arrival join state.
type LBJoinState struct {
	K          int
	MaxPending int
	Lost       uint64
	Floor      uint32
	MaxDone    uint32
	Pending    []LBJoinRoundState // live rounds in insertion order
}

// state snapshots the join, compressing stale insertion-order entries.
func (j *lbJoin) state() LBJoinState {
	st := LBJoinState{K: j.k, MaxPending: j.maxPending, Lost: j.lost, Floor: j.floor, MaxDone: j.maxDone}
	taken := make(map[uint32]bool, len(j.pending))
	for _, seq := range j.order {
		m, ok := j.pending[seq]
		if !ok || taken[seq] {
			continue
		}
		taken[seq] = true
		rs := LBJoinRoundState{Seq: seq}
		ids := make([]int, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			rs.Contribs = append(rs.Contribs, analysis.ContribState{ID: int32(id), Tuple: m[id]})
		}
		st.Pending = append(st.Pending, rs)
	}
	return st
}

// restore overwrites the join with the snapshotted state.
func (j *lbJoin) restore(st LBJoinState) error {
	if st.K != j.k {
		return fmt.Errorf("monitor: join state k=%d, join has k=%d", st.K, j.k)
	}
	if st.MaxPending >= 1 {
		j.maxPending = st.MaxPending
	}
	j.lost = st.Lost
	j.floor = st.Floor
	j.maxDone = st.MaxDone
	j.pending = make(map[uint32]map[int]collect.TraceTuple, len(st.Pending))
	j.order = j.order[:0]
	for _, rs := range st.Pending {
		if len(rs.Contribs) > j.k {
			return fmt.Errorf("monitor: join state round %d holds %d contributors, k=%d", rs.Seq, len(rs.Contribs), j.k)
		}
		m := make(map[int]collect.TraceTuple, j.k)
		for _, c := range rs.Contribs {
			m[int(c.ID)] = c.Tuple
		}
		j.pending[rs.Seq] = m
		j.order = append(j.order, rs.Seq)
	}
	return nil
}

// WeightedCount is one (node, contributor) cell of a weighted tree.
type WeightedCount struct {
	Node        string
	Contributor int32
	Count       uint64
}

// weightedCounts flattens a tree into sorted cells, the canonical form
// checkpoints encode.
func weightedCounts(w *WeightedTree) []WeightedCount {
	var out []WeightedCount
	for _, node := range w.Nodes() {
		counts := w.Counts(node)
		ids := make([]int, 0, len(counts))
		for c := range counts {
			ids = append(ids, c)
		}
		sort.Ints(ids)
		for _, c := range ids {
			out = append(out, WeightedCount{Node: node, Contributor: int32(c), Count: counts[c]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Contributor < out[j].Contributor
	})
	return out
}

// NamedLBJoinState pairs a node name with its join state.
type NamedLBJoinState struct {
	Node string
	Join LBJoinState
}

// LastArrivalState is a LastArrivalReplay's portable snapshot. The port
// map is not stored — it derives from the archived collector metadata
// and must be supplied again at restore; a mismatch fails the restore
// so recovery falls back to full replay instead of joining wrongly.
type LastArrivalState struct {
	Fed      uint64
	Matched  uint64
	Weighted []WeightedCount
	Joins    []NamedLBJoinState // sorted by node name
}

// State snapshots the replay.
func (r *LastArrivalReplay) State() LastArrivalState {
	st := LastArrivalState{Fed: r.fed, Matched: r.matched, Weighted: weightedCounts(r.weighted)}
	names := make([]string, 0, len(r.joins))
	for name := range r.joins {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st.Joins = append(st.Joins, NamedLBJoinState{Node: name, Join: r.joins[name].state()})
	}
	return st
}

// NewLastArrivalReplayFrom rebuilds a replay from ports and a snapshot.
// The snapshot's join set must match the ports' node set exactly.
func NewLastArrivalReplayFrom(ports map[uint32]ReplayPort, st LastArrivalState) (*LastArrivalReplay, error) {
	r, err := NewLastArrivalReplay(ports)
	if err != nil {
		return nil, err
	}
	if len(st.Joins) != len(r.joins) {
		return nil, fmt.Errorf("monitor: replay state has %d joins, ports define %d nodes", len(st.Joins), len(r.joins))
	}
	for _, nj := range st.Joins {
		j, ok := r.joins[nj.Node]
		if !ok {
			return nil, fmt.Errorf("monitor: replay state join %q matches no port node", nj.Node)
		}
		if err := j.restore(nj.Join); err != nil {
			return nil, err
		}
	}
	for _, wc := range st.Weighted {
		r.weighted.Add(wc.Node, int(wc.Contributor), wc.Count)
	}
	r.fed, r.matched = st.Fed, st.Matched
	return r, nil
}

// StatsNodeState is one node's statistics-replay state.
type StatsNodeState struct {
	NodeID  uint32
	Rounds  uint64
	Joiner  analysis.JoinerState
	Down    analysis.StreamState
	Up      analysis.StreamState
	Total   analysis.StreamState
	ArrWait analysis.StreamState
	DepWait analysis.StreamState
}

// StatsState is a StatsReplay's portable snapshot.
type StatsState struct {
	Window  int
	Fed     uint64
	Matched uint64
	Nodes   []StatsNodeState // sorted by NodeID
}

// State snapshots the replay.
func (r *StatsReplay) State() StatsState {
	st := StatsState{Window: r.window, Fed: r.fed, Matched: r.matched}
	ids := make([]uint32, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := r.nodes[id]
		st.Nodes = append(st.Nodes, StatsNodeState{
			NodeID: id, Rounds: n.rounds, Joiner: n.joiner.State(),
			Down: n.down.State(), Up: n.up.State(), Total: n.total.State(),
			ArrWait: n.arrWait.State(), DepWait: n.depWait.State(),
		})
	}
	return st
}

// NewStatsReplayFrom rebuilds a statistics replay from ports and a
// snapshot. The snapshot's node set must match the ports' exactly.
func NewStatsReplayFrom(ports map[uint32]ReplayStatsPort, st StatsState) (*StatsReplay, error) {
	r, err := NewStatsReplay(ports, st.Window)
	if err != nil {
		return nil, err
	}
	if len(st.Nodes) != len(r.nodes) {
		return nil, fmt.Errorf("monitor: stats state has %d nodes, ports define %d", len(st.Nodes), len(r.nodes))
	}
	for i := range st.Nodes {
		ns := &st.Nodes[i]
		n, ok := r.nodes[ns.NodeID]
		if !ok {
			return nil, fmt.Errorf("monitor: stats state node %d matches no port", ns.NodeID)
		}
		n.rounds = ns.Rounds
		// The joiner keeps its original emit closure — it dereferences
		// the node's stream fields at call time, so replacing the
		// streams below stays visible to it.
		if err := n.joiner.Restore(ns.Joiner); err != nil {
			return nil, err
		}
		for _, s := range []struct {
			dst **analysis.Stream
			st  analysis.StreamState
		}{
			{&n.down, ns.Down}, {&n.up, ns.Up}, {&n.total, ns.Total},
			{&n.arrWait, ns.ArrWait}, {&n.depWait, ns.DepWait},
		} {
			str, err := analysis.NewStreamFrom(s.st)
			if err != nil {
				return nil, err
			}
			*s.dst = str
		}
	}
	r.fed, r.matched = st.Fed, st.Matched
	return r, nil
}
