package monitor

//lint:file-allow wallclock the waitFor harness polls real monitors against wall-clock deadlines

import (
	"sync"
	"testing"
	"time"

	"eventspace/internal/analysis"
	"eventspace/internal/cluster"
	"eventspace/internal/collect"
	"eventspace/internal/cosched"
	"eventspace/internal/hrtime"
	"eventspace/internal/paths"
	"eventspace/internal/vnet"
)

func fastScale(t *testing.T) {
	t.Helper()
	old := hrtime.Scale()
	hrtime.SetScale(0.01)
	t.Cleanup(func() { hrtime.SetScale(old) })
}

// buildRig creates a 3-host Tin testbed with an instrumented tree, wiring
// the given cosched set (may be nil).
func buildRig(t *testing.T, cs *cosched.Set) (*cluster.Testbed, *cluster.Tree) {
	t.Helper()
	tb, err := cluster.NewTestbed(cluster.SingleTin(3))
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.TreeSpec{Name: "T", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 512}
	if cs != nil {
		spec.Notifier = func(h *vnet.Host) paths.CollectiveNotifier { return cs.For(h) }
	}
	tree, err := cluster.BuildTree(tb, spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	return tb, tree
}

// runApp drives the tree's thread ports for rounds iterations; slowPort
// (if >= 0) sleeps before contributing, inducing a load imbalance.
func runApp(t *testing.T, tree *cluster.Tree, rounds, slowPort int, delay time.Duration) {
	t.Helper()
	var wg sync.WaitGroup
	for i, p := range tree.Ports {
		wg.Add(1)
		go func(i int, p cluster.ThreadPort) {
			defer wg.Done()
			ctx := &paths.Ctx{Thread: p.Name}
			for r := 0; r < rounds; r++ {
				if i == slowPort {
					hrtime.Sleep(delay)
				}
				if _, err := p.Entry.Op(ctx, paths.Request{Kind: paths.OpWrite, Value: 1}); err != nil {
					t.Errorf("port %s: %v", p.Name, err)
					return
				}
			}
		}(i, p)
	}
	wg.Wait()
}

func TestLBJoinFindsLastArrival(t *testing.T) {
	j := newLBJoin(3)
	if _, done := j.add(0, collect.TraceTuple{Seq: 0, Start: 10}); done {
		t.Fatal("done with 1/3")
	}
	if _, done := j.add(1, collect.TraceTuple{Seq: 0, Start: 30}); done {
		t.Fatal("done with 2/3")
	}
	last, done := j.add(2, collect.TraceTuple{Seq: 0, Start: 20})
	if !done || last != 1 {
		t.Fatalf("last = %d done = %v", last, done)
	}
	// Tie: higher contributor wins deterministically.
	j.add(0, collect.TraceTuple{Seq: 1, Start: 5})
	j.add(1, collect.TraceTuple{Seq: 1, Start: 5})
	last, done = j.add(2, collect.TraceTuple{Seq: 1, Start: 5})
	if !done || last != 2 {
		t.Fatalf("tie last = %d", last)
	}
}

func TestLBJoinEvicts(t *testing.T) {
	j := newLBJoin(2)
	j.maxPending = 4
	for seq := uint32(0); seq < 20; seq++ {
		j.add(0, collect.TraceTuple{Seq: seq})
	}
	if len(j.pending) > 4 {
		t.Fatalf("pending = %d", len(j.pending))
	}
	if j.lost != 16 {
		t.Fatalf("lost = %d", j.lost)
	}
}

func TestLoadBalanceRejectsUninstrumented(t *testing.T) {
	fastScale(t)
	tb, _ := cluster.NewTestbed(cluster.SingleTin(2))
	tree, err := cluster.BuildTree(tb, cluster.TreeSpec{Name: "U", ThreadsPerHost: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if _, err := NewLoadBalance(tb, tree, SingleScope, DefaultConfig(), nil); err == nil {
		t.Fatal("uninstrumented tree accepted")
	}
	if _, err := NewStatsm(tb, tree, DefaultConfig(), nil); err == nil {
		t.Fatal("statsm accepted uninstrumented tree")
	}
}

func TestModeString(t *testing.T) {
	if SingleScope.String() != "single-scope" || Distributed.String() != "distributed" {
		t.Fatal("mode names wrong")
	}
}

// waitFor polls until cond or the deadline.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestLoadBalanceSingleScopeFindsImbalance(t *testing.T) {
	fastScale(t)
	tb, tree := buildRig(t, nil)
	cfg := DefaultConfig()
	cfg.AnalysisCostPerTuple = 0
	cfg.PullInterval = 5 * time.Millisecond
	lb, err := NewLoadBalance(tb, tree, SingleScope, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	const rounds = 60
	// Port 0 is the root host's thread: make it the straggler at the
	// root node.
	runApp(t, tree, rounds, 0, 10*time.Millisecond)
	// Everything was produced; let the monitor drain. Timestamps at the
	// shrunken test time-scale are noisy, so require a majority, not
	// unanimity.
	waitFor(t, 10*time.Second, func() bool {
		root := tree.Nodes[0]
		return lb.Weighted().Count(root.Name, 0) >= rounds/2
	}, "single-scope monitor did not attribute last arrivals to the slow thread")
	lb.Stop()
	lb.Stop() // idempotent
	if lb.Mode() != SingleScope {
		t.Fatal("mode accessor wrong")
	}
	root := tree.Nodes[0]
	counts := lb.Weighted().Counts(root.Name)
	if counts[0] <= counts[1] || counts[0] <= counts[2] {
		t.Fatalf("slow thread not dominant: %v", counts)
	}
	if lb.RoundsObserved() == 0 {
		t.Fatal("no rounds observed")
	}
	if rate := lb.GatherRate(); rate <= 0 || rate > 1 {
		t.Fatalf("gather rate = %v", rate)
	}
}

func TestLoadBalanceDistributedTracksCumulativeState(t *testing.T) {
	fastScale(t)
	tb, tree := buildRig(t, nil)
	cfg := DefaultConfig()
	cfg.AnalysisCostPerTuple = 0
	cfg.PullInterval = 5 * time.Millisecond
	cfg.AnalysisInterval = 2 * time.Millisecond
	lb, err := NewLoadBalance(tb, tree, Distributed, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	const rounds = 60
	runApp(t, tree, rounds, 0, 10*time.Millisecond)
	root := tree.Nodes[0]
	waitFor(t, 10*time.Second, func() bool {
		return lb.Weighted().Count(root.Name, 0) >= rounds/2
	}, "distributed monitor did not reach the expected last-arrival count")
	lb.Stop()
	counts := lb.Weighted().Counts(root.Name)
	var total uint64
	for _, v := range counts {
		total += v
	}
	// Cumulative semantics: counts across contributors sum to at most
	// the number of rounds (every round has exactly one last arriver).
	if total > rounds {
		t.Fatalf("total last arrivals %d > rounds %d", total, rounds)
	}
	if r := lb.TraceReadRate(); r <= 0 || r > 1 {
		t.Fatalf("trace read rate = %v", r)
	}
	if r := lb.GatherRate(); r <= 0 || r > 1 {
		t.Fatalf("gather rate = %v", r)
	}
}

func TestStatsmComputesWrapperAndThreadStats(t *testing.T) {
	if testing.Short() {
		t.Skip("full statsm pipeline takes several seconds")
	}
	fastScale(t)
	tb, tree := buildRig(t, nil)
	cfg := DefaultConfig()
	cfg.AnalysisCostPerTuple = 0
	cfg.Strategy = cosched.None
	sm, err := NewStatsm(tb, tree, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sm.Start()
	const rounds = 50
	runApp(t, tree, rounds, 1, 2*time.Millisecond)
	waitFor(t, 10*time.Second, func() bool {
		return sm.RoundsAnalyzed() >= uint64(rounds*len(tree.Nodes)*8/10)
	}, "statsm analyzed too few rounds")
	root := tree.Nodes[0]
	rootID := root.CollectiveEC.ID()
	waitFor(t, 10*time.Second, func() bool {
		_, ok := sm.Tree().Get(rootID, analysis.KindTotal)
		return ok
	}, "no total-latency record reached the front-end")
	sm.Stop()
	sm.Stop() // idempotent

	for _, kind := range []int{analysis.KindDown, analysis.KindUp, analysis.KindTotal, analysis.KindArrivalWait, analysis.KindDepartureWait} {
		rec, ok := sm.Tree().Get(rootID, kind)
		if !ok {
			t.Fatalf("no %s record for root", analysis.KindName(kind))
		}
		if rec.Count == 0 {
			t.Fatalf("%s record has zero samples", analysis.KindName(kind))
		}
	}
	// Total latency must be positive and >= up/down in the mean.
	tot, _ := sm.Tree().Get(rootID, analysis.KindTotal)
	if tot.Mean <= 0 {
		t.Fatalf("total mean = %v", tot.Mean)
	}
	// Per-thread records exist for the root's first contributor.
	c0 := root.ContribECs[0].ID()
	if _, ok := sm.Tree().Get(c0, analysis.KindArrivalWait); !ok {
		t.Fatal("no per-thread arrival-wait record")
	}
	// TCP statistics were computed at the destination host.
	if sm.TCPSamples() == 0 {
		t.Fatal("no TCP latency samples")
	}
	linkID := tree.Links[0].ClientEC.ID()
	if rec, ok := sm.Tree().Get(linkID, analysis.KindTCP); !ok || rec.Count == 0 {
		t.Fatal("no TCP stats record at the front-end")
	}
	if r := sm.WrapperGatherRate(); r <= 0 || r > 1 {
		t.Fatalf("wrapper gather rate = %v", r)
	}
	if r := sm.ThreadGatherRate(); r <= 0 || r > 1 {
		t.Fatalf("thread gather rate = %v", r)
	}
	if r := sm.TraceReadRate(); r <= 0 || r > 1 {
		t.Fatalf("trace read rate = %v", r)
	}
}

func TestStatsmWithCoscheduling(t *testing.T) {
	fastScale(t)
	cs := cosched.NewSet(cosched.AfterUnblock)
	tb, tree := buildRig(t, cs)
	cfg := DefaultConfig()
	cfg.AnalysisCostPerTuple = 0
	sm, err := NewStatsm(tb, tree, cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	sm.Start()
	const rounds = 40
	runApp(t, tree, rounds, -1, 0)
	// Analysis threads only run in post-broadcast windows; they must
	// still process (nearly) everything while the app runs. Drive a few
	// more rounds so pending windows flush.
	waitFor(t, 10*time.Second, func() bool {
		if sm.RoundsAnalyzed() >= uint64((rounds-2)*len(tree.Nodes)) {
			return true
		}
		runApp(t, tree, 1, -1, 0)
		return false
	}, "coscheduled statsm did not analyze rounds")
	sm.Stop()
	// The controllers saw windows.
	if cs.For(tree.Nodes[0].Host).Windows() == 0 {
		t.Fatal("no coscheduling windows opened")
	}
}

func TestStatsmTCPPlacementSource(t *testing.T) {
	fastScale(t)
	tb, tree := buildRig(t, nil)
	cfg := DefaultConfig()
	cfg.AnalysisCostPerTuple = 0
	cfg.TCPStatsAt = TCPStatsAtSource
	sm, err := NewStatsm(tb, tree, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sm.Start()
	runApp(t, tree, 40, -1, 0)
	waitFor(t, 10*time.Second, func() bool { return sm.TCPSamples() > 0 },
		"no TCP samples with source placement")
	sm.Stop()
}

func TestStatsmTCPOff(t *testing.T) {
	fastScale(t)
	tb, tree := buildRig(t, nil)
	cfg := DefaultConfig()
	cfg.AnalysisCostPerTuple = 0
	cfg.TCPStatsAt = TCPStatsOff
	sm, err := NewStatsm(tb, tree, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sm.Start()
	runApp(t, tree, 20, -1, 0)
	waitFor(t, 10*time.Second, func() bool { return sm.RoundsAnalyzed() > 0 }, "no rounds analyzed")
	sm.Stop()
	if sm.TCPSamples() != 0 {
		t.Fatal("TCP samples computed with TCPStatsOff")
	}
}

func TestWeightedTree(t *testing.T) {
	w := NewWeightedTree()
	w.Add("n", 0, 2)
	w.Add("n", 0, 3)
	w.Add("n", 1, 1)
	if w.Count("n", 0) != 5 || w.Count("n", 1) != 1 {
		t.Fatal("Add counts wrong")
	}
	w.Set("n", 0, 7)
	if w.Count("n", 0) != 7 {
		t.Fatal("Set did not overwrite")
	}
	if w.Total() != 8 {
		t.Fatalf("Total = %d", w.Total())
	}
	if len(w.Nodes()) != 1 {
		t.Fatal("Nodes wrong")
	}
	if w.Count("ghost", 0) != 0 {
		t.Fatal("ghost count nonzero")
	}
	c := w.Counts("n")
	c[0] = 999
	if w.Count("n", 0) == 999 {
		t.Fatal("Counts returned a live reference")
	}
}

func TestAnalysisTree(t *testing.T) {
	a := NewAnalysisTree()
	r1 := analysis.StatsRecord{ID: 1, Kind: analysis.KindUp, Count: 1, Mean: 10}
	r2 := analysis.StatsRecord{ID: 1, Kind: analysis.KindUp, Count: 2, Mean: 20}
	a.Update(r1)
	a.Update(r2)
	got, ok := a.Get(1, analysis.KindUp)
	if !ok || got.Mean != 20 {
		t.Fatalf("Get = %+v %v", got, ok)
	}
	if _, ok := a.Get(2, analysis.KindUp); ok {
		t.Fatal("ghost record")
	}
	if len(a.IDs()) != 1 || a.Updates() != 2 {
		t.Fatal("IDs/Updates wrong")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Strategy != cosched.AfterUnblock || cfg.TCPStatsAt != TCPStatsAtDestination {
		t.Fatal("defaults diverge from the paper's final configuration")
	}
	if cfg.intermediateCap() != 5000 || cfg.analysisThreads() != 1 {
		t.Fatal("derived defaults wrong")
	}
	cfg.IntermediateCap = 10
	cfg.ThreadsPerHost = 2
	if cfg.intermediateCap() != 10 || cfg.analysisThreads() != 2 {
		t.Fatal("overrides ignored")
	}
}
