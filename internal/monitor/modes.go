// Degradation-mode recording and replay. A scope's mode transitions are
// first-class events: the archive recorder persists each one as a
// control tuple (collect.ModeTuple on the reserved ECID 0), and
// ModeReplay reconstructs the transition sequence from an archive scan —
// so replaying a degraded run reproduces not just the data the monitor
// saw but *when and how far* the monitor had degraded while seeing it.
package monitor

import (
	"sort"

	"eventspace/internal/collect"
	"eventspace/internal/escope"
)

// EncodeModeChange renders one scope mode transition as the archive's
// control tuple. The scope name travels as its FNV-64 hash (the tuple
// format has no string field); replay matches on the same hash.
func EncodeModeChange(ch escope.ModeChange) collect.TraceTuple {
	return collect.EncodeMode(collect.ModeTuple{
		ScopeHash: collect.HashName(ch.Scope),
		From:      uint8(ch.From),
		To:        uint8(ch.To),
		Seq:       ch.Seq,
		At:        ch.At,
	})
}

// ModeReplay reconstructs a scope's degradation-ladder history from
// archived control tuples.
type ModeReplay struct {
	scope string
	hash  uint64

	changes []escope.ModeChange
	fed     uint64
	matched uint64
}

// NewModeReplay builds a replay driver for the named scope's mode
// transitions (other scopes' control tuples are ignored).
func NewModeReplay(scope string) *ModeReplay {
	return &ModeReplay{scope: scope, hash: collect.HashName(scope)}
}

// Feed offers one archived tuple. Data tuples and other scopes' control
// tuples are ignored.
func (r *ModeReplay) Feed(t collect.TraceTuple) {
	r.fed++
	m, ok := collect.DecodeMode(t)
	if !ok || m.ScopeHash != r.hash {
		return
	}
	r.matched++
	r.changes = append(r.changes, escope.ModeChange{
		Scope: r.scope,
		From:  escope.Mode(m.From),
		To:    escope.Mode(m.To),
		Seq:   m.Seq,
		At:    m.At,
	})
}

// Changes returns the reconstructed transitions ordered by their dense
// per-scope sequence — the same order the live scope logged them,
// whatever order the archive scan delivered the tuples in.
func (r *ModeReplay) Changes() []escope.ModeChange {
	out := make([]escope.ModeChange, len(r.changes))
	copy(out, r.changes)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Fed returns how many tuples were offered and how many were this
// scope's mode transitions.
func (r *ModeReplay) Fed() (fed, matched uint64) { return r.fed, r.matched }
