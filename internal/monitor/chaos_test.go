package monitor

//lint:file-allow wallclock chaos workload paces real goroutines with wall-clock sleeps

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"eventspace/internal/cluster"
	"eventspace/internal/escope"
	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vnet"
)

// The end-to-end chaos scenario: an allreduce application on the tin
// cluster keeps making progress while the iron cluster — which carries
// monitoring heartbeat sources — is crashed, partitioned, healed, and
// restarted by a scheduled fault plan. The monitoring scope degrades to
// partial coverage instead of failing, reports the gap, and recovers
// (delivering the data buffered during the outage) once the cluster
// heals.
func TestChaosMonitoringSurvivesCrashPartitionHeal(t *testing.T) {
	fastScale(t)
	tb, err := cluster.NewTestbed(cluster.LANMulti(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	iron := tb.Clusters[1]

	// The application tree spans only the tin cluster: the faults target
	// iron, so the collective never loses a contributor.
	appTB := &cluster.Testbed{Net: tb.Net, Clusters: tb.Clusters[:1], FrontEnd: tb.FrontEnd}
	tree, err := cluster.BuildTree(appTB, cluster.TreeSpec{
		Name: "T", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()

	// The load-balance monitor watches the application; its scope also
	// lives entirely on tin, so it must stay live throughout.
	cfg := DefaultConfig()
	cfg.AnalysisCostPerTuple = 0
	cfg.PullInterval = 5 * time.Millisecond
	cfg.Health = &escope.HealthPolicy{DeadAfter: 2, ProbeBase: time.Millisecond, ProbeMax: 4 * time.Millisecond}
	cfg.Retry = &paths.RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond}
	lb, err := NewLoadBalance(tb, tree, SingleScope, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	defer lb.Stop()

	// Heartbeat sources on the iron hosts: each writes a rising sequence
	// number while its host is up. Records are host index + u16 seq.
	ironHosts := iron.Hosts()
	elems := make([]*pastset.Element, len(ironHosts))
	srcs := make([]escope.Source, len(ironHosts))
	for i, h := range ironHosts {
		elems[i] = pastset.MustNewElement("hb", 4096)
		srcs[i] = escope.Source{Host: h, Elem: elems[i], RecSize: 3}
	}
	hb, err := escope.Build(tb.Net, escope.Spec{
		Name:     "hb",
		FrontEnd: tb.FrontEnd,
		Sources:  srcs,
		Health:   &escope.HealthPolicy{DeadAfter: 2, ProbeBase: time.Millisecond, ProbeMax: 4 * time.Millisecond},
		Retry:    &paths.RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()

	var seenMu sync.Mutex
	maxSeen := make(map[int]uint16)
	puller := hb.StartPuller(time.Millisecond, func(rep paths.Reply) error {
		seenMu.Lock()
		defer seenMu.Unlock()
		for i := 0; i+3 <= len(rep.Data); i += 3 {
			host := int(rep.Data[i])
			seq := binary.LittleEndian.Uint16(rep.Data[i+1 : i+3])
			if seq > maxSeen[host] {
				maxSeen[host] = seq
			}
		}
		return nil
	})
	defer puller.Stop()
	seen := func(host int) uint16 {
		seenMu.Lock()
		defer seenMu.Unlock()
		return maxSeen[host]
	}

	stopWriters := make(chan struct{})
	var writers sync.WaitGroup
	for i, h := range ironHosts {
		writers.Add(1)
		go func(i int, h *vnet.Host, e *pastset.Element) {
			defer writers.Done()
			for seq := uint16(1); ; seq++ {
				select {
				case <-stopWriters:
					return
				default:
				}
				// A crashed host's processes stop; a partitioned host
				// keeps producing into its local buffer. The element
				// retains the written slice, so each record is fresh.
				if !tb.Net.HostDown(h) {
					rec := []byte{byte(i), 0, 0}
					binary.LittleEndian.PutUint16(rec[1:], seq)
					e.Write(rec)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}(i, h, elems[i])
	}
	defer func() { close(stopWriters); writers.Wait() }()

	// Wait for full healthy coverage before injecting anything.
	waitFor(t, 10*time.Second, func() bool {
		return hb.Coverage().Complete() && seen(0) > 0 && seen(1) > 0
	}, "heartbeats never established full coverage")

	// The fault plan, in model time: crash iron-0, partition the whole
	// iron cluster, then heal and restart.
	tb.Net.InjectFaults(vnet.FaultPlan{
		Seed: 1,
		Events: []vnet.FaultEvent{
			{At: 50 * time.Millisecond, Kind: vnet.FaultCrash, Host: ironHosts[0].Name()},
			{At: 80 * time.Millisecond, Kind: vnet.FaultPartition, Cluster: iron.Name()},
			{At: 2 * time.Second, Kind: vnet.FaultHeal, Cluster: iron.Name()},
			{At: 2200 * time.Millisecond, Kind: vnet.FaultRestart, Host: ironHosts[0].Name()},
		},
	})
	defer tb.Net.ClearFaults()

	// The application runs right through the fault window.
	appDone := make(chan struct{})
	go func() {
		defer close(appDone)
		runApp(t, tree, 200, -1, 0)
	}()

	// Coverage dips: with iron partitioned, every iron host goes missing.
	waitFor(t, 10*time.Second, func() bool {
		return len(hb.Coverage().Missing) == len(ironHosts)
	}, "coverage never dipped under crash+partition")
	preHeal := seen(1)

	// Coverage recovers after heal+restart, and the sequence written by
	// the partitioned (but alive) iron-1 during the outage is delivered:
	// the source cursor persisted, so the gap closes.
	waitFor(t, 30*time.Second, func() bool {
		return hb.Coverage().Complete() && seen(1) > preHeal && seen(0) > 0
	}, "monitoring coverage never recovered after heal+restart")

	<-appDone // app finished all rounds without error (runApp asserts)

	// The tin-side monitor never lost coverage and observed the app.
	if cov := lb.Coverage(); !cov.Complete() {
		t.Fatalf("load-balance coverage dipped on unfaulted cluster: %+v", cov)
	}
	waitFor(t, 10*time.Second, func() bool { return lb.RoundsObserved() > 0 },
		"load-balance monitor observed no rounds")
	if puller.Pulls() == 0 {
		t.Fatal("heartbeat puller made no successful pulls")
	}
	var recoveries uint64
	for _, h := range hb.Health() {
		recoveries += h.Recoveries
	}
	if recoveries == 0 {
		t.Fatalf("no guard recovered: %+v", hb.Health())
	}
}

// A monitor whose own scope spans the faulted cluster: coverage reports
// the crashed host while the retained analysis state stays queryable,
// then recovers after restart.
func TestLoadBalanceCoverageDipsOnNodeCrash(t *testing.T) {
	fastScale(t)
	tb, err := cluster.NewTestbed(cluster.LANMulti(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := cluster.BuildTree(tb, cluster.TreeSpec{
		Name: "T", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	cfg := DefaultConfig()
	cfg.AnalysisCostPerTuple = 0
	cfg.PullInterval = 2 * time.Millisecond
	cfg.Health = &escope.HealthPolicy{DeadAfter: 2, ProbeBase: time.Millisecond, ProbeMax: 4 * time.Millisecond}
	cfg.Retry = &paths.RetryPolicy{MaxAttempts: 2, BaseBackoff: 100 * time.Microsecond}
	lb, err := NewLoadBalance(tb, tree, SingleScope, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	lb.Start()
	defer lb.Stop()

	// Run the application to completion first; the crash then only
	// affects monitoring pulls, not the collective.
	runApp(t, tree, 40, -1, 0)
	waitFor(t, 10*time.Second, func() bool { return lb.RoundsObserved() > 0 },
		"no rounds observed before the fault")
	if cov := lb.Coverage(); !cov.Complete() {
		t.Fatalf("pre-fault coverage incomplete: %+v", cov)
	}

	victim := tb.Clusters[1].Hosts()[0]
	tb.Net.InjectFaults(vnet.FaultPlan{
		Events: []vnet.FaultEvent{{Kind: vnet.FaultCrash, Host: victim.Name()}},
	})
	defer tb.Net.ClearFaults()
	waitFor(t, 10*time.Second, func() bool {
		cov := lb.Coverage()
		for _, m := range cov.Missing {
			if m == victim.Name() {
				return true
			}
		}
		return false
	}, "crashed host never reported missing")
	// The retained analysis state is still queryable on partial coverage.
	if lb.Weighted() == nil || lb.RoundsObserved() == 0 {
		t.Fatal("analysis state lost under partial coverage")
	}

	tb.Net.ClearFaults()
	tb.Net.InjectFaults(vnet.FaultPlan{
		Events: []vnet.FaultEvent{{Kind: vnet.FaultRestart, Host: victim.Name()}},
	})
	waitFor(t, 30*time.Second, func() bool { return lb.Coverage().Complete() },
		"coverage never recovered after restart")
}
