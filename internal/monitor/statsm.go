package monitor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"eventspace/internal/analysis"
	"eventspace/internal/cluster"
	"eventspace/internal/collect"
	"eventspace/internal/cosched"
	"eventspace/internal/escope"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// Statsm is the statistics monitor (section 4.3, figure 4): per-host
// analysis threads compute the full per-wrapper statistics — mean,
// minimum, maximum, standard deviation and NWS sliding-window median of
// the up, down and total latencies, the arrival/departure wait times, and
// the two-way TCP/IP latencies — and store them in result buffers that two
// gather threads move to the front-end.
type Statsm struct {
	cfg  Config
	tree *cluster.Tree
	fe   *vnet.Host
	cs   *cosched.Set

	hosts []*statsHost

	wrapperScope *escope.Scope
	threadScope  *escope.Scope
	wrapperPull  *escope.Puller
	threadPull   *escope.Puller

	atree *AnalysisTree

	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// statsHost is one host's analysis state. Multiple analysis threads on the
// host share it under mu (section 6.3.1 runs two threads per host).
type statsHost struct {
	host *vnet.Host
	mu   sync.Mutex

	nodes []*statsNode
	links []*statsLink
	// nextLink round-robins the links' remote trace reads: one remote
	// read per analysis batch, so a batch fits inside a coscheduling
	// window instead of spanning several collective rounds.
	nextLink int
	// batches counts analysis passes; per-thread records are published
	// every few batches (they are "not always needed").
	batches uint64

	wrapperElem *pastset.Element
	threadElem  *pastset.Element

	conns []*vnet.Conn
}

// statsNode carries one collective wrapper's statistics.
type statsNode struct {
	node    *cluster.Node
	joiner  *analysis.Joiner
	cursors []*pastset.Cursor // contributor EC buffers
	collCur *pastset.Cursor   // collective EC buffer

	down, up, total  *analysis.Stream
	arrWait, depWait *analysis.Stream
	perThreadArr     []*analysis.Stream
	perThreadDep     []*analysis.Stream
	rounds           uint64
	dirty            bool
}

// statsLink carries one connection's TCP latency statistics. The local
// side's tuples are read from the local trace buffer; the peer side's are
// pulled over the link's own monitor connection — the remote reads that
// dominate statsm's uncoscheduled overhead in the paper.
type statsLink struct {
	link     *cluster.Link
	localCur *pastset.Cursor
	remote   paths.Wrapper // batch reader on the peer, behind a stub
	// localIsClient records which side of the latency formula the
	// local tuples are.
	localIsClient bool
	pendingLocal  map[uint32]collect.TraceTuple
	pendingRemote map[uint32]collect.TraceTuple
	stream        *analysis.Stream
	samples       uint64
	dirty         bool
}

// NewStatsmFrom builds a statistics monitor whose published analysis
// tree starts from an archive-replayed snapshot (StatsReplay.Tree)
// instead of empty — the front-end failover path. The seeded records
// stand until the replacement's own analysis threads publish fresher
// ones for the same node/kind, so a reader never observes the
// statistics reset to zero across the failover.
func NewStatsmFrom(tb *cluster.Testbed, tree *cluster.Tree, cfg Config, cs *cosched.Set, seed *AnalysisTree) (*Statsm, error) {
	sm, err := NewStatsm(tb, tree, cfg, cs)
	if err != nil {
		return nil, err
	}
	if seed != nil {
		sm.atree = seed
	}
	return sm, nil
}

// NewStatsm builds the statistics monitor over an instrumented tree.
func NewStatsm(tb *cluster.Testbed, tree *cluster.Tree, cfg Config, cs *cosched.Set) (*Statsm, error) {
	if !tree.Spec.Instrument {
		return nil, fmt.Errorf("monitor: statsm needs an instrumented tree")
	}
	sm := &Statsm{
		cfg:   cfg,
		tree:  tree,
		fe:    tb.FrontEnd,
		cs:    cs,
		atree: NewAnalysisTree(),
		stop:  make(chan struct{}),
	}
	win := cfg.MedianWindow
	if win <= 0 {
		win = analysis.DefaultMedianWindow
	}
	byHost := make(map[*vnet.Host]*statsHost)
	var order []*vnet.Host
	hostFor := func(h *vnet.Host) (*statsHost, error) {
		sh, ok := byHost[h]
		if ok {
			return sh, nil
		}
		we, err := h.Registry.Create(fmt.Sprintf("statsm/w/%s/%s", tree.Name, h.Name()), cfg.intermediateCap())
		if err != nil {
			return nil, err
		}
		te, err := h.Registry.Create(fmt.Sprintf("statsm/t/%s/%s", tree.Name, h.Name()), cfg.intermediateCap())
		if err != nil {
			return nil, err
		}
		sh = &statsHost{host: h, wrapperElem: we, threadElem: te}
		byHost[h] = sh
		order = append(order, h)
		return sh, nil
	}

	for _, n := range tree.Nodes {
		sh, err := hostFor(n.Host)
		if err != nil {
			return nil, err
		}
		k := n.AR.Fanin()
		st := &statsNode{
			node:    n,
			collCur: n.CollectiveEC.Buffer().NewCursor(),
			down:    analysis.NewStream(win),
			up:      analysis.NewStream(win),
			total:   analysis.NewStream(win),
			arrWait: analysis.NewStream(win),
			depWait: analysis.NewStream(win),
		}
		for i := 0; i < k; i++ {
			st.cursors = append(st.cursors, n.ContribECs[i].Buffer().NewCursor())
			st.perThreadArr = append(st.perThreadArr, analysis.NewStream(win))
			st.perThreadDep = append(st.perThreadDep, analysis.NewStream(win))
		}
		st.joiner, err = analysis.NewJoiner(k, 256, func(m analysis.RoundMetrics) {
			st.rounds++
			st.dirty = true
			for _, c := range m.Per {
				st.down.Add(float64(c.Down) / float64(time.Microsecond))
				st.up.Add(float64(c.Up) / float64(time.Microsecond))
				st.total.Add(float64(c.Total) / float64(time.Microsecond))
				st.arrWait.Add(float64(c.ArrivalWait) / float64(time.Microsecond))
				st.depWait.Add(float64(c.DepartureWait) / float64(time.Microsecond))
				st.perThreadArr[c.Contributor].Add(float64(c.ArrivalWait) / float64(time.Microsecond))
				st.perThreadDep[c.Contributor].Add(float64(c.DepartureWait) / float64(time.Microsecond))
			}
		})
		if err != nil {
			return nil, err
		}
		sh.nodes = append(sh.nodes, st)
	}

	if cfg.TCPStatsAt != TCPStatsOff {
		for _, lk := range tree.Links {
			statsSide, peerSide := lk.To, lk.From // destination computes
			localEC, remoteEC := lk.ServerEC, lk.ClientEC
			localIsClient := false
			if cfg.TCPStatsAt == TCPStatsAtSource {
				statsSide, peerSide = lk.From, lk.To
				localEC, remoteEC = lk.ClientEC, lk.ServerEC
				localIsClient = true
			}
			sh, err := hostFor(statsSide)
			if err != nil {
				return nil, err
			}
			// The analysis thread reads the peer's trace buffer over
			// its own connection. Remote-read failures are already
			// tolerated (the batch proceeds without the peer's tuples);
			// the retry policy additionally rides out transient faults.
			rd := paths.NewBatchReader("statsm/peer("+lk.Name+")", peerSide, remoteEC.Buffer(), collect.TupleSize, 0)
			svc := paths.NewService()
			target := svc.Register(rd)
			conn := tb.Net.Dial(statsSide, peerSide, svc.Handler())
			sh.conns = append(sh.conns, conn)
			stub := paths.NewRemote("statsm/stub("+lk.Name+")", statsSide, conn, target)
			if cfg.Retry != nil {
				pol := *cfg.Retry
				stub.SetRetry(&pol)
			}
			if cfg.Metrics != nil {
				stub.SetMetrics(&paths.RemoteMetrics{
					Op:      cfg.Metrics.Op(metrics.KindStub, stub.Name()),
					Retries: cfg.Metrics.Counter("statsm/stub.retries"),
					Redials: cfg.Metrics.Counter("statsm/stub.redials"),
				})
			}
			sh.links = append(sh.links, &statsLink{
				link:          lk,
				localCur:      localEC.Buffer().NewCursor(),
				remote:        stub,
				localIsClient: localIsClient,
				pendingLocal:  make(map[uint32]collect.TraceTuple),
				pendingRemote: make(map[uint32]collect.TraceTuple),
				stream:        analysis.NewStream(win),
			})
		}
	}

	for _, h := range order {
		sm.hosts = append(sm.hosts, byHost[h])
	}

	var werr error
	sm.wrapperScope, werr = escope.Build(tb.Net, escope.Spec{
		Name:           "statsm/wscope/" + tree.Name,
		FrontEnd:       tb.FrontEnd,
		GatewayHelpers: cfg.GatewayHelpers,
		RootHelpers:    cfg.RootHelpers,
		Sources:        statsSources(order, byHost, false, cfg.readBatch()),
		Health:         cfg.Health,
		Retry:          cfg.Retry,
		Metrics:        cfg.Metrics,
	})
	if werr != nil {
		return nil, werr
	}
	sm.threadScope, werr = escope.Build(tb.Net, escope.Spec{
		Name:           "statsm/tscope/" + tree.Name,
		FrontEnd:       tb.FrontEnd,
		GatewayHelpers: cfg.GatewayHelpers,
		RootHelpers:    cfg.RootHelpers,
		Sources:        statsSources(order, byHost, true, cfg.readBatch()),
		Health:         cfg.Health,
		Retry:          cfg.Retry,
		Metrics:        cfg.Metrics,
	})
	if werr != nil {
		return nil, werr
	}
	return sm, nil
}

func statsSources(order []*vnet.Host, byHost map[*vnet.Host]*statsHost, thread bool, batchCap int) []escope.Source {
	var out []escope.Source
	for _, h := range order {
		sh := byHost[h]
		elem := sh.wrapperElem
		if thread {
			elem = sh.threadElem
		}
		out = append(out, escope.Source{Host: h, Elem: elem, RecSize: analysis.StatsRecordSize, BatchCap: batchCap})
	}
	return out
}

// analysisBatch drains and processes everything available on one host.
// It returns the number of trace tuples processed. Blocking work (the
// remote trace read and the modelled analysis CPU occupancy) happens
// outside the host lock so a second analysis thread is never stalled
// behind a sleeping one.
func (sm *Statsm) analysisBatch(sh *statsHost, batch *[]pastset.Tuple) int {
	sh.mu.Lock()
	processed := 0

	for _, st := range sh.nodes {
		*batch = st.collCur.DrainInto((*batch)[:0])
		for _, raw := range *batch {
			if tu, err := collect.Decode(raw.Data); err == nil {
				st.joiner.AddCollective(tu)
				processed++
			}
		}
		for i, cur := range st.cursors {
			*batch = cur.DrainInto((*batch)[:0])
			for _, raw := range *batch {
				if tu, err := collect.Decode(raw.Data); err == nil {
					st.joiner.AddContributor(i, tu)
					processed++
				}
			}
		}
	}

	// Drain the links' local trace buffers and pick which peers to read
	// remotely this batch. Free-running analysis threads read every
	// peer sequentially per pass, exactly like the paper's statsm
	// ("it reads from 8 hosts sequentially") — the behaviour behind its
	// 5-9% overhead. Coscheduled threads round-robin one link per
	// window so a batch stays short enough to fit it.
	var chosen []*statsLink
	if len(sh.links) > 0 {
		if sm.cfg.Strategy == cosched.None {
			chosen = sh.links
		} else {
			chosen = sh.links[sh.nextLink%len(sh.links) : sh.nextLink%len(sh.links)+1]
			sh.nextLink++
		}
	}
	sh.batches++
	for _, ls := range sh.links {
		*batch = ls.localCur.DrainInto((*batch)[:0])
		for _, raw := range *batch {
			if tu, err := collect.Decode(raw.Data); err == nil {
				ls.pendingLocal[tu.Seq] = tu
				processed++
			}
		}
	}
	sh.mu.Unlock()

	// Remote reads of the peers' tuples: real monitor traffic over the
	// network, contending with the application.
	remote := make(map[*statsLink][]collect.TraceTuple, len(chosen))
	for _, ls := range chosen {
		rep, err := ls.remote.Op(&paths.Ctx{Thread: "statsm"}, paths.Request{Kind: paths.OpRead})
		if err == nil {
			if tuples, err := collect.DecodeAll(rep.Data); err == nil {
				remote[ls] = tuples
			}
		}
	}

	sh.mu.Lock()
	for ls, tuples := range remote {
		for _, tu := range tuples {
			ls.pendingRemote[tu.Seq] = tu
			processed++
		}
	}
	for _, ls := range sh.links {
		for seq, lt := range ls.pendingLocal {
			rt, ok := ls.pendingRemote[seq]
			if !ok {
				continue
			}
			delete(ls.pendingLocal, seq)
			delete(ls.pendingRemote, seq)
			client, server := rt, lt
			if ls.localIsClient {
				client, server = lt, rt
			}
			lat := analysis.TCPLatency(client, server)
			ls.stream.Add(float64(lat) / float64(time.Microsecond))
			ls.samples++
			ls.dirty = true
		}
		// Bound the pending maps against permanently lost halves.
		if len(ls.pendingLocal) > 4096 {
			ls.pendingLocal = make(map[uint32]collect.TraceTuple)
		}
		if len(ls.pendingRemote) > 4096 {
			ls.pendingRemote = make(map[uint32]collect.TraceTuple)
		}
	}

	// Publish result records for everything that changed.
	for _, st := range sh.nodes {
		if !st.dirty {
			continue
		}
		st.dirty = false
		id := st.node.CollectiveEC.ID()
		for kind, str := range map[int]*analysis.Stream{
			analysis.KindDown:          st.down,
			analysis.KindUp:            st.up,
			analysis.KindTotal:         st.total,
			analysis.KindArrivalWait:   st.arrWait,
			analysis.KindDepartureWait: st.depWait,
		} {
			rec := analysis.StatsRecordFrom(id, kind, str.Snapshot())
			if _, err := sh.wrapperElem.Write(rec.Encode()); err != nil {
				break
			}
		}
		// Per-thread statistics "are not always needed": publish them
		// at half the wrapper-statistics rate.
		if sh.batches%2 == 0 {
			for i := range st.perThreadArr {
				ecID := st.node.ContribECs[i].ID()
				ra := analysis.StatsRecordFrom(ecID, analysis.KindArrivalWait, st.perThreadArr[i].Snapshot())
				rd := analysis.StatsRecordFrom(ecID, analysis.KindDepartureWait, st.perThreadDep[i].Snapshot())
				if _, err := sh.threadElem.Write(ra.Encode()); err != nil {
					break
				}
				if _, err := sh.threadElem.Write(rd.Encode()); err != nil {
					break
				}
			}
		}
	}
	for _, ls := range sh.links {
		if !ls.dirty {
			continue
		}
		ls.dirty = false
		rec := analysis.StatsRecordFrom(ls.link.ClientEC.ID(), analysis.KindTCP, ls.stream.Snapshot())
		if _, err := sh.wrapperElem.Write(rec.Encode()); err != nil {
			break
		}
	}
	sh.mu.Unlock()

	// The statistics computation costs CPU on the analysed host.
	if processed > 0 && sm.cfg.AnalysisCostPerTuple > 0 {
		sh.host.Occupy(time.Duration(processed) * sm.cfg.AnalysisCostPerTuple)
	}
	return processed
}

// analysisLoop is one analysis thread.
func (sm *Statsm) analysisLoop(sh *statsHost) {
	defer sm.wg.Done()
	var waiter *cosched.Waiter
	if sm.cs != nil {
		waiter = sm.cs.For(sh.host).NewWaiter()
	}
	var batch []pastset.Tuple
	for {
		select {
		case <-sm.stop:
			return
		default:
		}
		if waiter != nil && !waiter.Await() {
			return
		}
		if sm.analysisBatch(sh, &batch) == 0 {
			// Back off on an empty trace buffer (the paper's threads
			// block in the PastSet read).
			hrtime.SleepUnscaled(50 * time.Microsecond)
		}
		if sm.cfg.AnalysisInterval > 0 {
			hrtime.Sleep(sm.cfg.AnalysisInterval)
		}
	}
}

// StartAnalysisOnly launches only the per-host analysis threads, without
// the gather threads — the configuration behind Table 3's "Analysis
// threads" overhead rows.
func (sm *Statsm) StartAnalysisOnly() {
	for _, sh := range sm.hosts {
		sh := sh
		for i := 0; i < sm.cfg.analysisThreads(); i++ {
			sm.wg.Add(1)
			vclock.Go(func() { sm.analysisLoop(sh) })
		}
	}
}

// Start launches the analysis threads and both gather threads.
func (sm *Statsm) Start() {
	sm.StartAnalysisOnly()
	sink := func(rep paths.Reply) error {
		recs, err := analysis.DecodeStatsRecords(rep.Data)
		if err != nil {
			return err
		}
		for _, r := range recs {
			sm.atree.Update(r)
		}
		return nil
	}
	sm.wrapperPull = sm.wrapperScope.StartPuller(sm.cfg.PullInterval, sink)
	sm.threadPull = sm.threadScope.StartPuller(sm.cfg.PullInterval, sink)
}

// Stop halts all monitor threads. It is idempotent and safe to call
// from multiple goroutines: a boolean guard here raced (both callers
// observe false, both close — the Puller.Stop bug class, flagged by
// the closeonce analyzer), so the whole teardown runs under a
// sync.Once and late callers block until the first finishes.
func (sm *Statsm) Stop() {
	sm.stopOnce.Do(func() {
		if sm.cs != nil {
			sm.cs.CloseAll()
		}
		close(sm.stop)
		if sm.wrapperPull != nil {
			sm.wrapperPull.Stop()
		}
		if sm.threadPull != nil {
			sm.threadPull.Stop()
		}
		sm.wg.Wait()
		sm.wrapperScope.Close()
		sm.threadScope.Close()
		for _, sh := range sm.hosts {
			for _, c := range sh.conns {
				c.Close()
			}
			// The intermediate buffers belong to this monitor's analysis
			// threads; releasing them lets a failover replacement re-create
			// them under the same names.
			_ = sh.host.Registry.Remove(sh.wrapperElem.Name())
			_ = sh.host.Registry.Remove(sh.threadElem.Name())
		}
	})
}

// Tree returns the front-end analysis tree.
func (sm *Statsm) Tree() *AnalysisTree { return sm.atree }

// WrapperGatherRate reports the fraction of wrapper-statistics records
// gathered before discard (Table 3, "Wrapper").
func (sm *Statsm) WrapperGatherRate() float64 { return sm.wrapperScope.GatherRate() }

// ThreadGatherRate reports the fraction of per-thread statistics records
// gathered before discard (Table 3, "Thread").
func (sm *Statsm) ThreadGatherRate() float64 { return sm.threadScope.GatherRate() }

// TraceReadRate reports the fraction of trace tuples the analysis threads
// read before the bounded trace buffers discarded them.
func (sm *Statsm) TraceReadRate() float64 {
	var read, skipped uint64
	for _, sh := range sm.hosts {
		sh.mu.Lock()
		for _, st := range sh.nodes {
			read += st.collCur.Read()
			skipped += st.collCur.Skipped()
			for _, cur := range st.cursors {
				read += cur.Read()
				skipped += cur.Skipped()
			}
		}
		for _, ls := range sh.links {
			read += ls.localCur.Read()
			skipped += ls.localCur.Skipped()
		}
		sh.mu.Unlock()
	}
	if read+skipped == 0 {
		return 1
	}
	return float64(read) / float64(read+skipped)
}

// RoundsAnalyzed sums the completed rounds over all wrappers.
func (sm *Statsm) RoundsAnalyzed() uint64 {
	var n uint64
	for _, sh := range sm.hosts {
		sh.mu.Lock()
		for _, st := range sh.nodes {
			n += st.rounds
		}
		sh.mu.Unlock()
	}
	return n
}

// Coverage annotates statsm's view with who it is hearing from, merged
// over its two event scopes: a host counts as reporting only when both
// the wrapper-statistics and per-thread-statistics gathers reach it.
func (sm *Statsm) Coverage() escope.Coverage {
	w, t := sm.wrapperScope.Coverage(), sm.threadScope.Coverage()
	missing := make(map[string]bool)
	for _, h := range w.Missing {
		missing[h] = true
	}
	for _, h := range t.Missing {
		missing[h] = true
	}
	cov := escope.Coverage{Expected: w.Expected, Staleness: max(w.Staleness, t.Staleness)}
	for h := range missing {
		cov.Missing = append(cov.Missing, h)
	}
	sort.Strings(cov.Missing)
	cov.Reporting = cov.Expected - len(cov.Missing)
	return cov
}

// TCPSamples sums the TCP latency samples over all links.
func (sm *Statsm) TCPSamples() uint64 {
	var n uint64
	for _, sh := range sm.hosts {
		sh.mu.Lock()
		for _, ls := range sh.links {
			n += ls.samples
		}
		sh.mu.Unlock()
	}
	return n
}
