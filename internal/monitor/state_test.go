package monitor

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"eventspace/internal/analysis"
	"eventspace/internal/collect"
	"eventspace/internal/paths"
)

// replayStream fabricates a contributor tuple stream over two 3-fanin
// nodes, shuffled within a small horizon so rounds interleave and some
// are always pending mid-stream.
func replayStream(t *testing.T, rounds int) (map[uint32]ReplayPort, map[uint32]ReplayStatsPort, []collect.TraceTuple) {
	t.Helper()
	// Node "a": contributor ECIDs 1,2,3 + collective 10.
	// Node "b": contributor ECIDs 4,5,6 + collective 20.
	lbPorts := map[uint32]ReplayPort{
		1: {Node: "a", Contributor: 0, Fanin: 3},
		2: {Node: "a", Contributor: 1, Fanin: 3},
		3: {Node: "a", Contributor: 2, Fanin: 3},
		4: {Node: "b", Contributor: 0, Fanin: 3},
		5: {Node: "b", Contributor: 1, Fanin: 3},
		6: {Node: "b", Contributor: 2, Fanin: 3},
	}
	statsPorts := map[uint32]ReplayStatsPort{
		1: {NodeID: 10, Contributor: 0, Fanin: 3},
		2: {NodeID: 10, Contributor: 1, Fanin: 3},
		3: {NodeID: 10, Contributor: 2, Fanin: 3},
		10: {NodeID: 10, Contributor: -1, Fanin: 3},
		4: {NodeID: 20, Contributor: 0, Fanin: 3},
		5: {NodeID: 20, Contributor: 1, Fanin: 3},
		6: {NodeID: 20, Contributor: 2, Fanin: 3},
		20: {NodeID: 20, Contributor: -1, Fanin: 3},
	}
	rng := rand.New(rand.NewSource(3))
	var tuples []collect.TraceTuple
	for seq := uint32(1); seq <= uint32(rounds); seq++ {
		base := int64(10_000 + 1000*int64(seq))
		for node, ecids := range map[uint32][]uint32{10: {1, 2, 3}, 20: {4, 5, 6}} {
			tuples = append(tuples, collect.TraceTuple{
				ECID: node, Op: paths.OpWrite, Seq: seq,
				Start: base + 100, End: base + 200,
			})
			for i, id := range ecids {
				jit := rng.Int63n(90)
				tuples = append(tuples, collect.TraceTuple{
					ECID: id, Op: paths.OpWrite, Seq: seq,
					Start: base + jit + int64(i), End: base + 300 + jit,
				})
			}
		}
	}
	rng.Shuffle(len(tuples), func(i, j int) {
		if d := i - j; d < 10 && d > -10 {
			tuples[i], tuples[j] = tuples[j], tuples[i]
		}
	})
	return lbPorts, statsPorts, tuples
}

// TestLastArrivalReplaySplitEquivalence is the checkpoint contract for
// the load-balance shadow: snapshot mid-stream, restore, feed the
// suffix — the weighted tree, floors, and counters match a
// straight-through replay exactly.
func TestLastArrivalReplaySplitEquivalence(t *testing.T) {
	ports, _, tuples := replayStream(t, 50)
	for _, split := range []int{0, 13, 101, 250, len(tuples)} {
		full, err := NewLastArrivalReplay(ports)
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range tuples {
			full.Feed(tu)
		}

		head, err := NewLastArrivalReplay(ports)
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range tuples[:split] {
			head.Feed(tu)
		}
		tail, err := NewLastArrivalReplayFrom(ports, head.State())
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		for _, tu := range tuples[split:] {
			tail.Feed(tu)
		}

		if !reflect.DeepEqual(tail.State(), full.State()) {
			t.Fatalf("split %d: restored replay state diverged from straight-through", split)
		}
		fullRes, tailRes := full.Resume(), tail.Resume()
		if !reflect.DeepEqual(tailRes.Floors, fullRes.Floors) {
			t.Fatalf("split %d: floors %v, want %v", split, tailRes.Floors, fullRes.Floors)
		}
		if tail.Lost() != full.Lost() {
			t.Fatalf("split %d: lost %d, want %d", split, tail.Lost(), full.Lost())
		}
	}
}

// TestStatsReplaySplitEquivalence is the same contract for the
// statistics shadow: the reconstructed analysis tree and every counter
// match a straight-through replay after any split.
func TestStatsReplaySplitEquivalence(t *testing.T) {
	_, ports, tuples := replayStream(t, 50)
	for _, split := range []int{0, 27, 199, len(tuples)} {
		full, err := NewStatsReplay(ports, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range tuples {
			full.Feed(tu)
		}

		head, err := NewStatsReplay(ports, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range tuples[:split] {
			head.Feed(tu)
		}
		tail, err := NewStatsReplayFrom(ports, head.State())
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		for _, tu := range tuples[split:] {
			tail.Feed(tu)
		}

		if !reflect.DeepEqual(tail.State(), full.State()) {
			t.Fatalf("split %d: restored stats state diverged from straight-through", split)
		}
		if tail.RoundsAnalyzed() != full.RoundsAnalyzed() {
			t.Fatalf("split %d: rounds %d, want %d", split, tail.RoundsAnalyzed(), full.RoundsAnalyzed())
		}
		fullTree, tailTree := full.Tree(), tail.Tree()
		fullIDs, tailIDs := fullTree.IDs(), tailTree.IDs()
		sort.Slice(fullIDs, func(i, j int) bool { return fullIDs[i] < fullIDs[j] })
		sort.Slice(tailIDs, func(i, j int) bool { return tailIDs[i] < tailIDs[j] })
		if !reflect.DeepEqual(tailIDs, fullIDs) {
			t.Fatalf("split %d: tree ids %v, want %v", split, tailIDs, fullIDs)
		}
		kinds := []int{analysis.KindDown, analysis.KindUp, analysis.KindTotal, analysis.KindArrivalWait, analysis.KindDepartureWait}
		for _, id := range fullIDs {
			for _, kind := range kinds {
				want, wok := fullTree.Get(id, kind)
				got, gok := tailTree.Get(id, kind)
				if gok != wok || got != want {
					t.Fatalf("split %d: node %d %s = %+v, want %+v", split, id, analysis.KindName(kind), got, want)
				}
			}
		}
	}
}

// TestStateRestoreRejectsMismatchedPorts verifies a snapshot cannot be
// applied against a different node roster — the fallback-to-full-replay
// trigger in the recovery ladder.
func TestStateRestoreRejectsMismatchedPorts(t *testing.T) {
	ports, statsPorts, tuples := replayStream(t, 10)
	rep, err := NewLastArrivalReplay(ports)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples {
		rep.Feed(tu)
	}
	st := rep.State()

	other := map[uint32]ReplayPort{
		1: {Node: "c", Contributor: 0, Fanin: 2},
		2: {Node: "c", Contributor: 1, Fanin: 2},
	}
	if _, err := NewLastArrivalReplayFrom(other, st); err == nil {
		t.Fatal("mismatched port roster accepted")
	}

	srep, err := NewStatsReplay(statsPorts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples {
		srep.Feed(tu)
	}
	sst := srep.State()
	otherStats := map[uint32]ReplayStatsPort{
		1: {NodeID: 30, Contributor: 0, Fanin: 3},
		2: {NodeID: 30, Contributor: 1, Fanin: 3},
		3: {NodeID: 30, Contributor: 2, Fanin: 3},
	}
	if _, err := NewStatsReplayFrom(otherStats, sst); err == nil {
		t.Fatal("mismatched stats roster accepted")
	}
}
