package monitor

import (
	"fmt"
	"time"

	"eventspace/internal/analysis"
	"eventspace/internal/collect"
)

// This file is the offline half of the monitors: the same joins the live
// load-balance and statistics monitors run, fed from archived trace
// tuples instead of event scopes. Replay is deterministic by
// construction — every computation below is a pure function of the
// tuples' own Seq/Start/End fields, and the joins are keyed by sequence
// number, so feeding the same tuples in any gather order produces the
// same verdicts as the live run (provided no round was evicted on
// either side). No clock is consulted anywhere.

// replayMaxPending is the join eviction bound used offline. Replay is
// not memory-pressured the way a live monitor is, so it is generous:
// evictions would break the determinism contract with the live run.
const replayMaxPending = 4096

// ReplayPort maps one archived contributor event collector onto the
// load-balance join: which node it feeds, as which contributor, and the
// node's fan-in.
type ReplayPort struct {
	Node        string // node name (the weighted-tree key)
	Contributor int    // contributor index on that node
	Fanin       int    // the node's contributor count
}

// LastArrivalReplay re-runs the load-balance monitor's last-arrival
// reduction over archived trace tuples. It mirrors the single-scope
// reduce wrapper exactly: per node, rounds join on the tuple sequence
// number and the last arrival is the contributor tuple with the largest
// Start stamp (ties broken toward the higher contributor index).
type LastArrivalReplay struct {
	ports    map[uint32]ReplayPort // contributor ECID -> port
	joins    map[string]*lbJoin    // node name -> join
	weighted *WeightedTree

	fed     uint64
	matched uint64
}

// NewLastArrivalReplay builds a replay driver from the contributor-ECID
// port map (see archive.ReplayLastArrival for the wiring from archived
// collector metadata).
func NewLastArrivalReplay(ports map[uint32]ReplayPort) (*LastArrivalReplay, error) {
	r := &LastArrivalReplay{
		ports:    make(map[uint32]ReplayPort, len(ports)),
		joins:    make(map[string]*lbJoin),
		weighted: NewWeightedTree(),
	}
	for id, p := range ports {
		if p.Fanin < 1 {
			return nil, fmt.Errorf("monitor: replay port %d: fanin %d < 1", id, p.Fanin)
		}
		if p.Contributor < 0 || p.Contributor >= p.Fanin {
			return nil, fmt.Errorf("monitor: replay port %d: contributor %d outside fanin %d", id, p.Contributor, p.Fanin)
		}
		r.ports[id] = p
		if _, ok := r.joins[p.Node]; !ok {
			j := newLBJoin(p.Fanin)
			j.maxPending = replayMaxPending
			r.joins[p.Node] = j
		}
	}
	return r, nil
}

// Feed offers one archived tuple to the join. Tuples from collectors
// outside the port map (collective wrappers, stub collectors) are
// ignored, exactly as the live reduce ignores unknown ECIDs.
func (r *LastArrivalReplay) Feed(t collect.TraceTuple) {
	r.fed++
	p, ok := r.ports[t.ECID]
	if !ok {
		return
	}
	r.matched++
	if last, done := r.joins[p.Node].add(p.Contributor, t); done {
		r.weighted.Add(p.Node, last, 1)
	}
}

// Weighted returns the reconstructed weighted tree. Compare it (e.g.
// via viz.WeightedTree) against the live monitor's Weighted() output.
func (r *LastArrivalReplay) Weighted() *WeightedTree { return r.weighted }

// LoadBalanceResume is the state handoff for a front-end failover: the
// weighted tree reconstructed from the dead front-end's sealed archive,
// plus per-node join floors (the highest round each node completed) so
// the replacement monitor never double-counts a finished round.
type LoadBalanceResume struct {
	Weighted *WeightedTree
	Floors   map[string]uint32 // node name -> highest completed Seq
	// ReRead makes the replacement monitor's source readers start at the
	// beginning of the retained trace windows instead of after the
	// newest tuple. Checkpointed recovery sets it: tuples the dead
	// front end gathered but the checkpoint+suffix already covers are
	// blocked by the per-node floors (joins ignore Seq <= floor, and
	// identical re-fed contributor tuples are idempotent), so re-reading
	// closes the gather gap without double-counting a finished round.
	ReRead bool
}

// Resume snapshots the replay into a handoff a replacement load-balance
// monitor can be seeded from (NewLoadBalanceFrom). Call it after feeding
// the sealed archive completely; Lost() must be zero for the handoff to
// be faithful.
func (r *LastArrivalReplay) Resume() *LoadBalanceResume {
	res := &LoadBalanceResume{Weighted: NewWeightedTree(), Floors: make(map[string]uint32)}
	for _, node := range r.weighted.Nodes() {
		for c, n := range r.weighted.Counts(node) {
			res.Weighted.Add(node, c, n)
		}
	}
	for node, j := range r.joins {
		if j.maxDone > 0 {
			res.Floors[node] = j.maxDone
		}
	}
	return res
}

// Fed returns how many tuples were offered and how many belonged to a
// known contributor collector.
func (r *LastArrivalReplay) Fed() (fed, matched uint64) { return r.fed, r.matched }

// Lost sums rounds evicted from the replay joins — nonzero means the
// determinism contract with the live run is void for this replay.
func (r *LastArrivalReplay) Lost() uint64 {
	var n uint64
	for _, j := range r.joins {
		n += j.lost
	}
	return n
}

// ReplayStatsPort maps one archived event collector onto the statistics
// join: which node's round it belongs to and as what.
type ReplayStatsPort struct {
	NodeID      uint32 // the node's collective EC id (the stats-record key)
	Contributor int    // contributor index, or -1 for the collective tuple
	Fanin       int    // the node's contributor count
}

// statsReplayNode is one node's offline statistics state: the same
// joiner-plus-streams pipeline statsm runs per node, minus the
// intermediate buffers and gather scopes.
type statsReplayNode struct {
	joiner                            *analysis.Joiner
	down, up, total, arrWait, depWait *analysis.Stream
	rounds                            uint64
}

// StatsReplay re-runs statsm's wrapper-statistics computation over
// archived trace tuples: per-node round joins and the five latency
// streams (down, up, total, arrival wait, departure wait) in
// microseconds.
type StatsReplay struct {
	ports  map[uint32]ReplayStatsPort
	nodes  map[uint32]*statsReplayNode // keyed by NodeID
	window int                         // sliding-median window, kept for snapshots

	fed     uint64
	matched uint64
}

// NewStatsReplay builds a statistics replay driver from the ECID port
// map. window is the sliding median window (values < 1 use the
// analysis default).
func NewStatsReplay(ports map[uint32]ReplayStatsPort, window int) (*StatsReplay, error) {
	r := &StatsReplay{
		ports:  make(map[uint32]ReplayStatsPort, len(ports)),
		nodes:  make(map[uint32]*statsReplayNode),
		window: window,
	}
	for id, p := range ports {
		if p.Fanin < 1 {
			return nil, fmt.Errorf("monitor: stats replay port %d: fanin %d < 1", id, p.Fanin)
		}
		if p.Contributor >= p.Fanin {
			return nil, fmt.Errorf("monitor: stats replay port %d: contributor %d outside fanin %d", id, p.Contributor, p.Fanin)
		}
		r.ports[id] = p
		if _, ok := r.nodes[p.NodeID]; ok {
			continue
		}
		st := &statsReplayNode{
			down:    analysis.NewStream(window),
			up:      analysis.NewStream(window),
			total:   analysis.NewStream(window),
			arrWait: analysis.NewStream(window),
			depWait: analysis.NewStream(window),
		}
		joiner, err := analysis.NewJoiner(p.Fanin, replayMaxPending, func(m analysis.RoundMetrics) {
			st.rounds++
			for _, c := range m.Per {
				st.down.Add(float64(c.Down) / float64(time.Microsecond))
				st.up.Add(float64(c.Up) / float64(time.Microsecond))
				st.total.Add(float64(c.Total) / float64(time.Microsecond))
				st.arrWait.Add(float64(c.ArrivalWait) / float64(time.Microsecond))
				st.depWait.Add(float64(c.DepartureWait) / float64(time.Microsecond))
			}
		})
		if err != nil {
			return nil, err
		}
		st.joiner = joiner
		r.nodes[p.NodeID] = st
	}
	return r, nil
}

// Feed offers one archived tuple to the statistics join.
func (r *StatsReplay) Feed(t collect.TraceTuple) {
	r.fed++
	p, ok := r.ports[t.ECID]
	if !ok {
		return
	}
	r.matched++
	st := r.nodes[p.NodeID]
	if p.Contributor < 0 {
		st.joiner.AddCollective(t)
	} else {
		st.joiner.AddContributor(p.Contributor, t)
	}
}

// Tree materializes the reconstructed analysis tree: the five wrapper
// statistics per node, as statsm would have published them.
func (r *StatsReplay) Tree() *AnalysisTree {
	at := NewAnalysisTree()
	for id, st := range r.nodes {
		if st.rounds == 0 {
			continue
		}
		for kind, str := range map[int]*analysis.Stream{
			analysis.KindDown:          st.down,
			analysis.KindUp:            st.up,
			analysis.KindTotal:         st.total,
			analysis.KindArrivalWait:   st.arrWait,
			analysis.KindDepartureWait: st.depWait,
		} {
			at.Update(analysis.StatsRecordFrom(id, kind, str.Snapshot()))
		}
	}
	return at
}

// RoundsAnalyzed sums completed rounds over all nodes.
func (r *StatsReplay) RoundsAnalyzed() uint64 {
	var n uint64
	for _, st := range r.nodes {
		n += st.rounds
	}
	return n
}

// Fed returns how many tuples were offered and how many belonged to a
// known collector.
func (r *StatsReplay) Fed() (fed, matched uint64) { return r.fed, r.matched }
