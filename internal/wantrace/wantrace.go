// Package wantrace reproduces the Longcut WAN emulator's delay model.
//
// The paper emulates WAN links between sub-clusters by routing all traffic
// through per-sub-cluster gateways that add delays computed from a latency
// and bandwidth trace collected between hosts in Tromsø, Trondheim, Odense
// and Aalborg (largest latency Tromsø-Aalborg, about 36 ms).
//
// The original trace is not available, so this package generates a
// synthetic trace that is shape-faithful to the published description: the
// published base round-trip latencies per site pair, WAN-class bandwidths,
// and mild time-varying jitter from a deterministic PRNG. The emulator
// also reproduces Longcut's documented weakness — delays become inaccurate
// when many emulated connections are active concurrently — behind an
// explicit knob, because one Table 1 row depends on it.
package wantrace

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// The paper's four sites.
const (
	Tromso    = "tromso"
	Trondheim = "trondheim"
	Odense    = "odense"
	Aalborg   = "aalborg"
)

// Sites lists the trace sites in a stable order.
func Sites() []string { return []string{Tromso, Trondheim, Odense, Aalborg} }

// PairSpec is the base characteristics of one site pair.
type PairSpec struct {
	RTT       time.Duration // base round-trip time
	Bandwidth float64       // bytes per second
}

// pairKey is an order-independent site-pair key.
type pairKey struct{ a, b string }

func keyOf(a, b string) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// basePairs holds the published topology. Only the Tromsø-Aalborg figure
// (~36 ms, the maximum) is stated in the paper; the remaining pairs are
// set to geographically plausible values below that maximum.
var basePairs = map[pairKey]PairSpec{
	keyOf(Tromso, Trondheim):  {RTT: 14 * time.Millisecond, Bandwidth: 6e6},
	keyOf(Tromso, Odense):     {RTT: 30 * time.Millisecond, Bandwidth: 4e6},
	keyOf(Tromso, Aalborg):    {RTT: 36 * time.Millisecond, Bandwidth: 4e6},
	keyOf(Trondheim, Odense):  {RTT: 22 * time.Millisecond, Bandwidth: 5e6},
	keyOf(Trondheim, Aalborg): {RTT: 26 * time.Millisecond, Bandwidth: 5e6},
	keyOf(Odense, Aalborg):    {RTT: 8 * time.Millisecond, Bandwidth: 8e6},
}

// BasePair returns the base spec for a site pair.
func BasePair(a, b string) (PairSpec, error) {
	if a == b {
		return PairSpec{}, fmt.Errorf("wantrace: %q and %q are the same site", a, b)
	}
	s, ok := basePairs[keyOf(a, b)]
	if !ok {
		return PairSpec{}, fmt.Errorf("wantrace: unknown site pair %q-%q", a, b)
	}
	return s, nil
}

// Sample is one observation in a latency/bandwidth trace.
type Sample struct {
	RTT       time.Duration
	Bandwidth float64
}

// Trace is a sequence of per-pair samples, as collected by the paper's
// instrumented communication-intensive application.
type Trace struct {
	pairs map[pairKey][]Sample
}

// Generate builds a deterministic synthetic trace with n samples per site
// pair. Each sample jitters the base RTT by up to ±10% and the bandwidth
// by up to ±20%, mimicking the variation of a real WAN measurement run.
func Generate(seed int64, n int) *Trace {
	if n < 1 {
		n = 1
	}
	tr := &Trace{pairs: make(map[pairKey][]Sample)}
	for k, base := range basePairs {
		// Per-pair seed derived from the pair name keeps the trace
		// deterministic regardless of map iteration order.
		var pairSeed int64 = seed
		for _, c := range k.a + "|" + k.b {
			pairSeed = pairSeed*31 + int64(c)
		}
		rng := rand.New(rand.NewSource(pairSeed))
		samples := make([]Sample, n)
		for i := range samples {
			lj := 1 + (rng.Float64()*2-1)*0.10
			bj := 1 + (rng.Float64()*2-1)*0.20
			samples[i] = Sample{
				RTT:       time.Duration(float64(base.RTT) * lj),
				Bandwidth: base.Bandwidth * bj,
			}
		}
		tr.pairs[k] = samples
	}
	return tr
}

// Len returns the number of samples per pair.
func (t *Trace) Len() int {
	for _, s := range t.pairs {
		return len(s)
	}
	return 0
}

// SampleAt returns the i-th sample for a site pair, wrapping around the
// trace length.
func (t *Trace) SampleAt(a, b string, i int) (Sample, error) {
	s, ok := t.pairs[keyOf(a, b)]
	if !ok {
		return Sample{}, fmt.Errorf("wantrace: unknown site pair %q-%q", a, b)
	}
	if len(s) == 0 {
		return Sample{}, fmt.Errorf("wantrace: empty trace for %q-%q", a, b)
	}
	if i < 0 {
		i = -i
	}
	return s[i%len(s)], nil
}

// Emulator is the Longcut delay engine: given a message's site pair and
// size it returns the one-way delay a gateway should impose, walking the
// trace so repeated calls see the recorded variation.
type Emulator struct {
	trace *Trace

	// InaccuracyThreshold is the number of concurrently emulated
	// in-flight messages above which delays degrade (Longcut's documented
	// behaviour with many emulated connections). Zero disables the
	// effect.
	InaccuracyThreshold int
	// InaccuracyFactor scales the extra delay applied per in-flight
	// message above the threshold (fraction of base delay).
	InaccuracyFactor float64

	mu       sync.Mutex
	cursor   map[pairKey]int
	inflight atomic.Int64

	degraded atomic.Uint64 // messages that received degraded delays
}

// NewEmulator creates an emulator over the given trace.
func NewEmulator(trace *Trace) *Emulator {
	return &Emulator{
		trace:            trace,
		InaccuracyFactor: 0.05,
		cursor:           make(map[pairKey]int),
	}
}

// Delay returns the modelled one-way delay for a message of size bytes
// between two sites: half the sampled RTT plus size/bandwidth, degraded
// when more messages are in flight than the emulator can time accurately.
// Unknown pairs fall back to the worst base pair so traffic is never
// silently free.
func (e *Emulator) Delay(fromSite, toSite string, size int) time.Duration {
	k := keyOf(fromSite, toSite)
	e.mu.Lock()
	i := e.cursor[k]
	e.cursor[k] = i + 1
	e.mu.Unlock()

	s, err := e.trace.SampleAt(fromSite, toSite, i)
	if err != nil {
		s = Sample{RTT: 36 * time.Millisecond, Bandwidth: 4e6}
	}
	d := s.RTT / 2
	if s.Bandwidth > 0 && size > 0 {
		d += time.Duration(float64(size) / s.Bandwidth * float64(time.Second))
	}
	n := e.inflight.Add(1)
	defer e.inflight.Add(-1)
	if e.InaccuracyThreshold > 0 && int(n) > e.InaccuracyThreshold {
		over := float64(int(n) - e.InaccuracyThreshold)
		d += time.Duration(over * e.InaccuracyFactor * float64(d))
		e.degraded.Add(1)
	}
	return d
}

// Degraded reports how many delays were degraded by emulator overload.
func (e *Emulator) Degraded() uint64 { return e.degraded.Load() }

// MaxRTT returns the largest base RTT in the topology (Tromsø-Aalborg).
func MaxRTT() time.Duration {
	var max time.Duration
	for _, s := range basePairs {
		if s.RTT > max {
			max = s.RTT
		}
	}
	return max
}
