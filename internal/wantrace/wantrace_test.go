package wantrace

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSitesStable(t *testing.T) {
	s := Sites()
	if len(s) != 4 || s[0] != Tromso || s[3] != Aalborg {
		t.Fatalf("Sites = %v", s)
	}
}

func TestBasePairSymmetricLookup(t *testing.T) {
	a, err := BasePair(Tromso, Aalborg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BasePair(Aalborg, Tromso)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("pair not symmetric: %v vs %v", a, b)
	}
	if a.RTT != 36*time.Millisecond {
		t.Fatalf("Tromsø-Aalborg RTT = %v, paper says ~36ms", a.RTT)
	}
}

func TestBasePairErrors(t *testing.T) {
	if _, err := BasePair(Tromso, Tromso); err == nil {
		t.Fatal("same-site pair accepted")
	}
	if _, err := BasePair(Tromso, "oslo"); err == nil {
		t.Fatal("unknown site accepted")
	}
}

func TestMaxRTTIsTromsoAalborg(t *testing.T) {
	if MaxRTT() != 36*time.Millisecond {
		t.Fatalf("MaxRTT = %v", MaxRTT())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, 100)
	b := Generate(7, 100)
	for _, s1 := range Sites() {
		for _, s2 := range Sites() {
			if s1 == s2 {
				continue
			}
			for i := 0; i < 100; i += 13 {
				x, err := a.SampleAt(s1, s2, i)
				if err != nil {
					t.Fatal(err)
				}
				y, _ := b.SampleAt(s1, s2, i)
				if x != y {
					t.Fatalf("trace not deterministic at %s-%s[%d]", s1, s2, i)
				}
			}
		}
	}
	if a.Len() != 100 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestGenerateJitterBounds(t *testing.T) {
	tr := Generate(1, 500)
	base, _ := BasePair(Tromso, Aalborg)
	for i := 0; i < 500; i++ {
		s, err := tr.SampleAt(Tromso, Aalborg, i)
		if err != nil {
			t.Fatal(err)
		}
		if s.RTT < time.Duration(float64(base.RTT)*0.89) || s.RTT > time.Duration(float64(base.RTT)*1.11) {
			t.Fatalf("sample %d RTT %v outside ±10%% of %v", i, s.RTT, base.RTT)
		}
		if s.Bandwidth < base.Bandwidth*0.79 || s.Bandwidth > base.Bandwidth*1.21 {
			t.Fatalf("sample %d bandwidth %v outside ±20%% of %v", i, s.Bandwidth, base.Bandwidth)
		}
	}
}

func TestGenerateClampsN(t *testing.T) {
	if Generate(1, 0).Len() != 1 {
		t.Fatal("n=0 not clamped to 1")
	}
}

func TestSampleAtWrapsAndHandlesNegative(t *testing.T) {
	tr := Generate(3, 10)
	a, _ := tr.SampleAt(Tromso, Odense, 3)
	b, _ := tr.SampleAt(Tromso, Odense, 13)
	if a != b {
		t.Fatal("SampleAt does not wrap")
	}
	if _, err := tr.SampleAt(Tromso, Odense, -5); err != nil {
		t.Fatalf("negative index: %v", err)
	}
	if _, err := tr.SampleAt(Tromso, "oslo", 0); err == nil {
		t.Fatal("unknown pair accepted")
	}
}

func TestEmulatorDelayInExpectedRange(t *testing.T) {
	e := NewEmulator(Generate(11, 64))
	for i := 0; i < 64; i++ {
		d := e.Delay(Tromso, Aalborg, 8)
		// One-way = RTT/2 with ±10% jitter, size term negligible.
		if d < 15*time.Millisecond || d > 21*time.Millisecond {
			t.Fatalf("delay %d = %v, outside [15ms,21ms]", i, d)
		}
	}
	if e.Degraded() != 0 {
		t.Fatalf("Degraded = %d with no threshold set", e.Degraded())
	}
}

func TestEmulatorSizeTerm(t *testing.T) {
	e := NewEmulator(Generate(11, 4))
	small := e.Delay(Odense, Aalborg, 8)
	e2 := NewEmulator(Generate(11, 4))
	big := e2.Delay(Odense, Aalborg, 1<<20)
	if big <= small {
		t.Fatalf("1MB delay %v <= 8B delay %v", big, small)
	}
}

func TestEmulatorUnknownPairFallsBack(t *testing.T) {
	e := NewEmulator(Generate(1, 4))
	d := e.Delay("oslo", "bergen", 8)
	if d < 17*time.Millisecond {
		t.Fatalf("fallback delay = %v, want >= 17ms (worst pair)", d)
	}
}

func TestEmulatorDegradationCountsOverThreshold(t *testing.T) {
	e := NewEmulator(Generate(1, 4))
	e.InaccuracyThreshold = 1
	done := make(chan time.Duration, 2)
	// Two concurrent delays: the second in flight exceeds the threshold.
	// Delay itself doesn't sleep, so force overlap via a wrapper that
	// holds the inflight counter... instead call sequentially and check
	// no degradation, which pins the accounting semantics.
	go func() { done <- e.Delay(Tromso, Aalborg, 8) }()
	go func() { done <- e.Delay(Tromso, Aalborg, 8) }()
	<-done
	<-done
	// Sequential calls never degrade.
	e2 := NewEmulator(Generate(1, 4))
	e2.InaccuracyThreshold = 1
	for i := 0; i < 10; i++ {
		e2.Delay(Tromso, Aalborg, 8)
	}
	if e2.Degraded() != 0 {
		t.Fatalf("sequential calls degraded %d times", e2.Degraded())
	}
}

// Property: delay is always at least the jittered minimum one-way latency
// and grows monotonically with size for a fixed cursor position.
func TestQuickDelayPositive(t *testing.T) {
	tr := Generate(5, 32)
	f := func(sz uint16) bool {
		e := NewEmulator(tr)
		return e.Delay(Trondheim, Odense, int(sz)) >= 9*time.Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
