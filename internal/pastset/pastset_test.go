package pastset

//lint:file-allow wallclock blocking-read tests need real timeouts to catch a hang

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func mustWrite(t *testing.T, e *Element, data []byte) uint64 {
	t.Helper()
	seq, err := e.Write(data)
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	return seq
}

func TestNewElementRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1, -100} {
		if _, err := NewElement("x", c); err == nil {
			t.Errorf("capacity %d: want error", c)
		}
	}
}

func TestMustNewElementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic")
		}
	}()
	MustNewElement("x", 0)
}

func TestWriteAssignsMonotonicSeq(t *testing.T) {
	e := MustNewElement("e", 4)
	for i := 0; i < 10; i++ {
		seq := mustWrite(t, e, []byte{byte(i)})
		if seq != uint64(i) {
			t.Fatalf("write %d: seq = %d", i, seq)
		}
	}
}

func TestBoundedOverwriteDiscardsOldest(t *testing.T) {
	e := MustNewElement("e", 3)
	for i := 0; i < 5; i++ {
		mustWrite(t, e, []byte{byte(i)})
	}
	st := e.Stats()
	if st.Written != 5 || st.Overwritten != 2 || st.Retained != 3 {
		t.Fatalf("stats = %+v", st)
	}
	c := e.NewCursor()
	for want := 2; want < 5; want++ {
		tu, err := c.TryNext()
		if err != nil {
			t.Fatalf("TryNext: %v", err)
		}
		if tu.Data[0] != byte(want) {
			t.Fatalf("got tuple %d, want %d", tu.Data[0], want)
		}
	}
	if _, err := c.TryNext(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestCursorSkipAccounting(t *testing.T) {
	e := MustNewElement("e", 2)
	c := e.NewCursor()
	for i := 0; i < 6; i++ {
		mustWrite(t, e, []byte{byte(i)})
	}
	var got []byte
	for {
		tu, err := c.TryNext()
		if err != nil {
			break
		}
		got = append(got, tu.Data[0])
	}
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("delivered %v, want [4 5]", got)
	}
	if c.Skipped() != 4 {
		t.Fatalf("Skipped = %d, want 4", c.Skipped())
	}
	if c.Read() != 2 {
		t.Fatalf("Read = %d, want 2", c.Read())
	}
	if r := c.Rate(); r != 2.0/6.0 {
		t.Fatalf("Rate = %v, want %v", r, 2.0/6.0)
	}
}

func TestCursorRateNoTraffic(t *testing.T) {
	e := MustNewElement("e", 2)
	c := e.NewCursor()
	if r := c.Rate(); r != 1 {
		t.Fatalf("Rate with no traffic = %v, want 1", r)
	}
}

func TestCursorAtEndSkipsHistory(t *testing.T) {
	e := MustNewElement("e", 8)
	mustWrite(t, e, []byte{1})
	mustWrite(t, e, []byte{2})
	c := e.NewCursorAtEnd()
	if _, err := c.TryNext(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	mustWrite(t, e, []byte{3})
	tu, err := c.TryNext()
	if err != nil || tu.Data[0] != 3 {
		t.Fatalf("got %v %v, want tuple 3", tu, err)
	}
	if c.Skipped() != 0 {
		t.Fatalf("Skipped = %d, want 0 (history skipped before cursor start does not count)", c.Skipped())
	}
}

func TestBlockingNextWakesOnWrite(t *testing.T) {
	e := MustNewElement("e", 2)
	c := e.NewCursor()
	done := make(chan Tuple, 1)
	go func() {
		tu, err := c.Next()
		if err != nil {
			t.Errorf("Next: %v", err)
		}
		done <- tu
	}()
	time.Sleep(5 * time.Millisecond)
	mustWrite(t, e, []byte{42})
	select {
	case tu := <-done:
		if tu.Data[0] != 42 {
			t.Fatalf("got %v", tu)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked reader not woken by write")
	}
}

func TestBlockingNextWakesOnClose(t *testing.T) {
	e := MustNewElement("e", 2)
	c := e.NewCursor()
	errc := make(chan error, 1)
	go func() {
		_, err := c.Next()
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	e.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked reader not woken by close")
	}
}

func TestCloseDrainsRetainedThenErrClosed(t *testing.T) {
	e := MustNewElement("e", 4)
	mustWrite(t, e, []byte{1})
	mustWrite(t, e, []byte{2})
	e.Close()
	if _, err := e.Write([]byte{3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	c := e.NewCursor()
	for i := 1; i <= 2; i++ {
		tu, err := c.Next()
		if err != nil || tu.Data[0] != byte(i) {
			t.Fatalf("drain %d: %v %v", i, tu, err)
		}
	}
	if _, err := c.Next(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after drain: %v", err)
	}
	if !e.Closed() {
		t.Fatal("Closed() = false")
	}
}

func TestLatest(t *testing.T) {
	e := MustNewElement("e", 2)
	if _, err := e.Latest(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Latest empty: %v", err)
	}
	mustWrite(t, e, []byte{1})
	mustWrite(t, e, []byte{2})
	mustWrite(t, e, []byte{3})
	tu, err := e.Latest()
	if err != nil || tu.Data[0] != 3 {
		t.Fatalf("Latest = %v %v", tu, err)
	}
	e.Close()
	// Latest still returns retained newest after close.
	if tu, err = e.Latest(); err != nil || tu.Data[0] != 3 {
		t.Fatalf("Latest after close = %v %v", tu, err)
	}
}

func TestLatestClosedEmpty(t *testing.T) {
	e := MustNewElement("e", 2)
	e.Close()
	if _, err := e.Latest(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestDrainInto(t *testing.T) {
	e := MustNewElement("e", 8)
	for i := 0; i < 5; i++ {
		mustWrite(t, e, []byte{byte(i)})
	}
	c := e.NewCursor()
	got := c.DrainInto(nil)
	if len(got) != 5 {
		t.Fatalf("drained %d tuples", len(got))
	}
	for i, tu := range got {
		if tu.Data[0] != byte(i) || tu.Seq != uint64(i) {
			t.Fatalf("tuple %d = %+v", i, tu)
		}
	}
	if got = c.DrainInto(got[:0]); len(got) != 0 {
		t.Fatalf("second drain returned %d tuples", len(got))
	}
}

func TestLag(t *testing.T) {
	e := MustNewElement("e", 4)
	c := e.NewCursor()
	if c.Lag() != 0 {
		t.Fatalf("lag = %d", c.Lag())
	}
	for i := 0; i < 3; i++ {
		mustWrite(t, e, nil)
	}
	if c.Lag() != 3 {
		t.Fatalf("lag = %d, want 3", c.Lag())
	}
	if _, err := c.TryNext(); err != nil {
		t.Fatal(err)
	}
	if c.Lag() != 2 {
		t.Fatalf("lag = %d, want 2", c.Lag())
	}
	// Overflow: lag never exceeds capacity.
	for i := 0; i < 10; i++ {
		mustWrite(t, e, nil)
	}
	if c.Lag() != 4 {
		t.Fatalf("lag after overflow = %d, want 4", c.Lag())
	}
}

func TestMultipleCursorsIndependent(t *testing.T) {
	e := MustNewElement("e", 8)
	c1 := e.NewCursor()
	c2 := e.NewCursor()
	for i := 0; i < 4; i++ {
		mustWrite(t, e, []byte{byte(i)})
	}
	for i := 0; i < 4; i++ {
		if tu, err := c1.TryNext(); err != nil || tu.Data[0] != byte(i) {
			t.Fatalf("c1 %d: %v %v", i, tu, err)
		}
	}
	for i := 0; i < 4; i++ {
		if tu, err := c2.TryNext(); err != nil || tu.Data[0] != byte(i) {
			t.Fatalf("c2 %d: %v %v", i, tu, err)
		}
	}
}

func TestConcurrentWritersSingleReader(t *testing.T) {
	const writers, perWriter = 8, 500
	e := MustNewElement("e", writers*perWriter) // big enough: no loss
	c := e.NewCursor()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := e.Write([]byte{byte(w)}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	e.Close()
	counts := make(map[byte]int)
	for {
		tu, err := c.Next()
		if err != nil {
			break
		}
		counts[tu.Data[0]]++
	}
	for w := 0; w < writers; w++ {
		if counts[byte(w)] != perWriter {
			t.Fatalf("writer %d: delivered %d tuples, want %d", w, counts[byte(w)], perWriter)
		}
	}
	if c.Skipped() != 0 {
		t.Fatalf("skipped %d with adequate capacity", c.Skipped())
	}
}

func TestConcurrentReadersEachSeeFullStream(t *testing.T) {
	const readers, writes = 4, 1000
	e := MustNewElement("e", writes)
	var wg sync.WaitGroup
	totals := make([]uint64, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := e.NewCursor()
			for {
				if _, err := c.Next(); err != nil {
					break
				}
			}
			totals[r] = c.Read()
		}(r)
	}
	for i := 0; i < writes; i++ {
		mustWrite(t, e, nil)
	}
	e.Close()
	wg.Wait()
	for r, n := range totals {
		if n != writes {
			t.Fatalf("reader %d saw %d tuples, want %d", r, n, writes)
		}
	}
}

// Property: for any capacity >= 1 and write count, conservation holds:
// written == retained + overwritten, retained <= capacity, and a fresh
// cursor delivers exactly the retained suffix in order.
func TestQuickConservation(t *testing.T) {
	f := func(capRaw uint8, nRaw uint16) bool {
		capacity := int(capRaw%64) + 1
		n := int(nRaw % 2048)
		e := MustNewElement("q", capacity)
		for i := 0; i < n; i++ {
			if _, err := e.Write([]byte{byte(i)}); err != nil {
				return false
			}
		}
		st := e.Stats()
		if st.Written != uint64(n) {
			return false
		}
		if st.Retained > capacity {
			return false
		}
		if uint64(st.Retained)+st.Overwritten != st.Written {
			return false
		}
		c := e.NewCursor()
		want := n - st.Retained
		for {
			tu, err := c.TryNext()
			if errors.Is(err, ErrEmpty) {
				break
			}
			if err != nil {
				return false
			}
			if tu.Seq != uint64(want) || tu.Data[0] != byte(want) {
				return false
			}
			want++
		}
		return want == n && int(c.Read()) == st.Retained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: read + skipped of a cursor created before any write equals
// total written, for any interleaving of write bursts and drains.
func TestQuickCursorAccounting(t *testing.T) {
	f := func(capRaw uint8, bursts []uint8) bool {
		capacity := int(capRaw%16) + 1
		e := MustNewElement("q", capacity)
		c := e.NewCursor()
		var written uint64
		for _, b := range bursts {
			n := int(b % 32)
			for i := 0; i < n; i++ {
				e.Write(nil)
				written++
			}
			if b%2 == 0 {
				c.DrainInto(nil)
			}
		}
		c.DrainInto(nil)
		return c.Read()+c.Skipped() == written
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryCreateLookupRemove(t *testing.T) {
	r := NewRegistry()
	e, err := r.Create("a", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("a", 4); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	got, err := r.Lookup("a")
	if err != nil || got != e {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := r.Lookup("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing lookup: %v", err)
	}
	if err := r.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if !e.Closed() {
		t.Fatal("Remove did not close element")
	}
	if err := r.Remove("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestRegistryNamesAndCloseAll(t *testing.T) {
	r := NewRegistry()
	var elems []*Element
	for i := 0; i < 5; i++ {
		e, err := r.Create(fmt.Sprintf("e%d", i), 2)
		if err != nil {
			t.Fatal(err)
		}
		elems = append(elems, e)
	}
	if n := len(r.Names()); n != 5 {
		t.Fatalf("Names() returned %d entries", n)
	}
	r.CloseAll()
	for i, e := range elems {
		if !e.Closed() {
			t.Fatalf("element %d not closed", i)
		}
	}
}

func TestRegistryCreateBadCapacity(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Create("bad", 0); err == nil {
		t.Fatal("want error for capacity 0")
	}
}

// TestFixedElementCopySemantics pins the fixed-record ownership rules:
// writes copy in (the caller's buffer is reusable immediately) and reads
// copy out (an overwrite of the arena slot never mutates a delivered
// payload).
func TestFixedElementCopySemantics(t *testing.T) {
	e, err := NewElementFixed("fixed", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.RecordSize() != 4 {
		t.Fatalf("RecordSize = %d", e.RecordSize())
	}
	scratch := []byte{1, 1, 1, 1}
	if _, err := e.WriteCopy(scratch); err != nil {
		t.Fatal(err)
	}
	// Reusing the caller buffer must not affect the stored record.
	copy(scratch, []byte{9, 9, 9, 9})
	if _, err := e.WriteCopy(scratch); err != nil {
		t.Fatal(err)
	}
	c := e.NewCursor()
	first, err := c.TryNext()
	if err != nil {
		t.Fatal(err)
	}
	if string(first.Data) != string([]byte{1, 1, 1, 1}) {
		t.Fatalf("first record = %v", first.Data)
	}
	// Overwrite the first record's arena slot (capacity 2: two more
	// writes lap it); a batch drained earlier must not change.
	got := append([]byte(nil), first.Data...)
	e.WriteCopy([]byte{7, 7, 7, 7})
	e.WriteCopy([]byte{8, 8, 8, 8})
	if string(first.Data) != string(got) {
		// first.Data is cursor-owned; the arena overwrite above must
		// not reach it.
		t.Fatalf("delivered payload mutated by overwrite: %v", first.Data)
	}
	// Size and mode guards.
	if _, err := e.WriteCopy([]byte{1, 2}); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := e.Write([]byte{1, 2, 3}); err == nil {
		t.Fatal("Write with wrong size accepted on fixed element")
	}
	v := MustNewElement("var", 2)
	if _, err := v.WriteCopy([]byte{1}); err == nil {
		t.Fatal("WriteCopy on variable element accepted")
	}
}

// TestFixedElementDrainInto checks that a drained batch shares one
// cursor-owned buffer and stays intact until the next read.
func TestFixedElementDrainInto(t *testing.T) {
	e, err := NewElementFixed("fixed", 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 5; i++ {
		e.Write([]byte{i, i})
	}
	c := e.NewCursor()
	batch := c.DrainInto(nil)
	if len(batch) != 5 {
		t.Fatalf("drained %d", len(batch))
	}
	for i, tu := range batch {
		if tu.Seq != uint64(i) || tu.Data[0] != byte(i) || tu.Data[1] != byte(i) {
			t.Fatalf("tuple %d = %+v", i, tu)
		}
	}
	// Steady state: the write-then-drain cycle does not allocate once
	// the cursor's copy-out buffer is warm.
	rec := []byte{0, 0}
	if avg := testing.AllocsPerRun(50, func() {
		for i := byte(0); i < 5; i++ {
			rec[0], rec[1] = i, i
			if _, err := e.WriteCopy(rec); err != nil {
				t.Fatal(err)
			}
		}
		batch = c.DrainInto(batch[:0])
		if len(batch) != 5 {
			t.Fatalf("drained %d", len(batch))
		}
	}); avg != 0 {
		t.Fatalf("warm write+DrainInto cycle allocates %.2f allocs/op", avg)
	}
}

// TestDrainBytesInto covers the raw batch drain both element modes use.
func TestDrainBytesInto(t *testing.T) {
	for _, fixed := range []bool{true, false} {
		var e *Element
		if fixed {
			e, _ = NewElementFixed("f", 16, 2)
		} else {
			e = MustNewElement("v", 16)
		}
		for i := byte(0); i < 6; i++ {
			e.Write([]byte{i, i})
		}
		c := e.NewCursor()
		buf, n, err := c.DrainBytesInto(nil, 4, 2)
		if err != nil || n != 4 || len(buf) != 8 {
			t.Fatalf("fixed=%v: drain = %d records %d bytes, %v", fixed, n, len(buf), err)
		}
		for i := byte(0); i < 4; i++ {
			if buf[2*i] != i || buf[2*i+1] != i {
				t.Fatalf("fixed=%v: bytes %v", fixed, buf)
			}
		}
		buf, n, err = c.DrainBytesInto(buf[:0], 0, 2)
		if err != nil || n != 2 || len(buf) != 4 {
			t.Fatalf("fixed=%v: second drain = %d records, %v", fixed, n, err)
		}
		if c.Read() != 6 {
			t.Fatalf("fixed=%v: cursor read %d", fixed, c.Read())
		}
	}
	// Record-size mismatch: the fixed element rejects the whole drain,
	// the variable element stops at the offending record.
	f, _ := NewElementFixed("f2", 4, 2)
	f.Write([]byte{1, 1})
	if _, n, err := f.NewCursor().DrainBytesInto(nil, 0, 3); err == nil || n != 0 {
		t.Fatal("record-size mismatch accepted on fixed element")
	}
	v := MustNewElement("v2", 4)
	v.Write([]byte{1, 1})
	v.Write([]byte{2, 2, 2})
	cur := v.NewCursor()
	buf, n, err := cur.DrainBytesInto(nil, 0, 2)
	if err == nil || n != 1 || len(buf) != 2 {
		t.Fatalf("ragged variable drain = %d records %v bytes, %v", n, buf, err)
	}
}

// TestFixedWriteCopyZeroAlloc pins the arena write path at zero
// allocations, overwrites included.
func TestFixedWriteCopyZeroAlloc(t *testing.T) {
	e, err := NewElementFixed("fixed", 32, 28)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 28)
	if avg := testing.AllocsPerRun(1000, func() {
		if _, err := e.WriteCopy(rec); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("WriteCopy allocates %.2f allocs/op, want 0", avg)
	}
}

func BenchmarkElementWrite(b *testing.B) {
	e := MustNewElement("b", 4096)
	data := make([]byte, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Write(data)
	}
}

func BenchmarkCursorTryNext(b *testing.B) {
	e := MustNewElement("b", 1<<16)
	for i := 0; i < 1<<16; i++ {
		e.Write(nil)
	}
	c := e.NewCursor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.TryNext(); err != nil {
			b.StopTimer()
			c = e.NewCursor()
			b.StartTimer()
		}
	}
}
