// Package pastset implements the PastSet structured shared memory system
// that the PATHS communication system and EventSpace are layered on.
//
// PastSet (Vinter, 1999) lets threads communicate by reading and writing
// tuples to named shared-memory buffers called elements. This reproduction
// implements the subset the paper depends on: bounded elements that discard
// the oldest tuple when a capacity threshold is exceeded, blocking writes
// (mutex + memory copy), blocking reads with per-reader cursors, and a
// per-host registry of elements.
//
// The gather-rate accounting central to the paper's Tables 1-3 lives here:
// each element counts tuples written and tuples lost to overwrite, and each
// cursor counts tuples delivered and tuples skipped because the reader fell
// behind the retained window.
package pastset

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"eventspace/internal/vclock"
)

// Common errors returned by element operations.
var (
	// ErrClosed is returned once an element has been closed and no
	// further tuples will arrive.
	ErrClosed = errors.New("pastset: element closed")
	// ErrEmpty is returned by non-blocking reads when no tuple is ready.
	ErrEmpty = errors.New("pastset: element empty")
	// ErrExists is returned when creating an element under a taken name.
	ErrExists = errors.New("pastset: element already exists")
	// ErrNotFound is returned when looking up an unknown element.
	ErrNotFound = errors.New("pastset: element not found")
)

// Tuple is the unit of storage: an opaque payload stamped with the
// element-assigned sequence number. Payload bytes are owned by the element
// after Write and by the reader after a read; neither side may mutate them
// afterwards.
type Tuple struct {
	Seq  uint64
	Data []byte
}

// Stats is a snapshot of an element's traffic counters.
type Stats struct {
	Written     uint64 // tuples ever written
	Overwritten uint64 // tuples lost to the bounded-buffer overwrite policy
	Retained    int    // tuples currently held
	Capacity    int
}

// Element is a named bounded tuple buffer. The zero value is not usable;
// create elements with NewElement or Registry.Create.
type Element struct {
	name string
	cap  int

	mu     sync.Mutex
	cond   *vclock.Cond
	ring   []Tuple
	first  uint64 // sequence number of the oldest retained tuple
	next   uint64 // sequence number the next write will receive
	lost   uint64 // tuples discarded by the overwrite policy
	closed bool
}

// NewElement creates a bounded element. Capacity must be at least 1.
func NewElement(name string, capacity int) (*Element, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("pastset: element %q: capacity %d < 1", name, capacity)
	}
	e := &Element{name: name, cap: capacity, ring: make([]Tuple, capacity)}
	e.cond = vclock.NewCond(&e.mu)
	return e, nil
}

// MustNewElement is NewElement that panics on a bad capacity; for use in
// topology construction where capacities are compile-time constants.
func MustNewElement(name string, capacity int) *Element {
	e, err := NewElement(name, capacity)
	if err != nil {
		panic(err)
	}
	return e
}

// Name returns the element's name.
func (e *Element) Name() string { return e.name }

// Capacity returns the overwrite threshold.
func (e *Element) Capacity() int { return e.cap }

// Write appends a tuple, discarding the oldest retained tuple if the
// element is at capacity, and returns the assigned sequence number.
// This is the paper's blocking PastSet write: a mutex acquisition, a small
// memory copy, and a wakeup of blocked readers.
func (e *Element) Write(data []byte) (uint64, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	seq := e.next
	if int(e.next-e.first) == e.cap {
		// Overwrite the oldest tuple.
		e.first++
		e.lost++
	}
	e.ring[seq%uint64(e.cap)] = Tuple{Seq: seq, Data: data}
	e.next++
	e.cond.Broadcast()
	e.mu.Unlock()
	return seq, nil
}

// Len reports the number of retained tuples.
func (e *Element) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return int(e.next - e.first)
}

// Stats returns a snapshot of the element's counters.
func (e *Element) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Written:     e.next,
		Overwritten: e.lost,
		Retained:    int(e.next - e.first),
		Capacity:    e.cap,
	}
}

// Latest returns the newest retained tuple without consuming anything.
func (e *Element) Latest() (Tuple, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.next == e.first {
		if e.closed {
			return Tuple{}, ErrClosed
		}
		return Tuple{}, ErrEmpty
	}
	return e.ring[(e.next-1)%uint64(e.cap)], nil
}

// Close marks the element closed and wakes all blocked readers. Subsequent
// writes fail with ErrClosed; reads drain retained tuples and then fail
// with ErrClosed.
func (e *Element) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Closed reports whether Close has been called.
func (e *Element) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// at returns the retained tuple with sequence number seq; caller holds mu.
func (e *Element) at(seq uint64) Tuple {
	return e.ring[seq%uint64(e.cap)]
}

// Cursor is a per-reader position into an element's tuple stream. Cursors
// are independent: every reader sees every tuple that is still retained
// when it reads. A cursor that falls behind the retained window skips
// forward to the oldest retained tuple and records the gap.
//
// A Cursor must not be used for reading from multiple goroutines, but the
// Read/Skipped/Rate counters may be sampled concurrently (monitors poll
// gather rates while the reader thread runs).
type Cursor struct {
	e       *Element
	pos     uint64        // next sequence number to deliver
	read    atomic.Uint64 // tuples delivered through this cursor
	skipped atomic.Uint64 // tuples this cursor missed due to overwrite
}

// NewCursor returns a cursor positioned at the oldest retained tuple.
func (e *Element) NewCursor() *Cursor {
	e.mu.Lock()
	defer e.mu.Unlock()
	return &Cursor{e: e, pos: e.first}
}

// NewCursorAtEnd returns a cursor that will only see tuples written after
// this call.
func (e *Element) NewCursorAtEnd() *Cursor {
	e.mu.Lock()
	defer e.mu.Unlock()
	return &Cursor{e: e, pos: e.next}
}

// Element returns the element this cursor reads from.
func (c *Cursor) Element() *Element { return c.e }

// advance normalizes the cursor against the retained window; caller holds mu.
func (c *Cursor) advance() {
	if c.pos < c.e.first {
		c.skipped.Add(c.e.first - c.pos)
		c.pos = c.e.first
	}
}

// TryNext returns the next tuple without blocking. It returns ErrEmpty when
// the reader has consumed everything currently retained, and ErrClosed when
// the element is closed and drained.
func (c *Cursor) TryNext() (Tuple, error) {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	c.advance()
	if c.pos == c.e.next {
		if c.e.closed {
			return Tuple{}, ErrClosed
		}
		return Tuple{}, ErrEmpty
	}
	t := c.e.at(c.pos)
	c.pos++
	c.read.Add(1)
	return t, nil
}

// Next returns the next tuple, blocking until one is available or the
// element is closed and drained.
func (c *Cursor) Next() (Tuple, error) {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	for {
		c.advance()
		if c.pos < c.e.next {
			t := c.e.at(c.pos)
			c.pos++
			c.read.Add(1)
			return t, nil
		}
		if c.e.closed {
			return Tuple{}, ErrClosed
		}
		c.e.cond.Wait()
	}
}

// DrainInto appends all currently retained unread tuples to dst and returns
// the extended slice. It never blocks.
func (c *Cursor) DrainInto(dst []Tuple) []Tuple {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	c.advance()
	for c.pos < c.e.next {
		dst = append(dst, c.e.at(c.pos))
		c.pos++
		c.read.Add(1)
	}
	return dst
}

// Read reports the number of tuples delivered through this cursor.
func (c *Cursor) Read() uint64 { return c.read.Load() }

// Skipped reports the number of tuples this cursor missed because they were
// overwritten before it read them.
func (c *Cursor) Skipped() uint64 { return c.skipped.Load() }

// Rate returns the fraction of the tuple stream this cursor observed:
// delivered / (delivered + skipped). A reader that kept up fully returns 1.
// With no traffic it returns 1 (nothing was missed).
func (c *Cursor) Rate() float64 {
	read := c.read.Load()
	total := read + c.skipped.Load()
	if total == 0 {
		return 1
	}
	return float64(read) / float64(total)
}

// Lag reports how many retained tuples the cursor has not yet delivered.
func (c *Cursor) Lag() int {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	pos := c.pos
	if pos < c.e.first {
		pos = c.e.first
	}
	return int(c.e.next - pos)
}

// Registry is a per-host namespace of elements: the host's PastSet server.
type Registry struct {
	mu    sync.RWMutex
	elems map[string]*Element
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{elems: make(map[string]*Element)}
}

// Create creates and registers a new element.
func (r *Registry) Create(name string, capacity int) (*Element, error) {
	e, err := NewElement(name, capacity)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.elems[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	r.elems[name] = e
	return e, nil
}

// Lookup finds a registered element by name.
func (r *Registry) Lookup(name string) (*Element, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.elems[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e, nil
}

// Names returns the registered element names in unspecified order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.elems))
	for n := range r.elems {
		out = append(out, n)
	}
	return out
}

// Remove unregisters and closes the named element.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	e, ok := r.elems[name]
	if ok {
		delete(r.elems, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.Close()
	return nil
}

// CloseAll closes every registered element, waking all blocked readers.
func (r *Registry) CloseAll() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.elems {
		e.Close()
	}
}
