// Package pastset implements the PastSet structured shared memory system
// that the PATHS communication system and EventSpace are layered on.
//
// PastSet (Vinter, 1999) lets threads communicate by reading and writing
// tuples to named shared-memory buffers called elements. This reproduction
// implements the subset the paper depends on: bounded elements that discard
// the oldest tuple when a capacity threshold is exceeded, blocking writes
// (mutex + memory copy), blocking reads with per-reader cursors, and a
// per-host registry of elements.
//
// The gather-rate accounting central to the paper's Tables 1-3 lives here:
// each element counts tuples written and tuples lost to overwrite, and each
// cursor counts tuples delivered and tuples skipped because the reader fell
// behind the retained window.
package pastset

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"eventspace/internal/vclock"
)

// Common errors returned by element operations.
var (
	// ErrClosed is returned once an element has been closed and no
	// further tuples will arrive.
	ErrClosed = errors.New("pastset: element closed")
	// ErrEmpty is returned by non-blocking reads when no tuple is ready.
	ErrEmpty = errors.New("pastset: element empty")
	// ErrExists is returned when creating an element under a taken name.
	ErrExists = errors.New("pastset: element already exists")
	// ErrNotFound is returned when looking up an unknown element.
	ErrNotFound = errors.New("pastset: element not found")
	// ErrNotFixed is returned by fixed-record operations on an element
	// that was not created with a fixed record size.
	ErrNotFixed = errors.New("pastset: element has no fixed record size")
	// ErrRecordSize is returned when a payload's size does not match a
	// fixed element's record size.
	ErrRecordSize = errors.New("pastset: record size mismatch")
)

// Tuple is the unit of storage: an opaque payload stamped with the
// element-assigned sequence number.
//
// Ownership of the payload bytes depends on how the element was created.
// For variable elements (NewElement), payload bytes are owned by the
// element after Write and by the reader after a read; neither side may
// mutate them afterwards. For fixed-record elements (NewElementFixed),
// writes copy into an element-owned arena and reads copy back out into
// cursor-owned storage: a returned payload is valid only until the next
// read through the same cursor, and writers may freely reuse their input
// buffer — the zero-allocation contract of the collector write path.
type Tuple struct {
	Seq  uint64
	Data []byte
}

// Stats is a snapshot of an element's traffic counters.
type Stats struct {
	Written     uint64 // tuples ever written
	Overwritten uint64 // tuples lost to the bounded-buffer overwrite policy
	Retained    int    // tuples currently held
	Capacity    int
}

// Element is a named bounded tuple buffer. The zero value is not usable;
// create elements with NewElement or Registry.Create.
type Element struct {
	name    string
	cap     int
	recSize int // fixed record size; 0 for variable elements

	mu     sync.Mutex
	cond   *vclock.Cond
	ring   []Tuple
	arena  []byte // slot storage for fixed elements (cap * recSize bytes)
	first  uint64 // sequence number of the oldest retained tuple
	next   uint64 // sequence number the next write will receive
	lost   uint64 // tuples discarded by the overwrite policy
	closed bool
}

// NewElement creates a bounded element. Capacity must be at least 1.
func NewElement(name string, capacity int) (*Element, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("pastset: element %q: capacity %d < 1", name, capacity)
	}
	e := &Element{name: name, cap: capacity, ring: make([]Tuple, capacity)}
	e.cond = vclock.NewCond(&e.mu)
	return e, nil
}

// NewElementFixed creates a bounded element whose records all have the
// same size. Fixed elements store payloads in one preallocated arena:
// WriteCopy copies the record in without retaining the caller's buffer,
// and reads copy it back out, so the steady-state write path performs no
// allocation at all (the trace-buffer hot path, DESIGN.md §12).
func NewElementFixed(name string, capacity, recSize int) (*Element, error) {
	if recSize < 1 {
		return nil, fmt.Errorf("pastset: element %q: record size %d < 1", name, recSize)
	}
	e, err := NewElement(name, capacity)
	if err != nil {
		return nil, err
	}
	e.recSize = recSize
	e.arena = make([]byte, capacity*recSize)
	// Ring slots alias their arena slot permanently; writes refresh the
	// bytes and the sequence number in place.
	for i := range e.ring {
		e.ring[i].Data = e.arena[i*recSize : (i+1)*recSize : (i+1)*recSize]
	}
	return e, nil
}

// RecordSize reports the element's fixed record size (0: variable).
func (e *Element) RecordSize() int { return e.recSize }

// MustNewElement is NewElement that panics on a bad capacity; for use in
// topology construction where capacities are compile-time constants.
func MustNewElement(name string, capacity int) *Element {
	e, err := NewElement(name, capacity)
	if err != nil {
		panic(err)
	}
	return e
}

// Name returns the element's name.
func (e *Element) Name() string { return e.name }

// Capacity returns the overwrite threshold.
func (e *Element) Capacity() int { return e.cap }

// Write appends a tuple, discarding the oldest retained tuple if the
// element is at capacity, and returns the assigned sequence number.
// This is the paper's blocking PastSet write: a mutex acquisition, a small
// memory copy, and a wakeup of blocked readers.
//
// Variable elements retain data itself; fixed elements copy it into the
// arena (the caller keeps ownership). Hot paths writing to fixed elements
// should prefer WriteCopy, whose argument provably does not escape, so a
// stack-allocated scratch buffer stays on the stack.
func (e *Element) Write(data []byte) (uint64, error) {
	if e.recSize != 0 {
		return e.WriteCopy(data)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	seq := e.advanceLocked()
	e.ring[seq%uint64(e.cap)] = Tuple{Seq: seq, Data: data}
	e.cond.Broadcast()
	e.mu.Unlock()
	return seq, nil
}

// WriteCopy appends one fixed-size record by copying it into the
// element's arena. It never retains data — callers may reuse the buffer
// immediately — and performs no allocation; together with a stack scratch
// buffer on the caller's side this makes the whole tuple write
// allocation-free. len(data) must equal the element's record size.
//
//lint:hotpath fixed-record write; the no-retention/no-alloc contract collectors rely on
func (e *Element) WriteCopy(data []byte) (uint64, error) {
	if e.recSize == 0 {
		//lint:allow hotalloc misuse error: fires only on a non-fixed element, never per record
		return 0, fmt.Errorf("%w: %q", ErrNotFixed, e.name)
	}
	if len(data) != e.recSize {
		//lint:allow hotalloc misuse error: a size mismatch is a caller bug, not a per-record path
		return 0, fmt.Errorf("%w: %q: %d bytes, want %d", ErrRecordSize, e.name, len(data), e.recSize)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, ErrClosed
	}
	seq := e.advanceLocked()
	slot := &e.ring[seq%uint64(e.cap)]
	slot.Seq = seq
	copy(slot.Data, data)
	e.cond.Broadcast()
	e.mu.Unlock()
	return seq, nil
}

// advanceLocked claims the next sequence number, applying the overwrite
// policy; caller holds mu.
func (e *Element) advanceLocked() uint64 {
	seq := e.next
	if int(e.next-e.first) == e.cap {
		// Overwrite the oldest tuple.
		e.first++
		e.lost++
	}
	e.next++
	return seq
}

// Len reports the number of retained tuples.
func (e *Element) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return int(e.next - e.first)
}

// Stats returns a snapshot of the element's counters.
func (e *Element) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Written:     e.next,
		Overwritten: e.lost,
		Retained:    int(e.next - e.first),
		Capacity:    e.cap,
	}
}

// Latest returns the newest retained tuple without consuming anything.
// For fixed elements the payload is a fresh copy (Latest is a cold path;
// the cursors are the ones that recycle read buffers).
func (e *Element) Latest() (Tuple, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.next == e.first {
		if e.closed {
			return Tuple{}, ErrClosed
		}
		return Tuple{}, ErrEmpty
	}
	t := e.ring[(e.next-1)%uint64(e.cap)]
	if e.recSize != 0 {
		t.Data = append([]byte(nil), t.Data...)
	}
	return t, nil
}

// Close marks the element closed and wakes all blocked readers. Subsequent
// writes fail with ErrClosed; reads drain retained tuples and then fail
// with ErrClosed.
func (e *Element) Close() {
	e.mu.Lock()
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Closed reports whether Close has been called.
func (e *Element) Closed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// at returns the retained tuple with sequence number seq; caller holds mu.
func (e *Element) at(seq uint64) Tuple {
	return e.ring[seq%uint64(e.cap)]
}

// Cursor is a per-reader position into an element's tuple stream. Cursors
// are independent: every reader sees every tuple that is still retained
// when it reads. A cursor that falls behind the retained window skips
// forward to the oldest retained tuple and records the gap.
//
// A Cursor must not be used for reading from multiple goroutines, but the
// Read/Skipped/Rate counters may be sampled concurrently (monitors poll
// gather rates while the reader thread runs).
//
// Reads from a fixed-record element copy payloads out of the element's
// arena into cursor-owned storage: the returned Tuple.Data slices are
// valid until the next read through the same cursor. Readers that batch
// (DrainInto, DrainBytesInto) and finish with a batch before draining
// again — the monitor and gather loops' shape — therefore run
// allocation-free once the cursor's buffer has grown to the working-set
// size.
type Cursor struct {
	e       *Element
	pos     uint64        // next sequence number to deliver
	buf     []byte        // copy-out storage for fixed elements, reused per read
	read    atomic.Uint64 // tuples delivered through this cursor
	skipped atomic.Uint64 // tuples this cursor missed due to overwrite
}

// NewCursor returns a cursor positioned at the oldest retained tuple.
func (e *Element) NewCursor() *Cursor {
	e.mu.Lock()
	defer e.mu.Unlock()
	return &Cursor{e: e, pos: e.first}
}

// NewCursorAtEnd returns a cursor that will only see tuples written after
// this call.
func (e *Element) NewCursorAtEnd() *Cursor {
	e.mu.Lock()
	defer e.mu.Unlock()
	return &Cursor{e: e, pos: e.next}
}

// Element returns the element this cursor reads from.
func (c *Cursor) Element() *Element { return c.e }

// advance normalizes the cursor against the retained window; caller holds mu.
func (c *Cursor) advance() {
	if c.pos < c.e.first {
		c.skipped.Add(c.e.first - c.pos)
		c.pos = c.e.first
	}
}

// takeOne delivers the tuple at c.pos, copying fixed-element payloads
// into the cursor's buffer; caller holds mu and has checked pos < next.
func (c *Cursor) takeOne() Tuple {
	t := c.e.at(c.pos)
	if rs := c.e.recSize; rs != 0 {
		if cap(c.buf) < rs {
			c.buf = make([]byte, rs)
		}
		out := c.buf[:rs:rs]
		copy(out, t.Data)
		t.Data = out
	}
	c.pos++
	c.read.Add(1)
	return t
}

// TryNext returns the next tuple without blocking. It returns ErrEmpty when
// the reader has consumed everything currently retained, and ErrClosed when
// the element is closed and drained.
func (c *Cursor) TryNext() (Tuple, error) {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	c.advance()
	if c.pos == c.e.next {
		if c.e.closed {
			return Tuple{}, ErrClosed
		}
		return Tuple{}, ErrEmpty
	}
	return c.takeOne(), nil
}

// Next returns the next tuple, blocking until one is available or the
// element is closed and drained.
func (c *Cursor) Next() (Tuple, error) {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	for {
		c.advance()
		if c.pos < c.e.next {
			return c.takeOne(), nil
		}
		if c.e.closed {
			return Tuple{}, ErrClosed
		}
		c.e.cond.Wait()
	}
}

// DrainInto appends all currently retained unread tuples to dst and returns
// the extended slice. It never blocks. Fixed-element payloads are copied
// into the cursor's buffer, which the whole batch shares: the appended
// tuples are valid until the next read through this cursor.
func (c *Cursor) DrainInto(dst []Tuple) []Tuple {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	c.advance()
	n := int(c.e.next - c.pos)
	if n == 0 {
		return dst
	}
	if rs := c.e.recSize; rs != 0 {
		if cap(c.buf) < n*rs {
			c.buf = make([]byte, n*rs)
		}
		buf := c.buf[:n*rs]
		for i := 0; i < n; i++ {
			t := c.e.at(c.pos)
			out := buf[i*rs : (i+1)*rs : (i+1)*rs]
			copy(out, t.Data)
			t.Data = out
			dst = append(dst, t)
			c.pos++
		}
		c.read.Add(uint64(n))
		return dst
	}
	for c.pos < c.e.next {
		dst = append(dst, c.e.at(c.pos))
		c.pos++
		c.read.Add(1)
	}
	return dst
}

// DrainBytesInto appends the raw payload bytes of up to max unread
// records (max <= 0: all) to dst under a single lock acquisition and
// returns the extended slice plus the record count. Every drained record
// must be recSize bytes; a mismatch stops the drain at the offending
// record (which stays unconsumed) and reports it. It never blocks — an
// empty drain is a valid result. This is the batch-reader fast path: one
// lock, one bounds-checked copy per record, no Tuple structs, and the
// destination is caller-owned so a pull loop can recycle it.
func (c *Cursor) DrainBytesInto(dst []byte, max, recSize int) ([]byte, int, error) {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	c.advance()
	n := int(c.e.next - c.pos)
	if max > 0 && n > max {
		n = max
	}
	if n == 0 {
		return dst, 0, nil
	}
	if c.e.recSize != 0 && c.e.recSize != recSize {
		return dst, 0, fmt.Errorf("%w: %q: element records %d bytes, reader wants %d",
			ErrRecordSize, c.e.name, c.e.recSize, recSize)
	}
	// One grow up front: after the first few drains the destination has
	// reached the pull batch's working-set size and stops allocating.
	need := len(dst) + n*recSize
	if cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < n; i++ {
		t := c.e.at(c.pos)
		if len(t.Data) != recSize {
			c.read.Add(uint64(i))
			return dst, i, fmt.Errorf("%w: %q: record %d is %d bytes, want %d",
				ErrRecordSize, c.e.name, t.Seq, len(t.Data), recSize)
		}
		dst = append(dst, t.Data...)
		c.pos++
	}
	c.read.Add(uint64(n))
	return dst, n, nil
}

// Read reports the number of tuples delivered through this cursor.
func (c *Cursor) Read() uint64 { return c.read.Load() }

// Skipped reports the number of tuples this cursor missed because they were
// overwritten before it read them.
func (c *Cursor) Skipped() uint64 { return c.skipped.Load() }

// Rate returns the fraction of the tuple stream this cursor observed:
// delivered / (delivered + skipped). A reader that kept up fully returns 1.
// With no traffic it returns 1 (nothing was missed).
func (c *Cursor) Rate() float64 {
	read := c.read.Load()
	total := read + c.skipped.Load()
	if total == 0 {
		return 1
	}
	return float64(read) / float64(total)
}

// Lag reports how many retained tuples the cursor has not yet delivered.
func (c *Cursor) Lag() int {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	pos := c.pos
	if pos < c.e.first {
		pos = c.e.first
	}
	return int(c.e.next - pos)
}

// Registry is a per-host namespace of elements: the host's PastSet server.
type Registry struct {
	mu    sync.RWMutex
	elems map[string]*Element
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{elems: make(map[string]*Element)}
}

// Create creates and registers a new element.
func (r *Registry) Create(name string, capacity int) (*Element, error) {
	e, err := NewElement(name, capacity)
	if err != nil {
		return nil, err
	}
	return r.register(name, e)
}

// CreateFixed creates and registers a fixed-record element (see
// NewElementFixed).
func (r *Registry) CreateFixed(name string, capacity, recSize int) (*Element, error) {
	e, err := NewElementFixed(name, capacity, recSize)
	if err != nil {
		return nil, err
	}
	return r.register(name, e)
}

func (r *Registry) register(name string, e *Element) (*Element, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.elems[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	r.elems[name] = e
	return e, nil
}

// Lookup finds a registered element by name.
func (r *Registry) Lookup(name string) (*Element, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.elems[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return e, nil
}

// Names returns the registered element names in unspecified order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.elems))
	for n := range r.elems {
		out = append(out, n)
	}
	return out
}

// Remove unregisters and closes the named element.
func (r *Registry) Remove(name string) error {
	r.mu.Lock()
	e, ok := r.elems[name]
	if ok {
		delete(r.elems, name)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e.Close()
	return nil
}

// CloseAll closes every registered element, waking all blocked readers.
func (r *Registry) CloseAll() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.elems {
		e.Close()
	}
}
