// Package core ties the EventSpace pieces together behind one façade
// (figure 2): a System owns a virtual testbed, builds instrumented
// collective spanning trees over it, wires the per-host coscheduling
// controllers into every collective wrapper, attaches monitors, and runs
// workloads. The root package eventspace re-exports this API.
package core

import (
	"fmt"
	"sync"
	"time"

	"eventspace/internal/archive"
	"eventspace/internal/checkpoint"
	"eventspace/internal/cluster"
	"eventspace/internal/collect"
	"eventspace/internal/cosched"
	"eventspace/internal/escope"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/monitor"
	"eventspace/internal/paths"
	"eventspace/internal/query"
	"eventspace/internal/reconfig"
	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// System is one EventSpace instance: a testbed plus the trees, monitors
// and coscheduling controllers living on it.
type System struct {
	tb *cluster.Testbed
	cs *cosched.Set

	mu       sync.Mutex
	trees    map[string]*cluster.Tree
	monitors []interface{ Stop() }
	closed   bool
	met      *metrics.Registry
}

// New builds a system over the given testbed specification. The strategy
// selects how monitor analysis threads are coscheduled with the
// application (cosched.None disables coscheduling).
func New(spec cluster.TestbedSpec, strategy cosched.Strategy) (*System, error) {
	tb, err := cluster.NewTestbed(spec)
	if err != nil {
		return nil, err
	}
	return &System{
		tb:    tb,
		cs:    cosched.NewSet(strategy),
		trees: make(map[string]*cluster.Tree),
	}, nil
}

// Testbed exposes the underlying virtual testbed.
func (s *System) Testbed() *cluster.Testbed { return s.tb }

// Cosched exposes the coscheduling controller set.
func (s *System) Cosched() *cosched.Set { return s.cs }

// UseMetrics installs a self-metrics registry: every tree built and
// monitor attached afterwards is wired into it unless its spec/config
// carries its own. nil disables.
func (s *System) UseMetrics(reg *metrics.Registry) {
	s.mu.Lock()
	s.met = reg
	s.mu.Unlock()
}

// Metrics returns the installed self-metrics registry (nil when self
// metrics are off).
func (s *System) Metrics() *metrics.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.met
}

// BuildTree builds a spanning tree over the testbed, wiring the system's
// coscheduling controllers into its collective wrappers.
func (s *System) BuildTree(spec cluster.TreeSpec) (*cluster.Tree, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("core: system closed")
	}
	if _, ok := s.trees[spec.Name]; ok {
		return nil, fmt.Errorf("core: tree %q already exists", spec.Name)
	}
	if spec.Notifier == nil {
		spec.Notifier = func(h *vnet.Host) paths.CollectiveNotifier { return s.cs.For(h) }
	}
	if spec.Metrics == nil {
		spec.Metrics = s.met
	}
	tree, err := cluster.BuildTree(s.tb, spec)
	if err != nil {
		return nil, err
	}
	s.trees[spec.Name] = tree
	return tree, nil
}

// Tree looks a built tree up by name.
func (s *System) Tree(name string) (*cluster.Tree, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.trees[name]
	return t, ok
}

// AttachLoadBalance builds and starts a load-balance monitor over tree.
func (s *System) AttachLoadBalance(tree *cluster.Tree, mode monitor.LoadBalanceMode, cfg monitor.Config) (*monitor.LoadBalance, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = s.Metrics()
	}
	lb, err := monitor.NewLoadBalance(s.tb, tree, mode, cfg, s.cs)
	if err != nil {
		return nil, err
	}
	lb.Start()
	s.mu.Lock()
	s.monitors = append(s.monitors, lb)
	s.mu.Unlock()
	return lb, nil
}

// AttachStatsm builds and starts the statistics monitor over tree.
func (s *System) AttachStatsm(tree *cluster.Tree, cfg monitor.Config) (*monitor.Statsm, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = s.Metrics()
	}
	sm, err := monitor.NewStatsm(s.tb, tree, cfg, s.cs)
	if err != nil {
		return nil, err
	}
	sm.Start()
	s.mu.Lock()
	s.monitors = append(s.monitors, sm)
	s.mu.Unlock()
	return sm, nil
}

// AttachReconfig subscribes a runtime tree-repair manager to a monitor's
// event scope: a dead cluster gateway triggers re-parenting of its
// orphaned hosts onto surviving gateways, or promotion of one of its own
// members, without restarting the monitor. The monitor must have been
// built with a HealthPolicy. The manager is stopped with the system.
func (s *System) AttachReconfig(lb *monitor.LoadBalance, pol reconfig.Policy) (*reconfig.Manager, error) {
	if pol.Metrics == nil {
		pol.Metrics = s.Metrics()
	}
	m, err := reconfig.Attach(lb.Scope(), pol)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.monitors = append(s.monitors, m)
	s.mu.Unlock()
	return m, nil
}

// FailoverLoadBalance replaces a lost front-end's load-balance monitor:
// the dead monitor's state is rebuilt deterministically from its sealed
// trace archive (dir), and a replacement single-scope monitor seeded
// from that state is built and started. The replacement's source
// cursors start after the newest retained tuple and its joins ignore
// rounds the archive already completed, so no round is lost or counted
// twice. Call it at a workload quiesce point, after sealing the old
// archive (ArchiveRecorder.Stop).
func (s *System) FailoverLoadBalance(tree *cluster.Tree, cfg monitor.Config, dir string) (*monitor.LoadBalance, *reconfig.FailoverState, error) {
	st, err := reconfig.RebuildFrontEnd(dir, s.Metrics())
	if err != nil {
		return nil, nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = s.Metrics()
	}
	lb, err := monitor.NewLoadBalanceFrom(s.tb, tree, monitor.SingleScope, cfg, s.cs, st.Resume)
	if err != nil {
		return nil, nil, err
	}
	lb.Start()
	s.mu.Lock()
	s.monitors = append(s.monitors, lb)
	s.mu.Unlock()
	return lb, st, nil
}

// RecoverLoadBalance is FailoverLoadBalance for a crashed front end:
// the dead monitor's state is rebuilt through the checkpoint recovery
// ladder (reconfig.RecoverFrontEnd) — newest valid checkpoint plus
// archive suffix, falling back to full replay when the chain is torn —
// and a replacement single-scope monitor is seeded from it. alerts,
// when given, must be the crashed recorder's standing statements; the
// returned state then carries the recovered query-engine snapshot for
// ResumeArchiveFrom. Unlike the clean-seal path, the replacement
// re-reads the retained trace windows (the crash left a gather gap),
// with the resume floors blocking any double count.
func (s *System) RecoverLoadBalance(tree *cluster.Tree, cfg monitor.Config, dir string, alerts ...string) (*monitor.LoadBalance, *reconfig.FailoverState, error) {
	stmts, err := parseAlerts(alerts)
	if err != nil {
		return nil, nil, err
	}
	st, err := reconfig.RecoverFrontEnd(dir, s.Metrics(), stmts)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = s.Metrics()
	}
	lb, err := monitor.NewLoadBalanceFrom(s.tb, tree, monitor.SingleScope, cfg, s.cs, st.Resume)
	if err != nil {
		return nil, nil, err
	}
	lb.Start()
	s.mu.Lock()
	s.monitors = append(s.monitors, lb)
	s.mu.Unlock()
	return lb, st, nil
}

// FailoverStatsm is FailoverLoadBalance's statistics counterpart: a
// replacement statistics monitor whose published analysis tree starts
// from the archive-replayed snapshot in st.
func (s *System) FailoverStatsm(tree *cluster.Tree, cfg monitor.Config, st *reconfig.FailoverState) (*monitor.Statsm, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil failover state")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = s.Metrics()
	}
	sm, err := monitor.NewStatsmFrom(s.tb, tree, cfg, s.cs, st.Stats)
	if err != nil {
		return nil, err
	}
	sm.Start()
	s.mu.Lock()
	s.monitors = append(s.monitors, sm)
	s.mu.Unlock()
	return sm, nil
}

// ArchiveRecorder records a tree's raw trace tuples into a persistent
// archive: its own event scope over every trace buffer, pulled by a
// gather thread whose sink is the archive writer. It rides alongside
// the live monitors — PastSet cursors are independent, so recording
// does not steal tuples from them.
type ArchiveRecorder struct {
	scope  *escope.Scope
	puller *escope.Puller
	writer *archive.Writer
	// sink is what gathered batches are appended through: the writer
	// directly, or a continuous-query engine interposed in front of it
	// (AttachArchiveQueries). The final drain in Stop uses the same
	// sink, so standing queries see every tuple the archive records.
	sink   escope.RawSink
	engine *query.Engine
	ckpt   *checkpoint.Checkpointer

	stopOnce sync.Once
	stopErr  error
}

// AttachArchive builds and starts a trace recorder over an instrumented
// tree: the collector metadata sidecar is written into the archive
// directory (so offline tooling can replay without the live registry),
// and a puller drains every event collector's trace buffer into the
// archive every pull interval (0 pulls continuously).
func (s *System) AttachArchive(tree *cluster.Tree, pull time.Duration, opts archive.Options) (*ArchiveRecorder, error) {
	return s.attachArchive(tree, pull, opts, recorderSpec{})
}

// AttachArchiveQueries is AttachArchive with standing continuous
// queries: each esql alert statement is parsed, registered with a
// query.Engine interposed between the gather thread and the archive
// writer, and evaluated against every batch the recorder archives.
// Fired alerts are archived as OpAlert control tuples in firing order;
// replaying the archived data tuples through the same statements
// (query.Replay, esquery replay -alerts) regenerates the identical
// stream. The engine's coverage() roster is the tree's collector set.
func (s *System) AttachArchiveQueries(tree *cluster.Tree, pull time.Duration, opts archive.Options, alerts ...string) (*ArchiveRecorder, error) {
	stmts, err := parseAlerts(alerts)
	if err != nil {
		return nil, err
	}
	return s.attachArchive(tree, pull, opts, recorderSpec{stmts: stmts})
}

// AttachArchiveCheckpointed is AttachArchive (or, with alert statements,
// AttachArchiveQueries) plus crash recoverability: a checkpointer rides
// the recorder's sink chain, periodically snapshotting the front-end
// state the archive implies — the load-balance and statistics replay
// shadows, the writer's durable cursor, and the standing-query engine —
// into a sidecar chain of ckpt-*.eckpt files next to the segments.
// After a crash, RecoverLoadBalance (or reconfig.RecoverFrontEnd)
// restores from the newest valid checkpoint and replays only the
// archive suffix behind it, instead of the whole archive.
func (s *System) AttachArchiveCheckpointed(tree *cluster.Tree, pull time.Duration, opts archive.Options, ckpt checkpoint.Config, alerts ...string) (*ArchiveRecorder, error) {
	stmts, err := parseAlerts(alerts)
	if err != nil {
		return nil, err
	}
	return s.attachArchive(tree, pull, opts, recorderSpec{stmts: stmts, ckpt: &ckpt})
}

func parseAlerts(alerts []string) ([]*query.Stmt, error) {
	stmts := make([]*query.Stmt, 0, len(alerts))
	for _, src := range alerts {
		st, err := query.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("core: %v", err)
		}
		if !st.Alert {
			return nil, fmt.Errorf("core: %q is not an alert statement", src)
		}
		stmts = append(stmts, st)
	}
	return stmts, nil
}

// ResumeArchive is AttachArchive for the recorder that continues after a
// front-end failover: its source cursors start after the newest retained
// tuple, so tuples the sealed pre-failover archive already holds are not
// archived again. Point opts.Dir at a fresh directory; scanning the
// sealed and resumed archives in sequence then covers the whole run with
// no duplicates.
func (s *System) ResumeArchive(tree *cluster.Tree, pull time.Duration, opts archive.Options) (*ArchiveRecorder, error) {
	return s.attachArchive(tree, pull, opts, recorderSpec{fromEnd: true})
}

// ResumeArchiveFrom is ResumeArchive seeded from a recovery handoff: the
// resumed recorder continues a crashed (or sealed) recorder's run. Its
// source cursors follow the handoff — after a checkpointed crash
// recovery (Resume.ReRead) the retained trace windows are re-read so the
// gather gap the crash opened is re-archived; after a clean-seal
// failover they start at the windows' ends as ResumeArchive does. With
// alert statements, the new engine is restored from the handoff's
// recovered engine state, so alert streaks continue mid-streak instead
// of restarting cold. ckpt, when non-nil, checkpoints the resumed
// recorder too.
func (s *System) ResumeArchiveFrom(tree *cluster.Tree, pull time.Duration, opts archive.Options, st *reconfig.FailoverState, ckpt *checkpoint.Config, alerts ...string) (*ArchiveRecorder, error) {
	if st == nil || st.Resume == nil {
		return nil, fmt.Errorf("core: nil failover state")
	}
	stmts, err := parseAlerts(alerts)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 && st.Engine != nil {
		return nil, fmt.Errorf("core: recovered engine state but no alert statements to restore it into")
	}
	return s.attachArchive(tree, pull, opts, recorderSpec{
		fromEnd: !st.Resume.ReRead,
		stmts:   stmts,
		engine:  st.Engine,
		ckpt:    ckpt,
	})
}

// recorderSpec collects attachArchive's variants: failover resume
// (fromEnd), standing queries (stmts), a recovered engine snapshot to
// restore into them (engine), and checkpointing (ckpt).
type recorderSpec struct {
	fromEnd bool
	stmts   []*query.Stmt
	engine  *query.EngineState
	ckpt    *checkpoint.Config
}

func (s *System) attachArchive(tree *cluster.Tree, pull time.Duration, opts archive.Options, spec recorderSpec) (*ArchiveRecorder, error) {
	if !tree.Spec.Instrument {
		return nil, fmt.Errorf("core: archive recorder needs an instrumented tree")
	}
	if opts.Metrics == nil {
		opts.Metrics = s.Metrics()
	}
	w, err := archive.Create(opts)
	if err != nil {
		return nil, err
	}
	meta := archive.MetaFromRegistry(tree.Collectors)
	if err := archive.WriteMeta(opts.Dir, meta); err != nil {
		w.Close()
		return nil, err
	}
	escSpec := escope.Spec{
		Name:     "archive/" + tree.Name,
		FrontEnd: s.tb.FrontEnd,
		Metrics:  opts.Metrics,
	}
	for _, ec := range tree.Collectors.All() {
		escSpec.Sources = append(escSpec.Sources, escope.Source{
			Host: ec.Host(), Elem: ec.Buffer(), RecSize: collect.TupleSize,
			FromEnd: spec.fromEnd,
		})
	}
	scope, err := escope.Build(s.tb.Net, escSpec)
	if err != nil {
		w.Close()
		return nil, err
	}
	rec := &ArchiveRecorder{scope: scope, writer: w, sink: w}
	fail := func(err error) (*ArchiveRecorder, error) {
		scope.Close()
		w.Close()
		return nil, err
	}
	if len(spec.stmts) > 0 {
		eng := query.NewEngine(w)
		eng.SetExpected(len(tree.Collectors.All()))
		eng.UseMetrics(opts.Metrics, tree.Name)
		for _, st := range spec.stmts {
			if err := eng.Register(st); err != nil {
				return fail(err)
			}
		}
		if spec.engine != nil {
			if err := eng.Restore(*spec.engine); err != nil {
				return fail(err)
			}
		}
		rec.engine = eng
		rec.sink = eng
	}
	if spec.ckpt != nil {
		cfg := *spec.ckpt
		if cfg.Metrics == nil {
			cfg.Metrics = opts.Metrics
		}
		if cfg.CrashPoints == nil {
			cfg.CrashPoints = opts.CrashPoints
		}
		// The checkpointer interposes at the head of the sink chain
		// (puller -> checkpointer -> engine -> writer): it forwards each
		// batch downstream first, then folds it into its shadows, so a
		// snapshot taken at the writer's durable cursor has seen exactly
		// the tuples the archive holds.
		ck, err := checkpoint.New(w, rec.sink, rec.engine, meta, cfg)
		if err != nil {
			return fail(err)
		}
		rec.ckpt = ck
		rec.sink = ck
	}
	rec.puller = scope.StartPuller(pull, escope.ArchiveSink(rec.sink))
	s.mu.Lock()
	s.monitors = append(s.monitors, rec)
	s.mu.Unlock()
	return rec, nil
}

// RecordModes wires a load-balance monitor's degradation-ladder
// transitions into this archive as control tuples: every mode change —
// past ones included, via the hook's backlog replay — is appended
// alongside the trace tuples, so archive replay reproduces a degraded
// run's mode history byte-identically. Writer appends are serialized
// internally, so the hook is safe against the recorder's own puller.
func (r *ArchiveRecorder) RecordModes(lb *monitor.LoadBalance) {
	lb.SetScopeModeHook(func(ch escope.ModeChange) {
		// A failing append surfaces through the writer's own error
		// state at seal time; the mode hook must not block or panic.
		_ = r.writer.Append([]collect.TraceTuple{monitor.EncodeModeChange(ch)})
	})
}

// Writer exposes the recorder's archive writer (e.g. for Stats).
func (r *ArchiveRecorder) Writer() *archive.Writer { return r.writer }

// Engine exposes the recorder's continuous-query engine (nil unless the
// recorder was attached with AttachArchiveQueries).
func (r *ArchiveRecorder) Engine() *query.Engine { return r.engine }

// Alerts returns the alerts the recorder's standing queries have fired
// so far, in firing order (nil without AttachArchiveQueries).
func (r *ArchiveRecorder) Alerts() []collect.AlertTuple {
	if r.engine == nil {
		return nil
	}
	return r.engine.Alerts()
}

// Puller exposes the recorder's gather thread, for accounting.
func (r *ArchiveRecorder) Puller() *escope.Puller { return r.puller }

// Checkpointer exposes the recorder's checkpointer (nil unless the
// recorder was attached with AttachArchiveCheckpointed or resumed with
// a checkpoint config).
func (r *ArchiveRecorder) Checkpointer() *checkpoint.Checkpointer { return r.ckpt }

// Stop halts the recorder: the gather thread is stopped, one final pull
// drains what the buffers still hold, and the archive is sealed. It is
// idempotent; later calls return the first stop's error.
func (r *ArchiveRecorder) Stop() {
	r.stopOnce.Do(func() {
		r.puller.Stop()
		// The final drain performs modelled network work, and Stop may be
		// the only thing left running (a driver stopping the recorder
		// after the workload). An unregistered goroutine must not execute
		// model operations — its sleeps would corrupt the runnable count
		// and stall the clock — so the pull runs as a model goroutine and
		// the driver parks on an ordinary channel.
		done := make(chan struct{})
		vclock.Go(func() {
			defer close(done)
			rep, err := r.scope.Pull(&paths.Ctx{Thread: r.scope.Name() + "/final"})
			if err == nil && len(rep.Data) > 0 {
				// The drain goes through the same sink as the puller, so
				// standing queries evaluate the final batch too.
				if err := r.sink.AppendRaw(rep.Data); err != nil {
					r.stopErr = err
				}
			}
		})
		<-done
		if r.ckpt != nil {
			// A final forced checkpoint right before the seal: recovery
			// from a cleanly stopped archive then replays (almost) no
			// suffix. An injected checkpoint crash surfaces here like any
			// stop error; the seal still proceeds so the archive itself
			// stays replayable.
			if err := r.ckpt.Checkpoint(); err != nil && r.stopErr == nil {
				r.stopErr = err
			}
		}
		r.scope.Close()
		if err := r.writer.Close(); err != nil && r.stopErr == nil {
			r.stopErr = err
		}
	})
}

// Err returns the first error encountered while stopping the recorder
// (nil before Stop and after a clean stop).
func (r *ArchiveRecorder) Err() error { return r.stopErr }

// Close stops every monitor and closes every tree.
func (s *System) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	monitors := s.monitors
	trees := make([]*cluster.Tree, 0, len(s.trees))
	for _, t := range s.trees {
		trees = append(trees, t)
	}
	s.mu.Unlock()
	for _, m := range monitors {
		m.Stop()
	}
	for _, t := range trees {
		t.Close()
	}
	s.cs.CloseAll()
}

// Workload drives a system's trees from application threads, mirroring
// the paper's micro-benchmarks: with Compute == 0 and several Trees it is
// gsum; with Compute > 0 it is compute-gsum.
type Workload struct {
	// Trees the threads operate on. Gsum alternates over all trees each
	// iteration; compute-gsum rotates one tree per iteration.
	Trees []*cluster.Tree
	// Iterations per thread.
	Iterations int
	// Compute is the per-iteration modelled computation (compute-gsum).
	Compute time.Duration
	// Delay, when set, is an injected per-thread, per-iteration stall
	// before contributing — the straggler examples use it to create the
	// load imbalance the monitor should expose.
	Delay func(thread, iteration int) time.Duration
}

// RunWorkload executes the workload and returns the modelled duration of
// the run (measured from inside the model so virtual-time idling never
// leaks in).
func (s *System) RunWorkload(wl Workload) (time.Duration, error) {
	if len(wl.Trees) == 0 {
		return 0, fmt.Errorf("core: workload has no trees")
	}
	if wl.Iterations <= 0 {
		return 0, fmt.Errorf("core: workload iterations %d", wl.Iterations)
	}
	ports := wl.Trees[0].Ports
	for _, tr := range wl.Trees[1:] {
		if len(tr.Ports) != len(ports) {
			return 0, fmt.Errorf("core: trees have differing thread counts")
		}
	}
	var wg sync.WaitGroup
	gate := vclock.NewEvent()
	var mu sync.Mutex
	var startNS, endNS int64
	var firstErr error
	for pi := range ports {
		pi := pi
		wg.Add(1)
		vclock.Go(func() {
			defer wg.Done()
			gate.Wait()
			ctx := &paths.Ctx{Thread: ports[pi].Name}
			host := ports[pi].Host
			for it := 0; it < wl.Iterations; it++ {
				if wl.Delay != nil {
					if d := wl.Delay(pi, it); d > 0 {
						hrtime.Sleep(d)
					}
				}
				if wl.Compute > 0 {
					host.Occupy(wl.Compute)
					tr := wl.Trees[it%len(wl.Trees)]
					if _, err := tr.Ports[pi].Entry.Op(ctx, paths.Request{Kind: paths.OpWrite, Value: int64(pi)}); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					continue
				}
				for _, tr := range wl.Trees {
					if _, err := tr.Ports[pi].Entry.Op(ctx, paths.Request{Kind: paths.OpWrite, Value: int64(pi)}); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}
			now := hrtime.Now()
			mu.Lock()
			if now > endNS {
				endNS = now
			}
			mu.Unlock()
		})
	}
	vclock.Go(func() {
		mu.Lock()
		startNS = hrtime.Now()
		mu.Unlock()
		gate.Fire(nil, nil)
	})
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return 0, firstErr
	}
	return time.Duration(endNS - startNS), nil
}

// RunVirtual executes fn under the discrete-event virtual clock: the
// system's modelled delays cost no real time and timing is exact and
// deterministic. It quiesces and disables the clock afterwards. All
// Systems used inside fn must be created and closed inside fn.
func RunVirtual(fn func() error) error {
	vclock.Enable(0)
	defer func() {
		vclock.Quiesce(10 * time.Second)
		vclock.Disable()
	}()
	return fn()
}
