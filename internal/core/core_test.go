package core

import (
	"testing"
	"time"

	"eventspace/internal/analysis"
	"eventspace/internal/archive"
	"eventspace/internal/cluster"
	"eventspace/internal/cosched"
	"eventspace/internal/monitor"
	"eventspace/internal/vclock"
)

func newSystem(t *testing.T, strategy cosched.Strategy) *System {
	t.Helper()
	s, err := New(cluster.SingleTin(4), strategy)
	if err != nil {
		t.Fatal(err)
	}
	// Close inside the virtual section too (Close is idempotent); the
	// cleanup is only a backstop for failing tests.
	t.Cleanup(s.Close)
	return s
}

func instrumented(t *testing.T, s *System, name string) *cluster.Tree {
	t.Helper()
	tree, err := s.BuildTree(cluster.TreeSpec{
		Name: name, Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestNewValidatesTestbed(t *testing.T) {
	if _, err := New(cluster.TestbedSpec{}, cosched.None); err == nil {
		t.Fatal("empty testbed accepted")
	}
}

func TestBuildTreeAndLookup(t *testing.T) {
	err := RunVirtual(func() error {
		s := newSystem(t, cosched.None)
		tree := instrumented(t, s, "T")
		if got, ok := s.Tree("T"); !ok || got != tree {
			t.Fatal("Tree lookup failed")
		}
		if _, ok := s.Tree("nope"); ok {
			t.Fatal("ghost tree")
		}
		if _, err := s.BuildTree(cluster.TreeSpec{Name: "T"}); err == nil {
			t.Fatal("duplicate tree accepted")
		}
		if s.Testbed() == nil || s.Cosched() == nil {
			t.Fatal("accessors nil")
		}
		s.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkloadGsum(t *testing.T) {
	err := RunVirtual(func() error {
		s := newSystem(t, cosched.None)
		t1 := instrumented(t, s, "T1")
		t2 := instrumented(t, s, "T2")
		d, err := s.RunWorkload(Workload{Trees: []*cluster.Tree{t1, t2}, Iterations: 20})
		if err != nil {
			t.Fatal(err)
		}
		if d <= 0 {
			t.Fatalf("duration = %v", d)
		}
		// Every tree completed every round.
		if t1.Nodes[0].AR.Rounds() != 20 || t2.Nodes[0].AR.Rounds() != 20 {
			t.Fatalf("rounds = %d/%d", t1.Nodes[0].AR.Rounds(), t2.Nodes[0].AR.Rounds())
		}
		s.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkloadComputeGsum(t *testing.T) {
	err := RunVirtual(func() error {
		s := newSystem(t, cosched.None)
		tree := instrumented(t, s, "T")
		base, err := s.RunWorkload(Workload{Trees: []*cluster.Tree{tree}, Iterations: 20})
		if err != nil {
			t.Fatal(err)
		}
		perOp := base / 20
		d, err := s.RunWorkload(Workload{Trees: []*cluster.Tree{tree}, Iterations: 20, Compute: perOp})
		if err != nil {
			t.Fatal(err)
		}
		if d <= base {
			t.Fatalf("compute-gsum %v not slower than gsum %v", d, base)
		}
		s.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkloadValidation(t *testing.T) {
	err := RunVirtual(func() error {
		s := newSystem(t, cosched.None)
		if _, err := s.RunWorkload(Workload{}); err == nil {
			t.Fatal("no trees accepted")
		}
		tree := instrumented(t, s, "T")
		if _, err := s.RunWorkload(Workload{Trees: []*cluster.Tree{tree}}); err == nil {
			t.Fatal("0 iterations accepted")
		}
		s.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAttachLoadBalanceFindsStraggler(t *testing.T) {
	err := RunVirtual(func() error {
		s := newSystem(t, cosched.None)
		tree := instrumented(t, s, "T")
		cfg := monitor.DefaultConfig()
		cfg.PullInterval = 300 * time.Microsecond
		cfg.AnalysisInterval = 300 * time.Microsecond
		lb, err := s.AttachLoadBalance(tree, monitor.Distributed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		const rounds = 60
		_, err = s.RunWorkload(Workload{
			Trees:      []*cluster.Tree{tree},
			Iterations: rounds,
			Delay: func(thread, iter int) time.Duration {
				if thread == 0 {
					return 2 * time.Millisecond // tin-0's thread lags
				}
				return 0
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Drain: give the monitor a little model time.
		s.RunWorkload(Workload{Trees: []*cluster.Tree{tree}, Iterations: 5, Delay: func(th, it int) time.Duration {
			if th == 0 {
				return 2 * time.Millisecond
			}
			return 0
		}})
		root := tree.Nodes[0]
		counts := lb.Weighted().Counts(root.Name)
		if counts[0] < rounds/2 {
			t.Fatalf("straggler not identified: %v", counts)
		}
		s.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAttachStatsmGathersStats(t *testing.T) {
	err := RunVirtual(func() error {
		s := newSystem(t, cosched.AfterUnblock)
		tree := instrumented(t, s, "T")
		cfg := monitor.DefaultConfig()
		cfg.PullInterval = 300 * time.Microsecond
		sm, err := s.AttachStatsm(tree, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunWorkload(Workload{Trees: []*cluster.Tree{tree}, Iterations: 80}); err != nil {
			t.Fatal(err)
		}
		if sm.RoundsAnalyzed() == 0 {
			t.Fatal("no rounds analyzed")
		}
		rootID := tree.Nodes[0].CollectiveEC.ID()
		if _, ok := sm.Tree().Get(rootID, analysis.KindTotal); !ok {
			t.Fatal("no total-latency record at the front-end")
		}
		s.Close()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCloseIsIdempotentAndFinal(t *testing.T) {
	err := RunVirtual(func() error {
		s, err := New(cluster.SingleTin(2), cosched.None)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := s.BuildTree(cluster.TreeSpec{Name: "T", ThreadsPerHost: 1, Instrument: true, TraceBufCap: 8})
		if err != nil {
			t.Fatal(err)
		}
		cfg := monitor.DefaultConfig()
		cfg.PullInterval = 300 * time.Microsecond
		if _, err := s.AttachLoadBalance(tree, monitor.SingleScope, cfg); err != nil {
			t.Fatal(err)
		}
		s.Close()
		s.Close()
		if _, err := s.BuildTree(cluster.TreeSpec{Name: "U"}); err == nil {
			t.Fatal("BuildTree after Close accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunVirtualPropagatesError(t *testing.T) {
	sentinel := RunVirtual(func() error { return errSentinel })
	if sentinel != errSentinel {
		t.Fatalf("got %v", sentinel)
	}
}

var errSentinel = errString("boom")

type errString string

func (e errString) Error() string { return string(e) }

// TestArchiveStopDrainsRegistered locks in the PR-4 deadlock fix at
// runtime (internal/lint's vcregister analyzer guards it statically):
// ArchiveRecorder.Stop's final drain performs modelled network work, so
// it must run as a registered model goroutine. Run unregistered, its
// modelled sleeps would corrupt the clock's runnable count and Stop
// would stall RunVirtual forever. The test drives a workload, stops the
// recorder inside the virtual section, and requires every model
// goroutine to unwind — then checks the drain actually archived.
func TestArchiveStopDrainsRegistered(t *testing.T) {
	dir := t.TempDir()
	err := RunVirtual(func() error {
		s := newSystem(t, cosched.None)
		tree := instrumented(t, s, "T")
		rec, err := s.AttachArchive(tree, time.Millisecond, archive.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunWorkload(Workload{Trees: []*cluster.Tree{tree}, Iterations: 8}); err != nil {
			t.Fatal(err)
		}
		rec.Stop()
		if err := rec.Err(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		if !vclock.Quiesce(5 * time.Second) {
			_, running, live, timers := vclock.Stats()
			t.Fatalf("model goroutines leaked past Stop+Close: running=%d live=%d timers=%d",
				running, live, timers)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := archive.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tuples() == 0 {
		t.Fatal("final drain archived nothing")
	}
}
