// Package lint is EventSpace's project-specific static-analysis suite.
// The monitoring stack's low-overhead claim rests on invariants the Go
// compiler cannot see: instrumented code must read modelled time
// (hrtime/vclock), never wall time, so RunVirtual traces stay exact;
// the self-metrics write path must stay nil-safe so the disabled
// configuration costs one nil check; stop channels must close exactly
// once (the Puller.Stop bug class); 64-bit atomics must stay 8-byte
// aligned for 32-bit targets; and nothing may block on a channel or a
// PastSet read while holding a mutex. Each invariant is an Analyzer
// here, run by cmd/eslint in CI alongside vet and staticcheck.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// only — go/parser, go/types and the source importer — so the suite
// needs no dependencies outside the toolchain.
//
// Findings are suppressed per line with an annotation carrying a
// mandatory reason:
//
//	//lint:allow wallclock tests poll a real goroutine
//
// on the flagged line or the line above, or per file with
// //lint:file-allow. An annotation without a reason is itself a
// finding and suppresses nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer checks one invariant over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// annotations.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and
	// the bug class it prevents.
	Doc string
	// Run reports findings on the pass via pass.Reportf.
	Run func(*Pass) error
}

// Suite is every analyzer in the order reports are printed. The first
// five are per-statement AST matchers; the last four (goroleak,
// vcregister, hotalloc, errclass) are dataflow analyzers built on the
// internal/lint/cfg control-flow graphs.
func Suite() []*Analyzer {
	return []*Analyzer{
		Wallclock, CloseOnce, NilSafe, AtomicAlign, LockedSend,
		Goroleak, VCRegister, Hotalloc, ErrClass,
	}
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Pass hands one analyzer one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a finding at pos unless an allow annotation
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowRe matches one annotation line. Group 1 is the scope (allow or
// file-allow), group 2 the comma-separated analyzer names, group 3 the
// reason.
var allowRe = regexp.MustCompile(`^//\s*lint:(allow|file-allow)\s+([a-zA-Z0-9_,-]+)(?:[ \t]+(\S.*))?$`)

// allowIndex is a package's parsed //lint:allow annotations.
type allowIndex struct {
	// line[file][analyzer] holds the lines carrying a valid line-scoped
	// allow for that analyzer.
	line map[string]map[string]map[int]bool
	// file[file][analyzer] marks a valid file-scoped allow.
	file map[string]map[string]bool
	// malformed are annotations missing their mandatory reason.
	malformed []Diagnostic
}

func buildAllowIndex(pkg *Package) *allowIndex {
	idx := &allowIndex{
		line: make(map[string]map[string]map[int]bool),
		file: make(map[string]map[string]bool),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(m[3]) == "" {
					idx.malformed = append(idx.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  fmt.Sprintf("lint:%s %s needs a reason; a bare annotation suppresses nothing", m[1], m[2]),
					})
					continue
				}
				for _, name := range strings.Split(m[2], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					if m[1] == "file-allow" {
						byAn := idx.file[pos.Filename]
						if byAn == nil {
							byAn = make(map[string]bool)
							idx.file[pos.Filename] = byAn
						}
						byAn[name] = true
						continue
					}
					byAn := idx.line[pos.Filename]
					if byAn == nil {
						byAn = make(map[string]map[int]bool)
						idx.line[pos.Filename] = byAn
					}
					if byAn[name] == nil {
						byAn[name] = make(map[int]bool)
					}
					byAn[name][pos.Line] = true
				}
			}
		}
	}
	return idx
}

// suppresses reports whether d is covered by an annotation: a
// file-allow for its analyzer, or a line allow on the same line or the
// line above.
func (idx *allowIndex) suppresses(d Diagnostic) bool {
	if idx.file[d.Pos.Filename][d.Analyzer] {
		return true
	}
	lines := idx.line[d.Pos.Filename][d.Analyzer]
	return lines[d.Pos.Line] || lines[d.Pos.Line-1]
}

// RunPackage runs the analyzers over one package and returns the
// unsuppressed findings, sorted by position. Malformed annotations
// (missing reasons) are reported under the pseudo-analyzer "lint".
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx := buildAllowIndex(pkg)
	diags := append([]Diagnostic(nil), idx.malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Pkg:      pkg,
			report: func(d Diagnostic) {
				if !idx.suppresses(d) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// walkStack visits every node of f depth-first, handing fn the node and
// the stack of its ancestors (stack[len-1] is n itself). It never
// prunes, so analyzers see every node.
func walkStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(n, stack)
		return true
	})
}

// instrumentedPkgs are the packages whose code runs on the monitoring
// hot path and must stay on modelled time. wallclock applies here.
var instrumentedPkgs = map[string]bool{
	"eventspace/internal/paths":      true,
	"eventspace/internal/collect":    true,
	"eventspace/internal/escope":     true,
	"eventspace/internal/monitor":    true,
	"eventspace/internal/metrics":    true,
	"eventspace/internal/pastset":    true,
	"eventspace/internal/archive":    true,
	"eventspace/internal/reconfig":   true,
	"eventspace/internal/query":      true,
	"eventspace/internal/checkpoint": true,
	"eventspace/cmd/esquery":         true,
}

// nilSafePkgs are the packages whose exported pointer-receiver methods
// must be no-ops on nil receivers (the ≤1ns-disabled contract).
var nilSafePkgs = map[string]bool{
	"eventspace/internal/metrics": true,
}
