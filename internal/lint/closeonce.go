package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CloseOnce flags a bare close() of a struct's stop/done channel field
// outside a sync.Once.Do. Stop methods are the textbook double-close
// panic: two goroutines race into Stop, both see stopped == false, both
// close. PR 2's Puller.Stop fix (escope.go) is the accepted shape:
//
//	p.stopOnce.Do(func() { close(p.stop) })
//
// A close that is provably single-owner (for example the run loop's
// deferred close of its own done channel) takes a //lint:allow
// closeonce annotation with the ownership argument as the reason.
var CloseOnce = &Analyzer{
	Name: "closeonce",
	Doc: "flag close() of a stop/done channel field outside sync.Once.Do; " +
		"concurrent Stop calls double-close and panic (the Puller.Stop bug class)",
	Run: runCloseOnce,
}

// stopLikeField reports whether a field name marks a lifecycle channel.
func stopLikeField(name string) bool {
	n := strings.ToLower(name)
	for _, w := range []string{"stop", "done", "quit", "closing"} {
		if strings.Contains(n, w) {
			return true
		}
	}
	return false
}

func runCloseOnce(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok {
				return
			}
			if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "close" {
				return
			}
			sel, ok := call.Args[0].(*ast.SelectorExpr)
			if !ok {
				return
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return
			}
			if !stopLikeField(sel.Sel.Name) {
				return
			}
			if _, isChan := selection.Type().Underlying().(*types.Chan); !isChan {
				return
			}
			if insideOnceDo(info, stack) {
				return
			}
			pass.Reportf(call.Pos(),
				"close(%s) of a stop channel outside sync.Once.Do; concurrent Stops double-close and panic — use stopOnce.Do(func() { close(...) })",
				types.ExprString(sel))
		})
	}
	return nil
}

// insideOnceDo reports whether the innermost enclosing function literal
// is an argument to (sync.Once).Do.
func insideOnceDo(info *types.Info, stack []ast.Node) bool {
	// Find the innermost FuncLit above the close call.
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		if i == 0 {
			return false
		}
		call, ok := stack[i-1].(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Do" {
			return false
		}
		recv := info.Types[sel.X].Type
		if recv == nil {
			return false
		}
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || obj.Name() != "Once" {
			return false
		}
		// The close must be inside the literal actually passed to Do.
		for _, arg := range call.Args {
			if arg == ast.Node(lit) {
				return true
			}
		}
		return false
	}
	return false
}
