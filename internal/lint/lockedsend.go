package lint

import (
	"go/ast"
	"go/types"
)

// LockedSend flags blocking communication while holding a mutex: a
// channel send (outside a select with a default case) or a blocking
// PastSet read (Cursor.Next) issued between mu.Lock() and mu.Unlock().
// The consumer of that channel or element often needs the same lock to
// make progress — the classic tuple-space deadlock. The scan is
// lexical per function: Lock()/RLock() acquire, Unlock()/RUnlock()
// release, a deferred Unlock holds to function end, and goroutine
// bodies launched under the lock are scanned lock-free (they run
// later).
var LockedSend = &Analyzer{
	Name: "lockedsend",
	Doc: "flag channel sends and blocking PastSet ops (Cursor.Next) while holding a mutex; " +
		"the reader may need the same lock, deadlocking the monitor",
	Run: runLockedSend,
}

func runLockedSend(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			scanLocked(pass, info, fn.Body.List, map[string]bool{})
		}
	}
	return nil
}

// lockCall classifies a statement as a mutex acquire/release on some
// expression, returning the printed receiver ("sm.mu") and +1/-1.
func lockCall(stmt ast.Stmt) (string, int) {
	expr, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", 0
	}
	return lockCallExpr(expr.X)
}

func lockCallExpr(e ast.Expr) (string, int) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", 0
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return types.ExprString(sel.X), +1
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), -1
	}
	return "", 0
}

// anyHeld returns one held mutex's name, or "".
func anyHeld(held map[string]bool) string {
	for name, h := range held {
		if h {
			return name
		}
	}
	return ""
}

// scanLocked walks stmts in order tracking which mutexes are held, and
// reports blocking operations performed under a lock. Branch bodies are
// scanned with a copy of the held set (acquisitions inside a branch do
// not leak out — a lexical approximation that matches this codebase's
// lock discipline).
func scanLocked(pass *Pass, info *types.Info, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		if name, op := lockCall(stmt); op != 0 {
			held[name] = op > 0
			continue
		}
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to function end for
			// this scan; defer mu.Lock() would be nonsense — ignore.
			scanLockedExprs(pass, info, s.Call, held)
		case *ast.GoStmt:
			// The goroutine body runs without this frame's locks.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				scanLocked(pass, info, lit.Body.List, map[string]bool{})
			}
			for _, arg := range s.Call.Args {
				scanLockedExprs(pass, info, arg, held)
			}
		case *ast.SendStmt:
			if m := anyHeld(held); m != "" {
				pass.Reportf(s.Arrow,
					"channel send %s <- ... while holding %s; the receiver may need the lock — send after unlocking or use a select with default",
					types.ExprString(s.Chan), m)
			}
			scanLockedExprs(pass, info, s.Value, held)
		case *ast.SelectStmt:
			scanSelect(pass, info, s, held)
		case *ast.BlockStmt:
			scanLocked(pass, info, s.List, copyHeld(held))
		case *ast.IfStmt:
			if s.Init != nil {
				scanLocked(pass, info, []ast.Stmt{s.Init}, held)
			}
			scanLockedExprs(pass, info, s.Cond, held)
			scanLocked(pass, info, s.Body.List, copyHeld(held))
			if s.Else != nil {
				scanLocked(pass, info, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			scanLocked(pass, info, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			scanLockedExprs(pass, info, s.X, held)
			scanLocked(pass, info, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLocked(pass, info, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLocked(pass, info, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			scanLocked(pass, info, []ast.Stmt{s.Stmt}, held)
		default:
			scanLockedExprs(pass, info, stmt, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// scanSelect handles select statements: with a default case the comm
// operations are non-blocking and allowed under a lock; without one
// they block and are flagged. Case bodies are always scanned.
func scanSelect(pass *Pass, info *types.Info, s *ast.SelectStmt, held map[string]bool) {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault {
			if m := anyHeld(held); m != "" {
				pass.Reportf(send.Arrow,
					"blocking select send %s <- ... while holding %s; add a default case or send after unlocking",
					types.ExprString(send.Chan), m)
			}
		}
		scanLocked(pass, info, cc.Body, copyHeld(held))
	}
}

// scanLockedExprs walks an arbitrary node for blocking calls (PastSet
// Cursor.Next) and nested function literals. Literals other than
// goroutine bodies run inline, so they inherit the held set.
func scanLockedExprs(pass *Pass, info *types.Info, n ast.Node, held map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.FuncLit:
			scanLocked(pass, info, e.Body.List, copyHeld(held))
			return false
		case *ast.SendStmt:
			if m := anyHeld(held); m != "" {
				pass.Reportf(e.Arrow,
					"channel send %s <- ... while holding %s; the receiver may need the lock — send after unlocking or use a select with default",
					types.ExprString(e.Chan), m)
			}
		case *ast.CallExpr:
			if m := anyHeld(held); m != "" {
				if name, ok := blockingPastSetCall(info, e); ok {
					pass.Reportf(e.Pos(),
						"blocking PastSet call %s while holding %s; Next blocks until a writer appends, and the writer may need the lock — use TryNext or DrainInto under a lock",
						name, m)
				}
			}
		}
		return true
	})
}

// blockingPastSetCall reports whether call is a method call that blocks
// on PastSet data: (*pastset.Cursor).Next.
func blockingPastSetCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Next" {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Cursor" || obj.Pkg() == nil || obj.Pkg().Path() != "eventspace/internal/pastset" {
		return "", false
	}
	return types.ExprString(sel), true
}
