package lint

import (
	"runtime"
	"sync"
)

// RunPackages runs the analyzers over every package with bounded
// parallelism and returns per-package findings in the input order, so
// output stays deterministic regardless of scheduling. Analysis is
// read-only over each package's own syntax and types — packages share
// only the FileSet and the loader's completed import cache, both safe
// to read concurrently — which makes per-package fan-out the natural
// unit. workers <= 0 means one worker per CPU.
func RunPackages(pkgs []*Package, analyzers []*Analyzer, workers int) ([][]Diagnostic, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	results := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = RunPackage(pkgs[i], analyzers)
			}
		}()
	}
	for i := range pkgs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
