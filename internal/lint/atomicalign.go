package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// align32 computes struct layouts as a 32-bit target (GOARCH=386)
// would: 4-byte words, 4-byte max alignment. Under these rules a
// uint64 field lands wherever the preceding fields leave it, which is
// the whole hazard.
var align32 = types.SizesFor("gc", "386")

// AtomicAlign flags 64-bit sync/atomic function calls on struct fields
// that are not 8-byte aligned under 32-bit layout rules. The Go
// runtime only guarantees 64-bit alignment for the first word of an
// allocation; an unaligned atomic access panics on 386/arm. The
// lock-free metrics registry must stay portable, so either keep 64-bit
// fields first (offset % 8 == 0) or use atomic.Uint64/atomic.Int64,
// whose embedded align64 marker makes the compiler do it.
var AtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc: "flag 64-bit sync/atomic calls on struct fields not 8-byte aligned in 32-bit layout; " +
		"unaligned 64-bit atomics panic on 386/arm — reorder the field or use atomic.Uint64",
	Run: runAtomicAlign,
}

// atomic64Funcs are the sync/atomic package functions whose first
// argument must point at 8-byte-aligned memory.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

func runAtomicAlign(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, _ []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return
			}
			fun, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !atomic64Funcs[fun.Sel.Name] {
				return
			}
			pkgIdent, ok := fun.X.(*ast.Ident)
			if !ok {
				return
			}
			pn, ok := info.Uses[pkgIdent].(*types.PkgName)
			if !ok || pn.Imported().Path() != "sync/atomic" {
				return
			}
			addr, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || addr.Op.String() != "&" {
				return
			}
			sel, ok := addr.X.(*ast.SelectorExpr)
			if !ok {
				return
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return
			}
			off, ok := fieldOffset32(selection)
			if !ok || off%8 == 0 {
				return
			}
			typ := "Uint64"
			if strings.HasSuffix(fun.Sel.Name, "Int64") && !strings.HasSuffix(fun.Sel.Name, "Uint64") {
				typ = "Int64"
			}
			pass.Reportf(call.Pos(),
				"atomic.%s(&%s): field is at offset %d under 32-bit layout, not 8-byte aligned; "+
					"move 64-bit atomic fields to the front of the struct or use atomic.%s",
				fun.Sel.Name, types.ExprString(sel), off, typ)
		})
	}
	return nil
}

// fieldOffset32 computes the selected field's byte offset within its
// immediate struct under 32-bit layout rules.
func fieldOffset32(selection *types.Selection) (int64, bool) {
	recv := selection.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	st, ok := recv.Underlying().(*types.Struct)
	if !ok {
		return 0, false
	}
	target, ok := selection.Obj().(*types.Var)
	if !ok {
		return 0, false
	}
	fields := make([]*types.Var, st.NumFields())
	idx := -1
	for i := 0; i < st.NumFields(); i++ {
		fields[i] = st.Field(i)
		if fields[i] == target {
			idx = i
		}
	}
	if idx < 0 {
		return 0, false
	}
	offsets := align32.Offsetsof(fields)
	return offsets[idx], true
}
