package cfg

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc type-checks one source file and returns the named function
// plus the type info, for graph and def-use construction.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("cfgtest", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return fn, info, fset
		}
	}
	t.Fatalf("no function %s", name)
	return nil, nil, nil
}

func buildGraph(t *testing.T, src, name string) (*Graph, *ast.FuncDecl, *types.Info) {
	t.Helper()
	fn, info, _ := parseFunc(t, src, name)
	return New(fn.Body), fn, info
}

func TestStraightLineReachesExit(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f() int { x := 1; x++; return x }`, "f")
	if !g.ExitReachable() {
		t.Fatal("straight-line function should reach exit")
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry block has %d nodes, want 3", len(g.Entry.Nodes))
	}
}

func TestInfiniteForNoExit(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f() { n := 0; for { n++ } }`, "f")
	if g.ExitReachable() {
		t.Fatal("for {} without break must not reach exit")
	}
}

func TestForWithBreakReachesExit(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f() { for { break } }`, "f")
	if !g.ExitReachable() {
		t.Fatal("for { break } reaches exit")
	}
}

func TestBoundedForReachesExit(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f(n int) { for i := 0; i < n; i++ { _ = i } }`, "f")
	if !g.ExitReachable() {
		t.Fatal("conditional for reaches exit through its condition")
	}
}

func TestLabeledBreakEscapesOuterLoop(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f(ch chan int) {
outer:
	for {
		for {
			if <-ch == 0 {
				break outer
			}
		}
	}
}`, "f")
	if !g.ExitReachable() {
		t.Fatal("labeled break out of nested infinite loops reaches exit")
	}
}

func TestUnlabeledBreakTrappedInInnerLoop(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f(ch chan int) {
	for {
		for {
			if <-ch == 0 {
				break // leaves only the inner loop
			}
		}
	}
}`, "f")
	if g.ExitReachable() {
		t.Fatal("unlabeled break escapes only the inner loop; exit must stay unreachable")
	}
}

func TestLabeledContinueTargetsOuterLoop(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for {
			continue outer
		}
	}
}`, "f")
	if !g.ExitReachable() {
		t.Fatal("labeled continue re-enters the bounded outer loop; exit reachable via its condition")
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f(n int) {
	if n > 0 {
		goto done
	}
	goto again
again:
	n++
done:
	_ = n
}`, "f")
	if !g.ExitReachable() {
		t.Fatal("goto-structured flow reaches exit")
	}
}

func TestGotoSelfLoopNoExit(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f(n int) {
loop:
	n++
	goto loop
}`, "f")
	if g.ExitReachable() {
		t.Fatal("goto self-loop must not reach exit")
	}
}

func TestSelectWithReturnCase(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f(stop chan struct{}, work chan int) {
	for {
		select {
		case <-stop:
			return
		case w := <-work:
			_ = w
		}
	}
}`, "f")
	if !g.ExitReachable() {
		t.Fatal("select with a return case reaches exit (the run-loop stop shape)")
	}
}

func TestSelectLoopWithoutReturnNoExit(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f(stop chan struct{}, work chan int) {
	for {
		select {
		case <-stop:
			// observed but not acted on: the loop never terminates
		case w := <-work:
			_ = w
		}
	}
}`, "f")
	if g.ExitReachable() {
		t.Fatal("select loop that never returns must not reach exit")
	}
}

func TestBareSelectBlocksForever(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f() { select {} }`, "f")
	if g.ExitReachable() {
		t.Fatal("select{} blocks forever; exit unreachable")
	}
}

func TestRangeLoopTerminates(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`, "f")
	if !g.ExitReachable() {
		t.Fatal("range loop reaches exit")
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f(n int) int {
	switch n {
	case 0:
		n = 1
		fallthrough
	case 1:
		return n
	default:
		return -1
	}
	return -2
}`, "f")
	if !g.ExitReachable() {
		t.Fatal("switch reaches exit")
	}
	// With a default present and every case returning, the statement
	// after the switch is dead: verify the builder did not add a
	// head→after edge.
	live := g.Reachable(g.Entry)
	dead := 0
	for _, b := range g.Blocks {
		if !live[b] {
			dead++
		}
	}
	if dead == 0 {
		t.Fatal("expected the post-switch block (return -2) to be unreachable")
	}
}

func TestPanicTerminates(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
func f() { for { panic("boom") } }`, "f")
	if !g.ExitReachable() {
		t.Fatal("panic terminates the function; exit reachable")
	}
}

func TestDeferIsStraightLine(t *testing.T) {
	g, _, _ := buildGraph(t, `package p
import "sync"
func f(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	_ = mu
}`, "f")
	if !g.ExitReachable() {
		t.Fatal("defer does not alter flow")
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry block has %d nodes, want 3 (lock, defer, use)", len(g.Entry.Nodes))
	}
}

// findCall locates the first call whose printed callee contains name.
func findCall(fn *ast.FuncDecl, name string) *ast.CallExpr {
	var out *ast.CallExpr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
			out = call
		}
		return true
	})
	return out
}

func TestDecidersEnclosingIf(t *testing.T) {
	src := `package p
func act() {}
func f(err error) {
	if err != nil {
		act()
	}
}`
	g, fn, _ := buildGraph(t, src, "f")
	call := findCall(fn, "act")
	blk := g.BlockOf(call)
	if blk == nil {
		t.Fatal("BlockOf failed to locate the call")
	}
	deciders := g.Deciders(blk)
	if len(deciders) != 1 {
		t.Fatalf("got %d deciders, want 1", len(deciders))
	}
	if _, ok := deciders[0].Branch.(*ast.BinaryExpr); !ok {
		t.Fatalf("decider condition is %T, want the err != nil comparison", deciders[0].Branch)
	}
}

func TestDecidersEarlyReturn(t *testing.T) {
	src := `package p
func act() {}
func f(err error) {
	if err == nil {
		return
	}
	act()
}`
	g, fn, _ := buildGraph(t, src, "f")
	blk := g.BlockOf(findCall(fn, "act"))
	deciders := g.Deciders(blk)
	if len(deciders) != 1 {
		t.Fatalf("early-return guard: got %d deciders, want 1", len(deciders))
	}
}

func TestNonDecidingBranch(t *testing.T) {
	src := `package p
func act() {}
func f(verbose bool) {
	if verbose {
		_ = verbose // both arms fall through to act
	}
	act()
}`
	g, fn, _ := buildGraph(t, src, "f")
	blk := g.BlockOf(findCall(fn, "act"))
	if n := len(g.Deciders(blk)); n != 0 {
		t.Fatalf("fall-through branch must not decide the call; got %d deciders", n)
	}
}

func TestBlockOfSkipsNestedFuncLit(t *testing.T) {
	src := `package p
func act() {}
func f() {
	g := func() { act() }
	g()
}`
	g, fn, _ := buildGraph(t, src, "f")
	if blk := g.BlockOf(findCall(fn, "act")); blk != nil {
		t.Fatal("a call inside a nested FuncLit belongs to that literal's own graph")
	}
}
