package cfg

import "go/ast"

// Reachable returns the set of blocks reachable from `from` (inclusive)
// along successor edges. The Exit block appears in the set when the
// function can terminate from there.
func (g *Graph) Reachable(from *Block) map[*Block]bool {
	seen := map[*Block]bool{from: true}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// ExitReachable reports whether the function can terminate: the Exit
// block is reachable from Entry. A false result means every execution
// eventually enters a loop (or a bare select{}) it can never leave —
// the goroutine-leak shape.
func (g *Graph) ExitReachable() bool {
	return g.Reachable(g.Entry)[g.Exit]
}

// BlockOf returns the block whose Nodes contain n (by subtree
// membership: n may sit anywhere inside one of the block's recorded
// statements or condition expressions). Returns nil when n is not in
// the graph — e.g. it belongs to a nested function literal's body,
// which has its own graph.
func (g *Graph) BlockOf(n ast.Node) *Block {
	for _, blk := range g.Blocks {
		for _, node := range blk.Nodes {
			if containsNode(node, n) {
				return blk
			}
		}
	}
	return nil
}

// containsNode reports whether needle is root itself or inside its
// subtree, without descending into nested function literals (their
// bodies belong to a different graph).
func containsNode(root, needle ast.Node) bool {
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if n == needle {
			found = true
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return true
	})
	return found
}

// Deciders returns the branch blocks whose condition decides whether
// target runs: blocks ending in a two-way test where exactly one of the
// outcome edges can reach target. Guards written as early returns
//
//	if err == nil { return }
//	redial()
//
// decide the call below them just as much as an enclosing if does, and
// both shapes land in the result. Multiway heads (switch, select,
// range) never decide — their dispatch is modelled as nondeterministic.
// Only blocks reachable from Entry are considered.
func (g *Graph) Deciders(target *Block) []*Block {
	live := g.Reachable(g.Entry)
	var out []*Block
	for _, blk := range g.Blocks {
		if !live[blk] || blk.Branch == nil || blk.TrueSucc == nil || blk.FalseSucc == nil {
			continue
		}
		trueReaches := g.Reachable(blk.TrueSucc)[target]
		falseReaches := g.Reachable(blk.FalseSucc)[target]
		if trueReaches != falseReaches {
			out = append(out, blk)
		}
	}
	return out
}
