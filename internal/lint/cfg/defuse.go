package cfg

import (
	"go/ast"
	"go/types"
)

// DefUse indexes, for one function body, which expressions each local
// variable was assigned from and where it is read. It is a flow-
// insensitive over-approximation: every assignment anywhere in the
// body counts as a possible definition, which is the conservative
// direction for the analyzers built on it (a value "may come from" a
// classifier call, a stop channel field, a context's Done channel).
type DefUse struct {
	defs map[types.Object][]ast.Expr
	uses map[types.Object][]*ast.Ident
}

// NewDefUse builds the def-use index of a function body using the
// package's type information.
func NewDefUse(info *types.Info, body ast.Node) *DefUse {
	d := &DefUse{
		defs: make(map[types.Object][]ast.Expr),
		uses: make(map[types.Object][]*ast.Ident),
	}
	if body == nil {
		return d
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			d.recordAssign(info, n.Lhs, n.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, name := range n.Names {
				lhs[i] = name
			}
			d.recordAssign(info, lhs, n.Values)
		case *ast.RangeStmt:
			// Key and Value are defined from the ranged expression; the
			// element relationship is kept coarse (the whole X).
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if obj := lhsObject(info, lhs); obj != nil {
					d.defs[obj] = append(d.defs[obj], n.X)
				}
			}
		case *ast.Ident:
			if obj, ok := info.Uses[n]; ok {
				if _, isVar := obj.(*types.Var); isVar {
					d.uses[obj] = append(d.uses[obj], n)
				}
			}
		}
		return true
	})
	return d
}

// recordAssign maps assignment targets to their source expressions:
// position-matched for 1:1 assignments, the shared right-hand side for
// tuple assignments (x, err := f()).
func (d *DefUse) recordAssign(info *types.Info, lhs, rhs []ast.Expr) {
	if len(rhs) == 0 {
		return // var x T — zero value, no defining expression
	}
	for i, l := range lhs {
		obj := lhsObject(info, l)
		if obj == nil {
			continue
		}
		src := rhs[0]
		if len(rhs) == len(lhs) {
			src = rhs[i]
		}
		d.defs[obj] = append(d.defs[obj], src)
	}
}

// lhsObject resolves an assignment target identifier to its object
// (definition or use, covering both := and =).
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := info.Defs[id]; ok && obj != nil {
		return obj
	}
	return info.Uses[id]
}

// DefExprs returns every expression assigned to obj in the body, in
// encounter order. Empty means the variable has no in-body definition
// (a parameter, a captured outer variable, or declared without value).
func (d *DefUse) DefExprs(obj types.Object) []ast.Expr {
	return d.defs[obj]
}

// Uses returns every read of obj in the body.
func (d *DefUse) Uses(obj types.Object) []*ast.Ident {
	return d.uses[obj]
}

// FlowsFromCall reports whether expr is — or, when expr is an
// identifier, any of its definitions is (one aliasing hop deep) — a
// call satisfying isMatch. It is how an analyzer sees through
//
//	ok := classify(err)
//	if ok { ... }
//
// as well as the direct `if classify(err)` form.
func (d *DefUse) FlowsFromCall(info *types.Info, expr ast.Expr, isMatch func(*ast.CallExpr) bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isMatch(n) {
				found = true
				return false
			}
		case *ast.Ident:
			obj, ok := info.Uses[n]
			if !ok {
				return true
			}
			for _, def := range d.DefExprs(obj) {
				if call, ok := def.(*ast.CallExpr); ok && isMatch(call) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
