// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, using only the standard library. It is the dataflow
// engine under internal/lint's analyzers: basic blocks with explicit
// branch conditions, reachability queries, and branch-decider analysis
// (which conditions decide whether a given block executes). A companion
// def-use index (defuse.go) chains variable uses back to the
// expressions assigned to them, so analyzers can see through
//
//	ok := paths.Retryable(err)
//	if ok { ... }
//
// the same way they see a direct classifier call in the condition.
//
// The graph is deliberately conservative and syntactic: it models
// if/for/range/switch/select/goto/labeled break and continue exactly,
// treats multiway dispatch (switch cases, select comms, range
// termination) as nondeterministic edges, routes return and panic to
// the synthetic Exit block, and keeps defer and go statements as plain
// nodes (they do not alter intraprocedural flow). It never evaluates
// conditions, so every analyzer built on it over-approximates what can
// run — the right direction for invariant checking.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Block is one basic block: a maximal run of nodes with a single
// entry, ended by at most one control transfer.
type Block struct {
	// Index is the block's position in Graph.Blocks (Entry is 0).
	Index int
	// Nodes holds the block's statements and, for branch blocks, the
	// condition expression, in source order.
	Nodes []ast.Node
	// Succs are the possible successors, in no particular order.
	Succs []*Block

	// Branch is the boolean condition the block ends with when it ends
	// in a two-way test (if condition, for condition). TrueSucc and
	// FalseSucc are then the outcome edges. Multiway transfers (switch,
	// select, range) leave Branch nil and use Succs alone.
	Branch    ast.Expr
	TrueSucc  *Block
	FalseSucc *Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block, Entry first. Exit is not in Blocks.
	Blocks []*Block
	Entry  *Block
	// Exit is the synthetic termination block: returns, panics, and
	// falling off the end all lead here. It has no nodes or successors.
	Exit *Block
}

// builder carries the construction state.
type builder struct {
	g   *Graph
	cur *Block

	// breakTargets/continueTargets map both the empty label (innermost)
	// and explicit labels to their jump targets, stack-style.
	breakTargets    []jumpTarget
	continueTargets []jumpTarget

	// labels maps a label name to the block its statement starts in,
	// for goto. Forward gotos are resolved after the walk.
	labels map[string]*Block
	gotos  []pendingGoto

	// pendingLabel is the label naming the next loop/switch/select
	// statement (for labeled break/continue).
	pendingLabel string
}

type jumpTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// New builds the control-flow graph of a function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{Exit: &Block{Index: -1}}
	b := &builder{g: g, labels: make(map[string]*Block)}
	b.cur = b.newBlock()
	g.Entry = b.cur
	b.stmts(body.List)
	// Falling off the end of the body returns.
	b.link(b.cur, g.Exit)
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.link(pg.from, target)
		}
		// A goto to an unknown label is a type error upstream; dropping
		// the edge keeps the graph well-formed.
	}
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock begins a fresh block and makes it current, linking from
// the previous current block unless from is nil.
func (b *builder) startBlock(from *Block) *Block {
	blk := b.newBlock()
	if from != nil {
		b.link(from, blk)
	}
	b.cur = blk
	return blk
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminate ends the current block with no fallthrough successor: the
// following statements (if any) start a fresh, unreachable block.
func (b *builder) terminate() {
	b.cur = b.newBlock()
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.link(b.cur, b.g.Exit)
		b.terminate()

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isPanicCall(s.X) {
			// panic terminates the function (recover is a dynamic
			// property this graph does not model).
			b.link(b.cur, b.g.Exit)
			b.terminate()
		}

	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		cond := b.cur
		cond.Nodes = append(cond.Nodes, s.Cond)
		cond.Branch = s.Cond
		then := b.startBlock(nil)
		cond.TrueSucc = then
		b.link(cond, then)
		b.stmts(s.Body.List)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			elseBlk := b.startBlock(nil)
			cond.FalseSucc = elseBlk
			b.link(cond, elseBlk)
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		after := b.newBlock()
		if s.Else == nil {
			cond.FalseSucc = after
			b.link(cond, after)
		}
		b.link(thenEnd, after)
		b.link(elseEnd, after)
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.startBlock(b.cur)
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.link(post, head)
		}
		var bodyStart *Block
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Branch = s.Cond
			bodyStart = b.newBlock()
			head.TrueSucc = bodyStart
			head.FalseSucc = after
			b.link(head, bodyStart)
			b.link(head, after)
		} else {
			bodyStart = b.newBlock()
			b.link(head, bodyStart)
			// No condition: after is reachable only through break.
		}
		b.pushLoop(label, after, post)
		b.cur = bodyStart
		b.stmts(s.Body.List)
		b.link(b.cur, post)
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.cur.Nodes = append(b.cur.Nodes, s.X)
		head := b.startBlock(b.cur)
		// The range assignment happens at the head on each iteration.
		// Only the iteration variables belong to the head — attaching
		// the whole RangeStmt would duplicate the body's nodes here.
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		after := b.newBlock()
		bodyStart := b.newBlock()
		b.link(head, bodyStart)
		b.link(head, after) // every range form can terminate
		b.pushLoop(label, after, head)
		b.cur = bodyStart
		b.stmts(s.Body.List)
		b.link(b.cur, head)
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		b.multiway(s, s.Init, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		b.multiway(s, s.Init, nil, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.breakTargets = append(b.breakTargets,
			jumpTarget{"", after}, jumpTarget{label, after})
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			caseBlk := b.newBlock()
			b.link(head, caseBlk)
			if cc.Comm != nil {
				caseBlk.Nodes = append(caseBlk.Nodes, cc.Comm)
			}
			b.cur = caseBlk
			b.stmts(cc.Body)
			b.link(b.cur, after)
		}
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-2]
		// A bare select{} has no cases: after stays unreachable, which
		// is exactly the blocks-forever semantics.
		b.cur = after

	case *ast.BranchStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breakTargets, label); t != nil {
				b.link(b.cur, t)
			}
			b.terminate()
		case token.CONTINUE:
			if t := findTarget(b.continueTargets, label); t != nil {
				b.link(b.cur, t)
			}
			b.terminate()
		case token.GOTO:
			if target, ok := b.labels[label]; ok {
				b.link(b.cur, target)
			} else {
				b.gotos = append(b.gotos, pendingGoto{b.cur, label})
			}
			b.terminate()
		case token.FALLTHROUGH:
			// Handled by multiway via fallthrough detection; as a plain
			// statement it simply ends the block (the multiway builder
			// adds the edge to the next case).
		}

	case *ast.LabeledStmt:
		// The labeled statement starts a fresh block so goto (and
		// labeled break/continue) have a target.
		blk := b.startBlock(b.cur)
		b.labels[s.Label.Name] = blk
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	default:
		// Plain statements (assignments, declarations, defer, go,
		// sends, inc/dec, empty): straight-line nodes.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// multiway builds switch and type-switch flow: the head fans out to
// every case (and to after when there is no default); fallthrough links
// one case body to the next.
func (b *builder) multiway(stmt ast.Stmt, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.cur.Nodes = append(b.cur.Nodes, init)
	}
	if tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, tag)
	}
	if ts, ok := stmt.(*ast.TypeSwitchStmt); ok {
		b.cur.Nodes = append(b.cur.Nodes, ts.Assign)
	}
	head := b.cur
	after := b.newBlock()
	b.breakTargets = append(b.breakTargets,
		jumpTarget{"", after}, jumpTarget{label, after})
	hasDefault := false
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.link(head, blk)
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, cc)
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		b.stmts(cc.Body)
		if endsInFallthrough(cc.Body) && i+1 < len(caseBlocks) {
			b.link(b.cur, caseBlocks[i+1])
			b.terminate()
		} else {
			b.link(b.cur, after)
		}
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-2]
	if !hasDefault {
		b.link(head, after)
	}
	b.cur = after
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, jumpTarget{"", brk})
	b.continueTargets = append(b.continueTargets, jumpTarget{"", cont})
	if label != "" {
		b.breakTargets = append(b.breakTargets, jumpTarget{label, brk})
		b.continueTargets = append(b.continueTargets, jumpTarget{label, cont})
	} else {
		// Keep push/pop symmetric.
		b.breakTargets = append(b.breakTargets, jumpTarget{"\x00", brk})
		b.continueTargets = append(b.continueTargets, jumpTarget{"\x00", cont})
	}
}

func (b *builder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-2]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-2]
}

// findTarget resolves a break/continue label: "" means the innermost
// enclosing construct (the last pushed empty-label entry).
func findTarget(stack []jumpTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" {
			if stack[i].label == "" {
				return stack[i].block
			}
			continue
		}
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// isPanicCall matches a direct call of the predeclared panic. Shadowed
// panic identifiers are rare enough to ignore without type information;
// the builder errs toward treating the call as terminating, which only
// ever adds an Exit edge.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
