package cfg

import (
	"go/ast"
	"testing"
)

func TestDefUseDirectCallInCondition(t *testing.T) {
	src := `package p
func classify(err error) bool { return err != nil }
func f(err error) {
	if classify(err) {
		_ = err
	}
}`
	fn, info, _ := parseFunc(t, src, "f")
	du := NewDefUse(info, fn.Body)
	cond := fn.Body.List[0].(*ast.IfStmt).Cond
	ok := du.FlowsFromCall(info, cond, func(c *ast.CallExpr) bool {
		id, isIdent := c.Fun.(*ast.Ident)
		return isIdent && id.Name == "classify"
	})
	if !ok {
		t.Fatal("direct classifier call in condition not seen")
	}
}

func TestDefUseThroughBoolVariable(t *testing.T) {
	src := `package p
func classify(err error) bool { return err != nil }
func f(err error) {
	retryable := classify(err)
	if retryable {
		_ = err
	}
}`
	fn, info, _ := parseFunc(t, src, "f")
	du := NewDefUse(info, fn.Body)
	cond := fn.Body.List[1].(*ast.IfStmt).Cond
	ok := du.FlowsFromCall(info, cond, func(c *ast.CallExpr) bool {
		id, isIdent := c.Fun.(*ast.Ident)
		return isIdent && id.Name == "classify"
	})
	if !ok {
		t.Fatal("classifier result flowing through a bool variable not seen")
	}
}

func TestDefUseTupleAssignment(t *testing.T) {
	src := `package p
func pair() (int, error) { return 0, nil }
func f() {
	v, err := pair()
	_, _ = v, err
}`
	fn, info, _ := parseFunc(t, src, "f")
	du := NewDefUse(info, fn.Body)
	// Both v and err must record the pair() call as their definition.
	assign := fn.Body.List[0].(*ast.AssignStmt)
	for _, lhs := range assign.Lhs {
		obj := lhsObject(info, lhs)
		if obj == nil {
			t.Fatalf("no object for %v", lhs)
		}
		defs := du.DefExprs(obj)
		if len(defs) != 1 {
			t.Fatalf("%s: got %d defs, want 1", obj.Name(), len(defs))
		}
		if _, ok := defs[0].(*ast.CallExpr); !ok {
			t.Fatalf("%s: def is %T, want *ast.CallExpr", obj.Name(), defs[0])
		}
	}
}

func TestDefUseRangeVariables(t *testing.T) {
	src := `package p
func f(xs []int) {
	for i, x := range xs {
		_, _ = i, x
	}
}`
	fn, info, _ := parseFunc(t, src, "f")
	du := NewDefUse(info, fn.Body)
	rng := fn.Body.List[0].(*ast.RangeStmt)
	for _, lhs := range []ast.Expr{rng.Key, rng.Value} {
		obj := lhsObject(info, lhs)
		if obj == nil {
			t.Fatalf("no object for range variable %v", lhs)
		}
		defs := du.DefExprs(obj)
		if len(defs) != 1 {
			t.Fatalf("range var %s: got %d defs, want 1", obj.Name(), len(defs))
		}
	}
}

func TestDefUseNoDefinitionForParam(t *testing.T) {
	src := `package p
func f(err error) { _ = err }`
	fn, info, _ := parseFunc(t, src, "f")
	du := NewDefUse(info, fn.Body)
	cond := fn.Body.List[0].(*ast.AssignStmt).Rhs[0]
	if du.FlowsFromCall(info, cond, func(*ast.CallExpr) bool { return true }) {
		t.Fatal("a bare parameter read must not match any call")
	}
	uses := 0
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, ok := info.Uses[id]; ok {
				uses += len(du.Uses(obj))
				return true
			}
		}
		return true
	})
	if uses == 0 {
		t.Fatal("parameter use not indexed")
	}
}
