package lint

import (
	"fmt"
	"go/ast"
)

// VCRegister enforces the virtual clock's conservatism contract
// (vclock package doc): every goroutine that executes modelled work —
// anything that parks on the discrete-event clock — must be a
// registered model participant, started with vclock.Go or bracketed
// with vclock.Register/Unregister. A plain `go` goroutine that reaches
// a vclock-blocking call corrupts the runnable count: its sleep
// decrements a credit it never added, the clock runs ahead of (or
// stalls behind) the model, and the run deadlocks. This is exactly the
// PR-4 archive-drain bug — an unregistered driver goroutine pulling a
// scope during Stop — promoted from a runtime hang to a static error.
//
// "Reaches" is computed transitively over the package's own functions
// (a fixed point over local calls), with a curated table of blocking
// roots: the vclock primitives themselves, hrtime's clock-aware sleeps,
// blocking PastSet reads, and the cross-package model entry points
// (paths operations, escope pulls, vnet calls and occupancy). The
// deliberately-unregistered escape hatches (hrtime.SleepOutside,
// vclock.SleepOutside) are not roots, and a body that calls
// vclock.Register is trusted to pair it with Unregister. Test files are
// exempt: test drivers park on ordinary channels by design.
var VCRegister = &Analyzer{
	Name: "vcregister",
	Doc: "require goroutines that reach vclock-blocking calls (paths ops, escope pulls, " +
		"modelled sleeps, PastSet reads) to be registered model goroutines — vclock.Go or " +
		"Register/Unregister — so an unregistered sleep cannot stall the virtual clock",
	Run: runVCRegister,
}

// vcBlockingFuncs are package-level functions that park the caller on
// the virtual clock.
var vcBlockingFuncs = map[[2]string]bool{
	{"eventspace/internal/vclock", "Sleep"}:         true,
	{"eventspace/internal/hrtime", "Sleep"}:         true,
	{"eventspace/internal/hrtime", "SleepUnscaled"}: true,
}

// vcBlockingMethods are methods — concrete or interface — that perform
// modelled blocking work. Receiver types resolve through pointers, and
// interface receivers (paths.Wrapper) cover every wrapper chain.
var vcBlockingMethods = map[[3]string]bool{
	{"eventspace/internal/vclock", "Cond", "Wait"}:      true,
	{"eventspace/internal/vclock", "Sem", "Acquire"}:    true,
	{"eventspace/internal/vclock", "WaitGroup", "Wait"}: true,
	{"eventspace/internal/vclock", "Event", "Wait"}:     true,
	{"eventspace/internal/vclock", "Queue", "Pop"}:      true,
	{"eventspace/internal/pastset", "Cursor", "Next"}:   true,
	{"eventspace/internal/escope", "Scope", "Pull"}:     true,
	{"eventspace/internal/paths", "Wrapper", "Op"}:      true,
	{"eventspace/internal/paths", "Remote", "Op"}:       true,
	{"eventspace/internal/paths", "Gather", "Op"}:       true,
	{"eventspace/internal/paths", "Path", "Op"}:         true,
	{"eventspace/internal/paths", "BatchReader", "Op"}:  true,
	{"eventspace/internal/vnet", "Conn", "Call"}:        true,
	{"eventspace/internal/vnet", "Host", "Occupy"}:      true,
}

func runVCRegister(pass *Pass) error {
	if !goroutinePkgs[pass.Pkg.Path] {
		return nil
	}
	decls := funcDecls(pass.Pkg)

	// blocking maps each package-local function to an exemplar blocking
	// call it reaches ("" = not blocking), computed as a fixed point:
	// directly blocking bodies seed the set, then callers of blocking
	// local functions join it until nothing changes.
	blocking := make(map[*ast.BlockStmt]string)
	var bodies []*ast.BlockStmt
	bodyOf := make(map[string]*ast.BlockStmt)
	for fn, decl := range decls {
		if decl.Body != nil {
			bodies = append(bodies, decl.Body)
			bodyOf[fn.FullName()] = decl.Body
		}
	}
	describe := func(body *ast.BlockStmt) string {
		if root := directBlockingCall(pass, body); root != "" {
			return root
		}
		for _, callee := range localCallees(pass.Pkg, decls, body) {
			if calleeBody := bodyOf[callee.FullName()]; calleeBody != nil {
				if root := blocking[calleeBody]; root != "" {
					return fmt.Sprintf("%s (via %s)", root, callee.Name())
				}
			}
		}
		return ""
	}
	for changed := true; changed; {
		changed = false
		for _, body := range bodies {
			if blocking[body] != "" {
				continue
			}
			if root := describe(body); root != "" {
				blocking[body] = root
				changed = true
			}
		}
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			goStmt, ok := n.(*ast.GoStmt)
			if !ok || isTestFile(pass, n) {
				return true
			}
			body, what := launchBody(pass.Pkg, decls, goStmt.Call.Fun)
			if body == nil {
				return true
			}
			root := blocking[body]
			if root == "" {
				root = describe(body)
			}
			if root == "" {
				return true
			}
			if callsRegister(pass, body) {
				return true
			}
			pass.Reportf(goStmt.Pos(),
				"unregistered goroutine (%s) reaches the vclock-blocking call %s; "+
					"start it with vclock.Go or bracket it with vclock.Register/Unregister — "+
					"an unregistered modelled wait corrupts the clock's runnable count and stalls RunVirtual "+
					"(the archive final-drain deadlock class)",
				what, root)
			return true
		})
	}
	return nil
}

// directBlockingCall returns a printable name of the first
// vclock-blocking call in body, "" when there is none.
func directBlockingCall(pass *Pass, body ast.Node) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass.Pkg.Info, call.Fun); fn != nil && fn.Pkg() != nil {
			if vcBlockingFuncs[[2]string{fn.Pkg().Path(), fn.Name()}] {
				found = shortPkg(fn.Pkg().Path()) + "." + fn.Name()
				return false
			}
		}
		if pkgPath, typ, meth, ok := methodCallOn(pass.Pkg.Info, call); ok {
			if vcBlockingMethods[[3]string{pkgPath, typ, meth}] {
				found = fmt.Sprintf("(%s.%s).%s", shortPkg(pkgPath), typ, meth)
				return false
			}
		}
		return true
	})
	return found
}

// callsRegister reports whether body registers itself with the clock.
func callsRegister(pass *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if pkgFuncCall(pass.Pkg.Info, call, "eventspace/internal/vclock", "Register") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// shortPkg trims an import path to its final element for messages.
func shortPkg(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
