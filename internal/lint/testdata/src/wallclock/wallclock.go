// Package wallclock is a lint fixture. The test loads it under the
// import path of an instrumented package, so every wall-clock read
// must be flagged.
package wallclock

import (
	"time"

	"eventspace/internal/hrtime"
)

// Banned wall-clock reads: each line must produce a finding.
func banned() {
	start := time.Now()             // want `time\.Now reads wall time in instrumented package`
	_ = time.Since(start)           // want `time\.Since reads wall time in instrumented package`
	time.Sleep(time.Millisecond)    // want `time\.Sleep reads wall time in instrumented package`
	<-time.After(time.Millisecond)  // want `time\.After reads wall time in instrumented package`
	t := time.NewTimer(time.Second) // want `time\.NewTimer reads wall time in instrumented package`
	t.Stop()
	tk := time.NewTicker(time.Second) // want `time\.NewTicker reads wall time in instrumented package`
	tk.Stop()
}

// Modelled time and time's non-clock identifiers stay allowed.
func allowed() {
	start := hrtime.Now()
	_ = hrtime.Since(start)
	hrtime.Sleep(2 * time.Millisecond) // time.Duration constants are fine
	var d time.Duration = time.Microsecond
	_ = d
}

// A line-scoped annotation with a reason suppresses the finding.
func annotated() {
	deadline := time.Now() //lint:allow wallclock fixture exercises the escape hatch
	_ = deadline
	//lint:allow wallclock annotation on the line above also counts
	_ = time.Now()
}

// A local identifier named time is not the time package.
func shadowed() {
	time := struct{ Now func() int }{Now: func() int { return 0 }}
	_ = time.Now()
}
