//lint:file-allow wallclock this whole file measures real elapsed time on purpose
package wallclock

import "time"

// File-scoped allow: nothing here is flagged.
func wallTimedHelper() time.Duration {
	start := time.Now()
	time.Sleep(time.Microsecond)
	return time.Since(start)
}
