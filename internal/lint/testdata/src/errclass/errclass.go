// Package errclass is a lint fixture for the error-classification
// analyzer: retry and redial decisions must flow through the
// transport-vs-application classifier, never a raw err != nil test —
// retrying an application error re-executes a remote side effect.
package errclass

import (
	"errors"

	"eventspace/internal/paths"
)

type conn struct {
	attempts int
}

func (c *conn) redial()      {}
func (c *conn) growBackoff() {}
func (c *conn) noteFault()   {}

// RawGuard treats every error as a dead transport: the bug shape.
func (c *conn) RawGuard(err error) {
	if err != nil {
		c.redial() // want `decided by the raw error test err != nil`
	}
}

// EarlyReturn guards with the inverted shape; the decider analysis
// sees it the same way.
func (c *conn) EarlyReturn(err error) {
	if err == nil {
		return
	}
	c.redial() // want `decided by the raw error test err == nil`
}

// Compound still classifies by raw nil-ness, just with a bound.
func (c *conn) Compound(err error, max int) {
	if err != nil && c.attempts < max {
		c.growBackoff() // want `decided by the raw error test`
	}
}

// Classified is the accepted shape: the classifier's verdict decides.
func (c *conn) Classified(err error) {
	if paths.Retryable(err) {
		c.redial()
	}
}

// ThroughVar flows the verdict through a local: the def-use chain
// connects it back to the classifier call.
func (c *conn) ThroughVar(err error) {
	ok := paths.Retryable(err)
	if ok {
		c.redial()
	}
}

// Sentinel classifies against a concrete value with errors.Is: also
// deliberate classification.
func (c *conn) Sentinel(err error) {
	if errors.Is(err, paths.ErrNoNext) {
		c.noteFault()
	}
}

// Paced is decided by a counter, not an error: out of scope.
func (c *conn) Paced() {
	if c.attempts > 0 {
		c.growBackoff()
	}
}

// AllowedPacing documents an accepted raw-test exception.
func (c *conn) AllowedPacing(err error) {
	if err != nil {
		//lint:allow errclass backoff here paces the loop; the retry decision is upstream
		c.growBackoff()
	}
}
