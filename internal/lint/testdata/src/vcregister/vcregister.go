// Package vcregister is a lint fixture for the clock-registration
// analyzer: a plain goroutine that reaches a vclock-blocking call must
// be a registered model participant, or the clock's runnable count
// corrupts (the archive final-drain deadlock, PR 4).
package vcregister

import (
	"time"

	"eventspace/internal/hrtime"
	"eventspace/internal/vclock"
)

// Recorder mirrors the archive.Recorder drain shapes.
type Recorder struct {
	queue *vclock.Queue[int]
	done  chan struct{}
}

// StartUnregistered is the PR-4 bug: a plain goroutine sleeping on the
// modelled clock.
func (r *Recorder) StartUnregistered() {
	go func() { // want `unregistered goroutine .* vclock\.Sleep`
		vclock.Sleep(time.Millisecond)
	}()
}

// StartModel is the fix: vclock.Go registers the goroutine for its
// whole lifetime.
func (r *Recorder) StartModel() {
	vclock.Go(func() {
		vclock.Sleep(time.Millisecond)
	})
}

// StartBracketed is the other legal form: explicit registration.
func (r *Recorder) StartBracketed() {
	go func() {
		vclock.Register()
		defer vclock.Unregister()
		vclock.Sleep(time.Millisecond)
	}()
}

// StartTransitive reaches the blocking Pop two local calls deep.
func (r *Recorder) StartTransitive() {
	go r.drainLoop() // want `unregistered goroutine .*Pop \(via drainOne\)`
}

func (r *Recorder) drainLoop() {
	for r.drainOne() {
	}
}

func (r *Recorder) drainOne() bool {
	_, ok := r.queue.Pop()
	return ok
}

// StartDriver uses the deliberately-unregistered sleep: legal for
// drivers that must not count as model goroutines.
func (r *Recorder) StartDriver() {
	go func() {
		hrtime.SleepOutside(time.Millisecond)
		close(r.done)
	}()
}

// StartPlain parks on an ordinary channel only: no modelled work, no
// registration needed.
func (r *Recorder) StartPlain() {
	go func() {
		<-r.done
	}()
}

// StartAllowed documents an accepted exception.
func (r *Recorder) StartAllowed() {
	//lint:allow vcregister registration happens inside Pop's callee in this shape
	go func() {
		vclock.Sleep(time.Millisecond)
	}()
}
