package lockedsend

import "sync"

// breaker is the straggler-circuit-breaker shape from escope: state
// guarded by a mutex, with observers notified on a channel when the
// breaker trips. The deadlock class under test: a trip decided while
// holding the state mutex must not block on the notify channel — the
// observer might be stuck behind that same mutex reading breaker
// health.
type breaker struct {
	mu     sync.Mutex
	open   bool
	trips  uint64
	notify chan struct{}
}

// badTrip trips and notifies under the held state mutex.
func (b *breaker) badTrip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.open = true
	b.trips++
	b.notify <- struct{}{} // want `channel send b\.notify <- \.\.\. while holding b\.mu`
}

// goodTrip decides under the mutex, notifies after releasing it.
func (b *breaker) goodTrip() {
	b.mu.Lock()
	b.open = true
	b.trips++
	b.mu.Unlock()
	b.notify <- struct{}{}
}

// goodTripNonBlocking: a select with default cannot block, so a
// best-effort wakeup under the mutex is allowed.
func (b *breaker) goodTripNonBlocking() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.open = true
	b.trips++
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// badHalfOpenProbe blocks on the observer channel inside a blocking
// select while the breaker mutex is held across the trial decision.
func (b *breaker) badHalfOpenProbe(result chan error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.notify <- struct{}{}: // want `blocking select send b\.notify <- \.\.\. while holding b\.mu`
	case <-result:
	}
}
