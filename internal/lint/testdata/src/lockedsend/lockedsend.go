// Package lockedsend is a lint fixture: blocking sends and blocking
// PastSet reads while holding a mutex are the monitor's deadlock
// class.
package lockedsend

import (
	"sync"

	"eventspace/internal/pastset"
)

type S struct {
	mu sync.Mutex
	ch chan int
	c  *pastset.Cursor
}

// badSend blocks on the channel while the receiver may be stuck on mu.
func (s *S) badSend() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send s\.ch <- \.\.\. while holding s\.mu`
	s.mu.Unlock()
}

// goodSend releases first.
func (s *S) goodSend() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}

// deferHeld: a deferred unlock holds the lock for the whole body.
func (s *S) deferHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `channel send s\.ch <- \.\.\. while holding s\.mu`
}

// nonBlocking: select with default cannot block, allowed under a lock.
func (s *S) nonBlocking() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// blockingSelect: no default, the send blocks.
func (s *S) blockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1: // want `blocking select send s\.ch <- \.\.\. while holding s\.mu`
	}
}

// badNext blocks on a PastSet cursor while holding the lock the writer
// may need.
func (s *S) badNext() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.c.Next() // want `blocking PastSet call s\.c\.Next while holding s\.mu`
}

// goodNext: no lock held.
func (s *S) goodNext() {
	_, _ = s.c.Next()
}

// tryNext is the non-blocking API and is always allowed.
func (s *S) tryNext() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.c.TryNext()
}

// goroutineUnderLock: the goroutine body runs without this frame's
// locks, so its send is fine.
func (s *S) goroutineUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}

// branchScoped: a lock taken inside a branch does not leak out.
func (s *S) branchScoped(cond bool) {
	if cond {
		s.mu.Lock()
		s.mu.Unlock()
	}
	s.ch <- 1
}

// annotated documents a known-safe send (e.g. buffered channel sized
// to the senders).
func (s *S) annotated() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 //lint:allow lockedsend channel is buffered to the sender count
}
