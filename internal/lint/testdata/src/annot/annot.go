// Package annot is a lint fixture for the annotation contract: an
// allow without a reason is itself a finding and suppresses nothing.
// The test asserts the exact diagnostics (no want comments here — the
// malformed-annotation finding lands on the annotation's own line,
// where a want comment cannot sit).
package annot

import "time"

func bare() {
	//lint:allow wallclock
	_ = time.Now()
}

func reasoned() {
	_ = time.Now() //lint:allow wallclock a reason makes it valid
}
