// Package hotalloc is a lint fixture for the zero-allocation analyzer:
// functions marked //lint:hotpath (and the local functions they call)
// must not contain reachable heap allocations.
package hotalloc

import "fmt"

// Record mirrors the fixed-size trace record shapes.
type Record struct {
	buf [64]byte
	n   int
}

// EncodeTo is the clean hot-path shape: stack scratch, no allocation.
//
//lint:hotpath gated by the zero-alloc benchmark in CI
func (r *Record) EncodeTo(dst []byte) int {
	var scratch [8]byte
	for i := range scratch {
		scratch[i] = byte(r.n >> (8 * i))
	}
	return copy(dst, scratch[:])
}

// EncodeSloppy collects every allocation shape the analyzer knows.
//
//lint:hotpath fixture: every line below must be flagged
func (r *Record) EncodeSloppy(dst []byte, v any) string {
	tmp := make([]byte, 8) // want `call to make`
	dst = append(dst, tmp...) // want `call to append`
	s := string(dst) // want `string conversion`
	msg := fmt.Sprintf("%d", r.n) // want `call to fmt\.Sprintf`
	sink = &Record{} // want `&composite literal`
	sinkSlice = []int{1, 2} // want `slice literal`
	fn := func() {} // want `function literal`
	fn()
	go fn() // want `go statement`
	box(r.n) // want `interface boxing`
	return s + msg // want `string concatenation`
}

// EncodeCold allocates only after a panic: the CFG filter must not
// flag the unreachable statement.
//
//lint:hotpath fixture: unreachable alloc below
func (r *Record) EncodeCold() int {
	panic("fixture: EncodeCold never runs")
	_ = make([]byte, 8)
	return 0
}

// EncodeVia reaches an allocation through a local helper: the helper
// joins the hot set and the finding lands at its allocation.
//
//lint:hotpath fixture: propagation root
func (r *Record) EncodeVia(dst []byte) int {
	return r.grow(dst)
}

func (r *Record) grow(dst []byte) int {
	dst = append(dst, r.buf[:r.n]...) // want `reachable from //lint:hotpath root EncodeVia`
	return len(dst)
}

// EncodeAllowed shows the explained cold path.
//
//lint:hotpath fixture: annotated exception
func (r *Record) EncodeAllowed(dst []byte) error {
	if r.n > len(r.buf) {
		//lint:allow hotalloc corruption check, fires at most once per run
		return fmt.Errorf("record overflow: %d", r.n)
	}
	return nil
}

// Unmarked allocates freely: no marker, no findings.
func Unmarked() []byte {
	return append(make([]byte, 0, 8), 1)
}

// box takes an interface parameter; pointer arguments store directly.
func box(v any) { sinkAny = v }

var (
	sink      *Record
	sinkSlice []int
	sinkAny   any
)
