// Package goroleak is a lint fixture for the goroutine-leak analyzer:
// every goroutine started in an instrumented package must have a
// reachable stop path in its control flow.
package goroleak

import "eventspace/internal/vclock"

// Puller mirrors the escope.Puller run-loop shapes.
type Puller struct {
	stop   chan struct{}
	events chan int
	pull   func() int
}

// StartLeaky launches the PR-2 leak shape: a pull loop with no stop
// check can never terminate.
func (p *Puller) StartLeaky() {
	go p.runForever() // want `can never terminate`
}

func (p *Puller) runForever() {
	for {
		p.events <- p.pull()
	}
}

// StartStoppable is the accepted shape: the select observes stop and
// returns.
func (p *Puller) StartStoppable() {
	go p.run()
}

func (p *Puller) run() {
	for {
		select {
		case <-p.stop:
			return
		case p.events <- p.pull():
		}
	}
}

// StartObserverOnly observes the stop channel but never acts on it:
// the loop still cannot terminate.
func (p *Puller) StartObserverOnly() {
	go func() { // want `can never terminate`
		for {
			select {
			case <-p.stop:
				// seen, but the loop goes around again
			case p.events <- p.pull():
			}
		}
	}()
}

// StartModel leaks identically under vclock.Go: registration does not
// make an unstoppable body stoppable.
func (p *Puller) StartModel() {
	vclock.Go(func() { // want `can never terminate`
		for {
			p.events <- p.pull()
		}
	})
}

// StartBounded runs a bounded drain: straight-line termination.
func (p *Puller) StartBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			p.events <- p.pull()
		}
	}()
}

// StartDynamic launches a func value: not resolvable, not checked.
func (p *Puller) StartDynamic(fn func()) {
	go fn()
}

// StartAllowed carries the annotation form with its mandatory reason.
func (p *Puller) StartAllowed() {
	//lint:allow goroleak daemon by design, killed with the process
	go p.runForever()
}
