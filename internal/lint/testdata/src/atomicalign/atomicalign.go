// Package atomicalign is a lint fixture: 64-bit sync/atomic calls on
// struct fields must hit 8-byte-aligned offsets under 32-bit layout.
package atomicalign

import "sync/atomic"

// bad puts a 4-byte field first, leaving n at offset 4 on 386.
type bad struct {
	flag uint32
	n    int64
}

func badAdd(b *bad) {
	atomic.AddInt64(&b.n, 1) // want `atomic\.AddInt64\(&b\.n\): field is at offset 4 under 32-bit layout`
}

func badLoad(b *bad) int64 {
	return atomic.LoadInt64(&b.n) // want `atomic\.LoadInt64\(&b\.n\): field is at offset 4 under 32-bit layout`
}

// good keeps 64-bit atomics first.
type good struct {
	n    uint64
	m    uint64
	flag uint32
}

func goodOps(g *good) {
	atomic.AddUint64(&g.n, 1)
	atomic.StoreUint64(&g.m, 7)
}

// 32-bit atomics have no 8-byte requirement.
func word32(b *bad) {
	atomic.AddUint32(&b.flag, 1)
}

// locals start at an allocation boundary; only struct fields are
// checked.
func local() {
	var n int64
	atomic.AddInt64(&n, 1)
}

// modern atomic types carry their own align64 guarantee, and produce
// no sync/atomic function call to flag.
type modern struct {
	flag uint32
	n    atomic.Uint64
}

func modernAdd(m *modern) {
	m.n.Add(1)
}

// annotated acknowledges a deliberate layout.
func annotatedAdd(b *bad) {
	atomic.AddInt64(&b.n, 1) //lint:allow atomicalign fixture: 32-bit targets out of scope for this struct
}
