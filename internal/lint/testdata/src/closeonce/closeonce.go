// Package closeonce is a lint fixture reproducing the Puller.Stop
// double-close bug class (PR 2): a Stop method that bare-closes its
// stop channel panics when two goroutines race into it.
package closeonce

import "sync"

// Puller mirrors escope.Puller's lifecycle fields.
type Puller struct {
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	events   chan int
}

// StopRacy is the PR-2 bug verbatim: a boolean guard does not stop two
// goroutines that both observe stopped == false.
func (p *Puller) StopRacy() {
	close(p.stop) // want `close\(p\.stop\) of a stop channel outside sync\.Once\.Do`
}

// StopSafe is the accepted fix shape.
func (p *Puller) StopSafe() {
	p.stopOnce.Do(func() { close(p.stop) })
}

// run's deferred close is single-owner and carries the ownership
// argument as an annotation.
func (p *Puller) run() {
	//lint:allow closeonce the run loop is the done channel's sole closer
	defer close(p.done)
}

// runUnannotated shows the same close without the annotation.
func (p *Puller) runUnannotated() {
	defer close(p.done) // want `close\(p\.done\) of a stop channel outside sync\.Once\.Do`
}

// closeData closes a non-lifecycle channel field: allowed.
func (p *Puller) closeData() {
	close(p.events)
}

// closeLocal closes a local channel: allowed, locals cannot be
// double-closed by a racing Stop.
func closeLocal() {
	ch := make(chan struct{})
	close(ch)
}

// notSyncOnce: a Do method on something that is not sync.Once does not
// count as protection.
type fakeOnce struct{}

func (fakeOnce) Do(f func()) { f() }

func (p *Puller) stopFakeOnce() {
	var o fakeOnce
	o.Do(func() {
		close(p.stop) // want `close\(p\.stop\) of a stop channel outside sync\.Once\.Do`
	})
}
