// Package nilsafe is a lint fixture loaded under the metrics package's
// import path: exported pointer-receiver methods must open with a nil
// guard before touching fields, because nil receivers are the
// documented disabled configuration.
package nilsafe

// Op mirrors a metrics site.
type Op struct {
	n     uint64
	name  string
	inner struct{ hits uint64 }
}

// Bad reads a field with no guard: a nil *Op panics.
func (o *Op) Bad() uint64 { // want `exported method \(\*Op\)\.Bad touches receiver fields without an .if o == nil. guard first`
	return o.n
}

// BadWrite writes a field with no guard.
func (o *Op) BadWrite() { // want `exported method \(\*Op\)\.BadWrite touches receiver fields without an .if o == nil. guard first`
	o.n++
}

// BadLate guards only after already touching a field.
func (o *Op) BadLate() uint64 { // want `exported method \(\*Op\)\.BadLate touches receiver fields without an .if o == nil. guard first`
	v := o.n
	if o == nil {
		return 0
	}
	return v
}

// Good opens with the guard.
func (o *Op) Good() uint64 {
	if o == nil {
		return 0
	}
	return o.n
}

// GoodReversed accepts the flipped comparison.
func (o *Op) GoodReversed() string {
	if nil == o {
		return ""
	}
	return o.name
}

// GoodLater may run field-free statements before the guard
// (Registry.Snapshot's shape: declare the zero return value first).
func (o *Op) GoodLater() uint64 {
	var total uint64
	if o == nil {
		return total
	}
	total += o.n
	return total
}

// NoFields never touches receiver state, so it needs no guard.
func (o *Op) NoFields() string { return "op" }

// value receivers cannot be nil-dereferenced through the contract.
func (o Op) Value() uint64 { return o.n }

// unexported methods are internal and may assume non-nil.
func (o *Op) internal() uint64 { return o.n }

// Allowed documents why it skips the guard.
//
//lint:allow nilsafe init-time only; the registry never hands out nil here
func (o *Op) Allowed() uint64 { return o.n }
