// Package wallclock_out is a lint fixture loaded under a
// non-instrumented import path: wall time is legal here, so the file
// has no want comments and must produce no findings.
package wallclock_out

import "time"

func benchTimer() time.Duration {
	start := time.Now()
	time.Sleep(time.Microsecond)
	return time.Since(start)
}
