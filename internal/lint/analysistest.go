package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// FindModuleRoot walks up from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// wantRe matches a fixture expectation comment: one or more quoted
// regular expressions after "// want".
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRe extracts the individual quoted patterns.
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")

// expectation is one unmatched want pattern at a fixture line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// Fixtures live under testdata/src/<dir>; each is a package checked
// under an import path of the test's choosing (so a fixture can pose
// as an instrumented package). Expected findings are "// want"
// comments on the offending line, golang.org/x/tools/go/analysis/
// analysistest style:
//
//	start := time.Now() // want `time\.Now reads wall time`
//
// Every diagnostic must match a want on its line and every want must
// be matched, else the errors are returned.
type fixtureResult struct {
	Diags  []Diagnostic
	Errors []string
}

// runFixture loads testdata/src/<dir> as asPath and checks analyzer
// findings against the fixture's want comments.
func runFixture(loader *Loader, a *Analyzer, testdata, dir, asPath string) (*fixtureResult, error) {
	fixDir := filepath.Join(testdata, "src", dir)
	pkgs, err := loader.LoadAs(fixDir, asPath)
	if err != nil {
		return nil, err
	}
	res := &fixtureResult{}
	var wants []*expectation
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, []*Analyzer{a})
		if err != nil {
			return nil, err
		}
		res.Diags = append(res.Diags, diags...)
		w, err := collectWants(fixDir, pkg)
		if err != nil {
			return nil, err
		}
		wants = append(wants, w...)
	}
	matched := make([]bool, len(wants))
	for _, d := range res.Diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			res.Errors = append(res.Errors, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for i, w := range wants {
		if !matched[i] {
			res.Errors = append(res.Errors,
				fmt.Sprintf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw))
		}
	}
	return res, nil
}

// collectWants parses the want comments out of a fixture package.
func collectWants(dir string, pkg *Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					pat := q
					if strings.HasPrefix(q, "\"") {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %w", pos.Filename, pos.Line, q, err)
						}
					} else {
						pat = strings.Trim(q, "`")
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %s: %w", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  q,
					})
				}
			}
		}
	}
	return wants, nil
}
