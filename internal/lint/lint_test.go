package lint

import (
	"strings"
	"sync"
	"testing"
)

// One loader for the whole test binary: the source importer's std
// cache is the expensive part, and it is shared across fixtures.
var (
	loaderOnce sync.Once
	testLoader *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		testLoader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return testLoader
}

// checkFixture runs one analyzer over one fixture dir posing as asPath
// and fails on any mismatch with the fixture's want comments.
func checkFixture(t *testing.T, a *Analyzer, dir, asPath string) *fixtureResult {
	t.Helper()
	res, err := runFixture(fixtureLoader(t), a, "testdata", dir, asPath)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	for _, e := range res.Errors {
		t.Error(e)
	}
	return res
}

func TestWallclockFixture(t *testing.T) {
	res := checkFixture(t, Wallclock, "wallclock", "eventspace/internal/collect")
	if len(res.Diags) == 0 {
		t.Fatal("wallclock flagged nothing in an instrumented fixture")
	}
}

func TestWallclockScopedToInstrumentedPackages(t *testing.T) {
	res := checkFixture(t, Wallclock, "wallclock_out", "eventspace/cmd/esbench")
	if len(res.Diags) != 0 {
		t.Fatalf("wallclock fired outside instrumented packages: %v", res.Diags)
	}
}

func TestCloseOnceFixture(t *testing.T) {
	res := checkFixture(t, CloseOnce, "closeonce", "eventspace/internal/escope")
	// The fixture reproduces the Puller.Stop double-close: the racy
	// Stop must be among the findings.
	found := false
	for _, d := range res.Diags {
		if strings.Contains(d.Message, "close(p.stop)") {
			found = true
		}
	}
	if !found {
		t.Fatal("closeonce missed the Puller.Stop double-close reproduction")
	}
}

func TestNilSafeFixture(t *testing.T) {
	res := checkFixture(t, NilSafe, "nilsafe", "eventspace/internal/metrics")
	if len(res.Diags) == 0 {
		t.Fatal("nilsafe flagged nothing")
	}
}

func TestNilSafeScopedToMetrics(t *testing.T) {
	res, err := runFixture(fixtureLoader(t), NilSafe, "testdata", "nilsafe", "eventspace/internal/paths")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("nilsafe fired outside the metrics package: %v", res.Diags)
	}
}

func TestAtomicAlignFixture(t *testing.T) {
	res := checkFixture(t, AtomicAlign, "atomicalign", "eventspace/internal/lintfixture/atomicalign")
	if len(res.Diags) == 0 {
		t.Fatal("atomicalign flagged nothing")
	}
}

func TestLockedSendFixture(t *testing.T) {
	res := checkFixture(t, LockedSend, "lockedsend", "eventspace/internal/lintfixture/lockedsend")
	if len(res.Diags) == 0 {
		t.Fatal("lockedsend flagged nothing")
	}
}

func TestGoroleakFixture(t *testing.T) {
	res := checkFixture(t, Goroleak, "goroleak", "eventspace/internal/escope")
	if len(res.Diags) != 3 {
		t.Fatalf("goroleak found %d leaks, want 3: %v", len(res.Diags), res.Diags)
	}
}

func TestGoroleakScopedToGoroutinePackages(t *testing.T) {
	res, err := runFixture(fixtureLoader(t), Goroleak, "testdata", "goroleak", "eventspace/cmd/esbench")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("goroleak fired outside the instrumented packages: %v", res.Diags)
	}
}

func TestVCRegisterFixture(t *testing.T) {
	res := checkFixture(t, VCRegister, "vcregister", "eventspace/internal/archive")
	// Both the direct sleep and the transitive queue drain must land.
	var direct, transitive bool
	for _, d := range res.Diags {
		if strings.Contains(d.Message, "vclock.Sleep") {
			direct = true
		}
		if strings.Contains(d.Message, "via drainOne") {
			transitive = true
		}
	}
	if !direct || !transitive {
		t.Fatalf("vcregister missed a bug shape (direct=%v transitive=%v): %v", direct, transitive, res.Diags)
	}
}

func TestHotallocFixture(t *testing.T) {
	res := checkFixture(t, Hotalloc, "hotalloc", "eventspace/internal/lintfixture/hotalloc")
	if len(res.Diags) < 10 {
		t.Fatalf("hotalloc found only %d allocation sites: %v", len(res.Diags), res.Diags)
	}
}

func TestErrClassFixture(t *testing.T) {
	res := checkFixture(t, ErrClass, "errclass", "eventspace/internal/escope")
	if len(res.Diags) != 3 {
		t.Fatalf("errclass found %d raw retry deciders, want 3: %v", len(res.Diags), res.Diags)
	}
}

func TestErrClassScopedToTransportPackages(t *testing.T) {
	res, err := runFixture(fixtureLoader(t), ErrClass, "testdata", "errclass", "eventspace/internal/collect")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("errclass fired outside paths/escope: %v", res.Diags)
	}
}

// TestAnnotationNeedsReason: a bare //lint:allow is reported under the
// pseudo-analyzer "lint" and does not suppress the finding it sits on.
func TestAnnotationNeedsReason(t *testing.T) {
	loader := fixtureLoader(t)
	pkgs, err := loader.LoadAs("testdata/src/annot", "eventspace/internal/collect")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages", len(pkgs))
	}
	diags, err := RunPackage(pkgs[0], []*Analyzer{Wallclock})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawUnsuppressed bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "lint" && strings.Contains(d.Message, "needs a reason"):
			sawMalformed = true
		case d.Analyzer == "wallclock":
			sawUnsuppressed = true
		}
	}
	if !sawMalformed {
		t.Error("bare lint:allow was not reported as malformed")
	}
	if !sawUnsuppressed {
		t.Error("bare lint:allow suppressed the finding it sits on")
	}
	if len(diags) != 2 {
		t.Errorf("want exactly 2 diagnostics (malformed + unsuppressed), got %d: %v", len(diags), diags)
	}
}

// TestSuiteCleanOnRepo is the acceptance gate: the whole suite over
// the whole module must report nothing. This is the same run CI does
// via cmd/eslint.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := fixtureLoader(t)
	pkgs, err := loader.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("module load found only %d packages", len(pkgs))
	}
	perPkg, err := RunPackages(pkgs, Suite(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, diags := range perPkg {
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestAuditAnnotationsCleanOnRepo is the lint-fix-check gate: every
// //lint:allow in the module carries a reason and names a real
// analyzer. Fixtures under testdata (which carry deliberately bare
// annotations) are excluded by the walk itself.
func TestAuditAnnotationsCleanOnRepo(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := AuditAnnotations(root, Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
