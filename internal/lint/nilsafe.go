package lint

import (
	"go/ast"
	"go/types"
)

// NilSafe verifies the self-metrics disabled contract: a nil *Registry
// hands out nil *Op and nil *Counter values, and every collector write
// site calls methods on them unconditionally, so every exported
// pointer-receiver method in the metrics package that touches receiver
// state must open with a nil guard. A missing guard turns the
// "≤1ns when disabled" promise into a panic on the hot path.
var NilSafe = &Analyzer{
	Name: "nilsafe",
	Doc: "require exported pointer-receiver methods in the metrics package to guard r == nil " +
		"before touching fields; nil receivers are the documented disabled configuration",
	Run: runNilSafe,
}

func runNilSafe(pass *Pass) error {
	if !nilSafePkgs[pass.Pkg.Path] {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recvObj, recvType := recvPointerObj(info, fn)
			if recvObj == nil {
				continue
			}
			if guardedBeforeAccess(info, fn.Body, recvObj) {
				continue
			}
			pass.Reportf(fn.Name.Pos(),
				"exported method (*%s).%s touches receiver fields without an `if %s == nil` guard first; nil receivers are the disabled configuration and must stay no-ops",
				recvType, fn.Name.Name, recvObj.Name())
		}
	}
	return nil
}

// recvPointerObj returns the receiver variable and its base type name
// when fn has a named pointer receiver.
func recvPointerObj(info *types.Info, fn *ast.FuncDecl) (*types.Var, string) {
	if len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil, "" // anonymous receiver can't be guarded
	}
	name := fn.Recv.List[0].Names[0]
	obj, ok := info.Defs[name].(*types.Var)
	if !ok {
		return nil, ""
	}
	ptr, ok := obj.Type().(*types.Pointer)
	if !ok {
		return nil, ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil, ""
	}
	return obj, named.Obj().Name()
}

// guardedBeforeAccess walks the body's top-level statements in order:
// a method is safe when it either never touches receiver fields, or an
// `if recv == nil { ... }` guard appears before the first statement
// that does.
func guardedBeforeAccess(info *types.Info, body *ast.BlockStmt, recv *types.Var) bool {
	for _, stmt := range body.List {
		if ifStmt, ok := stmt.(*ast.IfStmt); ok && isNilGuard(info, ifStmt, recv) {
			return true
		}
		if touchesField(info, stmt, recv) {
			return false
		}
	}
	return true
}

// touchesField reports whether n contains a field read or write of the
// receiver.
func touchesField(info *types.Info, n ast.Node, recv *types.Var) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		sel, ok := node.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || info.Uses[ident] != recv {
			return true
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			found = true
			return false
		}
		return true
	})
	return found
}

// isNilGuard matches `if recv == nil { ... }` (or `if nil == recv`).
func isNilGuard(info *types.Info, ifStmt *ast.IfStmt, recv *types.Var) bool {
	if ifStmt.Init != nil {
		return false
	}
	bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && info.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilConst := info.Uses[id].(*types.Nil)
		return isNilConst
	}
	return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
}
