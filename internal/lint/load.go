package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked unit ready for analysis: the package's
// syntax (including in-package _test.go files) plus full type
// information.
type Package struct {
	// Path is the import path the package was checked under. Analyzers
	// scope themselves by it (see instrumentedPkgs).
	Path string
	// Dir is the directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of one module using only
// the standard library: module-internal imports resolve recursively
// against the module tree, everything else through the toolchain's
// source importer. Importable (test-free) package versions are cached,
// so a whole-module load checks each package once.
type Loader struct {
	fset   *token.FileSet
	std    types.Importer
	module string // module path from go.mod
	root   string // module root directory

	imported map[string]*types.Package // test-free versions, by import path
	loading  map[string]bool           // cycle guard
	loadedAs map[string][]*Package     // LoadAs results, by dir + "\x00" + path
}

// NewLoader returns a loader for the module rooted at root (the
// directory holding go.mod).
func NewLoader(root string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		module:   module,
		root:     root,
		imported: make(map[string]*types.Package),
		loading:  make(map[string]bool),
		loadedAs: make(map[string][]*Package),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.module }

// Import resolves one import path: module-internal paths against the
// module tree (test-free), everything else through the source
// importer. It makes *Loader a types.Importer for its own checks.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.moduleDir(path); ok {
		return l.importModulePkg(path, dir)
	}
	return l.std.Import(path)
}

// moduleDir maps a module-internal import path to its directory.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.module {
		return l.root, true
	}
	if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
		return filepath.Join(l.root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// importModulePkg type-checks the test-free version of a module
// package, memoized.
func (l *Loader) importModulePkg(path, dir string) (*types.Package, error) {
	if pkg, ok := l.imported[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, _, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	l.imported[path] = pkg
	return pkg, nil
}

// parseDir parses a directory's .go files (with comments). With tests
// true it includes _test.go files of the package itself; files of an
// external _test package are returned separately.
func (l *Loader) parseDir(dir string, tests bool) (files, xtest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var pkgName string
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if !strings.HasSuffix(name, "_test.go") {
			if pkgName == "" {
				pkgName = f.Name.Name
			}
			files = append(files, f)
			continue
		}
		// In-package test file or external (pkg_test) test file.
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			files = append(files, f)
		}
	}
	return files, xtest, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// LoadAs parses and type-checks one directory, test files included,
// under the given import path. Fixtures use this to pose as
// instrumented packages. When the directory holds an external _test
// package it is checked too and returned second. Results are memoized
// by (dir, path): a test binary running many analyzers over the same
// fixture — or the suite gate re-walking the module — checks each
// directory once.
func (l *Loader) LoadAs(dir, path string) ([]*Package, error) {
	key := dir + "\x00" + path
	if pkgs, ok := l.loadedAs[key]; ok {
		return pkgs, nil
	}
	pkgs, err := l.loadAs(dir, path)
	if err != nil {
		return nil, err
	}
	l.loadedAs[key] = pkgs
	return pkgs, nil
}

func (l *Loader) loadAs(dir, path string) ([]*Package, error) {
	files, xtest, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 && len(xtest) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var pkgs []*Package
	if len(files) > 0 {
		info := newInfo()
		conf := types.Config{Importer: l}
		tpkg, err := conf.Check(path, l.fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s (with tests): %w", path, err)
		}
		pkgs = append(pkgs, &Package{
			Path: path, Dir: dir, Fset: l.fset,
			Files: files, Types: tpkg, Info: info,
		})
	}
	if len(xtest) > 0 {
		info := newInfo()
		conf := types.Config{Importer: l}
		tpkg, err := conf.Check(path+"_test", l.fset, xtest, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s_test: %w", path, err)
		}
		pkgs = append(pkgs, &Package{
			Path: path + "_test", Dir: dir, Fset: l.fset,
			Files: xtest, Types: tpkg, Info: info,
		})
	}
	return pkgs, nil
}

// LoadModule loads every package under the module root (the ./...
// pattern), skipping testdata, hidden directories, and directories
// without Go files. Each package is type-checked with its in-package
// test files.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		path := l.module
		if rel != "." {
			path = l.module + "/" + filepath.ToSlash(rel)
		}
		loaded, err := l.LoadAs(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}
