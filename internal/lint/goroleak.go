package lint

import (
	"go/ast"

	"eventspace/internal/lint/cfg"
)

// Goroleak requires every goroutine started in an instrumented package
// to have a reachable stop path. The control-flow graph of the spawned
// body must be able to reach the function's exit: a select case on a
// stop/done channel that returns, a context-cancellation return, a
// bounded loop, or straight-line code all qualify. A body whose CFG can
// never terminate — for {} around a pull with no stop check, a select
// loop that observes its stop channel but never returns — is the
// Puller/Recorder leak class: the goroutine outlives its owner, holds
// its buffers and connections forever, and under the virtual clock
// keeps the model alive after the driver finished.
//
// Launches via both plain `go` statements and vclock.Go are checked
// (registration is vcregister's concern; leaking is leaking either
// way). Named package-local functions are resolved one level deep;
// dynamic callees (func values, cross-package calls) are skipped.
// Test files are exempt: test goroutines die with the test binary.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc: "require every goroutine in instrumented packages to have a reachable stop path " +
		"(a terminating CFG: stop-channel return, context cancellation, or bounded loop); " +
		"non-terminating bodies are the Puller/Recorder leak class",
	Run: runGoroleak,
}

// goroutinePkgs are the packages whose goroutines must be provably
// stoppable (and, for vcregister, clock-registered): the instrumented
// set plus the core façade that owns recorder/monitor lifecycles.
var goroutinePkgs = func() map[string]bool {
	m := map[string]bool{"eventspace/internal/core": true}
	for p := range instrumentedPkgs {
		m[p] = true
	}
	return m
}()

func runGoroleak(pass *Pass) error {
	if !goroutinePkgs[pass.Pkg.Path] {
		return nil
	}
	decls := funcDecls(pass.Pkg)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fun, launch := launchSite(pass, n)
			if fun == nil || isTestFile(pass, n) {
				return true
			}
			body, what := launchBody(pass.Pkg, decls, fun)
			if body == nil {
				return true
			}
			g := cfg.New(body)
			if g.ExitReachable() {
				return true
			}
			pass.Reportf(n.Pos(),
				"goroutine (%s) started by %s can never terminate: no return is reachable in its control flow; "+
					"add a stop path (select on a stop/done channel or ctx.Done() that returns, or bound the loop) — "+
					"leaked pullers and recorders outlive their owners and pin buffers and connections",
				what, launch)
			return true
		})
	}
	return nil
}

// launchSite matches the two goroutine launch shapes: a plain go
// statement, and vclock.Go(fn). Returns the expression that runs.
func launchSite(pass *Pass, n ast.Node) (fun ast.Expr, how string) {
	switch n := n.(type) {
	case *ast.GoStmt:
		return n.Call.Fun, "go statement"
	case *ast.CallExpr:
		if len(n.Args) == 1 && pkgFuncCall(pass.Pkg.Info, n, "eventspace/internal/vclock", "Go") {
			return n.Args[0], "vclock.Go"
		}
	}
	return nil, ""
}
