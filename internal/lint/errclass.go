package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"eventspace/internal/lint/cfg"
)

// ErrClass requires retry and redial decisions to flow through the
// transport-vs-application error classifier. The paths package draws a
// hard line (errors.go): transport faults (ErrConnClosed, timeouts,
// net.OpError) are the caller's cue to redial or back off, while
// application errors from a healthy remote must surface unchanged —
// retrying those re-executes a side effect the remote already
// performed. The classifier functions paths.Retryable, paths.ConnDead,
// and paths.IsRemote (plus errors.Is/As against sentinel values)
// encode that line once.
//
// The analyzer finds calls to retry-shaped actions (redial, reconnect,
// noteFault, backoff growth) inside paths and escope, asks the CFG
// which branch conditions decide whether the action runs — the
// enclosing `if` and the early-return guard shapes both count — and
// flags actions whose decision set contains a raw error-nil comparison
// and no classifier verdict at all. `if err != nil { redial() }`
// treats a remote's application error as a dead transport; a success
// short-circuit above a Retryable test is fine, because the classifier
// still decides. The def-use chains see through
// `ok := paths.Retryable(err); if ok { redial() }`, so the fix is
// never forced to inline the classifier into the condition.
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc: "require retry/redial/fault decisions in paths and escope to be decided by the " +
		"transport-vs-application classifier (paths.Retryable/ConnDead/IsRemote or " +
		"errors.Is/As), never by a raw err != nil test",
	Run: runErrClass,
}

// errclassPkgs are the packages whose retry decisions are checked: the
// transport layer itself and the scope runtime that drives it.
var errclassPkgs = map[string]bool{
	"eventspace/internal/paths":  true,
	"eventspace/internal/escope": true,
}

// errclassActionWords match callee names that commit to a retry
// decision (lowercased substring match: tryReconnect, growBackoff and
// plain Backoff all land).
var errclassActionWords = []string{"redial", "reconnect", "notefault", "backoff"}

// errclassClassifiers are the functions whose boolean verdicts are
// allowed to decide a retry.
var errclassClassifiers = map[[2]string]bool{
	{"eventspace/internal/paths", "Retryable"}: true,
	{"eventspace/internal/paths", "ConnDead"}:  true,
	{"eventspace/internal/paths", "IsRemote"}:  true,
	{"errors", "Is"}:                           true,
	{"errors", "As"}:                           true,
}

func runErrClass(pass *Pass) error {
	if !errclassPkgs[pass.Pkg.Path] {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isTestFile(pass, fn) {
				continue
			}
			checkRetryDeciders(pass, fn.Body)
			// Function literals have their own graphs; check each.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkRetryDeciders(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkRetryDeciders runs the decider analysis over one function body:
// for every retry-action call, every raw error-nil branch that decides
// it is a finding.
func checkRetryDeciders(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var actions []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals are checked on their own
		}
		if call, ok := n.(*ast.CallExpr); ok && isRetryAction(info, call) {
			actions = append(actions, call)
		}
		return true
	})
	if len(actions) == 0 {
		return
	}
	g := cfg.New(body)
	du := cfg.NewDefUse(info, body)
	isClassifier := func(call *ast.CallExpr) bool {
		fn := calleeFunc(info, call.Fun)
		return fn != nil && fn.Pkg() != nil &&
			errclassClassifiers[[2]string{fn.Pkg().Path(), fn.Name()}]
	}
	for _, action := range actions {
		blk := g.BlockOf(action)
		if blk == nil {
			continue
		}
		// A single classified decider anywhere in the chain means the
		// decision went through the classifier: the success short-circuit
		// `if err == nil { return rep, nil }` above a Retryable test is
		// fine. Only a raw error test with no classifier in the whole
		// decision set misroutes application errors.
		var rawCond ast.Expr
		classified := false
		for _, decider := range g.Deciders(blk) {
			cond := decider.Branch
			if du.FlowsFromCall(info, cond, isClassifier) {
				classified = true
				break
			}
			if rawCond == nil && isRawErrNilTest(info, cond) {
				rawCond = cond
			}
		}
		if classified || rawCond == nil {
			continue
		}
		pass.Reportf(action.Pos(),
			"retry action %s is decided by the raw error test %s; classify first — "+
				"paths.Retryable/ConnDead for transport faults, paths.IsRemote for application "+
				"errors that must surface unchanged (retrying those re-executes remote side effects)",
			calleeName(info, action), condString(rawCond))
	}
}

// isRetryAction reports whether the call's callee name contains a
// retry-decision word. Matching by name keeps the net wide enough to
// catch helpers (tryReconnect, growBackoff) without a curated table
// per package.
func isRetryAction(info *types.Info, call *ast.CallExpr) bool {
	name := calleeName(info, call)
	if name == "" {
		return false
	}
	lower := strings.ToLower(name)
	for _, w := range errclassActionWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

// calleeName returns the bare name of the called function or method,
// "" for dynamic calls.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call.Fun); fn != nil {
		return fn.Name()
	}
	// A func-valued variable (m.redial stored in a field) still commits
	// the action; use the syntactic name.
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// isRawErrNilTest reports whether cond contains an ==/!= comparison of
// an error-typed operand against nil. Compound conditions count: in
// `err != nil && attempts < max` the raw test is still the error
// classification.
func isRawErrNilTest(info *types.Info, cond ast.Expr) bool {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		x, y := info.Types[bin.X], info.Types[bin.Y]
		operand := x
		if x.IsNil() {
			operand = y
		} else if !y.IsNil() {
			return true // not a nil comparison
		}
		if operand.Type != nil && types.Implements(operand.Type, errType) {
			found = true
			return false
		}
		return true
	})
	return found
}

// condString renders a condition expression compactly for diagnostics.
func condString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		return condString(e.X) + " " + e.Op.String() + " " + condString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + condString(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return condString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return "(" + condString(e.X) + ")"
	case *ast.CallExpr:
		return condString(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	}
	return "..."
}
