package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// AuditAnnotations walks every .go file under root (testdata, hidden
// and underscore directories skipped — fixtures carry deliberately
// malformed annotations) and checks each //lint:allow and
// //lint:file-allow against the suite: a reason is mandatory, and the
// named analyzers must exist. It only parses — no type-checking — so
// `make lint-fix-check` stays near-instant even though the analyzer
// run itself costs a whole-module type-check.
//
// The reason-less case is also caught at analysis time (RunPackage
// reports it under the pseudo-analyzer "lint"), but only for packages
// where analyzers run; the audit covers every file and additionally
// rejects annotations whose analyzer name a rename or a typo has
// orphaned — those would otherwise suppress nothing, silently.
func AuditAnnotations(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	known := map[string]bool{"lint": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var files []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") {
			files = append(files, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	var diags []Diagnostic
	for _, file := range files {
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[3]) == "" {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  fmt.Sprintf("lint:%s %s needs a reason; a bare annotation suppresses nothing", m[1], m[2]),
					})
				}
				for _, name := range strings.Split(m[2], ",") {
					name = strings.TrimSpace(name)
					if name != "" && !known[name] {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  fmt.Sprintf("lint:%s names unknown analyzer %q; the annotation suppresses nothing", m[1], name),
						})
					}
				}
			}
		}
	}
	return diags, nil
}
