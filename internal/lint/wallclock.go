package lint

import (
	"go/ast"
	"go/types"
)

// wallclockBanned are the package-time functions that read or wait on
// wall time. Constants (time.Microsecond) and types (time.Duration)
// stay allowed; only the clock itself is banned.
var wallclockBanned = map[string]string{
	"Now":       "hrtime.Now",
	"Since":     "hrtime.Since",
	"Sleep":     "hrtime.Sleep (or vclock.SleepOutside in a driver loop)",
	"Until":     "hrtime-based arithmetic",
	"After":     "a stop channel plus hrtime.Sleep",
	"Tick":      "a loop around hrtime.Sleep",
	"NewTicker": "a loop around hrtime.Sleep",
	"NewTimer":  "a stop channel plus hrtime.Sleep",
	"AfterFunc": "a goroutine around hrtime.Sleep",
}

// Wallclock forbids wall-time reads in instrumented packages. Under
// RunVirtual the whole stack runs on the discrete-event clock; one
// stray time.Now puts wall-time stamps into histograms and traces and
// silently breaks determinism (the PR-1 vclock sleep-accounting bug
// class). Everything on the monitoring path must use hrtime/vclock.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/time.Sleep (and friends) in instrumented packages; " +
		"use hrtime.Now/hrtime.Since/hrtime.Sleep or vclock.SleepOutside so RunVirtual stays on modelled time",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	if !instrumentedPkgs[pass.Pkg.Path] {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, _ []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			repl, banned := wallclockBanned[sel.Sel.Name]
			if !banned {
				return
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return
			}
			pn, ok := pass.Pkg.Info.Uses[ident].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads wall time in instrumented package %s; use %s so histograms and traces stay on modelled time under RunVirtual",
				sel.Sel.Name, pass.Pkg.Types.Name(), repl)
		})
	}
	return nil
}
