package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared call-resolution helpers for the dataflow analyzers: mapping
// goroutine launch sites to the bodies they run, and call expressions
// to the package-level functions or (possibly interface) methods they
// invoke.

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(pass *Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Pkg.Fset.Position(n.Pos()).Filename, "_test.go")
}

// funcDecls indexes a package's function declarations by their type
// objects, so call expressions and function values can be resolved back
// to bodies.
func funcDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	idx := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
				idx[obj] = fn
			}
		}
	}
	return idx
}

// calleeFunc resolves a function-valued expression (an identifier or a
// method selector) to its *types.Func, nil when the value is dynamic
// (a func variable, field, or literal).
func calleeFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	case *ast.ParenExpr:
		return calleeFunc(info, e.X)
	}
	return nil
}

// launchBody resolves what a goroutine launch runs: a function literal
// returns its own body; a named package-local function or method
// returns that declaration's body. Cross-package and dynamic callees
// return nil (not analyzable here).
func launchBody(pkg *Package, decls map[*types.Func]*ast.FuncDecl, fun ast.Expr) (*ast.BlockStmt, string) {
	switch f := fun.(type) {
	case *ast.FuncLit:
		return f.Body, "func literal"
	case *ast.ParenExpr:
		return launchBody(pkg, decls, f.X)
	}
	if obj := calleeFunc(pkg.Info, fun); obj != nil {
		if decl, ok := decls[obj]; ok && decl.Body != nil {
			return decl.Body, obj.Name()
		}
	}
	return nil, ""
}

// pkgFuncCall reports whether call invokes the package-level function
// pkgPath.name (methods excluded).
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call.Fun)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// methodCallOn resolves a method call's receiver to (package path, type
// name, method name). Pointer receivers are unwrapped; interface
// receivers resolve to the interface's own named type, so curated root
// tables can name interfaces (paths.Wrapper) and concrete types alike.
func methodCallOn(info *types.Info, call *ast.CallExpr) (pkgPath, typeName, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	selection, found := info.Selections[sel]
	if !found || selection.Kind() != types.MethodVal {
		return "", "", "", false
	}
	recv := selection.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return "", "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), sel.Sel.Name, true
}

// localCallees returns the package-local functions (and methods) a body
// calls directly, resolved through the declaration index.
func localCallees(pkg *Package, decls map[*types.Func]*ast.FuncDecl, body ast.Node) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg.Info, call.Fun)
		if fn == nil || seen[fn] {
			return true
		}
		if _, local := decls[fn]; local {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}
