package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"eventspace/internal/lint/cfg"
)

// Hotalloc keeps the marked hot paths allocation-free, statically. A
// function whose doc comment carries a `//lint:hotpath` line promises
// the zero-allocation contract the runtime benchmarks gate (mark
// collector encode, PastSet fixed-record writes, the breaker skip
// path): every CFG-reachable heap-allocation construct inside it — and
// inside any package-local function it calls — is a finding. The
// recognized allocation shapes are make/new/append, slice and map
// composite literals, &T{} escapes, function literals (closure
// capture), go statements, fmt/errors calls, string<->[]byte
// conversions, non-constant string concatenation, and value arguments
// boxed into interface parameters.
//
// Cold paths that genuinely must allocate (an error construction behind
// a corruption check) stay visible and get an explicit
// `//lint:allow hotalloc <reason>` — the contract is "no unexplained
// allocation", not "no error handling".
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid reachable heap allocations (make/new/append, composite literals, closures, " +
		"boxing, fmt, string conversions) in functions marked //lint:hotpath and the " +
		"package-local functions they call",
	Run: runHotalloc,
}

func runHotalloc(pass *Pass) error {
	decls := funcDecls(pass.Pkg)

	// hot maps each function that must stay allocation-free to the
	// marked root it is reachable from: the marked functions seed the
	// set, then package-local callees join it transitively.
	hot := make(map[*types.Func]string)
	var queue []*types.Func
	for fn, decl := range decls {
		if decl.Body != nil && isHotpathMarked(decl) && !isTestFile(pass, decl) {
			hot[fn] = fn.Name()
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range localCallees(pass.Pkg, decls, decls[fn].Body) {
			if _, seen := hot[callee]; seen {
				continue
			}
			if decl, ok := decls[callee]; ok && decl.Body != nil {
				hot[callee] = hot[fn]
				queue = append(queue, callee)
			}
		}
	}

	for fn, root := range hot {
		checkHotBody(pass, decls[fn], fn.Name(), root)
	}
	return nil
}

// isHotpathMarked reports whether the declaration's doc comment carries
// a //lint:hotpath line.
func isHotpathMarked(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, "lint:hotpath") {
			return true
		}
	}
	return false
}

// checkHotBody reports every reachable allocation construct in one hot
// function body. Nested function literals are flagged as allocations
// themselves but their interiors are not walked (they run on their own
// stack frames and, if called locally, join the hot set on their own).
func checkHotBody(pass *Pass, decl *ast.FuncDecl, name, root string) {
	g := cfg.New(decl.Body)
	live := g.Reachable(g.Entry)
	reachable := func(n ast.Node) bool {
		blk := g.BlockOf(n)
		return blk == nil || live[blk]
	}
	where := fmt.Sprintf("hot path %s", name)
	if root != name {
		where = fmt.Sprintf("%s (reachable from //lint:hotpath root %s)", name, root)
	}
	report := func(n ast.Node, what string) {
		if reachable(n) {
			pass.Reportf(n.Pos(), "%s in %s: the zero-allocation contract forbids it; "+
				"restructure onto the stack or annotate the cold path with a reason", what, where)
		}
	}
	handled := make(map[ast.Node]bool)
	info := pass.Pkg.Info
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "function literal (closure allocation)")
			return false
		case *ast.GoStmt:
			report(n, "go statement (goroutine allocation)")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := n.X.(*ast.CompositeLit); ok {
					handled[lit] = true
					report(n, "&composite literal (escapes to the heap)")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
					report(n, "string concatenation (builds a new string)")
				}
			}
		case *ast.CompositeLit:
			if handled[n] {
				return true
			}
			if t := info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n, "slice literal")
				case *types.Map:
					report(n, "map literal")
				}
			}
		case *ast.CallExpr:
			classifyHotCall(pass, n, report)
		}
		return true
	})
}

// classifyHotCall reports the allocating call shapes: allocation
// builtins, conversions that copy string/byte data, fmt/errors
// formatting, and interface boxing of value arguments.
func classifyHotCall(pass *Pass, call *ast.CallExpr, report func(ast.Node, string)) {
	info := pass.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				report(call, "call to "+b.Name())
			case "append":
				report(call, "call to append (growth allocates)")
			}
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// A conversion: only string <-> []byte/[]rune copies.
		if len(call.Args) == 1 && isAllocatingConversion(tv.Type, info.Types[call.Args[0]].Type) {
			report(call, "string conversion (copies the data)")
		}
		return
	}
	if fn := calleeFunc(info, call.Fun); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "errors":
			// Formatting allocates the result and boxes its operands;
			// one diagnostic covers the call.
			report(call, "call to "+fn.Pkg().Name()+"."+fn.Name())
			return
		}
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // an existing slice is passed through unboxed
			}
			pt = params.At(params.Len() - 1).Type().Underlying().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := info.Types[arg]
		if !types.IsInterface(pt) || at.Type == nil || at.IsNil() ||
			types.IsInterface(at.Type) || pointerShaped(at.Type) {
			continue
		}
		report(arg, "interface boxing of a value argument")
	}
}

// isAllocatingConversion reports whether converting from -> to copies
// backing data (string <-> []byte / []rune in either direction).
func isAllocatingConversion(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether boxing a value of t into an interface
// stores the word directly, with no allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
