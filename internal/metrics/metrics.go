// Package metrics is EventSpace's self-observability subsystem: it
// accounts for the cost of monitoring the monitor. The paper's central
// claim is that monitoring is cheap enough to leave on (section 6.1:
// 1.1 µs per event-collector write, 0-2% application overhead); this
// package gives the monitoring stack itself — remote stubs, gather
// wrappers, event collectors, batch readers, event-scope pulls, gather
// threads, retry and health machinery — the same per-operation
// accounting, so every later performance change can be measured against
// it.
//
// The recording path is lock-free: an operation site is an Op holding
// atomic counters and a fixed-bucket latency histogram with
// power-of-two bucket bounds. Registration (Registry.Op, Registry.
// Counter) takes a mutex but happens only at build time; the hot path
// is a handful of atomic adds. Durations are hrtime durations, so runs
// under the discrete-event virtual clock record exact, deterministic
// distributions.
//
// Everything is optional: a nil *Registry hands out nil *Op and nil
// *Counter values whose methods are no-ops, so an uninstrumented build
// pays only a nil check on each site.
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies an instrumented operation site by the wrapper (or
// loop) it measures.
type Kind uint8

// Operation-site kinds, in the order they appear in reports.
const (
	// KindStub measures a paths.Remote call (encode, round trip,
	// retries and redials included).
	KindStub Kind = iota
	// KindGather measures a paths.Gather over its children.
	KindGather
	// KindCollector measures an event collector's own tuple write (the
	// paper's 1.1 µs figure), not the operation it instruments.
	KindCollector
	// KindReader measures a paths.BatchReader drain.
	KindReader
	// KindScopePull measures one full pull through an event scope's
	// root; bytes are the records moved to the front-end.
	KindScopePull
	// KindArchive measures trace-archive I/O: block writes on the
	// writer side, segment scans on the reader side; bytes are the
	// segment bytes moved.
	KindArchive
	// KindReconfig measures runtime tree-repair operations: re-parenting
	// an orphaned host, promoting a replacement gateway, and rebuilding
	// front-end monitor state from the archive on failover. The
	// histogram is the repair latency distribution.
	KindReconfig
	// KindBreaker measures a straggler circuit breaker's guarded calls:
	// the latency of deadline-bounded child gathers (overruns and skips
	// are accounted in the scope's breaker counters).
	KindBreaker
	// KindIngest measures a monitor's bounded ingest-queue drain: the
	// time from a gathered batch's enqueue to its application, with bytes
	// counting the batch payload (sheds are accounted in counters).
	KindIngest
	// KindQuery measures the continuous-query engine's per-batch
	// evaluation: the time to ingest one gathered batch through every
	// standing query, with bytes counting the batch payload.
	KindQuery
	// KindCheckpoint measures recovery-checkpoint writes: the time to
	// snapshot and persist one monitor-state checkpoint, with bytes
	// counting the encoded checkpoint frame.
	KindCheckpoint
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindStub:
		return "stub"
	case KindGather:
		return "gather"
	case KindCollector:
		return "collector"
	case KindReader:
		return "reader"
	case KindScopePull:
		return "scope-pull"
	case KindArchive:
		return "archive"
	case KindReconfig:
		return "reconfig"
	case KindBreaker:
		return "breaker"
	case KindIngest:
		return "ingest"
	case KindQuery:
		return "query"
	case KindCheckpoint:
		return "checkpoint"
	default:
		return "kind(?)"
	}
}

// NumBuckets is the histogram size. Bucket i holds durations whose
// nanosecond value has bit length i: bucket 0 is exactly 0 ns, bucket i
// covers [2^(i-1), 2^i) ns. Bucket 39 (upper bound ≈ 9.2 minutes)
// absorbs everything longer.
const NumBuckets = 40

// BucketBound returns bucket i's exclusive upper bound in nanoseconds.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= NumBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

func bucketIndex(ns int64) int {
	if ns <= 0 {
		return 0
	}
	i := bits.Len64(uint64(ns))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Histogram is a lock-free fixed-bucket latency histogram with
// power-of-two bucket bounds. The zero value is NOT ready for use;
// histograms live inside Ops, which initialize them.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64 // MaxInt64 until first observation
	max     atomic.Int64
}

func (h *Histogram) init() { h.min.Store(math.MaxInt64) }

// Observe records one duration in nanoseconds. A nil histogram is a
// no-op, matching the registry's disabled configuration.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   uint64
	SumNS   int64
	MinNS   int64 // 0 when Count == 0
	MaxNS   int64
	Buckets [NumBuckets]uint64
}

func (h *Histogram) snapshot() HistSnapshot {
	var s HistSnapshot
	// Counters are read individually; a concurrent Observe can make the
	// copy slightly inconsistent, which is fine for reporting.
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	if s.Count > 0 {
		s.MinNS = h.min.Load()
		s.MaxNS = h.max.Load()
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// MeanNS returns the mean duration in nanoseconds (0 when empty).
func (s HistSnapshot) MeanNS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}

// Quantile estimates the p-quantile (p in [0,1]) in nanoseconds from
// the bucket counts, clamped to the observed min/max. Within a bucket
// the estimate is the bucket's upper bound, so estimates are
// conservative (never below the true quantile's bucket).
func (s HistSnapshot) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			est := BucketBound(i) - 1
			if est < s.MinNS {
				est = s.MinNS
			}
			if est > s.MaxNS {
				est = s.MaxNS
			}
			return est
		}
	}
	return s.MaxNS
}

// merge folds o into s bucket-wise.
func (s *HistSnapshot) merge(o HistSnapshot) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.MinNS, s.MaxNS = o.MinNS, o.MaxNS
	} else {
		if o.MinNS < s.MinNS {
			s.MinNS = o.MinNS
		}
		if o.MaxNS > s.MaxNS {
			s.MaxNS = o.MaxNS
		}
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Op is one instrumented operation site: op/error counts, bytes moved,
// and a latency histogram. All methods are safe on a nil receiver (the
// disabled path), and all recording is lock-free.
type Op struct {
	kind  Kind
	name  string
	ops   atomic.Uint64
	errs  atomic.Uint64
	bytes atomic.Uint64
	lat   Histogram
}

// Kind returns the site's kind (KindStub on a nil site).
func (o *Op) Kind() Kind {
	if o == nil {
		return KindStub
	}
	return o.kind
}

// Name returns the site's name ("" on a nil site).
func (o *Op) Name() string {
	if o == nil {
		return ""
	}
	return o.name
}

// Record accounts one operation: its hrtime duration in nanoseconds,
// the payload bytes it moved, and whether it failed.
func (o *Op) Record(durNS int64, bytes int, err error) {
	if o == nil {
		return
	}
	o.ops.Add(1)
	if err != nil {
		o.errs.Add(1)
	}
	if bytes > 0 {
		o.bytes.Add(uint64(bytes))
	}
	o.lat.Observe(durNS)
}

// Counter is a named monotonic count (retries, redials, health
// transitions, loop events). Safe on a nil receiver.
type Counter struct {
	name string
	n    atomic.Uint64
}

// Name returns the counter's name ("" on a nil counter).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

type opKey struct {
	kind Kind
	name string
}

// Registry hands out operation sites and counters and snapshots them.
// A nil *Registry is valid and hands out nil sites: the disabled
// configuration.
type Registry struct {
	mu       sync.Mutex
	ops      map[opKey]*Op
	opOrder  []*Op
	counters map[string]*Counter
	ctrOrder []*Counter
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		ops:      make(map[opKey]*Op),
		counters: make(map[string]*Counter),
	}
}

// Op returns the site for (kind, name), creating it on first use. The
// same pair always yields the same *Op. Returns nil on a nil registry.
func (r *Registry) Op(kind Kind, name string) *Op {
	if r == nil {
		return nil
	}
	k := opKey{kind, name}
	r.mu.Lock()
	defer r.mu.Unlock()
	if o, ok := r.ops[k]; ok {
		return o
	}
	o := &Op{kind: kind, name: name}
	o.lat.init()
	r.ops[k] = o
	r.opOrder = append(r.opOrder, o)
	return o
}

// Counter returns the counter for name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	r.ctrOrder = append(r.ctrOrder, c)
	return c
}

// OpStats is one site's snapshot.
type OpStats struct {
	Kind  Kind
	Name  string
	Ops   uint64
	Errs  uint64
	Bytes uint64
	Lat   HistSnapshot
}

// CounterStat is one counter's snapshot.
type CounterStat struct {
	Name  string
	Value uint64
}

// Snapshot is the registry's typed point-in-time tree: every operation
// site sorted by kind then name, and every counter sorted by name.
type Snapshot struct {
	Ops      []OpStats
	Counters []CounterStat
}

// Snapshot copies the registry's current state. Safe on a nil registry
// (returns an empty snapshot) and concurrently with recording.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	ops := append([]*Op(nil), r.opOrder...)
	ctrs := append([]*Counter(nil), r.ctrOrder...)
	r.mu.Unlock()
	for _, o := range ops {
		s.Ops = append(s.Ops, OpStats{
			Kind:  o.kind,
			Name:  o.name,
			Ops:   o.ops.Load(),
			Errs:  o.errs.Load(),
			Bytes: o.bytes.Load(),
			Lat:   o.lat.snapshot(),
		})
	}
	for _, c := range ctrs {
		s.Counters = append(s.Counters, CounterStat{Name: c.name, Value: c.n.Load()})
	}
	sort.SliceStable(s.Ops, func(i, j int) bool {
		if s.Ops[i].Kind != s.Ops[j].Kind {
			return s.Ops[i].Kind < s.Ops[j].Kind
		}
		return s.Ops[i].Name < s.Ops[j].Name
	})
	sort.SliceStable(s.Counters, func(i, j int) bool {
		return s.Counters[i].Name < s.Counters[j].Name
	})
	return s
}

// ByKind returns the snapshot's sites of one kind, in name order.
func (s Snapshot) ByKind(k Kind) []OpStats {
	var out []OpStats
	for _, o := range s.Ops {
		if o.Kind == k {
			out = append(out, o)
		}
	}
	return out
}

// Totals merges the snapshot's sites into one aggregate OpStats per
// kind present (bucket-wise histogram merge), in kind order. The
// aggregate's Name is the kind name and its Ops/Errs/Bytes are sums.
func (s Snapshot) Totals() []OpStats {
	var by [numKinds]*OpStats
	for _, o := range s.Ops {
		t := by[o.Kind]
		if t == nil {
			t = &OpStats{Kind: o.Kind, Name: o.Kind.String()}
			by[o.Kind] = t
		}
		t.Ops += o.Ops
		t.Errs += o.Errs
		t.Bytes += o.Bytes
		t.Lat.merge(o.Lat)
	}
	var out []OpStats
	for _, t := range by {
		if t != nil {
			out = append(out, *t)
		}
	}
	return out
}

// Sites counts the snapshot's sites of one kind.
func (s Snapshot) Sites(k Kind) int { return len(s.ByKind(k)) }
