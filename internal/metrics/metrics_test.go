package metrics

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"eventspace/internal/hrtime"
	"eventspace/internal/vclock"
)

func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{1023, 10}, {1024, 11}, {1 << 38, NumBuckets - 1},
		{math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every bucket's contents are below its bound.
	for i := 0; i < NumBuckets-1; i++ {
		if b := BucketBound(i); bucketIndex(b-1) > i || bucketIndex(b) <= i {
			t.Errorf("bucket %d bound %d does not separate", i, b)
		}
	}
}

func TestOpRecordAndSnapshot(t *testing.T) {
	r := New()
	op := r.Op(KindStub, "s1")
	op.Record(100, 10, nil)
	op.Record(200, 20, errors.New("boom"))
	op.Record(50, 0, nil)

	s := r.Snapshot()
	if len(s.Ops) != 1 {
		t.Fatalf("snapshot ops = %d, want 1", len(s.Ops))
	}
	o := s.Ops[0]
	if o.Kind != KindStub || o.Name != "s1" {
		t.Fatalf("site identity = %v/%q", o.Kind, o.Name)
	}
	if o.Ops != 3 || o.Errs != 1 || o.Bytes != 30 {
		t.Fatalf("ops/errs/bytes = %d/%d/%d", o.Ops, o.Errs, o.Bytes)
	}
	if o.Lat.Count != 3 || o.Lat.SumNS != 350 || o.Lat.MinNS != 50 || o.Lat.MaxNS != 200 {
		t.Fatalf("hist = %+v", o.Lat)
	}
	if mean := o.Lat.MeanNS(); mean < 116 || mean > 117 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestQuantileWithinObservedRange(t *testing.T) {
	r := New()
	op := r.Op(KindGather, "g")
	for i := int64(1); i <= 1000; i++ {
		op.Record(i*1000, 0, nil) // 1µs .. 1ms
	}
	h := r.Snapshot().Ops[0].Lat
	var last int64
	for _, p := range []float64{0, 0.5, 0.9, 0.99, 1} {
		q := h.Quantile(p)
		if q < h.MinNS || q > h.MaxNS {
			t.Fatalf("Quantile(%v) = %d outside [%d, %d]", p, q, h.MinNS, h.MaxNS)
		}
		if q < last {
			t.Fatalf("Quantile(%v) = %d < previous %d (not monotone)", p, q, last)
		}
		last = q
	}
	// p50 of a uniform 1µs..1ms spread lands within a power of two of
	// the true median.
	if q := h.Quantile(0.5); q < 250_000 || q > 1_100_000 {
		t.Fatalf("p50 = %d implausible", q)
	}
	if h.Quantile(0) == 0 {
		t.Fatal("p0 = 0 with min 1µs")
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	op := r.Op(KindCollector, "x")
	if op != nil {
		t.Fatal("nil registry handed out a site")
	}
	op.Record(5, 5, nil) // must not panic
	c := r.Counter("y")
	if c != nil {
		t.Fatal("nil registry handed out a counter")
	}
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	if s := r.Snapshot(); len(s.Ops) != 0 || len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryDedupesSites(t *testing.T) {
	r := New()
	if r.Op(KindReader, "a") != r.Op(KindReader, "a") {
		t.Fatal("same (kind, name) produced distinct sites")
	}
	if r.Op(KindReader, "a") == r.Op(KindStub, "a") {
		t.Fatal("distinct kinds share a site")
	}
	if r.Counter("c") != r.Counter("c") {
		t.Fatal("same name produced distinct counters")
	}
	r.Counter("c").Add(2)
	r.Counter("c").Inc()
	if got := r.Counter("c").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	op := r.Op(KindScopePull, "scope")
	ctr := r.Counter("events")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op.Record(seed+int64(i), 1, nil)
				ctr.Inc()
			}
		}(int64(w + 1))
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Ops[0].Ops != workers*per || s.Ops[0].Lat.Count != workers*per {
		t.Fatalf("ops = %d, hist count = %d", s.Ops[0].Ops, s.Ops[0].Lat.Count)
	}
	if s.Counters[0].Value != workers*per {
		t.Fatalf("counter = %d", s.Counters[0].Value)
	}
}

func TestTotalsMergeByKind(t *testing.T) {
	r := New()
	r.Op(KindStub, "a").Record(10, 1, nil)
	r.Op(KindStub, "b").Record(30, 2, errors.New("x"))
	r.Op(KindGather, "g").Record(20, 4, nil)
	tot := r.Snapshot().Totals()
	if len(tot) != 2 {
		t.Fatalf("totals = %d kinds, want 2", len(tot))
	}
	stub := tot[0]
	if stub.Kind != KindStub || stub.Ops != 2 || stub.Errs != 1 || stub.Bytes != 3 {
		t.Fatalf("stub total = %+v", stub)
	}
	if stub.Lat.Count != 2 || stub.Lat.MinNS != 10 || stub.Lat.MaxNS != 30 || stub.Lat.SumNS != 40 {
		t.Fatalf("stub merged hist = %+v", stub.Lat)
	}
}

// TestVirtualClockDurationsAreExact proves the histogram is
// virtual-clock-aware: durations measured with hrtime under the
// discrete-event clock are exact model time, so the recorded
// distribution is deterministic.
func TestVirtualClockDurationsAreExact(t *testing.T) {
	r := New()
	op := r.Op(KindScopePull, "virtual")
	vclock.Enable(0)
	defer vclock.Disable()
	done := make(chan struct{})
	vclock.Go(func() {
		defer close(done)
		for i := 1; i <= 3; i++ {
			start := hrtime.Now()
			hrtime.SleepUnscaled(time.Duration(i) * time.Millisecond)
			op.Record(hrtime.Since(start), 0, nil)
		}
	})
	<-done
	vclock.Quiesce(10 * time.Second)
	h := r.Snapshot().Ops[0].Lat
	if h.Count != 3 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.SumNS != int64(6*time.Millisecond) {
		t.Fatalf("sum = %d, want exactly %d", h.SumNS, int64(6*time.Millisecond))
	}
	if h.MinNS != int64(time.Millisecond) || h.MaxNS != int64(3*time.Millisecond) {
		t.Fatalf("min/max = %d/%d", h.MinNS, h.MaxNS)
	}
}
