// Front-end failover: when the monitor front-end itself is lost, its
// in-memory analysis state (the weighted tree, the per-node round joins,
// the statistics streams) dies with it — but the trace archive it sealed
// survives. This file rebuilds that state deterministically by replaying
// the archive through the exact same joins the live monitor ran, and
// packages it as a handoff a replacement monitor is seeded from
// (monitor.NewLoadBalanceFrom / monitor.NewStatsmFrom).
//
// The determinism contract: the archive must be sealed (final drain
// done) at a workload quiesce point, and the replay must lose no rounds
// (Lost() == 0). Then the replacement's weighted tree continues exactly
// where the dead front-end's stopped — replaying the failover run's
// complete archive afterwards reproduces the live output byte for byte.
package reconfig

import (
	"fmt"

	"eventspace/internal/archive"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/monitor"
)

// FailoverState is the archive-rebuilt front-end state handoff.
type FailoverState struct {
	// Resume seeds a replacement load-balance monitor: the weighted tree
	// as of the seal, plus per-node join floors.
	Resume *monitor.LoadBalanceResume
	// Stats seeds a replacement statistics monitor (StatsReplay.Tree).
	Stats *monitor.AnalysisTree
	// RoundsRecovered is the number of last-arrival verdicts rebuilt.
	RoundsRecovered uint64
	// TuplesFed / TuplesMatched account the replay's input.
	TuplesFed     uint64
	TuplesMatched uint64
}

// RebuildFrontEnd replays a sealed archive directory into a failover
// handoff. reg, when set, records the rebuild in self-metrics (a
// KindReconfig op plus the reconfig.failovers counter); nil disables.
// It fails when the archive's joins evicted rounds — a lossy rebuild
// would silently double-count on resume, so it is refused outright.
func RebuildFrontEnd(dir string, reg *metrics.Registry) (*FailoverState, error) {
	start := hrtime.Now()
	st, err := rebuildFrontEnd(dir, reg)
	if reg != nil {
		reg.Op(metrics.KindReconfig, "failover("+dir+")").Record(hrtime.Since(start), 0, err)
	}
	if err == nil {
		reg.Counter("reconfig.failovers").Inc()
	}
	return st, err
}

func rebuildFrontEnd(dir string, reg *metrics.Registry) (*FailoverState, error) {
	infos, err := archive.ReadMeta(dir)
	if err != nil {
		return nil, err
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("reconfig: failover: archive %s has no collector metadata", dir)
	}
	r, err := archive.OpenReaderMetrics(dir, reg)
	if err != nil {
		return nil, err
	}
	rep, _, err := archive.ReplayLastArrival(r, infos, archive.Query{})
	if err != nil {
		return nil, err
	}
	if lost := rep.Lost(); lost > 0 {
		return nil, fmt.Errorf("reconfig: failover: replay evicted %d rounds; the handoff would not be faithful", lost)
	}
	sr, _, err := archive.ReplayStats(r, infos, archive.Query{}, 0)
	if err != nil {
		return nil, err
	}
	fed, matched := rep.Fed()
	return &FailoverState{
		Resume:          rep.Resume(),
		Stats:           sr.Tree(),
		RoundsRecovered: rep.Weighted().Total(),
		TuplesFed:       fed,
		TuplesMatched:   matched,
	}, nil
}
