// Front-end failover: when the monitor front-end itself is lost, its
// in-memory analysis state (the weighted tree, the per-node round joins,
// the statistics streams) dies with it — but the trace archive it sealed
// survives. This file rebuilds that state deterministically by replaying
// the archive through the exact same joins the live monitor ran, and
// packages it as a handoff a replacement monitor is seeded from
// (monitor.NewLoadBalanceFrom / monitor.NewStatsmFrom).
//
// Two paths exist:
//
//   - RebuildFrontEnd: full replay of a cleanly sealed archive — O(archive)
//     recovery, the pre-checkpoint contract.
//   - RecoverFrontEnd: the checkpointed fast path. It walks the sidecar
//     checkpoint chain newest-first, restores the monitor shadows (and the
//     continuous-query engine) from the first rung that validates, and
//     replays only the archive suffix after the checkpoint's cursor —
//     O(suffix) recovery. Every failure on a rung (torn frame, CRC
//     mismatch, cursor drift after retention, port-roster mismatch) falls
//     back to the next older rung and ultimately to full replay; damage
//     degrades recovery time, never its result.
//
// The determinism contract: the replay must lose no rounds (Lost() == 0).
// Then the replacement's weighted tree continues exactly where the dead
// front-end's stopped — replaying the failover run's complete archive
// afterwards reproduces the live output byte for byte.
package reconfig

import (
	"fmt"

	"eventspace/internal/archive"
	"eventspace/internal/checkpoint"
	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/monitor"
	"eventspace/internal/query"
)

// FailoverState is the archive-rebuilt front-end state handoff.
type FailoverState struct {
	// Resume seeds a replacement load-balance monitor: the weighted tree
	// as of the seal, plus per-node join floors.
	Resume *monitor.LoadBalanceResume
	// Stats seeds a replacement statistics monitor (StatsReplay.Tree).
	Stats *monitor.AnalysisTree
	// RoundsRecovered is the number of last-arrival verdicts rebuilt.
	RoundsRecovered uint64
	// TuplesFed / TuplesMatched account the replay's input.
	TuplesFed     uint64
	TuplesMatched uint64

	// Checkpointed reports whether a checkpoint fast path was taken;
	// CheckpointSeq is the chain rung that validated, and Fallbacks how
	// many newer rungs were rejected (torn, corrupt, or stale) first.
	// ChainEntries is the on-disk chain length.
	Checkpointed  bool
	CheckpointSeq uint32
	Fallbacks     int
	ChainEntries  int
	// TuplesSkipped / BytesReplayed / BytesSkipped account the suffix
	// scan: what the checkpoint spared recovery from reading.
	TuplesSkipped uint64
	BytesReplayed uint64
	BytesSkipped  uint64

	// Engine is the continuous-query engine state as of the end of the
	// replay — restored from the checkpoint and advanced over the suffix
	// — ready to be restored into a resumed recorder's engine so alert
	// streaks continue mid-streak. Nil when no statements were supplied
	// or the recovery path had no engine snapshot to start from.
	Engine *query.EngineState

	// Repair context the reader surfaced while opening the crashed
	// archive. TornSegments/RepairedBytes count torn tails truncated at
	// reopen; SkippedFiles lists header-less segment files left by a
	// crash during rotation; CloseErr is the reader's damage report
	// (non-nil exactly when files were skipped). None of these fail the
	// rebuild — the damage is survivable by design — but silently
	// dropping them hides what the crash cost.
	TornSegments  int
	RepairedBytes int64
	SkippedFiles  []string
	CloseErr      error
}

// RebuildFrontEnd replays a sealed archive directory into a failover
// handoff — the full-replay path. reg, when set, records the rebuild in
// self-metrics (a KindReconfig op plus the reconfig.failovers counter);
// nil disables. It fails when the archive's joins evicted rounds — a
// lossy rebuild would silently double-count on resume, so it is refused
// outright.
func RebuildFrontEnd(dir string, reg *metrics.Registry) (*FailoverState, error) {
	start := hrtime.Now()
	st, err := rebuildFrontEnd(dir, reg)
	if reg != nil {
		reg.Op(metrics.KindReconfig, "failover("+dir+")").Record(hrtime.Since(start), 0, err)
	}
	if err == nil {
		reg.Counter("reconfig.failovers").Inc()
	}
	return st, err
}

func rebuildFrontEnd(dir string, reg *metrics.Registry) (*FailoverState, error) {
	infos, err := archive.ReadMeta(dir)
	if err != nil {
		return nil, err
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("reconfig: failover: archive %s has no collector metadata", dir)
	}
	r, err := archive.OpenReaderMetrics(dir, reg)
	if err != nil {
		return nil, err
	}
	st, err := replayFull(r, infos, nil)
	if err != nil {
		r.Close()
		return nil, err
	}
	finishRepair(st, r)
	return st, nil
}

// RecoverFrontEnd rebuilds a crashed front end through the checkpoint
// ladder: newest valid checkpoint plus archive suffix, falling back
// rung by rung to full replay. stmts, when non-nil, must be the
// recorder's standing alert statements; the returned state then carries
// the query engine's recovered state so alerts resume mid-streak. The
// handoff's Resume.ReRead is set: a crashed front end has a gather gap
// (tuples still in collector buffers), so the replacement re-reads the
// retained windows with the floors blocking any double count.
func RecoverFrontEnd(dir string, reg *metrics.Registry, stmts []*query.Stmt) (*FailoverState, error) {
	start := hrtime.Now()
	st, err := recoverFrontEnd(dir, reg, stmts)
	if reg != nil {
		reg.Op(metrics.KindReconfig, "recover("+dir+")").Record(hrtime.Since(start), 0, err)
	}
	if err == nil {
		reg.Counter("reconfig.recoveries").Inc()
		if st.Checkpointed {
			reg.Counter("reconfig.recoveries.checkpointed").Inc()
		}
	}
	return st, err
}

func recoverFrontEnd(dir string, reg *metrics.Registry, stmts []*query.Stmt) (*FailoverState, error) {
	infos, err := archive.ReadMeta(dir)
	if err != nil {
		return nil, err
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("reconfig: recover: archive %s has no collector metadata", dir)
	}
	r, err := archive.OpenReaderMetrics(dir, reg)
	if err != nil {
		return nil, err
	}
	entries, err := checkpoint.List(dir)
	if err != nil {
		entries = nil // an unlistable chain is just an absent chain
	}
	fallbacks := 0
	for i := len(entries) - 1; i >= 0; i-- {
		cp, err := checkpoint.Load(entries[i].Path)
		if err != nil {
			fallbacks++
			continue
		}
		st, err := replayFromCheckpoint(r, infos, cp, stmts)
		if err != nil {
			fallbacks++
			continue
		}
		st.Checkpointed = true
		st.CheckpointSeq = cp.Seq
		st.Fallbacks = fallbacks
		st.ChainEntries = len(entries)
		st.Resume.ReRead = true
		finishRepair(st, r)
		return st, nil
	}
	st, err := replayFull(r, infos, stmts)
	if err != nil {
		r.Close()
		return nil, err
	}
	st.Fallbacks = fallbacks
	st.ChainEntries = len(entries)
	st.Resume.ReRead = true
	finishRepair(st, r)
	return st, nil
}

// replayFull is the bottom rung: both shadows (and the engine, when
// statements are supplied) replayed over the whole archive.
func replayFull(r *archive.Reader, infos []archive.CollectorInfo, stmts []*query.Stmt) (*FailoverState, error) {
	rep, scan, err := archive.ReplayLastArrival(r, infos, archive.Query{})
	if err != nil {
		return nil, err
	}
	if lost := rep.Lost(); lost > 0 {
		return nil, fmt.Errorf("reconfig: failover: replay evicted %d rounds; the handoff would not be faithful", lost)
	}
	sr, _, err := archive.ReplayStats(r, infos, archive.Query{}, 0)
	if err != nil {
		return nil, err
	}
	fed, matched := rep.Fed()
	st := &FailoverState{
		Resume:          rep.Resume(),
		Stats:           sr.Tree(),
		RoundsRecovered: rep.Weighted().Total(),
		TuplesFed:       fed,
		TuplesMatched:   matched,
		BytesReplayed:   scan.BytesScanned,
		BytesSkipped:    scan.BytesSkipped,
	}
	if len(stmts) > 0 {
		eng := query.NewEngine(nil)
		// The coverage() roster must match the crashed recorder's, which
		// was the archived collector set.
		eng.SetExpected(len(infos))
		for _, s := range stmts {
			if err := eng.Register(s); err != nil {
				return nil, err
			}
		}
		var offerErr error
		if _, err := r.Scan(archive.Query{}, func(t collect.TraceTuple) bool {
			if err := eng.Offer(t); err != nil {
				offerErr = err
				return false
			}
			return true
		}); err != nil {
			return nil, err
		}
		if offerErr != nil {
			return nil, offerErr
		}
		es := eng.State()
		st.Engine = &es
	}
	return st, nil
}

// replayFromCheckpoint is one ladder rung: restore every shadow from cp
// and feed all three from a single suffix scan after cp.Cursor. Any
// mismatch — roster drift, cursor invalidated by retention, torn data
// before the cursor — errors, and the caller falls back a rung.
func replayFromCheckpoint(r *archive.Reader, infos []archive.CollectorInfo, cp checkpoint.Checkpoint, stmts []*query.Stmt) (*FailoverState, error) {
	laPorts, err := archive.LastArrivalPorts(infos)
	if err != nil {
		return nil, err
	}
	stPorts, err := archive.StatsPorts(infos)
	if err != nil {
		return nil, err
	}
	rep, err := monitor.NewLastArrivalReplayFrom(laPorts, cp.LA)
	if err != nil {
		return nil, err
	}
	sr, err := monitor.NewStatsReplayFrom(stPorts, cp.Stats)
	if err != nil {
		return nil, err
	}
	if len(stmts) > 0 && !cp.HasEngine {
		// The caller wants the engine recovered but this checkpoint never
		// snapshotted one (it predates the statements). Fall back a rung
		// rather than hand back a cold engine as if it were recovered.
		return nil, fmt.Errorf("reconfig: recover: checkpoint %d has no engine snapshot", cp.Seq)
	}
	var eng *query.Engine
	if len(stmts) > 0 {
		eng = query.NewEngine(nil)
		for _, s := range stmts {
			if err := eng.Register(s); err != nil {
				return nil, err
			}
		}
		if err := eng.Restore(cp.Engine); err != nil {
			return nil, err
		}
	}
	var offerErr error
	scan, err := r.ScanFrom(cp.Cursor, archive.Query{}, func(t collect.TraceTuple) bool {
		rep.Feed(t)
		sr.Feed(t)
		if eng != nil {
			if err := eng.Offer(t); err != nil {
				offerErr = err
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if offerErr != nil {
		return nil, offerErr
	}
	if lost := rep.Lost(); lost > 0 {
		return nil, fmt.Errorf("reconfig: recover: replay evicted %d rounds; the handoff would not be faithful", lost)
	}
	fed, matched := rep.Fed()
	st := &FailoverState{
		Resume:          rep.Resume(),
		Stats:           sr.Tree(),
		RoundsRecovered: rep.Weighted().Total(),
		TuplesFed:       fed,
		TuplesMatched:   matched,
		TuplesSkipped:   scan.TuplesSkipped,
		BytesReplayed:   scan.BytesScanned,
		BytesSkipped:    scan.BytesSkipped,
	}
	if eng != nil {
		es := eng.State()
		st.Engine = &es
	}
	return st, nil
}

// finishRepair folds the reader's damage report into the handoff and
// releases the reader. Before checkpointed recovery this context was
// silently discarded: the reader was never closed, so header-less
// skipped files went unreported, and torn-tail truncations never
// reached the caller.
func finishRepair(st *FailoverState, r *archive.Reader) {
	for _, s := range r.Segments() {
		if s.Torn {
			st.TornSegments++
			st.RepairedBytes += s.TornBytes
		}
	}
	st.SkippedFiles = r.SkippedFiles()
	st.CloseErr = r.Close()
}
