// Package reconfig repairs event-scope trees at runtime. A Manager
// subscribes to a scope's health-guard transitions and, when a cluster
// uplink dies (the gateway host crashed or is partitioned away), plans
// and executes a repair with the scope's own primitives:
//
//   - Re-parent: the orphaned cluster's compute hosts move one by one
//     under surviving gateways, balancing fan-in and respecting the
//     policy's cap.
//   - Promote: when no surviving gateway can absorb them, one of the
//     orphaned members becomes the cluster's new gather host and its
//     siblings re-attach under it.
//
// Every repair is an explicit RepairPlan of logged steps — visible to
// viz, counted in self-metrics — not an implicit side effect. Planning
// is deterministic: the inputs are a sorted topology snapshot and the
// policy, never a clock or map-iteration order, so a chaos run under the
// virtual clock produces the same plans every time.
//
// Front-end failover (failover.go) is the complementary repair: when the
// front-end itself is lost, a replacement monitor's state is rebuilt
// deterministically from the sealed trace archive.
package reconfig

import (
	"fmt"
	"sync"

	"eventspace/internal/escope"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/vclock"
)

// StepKind labels one repair action.
type StepKind int

const (
	// StepReparent moves one orphaned host under a surviving gateway.
	StepReparent StepKind = iota
	// StepPromote rebuilds a cluster's gather on one of its members.
	StepPromote
)

func (k StepKind) String() string {
	switch k {
	case StepReparent:
		return "reparent"
	case StepPromote:
		return "promote"
	}
	return fmt.Sprintf("StepKind(%d)", int(k))
}

// RepairStep is one executed (or attempted) repair action.
type RepairStep struct {
	Kind StepKind
	// Host is the host acted on: the re-parented host, or the member
	// promoted to gateway.
	Host string
	// Cluster is the broken cluster the step repairs.
	Cluster string
	// Target is the surviving cluster a re-parented host moved to
	// (empty for promotions).
	Target string
	// Err is the failure detail when the step did not apply.
	Err string
}

// RepairPlan is one trigger's complete repair: what died, what was done
// about it, and when (modelled time).
type RepairPlan struct {
	// Trigger is the guard transition that started the plan.
	Trigger escope.Transition
	// Cluster is the orphaned cluster.
	Cluster string
	Steps   []RepairStep
	// Aborted marks a plan that found no repair (no surviving gateway
	// within the fan-in cap and no live promotion candidate); Reason
	// says why.
	Aborted bool
	Reason  string
	// Started/Finished bound the plan's execution in modelled time.
	Started  hrtime.Stamp
	Finished hrtime.Stamp
}

// Failed reports whether any executed step errored.
func (p *RepairPlan) Failed() bool {
	for _, st := range p.Steps {
		if st.Err != "" {
			return true
		}
	}
	return false
}

// Policy configures the repair manager.
type Policy struct {
	// MaxFanIn caps how many members a surviving cluster's gather may
	// hold after absorbing orphans; when re-parenting every orphan would
	// exceed it, the plan promotes instead. 0 means unlimited.
	MaxFanIn int
	// Metrics, when set, wires the manager into self-metrics: a
	// KindReconfig op whose histogram is the repair-latency distribution,
	// plus reparent/promote/abort counters. nil disables.
	Metrics *metrics.Registry
	// OnPlan, when set, observes every finished plan (after execution,
	// in the repair goroutine). Use it for logging; keep it fast.
	OnPlan func(RepairPlan)
}

// Manager drives runtime repairs for one scope.
type Manager struct {
	scope *escope.Scope
	pol   Policy

	queue *vclock.Queue[escope.Transition]
	done  chan struct{}

	mu    sync.Mutex
	plans []RepairPlan

	stopOnce sync.Once

	op         *metrics.Op
	cReparents *metrics.Counter
	cPromotes  *metrics.Counter
	cAborts    *metrics.Counter
}

// Attach subscribes a repair manager to the scope's guard transitions
// and starts its repair goroutine (a model goroutine: repairs execute
// under the virtual clock like everything else). The scope must have
// been built with a HealthPolicy. Stop the manager before closing the
// scope.
func Attach(scope *escope.Scope, pol Policy) (*Manager, error) {
	if scope == nil {
		return nil, fmt.Errorf("reconfig: nil scope")
	}
	if scope.Topology() == nil {
		return nil, fmt.Errorf("reconfig: scope %s has no health tracking (build it with a HealthPolicy)", scope.Name())
	}
	m := &Manager{
		scope: scope,
		pol:   pol,
		queue: vclock.NewQueue[escope.Transition](),
		done:  make(chan struct{}),
	}
	if pol.Metrics != nil {
		m.op = pol.Metrics.Op(metrics.KindReconfig, "repair("+scope.Name()+")")
	}
	m.cReparents = pol.Metrics.Counter("reconfig.reparents")
	m.cPromotes = pol.Metrics.Counter("reconfig.promotes")
	m.cAborts = pol.Metrics.Counter("reconfig.plan-aborts")
	// The hook runs inside the pulling goroutine; it must not block, so
	// it only filters and enqueues. Only an uplink death orphans a
	// cluster — leaf and direct deaths are handled by the guards' own
	// probe/recover machinery, and recoveries need no repair.
	scope.SetTransitionHook(func(tr escope.Transition) {
		if tr.To == escope.Dead && tr.Role == escope.RoleUplink {
			_ = m.queue.Push(tr)
		}
	})
	vclock.Go(m.run)
	return m, nil
}

func (m *Manager) run() {
	//lint:allow closeonce this run loop is the done channel's sole closer; Stop closes only the queue (via stopOnce)
	defer close(m.done)
	for {
		tr, ok := m.queue.Pop()
		if !ok {
			return
		}
		m.repair(tr)
	}
}

// repair plans and executes the response to one uplink death.
func (m *Manager) repair(tr escope.Transition) {
	start := hrtime.Now()
	topo := m.scope.Topology()
	var dead *escope.ClusterTopology
	for i := range topo {
		if topo[i].Name == tr.Cluster {
			dead = &topo[i]
			break
		}
	}
	// Stale triggers are silently dropped: the cluster was already
	// dissolved by an earlier re-parent plan, already promoted onto a
	// different gateway, or its uplink recovered on its own before the
	// repair goroutine got here.
	if dead == nil || dead.Gateway != tr.Target || dead.UplinkState != escope.Dead {
		return
	}

	plan := RepairPlan{Trigger: tr, Cluster: tr.Cluster, Started: start}

	// Orphans: the cluster's members, minus any member local to the dead
	// gateway host (its chain died with the host; a later restart heals
	// it through the ordinary probe path). Topology() sorts members.
	var orphans []escope.MemberHealth
	for _, mh := range dead.Members {
		if !mh.Local {
			orphans = append(orphans, mh)
		}
	}

	// Survivors, with their current fan-in, in name order.
	type survivor struct {
		name string
		fan  int
	}
	var survivors []survivor
	for i := range topo {
		ct := &topo[i]
		if ct.Name == tr.Cluster || ct.UplinkState == escope.Dead {
			continue
		}
		survivors = append(survivors, survivor{name: ct.Name, fan: len(ct.Members)})
	}

	// First choice: re-parent every orphan onto the least-loaded
	// surviving gateway (ties break toward the lexicographically first
	// cluster). All-or-nothing against the fan-in cap — absorbing half a
	// cluster and promoting the rest would split it permanently.
	assign := make([]string, len(orphans))
	canReparent := len(survivors) > 0 && len(orphans) > 0
	if canReparent {
		for i := range orphans {
			best := -1
			for j := range survivors {
				if best < 0 || survivors[j].fan < survivors[best].fan {
					best = j
				}
			}
			if m.pol.MaxFanIn > 0 && survivors[best].fan+1 > m.pol.MaxFanIn {
				canReparent = false
				break
			}
			survivors[best].fan++
			assign[i] = survivors[best].name
		}
	}

	switch {
	case canReparent:
		for i, mh := range orphans {
			step := RepairStep{Kind: StepReparent, Host: mh.Host, Cluster: tr.Cluster, Target: assign[i]}
			if err := m.scope.ReparentHost(mh.Host, assign[i]); err != nil {
				step.Err = err.Error()
			} else {
				m.cReparents.Inc()
			}
			plan.Steps = append(plan.Steps, step)
		}
	default:
		// Promote the first member that was healthy before the crash.
		cand := ""
		for _, mh := range orphans {
			if mh.State != escope.Dead {
				cand = mh.Host
				break
			}
		}
		if cand == "" {
			plan.Aborted = true
			if len(orphans) == 0 {
				plan.Reason = "no re-parentable members"
			} else {
				plan.Reason = "no surviving gateway within fan-in cap and no live promotion candidate"
			}
			m.cAborts.Inc()
			break
		}
		step := RepairStep{Kind: StepPromote, Host: cand, Cluster: tr.Cluster}
		if err := m.scope.PromoteGateway(tr.Cluster, cand); err != nil {
			step.Err = err.Error()
		} else {
			m.cPromotes.Inc()
		}
		plan.Steps = append(plan.Steps, step)
	}

	plan.Finished = hrtime.Now()
	var opErr error
	if plan.Aborted {
		opErr = fmt.Errorf("reconfig: %s", plan.Reason)
	}
	if m.op != nil {
		m.op.Record(plan.Finished-plan.Started, 0, opErr)
	}
	m.mu.Lock()
	m.plans = append(m.plans, plan)
	m.mu.Unlock()
	if m.pol.OnPlan != nil {
		m.pol.OnPlan(plan)
	}
}

// Plans returns a copy of every plan executed so far, in order.
func (m *Manager) Plans() []RepairPlan {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]RepairPlan(nil), m.plans...)
}

// Stop detaches the manager from the scope and waits for the repair
// goroutine to drain. Idempotent.
func (m *Manager) Stop() {
	m.stopOnce.Do(func() {
		m.scope.SetTransitionHook(nil)
		m.queue.Close()
	})
	<-m.done
}
