package reconfig_test

//lint:file-allow wallclock chaos tests poll real goroutine progress against wall-clock deadlines

import (
	"fmt"
	"testing"
	"time"

	"eventspace/internal/cluster"
	"eventspace/internal/escope"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/reconfig"
	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
	"eventspace/internal/wantrace"
)

func fastScale(t *testing.T) {
	t.Helper()
	old := hrtime.Scale()
	hrtime.SetScale(0.005)
	t.Cleanup(func() { hrtime.SetScale(old) })
}

// wan4 is the acceptance topology: four Tin sub-clusters at the four
// trace sites, each behind its own gateway, under the Longcut emulator.
func wan4(seed int64, hostsPer int) cluster.TestbedSpec {
	sites := []string{wantrace.Tromso, wantrace.Trondheim, wantrace.Odense, wantrace.Aalborg}
	spec := cluster.TestbedSpec{WAN: true, WANSeed: seed}
	for i, site := range sites {
		spec.Clusters = append(spec.Clusters, cluster.ClusterSpec{
			Name: fmt.Sprintf("tin%d", i), Class: cluster.Tin, Hosts: hostsPer, Site: site,
		})
	}
	return spec
}

// guardedScope builds a health-tracked scope with one 1-byte-record
// source per compute host of every cluster in tb.
func guardedScope(t *testing.T, tb *cluster.Testbed) (*escope.Scope, map[string]*pastset.Element) {
	t.Helper()
	elems := make(map[string]*pastset.Element)
	spec := escope.Spec{
		Name:     "mon",
		FrontEnd: tb.FrontEnd,
		Health:   &escope.HealthPolicy{DeadAfter: 2, ProbeBase: time.Millisecond, ProbeMax: 4 * time.Millisecond},
		Retry:    &paths.RetryPolicy{MaxAttempts: 2, BaseBackoff: 50 * time.Microsecond},
	}
	for _, h := range tb.Hosts() {
		e := pastset.MustNewElement("src-"+h.Name(), 64)
		if _, err := e.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
		elems[h.Name()] = e
		spec.Sources = append(spec.Sources, escope.Source{Host: h, Elem: e, RecSize: 1})
	}
	scope, err := escope.Build(tb.Net, spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(scope.Close)
	return scope, elems
}

func pullUntil(t *testing.T, s *escope.Scope, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		s.Pull(nil)
		time.Sleep(500 * time.Microsecond)
	}
	return cond()
}

func clusterByName(topo []escope.ClusterTopology, name string) *escope.ClusterTopology {
	for i := range topo {
		if topo[i].Name == name {
			return &topo[i]
		}
	}
	return nil
}

// runGatewayCrash runs the acceptance scenario once and returns the
// executed repair steps: a 4-cluster WAN testbed, a monitored scope over
// every compute host, a manager attached, and one gateway crashed
// mid-run. The scope must return to full coverage within five monitored
// rounds of the repair, without a restart.
func runGatewayCrash(t *testing.T, seed int64) []reconfig.RepairStep {
	t.Helper()
	fastScale(t)
	tb, err := cluster.NewTestbed(wan4(seed, 3))
	if err != nil {
		t.Fatal(err)
	}
	scope, elems := guardedScope(t, tb)
	reg := metrics.New()
	planCh := make(chan reconfig.RepairPlan, 4)
	mgr, err := reconfig.Attach(scope, reconfig.Policy{
		Metrics: reg,
		OnPlan:  func(p reconfig.RepairPlan) { planCh <- p },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	if !pullUntil(t, scope, 10*time.Second, func() bool { return scope.Coverage().Complete() }) {
		t.Fatalf("initial coverage never completed: %+v", scope.Coverage())
	}

	victim := tb.Clusters[0]
	orphans := victim.Hosts()
	tb.Net.InjectFaults(vnet.FaultPlan{
		CallTimeout: 500 * time.Microsecond,
		Events:      []vnet.FaultEvent{{Kind: vnet.FaultCrash, Host: victim.Gateway().Name()}},
	})
	defer tb.Net.ClearFaults()

	// Keep monitoring through the crash until the manager has repaired.
	var plan reconfig.RepairPlan
	if !pullUntil(t, scope, 20*time.Second, func() bool {
		select {
		case plan = <-planCh:
			return true
		default:
			return false
		}
	}) {
		t.Fatalf("no repair plan executed; topology %+v", scope.Topology())
	}
	if plan.Aborted || plan.Failed() {
		t.Fatalf("repair did not apply: %+v", plan)
	}
	if len(plan.Steps) != len(orphans) {
		t.Fatalf("plan has %d steps for %d orphans: %+v", len(plan.Steps), len(orphans), plan)
	}
	for _, st := range plan.Steps {
		if st.Kind != reconfig.StepReparent || st.Cluster != victim.Name() {
			t.Fatalf("unexpected step: %+v", st)
		}
	}
	if got := reg.Counter("reconfig.reparents").Value(); got != uint64(len(orphans)) {
		t.Fatalf("reparent counter = %d, want %d", got, len(orphans))
	}

	// Fresh records on the orphaned hosts prove delivery over the new
	// paths, and coverage must heal within five monitored rounds.
	for _, h := range orphans {
		if _, err := elems[h.Name()].Write([]byte{9}); err != nil {
			t.Fatal(err)
		}
	}
	rounds := 0
	for ; rounds < 5; rounds++ {
		scope.Pull(nil)
		if cov := scope.Coverage(); cov.Reporting == cov.Expected {
			break
		}
	}
	cov := scope.Coverage()
	if cov.Reporting != cov.Expected {
		t.Fatalf("coverage not restored within 5 rounds after repair: %+v", cov)
	}
	if cov.Recovered < len(orphans) {
		t.Fatalf("recovered = %d, want >= %d (%+v)", cov.Recovered, len(orphans), cov)
	}
	// The dead cluster is dissolved; its members live under survivors.
	if clusterByName(scope.Topology(), victim.Name()) != nil {
		t.Fatalf("crashed cluster not dissolved: %+v", scope.Topology())
	}
	return plan.Steps
}

// TestGatewayCrashReparentRestoresCoverage is the acceptance scenario
// across three WAN seeds: each run must repair by re-parenting within
// five monitored rounds, and repeating a seed must produce the identical
// plan (the planner consumes only sorted snapshots and the policy).
func TestGatewayCrashReparentRestoresCoverage(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			first := runGatewayCrash(t, seed)
			second := runGatewayCrash(t, seed)
			if len(first) != len(second) {
				t.Fatalf("plans differ in length across identical runs:\n%+v\n%+v", first, second)
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("plan step %d differs across identical runs:\n%+v\n%+v", i, first[i], second[i])
				}
			}
		})
	}
}

// lanRig builds a plain two-cluster LAN testbed (a: 3 hosts, b: 2).
func lanRig(t *testing.T) *cluster.Testbed {
	t.Helper()
	tb, err := cluster.NewTestbed(cluster.TestbedSpec{Clusters: []cluster.ClusterSpec{
		{Name: "a", Class: cluster.Tin, Hosts: 3, Site: wantrace.Tromso},
		{Name: "b", Class: cluster.Tin, Hosts: 2, Site: wantrace.Tromso},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// A fan-in cap that no survivor can satisfy forces the promote path: the
// cluster is rebuilt around one of its own members instead of being
// scattered.
func TestGatewayCrashPromotesUnderFanInCap(t *testing.T) {
	fastScale(t)
	tb := lanRig(t)
	scope, elems := guardedScope(t, tb)
	planCh := make(chan reconfig.RepairPlan, 4)
	// No Metrics: the nil-safe counters must tolerate a nil registry.
	mgr, err := reconfig.Attach(scope, reconfig.Policy{
		MaxFanIn: 2,
		OnPlan:   func(p reconfig.RepairPlan) { planCh <- p },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	if !pullUntil(t, scope, 10*time.Second, func() bool { return scope.Coverage().Complete() }) {
		t.Fatalf("initial coverage never completed: %+v", scope.Coverage())
	}
	a := tb.Clusters[0]
	tb.Net.InjectFaults(vnet.FaultPlan{
		CallTimeout: 500 * time.Microsecond,
		Events:      []vnet.FaultEvent{{Kind: vnet.FaultCrash, Host: a.Gateway().Name()}},
	})
	defer tb.Net.ClearFaults()

	var plan reconfig.RepairPlan
	if !pullUntil(t, scope, 20*time.Second, func() bool {
		select {
		case plan = <-planCh:
			return true
		default:
			return false
		}
	}) {
		t.Fatalf("no repair plan executed; topology %+v", scope.Topology())
	}
	if plan.Aborted || plan.Failed() {
		t.Fatalf("repair did not apply: %+v", plan)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Kind != reconfig.StepPromote {
		t.Fatalf("expected a single promote step: %+v", plan)
	}
	promoted := plan.Steps[0].Host

	topo := scope.Topology()
	ct := clusterByName(topo, "a")
	if ct == nil || ct.Gateway != promoted {
		t.Fatalf("cluster a not rebuilt on %s: %+v", promoted, topo)
	}
	for _, h := range a.Hosts() {
		if _, err := elems[h.Name()].Write([]byte{9}); err != nil {
			t.Fatal(err)
		}
	}
	if !pullUntil(t, scope, 20*time.Second, func() bool { return scope.Coverage().Complete() }) {
		t.Fatalf("coverage never recovered after promote: %+v", scope.Coverage())
	}
	if len(mgr.Plans()) != 1 {
		t.Fatalf("plans = %+v", mgr.Plans())
	}
}

// A cluster whose members all died before its gateway leaves the planner
// nothing to work with: the plan aborts explicitly, with a reason and a
// counted abort, instead of thrashing.
func TestRepairAbortsWithoutLiveCandidates(t *testing.T) {
	fastScale(t)
	tb, err := cluster.NewTestbed(cluster.TestbedSpec{Clusters: []cluster.ClusterSpec{
		{Name: "a", Class: cluster.Tin, Hosts: 2, Site: wantrace.Tromso},
	}})
	if err != nil {
		t.Fatal(err)
	}
	scope, _ := guardedScope(t, tb)
	reg := metrics.New()
	planCh := make(chan reconfig.RepairPlan, 4)
	mgr, err := reconfig.Attach(scope, reconfig.Policy{
		Metrics: reg,
		OnPlan:  func(p reconfig.RepairPlan) { planCh <- p },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()

	if !pullUntil(t, scope, 10*time.Second, func() bool { return scope.Coverage().Complete() }) {
		t.Fatalf("initial coverage never completed: %+v", scope.Coverage())
	}
	a := tb.Clusters[0]
	// Kill the members first so their leaf guards are proven dead, then
	// the gateway: the trigger fires with no live candidate anywhere.
	var events []vnet.FaultEvent
	for _, h := range a.Hosts() {
		events = append(events, vnet.FaultEvent{Kind: vnet.FaultCrash, Host: h.Name()})
	}
	tb.Net.InjectFaults(vnet.FaultPlan{CallTimeout: 500 * time.Microsecond, Events: events})
	defer tb.Net.ClearFaults()
	if !pullUntil(t, scope, 20*time.Second, func() bool {
		ct := clusterByName(scope.Topology(), "a")
		if ct == nil {
			return false
		}
		for _, m := range ct.Members {
			if m.State != escope.Dead {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("members never died: %+v", scope.Topology())
	}
	// Installing a new injector forgets the old one's down state, so the
	// replacement plan re-crashes the members alongside the gateway. The
	// only prober here is this test's pull loop; waiting for all three
	// events to apply before pulling again keeps the member guards Dead
	// through the swap.
	events = append(events, vnet.FaultEvent{Kind: vnet.FaultCrash, Host: a.Gateway().Name()})
	inj := tb.Net.InjectFaults(vnet.FaultPlan{CallTimeout: 500 * time.Microsecond, Events: events})
	deadline := time.Now().Add(5 * time.Second)
	for len(inj.Log()) < len(events) {
		if time.Now().After(deadline) {
			t.Fatalf("fault events never applied: %+v", inj.Log())
		}
		time.Sleep(200 * time.Microsecond)
	}

	var plan reconfig.RepairPlan
	if !pullUntil(t, scope, 20*time.Second, func() bool {
		select {
		case plan = <-planCh:
			return true
		default:
			return false
		}
	}) {
		t.Fatalf("no plan recorded; topology %+v", scope.Topology())
	}
	if !plan.Aborted || plan.Reason == "" {
		t.Fatalf("expected an aborted plan with a reason: %+v", plan)
	}
	if len(plan.Steps) != 0 {
		t.Fatalf("aborted plan executed steps: %+v", plan)
	}
	if got := reg.Counter("reconfig.plan-aborts").Value(); got == 0 {
		t.Fatal("abort not counted")
	}
	// The cluster survives in the topology for a later restart to heal.
	if clusterByName(scope.Topology(), "a") == nil {
		t.Fatalf("aborted plan dissolved the cluster: %+v", scope.Topology())
	}
}

// Attach validates its inputs.
func TestAttachValidation(t *testing.T) {
	fastScale(t)
	if _, err := reconfig.Attach(nil, reconfig.Policy{}); err == nil {
		t.Fatal("nil scope accepted")
	}
	tb := lanRig(t)
	e := pastset.MustNewElement("x", 8)
	plain, err := escope.Build(tb.Net, escope.Spec{
		Name: "plain", FrontEnd: tb.FrontEnd,
		Sources: []escope.Source{{Host: tb.Clusters[0].Hosts()[0], Elem: e, RecSize: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := reconfig.Attach(plain, reconfig.Policy{}); err == nil {
		t.Fatal("health-free scope accepted")
	}
}

// TestStopUnwindsRegisteredRepairGoroutine pins the manager's clock
// contract (the PR-4 bug class, statically guarded by internal/lint's
// vcregister analyzer): the repair goroutine blocks on a vclock.Queue,
// so Attach must start it via vclock.Go — under the virtual clock it
// registers immediately — and Stop must unwind it completely, leaving
// no live model goroutine to stall a later Quiesce.
func TestStopUnwindsRegisteredRepairGoroutine(t *testing.T) {
	tb := lanRig(t)
	scope, _ := guardedScope(t, tb)
	// The rig is built in real time; only the manager's lifetime runs
	// under the virtual clock.
	vclock.Enable(0)
	defer vclock.Disable()
	mgr, err := reconfig.Attach(scope, reconfig.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, live, _ := vclock.Stats(); live != 1 {
		t.Fatalf("repair goroutine not registered with the clock: live = %d, want 1", live)
	}
	mgr.Stop()
	mgr.Stop() // idempotent: the second call must not hang or panic
	if !vclock.Quiesce(5 * time.Second) {
		_, running, live, timers := vclock.Stats()
		t.Fatalf("repair goroutine still registered after Stop: running=%d live=%d timers=%d",
			running, live, timers)
	}
}
