package reconfig

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"eventspace/internal/analysis"
	"eventspace/internal/archive"
	"eventspace/internal/checkpoint"
	"eventspace/internal/collect"
	"eventspace/internal/monitor"
	"eventspace/internal/paths"
	"eventspace/internal/query"
)

// failoverInfos fabricates collector metadata for two 3-contributor
// nodes, mirroring the checkpoint package's test topology.
func failoverInfos() []archive.CollectorInfo {
	infos := []archive.CollectorInfo{
		{ID: 10, Name: "coll-a", Role: collect.RoleCollective, Tree: "T", Node: "a", Contributor: -1},
		{ID: 20, Name: "coll-b", Role: collect.RoleCollective, Tree: "T", Node: "b", Contributor: -1},
	}
	for i := 0; i < 3; i++ {
		infos = append(infos,
			archive.CollectorInfo{ID: uint32(1 + i), Role: collect.RoleContributor, Tree: "T", Node: "a", Contributor: i},
			archive.CollectorInfo{ID: uint32(4 + i), Role: collect.RoleContributor, Tree: "T", Node: "b", Contributor: i},
		)
	}
	return infos
}

func failoverStream(rounds int) []collect.TraceTuple {
	rng := rand.New(rand.NewSource(11))
	var tuples []collect.TraceTuple
	for seq := uint32(1); seq <= uint32(rounds); seq++ {
		base := int64(10_000 + 1000*int64(seq))
		for _, node := range []struct {
			coll  uint32
			ecids []uint32
		}{{10, []uint32{1, 2, 3}}, {20, []uint32{4, 5, 6}}} {
			tuples = append(tuples, collect.TraceTuple{
				ECID: node.coll, Op: paths.OpWrite, Seq: seq,
				Start: base + 100, End: base + 200,
			})
			for i, id := range node.ecids {
				jit := rng.Int63n(90)
				tuples = append(tuples, collect.TraceTuple{
					ECID: id, Op: paths.OpWrite, Seq: seq,
					Start: base + jit + int64(i), End: base + 300 + jit,
				})
			}
		}
	}
	rng.Shuffle(len(tuples), func(i, j int) {
		if d := i - j; d < 10 && d > -10 {
			tuples[i], tuples[j] = tuples[j], tuples[i]
		}
	})
	return tuples
}

func failoverBatch(ts []collect.TraceTuple) []byte {
	buf := make([]byte, len(ts)*collect.TupleSize)
	for i := range ts {
		ts[i].EncodeTo(buf[i*collect.TupleSize:])
	}
	return buf
}

var failoverAlerts = []string{
	"alert when count() > 3 window 2us",
	"alert when count() > 0 by ecid window 1us for 2 rounds",
}

func failoverStmts(t *testing.T) []*query.Stmt {
	t.Helper()
	stmts := make([]*query.Stmt, 0, len(failoverAlerts))
	for _, src := range failoverAlerts {
		st, err := query.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		stmts = append(stmts, st)
	}
	return stmts
}

// buildCheckpointedArchive records the test stream through the real
// recorder sink chain — checkpointer in front of an optional query
// engine in front of the writer — and leaves a pruned checkpoint chain
// next to the sealed segments.
func buildCheckpointedArchive(t *testing.T, dir string, format int, withEngine bool) {
	t.Helper()
	w, err := archive.Create(archive.Options{Dir: dir, Format: format, SegmentBytes: 2000, BlockTuples: 16})
	if err != nil {
		t.Fatal(err)
	}
	infos := failoverInfos()
	if err := archive.WriteMeta(dir, infos); err != nil {
		t.Fatal(err)
	}
	var inner checkpoint.Sink = w
	var eng *query.Engine
	if withEngine {
		eng = query.NewEngine(w)
		eng.SetExpected(8)
		for _, st := range failoverStmts(t) {
			if err := eng.Register(st); err != nil {
				t.Fatal(err)
			}
		}
		inner = eng
	}
	ck, err := checkpoint.New(w, inner, eng, infos, checkpoint.Config{EveryTuples: 64, Keep: 3})
	if err != nil {
		t.Fatal(err)
	}
	tuples := failoverStream(60)
	for i := 0; i < len(tuples); i += 24 {
		end := i + 24
		if end > len(tuples) {
			end = len(tuples)
		}
		if err := ck.AppendRaw(failoverBatch(tuples[i:end])); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func weightedEqual(t *testing.T, got, want *monitor.WeightedTree) {
	t.Helper()
	gn, wn := got.Nodes(), want.Nodes()
	sort.Strings(gn)
	sort.Strings(wn)
	if !reflect.DeepEqual(gn, wn) {
		t.Fatalf("weighted nodes %v, want %v", gn, wn)
	}
	for _, node := range wn {
		if !reflect.DeepEqual(got.Counts(node), want.Counts(node)) {
			t.Fatalf("weighted counts for %s diverged:\n got %v\nwant %v", node, got.Counts(node), want.Counts(node))
		}
	}
}

func statsEqual(t *testing.T, got, want *monitor.AnalysisTree) {
	t.Helper()
	gids, wids := got.IDs(), want.IDs()
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	sort.Slice(wids, func(i, j int) bool { return wids[i] < wids[j] })
	if !reflect.DeepEqual(gids, wids) {
		t.Fatalf("stats tree ids %v, want %v", gids, wids)
	}
	kinds := []int{analysis.KindDown, analysis.KindUp, analysis.KindTotal, analysis.KindArrivalWait, analysis.KindDepartureWait}
	for _, id := range wids {
		for _, kind := range kinds {
			w, wok := want.Get(id, kind)
			g, gok := got.Get(id, kind)
			if gok != wok || g != w {
				t.Fatalf("stats record (%d,%d): got %v,%v want %v,%v", id, kind, g, gok, w, wok)
			}
		}
	}
}

// TestRecoverFrontEndMatchesRebuild: the checkpointed fast path must
// hand off exactly the state full replay rebuilds, on both formats —
// while reading only the archive suffix behind the newest checkpoint.
func TestRecoverFrontEndMatchesRebuild(t *testing.T) {
	for _, tc := range []struct {
		name   string
		format int
	}{
		{"row", archive.FormatRow},
		{"columnar", archive.FormatColumnar},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			buildCheckpointedArchive(t, dir, tc.format, false)
			rb, err := RebuildFrontEnd(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := RecoverFrontEnd(dir, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !rc.Checkpointed || rc.CheckpointSeq == 0 || rc.Fallbacks != 0 {
				t.Fatalf("expected clean checkpointed recovery, got %+v", rc)
			}
			if rc.ChainEntries != 3 {
				t.Fatalf("chain entries %d, want pruned to 3", rc.ChainEntries)
			}
			if rc.TuplesSkipped == 0 {
				t.Fatal("checkpointed recovery skipped no tuples — fast path not taken")
			}
			if rc.BytesReplayed >= rb.BytesReplayed {
				t.Fatalf("checkpointed recovery replayed %d bytes, full replay %d — no saving",
					rc.BytesReplayed, rb.BytesReplayed)
			}
			if !rc.Resume.ReRead {
				t.Fatal("crash recovery handoff must re-read the retained windows")
			}
			if rb.Resume.ReRead {
				t.Fatal("clean-seal failover handoff must not re-read")
			}
			if rc.RoundsRecovered != rb.RoundsRecovered || rc.RoundsRecovered == 0 {
				t.Fatalf("rounds recovered %d, want %d", rc.RoundsRecovered, rb.RoundsRecovered)
			}
			weightedEqual(t, rc.Resume.Weighted, rb.Resume.Weighted)
			if !reflect.DeepEqual(rc.Resume.Floors, rb.Resume.Floors) {
				t.Fatalf("floors diverged: %v vs %v", rc.Resume.Floors, rb.Resume.Floors)
			}
			statsEqual(t, rc.Stats, rb.Stats)
		})
	}
}

// TestRecoverFrontEndEngineResumesMidStreak: with standing statements,
// recovery restores the query engine from the checkpoint and advances
// it over the suffix — ending in exactly the state a full replay of the
// archive produces, streaks and dedup memory included.
func TestRecoverFrontEndEngineResumesMidStreak(t *testing.T) {
	dir := t.TempDir()
	buildCheckpointedArchive(t, dir, archive.FormatColumnar, true)
	stmts := failoverStmts(t)
	rc, err := RecoverFrontEnd(dir, nil, stmts)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Checkpointed {
		t.Fatalf("expected checkpointed recovery, got %+v", rc)
	}
	if rc.Engine == nil {
		t.Fatal("no engine state recovered")
	}
	// Destroy the chain: the same recovery must now take the full-replay
	// rung and still produce the identical engine state.
	entries, err := checkpoint.List(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("chain: %v %v", entries, err)
	}
	for _, e := range entries {
		if err := os.Remove(e.Path); err != nil {
			t.Fatal(err)
		}
	}
	full, err := RecoverFrontEnd(dir, nil, stmts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Checkpointed || full.ChainEntries != 0 {
		t.Fatalf("expected full-replay rung, got %+v", full)
	}
	if full.Engine == nil {
		t.Fatal("full replay produced no engine state")
	}
	if !reflect.DeepEqual(*rc.Engine, *full.Engine) {
		t.Fatalf("recovered engine state diverged from full replay:\n got %+v\nwant %+v", *rc.Engine, *full.Engine)
	}
	weightedEqual(t, rc.Resume.Weighted, full.Resume.Weighted)
}

// TestRecoverFrontEndFallbackLadder: a torn chain head falls back to
// the previous checkpoint; a fully torn chain falls back to full
// replay. Both rungs reproduce the rebuild state exactly.
func TestRecoverFrontEndFallbackLadder(t *testing.T) {
	dir := t.TempDir()
	buildCheckpointedArchive(t, dir, archive.FormatRow, false)
	rb, err := RebuildFrontEnd(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := checkpoint.List(dir)
	if err != nil || len(entries) != 3 {
		t.Fatalf("chain: %v %v", entries, err)
	}
	// Tear the newest frame.
	buf, err := os.ReadFile(entries[2].Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[2].Path, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rc, err := RecoverFrontEnd(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Checkpointed || rc.Fallbacks != 1 || rc.CheckpointSeq != entries[1].Seq {
		t.Fatalf("expected fallback to seq %d, got %+v", entries[1].Seq, rc)
	}
	weightedEqual(t, rc.Resume.Weighted, rb.Resume.Weighted)
	statsEqual(t, rc.Stats, rb.Stats)

	// Tear the whole chain: the ladder bottoms out at full replay.
	for _, e := range entries[:2] {
		buf, err := os.ReadFile(e.Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(e.Path, buf[:len(buf)/3], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rc, err = RecoverFrontEnd(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Checkpointed || rc.Fallbacks != 3 || rc.TuplesSkipped != 0 {
		t.Fatalf("expected full-replay rung after 3 fallbacks, got %+v", rc)
	}
	if rc.ChainEntries != 3 {
		t.Fatalf("chain entries %d, want 3 (torn frames still on disk)", rc.ChainEntries)
	}
	weightedEqual(t, rc.Resume.Weighted, rb.Resume.Weighted)
	statsEqual(t, rc.Stats, rb.Stats)
}

// TestFailoverSurfacesRepairContext is the regression test for the
// silently-discarded repair context: rebuilding from a crash-damaged
// archive (torn tail from an injected block-flush crash, plus a
// header-less segment file left by a crashed rotation) must surface the
// truncation, the skipped file, and the reader's close error in the
// handoff instead of dropping them on the floor.
func TestFailoverSurfacesRepairContext(t *testing.T) {
	dir := t.TempDir()
	cps := &archive.CrashPoints{Seed: 9, Specs: []archive.CrashSpec{{Site: archive.CrashBlockFlush, Count: 3}}}
	w, err := archive.Create(archive.Options{Dir: dir, SegmentBytes: 4000, BlockTuples: 16, CrashPoints: cps})
	if err != nil {
		t.Fatal(err)
	}
	infos := failoverInfos()
	if err := archive.WriteMeta(dir, infos); err != nil {
		t.Fatal(err)
	}
	tuples := failoverStream(40)
	var crashErr error
	for i := 0; i < len(tuples) && crashErr == nil; i += 16 {
		end := i + 16
		if end > len(tuples) {
			end = len(tuples)
		}
		if crashErr = w.Append(tuples[i:end]); crashErr == nil {
			crashErr = w.Flush()
		}
	}
	if !errors.Is(crashErr, archive.ErrInjectedCrash) {
		t.Fatalf("crash did not fire: %v", crashErr)
	}
	// A crashed rotation's leftover: a segment file too short to hold a
	// header. Readers must skip it and say so.
	junk := filepath.Join(dir, "seg-00009999.eseg")
	if err := os.WriteFile(junk, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := RebuildFrontEnd(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.TornSegments == 0 || st.RepairedBytes == 0 {
		t.Fatalf("torn tail not surfaced: %+v", st)
	}
	found := false
	for _, f := range st.SkippedFiles {
		if filepath.Base(f) == filepath.Base(junk) {
			found = true
		}
	}
	if !found {
		t.Fatalf("skipped file not surfaced: %v", st.SkippedFiles)
	}
	if st.CloseErr == nil {
		t.Fatal("reader close error (skipped-file report) not surfaced")
	}
	if st.RoundsRecovered == 0 {
		t.Fatal("damaged archive recovered no rounds at all")
	}

	// The checkpointed path surfaces the same context.
	rc, err := RecoverFrontEnd(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rc.TornSegments != st.TornSegments || rc.CloseErr == nil {
		t.Fatalf("recover path dropped repair context: %+v", rc)
	}
	weightedEqual(t, rc.Resume.Weighted, st.Resume.Weighted)
}
