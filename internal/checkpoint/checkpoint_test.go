package checkpoint

import (
	"errors"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/monitor"
	"eventspace/internal/paths"
	"eventspace/internal/query"
)

// testInfos fabricates collector metadata for two 3-contributor nodes:
// node "a" (collective ECID 10, contributors 1-3) and node "b"
// (collective 20, contributors 4-6).
func testInfos() []archive.CollectorInfo {
	infos := []archive.CollectorInfo{
		{ID: 10, Name: "coll-a", Role: collect.RoleCollective, Tree: "T", Node: "a", Contributor: -1},
		{ID: 20, Name: "coll-b", Role: collect.RoleCollective, Tree: "T", Node: "b", Contributor: -1},
	}
	for i := 0; i < 3; i++ {
		infos = append(infos,
			archive.CollectorInfo{ID: uint32(1 + i), Role: collect.RoleContributor, Tree: "T", Node: "a", Contributor: i},
			archive.CollectorInfo{ID: uint32(4 + i), Role: collect.RoleContributor, Tree: "T", Node: "b", Contributor: i},
		)
	}
	return infos
}

// testStream fabricates the matching tuple stream: rounds of collective
// plus contributor tuples, shuffled within a small horizon so rounds
// interleave and some are always pending when a checkpoint lands.
func testStream(rounds int) []collect.TraceTuple {
	rng := rand.New(rand.NewSource(11))
	var tuples []collect.TraceTuple
	for seq := uint32(1); seq <= uint32(rounds); seq++ {
		base := int64(10_000 + 1000*int64(seq))
		for _, node := range []struct {
			coll  uint32
			ecids []uint32
		}{{10, []uint32{1, 2, 3}}, {20, []uint32{4, 5, 6}}} {
			tuples = append(tuples, collect.TraceTuple{
				ECID: node.coll, Op: paths.OpWrite, Seq: seq,
				Start: base + 100, End: base + 200,
			})
			for i, id := range node.ecids {
				jit := rng.Int63n(90)
				tuples = append(tuples, collect.TraceTuple{
					ECID: id, Op: paths.OpWrite, Seq: seq,
					Start: base + jit + int64(i), End: base + 300 + jit,
				})
			}
		}
	}
	rng.Shuffle(len(tuples), func(i, j int) {
		if d := i - j; d < 10 && d > -10 {
			tuples[i], tuples[j] = tuples[j], tuples[i]
		}
	})
	return tuples
}

func encodeBatch(ts []collect.TraceTuple) []byte {
	buf := make([]byte, len(ts)*collect.TupleSize)
	for i := range ts {
		ts[i].EncodeTo(buf[i*collect.TupleSize:])
	}
	return buf
}

// snapshotFromStream builds a nontrivial checkpoint by running the
// shadows (and a query engine) over a prefix of the test stream.
func snapshotFromStream(t testing.TB, n int) Checkpoint {
	t.Helper()
	infos := testInfos()
	laPorts, err := archive.LastArrivalPorts(infos)
	if err != nil {
		t.Fatal(err)
	}
	stPorts, err := archive.StatsPorts(infos)
	if err != nil {
		t.Fatal(err)
	}
	la, err := monitor.NewLastArrivalReplay(laPorts)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := monitor.NewStatsReplay(stPorts, 16)
	if err != nil {
		t.Fatal(err)
	}
	eng := query.NewEngine(nil)
	eng.SetExpected(8)
	for _, src := range []string{
		"alert when count() > 3 window 2us",
		"alert when count() > 0 by ecid window 1us for 2 rounds",
	} {
		st, err := query.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Register(st); err != nil {
			t.Fatal(err)
		}
	}
	for _, tu := range testStream(40)[:n] {
		la.Feed(tu)
		stats.Feed(tu)
		if err := eng.Offer(tu); err != nil {
			t.Fatal(err)
		}
	}
	return Checkpoint{
		Seq: 7, At: 123456,
		Cursor:    archive.Cursor{Tuples: uint64(n), Segment: 3, SegTuples: 17},
		LA:        la.State(),
		Stats:     stats.State(),
		HasEngine: true,
		Engine:    eng.State(),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 37, 151, 320} {
		cp := snapshotFromStream(t, n)
		got, err := Decode(Encode(cp))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(got, cp) {
			t.Fatalf("n=%d: round-trip diverged:\n got %+v\nwant %+v", n, got, cp)
		}
		// Without the engine section too (recorder without queries).
		cp.HasEngine = false
		cp.Engine = query.EngineState{}
		got, err = Decode(Encode(cp))
		if err != nil {
			t.Fatalf("n=%d no-engine: %v", n, err)
		}
		if !reflect.DeepEqual(got, cp) {
			t.Fatalf("n=%d: no-engine round-trip diverged", n)
		}
	}
}

// TestEncodeCanonical: two identical states encode bit-identically —
// the property that lets the chaos matrix compare recovered state by
// re-checkpointing it.
func TestEncodeCanonical(t *testing.T) {
	a := Encode(snapshotFromStream(t, 151))
	b := Encode(snapshotFromStream(t, 151))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical snapshots encoded differently")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	frame := Encode(snapshotFromStream(t, 80))
	// Every truncation — torn writes — must be rejected, not panic.
	for i := 0; i < len(frame); i++ {
		if _, err := Decode(frame[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	// Every single-byte corruption must be rejected (one of the CRCs
	// covers every byte of the frame).
	for i := 0; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

// TestCheckpointRecoveryEquivalence is the tentpole proof at package
// level, on both archive formats: shadows restored from the newest
// checkpoint and fed only the archive suffix after its cursor end
// byte-identical to a full replay of the whole archive — and the suffix
// is a small fraction of the archive.
func TestCheckpointRecoveryEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name   string
		format int
	}{
		{"row", archive.FormatRow},
		{"columnar", archive.FormatColumnar},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := archive.Create(archive.Options{Dir: dir, Format: tc.format, SegmentBytes: 2000, BlockTuples: 16})
			if err != nil {
				t.Fatal(err)
			}
			infos := testInfos()
			ck, err := New(w, w, nil, infos, Config{EveryTuples: 64, Keep: 3})
			if err != nil {
				t.Fatal(err)
			}
			tuples := testStream(60)
			for i := 0; i < len(tuples); i += 24 {
				end := i + 24
				if end > len(tuples) {
					end = len(tuples)
				}
				if err := ck.AppendRaw(encodeBatch(tuples[i:end])); err != nil {
					t.Fatal(err)
				}
			}
			if err := ck.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			cks := ck.Stats()
			if cks.Written < 4 {
				t.Fatalf("only %d checkpoints written", cks.Written)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			entries, err := List(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 3 {
				t.Fatalf("chain holds %d entries, want pruned to 3", len(entries))
			}
			cp, info, ok := LoadNewest(dir)
			if !ok || info.Skipped != 0 {
				t.Fatalf("LoadNewest ok=%v info=%+v", ok, info)
			}
			if cp.Seq != cks.Seq {
				t.Fatalf("newest checkpoint seq %d, want %d", cp.Seq, cks.Seq)
			}

			r, err := archive.OpenReader(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			fullLA, _, err := archive.ReplayLastArrival(r, infos, archive.Query{})
			if err != nil {
				t.Fatal(err)
			}
			fullStats, _, err := archive.ReplayStats(r, infos, archive.Query{}, 0)
			if err != nil {
				t.Fatal(err)
			}

			laPorts, _ := archive.LastArrivalPorts(infos)
			stPorts, _ := archive.StatsPorts(infos)
			la, err := monitor.NewLastArrivalReplayFrom(laPorts, cp.LA)
			if err != nil {
				t.Fatal(err)
			}
			stats, err := monitor.NewStatsReplayFrom(stPorts, cp.Stats)
			if err != nil {
				t.Fatal(err)
			}
			scan, err := r.ScanFrom(cp.Cursor, archive.Query{}, func(tu collect.TraceTuple) bool {
				la.Feed(tu)
				stats.Feed(tu)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if scan.TuplesSkipped != cp.Cursor.Tuples {
				t.Fatalf("suffix scan skipped %d tuples, cursor covers %d", scan.TuplesSkipped, cp.Cursor.Tuples)
			}

			if !reflect.DeepEqual(la.State(), fullLA.State()) {
				t.Fatal("checkpoint+suffix load-balance state diverged from full replay")
			}
			if !reflect.DeepEqual(stats.State(), fullStats.State()) {
				t.Fatal("checkpoint+suffix statistics state diverged from full replay")
			}
			if la.Lost() != 0 || fullLA.Lost() != 0 {
				t.Fatalf("lost rounds: fast %d full %d", la.Lost(), fullLA.Lost())
			}
		})
	}
}

// TestCheckpointerCrashFallsBack: an injected crash mid-checkpoint-write
// leaves a torn chain head; the checkpointer goes sticky-dead, recovery
// skips the torn frame, falls back to the previous checkpoint, and
// still reconstructs exactly the full-replay state.
func TestCheckpointerCrashFallsBack(t *testing.T) {
	dir := t.TempDir()
	cps := &archive.CrashPoints{Seed: 5, Specs: []archive.CrashSpec{{Site: archive.CrashCheckpoint, Count: 2}}}
	w, err := archive.Create(archive.Options{Dir: dir, SegmentBytes: 4000, BlockTuples: 16})
	if err != nil {
		t.Fatal(err)
	}
	infos := testInfos()
	ck, err := New(w, w, nil, infos, Config{EveryTuples: 48, Keep: 3, CrashPoints: cps})
	if err != nil {
		t.Fatal(err)
	}
	tuples := testStream(60)
	var crashErr error
	for i := 0; i < len(tuples) && crashErr == nil; i += 16 {
		end := i + 16
		if end > len(tuples) {
			end = len(tuples)
		}
		crashErr = ck.AppendRaw(encodeBatch(tuples[i:end]))
	}
	if !errors.Is(crashErr, archive.ErrInjectedCrash) {
		t.Fatalf("crash did not fire: %v", crashErr)
	}
	if err := ck.AppendRaw(encodeBatch(tuples[:4])); !errors.Is(err, archive.ErrInjectedCrash) {
		t.Fatalf("checkpointer not sticky-dead after crash: %v", err)
	}
	if got := cps.Fired(); len(got) != 1 || got[0] != archive.CrashCheckpoint {
		t.Fatalf("fired sites %v", got)
	}
	// The process died: the writer is abandoned as-is. A reopen models
	// the recovery-side writer takeover (torn-tail truncation).
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cp, info, ok := LoadNewest(dir)
	if !ok {
		t.Fatal("no valid checkpoint survived")
	}
	if info.Skipped != 1 || cp.Seq != 1 {
		t.Fatalf("expected fallback past 1 torn frame to seq 1; got skipped=%d seq=%d", info.Skipped, cp.Seq)
	}

	r, err := archive.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	fullLA, _, err := archive.ReplayLastArrival(r, infos, archive.Query{})
	if err != nil {
		t.Fatal(err)
	}
	laPorts, _ := archive.LastArrivalPorts(infos)
	la, err := monitor.NewLastArrivalReplayFrom(laPorts, cp.LA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ScanFrom(cp.Cursor, archive.Query{}, func(tu collect.TraceTuple) bool {
		la.Feed(tu)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(la.State(), fullLA.State()) {
		t.Fatal("fallback recovery diverged from full replay")
	}
}

// TestLoadNewestAllTorn: when every chain entry is damaged, LoadNewest
// reports no checkpoint — the caller's cue for full replay.
func TestLoadNewestAllTorn(t *testing.T) {
	dir := t.TempDir()
	cp := snapshotFromStream(t, 40)
	for seq := uint32(1); seq <= 2; seq++ {
		cp.Seq = seq
		if _, err := write(dir, cp, nil); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := List(dir)
	if err != nil || len(entries) != 2 {
		t.Fatalf("List: %v %v", entries, err)
	}
	for _, e := range entries {
		buf, err := os.ReadFile(e.Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(e.Path, buf[:len(buf)/3], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, info, ok := LoadNewest(dir); ok || info.Skipped != 2 {
		t.Fatalf("damaged chain yielded a checkpoint (info %+v)", info)
	}
}

func BenchmarkCheckpointEncodeTuples(b *testing.B) {
	ts := make([]collect.TraceTuple, 256)
	for i := range ts {
		ts[i] = collect.TraceTuple{ECID: uint32(i), Op: paths.OpWrite, Seq: uint32(i), Start: int64(i), End: int64(i + 5)}
	}
	dst := make([]byte, len(ts)*collect.TupleSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encodeTuples(dst, ts)
	}
}
