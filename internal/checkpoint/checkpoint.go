package checkpoint

import (
	"fmt"
	"sync"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/monitor"
	"eventspace/internal/query"
)

// Sink is the raw-batch sink the checkpointer forwards to (the archive
// writer, or a query engine interposed in front of it). It mirrors
// escope.RawSink without importing escope.
type Sink interface {
	AppendRaw(data []byte) error
}

// DefaultEveryTuples is the checkpoint cadence when Config leaves it
// zero: one checkpoint per this many newly archived data tuples.
const DefaultEveryTuples = 4096

// DefaultKeep is the chain length retained on disk. Three rungs give
// the recovery ladder two fallbacks before full replay.
const DefaultKeep = 3

// Config tunes a Checkpointer.
type Config struct {
	// EveryTuples is the cadence: a checkpoint is written after this
	// many newly archived data tuples (0 = DefaultEveryTuples). The
	// cadence is counted in tuples, not time, so checkpoint placement —
	// and therefore the recovered byte stream — is deterministic.
	EveryTuples uint64
	// Keep is how many chain files are retained (0 = DefaultKeep).
	Keep int
	// Window is the statistics sliding-median window the shadow runs
	// with; it must match the window recovery replays with (the
	// failover path uses the analysis default, 0).
	Window int
	// CrashPoints, when set, arms the CrashCheckpoint injection site on
	// checkpoint writes. Test-only; share the archive writer's plan.
	CrashPoints *archive.CrashPoints
	// Metrics records checkpoint writes (KindCheckpoint); nil disables.
	Metrics *metrics.Registry
}

// Checkpointer interposes on a recorder's sink chain: every batch is
// forwarded downstream first (the archive stays the source of truth),
// then folded into shadow replays of the load-balance and statistics
// monitors. On cadence it flushes the writer, snapshots the shadows —
// and the live query engine, when one is interposed — at exactly the
// writer's durable cursor, and persists the snapshot as the next chain
// file. It runs on the recorder's gather thread (a model goroutine), so
// checkpoint timing is modelled time like everything else.
type Checkpointer struct {
	mu     sync.Mutex
	inner  Sink
	w      *archive.Writer
	engine *query.Engine
	la     *monitor.LastArrivalReplay
	stats  *monitor.StatsReplay

	dir   string
	every uint64
	keep  int
	cps   *archive.CrashPoints
	met   *metrics.Registry

	seq     uint32
	since   uint64
	at      hrtime.Stamp
	err     error
	written uint64
	bytes   uint64
	batch   []collect.TraceTuple
}

// New builds a checkpointer over a recorder's writer and sink chain.
// inner is what batches are forwarded to (w itself, or a query engine
// writing through to w — pass that engine as engine too so snapshots
// include it). infos is the archived collector metadata; the shadows'
// join wiring derives from it exactly as recovery's replay will.
func New(w *archive.Writer, inner Sink, engine *query.Engine, infos []archive.CollectorInfo, cfg Config) (*Checkpointer, error) {
	if w == nil || inner == nil {
		return nil, fmt.Errorf("checkpoint: nil writer or sink")
	}
	laPorts, err := archive.LastArrivalPorts(infos)
	if err != nil {
		return nil, err
	}
	stPorts, err := archive.StatsPorts(infos)
	if err != nil {
		return nil, err
	}
	la, err := monitor.NewLastArrivalReplay(laPorts)
	if err != nil {
		return nil, err
	}
	stats, err := monitor.NewStatsReplay(stPorts, cfg.Window)
	if err != nil {
		return nil, err
	}
	every := cfg.EveryTuples
	if every == 0 {
		every = DefaultEveryTuples
	}
	keep := cfg.Keep
	if keep == 0 {
		keep = DefaultKeep
	}
	return &Checkpointer{
		inner: inner, w: w, engine: engine, la: la, stats: stats,
		dir: w.Dir(), every: every, keep: keep,
		cps: cfg.CrashPoints, met: cfg.Metrics,
	}, nil
}

// AppendRaw forwards the batch downstream, feeds the shadows, and
// checkpoints when the cadence fires. After an injected checkpoint
// crash the checkpointer is sticky-dead — the process it models died
// mid-write, so nothing later reaches the archive either.
func (c *Checkpointer) AppendRaw(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if err := c.inner.AppendRaw(data); err != nil {
		return err
	}
	var err error
	c.batch, err = collect.DecodeAppend(c.batch[:0], data)
	if err != nil {
		return err
	}
	for _, t := range c.batch {
		c.la.Feed(t)
		c.stats.Feed(t)
		if t.ECID != collect.ControlECID {
			if t.Start > c.at {
				c.at = t.Start
			}
			c.since++
		}
	}
	if c.since >= c.every {
		if err := c.checkpointLocked(); err != nil {
			c.err = err
			return err
		}
	}
	return nil
}

// Checkpoint forces a snapshot now, regardless of cadence — the final
// checkpoint a recorder writes while stopping, so recovery after a
// clean seal replays (almost) nothing.
func (c *Checkpointer) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if err := c.checkpointLocked(); err != nil {
		c.err = err
		return err
	}
	return nil
}

func (c *Checkpointer) checkpointLocked() error {
	start := hrtime.Now()
	n, err := c.writeLocked()
	c.met.Op(metrics.KindCheckpoint, "checkpoint("+c.dir+")").Record(hrtime.Since(start), n, err)
	if err == nil {
		c.met.Counter("checkpoint.writes").Inc()
	}
	return err
}

func (c *Checkpointer) writeLocked() (int, error) {
	// Flush first: the cursor must cover exactly the durable tuples the
	// snapshot state has seen.
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	cur := c.w.Position()
	cp := Checkpoint{Seq: c.seq + 1, At: c.at, Cursor: cur, LA: c.la.State(), Stats: c.stats.State()}
	if c.engine != nil {
		cp.HasEngine = true
		cp.Engine = c.engine.State()
	}
	n, err := write(c.dir, cp, c.cps)
	if err != nil {
		return n, err
	}
	c.seq = cp.Seq
	c.since = 0
	c.written++
	c.bytes += uint64(n)
	// The marker control tuple lands after the cursor, so suffix replay
	// sees it; feed it to the shadows too, keeping them in lockstep with
	// the archive content a recovered shadow would be fed.
	mark := collect.EncodeCheckpointMark(collect.CheckpointMark{Seq: c.seq, Tuples: cur.Tuples, At: c.at})
	if err := c.w.Append([]collect.TraceTuple{mark}); err != nil {
		return n, err
	}
	c.la.Feed(mark)
	c.stats.Feed(mark)
	return n, prune(c.dir, c.keep)
}

// Stats is a checkpointer's accounting snapshot.
type Stats struct {
	Seq     uint32 // newest chain sequence written
	Written uint64 // checkpoints persisted
	Bytes   uint64 // frame bytes persisted
}

// Stats returns the accounting snapshot.
func (c *Checkpointer) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Seq: c.seq, Written: c.written, Bytes: c.bytes}
}

// Err returns the sticky error, if any (e.g. an injected crash).
func (c *Checkpointer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
