package checkpoint

import (
	"testing"
)

// FuzzCheckpointDecode hammers the frame decoder with torn, bit-flipped
// and adversarial inputs. The contract: Decode never panics, and a
// frame that decodes successfully re-encodes into a frame that decodes
// to the same checkpoint — corrupt bytes can never masquerade as a
// CRC-passing checkpoint that then misbehaves.
func FuzzCheckpointDecode(f *testing.F) {
	// Corpus: valid frames of growing complexity, their torn prefixes,
	// and a few degenerate shapes.
	for _, n := range []int{0, 37, 151} {
		frame := Encode(snapshotFromStream(f, n))
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
		f.Add(frame[:headerSize])
	}
	f.Add([]byte{})
	f.Add([]byte("ECK1"))
	f.Add(make([]byte, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(cp)
		cp2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if cp2.Seq != cp.Seq || cp2.Cursor != cp.Cursor || cp2.HasEngine != cp.HasEngine {
			t.Fatalf("re-encode round trip drifted: %+v vs %+v", cp2, cp)
		}
	})
}
