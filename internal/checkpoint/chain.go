package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"eventspace/internal/archive"
)

// FilePattern matches checkpoint sidecar files in an archive directory.
const FilePattern = "ckpt-*.eckpt"

// FileName names checkpoint seq's sidecar file.
func FileName(seq uint32) string { return fmt.Sprintf("ckpt-%08d.eckpt", seq) }

// Entry is one file of a checkpoint chain, as listed on disk. Listing
// does not validate contents — Load does.
type Entry struct {
	Seq  uint32
	Path string
	Size int64
}

// List returns the directory's checkpoint chain, oldest first. Files
// whose names do not parse are ignored (they are not chain members).
func List(dir string) ([]Entry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, FilePattern))
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, p := range paths {
		var seq uint32
		if _, err := fmt.Sscanf(filepath.Base(p), "ckpt-%d.eckpt", &seq); err != nil {
			continue
		}
		fi, err := os.Stat(p)
		if err != nil {
			continue
		}
		out = append(out, Entry{Seq: seq, Path: p, Size: fi.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Load reads and validates one chain entry.
func Load(path string) (Checkpoint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	return Decode(buf)
}

// ChainInfo summarizes a LoadNewest walk for diagnostics: how long the
// on-disk chain is and how many entries had to be skipped as torn or
// corrupt before one validated.
type ChainInfo struct {
	Entries int      // chain files on disk
	Skipped int      // newest-first entries rejected before the winner
	Bad     []string // paths of the rejected entries
}

// LoadNewest walks the chain newest-first and returns the first
// checkpoint that validates. Torn and CRC-corrupt entries are skipped —
// recorded in ChainInfo, never trusted. ok is false when no entry
// validates (recovery then falls back to full replay).
func LoadNewest(dir string) (Checkpoint, ChainInfo, bool) {
	entries, err := List(dir)
	info := ChainInfo{Entries: len(entries)}
	if err != nil || len(entries) == 0 {
		return Checkpoint{}, info, false
	}
	for i := len(entries) - 1; i >= 0; i-- {
		cp, err := Load(entries[i].Path)
		if err != nil {
			info.Skipped++
			info.Bad = append(info.Bad, entries[i].Path)
			continue
		}
		return cp, info, true
	}
	return Checkpoint{}, info, false
}

// write persists one checkpoint frame through the crash seam: an armed
// CrashCheckpoint site tears the write mid-frame, leaving a file whose
// CRC cannot validate — exactly the torn state LoadNewest must skip.
func write(dir string, cp Checkpoint, cps *archive.CrashPoints) (int, error) {
	buf := Encode(cp)
	f, err := os.OpenFile(filepath.Join(dir, FileName(cp.Seq)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	crashed, werr := cps.TornWrite(archive.CrashCheckpoint, f, buf)
	cerr := f.Close()
	if werr != nil {
		return len(buf), werr
	}
	if crashed {
		return len(buf), archive.ErrInjectedCrash
	}
	return len(buf), cerr
}

// prune deletes chain entries beyond the newest keep. Deleting oldest
// first keeps the fallback ladder intact if pruning itself is cut short.
func prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	entries, err := List(dir)
	if err != nil {
		return err
	}
	var first error
	for i := 0; i < len(entries)-keep; i++ {
		if err := os.Remove(entries[i].Path); err != nil && first == nil {
			first = err
		}
	}
	return first
}
