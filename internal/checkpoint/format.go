// Package checkpoint bounds front-end recovery time: instead of
// replaying a crashed front end's whole trace archive, recovery loads
// the newest valid checkpoint — a deterministic snapshot of the
// monitor-replay shadows, the continuous-query engine, and the archive
// cursor they cover — and replays only the archive suffix written after
// it. Checkpoints are sidecar files (ckpt-*.eckpt) next to the archive
// segments, CRC-framed so torn or bit-flipped frames are detected and
// skipped, never trusted: a damaged chain degrades recovery time (older
// checkpoint, longer suffix, ultimately full replay), never its result.
//
// The equivalence contract is inherited from the state snapshots it
// persists (analysis/state.go, monitor/state.go, query/state.go): a
// restored shadow fed the archive suffix after the checkpoint's cursor
// ends byte-identical to a full replay of the whole archive.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"eventspace/internal/analysis"
	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/hrtime"
	"eventspace/internal/monitor"
	"eventspace/internal/query"
)

// Checkpoint is one recovery snapshot: the archive cursor it covers and
// the front-end state as of exactly that cursor.
type Checkpoint struct {
	// Seq is the checkpoint's chain sequence number (1-based).
	Seq uint32
	// At is the stamp of the newest data tuple folded into the snapshot.
	At hrtime.Stamp
	// Cursor is the durable archive position the snapshot covers:
	// recovery replays only tuples after it.
	Cursor archive.Cursor
	// LA and Stats are the monitor-replay shadows.
	LA    monitor.LastArrivalState
	Stats monitor.StatsState
	// Engine is the continuous-query engine snapshot; HasEngine is false
	// for recorders without standing queries.
	HasEngine bool
	Engine    query.EngineState
}

// File framing. A checkpoint file is a 24-byte header followed by the
// CRC'd payload:
//
//	[0:4]   magic "ECK1"
//	[4:6]   version (1), little-endian
//	[6:8]   flags (bit 0: engine section present)
//	[8:12]  chain sequence
//	[12:16] payload length
//	[16:20] payload CRC32 (IEEE)
//	[20:24] header CRC32 over bytes [0:20]
//
// The payload is a sequence of sections, each `id u16, len u32, body`.
// All integers are little-endian; floats are IEEE-754 bit patterns.
// Everything is written in one canonical order with sorted keys, so two
// checkpoints of identical state are bit-identical.
const (
	headerSize = 24
	version    = 1

	flagEngine = 1 << 0

	secCursor = 1
	secLA     = 2
	secStats  = 3
	secEngine = 4

	// maxPayload caps how large a payload a decoder will even consider:
	// torn headers must not provoke giant allocations.
	maxPayload = 1 << 30
)

var magic = [4]byte{'E', 'C', 'K', '1'}

// ErrInvalid reports a torn, truncated, or CRC-corrupt checkpoint
// frame. Callers skip the frame and fall back to an older checkpoint
// (or full replay); they never trust partial contents.
var ErrInvalid = errors.New("checkpoint: invalid or torn checkpoint")

const (
	tupleSize = collect.TupleSize // 28
	alertSize = 8 + 2 + 4 + 8    // QueryHash, Group, Seq, At
)

//lint:hotpath checkpoint tuple-block encode; gated by BenchmarkCheckpointEncodeTuples' zero-alloc check
func encodeTuples(dst []byte, ts []collect.TraceTuple) int {
	off := 0
	for i := range ts {
		ts[i].EncodeTo(dst[off:])
		off += tupleSize
	}
	return off
}

// enc is a fixed-offset writer over a pre-sized buffer. Encoding is
// two-pass — encodedSize then encode — so the hot section writers never
// allocate or grow.
type enc struct {
	buf []byte
	off int
}

func (e *enc) u8(v uint8)   { e.buf[e.off] = v; e.off++ }
func (e *enc) u16(v uint16) { binary.LittleEndian.PutUint16(e.buf[e.off:], v); e.off += 2 }
func (e *enc) u32(v uint32) { binary.LittleEndian.PutUint32(e.buf[e.off:], v); e.off += 4 }
func (e *enc) u64(v uint64) { binary.LittleEndian.PutUint64(e.buf[e.off:], v); e.off += 8 }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u16(uint16(len(s)))
	copy(e.buf[e.off:], s)
	e.off += len(s)
}
func (e *enc) tuple(t collect.TraceTuple) {
	t.EncodeTo(e.buf[e.off:])
	e.off += tupleSize
}
func (e *enc) tuples(ts []collect.TraceTuple) {
	e.u32(uint32(len(ts)))
	e.off += encodeTuples(e.buf[e.off:], ts)
}

// dec is the bounds-checked mirror of enc. Every read validates the
// remaining length first, so torn or bit-flipped payloads yield errors,
// never panics; counts are checked against the bytes that must follow
// before anything is allocated.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrInvalid, what, d.off)
	}
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.fail("field")
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) i32() int32    { return int32(d.u32()) }
func (d *dec) i64() int64    { return int64(d.u64()) }
func (d *dec) f64() float64  { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// count reads an element count and refuses one that cannot fit in the
// remaining bytes at entrySize bytes per element — the allocation guard
// that keeps fuzzed frames from demanding gigabytes.
func (d *dec) count(entrySize int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n*entrySize > len(d.buf)-d.off {
		d.fail("element count")
		return 0
	}
	return n
}

func (d *dec) tuple() collect.TraceTuple {
	if !d.need(tupleSize) {
		return collect.TraceTuple{}
	}
	out, err := collect.DecodeAppend(nil, d.buf[d.off:d.off+tupleSize])
	if err != nil || len(out) != 1 {
		d.fail("tuple")
		return collect.TraceTuple{}
	}
	d.off += tupleSize
	return out[0]
}

func (d *dec) tuples() []collect.TraceTuple {
	n := d.count(tupleSize)
	if d.err != nil || n == 0 {
		return nil
	}
	out, err := collect.DecodeAppend(make([]collect.TraceTuple, 0, n), d.buf[d.off:d.off+n*tupleSize])
	if err != nil {
		d.fail("tuple block")
		return nil
	}
	d.off += n * tupleSize
	return out
}

// Section bodies.

func cursorSize() int { return 8 + 8 + 4 + 8 }

func encodeCursor(e *enc, at hrtime.Stamp, c archive.Cursor) {
	e.i64(int64(at))
	e.u64(c.Tuples)
	e.u32(c.Segment)
	e.u64(c.SegTuples)
}

func decodeCursor(d *dec) (hrtime.Stamp, archive.Cursor) {
	at := hrtime.Stamp(d.i64())
	var c archive.Cursor
	c.Tuples = d.u64()
	c.Segment = d.u32()
	c.SegTuples = d.u64()
	return at, c
}

func contribsSize(cs []analysis.ContribState) int { return 4 + len(cs)*(4+tupleSize) }

func encodeContribs(e *enc, cs []analysis.ContribState) {
	e.u32(uint32(len(cs)))
	for _, c := range cs {
		e.i32(c.ID)
		e.tuple(c.Tuple)
	}
}

func decodeContribs(d *dec) []analysis.ContribState {
	n := d.count(4 + tupleSize)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]analysis.ContribState, 0, n)
	for i := 0; i < n; i++ {
		id := d.i32()
		out = append(out, analysis.ContribState{ID: id, Tuple: d.tuple()})
	}
	return out
}

func lbJoinSize(j monitor.LBJoinState) int {
	n := 4 + 4 + 8 + 4 + 4 + 4
	for _, r := range j.Pending {
		n += 4 + contribsSize(r.Contribs)
	}
	return n
}

func encodeLBJoin(e *enc, j monitor.LBJoinState) {
	e.i32(int32(j.K))
	e.i32(int32(j.MaxPending))
	e.u64(j.Lost)
	e.u32(j.Floor)
	e.u32(j.MaxDone)
	e.u32(uint32(len(j.Pending)))
	for _, r := range j.Pending {
		e.u32(r.Seq)
		encodeContribs(e, r.Contribs)
	}
}

func decodeLBJoin(d *dec) monitor.LBJoinState {
	var j monitor.LBJoinState
	j.K = int(d.i32())
	j.MaxPending = int(d.i32())
	j.Lost = d.u64()
	j.Floor = d.u32()
	j.MaxDone = d.u32()
	n := d.count(4 + 4)
	for i := 0; i < n && d.err == nil; i++ {
		r := monitor.LBJoinRoundState{Seq: d.u32()}
		r.Contribs = decodeContribs(d)
		j.Pending = append(j.Pending, r)
	}
	return j
}

func laSize(st monitor.LastArrivalState) int {
	n := 8 + 8 + 4 + 4
	for _, w := range st.Weighted {
		n += 2 + len(w.Node) + 4 + 8
	}
	for _, nj := range st.Joins {
		n += 2 + len(nj.Node) + lbJoinSize(nj.Join)
	}
	return n
}

func encodeLA(e *enc, st monitor.LastArrivalState) {
	e.u64(st.Fed)
	e.u64(st.Matched)
	e.u32(uint32(len(st.Weighted)))
	for _, w := range st.Weighted {
		e.str(w.Node)
		e.i32(w.Contributor)
		e.u64(w.Count)
	}
	e.u32(uint32(len(st.Joins)))
	for _, nj := range st.Joins {
		e.str(nj.Node)
		encodeLBJoin(e, nj.Join)
	}
}

func decodeLA(d *dec) monitor.LastArrivalState {
	var st monitor.LastArrivalState
	st.Fed = d.u64()
	st.Matched = d.u64()
	n := d.count(2 + 4 + 8)
	for i := 0; i < n && d.err == nil; i++ {
		var w monitor.WeightedCount
		w.Node = d.str()
		w.Contributor = d.i32()
		w.Count = d.u64()
		st.Weighted = append(st.Weighted, w)
	}
	n = d.count(2 + 4 + 4 + 8 + 4 + 4 + 4)
	for i := 0; i < n && d.err == nil; i++ {
		var nj monitor.NamedLBJoinState
		nj.Node = d.str()
		nj.Join = decodeLBJoin(d)
		st.Joins = append(st.Joins, nj)
	}
	return st
}

func joinerSize(j analysis.JoinerState) int {
	n := 4 + 4 + 8 + 4
	for _, r := range j.Pending {
		n += 4 + 1 + tupleSize + contribsSize(r.Contribs)
	}
	return n
}

func encodeJoiner(e *enc, j analysis.JoinerState) {
	e.i32(int32(j.K))
	e.i32(int32(j.MaxPending))
	e.u64(j.Lost)
	e.u32(uint32(len(j.Pending)))
	for _, r := range j.Pending {
		e.u32(r.Seq)
		if r.HaveColl {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.tuple(r.Collective)
		encodeContribs(e, r.Contribs)
	}
}

func decodeJoiner(d *dec) analysis.JoinerState {
	var j analysis.JoinerState
	j.K = int(d.i32())
	j.MaxPending = int(d.i32())
	j.Lost = d.u64()
	n := d.count(4 + 1 + tupleSize + 4)
	for i := 0; i < n && d.err == nil; i++ {
		var r analysis.RoundState
		r.Seq = d.u32()
		r.HaveColl = d.u8() != 0
		r.Collective = d.tuple()
		r.Contribs = decodeContribs(d)
		j.Pending = append(j.Pending, r)
	}
	return j
}

func streamSize(s analysis.StreamState) int { return 8 + 8*4 + 4 + 4 + 8*len(s.Ring) }

func encodeStream(e *enc, s analysis.StreamState) {
	e.u64(s.N)
	e.f64(s.Mean)
	e.f64(s.M2)
	e.f64(s.Min)
	e.f64(s.Max)
	e.i32(int32(s.Window))
	e.u32(uint32(len(s.Ring)))
	for _, v := range s.Ring {
		e.f64(v)
	}
}

func decodeStream(d *dec) analysis.StreamState {
	var s analysis.StreamState
	s.N = d.u64()
	s.Mean = d.f64()
	s.M2 = d.f64()
	s.Min = d.f64()
	s.Max = d.f64()
	s.Window = int(d.i32())
	n := d.count(8)
	for i := 0; i < n && d.err == nil; i++ {
		s.Ring = append(s.Ring, d.f64())
	}
	return s
}

func statsSize(st monitor.StatsState) int {
	n := 4 + 8 + 8 + 4
	for _, ns := range st.Nodes {
		n += 4 + 8 + joinerSize(ns.Joiner)
		for _, s := range []analysis.StreamState{ns.Down, ns.Up, ns.Total, ns.ArrWait, ns.DepWait} {
			n += streamSize(s)
		}
	}
	return n
}

func encodeStats(e *enc, st monitor.StatsState) {
	e.i32(int32(st.Window))
	e.u64(st.Fed)
	e.u64(st.Matched)
	e.u32(uint32(len(st.Nodes)))
	for _, ns := range st.Nodes {
		e.u32(ns.NodeID)
		e.u64(ns.Rounds)
		encodeJoiner(e, ns.Joiner)
		encodeStream(e, ns.Down)
		encodeStream(e, ns.Up)
		encodeStream(e, ns.Total)
		encodeStream(e, ns.ArrWait)
		encodeStream(e, ns.DepWait)
	}
}

func decodeStats(d *dec) monitor.StatsState {
	var st monitor.StatsState
	st.Window = int(d.i32())
	st.Fed = d.u64()
	st.Matched = d.u64()
	n := d.count(4 + 8)
	for i := 0; i < n && d.err == nil; i++ {
		var ns monitor.StatsNodeState
		ns.NodeID = d.u32()
		ns.Rounds = d.u64()
		ns.Joiner = decodeJoiner(d)
		ns.Down = decodeStream(d)
		ns.Up = decodeStream(d)
		ns.Total = decodeStream(d)
		ns.ArrWait = decodeStream(d)
		ns.DepWait = decodeStream(d)
		st.Nodes = append(st.Nodes, ns)
	}
	return st
}

func engineSize(st query.EngineState) int {
	n := 4 + 8 + 4 + 4 + tupleSize*len(st.Buf) + 4 + alertSize*len(st.Alerts) + 4
	for _, q := range st.Queries {
		n += 8 + 1 + 8 + 4 + 6*len(q.Streak) + 4 + 2*len(q.Fired)
	}
	return n
}

func encodeEngine(e *enc, st query.EngineState) {
	e.i32(int32(st.Expected))
	e.i64(int64(st.Watermark))
	e.u32(st.Seq)
	e.tuples(st.Buf)
	e.u32(uint32(len(st.Alerts)))
	for _, a := range st.Alerts {
		e.u64(a.QueryHash)
		e.u16(a.Group)
		e.u32(a.Seq)
		e.i64(int64(a.At))
	}
	e.u32(uint32(len(st.Queries)))
	for _, q := range st.Queries {
		e.u64(q.Hash)
		if q.Anchored {
			e.u8(1)
		} else {
			e.u8(0)
		}
		e.i64(int64(q.LastTick))
		e.u32(uint32(len(q.Streak)))
		for _, gs := range q.Streak {
			e.u16(gs.Group)
			e.i32(gs.Count)
		}
		e.u32(uint32(len(q.Fired)))
		for _, g := range q.Fired {
			e.u16(g)
		}
	}
}

func decodeEngine(d *dec) query.EngineState {
	var st query.EngineState
	st.Expected = int(d.i32())
	st.Watermark = hrtime.Stamp(d.i64())
	st.Seq = d.u32()
	st.Buf = d.tuples()
	n := d.count(alertSize)
	for i := 0; i < n && d.err == nil; i++ {
		var a collect.AlertTuple
		a.QueryHash = d.u64()
		a.Group = d.u16()
		a.Seq = d.u32()
		a.At = hrtime.Stamp(d.i64())
		st.Alerts = append(st.Alerts, a)
	}
	n = d.count(8 + 1 + 8 + 4 + 4)
	for i := 0; i < n && d.err == nil; i++ {
		var q query.StandingState
		q.Hash = d.u64()
		q.Anchored = d.u8() != 0
		q.LastTick = hrtime.Stamp(d.i64())
		sn := d.count(6)
		for j := 0; j < sn && d.err == nil; j++ {
			var gs query.GroupStreak
			gs.Group = d.u16()
			gs.Count = d.i32()
			q.Streak = append(q.Streak, gs)
		}
		fn := d.count(2)
		for j := 0; j < fn && d.err == nil; j++ {
			q.Fired = append(q.Fired, d.u16())
		}
		st.Queries = append(st.Queries, q)
	}
	return st
}

// Encode frames a checkpoint into its on-disk byte form.
func Encode(cp Checkpoint) []byte {
	payloadLen := (2 + 4 + cursorSize()) + (2 + 4 + laSize(cp.LA)) + (2 + 4 + statsSize(cp.Stats))
	if cp.HasEngine {
		payloadLen += 2 + 4 + engineSize(cp.Engine)
	}
	buf := make([]byte, headerSize+payloadLen)
	e := &enc{buf: buf, off: headerSize}

	e.u16(secCursor)
	e.u32(uint32(cursorSize()))
	encodeCursor(e, cp.At, cp.Cursor)

	e.u16(secLA)
	e.u32(uint32(laSize(cp.LA)))
	encodeLA(e, cp.LA)

	e.u16(secStats)
	e.u32(uint32(statsSize(cp.Stats)))
	encodeStats(e, cp.Stats)

	var flags uint16
	if cp.HasEngine {
		flags |= flagEngine
		e.u16(secEngine)
		e.u32(uint32(engineSize(cp.Engine)))
		encodeEngine(e, cp.Engine)
	}
	if e.off != len(buf) {
		// Size/encode drift is a programming error, not a data error.
		panic(fmt.Sprintf("checkpoint: encoded %d bytes, sized %d", e.off-headerSize, payloadLen))
	}

	copy(buf[0:4], magic[:])
	binary.LittleEndian.PutUint16(buf[4:6], version)
	binary.LittleEndian.PutUint16(buf[6:8], flags)
	binary.LittleEndian.PutUint32(buf[8:12], cp.Seq)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[16:20], crc32.ChecksumIEEE(buf[headerSize:]))
	binary.LittleEndian.PutUint32(buf[20:24], crc32.ChecksumIEEE(buf[0:20]))
	return buf
}

// Decode parses a framed checkpoint, validating both CRCs and every
// field bound. Any tear, truncation, or corruption yields ErrInvalid.
func Decode(buf []byte) (Checkpoint, error) {
	var cp Checkpoint
	if len(buf) < headerSize {
		return cp, fmt.Errorf("%w: %d-byte frame shorter than the header", ErrInvalid, len(buf))
	}
	if [4]byte(buf[0:4]) != magic {
		return cp, fmt.Errorf("%w: bad magic", ErrInvalid)
	}
	if got, want := crc32.ChecksumIEEE(buf[0:20]), binary.LittleEndian.Uint32(buf[20:24]); got != want {
		return cp, fmt.Errorf("%w: header CRC %08x, want %08x", ErrInvalid, got, want)
	}
	if v := binary.LittleEndian.Uint16(buf[4:6]); v != version {
		return cp, fmt.Errorf("%w: version %d", ErrInvalid, v)
	}
	flags := binary.LittleEndian.Uint16(buf[6:8])
	cp.Seq = binary.LittleEndian.Uint32(buf[8:12])
	payloadLen := binary.LittleEndian.Uint32(buf[12:16])
	if payloadLen > maxPayload || int(payloadLen) != len(buf)-headerSize {
		return cp, fmt.Errorf("%w: payload length %d, frame holds %d", ErrInvalid, payloadLen, len(buf)-headerSize)
	}
	payload := buf[headerSize:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(buf[16:20]); got != want {
		return cp, fmt.Errorf("%w: payload CRC %08x, want %08x", ErrInvalid, got, want)
	}

	var haveCursor, haveLA, haveStats, haveEngine bool
	for off := 0; off < len(payload); {
		if off+6 > len(payload) {
			return cp, fmt.Errorf("%w: truncated section header", ErrInvalid)
		}
		id := binary.LittleEndian.Uint16(payload[off:])
		n := int(binary.LittleEndian.Uint32(payload[off+2:]))
		off += 6
		if n < 0 || off+n > len(payload) {
			return cp, fmt.Errorf("%w: section %d overruns payload", ErrInvalid, id)
		}
		d := &dec{buf: payload[off : off+n]}
		switch id {
		case secCursor:
			cp.At, cp.Cursor = decodeCursor(d)
			haveCursor = true
		case secLA:
			cp.LA = decodeLA(d)
			haveLA = true
		case secStats:
			cp.Stats = decodeStats(d)
			haveStats = true
		case secEngine:
			cp.Engine = decodeEngine(d)
			haveEngine = true
		default:
			// Unknown sections are skipped for forward compatibility; the
			// payload CRC already vouched for their bytes.
		}
		if d.err != nil {
			return cp, d.err
		}
		if d.err == nil && d.off != n && (id == secCursor || id == secLA || id == secStats || id == secEngine) {
			return cp, fmt.Errorf("%w: section %d decoded %d of %d bytes", ErrInvalid, id, d.off, n)
		}
		off += n
	}
	if !haveCursor || !haveLA || !haveStats {
		return cp, fmt.Errorf("%w: missing required section", ErrInvalid)
	}
	if haveEngine != (flags&flagEngine != 0) {
		return cp, fmt.Errorf("%w: engine section does not match header flags", ErrInvalid)
	}
	cp.HasEngine = haveEngine
	return cp, nil
}
