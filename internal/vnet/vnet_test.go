package vnet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"eventspace/internal/hrtime"
)

// fastScale shrinks modelled delays for the duration of a test.
func fastScale(t *testing.T, f float64) {
	t.Helper()
	old := hrtime.Scale()
	hrtime.SetScale(f)
	t.Cleanup(func() { hrtime.SetScale(old) })
}

func newTestNet(t *testing.T) *Network {
	t.Helper()
	return NewNetwork(FastEthernet, DefaultCostModel())
}

func TestLinkDelay(t *testing.T) {
	l := LinkSpec{Latency: 100 * time.Microsecond, Bandwidth: 1e6}
	if d := l.Delay(0); d != 100*time.Microsecond {
		t.Fatalf("zero-size delay = %v", d)
	}
	// 1000 bytes at 1 MB/s = 1 ms serialization.
	if d := l.Delay(1000); d != 100*time.Microsecond+time.Millisecond {
		t.Fatalf("1000B delay = %v", d)
	}
	inf := LinkSpec{Latency: time.Millisecond}
	if d := inf.Delay(1 << 20); d != time.Millisecond {
		t.Fatalf("infinite-bandwidth delay = %v", d)
	}
}

func TestQuickLinkDelayMonotonic(t *testing.T) {
	f := func(lat uint16, bwRaw uint32, a, b uint16) bool {
		l := LinkSpec{
			Latency:   time.Duration(lat) * time.Microsecond,
			Bandwidth: float64(bwRaw%1000000) + 1,
		}
		small, large := int(a), int(b)
		if small > large {
			small, large = large, small
		}
		return l.Delay(small) <= l.Delay(large) && l.Delay(small) >= l.Latency
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddClusterCreatesHostsAndGateway(t *testing.T) {
	n := newTestNet(t)
	c, err := n.AddCluster("tin", "tromso", 4, 1, GigabitEthernet)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Hosts()) != 4 {
		t.Fatalf("hosts = %d", len(c.Hosts()))
	}
	if c.Gateway() == nil || c.Gateway().Name() != "tin-gw" {
		t.Fatalf("gateway = %v", c.Gateway())
	}
	if c.Site() != "tromso" || c.Name() != "tin" {
		t.Fatalf("cluster meta = %q %q", c.Name(), c.Site())
	}
	h, err := n.Host("tin-2")
	if err != nil {
		t.Fatal(err)
	}
	if h.Cluster() != c {
		t.Fatal("host not linked to cluster")
	}
	if h.CPUs() != 1 {
		t.Fatalf("cpus = %d", h.CPUs())
	}
	if got, err := n.ClusterByName("tin"); err != nil || got != c {
		t.Fatalf("ClusterByName = %v, %v", got, err)
	}
	if len(n.Clusters()) != 1 {
		t.Fatalf("Clusters() = %d", len(n.Clusters()))
	}
}

func TestAddClusterRejectsDuplicatesAndBadArgs(t *testing.T) {
	n := newTestNet(t)
	if _, err := n.AddCluster("c", "s", 0, 1, GigabitEthernet); err == nil {
		t.Fatal("nhosts 0 accepted")
	}
	if _, err := n.AddCluster("c", "s", 2, 0, GigabitEthernet); err == nil {
		t.Fatal("cpus 0 accepted")
	}
	if _, err := n.AddCluster("c", "s", 2, 1, GigabitEthernet); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddCluster("c", "s", 2, 1, GigabitEthernet); err == nil {
		t.Fatal("duplicate cluster accepted")
	}
	if _, err := n.AddStandaloneHost("c-0", 1); err == nil {
		t.Fatal("duplicate host name accepted")
	}
	if _, err := n.Host("nope"); err == nil {
		t.Fatal("missing host lookup succeeded")
	}
	if _, err := n.ClusterByName("nope"); err == nil {
		t.Fatal("missing cluster lookup succeeded")
	}
}

func TestStandaloneHost(t *testing.T) {
	n := newTestNet(t)
	h, err := n.AddStandaloneHost("frontend", 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cluster() != nil {
		t.Fatal("standalone host has a cluster")
	}
	if h.Registry == nil {
		t.Fatal("no registry")
	}
}

func TestOneWayDelayTopology(t *testing.T) {
	n := newTestNet(t)
	c1, _ := n.AddCluster("a", "s1", 2, 1, GigabitEthernet)
	c2, _ := n.AddCluster("b", "s1", 2, 1, GigabitEthernet)
	fe, _ := n.AddStandaloneHost("fe", 1)
	a0, a1 := c1.Hosts()[0], c1.Hosts()[1]
	b0 := c2.Hosts()[0]

	if d := n.OneWayDelay(a0, a0, 8); d != n.Cost().LocalLatency {
		t.Fatalf("same-host delay = %v", d)
	}
	if d := n.OneWayDelay(a0, a1, 8); d != GigabitEthernet.Delay(8) {
		t.Fatalf("intra delay = %v", d)
	}
	// a0 -> b0: intra + inter + intra.
	want := 2*GigabitEthernet.Delay(8) + FastEthernet.Delay(8)
	if d := n.OneWayDelay(a0, b0, 8); d != want {
		t.Fatalf("cross delay = %v, want %v", d, want)
	}
	// Gateway to remote compute host skips the first intra hop.
	want = GigabitEthernet.Delay(8) + FastEthernet.Delay(8)
	if d := n.OneWayDelay(c1.Gateway(), b0, 8); d != want {
		t.Fatalf("gw-to-host delay = %v, want %v", d, want)
	}
	// Standalone front-end: only remote intra hop + inter segment.
	want = GigabitEthernet.Delay(8) + FastEthernet.Delay(8)
	if d := n.OneWayDelay(fe, a0, 8); d != want {
		t.Fatalf("fe-to-host delay = %v, want %v", d, want)
	}
}

func TestWANDelayUsedAcrossSites(t *testing.T) {
	n := newTestNet(t)
	c1, _ := n.AddCluster("a", "tromso", 1, 1, GigabitEthernet)
	c2, _ := n.AddCluster("b", "aalborg", 1, 1, GigabitEthernet)
	c3, _ := n.AddCluster("c", "tromso", 1, 1, GigabitEthernet)
	wan := 18 * time.Millisecond
	n.SetWANDelay(func(from, to string, size int) time.Duration {
		if from == to {
			t.Errorf("WAN delay called for same site %q", from)
		}
		return wan
	})
	a, b, c := c1.Hosts()[0], c2.Hosts()[0], c3.Hosts()[0]
	want := 2*GigabitEthernet.Delay(8) + wan
	if d := n.OneWayDelay(a, b, 8); d != want {
		t.Fatalf("cross-site delay = %v, want %v", d, want)
	}
	// Same site still uses the LAN inter-cluster link.
	want = 2*GigabitEthernet.Delay(8) + FastEthernet.Delay(8)
	if d := n.OneWayDelay(a, c, 8); d != want {
		t.Fatalf("same-site delay = %v, want %v", d, want)
	}
}

func TestHostOccupySerializesOnSlots(t *testing.T) {
	fastScale(t, 1)
	n := newTestNet(t)
	h, _ := n.AddStandaloneHost("h", 1)
	const d = 20 * time.Millisecond
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Occupy(d)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 3*d {
		t.Fatalf("3 occupations of %v on 1 CPU took %v (< %v): not serialized", d, el, 3*d)
	}
	if bt := h.BusyTime(); bt < 3*d {
		t.Fatalf("BusyTime = %v, want >= %v", bt, 3*d)
	}
}

func TestHostOccupyParallelWithTwoCPUs(t *testing.T) {
	fastScale(t, 1)
	n := newTestNet(t)
	h, _ := n.AddStandaloneHost("h", 2)
	const d = 30 * time.Millisecond
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Occupy(d)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el > 2*d {
		t.Fatalf("2 occupations of %v on 2 CPUs took %v: not parallel", d, el)
	}
}

func TestConnCallRoundTrip(t *testing.T) {
	fastScale(t, 0.01)
	n := newTestNet(t)
	c, _ := n.AddCluster("c", "s", 2, 1, GigabitEthernet)
	a, b := c.Hosts()[0], c.Hosts()[1]
	conn := n.Dial(a, b, func(p []byte) ([]byte, error) {
		return append([]byte("re:"), p...), nil
	})
	defer conn.Close()
	resp, err := conn.Call([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:hello" {
		t.Fatalf("resp = %q", resp)
	}
	if n.Messages() < 2 {
		t.Fatalf("Messages = %d, want >= 2", n.Messages())
	}
}

func TestConnHandlerError(t *testing.T) {
	fastScale(t, 0.01)
	n := newTestNet(t)
	c, _ := n.AddCluster("c", "s", 2, 1, GigabitEthernet)
	conn := n.Dial(c.Hosts()[0], c.Hosts()[1], func(p []byte) ([]byte, error) {
		return nil, errors.New("boom")
	})
	defer conn.Close()
	if _, err := conn.Call(nil); err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestConnSerializesRequests(t *testing.T) {
	fastScale(t, 0.01)
	n := newTestNet(t)
	c, _ := n.AddCluster("c", "s", 2, 1, GigabitEthernet)
	var mu sync.Mutex
	inHandler := 0
	maxIn := 0
	conn := n.Dial(c.Hosts()[0], c.Hosts()[1], func(p []byte) ([]byte, error) {
		mu.Lock()
		inHandler++
		if inHandler > maxIn {
			maxIn = inHandler
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		inHandler--
		mu.Unlock()
		return p, nil
	})
	defer conn.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := conn.Call([]byte{1}); err != nil {
				t.Errorf("Call: %v", err)
			}
		}()
	}
	wg.Wait()
	if maxIn != 1 {
		t.Fatalf("handler concurrency = %d, want 1 (one CT per connection)", maxIn)
	}
}

func TestConnCloseUnblocksCallers(t *testing.T) {
	fastScale(t, 0.01)
	n := newTestNet(t)
	c, _ := n.AddCluster("c", "s", 2, 1, GigabitEthernet)
	block := make(chan struct{})
	conn := n.Dial(c.Hosts()[0], c.Hosts()[1], func(p []byte) ([]byte, error) {
		<-block
		return p, nil
	})
	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := conn.Call(nil)
			errc <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	// At least the queued (not-yet-served) call must fail promptly; the
	// one inside the handler is released afterwards.
	select {
	case err := <-errc:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued caller not unblocked by Close")
	}
	close(block)
	if err := conn.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := conn.Call(nil); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("call after close: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 5000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame = %q, want %q", got, p)
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
	var hdr [4]byte
	hdr[3] = 0xff // huge length prefix
	if _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversize read accepted")
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(p []byte) ([]byte, error) {
		if string(p) == "fail" {
			return nil, errors.New("nope")
		}
		return append([]byte("ok:"), p...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 10; i++ {
		msg := fmt.Sprintf("m%d", i)
		resp, err := cl.Call([]byte(msg))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "ok:"+msg {
			t.Fatalf("resp = %q", resp)
		}
	}
	if _, err := cl.Call([]byte("fail")); err == nil {
		t.Fatal("remote error not propagated")
	}
}

func TestTCPTransportConcurrentClients(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(p []byte) ([]byte, error) {
		return p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := DialTCP(srv.Addr())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			for j := 0; j < 50; j++ {
				want := []byte{byte(i), byte(j)}
				got, err := cl.Call(want)
				if err != nil || !bytes.Equal(got, want) {
					t.Errorf("call: %v %v", got, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPServerCloseIdempotent(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(p []byte) ([]byte, error) { return p, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
