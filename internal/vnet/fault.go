// Fault injection. A FaultPlan describes failures scheduled in virtual
// time — host crashes and restarts, cluster partitions and heals,
// connection resets — plus probabilistic per-message faults (drops and
// latency spikes) drawn from a seeded counter-based hash so the injected
// fault sequence is reproducible regardless of goroutine interleaving.
//
// Faults surface to callers through the same error paths a real
// deployment would see: a crashed host resets its connections
// (ErrConnClosed), calls to a down host fail fast with ErrHostDown after
// the connect latency, and partitioned or dropped traffic blackholes
// until the call timeout elapses (ErrTimeout). The robustness machinery
// in paths/escope/monitor is built against exactly these errors.
package vnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"eventspace/internal/hrtime"
	"eventspace/internal/vclock"
)

// ErrTimeout is returned by Call when a message (or its reply) is lost —
// dropped by a fault rule or blackholed by a partition — and the call
// timeout elapses.
var ErrTimeout = errors.New("vnet: call timed out")

// ErrHostDown is returned by Call when the destination host is crashed:
// the connection attempt is refused quickly rather than timing out.
var ErrHostDown = errors.New("vnet: host down")

// FaultKind enumerates scheduled fault events.
type FaultKind int

const (
	// FaultCrash marks the named host down and resets every connection
	// touching it. Calls to the host fail with ErrHostDown until a
	// matching FaultRestart.
	FaultCrash FaultKind = iota
	// FaultRestart brings a crashed host back. Its PastSet state is
	// intact (the paper's hosts persist nothing; our model keeps the
	// registry so cursors resume where they left off).
	FaultRestart
	// FaultPartition cuts the named cluster off from the rest of the
	// network: calls crossing the cluster boundary time out. Intra-cluster
	// traffic is unaffected.
	FaultPartition
	// FaultHeal removes a partition.
	FaultHeal
	// FaultReset closes every connection touching the named host (or any
	// host of the named cluster) without marking anything down — an
	// in-flight and queued calls fail with ErrConnClosed, and redialling
	// succeeds immediately.
	FaultReset
	// FaultSlow turns the named host (or every host of the named cluster)
	// into a straggler: the service time of every message the host serves
	// is inflated by the event's Factor. The host stays up and calls still
	// succeed — they just take Factor times the modelled communication
	// work, with a seeded per-message jitter, so gathers stall instead of
	// failing. The deterministic delay sequence is exposed by
	// FaultPlan.SlowSequence.
	FaultSlow
	// FaultFast clears a FaultSlow on the named host or cluster.
	FaultFast
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultRestart:
		return "restart"
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultReset:
		return "reset"
	case FaultSlow:
		return "slow"
	case FaultFast:
		return "fast"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent is one scheduled fault.
type FaultEvent struct {
	// At is the virtual-time offset from injector start at which the
	// event fires.
	At   time.Duration
	Kind FaultKind
	// Host names the target host (crash, restart, reset, slow, fast).
	Host string
	// Cluster names the target cluster (partition, heal, reset, slow,
	// fast).
	Cluster string
	// Factor is the service-time multiplier of a FaultSlow event (> 1
	// slows the host down; values at or below 1 clear the slowdown, like
	// FaultFast). Ignored by every other kind.
	Factor float64
}

// FaultRule injects probabilistic per-message faults on matching traffic.
// A message matches when either endpoint's host or cluster name equals
// the (non-empty) selector; an empty selector matches everything. The
// first matching rule applies.
type FaultRule struct {
	Host    string // match on either endpoint host name; "" = any
	Cluster string // match on either endpoint cluster name; "" = any
	// DropProb is the probability a message leg (request or reply) is
	// silently lost; the caller observes ErrTimeout.
	DropProb float64
	// SpikeProb is the probability a message leg is delayed by an extra
	// SpikeDelay (a latency spike, not a loss).
	SpikeProb  float64
	SpikeDelay time.Duration
}

func (r FaultRule) matches(a, b *Host) bool {
	match1 := func(h *Host) bool {
		if r.Host != "" && h.name != r.Host {
			return false
		}
		if r.Cluster != "" && (h.cluster == nil || h.cluster.name != r.Cluster) {
			return false
		}
		return true
	}
	return match1(a) || match1(b)
}

// FaultPlan is a reproducible fault schedule: deterministic events in
// virtual time plus seeded probabilistic rules.
type FaultPlan struct {
	// Seed drives every probabilistic decision. The same seed, plan and
	// per-connection-pair message sequence yield the same faults.
	Seed uint64
	// CallTimeout is how long a caller waits on lost traffic before
	// giving up with ErrTimeout. Zero defaults to 2ms.
	CallTimeout time.Duration
	Events      []FaultEvent
	Rules       []FaultRule
}

func (p FaultPlan) timeout() time.Duration {
	if p.CallTimeout > 0 {
		return p.CallTimeout
	}
	return 2 * time.Millisecond
}

// splitmix64 is the standard 64-bit mix; a full-period counter hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037 // FNV-64 offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// decide returns a deterministic pseudo-random draw in [0,1) for the n-th
// leg on the (from,to) pair under this plan's seed. leg distinguishes
// independent decisions for the same message (drop vs spike, request vs
// reply).
func (p FaultPlan) decide(from, to string, n uint64, leg uint64) float64 {
	h := splitmix64(p.Seed ^ hashString(from) ^ splitmix64(hashString(to)) ^ splitmix64(n*4+leg))
	return float64(h>>11) / float64(1<<53)
}

// DropSequence returns the drop decisions the plan would make for the
// first n request legs on the (from,to) host pair under rule. It is a
// pure function of the plan — two plans with equal seeds produce equal
// sequences — and exists so tests can assert determinism directly.
func (p FaultPlan) DropSequence(rule FaultRule, from, to string, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = p.decide(from, to, uint64(i), 0) < rule.DropProb
	}
	return out
}

// slowExtra returns the extra service delay the plan injects for the
// n-th message served by a slowed host `from` for client `to`: the base
// service time scaled by (factor-1) and a deterministic per-message
// jitter draw in [0.5, 1.5). Leg 4 keeps the draws independent of the
// drop/spike legs 0-3.
func (p FaultPlan) slowExtra(from, to string, n uint64, factor float64, base time.Duration) time.Duration {
	if factor <= 1 || base <= 0 {
		return 0
	}
	scale := 0.5 + p.decide(from, to, n, 4)
	return time.Duration(float64(base) * (factor - 1) * scale)
}

// SlowSequence returns the extra service delays a FaultSlow with the
// given factor would inject for the first n messages served by host from
// for client to, given the host's base per-message service time. Like
// DropSequence it is a pure function of the plan — equal seeds produce
// equal sequences — and exists so tests can assert straggler determinism
// directly.
func (p FaultPlan) SlowSequence(from, to string, factor float64, base time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = p.slowExtra(from, to, uint64(i), factor, base)
	}
	return out
}

// FaultRecord is one applied scheduled event, for the injector's log.
type FaultRecord struct {
	At     time.Duration
	Kind   FaultKind
	Target string
}

func (r FaultRecord) String() string {
	return fmt.Sprintf("%v %s %s", r.At, r.Kind, r.Target)
}

// Injector applies a FaultPlan to a Network. Create one with
// Network.InjectFaults; the scheduled events run on a clock-registered
// goroutine so they fire at exact virtual times.
type Injector struct {
	net  *Network
	plan FaultPlan

	mu          sync.Mutex
	down        map[string]bool    // host name -> crashed
	partitioned map[string]bool    // cluster name -> cut off
	slow        map[string]float64 // host name -> service-time factor
	counters    map[[2]string]uint64
	// slowCounters sequences served messages per (server, client) pair
	// for the straggler jitter draws, separate from counters so enabling
	// FaultSlow never perturbs the drop/spike decision sequence.
	slowCounters map[[2]string]uint64
	log          []FaultRecord
	stopped      bool
}

// InjectFaults installs plan on the network and starts its event
// schedule. Only one injector can be active; installing a new one
// replaces the previous (whose pending events keep running unless
// stopped). The returned Injector reports the applied-event log.
func (n *Network) InjectFaults(plan FaultPlan) *Injector {
	inj := &Injector{
		net:          n,
		plan:         plan,
		down:         make(map[string]bool),
		partitioned:  make(map[string]bool),
		slow:         make(map[string]float64),
		counters:     make(map[[2]string]uint64),
		slowCounters: make(map[[2]string]uint64),
	}
	n.faults.Store(inj)
	events := make([]FaultEvent, len(plan.Events))
	copy(events, plan.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	if len(events) > 0 {
		vclock.Go(func() { inj.run(events) })
	}
	return inj
}

func (inj *Injector) run(events []FaultEvent) {
	var elapsed time.Duration
	for _, ev := range events {
		if ev.At > elapsed {
			hrtime.Sleep(ev.At - elapsed)
			elapsed = ev.At
		}
		inj.mu.Lock()
		if inj.stopped {
			inj.mu.Unlock()
			return
		}
		inj.mu.Unlock()
		inj.apply(ev)
	}
}

// Stop cancels scheduled events that have not fired yet. Probabilistic
// rules keep applying; use Network.ClearFaults to remove those too.
func (inj *Injector) Stop() {
	inj.mu.Lock()
	inj.stopped = true
	inj.mu.Unlock()
}

// ClearFaults removes the active injector; subsequent calls see a
// fault-free network. Host-down and partition state is forgotten.
func (n *Network) ClearFaults() {
	if inj := n.faults.Swap(nil); inj != nil {
		inj.Stop()
	}
}

func (inj *Injector) apply(ev FaultEvent) {
	target := ev.Host
	if target == "" {
		target = ev.Cluster
	}
	switch ev.Kind {
	case FaultCrash:
		inj.mu.Lock()
		inj.down[ev.Host] = true
		inj.mu.Unlock()
		inj.net.resetConnsMatching(func(c *Conn) bool {
			return c.client.name == ev.Host || c.server.name == ev.Host
		})
	case FaultRestart:
		inj.mu.Lock()
		delete(inj.down, ev.Host)
		inj.mu.Unlock()
	case FaultPartition:
		inj.mu.Lock()
		inj.partitioned[ev.Cluster] = true
		inj.mu.Unlock()
	case FaultHeal:
		inj.mu.Lock()
		delete(inj.partitioned, ev.Cluster)
		inj.mu.Unlock()
	case FaultReset:
		inj.net.resetConnsMatching(func(c *Conn) bool {
			for _, h := range []*Host{c.client, c.server} {
				if ev.Host != "" && h.name == ev.Host {
					return true
				}
				if ev.Cluster != "" && h.cluster != nil && h.cluster.name == ev.Cluster {
					return true
				}
			}
			return false
		})
	case FaultSlow, FaultFast:
		clear := ev.Kind == FaultFast || ev.Factor <= 1
		inj.mu.Lock()
		for _, name := range inj.slowTargets(ev) {
			if clear {
				delete(inj.slow, name)
			} else {
				inj.slow[name] = ev.Factor
			}
		}
		inj.mu.Unlock()
		if ev.Kind == FaultSlow && !clear {
			target = fmt.Sprintf("%s x%g", target, ev.Factor)
		}
	}
	inj.mu.Lock()
	inj.log = append(inj.log, FaultRecord{At: ev.At, Kind: ev.Kind, Target: target})
	inj.mu.Unlock()
}

// Log returns the scheduled events applied so far, in application order.
func (inj *Injector) Log() []FaultRecord {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]FaultRecord, len(inj.log))
	copy(out, inj.log)
	return out
}

// slowTargets resolves a slow/fast event to host names: the named host,
// or every host (gateway included) of the named cluster.
func (inj *Injector) slowTargets(ev FaultEvent) []string {
	if ev.Host != "" {
		return []string{ev.Host}
	}
	if ev.Cluster == "" {
		return nil
	}
	cl, err := inj.net.ClusterByName(ev.Cluster)
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(cl.hosts)+1)
	for _, h := range cl.hosts {
		names = append(names, h.name)
	}
	names = append(names, cl.gateway.name)
	return names
}

// slowServe returns the extra service time the injector charges when
// server handles one message from client: zero unless the server is
// currently slowed, otherwise a deterministic draw from the plan's slow
// sequence for the pair.
func (inj *Injector) slowServe(server, client *Host) time.Duration {
	inj.mu.Lock()
	factor, ok := inj.slow[server.name]
	if !ok {
		inj.mu.Unlock()
		return 0
	}
	key := [2]string{server.name, client.name}
	n := inj.slowCounters[key]
	inj.slowCounters[key] = n + 1
	inj.mu.Unlock()
	cost := inj.net.cost
	base := cost.WakeLatency + cost.RecvCPU + cost.SendCPU
	return inj.plan.slowExtra(server.name, client.name, n, factor, base)
}

// SlowFactor reports the active service-time factor for the named host
// (1 when the host is not slowed). Tests and harness code use it to
// observe straggler state without reaching into the injector.
func (n *Network) SlowFactor(h *Host) float64 {
	inj := n.faults.Load()
	if inj == nil {
		return 1
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if f, ok := inj.slow[h.name]; ok {
		return f
	}
	return 1
}

// hostDown reports whether h is currently crashed.
func (inj *Injector) hostDown(h *Host) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.down[h.name]
}

// cut reports whether traffic between a and b crosses an active
// partition boundary.
func (inj *Injector) cut(a, b *Host) bool {
	if a.cluster == b.cluster {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if len(inj.partitioned) == 0 {
		return false
	}
	part := func(h *Host) bool {
		return h.cluster != nil && inj.partitioned[h.cluster.name]
	}
	return part(a) || part(b)
}

// nextSeq returns the per-pair message sequence number for a call from a
// to b, advancing the counter.
func (inj *Injector) nextSeq(a, b *Host) uint64 {
	key := [2]string{a.name, b.name}
	inj.mu.Lock()
	n := inj.counters[key]
	inj.counters[key] = n + 1
	inj.mu.Unlock()
	return n
}

// callFaults is evaluated once at the start of a Conn.Call.
type callFaults struct {
	dropReq    bool // request leg lost: handler never runs
	dropRep    bool // reply leg lost: handler runs, caller times out
	spikeReq   bool
	spikeRep   bool
	spikeDelay time.Duration
	timeout    time.Duration
}

// planCall decides the probabilistic faults for one call from a to b.
// Returns the zero struct when no rule matches.
func (inj *Injector) planCall(a, b *Host) callFaults {
	var cf callFaults
	cf.timeout = inj.plan.timeout()
	for _, rule := range inj.plan.Rules {
		if !rule.matches(a, b) {
			continue
		}
		n := inj.nextSeq(a, b)
		cf.dropReq = inj.plan.decide(a.name, b.name, n, 0) < rule.DropProb
		cf.dropRep = inj.plan.decide(a.name, b.name, n, 1) < rule.DropProb
		cf.spikeReq = inj.plan.decide(a.name, b.name, n, 2) < rule.SpikeProb
		cf.spikeRep = inj.plan.decide(a.name, b.name, n, 3) < rule.SpikeProb
		cf.spikeDelay = rule.SpikeDelay
		break
	}
	return cf
}

// HostDown reports whether the named host is currently crashed by the
// active fault plan. Model code (e.g. heartbeat writers in tests) uses it
// to stop doing work "on" a dead host, since goroutines are not actually
// killed by a modelled crash.
func (n *Network) HostDown(h *Host) bool {
	inj := n.faults.Load()
	return inj != nil && inj.hostDown(h)
}

// injector returns the active injector, or nil.
func (n *Network) injector() *Injector {
	return n.faults.Load()
}
