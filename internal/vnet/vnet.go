// Package vnet is the virtual cluster substrate that stands in for the
// paper's physical testbed (the Copper, Lead, Tin and Iron clusters, their
// gateways, 100 Mbit / Gigabit Ethernet links, and the front-end host).
//
// A Network holds clusters of Hosts. Each host has a fixed number of CPU
// slots; every modelled compute section — application computation,
// communication-system message processing, monitor analysis — runs while
// holding a slot, so analysis threads perturb the application through
// exactly the contention mechanism the paper describes (on the paper's
// single-CPU hosts, analysis threads steal the CPU from the communication
// system threads on the collective's critical path).
//
// Inter-host messages are modelled with latency + size/bandwidth delays.
// All traffic entering or leaving a cluster passes through the cluster's
// gateway host, which charges CPU occupancy per transit — reproducing the
// paper's shared-gateway bottleneck. Modelled delays honour the global
// virtual-time scale in package hrtime, so the same topology can run fast
// in tests and at faithful ratios in benchmarks.
package vnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eventspace/internal/hrtime"
	"eventspace/internal/pastset"
	"eventspace/internal/vclock"
)

// ErrConnClosed is returned by Call on a closed connection.
var ErrConnClosed = errors.New("vnet: connection closed")

// LinkSpec models a network link: a fixed per-message latency plus a
// serialization delay of size/Bandwidth.
type LinkSpec struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second; <=0 means infinite
}

// Delay returns the modelled one-way delay for a message of size bytes.
func (l LinkSpec) Delay(size int) time.Duration {
	d := l.Latency
	if l.Bandwidth > 0 && size > 0 {
		d += time.Duration(float64(size) / l.Bandwidth * float64(time.Second))
	}
	return d
}

// Standard links from the paper's testbed.
var (
	// GigabitEthernet is the Tin/Iron intra-cluster link.
	GigabitEthernet = LinkSpec{Latency: 55 * time.Microsecond, Bandwidth: 110e6}
	// FastEthernet is the Copper/Lead intra-cluster and all inter-cluster
	// LAN link (100 Mbit).
	FastEthernet = LinkSpec{Latency: 90 * time.Microsecond, Bandwidth: 11e6}
)

// CostModel holds the per-message CPU occupancy charges of the modelled
// communication system (TCP stack + PATHS communication thread work) and
// the loopback latency for same-host messages.
type CostModel struct {
	SendCPU      time.Duration // charged on the sending host per message
	RecvCPU      time.Duration // charged on the receiving host per message
	GatewayCPU   time.Duration // charged on each gateway a message transits
	LocalLatency time.Duration // same-host delivery latency
	// WakeLatency models the scheduler wakeup of the thread that
	// handles an arriving message (2005-era LinuxThreads context
	// switch); it delays the message without occupying a CPU slot and
	// is charged once on the serving side and once on the caller when
	// the reply arrives.
	WakeLatency time.Duration
}

// DefaultCostModel returns charges calibrated to the paper's 2005-era
// hosts (tens of microseconds of TCP/IP processing per small message).
func DefaultCostModel() CostModel {
	return CostModel{
		SendCPU:      7 * time.Microsecond,
		RecvCPU:      10 * time.Microsecond,
		GatewayCPU:   8 * time.Microsecond,
		LocalLatency: 4 * time.Microsecond,
		WakeLatency:  45 * time.Microsecond,
	}
}

// Host is a machine in the virtual testbed: a name, a number of CPU slots,
// and a PastSet registry holding the host's elements.
type Host struct {
	name    string
	cluster *Cluster
	slots   *vclock.Sem
	ncpu    int

	Registry *pastset.Registry

	busyNS atomic.Int64 // accumulated modelled CPU occupancy
}

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Cluster returns the cluster this host belongs to (nil for standalone
// hosts such as the monitor front-end).
func (h *Host) Cluster() *Cluster { return h.cluster }

// CPUs returns the host's CPU slot count.
func (h *Host) CPUs() int { return h.ncpu }

// Acquire claims one CPU slot, blocking until one is free.
func (h *Host) Acquire() { h.slots.Acquire() }

// Release returns a CPU slot claimed with Acquire.
func (h *Host) Release() { h.slots.Release() }

// Occupy claims a CPU slot for the scaled duration d, modelling a compute
// section. Durations at or below zero only charge the accounting counter.
func (h *Host) Occupy(d time.Duration) {
	h.Acquire()
	hrtime.Sleep(d)
	h.Release()
	h.busyNS.Add(int64(hrtime.ScaleDelay(d)))
}

// OccupyUnscaled claims a CPU slot and busy-works for the real duration d.
// It is used by microbenchmarks that need genuine CPU burn.
func (h *Host) OccupyUnscaled(d time.Duration) {
	h.Acquire()
	hrtime.Work(d)
	h.Release()
	h.busyNS.Add(int64(d))
}

// BusyTime reports the accumulated modelled CPU occupancy of the host.
func (h *Host) BusyTime() time.Duration { return time.Duration(h.busyNS.Load()) }

// Cluster is a set of hosts sharing an intra-cluster link and a gateway.
// All traffic to or from the cluster transits the gateway host.
type Cluster struct {
	name    string
	site    string
	intra   LinkSpec
	hosts   []*Host
	gateway *Host
}

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.name }

// Site returns the WAN site this cluster is placed at.
func (c *Cluster) Site() string { return c.site }

// Hosts returns the compute hosts (excluding the gateway).
func (c *Cluster) Hosts() []*Host { return c.hosts }

// Gateway returns the cluster's gateway host.
func (c *Cluster) Gateway() *Host { return c.gateway }

// Intra returns the cluster's internal link spec.
func (c *Cluster) Intra() LinkSpec { return c.intra }

// WANDelayFunc computes the one-way delay for a message of size bytes
// between two WAN sites. It is provided by the Longcut emulator in package
// wantrace.
type WANDelayFunc func(fromSite, toSite string, size int) time.Duration

// Network is the whole virtual testbed.
type Network struct {
	mu       sync.RWMutex
	hosts    map[string]*Host
	clusters map[string]*Cluster
	inter    LinkSpec // LAN link between cluster gateways at the same site
	cost     CostModel
	wanDelay WANDelayFunc // nil: all sites reachable via inter link

	msgs atomic.Uint64 // messages transmitted, for accounting

	faults atomic.Pointer[Injector] // active fault injector, or nil

	connsMu sync.Mutex
	conns   map[*Conn]struct{} // open modelled connections, for fault resets
}

// NewNetwork creates an empty testbed whose inter-cluster LAN uses the
// given link and whose hosts use the given cost model.
func NewNetwork(inter LinkSpec, cost CostModel) *Network {
	return &Network{
		hosts:    make(map[string]*Host),
		clusters: make(map[string]*Cluster),
		inter:    inter,
		cost:     cost,
		conns:    make(map[*Conn]struct{}),
	}
}

// SetWANDelay installs a WAN delay function (the Longcut emulator). When
// set, messages between clusters at different sites use it instead of the
// LAN inter-cluster link.
func (n *Network) SetWANDelay(f WANDelayFunc) { n.wanDelay = f }

// Cost returns the network's cost model.
func (n *Network) Cost() CostModel { return n.cost }

// Messages reports the total messages transmitted through the network.
func (n *Network) Messages() uint64 { return n.msgs.Load() }

func (n *Network) addHost(name string, cpus int, c *Cluster) (*Host, error) {
	if cpus < 1 {
		return nil, fmt.Errorf("vnet: host %q: cpus %d < 1", name, cpus)
	}
	h := &Host{
		name:     name,
		cluster:  c,
		slots:    vclock.NewSem(cpus),
		ncpu:     cpus,
		Registry: pastset.NewRegistry(),
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.hosts[name]; ok {
		return nil, fmt.Errorf("vnet: host %q already exists", name)
	}
	n.hosts[name] = h
	return h, nil
}

// AddCluster creates a cluster of nhosts compute hosts named
// "<name>-0".."<name>-N" plus a gateway host "<name>-gw", each with the
// given CPU slot count, connected by the intra link, placed at site.
func (n *Network) AddCluster(name, site string, nhosts, cpusPerHost int, intra LinkSpec) (*Cluster, error) {
	if nhosts < 1 {
		return nil, fmt.Errorf("vnet: cluster %q: nhosts %d < 1", name, nhosts)
	}
	n.mu.Lock()
	if _, ok := n.clusters[name]; ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("vnet: cluster %q already exists", name)
	}
	n.mu.Unlock()
	c := &Cluster{name: name, site: site, intra: intra}
	for i := 0; i < nhosts; i++ {
		h, err := n.addHost(fmt.Sprintf("%s-%d", name, i), cpusPerHost, c)
		if err != nil {
			return nil, err
		}
		c.hosts = append(c.hosts, h)
	}
	gw, err := n.addHost(name+"-gw", cpusPerHost, c)
	if err != nil {
		return nil, err
	}
	c.gateway = gw
	n.mu.Lock()
	n.clusters[name] = c
	n.mu.Unlock()
	return c, nil
}

// AddStandaloneHost creates a host outside any cluster (e.g. the monitor
// front-end). It reaches clusters through their gateways over the
// inter-cluster LAN link.
func (n *Network) AddStandaloneHost(name string, cpus int) (*Host, error) {
	return n.addHost(name, cpus, nil)
}

// Host looks up a host by name.
func (n *Network) Host(name string) (*Host, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.hosts[name]
	if !ok {
		return nil, fmt.Errorf("vnet: host %q not found", name)
	}
	return h, nil
}

// ClusterByName looks up a cluster by name.
func (n *Network) ClusterByName(name string) (*Cluster, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	c, ok := n.clusters[name]
	if !ok {
		return nil, fmt.Errorf("vnet: cluster %q not found", name)
	}
	return c, nil
}

// Clusters returns all clusters in unspecified order.
func (n *Network) Clusters() []*Cluster {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Cluster, 0, len(n.clusters))
	for _, c := range n.clusters {
		out = append(out, c)
	}
	return out
}

// interSegmentDelay returns the delay of the gateway-to-gateway segment.
func (n *Network) interSegmentDelay(from, to *Cluster, size int) time.Duration {
	fromSite, toSite := "", ""
	if from != nil {
		fromSite = from.site
	}
	if to != nil {
		toSite = to.site
	}
	if n.wanDelay != nil && fromSite != toSite {
		return n.wanDelay(fromSite, toSite, size)
	}
	return n.inter.Delay(size)
}

// transit models moving a message of size bytes from host a to host b:
// link delays on every segment plus gateway CPU occupancy for every
// gateway transited. It blocks the calling goroutine for the modelled
// time, which is how PATHS stubs experience network latency.
func (n *Network) transit(a, b *Host, size int) {
	n.msgs.Add(1)
	if a == b {
		hrtime.Sleep(n.cost.LocalLatency)
		return
	}
	ca, cb := a.cluster, b.cluster
	if ca != nil && ca == cb {
		hrtime.Sleep(ca.intra.Delay(size))
		return
	}
	// Cross-cluster (or to/from a standalone host): hop to our gateway,
	// cross the inter-cluster segment, hop from the remote gateway.
	if ca != nil && a != ca.gateway {
		hrtime.Sleep(ca.intra.Delay(size))
		ca.gateway.Occupy(n.cost.GatewayCPU)
	}
	hrtime.Sleep(n.interSegmentDelay(ca, cb, size))
	if cb != nil && b != cb.gateway {
		cb.gateway.Occupy(n.cost.GatewayCPU)
		hrtime.Sleep(cb.intra.Delay(size))
	}
}

// OneWayDelay reports the modelled pure link delay (no CPU or queueing)
// from a to b for a message of size bytes. Useful for tests and for
// latency-bound reasoning in the harness.
func (n *Network) OneWayDelay(a, b *Host, size int) time.Duration {
	if a == b {
		return n.cost.LocalLatency
	}
	ca, cb := a.cluster, b.cluster
	if ca != nil && ca == cb {
		return ca.intra.Delay(size)
	}
	var d time.Duration
	if ca != nil && a != ca.gateway {
		d += ca.intra.Delay(size)
	}
	d += n.interSegmentDelay(ca, cb, size)
	if cb != nil && b != cb.gateway {
		d += cb.intra.Delay(size)
	}
	return d
}

// Handler processes a request payload on the serving host and returns the
// response payload. It runs on the server's communication thread and may
// block (e.g. inside an allreduce wrapper).
type Handler func(payload []byte) ([]byte, error)

// Caller is the client side of a request/response transport. Both the
// in-process modelled connection and the real TCP transport implement it.
type Caller interface {
	Call(payload []byte) ([]byte, error)
	Close() error
}

type request struct {
	payload []byte
	reply   *vclock.Event
}

// Conn is a modelled connection between a client host and a server host,
// served by one communication thread (CT) on the server — the paper's
// "CT serving one TCP/IP connection". Requests are processed serially in
// arrival order; the CT charges receive-side CPU per message and the
// client charges send-side CPU, so monitor traffic contends with
// application traffic for the same host CPUs.
type Conn struct {
	net    *Network
	client *Host
	server *Host
	reqs   *vclock.Queue[request]

	inflightMu sync.Mutex
	inflight   map[*vclock.Event]struct{} // picked up, reply not yet fired
}

// Dial opens a connection from client to server whose communication
// thread invokes handler for every request. Dialling always succeeds —
// like a TCP SYN to a dead host, failure only surfaces on the first Call.
func (n *Network) Dial(client, server *Host, handler Handler) *Conn {
	c := &Conn{
		net:      n,
		client:   client,
		server:   server,
		reqs:     vclock.NewQueue[request](),
		inflight: make(map[*vclock.Event]struct{}),
	}
	n.connsMu.Lock()
	n.conns[c] = struct{}{}
	n.connsMu.Unlock()
	vclock.Go(func() { c.serve(handler) })
	return c
}

func (c *Conn) serve(handler Handler) {
	for {
		req, ok := c.reqs.Pop()
		if !ok {
			return
		}
		c.inflightMu.Lock()
		c.inflight[req.reply] = struct{}{}
		c.inflightMu.Unlock()
		// The communication thread wakes up, then receive-side
		// processing charges the server CPU.
		hrtime.Sleep(c.net.cost.WakeLatency)
		c.server.Occupy(c.net.cost.RecvCPU)
		// A straggler host (FaultSlow) serves every message with inflated
		// CPU work: the extra time occupies a slot, so the slowdown
		// contends with everything else running on the host — the same
		// mechanism that makes a genuinely overloaded host slow.
		if inj := c.net.injector(); inj != nil {
			if extra := inj.slowServe(c.server, c.client); extra > 0 {
				c.server.Occupy(extra)
			}
		}
		payload, err := handler(req.payload)
		// Send-side processing of the reply charges the server CPU.
		c.server.Occupy(c.net.cost.SendCPU)
		c.inflightMu.Lock()
		delete(c.inflight, req.reply)
		c.inflightMu.Unlock()
		req.reply.Fire(payload, err)
	}
}

// Call sends a request and blocks until the response returns, modelling
// the full round trip: client send CPU, forward transit, serial CT
// processing, handler execution, reply transit, client receive CPU.
//
// Under an active fault plan a call can instead fail: ErrHostDown when
// either endpoint is crashed (after the connect-refused latency),
// ErrTimeout when the traffic crosses a partition or a message leg is
// dropped, and ErrConnClosed when the connection was reset.
func (c *Conn) Call(payload []byte) ([]byte, error) {
	if c.reqs.Closed() {
		// Writing to a closed connection fails locally, before any
		// network interaction.
		return nil, ErrConnClosed
	}
	var cf callFaults
	if inj := c.net.injector(); inj != nil {
		if inj.hostDown(c.server) || inj.hostDown(c.client) {
			// Connect refused: the destination's stack answers (or the
			// local stack fails) after roughly one propagation delay.
			hrtime.Sleep(c.net.OneWayDelay(c.client, c.server, 0))
			return nil, ErrHostDown
		}
		if inj.cut(c.client, c.server) {
			// Blackholed: nothing answers until the caller gives up.
			hrtime.Sleep(inj.plan.timeout())
			return nil, ErrTimeout
		}
		cf = inj.planCall(c.client, c.server)
	}

	c.client.Occupy(c.net.cost.SendCPU)
	if cf.spikeReq {
		hrtime.Sleep(cf.spikeDelay)
	}
	if cf.dropReq {
		// The request is lost in flight; the handler never runs.
		hrtime.Sleep(cf.timeout)
		return nil, ErrTimeout
	}
	c.net.transit(c.client, c.server, len(payload))

	req := request{payload: payload, reply: vclock.NewEvent()}
	if err := c.reqs.Push(req); err != nil {
		return nil, ErrConnClosed
	}
	if cf.dropRep {
		// The reply is lost: the server processes the request (side
		// effects happen) but the caller never sees the response.
		hrtime.Sleep(cf.timeout)
		return nil, ErrTimeout
	}
	resp, err := req.reply.Wait()
	if err != nil {
		return nil, err
	}
	if cf.spikeRep {
		hrtime.Sleep(cf.spikeDelay)
	}
	c.net.transit(c.server, c.client, len(resp))
	hrtime.Sleep(c.net.cost.WakeLatency)
	c.client.Occupy(c.net.cost.RecvCPU)
	return resp, nil
}

// Close shuts the connection down. Queued calls and the call currently
// being served both fail with ErrConnClosed (the reply event is
// first-fire-wins, so a handler completing later is harmless).
func (c *Conn) Close() error {
	c.net.connsMu.Lock()
	delete(c.net.conns, c)
	c.net.connsMu.Unlock()
	for _, req := range c.reqs.Close() {
		req.reply.Fire(nil, ErrConnClosed)
	}
	c.inflightMu.Lock()
	for ev := range c.inflight {
		ev.Fire(nil, ErrConnClosed)
	}
	c.inflightMu.Unlock()
	return nil
}

// resetConnsMatching closes every open connection the predicate selects.
func (n *Network) resetConnsMatching(match func(*Conn) bool) {
	n.connsMu.Lock()
	var victims []*Conn
	for c := range n.conns {
		if match(c) {
			victims = append(victims, c)
		}
	}
	n.connsMu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

var _ Caller = (*Conn)(nil)
