package vnet

import (
	"errors"
	"testing"
	"time"
)

// pollUntil spins until cond holds or the deadline passes.
func pollUntil(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(200 * time.Microsecond)
	}
	return cond()
}

func TestFaultPlanDropSequenceDeterministic(t *testing.T) {
	rule := FaultRule{DropProb: 0.3}
	a := FaultPlan{Seed: 42}
	b := FaultPlan{Seed: 42}
	sa := a.DropSequence(rule, "tin-0", "tin-gw", 2000)
	sb := b.DropSequence(rule, "tin-0", "tin-gw", 2000)
	drops := 0
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sequence diverges at %d", i)
		}
		if sa[i] {
			drops++
		}
	}
	// The draw should roughly honour the probability.
	if drops < 400 || drops > 800 {
		t.Fatalf("drops = %d of 2000 at p=0.3", drops)
	}
	// A different seed yields a different sequence.
	sc := FaultPlan{Seed: 43}.DropSequence(rule, "tin-0", "tin-gw", 2000)
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical sequences")
	}
	// Different pairs draw independently.
	sd := FaultPlan{Seed: 42}.DropSequence(rule, "tin-1", "tin-gw", 2000)
	same = true
	for i := range sa {
		if sa[i] != sd[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two pairs produced identical sequences")
	}
}

func TestInjectorEventLogDeterministic(t *testing.T) {
	fastScale(t, 1)
	plan := FaultPlan{
		Seed: 7,
		Events: []FaultEvent{
			{At: 2 * time.Millisecond, Kind: FaultPartition, Cluster: "c"},
			{At: time.Millisecond, Kind: FaultCrash, Host: "c-0"},
			{At: 3 * time.Millisecond, Kind: FaultHeal, Cluster: "c"},
			{At: 3 * time.Millisecond, Kind: FaultRestart, Host: "c-0"},
		},
	}
	run := func() []FaultRecord {
		n := newTestNet(t)
		if _, err := n.AddCluster("c", "s", 2, 1, GigabitEthernet); err != nil {
			t.Fatal(err)
		}
		inj := n.InjectFaults(plan)
		if !pollUntil(t, 2*time.Second, func() bool { return len(inj.Log()) == len(plan.Events) }) {
			t.Fatalf("events not applied: log = %v", inj.Log())
		}
		return inj.Log()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("log diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Events apply sorted by At regardless of declaration order.
	if a[0].Kind != FaultCrash || a[1].Kind != FaultPartition {
		t.Fatalf("log order = %v", a)
	}
}

func TestCrashFailsCallsAndRestartRecovers(t *testing.T) {
	fastScale(t, 1)
	n := newTestNet(t)
	c, _ := n.AddCluster("c", "s", 2, 1, GigabitEthernet)
	client, server := c.Hosts()[0], c.Hosts()[1]
	echo := func(p []byte) ([]byte, error) { return p, nil }

	conn := n.Dial(client, server, echo)
	if _, err := conn.Call([]byte{1}); err != nil {
		t.Fatalf("pre-fault call: %v", err)
	}

	n.InjectFaults(FaultPlan{Events: []FaultEvent{{At: 0, Kind: FaultCrash, Host: server.Name()}}})
	if !pollUntil(t, 2*time.Second, func() bool { return n.HostDown(server) }) {
		t.Fatal("crash not applied")
	}
	// The old connection was reset.
	if _, err := conn.Call([]byte{2}); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("call on reset conn: %v", err)
	}
	// A fresh dial reaches a dead host: fast failure, not a hang.
	conn2 := n.Dial(client, server, echo)
	defer conn2.Close()
	if _, err := conn2.Call([]byte{3}); !errors.Is(err, ErrHostDown) {
		t.Fatalf("call to down host: %v", err)
	}

	// Restart: the same fresh connection works again.
	n.ClearFaults()
	n.InjectFaults(FaultPlan{Events: []FaultEvent{{At: 0, Kind: FaultRestart, Host: server.Name()}}})
	if !pollUntil(t, 2*time.Second, func() bool { return !n.HostDown(server) }) {
		t.Fatal("restart not applied")
	}
	if _, err := conn2.Call([]byte{4}); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
}

func TestPartitionTimesOutAndHeals(t *testing.T) {
	fastScale(t, 1)
	n := newTestNet(t)
	a, _ := n.AddCluster("a", "s", 1, 1, GigabitEthernet)
	b, _ := n.AddCluster("b", "s", 1, 1, GigabitEthernet)
	echo := func(p []byte) ([]byte, error) { return p, nil }
	cross := n.Dial(a.Hosts()[0], b.Hosts()[0], echo)
	defer cross.Close()
	intra := n.Dial(b.Hosts()[0], b.Gateway(), echo)
	defer intra.Close()

	inj := n.InjectFaults(FaultPlan{
		CallTimeout: 500 * time.Microsecond,
		Events:      []FaultEvent{{At: 0, Kind: FaultPartition, Cluster: "b"}},
	})
	if !pollUntil(t, 2*time.Second, func() bool { return len(inj.Log()) == 1 }) {
		t.Fatal("partition not applied")
	}
	if _, err := cross.Call([]byte{1}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("cross-partition call: %v", err)
	}
	// Intra-cluster traffic inside the partitioned cluster still works.
	if _, err := intra.Call([]byte{2}); err != nil {
		t.Fatalf("intra-cluster call: %v", err)
	}

	n.ClearFaults()
	if _, err := cross.Call([]byte{3}); err != nil {
		t.Fatalf("call after heal: %v", err)
	}
}

func TestDropRuleScopedByCluster(t *testing.T) {
	fastScale(t, 1)
	n := newTestNet(t)
	a, _ := n.AddCluster("a", "s", 2, 1, GigabitEthernet)
	b, _ := n.AddCluster("b", "s", 2, 1, GigabitEthernet)
	echo := func(p []byte) ([]byte, error) { return p, nil }
	inA := n.Dial(a.Hosts()[0], a.Hosts()[1], echo)
	defer inA.Close()
	inB := n.Dial(b.Hosts()[0], b.Hosts()[1], echo)
	defer inB.Close()

	n.InjectFaults(FaultPlan{
		Seed:        11,
		CallTimeout: 300 * time.Microsecond,
		Rules:       []FaultRule{{Cluster: "b", DropProb: 1}},
	})
	defer n.ClearFaults()
	if _, err := inB.Call([]byte{1}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("call under p=1 drop rule: %v", err)
	}
	// The rule does not touch cluster a.
	for i := 0; i < 10; i++ {
		if _, err := inA.Call([]byte{2}); err != nil {
			t.Fatalf("unmatched call %d: %v", i, err)
		}
	}
}

func TestLatencySpikeDelaysCall(t *testing.T) {
	fastScale(t, 1)
	n := newTestNet(t)
	c, _ := n.AddCluster("c", "s", 2, 1, GigabitEthernet)
	echo := func(p []byte) ([]byte, error) { return p, nil }
	conn := n.Dial(c.Hosts()[0], c.Hosts()[1], echo)
	defer conn.Close()

	start := time.Now()
	if _, err := conn.Call([]byte{1}); err != nil {
		t.Fatal(err)
	}
	base := time.Since(start)

	n.InjectFaults(FaultPlan{
		Seed:  3,
		Rules: []FaultRule{{Cluster: "c", SpikeProb: 1, SpikeDelay: 20 * time.Millisecond}},
	})
	defer n.ClearFaults()
	start = time.Now()
	if _, err := conn.Call([]byte{2}); err != nil {
		t.Fatal(err)
	}
	spiked := time.Since(start)
	if spiked < base+10*time.Millisecond {
		t.Fatalf("spiked call took %v (base %v), expected ≥ +10ms", spiked, base)
	}
}

func TestCloseFailsInflightCall(t *testing.T) {
	fastScale(t, 1)
	n := newTestNet(t)
	c, _ := n.AddCluster("c", "s", 2, 1, GigabitEthernet)
	started := make(chan struct{})
	conn := n.Dial(c.Hosts()[0], c.Hosts()[1], func(p []byte) ([]byte, error) {
		close(started)
		time.Sleep(time.Second)
		return p, nil
	})
	errc := make(chan error, 1)
	go func() {
		_, err := conn.Call([]byte{1})
		errc <- err
	}()
	<-started
	conn.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("inflight call: %v", err)
		}
	case <-time.After(500 * time.Millisecond):
		t.Fatal("inflight call not failed by Close")
	}
}

func TestTCPResetConnsForcesRedial(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(p []byte) ([]byte, error) { return p, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Call([]byte{1}); err != nil {
		t.Fatalf("pre-reset call: %v", err)
	}
	srv.ResetConns()
	failed := pollUntil(t, 2*time.Second, func() bool {
		_, err := cl.Call([]byte{2})
		return err != nil
	})
	if !failed {
		t.Fatal("calls kept succeeding after reset")
	}
	cl.Close()
	// The server still accepts: a redial works.
	cl2, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.Call([]byte{3}); err != nil {
		t.Fatalf("post-redial call: %v", err)
	}
}

func TestFaultPlanSlowSequenceDeterministic(t *testing.T) {
	base := 62 * time.Microsecond
	a := FaultPlan{Seed: 42}.SlowSequence("tin-0", "tin-gw", 8, base, 2000)
	b := FaultPlan{Seed: 42}.SlowSequence("tin-0", "tin-gw", 8, base, 2000)
	lo := time.Duration(float64(base) * 7 * 0.5)
	hi := time.Duration(float64(base) * 7 * 1.5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverges at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < lo || a[i] >= hi {
			t.Fatalf("delay %d = %v outside [%v, %v)", i, a[i], lo, hi)
		}
	}
	// A different seed yields a different sequence.
	c := FaultPlan{Seed: 43}.SlowSequence("tin-0", "tin-gw", 8, base, 2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical slow sequences")
	}
	// Factor <= 1 injects nothing.
	for _, d := range (FaultPlan{Seed: 42}).SlowSequence("tin-0", "tin-gw", 1, base, 10) {
		if d != 0 {
			t.Fatalf("factor 1 injected %v", d)
		}
	}
}

func TestFaultSlowInflatesServiceTime(t *testing.T) {
	fastScale(t, 1)
	n := newTestNet(t)
	c, _ := n.AddCluster("c", "s", 2, 1, GigabitEthernet)
	client, server := c.Hosts()[0], c.Hosts()[1]
	echo := func(p []byte) ([]byte, error) { return p, nil }
	conn := n.Dial(client, server, echo)
	defer conn.Close()

	start := time.Now()
	if _, err := conn.Call([]byte{1}); err != nil {
		t.Fatal(err)
	}
	base := time.Since(start)

	n.InjectFaults(FaultPlan{
		Seed:   3,
		Events: []FaultEvent{{At: 0, Kind: FaultSlow, Host: server.Name(), Factor: 200}},
	})
	defer n.ClearFaults()
	if !pollUntil(t, 2*time.Second, func() bool { return n.SlowFactor(server) == 200 }) {
		t.Fatal("slow fault not applied")
	}
	start = time.Now()
	if _, err := conn.Call([]byte{2}); err != nil {
		t.Fatalf("call to slow host: %v", err)
	}
	slowed := time.Since(start)
	// 199x the 62us base service time jittered by [0.5, 1.5) is >= 6ms.
	if slowed < base+5*time.Millisecond {
		t.Fatalf("slowed call took %v (base %v), expected ≥ +5ms", slowed, base)
	}
}

func TestFaultFastClearsSlowdown(t *testing.T) {
	fastScale(t, 1)
	n := newTestNet(t)
	c, _ := n.AddCluster("c", "s", 2, 1, GigabitEthernet)
	client, server := c.Hosts()[0], c.Hosts()[1]
	echo := func(p []byte) ([]byte, error) { return p, nil }
	conn := n.Dial(client, server, echo)
	defer conn.Close()

	n.InjectFaults(FaultPlan{
		Seed: 5,
		Events: []FaultEvent{
			{At: 0, Kind: FaultSlow, Cluster: "c", Factor: 50},
			{At: time.Millisecond, Kind: FaultFast, Cluster: "c"},
		},
	})
	defer n.ClearFaults()
	if !pollUntil(t, 2*time.Second, func() bool { return n.SlowFactor(server) == 1 && n.SlowFactor(client) == 1 }) {
		t.Fatal("fast fault did not clear the cluster slowdown")
	}
	start := time.Now()
	if _, err := conn.Call([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 5*time.Millisecond {
		t.Fatalf("call after FaultFast took %v, slowdown not cleared", d)
	}
}
