// Real TCP transport. The modelled Conn is what the experiments use; this
// transport proves the same request/response protocol and payload formats
// work over an actual network stack (the paper runs PATHS over TCP/IP with
// the Nagle algorithm disabled).
package vnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxFrame bounds a frame payload to keep a corrupted length prefix from
// forcing a huge allocation.
const maxFrame = 16 << 20

// writeFrame writes a length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	if len(payload) > maxFrame {
		return fmt.Errorf("vnet: frame too large: %d bytes", len(payload))
	}
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads a length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("vnet: frame too large: %d bytes", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// TCPServer serves the request/response protocol over real TCP. Each
// accepted connection gets its own goroutine — the communication thread.
type TCPServer struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ListenTCP starts a server on addr (e.g. "127.0.0.1:0") whose
// communication threads invoke handler per request.
func ListenTCP(addr string, handler Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true) // the paper disables Nagle
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		payload, err := readFrame(r)
		if err != nil {
			return
		}
		resp, err := s.handler(payload)
		status := byte(0)
		if err != nil {
			status = 1
			resp = []byte(err.Error())
		}
		if err := writeFrame(w, append([]byte{status}, resp...)); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// ResetConns abruptly closes every currently-accepted connection while
// continuing to accept new ones — a fault-injection hook modelling a
// server-side connection reset. In-flight and subsequent calls on the
// client side fail with a transport error until the client redials.
func (s *TCPServer) ResetConns() {
	s.mu.Lock()
	victims := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		victims = append(victims, c)
	}
	s.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// Close stops accepting and closes all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// TCPCaller is the client side of the TCP transport. Calls are serialized
// on the single underlying connection, matching the one-CT-per-connection
// model.
type TCPCaller struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// DialTCP connects to a TCPServer.
func DialTCP(addr string) (*TCPCaller, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &TCPCaller{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Call sends a request and waits for the response.
func (c *TCPCaller) Call(payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.w, payload); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.r)
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 {
		return nil, fmt.Errorf("vnet: short response frame")
	}
	if resp[0] != 0 {
		return nil, fmt.Errorf("vnet: remote error: %s", resp[1:])
	}
	return resp[1:], nil
}

// Close closes the underlying connection.
func (c *TCPCaller) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

var _ Caller = (*TCPCaller)(nil)
