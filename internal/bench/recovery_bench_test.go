package bench

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"eventspace/internal/archive"
	"eventspace/internal/checkpoint"
	"eventspace/internal/collect"
	"eventspace/internal/paths"
	"eventspace/internal/reconfig"
)

// recoveryInfos is the bench topology: two 3-contributor nodes, the
// same shape the checkpoint and reconfig test suites replay.
func recoveryInfos() []archive.CollectorInfo {
	infos := []archive.CollectorInfo{
		{ID: 10, Name: "coll-a", Role: collect.RoleCollective, Tree: "T", Node: "a", Contributor: -1},
		{ID: 20, Name: "coll-b", Role: collect.RoleCollective, Tree: "T", Node: "b", Contributor: -1},
	}
	for i := 0; i < 3; i++ {
		infos = append(infos,
			archive.CollectorInfo{ID: uint32(1 + i), Role: collect.RoleContributor, Tree: "T", Node: "a", Contributor: i},
			archive.CollectorInfo{ID: uint32(4 + i), Role: collect.RoleContributor, Tree: "T", Node: "b", Contributor: i},
		)
	}
	return infos
}

// writeRecoveryArchive records rounds of the bench stream through a
// checkpointer (cadence every 512 data tuples) and abandons the archive
// the way a crash does: no final checkpoint, so recovery replays a real
// suffix, not an empty one.
func writeRecoveryArchive(tb testing.TB, dir string, format, rounds int) {
	tb.Helper()
	w, err := archive.Create(archive.Options{Dir: dir, Format: format, SegmentBytes: 1 << 14})
	if err != nil {
		tb.Fatal(err)
	}
	infos := recoveryInfos()
	if err := archive.WriteMeta(dir, infos); err != nil {
		tb.Fatal(err)
	}
	ck, err := checkpoint.New(w, w, nil, infos, checkpoint.Config{EveryTuples: 512, Keep: 3})
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([]collect.TraceTuple, 0, 8)
	buf := make([]byte, 8*collect.TupleSize)
	for seq := uint32(1); seq <= uint32(rounds); seq++ {
		base := int64(10_000 + 1000*int64(seq))
		batch = batch[:0]
		for _, node := range []struct {
			coll  uint32
			ecids []uint32
		}{{10, []uint32{1, 2, 3}}, {20, []uint32{4, 5, 6}}} {
			batch = append(batch, collect.TraceTuple{
				ECID: node.coll, Op: paths.OpWrite, Seq: seq, Start: base + 100, End: base + 200,
			})
			for i, id := range node.ecids {
				jit := rng.Int63n(90)
				batch = append(batch, collect.TraceTuple{
					ECID: id, Op: paths.OpWrite, Seq: seq, Start: base + jit + int64(i), End: base + 300 + jit,
				})
			}
		}
		for i := range batch {
			batch[i].EncodeTo(buf[i*collect.TupleSize:])
		}
		if err := ck.AppendRaw(buf[:len(batch)*collect.TupleSize]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
}

// recoveryReport is one (format, size) cell of BENCH_recovery.json.
type recoveryReport struct {
	Rounds            int     `json:"rounds"`
	ArchiveBytes      int64   `json:"archive_bytes"`
	FullNS            int64   `json:"full_replay_ns"`
	FullBytes         uint64  `json:"full_replay_bytes"`
	FastNS            int64   `json:"checkpointed_ns"`
	FastBytes         uint64  `json:"checkpointed_bytes"`
	TuplesSkipped     uint64  `json:"tuples_skipped"`
	BytesSavedFactor  float64 `json:"bytes_saved_factor"`
	SpeedupWallClock  float64 `json:"speedup_wall_clock"`
	CheckpointSeq     uint32  `json:"checkpoint_seq"`
	CheckpointEntries int     `json:"chain_entries"`
}

// TestRecordRecoveryBench measures front-end recovery cost as the
// archive grows, full replay versus the checkpointed fast path, and
// records the table as JSON when RECOVERY_BENCH_OUT names a file (the
// Makefile bench-recovery target). The acceptance floor rides along
// unconditionally: at the largest archive size the checkpointed path
// must replay at least 5x fewer bytes than full replay, on both segment
// formats — the bound that makes recovery time a function of the
// checkpoint cadence, not of archive size.
func TestRecordRecoveryBench(t *testing.T) {
	sizes := []int{200, 800, 3200}
	reports := map[string][]*recoveryReport{}

	for _, bf := range benchFormats {
		for _, rounds := range sizes {
			dir := t.TempDir()
			writeRecoveryArchive(t, dir, bf.format, rounds)

			fStart := time.Now()
			full, err := reconfig.RebuildFrontEnd(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			fullDur := time.Since(fStart)

			cStart := time.Now()
			fast, err := reconfig.RecoverFrontEnd(dir, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			fastDur := time.Since(cStart)

			if !fast.Checkpointed {
				t.Fatalf("%s/%d: recovery did not take the checkpoint fast path: %+v", bf.name, rounds, fast)
			}
			if fast.RoundsRecovered != full.RoundsRecovered {
				t.Fatalf("%s/%d: fast path recovered %d rounds, full %d", bf.name, rounds, fast.RoundsRecovered, full.RoundsRecovered)
			}
			if fast.BytesReplayed == 0 || full.BytesReplayed == 0 {
				t.Fatalf("%s/%d: degenerate replay accounting (fast %d, full %d)", bf.name, rounds, fast.BytesReplayed, full.BytesReplayed)
			}
			factor := float64(full.BytesReplayed) / float64(fast.BytesReplayed)

			var archiveBytes int64
			r, err := archive.OpenReader(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range r.Segments() {
				archiveBytes += s.Bytes
			}
			r.Close()

			reports[bf.name] = append(reports[bf.name], &recoveryReport{
				Rounds:            rounds,
				ArchiveBytes:      archiveBytes,
				FullNS:            fullDur.Nanoseconds(),
				FullBytes:         full.BytesReplayed,
				FastNS:            fastDur.Nanoseconds(),
				FastBytes:         fast.BytesReplayed,
				TuplesSkipped:     fast.TuplesSkipped,
				BytesSavedFactor:  factor,
				SpeedupWallClock:  float64(fullDur.Nanoseconds()) / float64(fastDur.Nanoseconds()),
				CheckpointSeq:     fast.CheckpointSeq,
				CheckpointEntries: fast.ChainEntries,
			})

			if rounds == sizes[len(sizes)-1] && factor < 5 {
				t.Errorf("%s/%d rounds: checkpointed recovery replayed %d bytes vs full %d — %.1fx, want >= 5x",
					bf.name, rounds, fast.BytesReplayed, full.BytesReplayed, factor)
			}
		}
	}

	out := os.Getenv("RECOVERY_BENCH_OUT")
	if out == "" {
		return
	}
	report := map[string]any{
		"checkpoint_every_tuples": 512,
		"chain_keep":              3,
		"formats":                 reports,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	last := reports["columnar"][len(reports["columnar"])-1]
	t.Logf("recovery bench recorded to %s (largest archive: %.1fx fewer bytes replayed)", out, last.BytesSavedFactor)
}
