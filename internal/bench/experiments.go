package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"eventspace/internal/cluster"
	"eventspace/internal/cosched"
	"eventspace/internal/monitor"
)

// Options scales the experiment suite. Full reproduces the paper's host
// counts; Quick shrinks hosts and iterations so the whole suite runs in a
// few minutes.
type Options struct {
	Quick   bool
	Repeats int     // run repetitions per measurement (paper: >= 3)
	Scale   float64 // virtual-time scale for LAN experiments
	WANSeed int64
}

// DefaultOptions returns the full-size configuration.
func DefaultOptions() Options {
	return Options{Repeats: 3, Scale: 1.0, WANSeed: 2005}
}

// QuickOptions returns the scaled-down configuration used by `go test
// -bench` and CI.
func QuickOptions() Options {
	return Options{Quick: true, Repeats: 2, Scale: 1.0, WANSeed: 2005}
}

func (o Options) repeats() int {
	if o.Repeats < 1 {
		return 1
	}
	return o.Repeats
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1
	}
	return o.Scale
}

// Topology sizes. Paper: 32 and 49 Tin hosts; the LAN multi-cluster has
// 43 Tin + 39 Iron; the largest LAN topology 49 Tin + 18 Copper + 10 Lead;
// the WAN multi-cluster splits Tin and Iron into three sub-clusters each.
func (o Options) tin32() int {
	if o.Quick {
		return 16
	}
	return 32
}

func (o Options) tin49() int {
	if o.Quick {
		return 20
	}
	return 49
}

func (o Options) lanTin() int {
	if o.Quick {
		return 20
	}
	return 43
}

func (o Options) lanIron() int {
	if o.Quick {
		return 20
	}
	return 39
}

func (o Options) wanSub() (tin, iron int) {
	if o.Quick {
		return 2, 2
	}
	return 14, 13
}

func (o Options) lanIterations() int {
	if o.Quick {
		return 400
	}
	return 1500
}

func (o Options) wanIterations() int {
	// Quick runs need enough iterations that sequential gathering falls
	// measurably behind the bounded trace buffers (traceCap clamps to 32
	// here): at 40 the cursor lag peaks just under the cap and the
	// sequential-vs-parallel rate crossover becomes a scheduling race.
	if o.Quick {
		return 100
	}
	return 120
}

// traceCap sizes trace buffers relative to the iteration count, keeping
// the paper's ratio of buffer lifetime to run length (3750 tuples against
// 20k iterations, ~0.19) so the gather-rate dynamics reproduce at our
// shorter run lengths.
func traceCap(iterations int) int {
	c := iterations / 5
	if c < 32 {
		c = 32
	}
	return c
}

// Row is one table row of an experiment: a configuration, its measured
// overhead and rates, and the paper's reported figures for EXPERIMENTS.md.
type Row struct {
	Table    string
	Config   string
	Workload string

	Overhead  float64 // fraction; NaN if not measured
	Discarded bool    // sequential gathering could not keep up

	GatherRate        float64 // LB monitors
	WrapperGatherRate float64 // statsm
	ThreadGatherRate  float64 // statsm
	TraceReadRate     float64

	PerOp    time.Duration
	Duration time.Duration

	Paper string // the paper's reported result for this row
}

// FormatOverhead renders an overhead the way the paper's tables do:
// "none" below the noise floor, otherwise a percentage.
func FormatOverhead(f float64) string {
	if math.IsNaN(f) {
		return "-"
	}
	pct := f * 100
	if pct < 0.5 {
		return "none"
	}
	return fmt.Sprintf("%.1f%%", pct)
}

// FormatRate renders a gather rate as a percentage.
func FormatRate(f float64) string {
	if f == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", f*100)
}

// String renders a row for logs.
func (r Row) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s overhead=%-6s", r.Config, FormatOverhead(r.Overhead))
	if r.Discarded {
		b.WriteString(" tuples-discarded")
	}
	if r.GatherRate > 0 {
		fmt.Fprintf(&b, " gather=%s", FormatRate(r.GatherRate))
	}
	if r.WrapperGatherRate > 0 {
		fmt.Fprintf(&b, " wrapper=%s thread=%s", FormatRate(r.WrapperGatherRate), FormatRate(r.ThreadGatherRate))
	}
	if r.Paper != "" {
		fmt.Fprintf(&b, "   [paper: %s]", r.Paper)
	}
	return b.String()
}

// topologies returns the named testbeds of the evaluation.
func (o Options) topo(name string) (cluster.TestbedSpec, int, string) {
	switch name {
	case "tin32":
		return cluster.SingleTin(o.tin32()), o.lanIterations(), fmt.Sprintf("%d Tins", o.tin32())
	case "tin49":
		return cluster.SingleTin(o.tin49()), o.lanIterations(), fmt.Sprintf("%d Tins", o.tin49())
	case "lan":
		return cluster.LANMulti(o.lanTin(), o.lanIron()), o.lanIterations(), "LAN multi-cluster"
	case "wan":
		tin, iron := o.wanSub()
		return cluster.WANMulti(tin, iron, o.WANSeed, 0), o.wanIterations(), "WAN multi-cluster"
	case "wan-overloaded":
		tin, iron := o.wanSub()
		// The Longcut inaccuracy threshold reproduces the paper's
		// "WAN emulator becomes inaccurate with many emulated
		// connections" row of Table 1.
		return cluster.WANMulti(tin, iron, o.WANSeed, 8), o.wanIterations(), "WAN multi-cluster"
	default:
		panic("bench: unknown topology " + name)
	}
}

// lbSpec builds the RunSpec for a load-balance experiment row.
func (o Options) lbSpec(topology string, kind MonitorKind, parallel bool, wl Workload) RunSpec {
	tb, iters, _ := o.topo(topology)
	cfg := monitor.DefaultConfig()
	cfg.AnalysisCostPerTuple = 1 * time.Microsecond
	cfg.AnalysisInterval = 500 * time.Microsecond
	cfg.PullInterval = 400 * time.Microsecond
	cfg.IntermediateCap = traceCap(iters)
	if parallel {
		cfg.GatewayHelpers, cfg.RootHelpers = 4, 4
	} else {
		cfg.GatewayHelpers, cfg.RootHelpers = 0, 0
	}
	trees := 2
	if wl == ComputeGsum {
		// compute-gsum alternates computation with a single allreduce
		// tree; only gsum uses two identical trees.
		trees = 1
	}
	spec := RunSpec{
		Testbed:     tb,
		Fanout:      8,
		Trees:       trees,
		Workload:    wl,
		Iterations:  iters,
		Monitor:     kind,
		MonitorCfg:  cfg,
		TimeScale:   o.scale(),
		TraceBufCap: traceCap(iters),
	}
	return spec
}

func seqPar(parallel bool) string {
	if parallel {
		return "parallel"
	}
	return "sequential"
}

// discardedThreshold: below this gather rate a sequential configuration
// "discards tuples" in the paper's terms.
const discardedThreshold = 0.90

// Section61Collection reproduces the data-collection results of section
// 6.1: the overhead of event collectors alone on gsum, and the per-call
// trace storage of the busiest host.
func Section61Collection(o Options) ([]Row, error) {
	var rows []Row
	for _, wl := range []Workload{Gsum, ComputeGsum} {
		spec := o.lbSpec("tin32", CollectorsOnly, false, wl)
		if wl == ComputeGsum {
			d, err := TuneCompute(spec, 60)
			if err != nil {
				return nil, err
			}
			spec.ComputeDuration = d
		}
		ov, res, err := Overhead(spec, o.repeats())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Table:    "sec6.1",
			Config:   "event collectors (" + wl.String() + ")",
			Workload: wl.String(),
			Overhead: ov,
			PerOp:    res.PerOp,
			Duration: res.Duration,
			Paper:    "0-2%",
		})
	}
	return rows, nil
}

// Section5Topology reproduces the per-topology allreduce latencies quoted
// in section 5 (about 0.5 ms for 32 Tins, 0.6 ms for 49 Tins, ~1 ms for a
// LAN multi-cluster and ~65 ms for a WAN multi-cluster).
func Section5Topology(o Options) ([]Row, error) {
	paper := map[string]string{
		"tin32": "~0.5 ms", "tin49": "~0.6 ms", "lan": "~1 ms", "wan": "~65 ms",
	}
	var rows []Row
	for _, name := range []string{"tin32", "tin49", "lan", "wan"} {
		tb, iters, label := o.topo(name)
		spec := RunSpec{
			Testbed:    tb,
			Fanout:     8,
			Trees:      1,
			Workload:   Gsum,
			Iterations: iters,
			Monitor:    NoMonitor,
			TimeScale:  o.scale(),
		}
		res, err := Run(spec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Table:    "sec5",
			Config:   label,
			Workload: "gsum",
			Overhead: math.NaN(),
			PerOp:    res.PerOp,
			Duration: res.Duration,
			Paper:    paper[name],
		})
	}
	return rows, nil
}

// Table1 reproduces the load-balance monitor with a single event scope
// (compute-gsum; sequential gathering discards tuples on the LAN
// topologies, parallel gathering keeps up with at most 0.4% overhead, and
// the WAN row shows ~1% caused by emulator inaccuracy).
func Table1(o Options) ([]Row, error) {
	type cfg struct {
		topo     string
		parallel bool
		paper    string
	}
	configs := []cfg{
		{"tin32", false, "tuples discarded"},
		{"tin32", true, "0.4%"},
		{"lan", false, "tuples discarded"},
		{"lan", true, "none"},
		{"wan-overloaded", false, "1%"},
	}
	var rows []Row
	for _, c := range configs {
		spec := o.lbSpec(c.topo, LBSingleScope, c.parallel, ComputeGsum)
		d, err := TuneCompute(spec, 60)
		if err != nil {
			return nil, err
		}
		spec.ComputeDuration = d
		ov, res, err := Overhead(spec, o.repeats())
		if err != nil {
			return nil, err
		}
		_, _, label := o.topo(c.topo)
		rows = append(rows, Row{
			Table:         "table1",
			Config:        label + ", " + seqPar(c.parallel),
			Workload:      "compute-gsum",
			Overhead:      ov,
			Discarded:     res.GatherRate < discardedThreshold,
			GatherRate:    res.GatherRate,
			TraceReadRate: res.TraceReadRate,
			PerOp:         res.PerOp,
			Duration:      res.Duration,
			Paper:         c.paper,
		})
	}
	return rows, nil
}

// Table2 reproduces the load-balance monitor with distributed analysis:
// overheads of 0-3% and gather rates from 45% (sequential) to ~100%
// (parallel).
func Table2(o Options) ([]Row, error) {
	type cfg struct {
		topo     string
		parallel bool
		wl       Workload
		paper    string
	}
	configs := []cfg{
		{"tin49", false, Gsum, "2% / 51%"},
		{"tin49", true, Gsum, "2% / 99%"},
		{"tin49", false, ComputeGsum, "1% / 65%"},
		{"tin49", true, ComputeGsum, "1% / 99%"},
		{"lan", false, ComputeGsum, "none / 45%"},
		{"lan", true, ComputeGsum, "3% / 100%"},
		{"wan", false, ComputeGsum, "1% / 94%"},
		{"wan", true, ComputeGsum, "3% / 100%"},
	}
	var rows []Row
	for _, c := range configs {
		spec := o.lbSpec(c.topo, LBDistributed, c.parallel, c.wl)
		if c.wl == ComputeGsum {
			d, err := TuneCompute(spec, 60)
			if err != nil {
				return nil, err
			}
			spec.ComputeDuration = d
		}
		ov, res, err := Overhead(spec, o.repeats())
		if err != nil {
			return nil, err
		}
		_, _, label := o.topo(c.topo)
		name := label + ", " + seqPar(c.parallel)
		if c.wl == Gsum {
			name += " (gsum)"
		}
		rows = append(rows, Row{
			Table:         "table2",
			Config:        name,
			Workload:      c.wl.String(),
			Overhead:      ov,
			GatherRate:    res.GatherRate,
			TraceReadRate: res.TraceReadRate,
			PerOp:         res.PerOp,
			Duration:      res.Duration,
			Paper:         c.paper,
		})
	}
	return rows, nil
}

// statsmSpec builds the RunSpec for a statsm row.
func (o Options) statsmSpec(topology string, kind MonitorKind, parallel bool, strategy cosched.Strategy) RunSpec {
	tb, iters, _ := o.topo(topology)
	cfg := monitor.DefaultConfig()
	cfg.Strategy = strategy
	cfg.IntermediateCap = traceCap(iters)
	cfg.ReadBatch = 5
	cfg.PullInterval = 400 * time.Microsecond
	if parallel {
		cfg.GatewayHelpers, cfg.RootHelpers = 4, 4
	} else {
		cfg.GatewayHelpers, cfg.RootHelpers = 0, 0
	}
	return RunSpec{
		Testbed:     tb,
		Fanout:      8,
		Trees:       2,
		Workload:    Gsum,
		Iterations:  iters,
		Monitor:     kind,
		MonitorCfg:  cfg,
		TimeScale:   o.scale(),
		TraceBufCap: traceCap(iters),
	}
}

// Table3 reproduces the statistics monitor: analysis threads alone cost
// 5-9%, coscheduling strategy 1 cuts that to 3%, strategy 2 to 1%; with
// gathering the overhead stays ~2% and parallel gathering lifts the
// wrapper/thread gather rates to ~99-100%.
func Table3(o Options) ([]Row, error) {
	var rows []Row

	// Analysis-threads-only rows with the three scheduling regimes.
	sched := []struct {
		strategy cosched.Strategy
		config   string
		paper    string
	}{
		{cosched.None, "analysis threads", "5-9%"},
		{cosched.AfterSend, "with coscheduling 1", "3%"},
		{cosched.AfterUnblock, "with coscheduling 2", "1%"},
	}
	for _, s := range sched {
		spec := o.statsmSpec("tin32", StatsmNoGather, false, s.strategy)
		ov, res, err := Overhead(spec, o.repeats())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Table:         "table3",
			Config:        s.config,
			Workload:      "gsum",
			Overhead:      ov,
			TraceReadRate: res.TraceReadRate,
			PerOp:         res.PerOp,
			Duration:      res.Duration,
			Paper:         s.paper,
		})
	}

	// Full monitor (analysis + two gather threads), strategy 2.
	full := []struct {
		topo     string
		parallel bool
		paper    string
	}{
		{"tin32", false, "2% / 50% / 69%"},
		{"tin32", true, "2% / 77% / 99%"},
		{"lan", false, "(masked) / 43% / 68%"},
		{"lan", true, "+1% / 100% / 100%"},
		{"wan", false, "none / 100% / 100%"},
	}
	for _, c := range full {
		spec := o.statsmSpec(c.topo, Statsm, c.parallel, cosched.AfterUnblock)
		ov, res, err := Overhead(spec, o.repeats())
		if err != nil {
			return nil, err
		}
		_, _, label := o.topo(c.topo)
		rows = append(rows, Row{
			Table:             "table3",
			Config:            label + ", " + seqPar(c.parallel),
			Workload:          "gsum",
			Overhead:          ov,
			WrapperGatherRate: res.WrapperGatherRate,
			ThreadGatherRate:  res.ThreadGatherRate,
			TraceReadRate:     res.TraceReadRate,
			PerOp:             res.PerOp,
			Duration:          res.Duration,
			Paper:             c.paper,
		})
	}
	return rows, nil
}

// ScalabilityTrees reproduces the sections 6.2/6.3 scalability result:
// monitoring one, two or four spanning trees neither increases overhead
// nor reduces monitoring performance, because neither the allreduce call
// frequency nor the analysis communication frequency changes.
func ScalabilityTrees(o Options, kind MonitorKind) ([]Row, error) {
	var rows []Row
	for _, trees := range []int{1, 2, 4} {
		var spec RunSpec
		if kind == Statsm {
			spec = o.statsmSpec("tin32", kind, true, cosched.AfterUnblock)
		} else {
			spec = o.lbSpec("tin32", kind, true, Gsum)
		}
		spec.Trees = trees
		spec.MonitorTrees = trees // monitor every tree
		// Fewer calls per tree: shrink buffers to match, as the paper
		// does ("we reduced the size of all trace and intermediate
		// PastSet buffers to reflect the fewer allreduce calls per
		// spanning tree").
		spec.TraceBufCap = traceCap(spec.Iterations)
		ov, res, err := Overhead(spec, o.repeats())
		if err != nil {
			return nil, err
		}
		paper := "no increase"
		if kind == Statsm && trees > 1 {
			// Section 6.3.1: "Monitoring both 32 Tin host allreduce
			// spanning trees in gsum increased the analysis thread
			// overhead to 5%. We were not able to ... reduce it."
			paper = "5% (both trees)"
		}
		rows = append(rows, Row{
			Table:             "scalability",
			Config:            fmt.Sprintf("%s, %d tree(s)", kind, trees),
			Workload:          "gsum",
			Overhead:          ov,
			GatherRate:        res.GatherRate,
			WrapperGatherRate: res.WrapperGatherRate,
			ThreadGatherRate:  res.ThreadGatherRate,
			PerOp:             res.PerOp,
			Duration:          res.Duration,
			Paper:             paper,
		})
	}
	return rows, nil
}
