package bench

import (
	"testing"

	"eventspace/internal/cluster"
	"eventspace/internal/wantrace"
)

// These tests pin the qualitative shapes of the paper's evaluation — the
// orderings and crossovers that must survive any recalibration of the
// model's constants. They run the quick presets under the virtual clock.

func TestSection5LatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test")
	}
	rows, err := Section5Topology(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	tin32 := rows[0].PerOp
	tin49 := rows[1].PerOp
	lan := rows[2].PerOp
	wan := rows[3].PerOp
	if !(tin32 <= tin49 && tin49 < lan && lan < wan) {
		t.Fatalf("latency ordering violated: %v %v %v %v", tin32, tin49, lan, wan)
	}
	// WAN is two orders of magnitude above LAN (paper: 65x).
	if ratio := float64(wan) / float64(lan); ratio < 15 {
		t.Fatalf("WAN/LAN ratio = %.1f, want >> 1", ratio)
	}
	_ = byName
}

func TestTable1SequentialDiscardsParallelKeepsUp(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test")
	}
	o := QuickOptions()
	o.Repeats = 1
	rows, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: tin seq, tin par, lan seq, lan par, wan seq.
	if !rows[0].Discarded {
		t.Errorf("Tin sequential did not discard tuples (rate %.2f)", rows[0].GatherRate)
	}
	if rows[1].Discarded {
		t.Errorf("Tin parallel discarded tuples (rate %.2f)", rows[1].GatherRate)
	}
	if !rows[2].Discarded {
		t.Errorf("LAN sequential did not discard tuples (rate %.2f)", rows[2].GatherRate)
	}
	if rows[3].Discarded {
		t.Errorf("LAN parallel discarded tuples (rate %.2f)", rows[3].GatherRate)
	}
	// Parallel overhead stays small single-digit.
	for _, i := range []int{1, 3} {
		if rows[i].Overhead > 0.05 {
			t.Errorf("%s overhead %.1f%% too high", rows[i].Config, rows[i].Overhead*100)
		}
	}
}

func TestTable2GatherRateCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test")
	}
	o := QuickOptions()
	o.Repeats = 1
	rows, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential/parallel pairs: (0,1), (2,3), (4,5), (6,7).
	for i := 0; i < len(rows); i += 2 {
		seq, par := rows[i], rows[i+1]
		if seq.GatherRate >= par.GatherRate {
			t.Errorf("%s rate %.2f >= %s rate %.2f", seq.Config, seq.GatherRate, par.Config, par.GatherRate)
		}
		if par.GatherRate < 0.9 {
			t.Errorf("%s parallel rate %.2f < 90%%", par.Config, par.GatherRate)
		}
		if seq.Overhead > 0.06 || par.Overhead > 0.06 {
			t.Errorf("pair %s overheads %.1f%%/%.1f%% exceed the paper's band",
				seq.Config, seq.Overhead*100, par.Overhead*100)
		}
	}
}

func TestTable3CoschedulingLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test")
	}
	o := QuickOptions()
	o.Repeats = 1
	rows, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	free, cs1, cs2 := rows[0].Overhead, rows[1].Overhead, rows[2].Overhead
	// The paper's ladder: 5-9% free-running, 3% strategy 1, 1% strategy 2.
	if free < 0.02 {
		t.Errorf("free-running analysis overhead %.1f%% too low to matter", free*100)
	}
	if cs1 >= free {
		t.Errorf("coscheduling 1 (%.1f%%) did not improve on free-running (%.1f%%)", cs1*100, free*100)
	}
	if cs2 >= cs1 {
		t.Errorf("coscheduling 2 (%.1f%%) did not improve on strategy 1 (%.1f%%)", cs2*100, cs1*100)
	}
	if cs2 > 0.02 {
		t.Errorf("coscheduling 2 overhead %.1f%%, paper says ~1%%", cs2*100)
	}
}

func TestScalabilityLoadBalanceFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape test")
	}
	o := QuickOptions()
	o.Repeats = 1
	rows, err := ScalabilityTrees(o, LBDistributed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Overhead > 0.04 {
			t.Errorf("%s overhead %.1f%%: monitoring more trees must stay cheap", r.Config, r.Overhead*100)
		}
	}
}

func TestWANTopologyUsesEmulator(t *testing.T) {
	tb, err := cluster.NewTestbed(cluster.WANMulti(2, 2, 7, 0))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Emulator == nil {
		t.Fatal("WAN testbed without Longcut emulator")
	}
	if wantrace.MaxRTT().Milliseconds() != 36 {
		t.Fatal("trace anchor moved")
	}
}
