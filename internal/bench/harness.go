// Package bench reproduces the paper's experiments (sections 5 and 6):
// the gsum and compute-gsum micro-benchmarks, the monitoring-overhead
// measurements behind Tables 1-3, the collection-cost microbenchmark of
// section 6.1, the per-topology allreduce latencies of section 5, and the
// scalability series of sections 6.2-6.3.
//
// A Run builds a testbed and one or more spanning trees, optionally
// attaches a monitor, drives every application thread for a fixed number
// of iterations, and reports the wall time together with the monitor's
// gather rates. Overhead compares a monitored run against an unmonitored
// base run of the same specification, repeated and averaged exactly as the
// paper averages at least three repetitions.
package bench

import (
	"fmt"
	"sync"
	"time"

	"eventspace/internal/cluster"
	"eventspace/internal/cosched"
	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/monitor"
	"eventspace/internal/paths"
	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// Workload selects the micro-benchmark.
type Workload int

// The paper's two micro-benchmarks.
const (
	// Gsum: threads alternate between identical allreduce trees
	// computing a global sum of 8-byte values.
	Gsum Workload = iota
	// ComputeGsum alternates between computing (integer sort in the
	// paper, modelled CPU occupancy here) and calling allreduce, tuned
	// to spend 50% of its time in each.
	ComputeGsum
)

// String names the workload.
func (w Workload) String() string {
	if w == ComputeGsum {
		return "compute-gsum"
	}
	return "gsum"
}

// MonitorKind selects what observes the run.
type MonitorKind int

// Monitor kinds, in increasing intrusiveness.
const (
	// NoMonitor runs an uninstrumented tree: the overhead baseline.
	NoMonitor MonitorKind = iota
	// CollectorsOnly instruments the tree but attaches no monitor:
	// the section 6.1 data-collection overhead.
	CollectorsOnly
	// LBSingleScope attaches the single-event-scope load-balance
	// monitor (Table 1).
	LBSingleScope
	// LBDistributed attaches the distributed-analysis load-balance
	// monitor (Table 2).
	LBDistributed
	// Statsm attaches the statistics monitor (Table 3).
	Statsm
	// StatsmNoGather runs statsm's analysis threads without the gather
	// threads (the "Analysis threads" rows of Table 3).
	StatsmNoGather
)

// String names the monitor kind.
func (m MonitorKind) String() string {
	switch m {
	case NoMonitor:
		return "none"
	case CollectorsOnly:
		return "collectors"
	case LBSingleScope:
		return "lb-single"
	case LBDistributed:
		return "lb-distributed"
	case Statsm:
		return "statsm"
	case StatsmNoGather:
		return "statsm-nogather"
	default:
		return fmt.Sprintf("monitor(%d)", int(m))
	}
}

// RunSpec describes one measured run.
type RunSpec struct {
	Testbed    cluster.TestbedSpec
	Fanout     int // host-level tree fanout (8 in the paper; <=0 flat)
	Trees      int // identical spanning trees the app alternates over (gsum uses 2)
	Workload   Workload
	Iterations int
	// ComputeDuration is compute-gsum's per-iteration modelled CPU work;
	// 0 lets TuneCompute pick it for a 50/50 split.
	ComputeDuration time.Duration
	Monitor         MonitorKind
	MonitorCfg      monitor.Config
	// MonitorTrees is how many of the trees the monitor observes
	// (default 1: the paper instruments both gsum trees but monitors
	// one; the scalability experiments monitor all).
	MonitorTrees int
	// TimeScale is the virtual-time factor the run executes under.
	// 1.0 models the paper's delays faithfully; smaller values shrink
	// every modelled delay and CPU occupancy proportionally.
	TimeScale float64
	// TraceBufCap overrides the trace buffer size (default 3750).
	TraceBufCap int
	// SelfMetrics wires the run's collectors and monitors into a fresh
	// self-metrics registry and returns its snapshot in RunResult.Self —
	// the cost of monitoring the monitor.
	SelfMetrics bool
}

// RunResult is one run's measurements.
type RunResult struct {
	Duration time.Duration // wall time of the iteration loop
	PerOp    time.Duration // Duration / (Iterations * allreduces per iteration)
	Rounds   uint64

	// Monitor-side measurements (zero unless a monitor ran).
	GatherRate        float64 // LB monitors: tuple/intermediate gather rate
	WrapperGatherRate float64 // statsm
	ThreadGatherRate  float64 // statsm
	TraceReadRate     float64
	Messages          uint64 // network messages during the run

	// Self is the self-metrics snapshot (nil unless RunSpec.SelfMetrics).
	Self *metrics.Snapshot
}

// Run executes one specification under the discrete-event virtual clock
// and returns its measurements. Virtual execution means the measured
// durations depend only on the model — never on how loaded or small the
// machine running the experiment is (section "Virtual time" in
// DESIGN.md).
func Run(spec RunSpec) (RunResult, error) {
	if spec.Iterations <= 0 {
		return RunResult{}, fmt.Errorf("bench: iterations %d", spec.Iterations)
	}
	trees := spec.Trees
	if trees <= 0 {
		trees = 1
	}
	oldScale := hrtime.Scale()
	if spec.TimeScale > 0 {
		hrtime.SetScale(spec.TimeScale)
	}
	defer hrtime.SetScale(oldScale)

	vclock.Enable(0)
	defer func() {
		vclock.Quiesce(10 * time.Second)
		vclock.Disable()
	}()

	tb, err := cluster.NewTestbed(spec.Testbed)
	if err != nil {
		return RunResult{}, err
	}

	var cs *cosched.Set
	if spec.Monitor == Statsm || spec.Monitor == StatsmNoGather {
		cs = cosched.NewSet(spec.MonitorCfg.Strategy)
	}

	var selfReg *metrics.Registry
	if spec.SelfMetrics {
		selfReg = metrics.New()
		if spec.MonitorCfg.Metrics == nil {
			spec.MonitorCfg.Metrics = selfReg
		}
	}

	instrument := spec.Monitor != NoMonitor
	built := make([]*cluster.Tree, trees)
	for i := range built {
		ts := cluster.TreeSpec{
			Name:           fmt.Sprintf("T%d", i+1),
			Fanout:         spec.Fanout,
			ThreadsPerHost: 1,
			Instrument:     instrument,
			TraceBufCap:    spec.TraceBufCap,
			WANAllToAll:    spec.Testbed.WAN,
			Metrics:        selfReg,
		}
		if cs != nil {
			ts.Notifier = func(h *vnet.Host) paths.CollectiveNotifier { return cs.For(h) }
		}
		built[i], err = cluster.BuildTree(tb, ts)
		if err != nil {
			return RunResult{}, err
		}
		defer built[i].Close()
	}

	monitored := built
	if spec.MonitorTrees > 0 && spec.MonitorTrees < len(built) {
		monitored = built[:spec.MonitorTrees]
	} else if spec.MonitorTrees == 0 && len(built) > 1 {
		monitored = built[:1]
	}

	// Per the paper's methodology, event scopes are set up and analysis
	// threads started before the monitored application.
	var stopMonitor func()
	var collectRates func(*RunResult)
	switch spec.Monitor {
	case NoMonitor, CollectorsOnly:
		stopMonitor = func() {}
		collectRates = func(*RunResult) {}
	case LBSingleScope, LBDistributed:
		mode := monitor.SingleScope
		if spec.Monitor == LBDistributed {
			mode = monitor.Distributed
		}
		lbs := make([]*monitor.LoadBalance, len(monitored))
		for i, tr := range monitored {
			lbs[i], err = monitor.NewLoadBalance(tb, tr, mode, spec.MonitorCfg, nil)
			if err != nil {
				return RunResult{}, err
			}
			lbs[i].Start()
		}
		stopMonitor = func() {
			for _, lb := range lbs {
				lb.Stop()
			}
		}
		collectRates = func(r *RunResult) {
			var rate, trr float64
			for _, lb := range lbs {
				rate += lb.GatherRate()
				trr += lb.TraceReadRate()
			}
			r.GatherRate = rate / float64(len(lbs))
			r.TraceReadRate = trr / float64(len(lbs))
		}
	case Statsm, StatsmNoGather:
		sms := make([]*monitor.Statsm, len(monitored))
		for i, tr := range monitored {
			sms[i], err = monitor.NewStatsm(tb, tr, spec.MonitorCfg, cs)
			if err != nil {
				return RunResult{}, err
			}
			if spec.Monitor == Statsm {
				sms[i].Start()
			} else {
				sms[i].StartAnalysisOnly()
			}
		}
		stopMonitor = func() {
			for _, sm := range sms {
				sm.Stop()
			}
		}
		collectRates = func(r *RunResult) {
			var w, th, trr float64
			for _, sm := range sms {
				w += sm.WrapperGatherRate()
				th += sm.ThreadGatherRate()
				trr += sm.TraceReadRate()
			}
			r.WrapperGatherRate = w / float64(len(sms))
			r.ThreadGatherRate = th / float64(len(sms))
			r.TraceReadRate = trr / float64(len(sms))
		}
	default:
		return RunResult{}, fmt.Errorf("bench: unknown monitor kind %d", spec.Monitor)
	}

	// Warm up connections and steady state (not measured).
	driveThreads(built, tb, spec, 10)

	msgsBefore := tb.Net.Messages()
	duration := driveThreads(built, tb, spec, spec.Iterations)

	res := RunResult{
		Duration: duration,
		PerOp:    duration / time.Duration(spec.Iterations*allreducesPerIteration(spec)),
		Rounds:   uint64(spec.Iterations),
		Messages: tb.Net.Messages() - msgsBefore,
	}
	// Give gather threads a short drain window before sampling rates,
	// mirroring the paper's monitors which keep running after the app.
	if spec.Monitor != NoMonitor && spec.Monitor != CollectorsOnly {
		modelSleep(20 * time.Millisecond)
	}
	collectRates(&res)
	if selfReg != nil {
		snap := selfReg.Snapshot()
		res.Self = &snap
	}
	stopMonitor()
	return res, nil
}

// modelSleep waits d of model time from the unregistered driver
// goroutine without perturbing the clock's runnable accounting.
func modelSleep(d time.Duration) {
	hrtime.SleepOutside(d)
}

// allreducesPerIteration returns how many collective calls one iteration
// performs. Both workloads call exactly one allreduce per iteration,
// alternating over the configured trees.
func allreducesPerIteration(spec RunSpec) int {
	return 1
}

// driveThreads runs every tree's thread ports for the given number of
// iterations of the workload and returns the modelled duration of the
// run. Start and end times are captured from inside the model: the
// threads line up at a start gate and a registered starter stamps the
// virtual clock when it opens the gate, so idle clock jumps between
// phases (the monitor's pacing timers firing while the application is
// being set up) never leak into the measurement.
func driveThreads(trees []*cluster.Tree, tb *cluster.Testbed, spec RunSpec, iterations int) time.Duration {
	ports := trees[0].Ports
	var wg sync.WaitGroup
	gate := vclock.NewEvent()
	var mu sync.Mutex
	var startNS, endNS int64
	for pi := range ports {
		pi := pi
		wg.Add(1)
		vclock.Go(func() {
			defer wg.Done()
			gate.Wait()
			ctx := &paths.Ctx{Thread: ports[pi].Name}
			host := ports[pi].Host
			for it := 0; it < iterations; it++ {
				// Both workloads alternate between the identical
				// trees, one allreduce per iteration ("threads
				// alternate between using two identical allreduce
				// trees"), so the collective call frequency does not
				// depend on the tree count — the property behind the
				// sections 6.2/6.3 scalability results.
				tr := trees[it%len(trees)]
				if spec.Workload == ComputeGsum {
					host.Occupy(spec.ComputeDuration)
				}
				tr.Ports[pi].Entry.Op(ctx, paths.Request{Kind: paths.OpWrite, Value: int64(pi)})
			}
			now := hrtime.Now()
			mu.Lock()
			if now > endNS {
				endNS = now
			}
			mu.Unlock()
		})
	}
	vclock.Go(func() {
		mu.Lock()
		startNS = hrtime.Now()
		mu.Unlock()
		gate.Fire(nil, nil)
	})
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return time.Duration(endNS - startNS)
}

// TuneCompute measures the base allreduce latency of the spec's topology
// and returns the per-iteration compute duration giving compute-gsum its
// 50/50 split (section 5). The probe runs unmonitored.
func TuneCompute(spec RunSpec, probeIterations int) (time.Duration, error) {
	probe := spec
	probe.Workload = Gsum
	probe.Trees = 1
	probe.Monitor = NoMonitor
	probe.Iterations = probeIterations
	res, err := Run(probe)
	if err != nil {
		return 0, err
	}
	// PerOp is wall time per allreduce; the modelled compute duration is
	// expressed in unscaled model time, so divide the scale back out.
	scale := spec.TimeScale
	if scale <= 0 {
		scale = hrtime.Scale()
	}
	if scale == 0 {
		return 0, fmt.Errorf("bench: cannot tune compute at time scale 0")
	}
	return time.Duration(float64(res.PerOp) / scale), nil
}

// Overhead runs the base (unmonitored) and monitored variants of spec
// `repeats` times each and returns the relative overhead
// (monitored - base) / base together with the averaged monitored result.
func Overhead(spec RunSpec, repeats int) (float64, RunResult, error) {
	if repeats < 1 {
		repeats = 1
	}
	base := spec
	base.Monitor = NoMonitor

	var baseSum, monSum time.Duration
	var last RunResult
	for i := 0; i < repeats; i++ {
		b, err := Run(base)
		if err != nil {
			return 0, RunResult{}, err
		}
		baseSum += b.Duration
		m, err := Run(spec)
		if err != nil {
			return 0, RunResult{}, err
		}
		monSum += m.Duration
		last = m
	}
	baseAvg := baseSum / time.Duration(repeats)
	monAvg := monSum / time.Duration(repeats)
	last.Duration = monAvg
	overhead := float64(monAvg-baseAvg) / float64(baseAvg)
	return overhead, last, nil
}
