package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"eventspace/internal/collect"
	"eventspace/internal/escope"
	"eventspace/internal/hrtime"
	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// The staleness bench quantifies the degradation ladder's
// accuracy-versus-overhead trade under a straggler storm: five source
// hosts, two of them slowed 80x by a seeded FaultSlow, pulled round by
// round in each of the three scope modes. Overhead is the per-round
// gather latency in modelled time; accuracy is how much of the written
// trace payload the monitor retains (and, separately, observes at all —
// summary-only observes batches it does not retain).

const (
	stalenessHosts = 5
	stalenessSlow  = 2
	// Records are trace-tuple sized so the ingest queue's summary-mode
	// tuple accounting (payload bytes / TupleSize) is exact.
	stalenessRecSize = collect.TupleSize
	stalenessRounds  = 24
)

var stalenessSeeds = []uint64{1, 2, 3}

// stalenessRun is one (mode, seed) storm measurement.
type stalenessRun struct {
	meanRound time.Duration
	maxRound  time.Duration
	written   int // records written into the source elements
	retained  int // records delivered through the ingest queue
	observed  int // retained + records folded away in summary-only mode
	stale     int // children coasting on stale data at the end
	skipped   int // children with no data within the staleness bound
}

// runStalenessStorm drives one storm under the virtual clock, feeding
// every gather through a monitor-style ingest queue so summary-only's
// payload shedding is part of the measurement.
func runStalenessStorm(t *testing.T, seed uint64, mode escope.Mode, rounds int) stalenessRun {
	t.Helper()
	vclock.Enable(0)
	defer vclock.Disable()
	defer vclock.Quiesce(10 * time.Second)

	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	fe, err := n.AddStandaloneHost("fe", 4)
	if err != nil {
		t.Fatal(err)
	}
	sources := make([]escope.Source, stalenessHosts)
	elems := make([]*pastset.Element, stalenessHosts)
	for i := 0; i < stalenessHosts; i++ {
		h, err := n.AddStandaloneHost(fmt.Sprintf("h%d", i), 2)
		if err != nil {
			t.Fatal(err)
		}
		elems[i] = pastset.MustNewElement(fmt.Sprintf("trace%d", i), 4096)
		sources[i] = escope.Source{Host: h, Elem: elems[i], RecSize: stalenessRecSize}
	}
	scope, err := escope.Build(n, escope.Spec{
		Name:        "staleness",
		FrontEnd:    fe,
		RootHelpers: stalenessHosts,
		Sources:     sources,
		Health:      &escope.HealthPolicy{},
		Breaker: &escope.BreakerPolicy{
			RoundDeadline:  time.Millisecond,
			TripAfter:      2,
			ReopenBase:     2 * time.Millisecond,
			ReopenMax:      8 * time.Millisecond,
			StalenessBound: 25 * time.Millisecond,
		},
		Mode: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()
	// Factor 80 inflates each slowed host's service time ~2.4–7.3ms
	// against a ~300µs healthy round trip and a 1ms round deadline.
	n.InjectFaults(vnet.FaultPlan{Seed: seed, Events: []vnet.FaultEvent{
		{At: 0, Kind: vnet.FaultSlow, Host: "h1", Factor: 80},
		{At: 0, Kind: vnet.FaultSlow, Host: "h3", Factor: 80},
	}})
	defer n.ClearFaults()

	ingest := collect.NewIngestQueue(0)
	if mode == escope.ModeSummary {
		ingest.SetSummaryOnly(true)
	}

	var res stalenessRun
	var total time.Duration
	for r := 0; r < rounds; r++ {
		for _, e := range elems {
			rec := make([]byte, stalenessRecSize)
			rec[0] = byte(r)
			if _, err := e.Write(rec); err != nil {
				t.Fatal(err)
			}
			res.written++
		}
		ch := make(chan time.Duration, 1)
		vclock.Go(func() {
			ctx := &paths.Ctx{Thread: "staleness/driver"}
			start := hrtime.Now()
			rep, err := scope.Pull(ctx)
			if err != nil {
				t.Errorf("round %d pull: %v", r, err)
			}
			d := time.Duration(hrtime.Since(start))
			if len(rep.Data) > 0 {
				ingest.Push(rep.Data)
			}
			hrtime.Sleep(500 * time.Microsecond) // inter-round interval
			ch <- d
		})
		d := <-ch
		total += d
		if d > res.maxRound {
			res.maxRound = d
		}
		for {
			data, ok := ingest.Pop()
			if !ok {
				break
			}
			res.retained += len(data) / stalenessRecSize
		}
	}
	res.meanRound = total / time.Duration(rounds)
	st := ingest.Stats()
	res.observed = res.retained + int(st.SummarizedTuples)
	cov := scope.Coverage()
	res.stale = len(cov.Stale)
	res.skipped = len(cov.Skipped)
	return res
}

// TestRecordStalenessBench runs the straggler storm in every scope mode
// at each seed and, when STALENESS_BENCH_OUT names a file (the Makefile
// bench-staleness target), records the accuracy-versus-overhead table
// as JSON. Without the variable it only sanity-checks the trade: strict
// stalls on the stragglers, bounded-staleness holds the deadline while
// observing most of the trace, summary-only retains no payload.
func TestRecordStalenessBench(t *testing.T) {
	modes := []escope.Mode{escope.ModeStrict, escope.ModeBounded, escope.ModeSummary}
	type agg struct {
		MeanRoundUs     float64 `json:"mean_round_us"`
		MaxRoundUs      float64 `json:"max_round_us"`
		RetainedRatio   float64 `json:"retained_ratio"`
		ObservedRatio   float64 `json:"observed_ratio"`
		StaleChildren   float64 `json:"stale_children"`
		Skipped         float64 `json:"skipped_children"`
		RoundsPerSeed   int     `json:"rounds_per_seed"`
		SeedsAggregated int     `json:"seeds_aggregated"`
	}
	report := map[string]any{
		"hosts":       stalenessHosts,
		"slow_hosts":  stalenessSlow,
		"slow_factor": 80,
		"rounds":      stalenessRounds,
		"seeds":       stalenessSeeds,
		"policy": map[string]any{
			"round_deadline_us":   1000,
			"staleness_bound_us":  25000,
			"trip_after_overruns": 2,
		},
	}
	byMode := map[string]agg{}
	for _, mode := range modes {
		var a agg
		a.RoundsPerSeed = stalenessRounds
		a.SeedsAggregated = len(stalenessSeeds)
		for _, seed := range stalenessSeeds {
			run := runStalenessStorm(t, seed, mode, stalenessRounds)
			a.MeanRoundUs += float64(run.meanRound.Microseconds())
			if mu := float64(run.maxRound.Microseconds()); mu > a.MaxRoundUs {
				a.MaxRoundUs = mu
			}
			a.RetainedRatio += float64(run.retained) / float64(run.written)
			a.ObservedRatio += float64(run.observed) / float64(run.written)
			a.StaleChildren += float64(run.stale)
			a.Skipped += float64(run.skipped)
		}
		nseeds := float64(len(stalenessSeeds))
		a.MeanRoundUs /= nseeds
		a.RetainedRatio /= nseeds
		a.ObservedRatio /= nseeds
		a.StaleChildren /= nseeds
		a.Skipped /= nseeds
		byMode[mode.String()] = a
	}
	report["modes"] = byMode

	strict, bounded, summary := byMode["strict"], byMode["bounded-staleness"], byMode["summary-only"]
	if strict.RetainedRatio < 1 {
		t.Errorf("strict mode retained %.3f of the trace, want all of it", strict.RetainedRatio)
	}
	if strict.MeanRoundUs < 2000 {
		t.Errorf("strict mean round %.0fus: the storm did not stall strict mode", strict.MeanRoundUs)
	}
	if bounded.MaxRoundUs > 2000 {
		t.Errorf("bounded-staleness max round %.0fus exceeds 2x the 1ms deadline", bounded.MaxRoundUs)
	}
	if bounded.ObservedRatio < 0.6 {
		t.Errorf("bounded-staleness observed only %.3f of the trace (healthy hosts alone are 0.6)", bounded.ObservedRatio)
	}
	if summary.RetainedRatio != 0 {
		t.Errorf("summary-only retained %.3f of the payload, want none", summary.RetainedRatio)
	}
	if summary.ObservedRatio < 0.6 {
		t.Errorf("summary-only observed only %.3f of the trace", summary.ObservedRatio)
	}

	out := os.Getenv("STALENESS_BENCH_OUT")
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("staleness bench recorded to %s", out)
}
