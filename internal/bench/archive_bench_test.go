package bench

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/paths"
)

// benchTuples builds n synthetic trace tuples spread over four
// collectors with monotone stamps, the shape an escope puller delivers.
func benchTuples(n int) []collect.TraceTuple {
	out := make([]collect.TraceTuple, n)
	for i := range out {
		op := paths.OpWrite
		if i%2 == 1 {
			op = paths.OpRead
		}
		out[i] = collect.TraceTuple{
			ECID:  uint32(1 + i%4),
			Op:    op,
			Seq:   uint32(i / 4),
			Start: int64(i) * 1000,
			End:   int64(i)*1000 + 700,
		}
	}
	return out
}

// BenchmarkArchiveWrite measures sustained append throughput into a
// rotating segmented archive (bytes/op = one encoded tuple).
func BenchmarkArchiveWrite(b *testing.B) {
	w, err := archive.Create(archive.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	tuples := benchTuples(256)
	b.SetBytes(collect.TupleSize * int64(len(tuples)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(tuples); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkArchiveScan measures full-archive query throughput over a
// pre-written store (bytes/op = the tuples scanned per iteration).
func BenchmarkArchiveScan(b *testing.B) {
	dir := b.TempDir()
	w, err := archive.Create(archive.Options{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	const total = 64 * 1024
	if err := w.Append(benchTuples(total)); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	r, err := archive.OpenReader(dir)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(collect.TupleSize * total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := r.Scan(archive.Query{}, func(collect.TraceTuple) bool {
			n++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if n != total {
			b.Fatalf("scanned %d tuples, want %d", n, total)
		}
	}
}

// TestRecordArchiveBench measures archive write and scan throughput once
// and records it as JSON when ARCHIVE_BENCH_OUT names a file (the
// Makefile bench-archive target). Without the variable it only sanity
// checks that both paths move data.
func TestRecordArchiveBench(t *testing.T) {
	dir := t.TempDir()
	w, err := archive.Create(archive.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const total = 128 * 1024
	tuples := benchTuples(total)
	wStart := time.Now()
	for off := 0; off < total; off += 1024 {
		if err := w.Append(tuples[off : off+1024]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	writeDur := time.Since(wStart)
	stats := w.Stats()
	if stats.TuplesWritten != total {
		t.Fatalf("wrote %d tuples, want %d", stats.TuplesWritten, total)
	}

	r, err := archive.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	sStart := time.Now()
	n := 0
	if _, err := r.Scan(archive.Query{}, func(collect.TraceTuple) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	scanDur := time.Since(sStart)
	if n != total {
		t.Fatalf("scanned %d tuples, want %d", n, total)
	}

	out := os.Getenv("ARCHIVE_BENCH_OUT")
	if out == "" {
		return
	}
	mbps := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(total*collect.TupleSize) / d.Seconds() / 1e6
	}
	report := map[string]any{
		"tuples":               total,
		"tuple_bytes":          collect.TupleSize,
		"segments":             stats.Segments,
		"write_ns":             writeDur.Nanoseconds(),
		"write_mb_per_sec":     mbps(writeDur),
		"write_tuples_per_sec": float64(total) / writeDur.Seconds(),
		"scan_ns":              scanDur.Nanoseconds(),
		"scan_mb_per_sec":      mbps(scanDur),
		"scan_tuples_per_sec":  float64(total) / scanDur.Seconds(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("archive bench recorded to %s", out)
}
