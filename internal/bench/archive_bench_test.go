package bench

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/paths"
)

// benchFormats names the segment formats the archive benchmarks cover.
var benchFormats = []struct {
	name   string
	format int
}{
	{"row", archive.FormatRow},
	{"columnar", archive.FormatColumnar},
}

// benchTuples builds n synthetic trace tuples spread over four
// collectors with monotone stamps, the shape an escope puller delivers.
func benchTuples(n int) []collect.TraceTuple {
	out := make([]collect.TraceTuple, n)
	for i := range out {
		op := paths.OpWrite
		if i%2 == 1 {
			op = paths.OpRead
		}
		out[i] = collect.TraceTuple{
			ECID:  uint32(1 + i%4),
			Op:    op,
			Seq:   uint32(i / 4),
			Start: int64(i) * 1000,
			End:   int64(i)*1000 + 700,
		}
	}
	return out
}

// BenchmarkArchiveWrite measures sustained append throughput into a
// rotating segmented archive (bytes/op = one appended batch), per
// segment format.
func BenchmarkArchiveWrite(b *testing.B) {
	for _, bf := range benchFormats {
		b.Run(bf.name, func(b *testing.B) {
			w, err := archive.Create(archive.Options{Dir: b.TempDir(), Format: bf.format})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			tuples := benchTuples(256)
			b.SetBytes(collect.TupleSize * int64(len(tuples)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(tuples); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// writeBenchArchive fills a fresh archive with the bench corpus.
func writeBenchArchive(tb testing.TB, dir string, format, total int) *archive.Writer {
	tb.Helper()
	w, err := archive.Create(archive.Options{Dir: dir, Format: format})
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.Append(benchTuples(total)); err != nil {
		tb.Fatal(err)
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return w
}

// BenchmarkArchiveScan measures full-archive query throughput over a
// pre-written store (bytes/op = the tuples scanned per iteration), per
// segment format.
func BenchmarkArchiveScan(b *testing.B) {
	for _, bf := range benchFormats {
		b.Run(bf.name, func(b *testing.B) {
			dir := b.TempDir()
			const total = 64 * 1024
			writeBenchArchive(b, dir, bf.format, total)
			r, err := archive.OpenReader(dir)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(collect.TupleSize * total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				if _, err := r.Scan(archive.Query{}, func(collect.TraceTuple) bool {
					n++
					return true
				}); err != nil {
					b.Fatal(err)
				}
				if n != total {
					b.Fatalf("scanned %d tuples, want %d", n, total)
				}
			}
		})
	}
}

// BenchmarkArchiveScanPushdown measures a selective query — an op kind
// the corpus never carries — per segment format. Row segments must
// decode every tuple to discover the miss; columnar segments skip every
// block off its op dictionary, which is the ≥4x scan win the format
// exists for.
func BenchmarkArchiveScanPushdown(b *testing.B) {
	for _, bf := range benchFormats {
		b.Run(bf.name, func(b *testing.B) {
			dir := b.TempDir()
			const total = 64 * 1024
			writeBenchArchive(b, dir, bf.format, total)
			r, err := archive.OpenReader(dir)
			if err != nil {
				b.Fatal(err)
			}
			q := archive.Query{Ops: []paths.OpKind{paths.OpMode}}
			b.SetBytes(collect.TupleSize * total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := r.Scan(q, func(collect.TraceTuple) bool { return true })
				if err != nil {
					b.Fatal(err)
				}
				if stats.TuplesMatched != 0 {
					b.Fatalf("pushdown query matched %d tuples", stats.TuplesMatched)
				}
			}
		})
	}
}

// formatReport is one segment format's measured row in BENCH_archive.json.
type formatReport struct {
	WriteNS          int64   `json:"write_ns"`
	WriteMBPerSec    float64 `json:"write_mb_per_sec"`
	WriteAllocsPerOp float64 `json:"write_allocs_per_append"`
	BytesOnDisk      int64   `json:"bytes_on_disk"`
	Segments         int     `json:"segments"`
	ScanNS           int64   `json:"scan_ns"`
	ScanMBPerSec     float64 `json:"scan_mb_per_sec"`
	PushdownScanNS   int64   `json:"pushdown_scan_ns"`
	PushdownSkipped  uint64  `json:"pushdown_blocks_skipped"`
}

// TestRecordArchiveBench measures archive write and scan throughput for
// both segment formats and records them side by side as JSON when
// ARCHIVE_BENCH_OUT names a file (the Makefile bench-archive target).
// Without the variable it only sanity checks that all paths move data.
// The pushdown query asks for an op kind the corpus never carries: the
// columnar format answers it from block dictionaries without decoding,
// and the recorded speedup pins that down.
func TestRecordArchiveBench(t *testing.T) {
	const total = 128 * 1024
	tuples := benchTuples(total)
	pushdown := archive.Query{Ops: []paths.OpKind{paths.OpMode}}
	reports := map[string]*formatReport{}

	for _, bf := range benchFormats {
		dir := t.TempDir()
		w, err := archive.Create(archive.Options{Dir: dir, Format: bf.format})
		if err != nil {
			t.Fatal(err)
		}
		wStart := time.Now()
		for off := 0; off < total; off += 1024 {
			if err := w.Append(tuples[off : off+1024]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		writeDur := time.Since(wStart)
		stats := w.Stats()
		if stats.TuplesWritten != total {
			t.Fatalf("%s: wrote %d tuples, want %d", bf.name, stats.TuplesWritten, total)
		}

		// Steady-state append allocations: a warm writer with a big
		// segment (no rotation mid-measure) encoding whole blocks into
		// reused scratch. The CI write-path gate pins the collector
		// side; this records the archive side per format.
		wa, err := archive.Create(archive.Options{
			Dir: t.TempDir(), Format: bf.format,
			SegmentBytes: 1 << 30, BlockTuples: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		batch := tuples[:256]
		if err := wa.Append(batch); err != nil { // warm the scratch buffers
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if err := wa.Append(batch); err != nil {
				t.Fatal(err)
			}
		})
		if err := wa.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := archive.OpenReader(dir)
		if err != nil {
			t.Fatal(err)
		}
		sStart := time.Now()
		n := 0
		if _, err := r.Scan(archive.Query{}, func(collect.TraceTuple) bool {
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		scanDur := time.Since(sStart)
		if n != total {
			t.Fatalf("%s: scanned %d tuples, want %d", bf.name, n, total)
		}

		pStart := time.Now()
		pStats, err := r.Scan(pushdown, func(collect.TraceTuple) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		pushDur := time.Since(pStart)
		if pStats.TuplesMatched != 0 {
			t.Fatalf("%s: pushdown query matched %d tuples", bf.name, pStats.TuplesMatched)
		}
		if bf.format == archive.FormatColumnar {
			if pStats.BlocksSkipped == 0 || pStats.TuplesScanned != 0 {
				t.Fatalf("columnar pushdown decoded tuples: %+v", pStats)
			}
			if allocs != 0 {
				t.Errorf("columnar append allocates %.1f objects per block in steady state", allocs)
			}
		}

		mbps := func(d time.Duration) float64 {
			if d <= 0 {
				return 0
			}
			return float64(total*collect.TupleSize) / d.Seconds() / 1e6
		}
		reports[bf.name] = &formatReport{
			WriteNS:          writeDur.Nanoseconds(),
			WriteMBPerSec:    mbps(writeDur),
			WriteAllocsPerOp: allocs,
			BytesOnDisk:      stats.TotalBytes,
			Segments:         stats.Segments,
			ScanNS:           scanDur.Nanoseconds(),
			ScanMBPerSec:     mbps(scanDur),
			PushdownScanNS:   pushDur.Nanoseconds(),
			PushdownSkipped:  pStats.BlocksSkipped,
		}
	}

	out := os.Getenv("ARCHIVE_BENCH_OUT")
	if out == "" {
		return
	}
	speedup := 0.0
	if c := reports["columnar"].PushdownScanNS; c > 0 {
		speedup = float64(reports["row"].PushdownScanNS) / float64(c)
	}
	report := map[string]any{
		"tuples":                           total,
		"tuple_bytes":                      collect.TupleSize,
		"formats":                          reports,
		"pushdown_speedup_columnar_vs_row": speedup,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("archive bench recorded to %s (pushdown speedup %.1fx)", out, speedup)
}
