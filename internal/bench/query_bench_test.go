package bench

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"eventspace/internal/archive"
	"eventspace/internal/collect"
	"eventspace/internal/query"
)

// benchQuerySrc is the statement the parse benchmark measures: pushable
// predicates plus a residual the evaluator must apply per row.
const benchQuerySrc = "select * where ecid in (1, 2) and start >= 1ms and latency > 500ns limit 100000"

func mustParseBench(tb testing.TB, src string) *query.Stmt {
	tb.Helper()
	s, err := query.Parse(src)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// writeQueryBenchArchive lays the bench corpus out across many small
// segments so the header index has real skipping to do.
func writeQueryBenchArchive(tb testing.TB, dir string, total int) *archive.Reader {
	tb.Helper()
	w, err := archive.Create(archive.Options{
		Dir: dir, Format: archive.FormatColumnar, SegmentBytes: 64 << 10,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tuples := benchTuples(total)
	for off := 0; off < total; off += 1024 {
		if err := w.Append(tuples[off : off+1024]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	r, err := archive.OpenReader(dir)
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

// BenchmarkQueryParse measures esql parse cost (lexer, parser, type
// check) for a representative statement.
func BenchmarkQueryParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(benchQuerySrc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryEval measures evaluator throughput: a full archive scan
// with a non-pushable residual predicate, so every tuple is decoded and
// judged by the row evaluator.
func BenchmarkQueryEval(b *testing.B) {
	const total = 64 * 1024
	r := writeQueryBenchArchive(b, b.TempDir(), total)
	stmt := mustParseBench(b, "select * where latency > 600ns")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.ScanQuery(r, stmt, archive.Query{}, func(collect.TraceTuple) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// bestOf runs fn n times and returns the fastest wall time — the usual
// guard against a cold cache or a scheduling hiccup inflating one run.
func bestOf(n int, fn func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestRecordQueryBench measures esql parse cost, evaluator throughput,
// and the static-pushdown speedup on a selective stamp-range predicate,
// asserting the pushdown wins by at least 3x. QUERY_BENCH_OUT names a
// JSON report file (the Makefile bench-query target).
func TestRecordQueryBench(t *testing.T) {
	const total = 128 * 1024
	r := writeQueryBenchArchive(t, t.TempDir(), total)

	// Parse cost.
	const parses = 20000
	pStart := time.Now()
	for i := 0; i < parses; i++ {
		mustParseBench(t, benchQuerySrc)
	}
	parseNS := time.Since(pStart).Nanoseconds() / parses

	// Evaluator throughput: full scan, residual predicate on every row.
	evalStmt := mustParseBench(t, "select * where latency > 600ns")
	evalDur := bestOf(3, func() {
		if _, err := query.ScanQuery(r, evalStmt, archive.Query{}, func(collect.TraceTuple) bool { return true }); err != nil {
			t.Fatal(err)
		}
	})
	evalRows := float64(total) / evalDur.Seconds()

	// Aggregation throughput: grouped percentiles over the whole corpus.
	aggStmt := mustParseBench(t, "select count(), p99(latency) by ecid")
	aggDur := bestOf(3, func() {
		if _, _, err := query.RunQuery(r, aggStmt, archive.Query{}); err != nil {
			t.Fatal(err)
		}
	})
	aggRows := float64(total) / aggDur.Seconds()

	// Pushdown vs full scan on a selective predicate: the stamp range
	// covers 1/32 of the corpus, so the header index should skip the
	// overwhelming majority of segments.
	sel := mustParseBench(t, "select * where start >= 100ms and start < 104ms")
	count := func(q archive.Query) (int, archive.ScanStats) {
		n := 0
		stats, err := query.ScanQuery(r, sel, q, func(collect.TraceTuple) bool {
			n++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return n, stats
	}
	nFull, _ := count(archive.Query{})
	nPush, pushStats := count(sel.Pushdown())
	if nFull != nPush || nFull == 0 {
		t.Fatalf("pushdown changed results: full %d, pushed %d", nFull, nPush)
	}
	if pushStats.SegmentsSkipped == 0 {
		t.Fatalf("selective scan skipped nothing: %+v", pushStats)
	}
	fullDur := bestOf(3, func() { count(archive.Query{}) })
	pushDur := bestOf(3, func() { count(sel.Pushdown()) })
	speedup := float64(fullDur) / float64(pushDur)
	if speedup < 3 {
		t.Errorf("pushdown speedup %.1fx, want >= 3x (full %v, pushed %v)", speedup, fullDur, pushDur)
	}

	out := os.Getenv("QUERY_BENCH_OUT")
	if out == "" {
		return
	}
	report := map[string]any{
		"statement":         benchQuerySrc,
		"parse_ns_op":       parseNS,
		"eval_rows_per_sec": evalRows,
		"agg_rows_per_sec":  aggRows,
		"selective_scan": map[string]any{
			"predicate":        sel.String(),
			"tuples_matched":   nPush,
			"full_scan_ns":     fullDur.Nanoseconds(),
			"pushdown_ns":      pushDur.Nanoseconds(),
			"pushdown_speedup": speedup,
			"segments":         pushStats.Segments,
			"segments_skipped": pushStats.SegmentsSkipped,
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("query bench recorded to %s (parse %dns/op, pushdown %.1fx)", out, parseNS, speedup)
}
