package bench

import (
	"math"
	"testing"
	"time"

	"eventspace/internal/cluster"
	"eventspace/internal/monitor"
)

// tinySpec is a fast-running gsum specification for unit tests. The
// virtual clock makes even full-fidelity runs quick.
func tinySpec() RunSpec {
	return RunSpec{
		Testbed:     cluster.SingleTin(6),
		Fanout:      8,
		Trees:       2,
		Workload:    Gsum,
		Iterations:  60,
		Monitor:     NoMonitor,
		MonitorCfg:  monitor.DefaultConfig(),
		TimeScale:   1,
		TraceBufCap: 32,
	}
}

func TestRunValidation(t *testing.T) {
	spec := tinySpec()
	spec.Iterations = 0
	if _, err := Run(spec); err == nil {
		t.Fatal("0 iterations accepted")
	}
	spec = tinySpec()
	spec.Monitor = MonitorKind(99)
	if _, err := Run(spec); err == nil {
		t.Fatal("unknown monitor accepted")
	}
}

func TestRunGsumBase(t *testing.T) {
	res, err := Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 60 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	// 6 Tin hosts, one level: a few hundred microseconds per op.
	if res.PerOp < 100*time.Microsecond || res.PerOp > 2*time.Millisecond {
		t.Fatalf("PerOp = %v", res.PerOp)
	}
	if res.Duration < res.PerOp {
		t.Fatalf("duration %v < perOp %v", res.Duration, res.PerOp)
	}
	if res.Messages == 0 {
		t.Fatal("no messages counted")
	}
}

func TestRunRepeatableUnderVirtualClock(t *testing.T) {
	a, err := Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// Virtual timing depends only on the model; ties between
	// simultaneous events may resolve in either order, so allow a
	// sliver of variation.
	diff := a.Duration - b.Duration
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.01*float64(a.Duration) {
		t.Fatalf("runs diverge: %v vs %v", a.Duration, b.Duration)
	}
}

func TestRunWithMonitors(t *testing.T) {
	for _, kind := range []MonitorKind{CollectorsOnly, LBSingleScope, LBDistributed, Statsm, StatsmNoGather} {
		spec := tinySpec()
		spec.Monitor = kind
		spec.MonitorCfg.PullInterval = 300 * time.Microsecond
		spec.MonitorCfg.AnalysisInterval = 300 * time.Microsecond
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		switch kind {
		case LBSingleScope, LBDistributed:
			if res.GatherRate <= 0 || res.GatherRate > 1 {
				t.Fatalf("%v: gather rate %v", kind, res.GatherRate)
			}
		case Statsm:
			if res.WrapperGatherRate <= 0 || res.ThreadGatherRate <= 0 {
				t.Fatalf("%v: rates %v/%v", kind, res.WrapperGatherRate, res.ThreadGatherRate)
			}
		}
	}
}

func TestComputeGsumSlowerThanGsum(t *testing.T) {
	spec := tinySpec()
	spec.Trees = 1
	base, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload = ComputeGsum
	spec.ComputeDuration = time.Duration(base.PerOp)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Tuned 50/50: an iteration is roughly twice an allreduce.
	ratio := float64(res.PerOp) / float64(base.PerOp)
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("compute-gsum/gsum per-op ratio = %.2f", ratio)
	}
}

func TestTuneCompute(t *testing.T) {
	spec := tinySpec()
	spec.Workload = ComputeGsum
	d, err := TuneCompute(spec, 30)
	if err != nil {
		t.Fatal(err)
	}
	if d < 50*time.Microsecond || d > 5*time.Millisecond {
		t.Fatalf("tuned compute = %v", d)
	}
}

func TestOverheadBaseline(t *testing.T) {
	// Overhead of collectors-only on a tiny run must be near zero under
	// the virtual clock (collectors add no modelled cost).
	spec := tinySpec()
	spec.Monitor = CollectorsOnly
	ov, res, err := Overhead(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ov) > 0.02 {
		t.Fatalf("collectors-only overhead = %v", ov)
	}
	if res.Duration == 0 {
		t.Fatal("no duration")
	}
}

func TestWorkloadAndMonitorStrings(t *testing.T) {
	if Gsum.String() != "gsum" || ComputeGsum.String() != "compute-gsum" {
		t.Fatal("workload names")
	}
	names := map[MonitorKind]string{
		NoMonitor: "none", CollectorsOnly: "collectors", LBSingleScope: "lb-single",
		LBDistributed: "lb-distributed", Statsm: "statsm", StatsmNoGather: "statsm-nogather",
		MonitorKind(42): "monitor(42)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestFormatting(t *testing.T) {
	if FormatOverhead(math.NaN()) != "-" {
		t.Fatal("NaN overhead")
	}
	if FormatOverhead(0.001) != "none" {
		t.Fatal("sub-noise overhead")
	}
	if FormatOverhead(0.031) != "3.1%" {
		t.Fatalf("got %s", FormatOverhead(0.031))
	}
	if FormatRate(0) != "-" || FormatRate(0.994) != "99%" {
		t.Fatal("rates")
	}
	r := Row{Config: "x", Overhead: 0.02, Discarded: true, GatherRate: 0.5, Paper: "2%"}
	if s := r.String(); s == "" {
		t.Fatal("empty row string")
	}
}

func TestOptionsDerivations(t *testing.T) {
	full := DefaultOptions()
	quick := QuickOptions()
	if full.tin32() != 32 || full.tin49() != 49 || full.lanTin() != 43 || full.lanIron() != 39 {
		t.Fatal("full sizes diverge from the paper")
	}
	ft, fi := full.wanSub()
	if ft != 14 || fi != 13 {
		t.Fatal("full WAN sub-cluster sizes")
	}
	if quick.tin32() >= full.tin32() || quick.lanIterations() >= full.lanIterations() {
		t.Fatal("quick not smaller than full")
	}
	if (Options{}).repeats() != 1 || (Options{Repeats: 3}).repeats() != 3 {
		t.Fatal("repeats")
	}
	if (Options{}).scale() != 1 {
		t.Fatal("scale default")
	}
	if traceCap(1000) != 200 || traceCap(10) != 32 {
		t.Fatalf("traceCap = %d, %d", traceCap(1000), traceCap(10))
	}
}

func TestTopoNames(t *testing.T) {
	o := QuickOptions()
	for _, name := range []string{"tin32", "tin49", "lan", "wan", "wan-overloaded"} {
		tb, iters, label := o.topo(name)
		if len(tb.Clusters) == 0 || iters <= 0 || label == "" {
			t.Fatalf("topo %q incomplete", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown topology accepted")
		}
	}()
	o.topo("nope")
}

func TestAllreducesPerIteration(t *testing.T) {
	spec := tinySpec()
	if allreducesPerIteration(spec) != 1 {
		t.Fatal("one allreduce per iteration, alternating trees")
	}
}
