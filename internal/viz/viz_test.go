package viz

import (
	"bytes"
	"strings"
	"testing"

	"eventspace/internal/analysis"
	"eventspace/internal/cluster"
	"eventspace/internal/hrtime"
	"eventspace/internal/monitor"
)

func testTree(t *testing.T) (*cluster.Testbed, *cluster.Tree) {
	t.Helper()
	old := hrtime.Scale()
	hrtime.SetScale(0.002)
	t.Cleanup(func() { hrtime.SetScale(old) })
	tb, err := cluster.NewTestbed(cluster.SingleTin(4))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := cluster.BuildTree(tb, cluster.TreeSpec{
		Name: "T", Fanout: 8, ThreadsPerHost: 1, Instrument: true, TraceBufCap: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tree.Close)
	return tb, tree
}

func TestTreeRendering(t *testing.T) {
	_, tree := testTree(t)
	var buf bytes.Buffer
	if err := Tree(&buf, tree); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"spanning tree T", "T/tin-0", "fan-in 4", "EC"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTreeRenderingWAN(t *testing.T) {
	old := hrtime.Scale()
	hrtime.SetScale(0.002)
	t.Cleanup(func() { hrtime.SetScale(old) })
	tb, err := cluster.NewTestbed(cluster.WANMulti(2, 2, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := cluster.BuildTree(tb, cluster.TreeSpec{Name: "W", ThreadsPerHost: 1, WANAllToAll: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	var buf bytes.Buffer
	if err := Tree(&buf, tree); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "all-to-all exchange: 6 participants") {
		t.Fatalf("WAN rendering missing exchange line:\n%s", buf.String())
	}
}

func TestWeightedTreeRendering(t *testing.T) {
	wt := monitor.NewWeightedTree()
	wt.Add("T/tin-0", 0, 90)
	wt.Add("T/tin-0", 1, 10)
	var buf bytes.Buffer
	if err := WeightedTree(&buf, wt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "T/tin-0 (100 rounds observed)") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "90.0%") || !strings.Contains(out, "10.0%") {
		t.Fatalf("missing percentages:\n%s", out)
	}
	// The straggler bar must be longer than the other.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "#") <= strings.Count(lines[2], "#") {
		t.Fatalf("bars not proportional:\n%s", out)
	}
}

func TestWeightedTreeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WeightedTree(&buf, monitor.NewWeightedTree()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no observations") {
		t.Fatal("missing empty message")
	}
}

func TestAnalysisTreeRendering(t *testing.T) {
	_, tree := testTree(t)
	at := monitor.NewAnalysisTree()
	id := tree.Nodes[0].CollectiveEC.ID()
	at.Update(analysis.StatsRecord{ID: id, Kind: analysis.KindDown, Count: 5, Mean: 100, Min: 90, Max: 110, Std: 5, Median: 99})
	at.Update(analysis.StatsRecord{ID: id, Kind: analysis.KindTotal, Count: 5, Mean: 300})
	var buf bytes.Buffer
	if err := AnalysisTree(&buf, at, tree); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "down") || !strings.Contains(out, "total") {
		t.Fatalf("missing metrics:\n%s", out)
	}
	if !strings.Contains(out, tree.Nodes[0].CollectiveEC.Name()) {
		t.Fatalf("missing wrapper name:\n%s", out)
	}
	// Unknown tree: falls back to numeric ids.
	buf.Reset()
	if err := AnalysisTree(&buf, at, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrapper#") {
		t.Fatal("missing numeric fallback")
	}
}

func TestAnalysisTreeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := AnalysisTree(&buf, monitor.NewAnalysisTree(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no statistics") {
		t.Fatal("missing empty message")
	}
}

func TestGatherReport(t *testing.T) {
	var buf bytes.Buffer
	if err := GatherReport(&buf, "lb", 0.55, 123); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tuples discarded") {
		t.Fatal("low rate not flagged")
	}
	buf.Reset()
	GatherReport(&buf, "lb", 1.0, 10)
	if !strings.Contains(buf.String(), "all tuples gathered") {
		t.Fatal("full rate not reported")
	}
}

func TestTopologyRendering(t *testing.T) {
	tb, _ := testTree(t)
	var buf bytes.Buffer
	if err := Topology(&buf, tb); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cluster tin") || !strings.Contains(out, "gateway=tin-gw") || !strings.Contains(out, "front-end") {
		t.Fatalf("topology rendering:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	if bar(0, 10) != ".........."[:10] {
		t.Fatal("empty bar")
	}
	if bar(1, 10) != "##########" {
		t.Fatal("full bar")
	}
	if bar(-1, 4) != "...." || bar(2, 4) != "####" {
		t.Fatal("clamping")
	}
	if got := bar(0.5, 10); strings.Count(got, "#") != 5 {
		t.Fatalf("half bar = %q", got)
	}
}
