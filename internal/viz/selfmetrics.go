package viz

import (
	"fmt"
	"io"
	"time"

	"eventspace/internal/metrics"
)

// maxSelfMetricsSites caps the per-site detail rows printed per kind, so
// a large scope does not drown the report; the per-kind totals always
// cover every site.
const maxSelfMetricsSites = 8

func fmtNS(ns float64) string {
	return fmtDur(time.Duration(ns))
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// SelfMetrics renders the self-metrics snapshot: the cost of monitoring
// the monitor. One aggregate row per wrapper kind (the paper-style
// per-operation cost table), capped per-site detail, and the event
// counters (retries, redials, health transitions, puller activity).
func SelfMetrics(w io.Writer, s metrics.Snapshot) error {
	totals := s.Totals()
	if len(totals) == 0 && len(s.Counters) == 0 {
		_, err := fmt.Fprintln(w, "self-metrics: no instrumented sites")
		return err
	}
	fmt.Fprintln(w, "self-metrics (cost of monitoring the monitor)")
	fmt.Fprintf(w, "  %-11s %5s %10s %6s %12s %9s %9s %9s %9s\n",
		"kind", "sites", "ops", "errs", "bytes", "mean", "p50", "p99", "max")
	for _, t := range totals {
		fmt.Fprintf(w, "  %-11s %5d %10d %6d %12d %9s %9s %9s %9s\n",
			t.Name, s.Sites(t.Kind), t.Ops, t.Errs, t.Bytes,
			fmtNS(t.Lat.MeanNS()),
			fmtDur(time.Duration(t.Lat.Quantile(0.5))),
			fmtDur(time.Duration(t.Lat.Quantile(0.99))),
			fmtDur(time.Duration(t.Lat.MaxNS)))
	}
	for _, t := range totals {
		sites := s.ByKind(t.Kind)
		if len(sites) < 2 {
			continue
		}
		fmt.Fprintf(w, "  %s sites:\n", t.Kind)
		shown := sites
		if len(shown) > maxSelfMetricsSites {
			shown = shown[:maxSelfMetricsSites]
		}
		for _, o := range shown {
			fmt.Fprintf(w, "    %-44s %10d ops %6d errs %9s mean\n",
				o.Name, o.Ops, o.Errs, fmtNS(o.Lat.MeanNS()))
		}
		if len(sites) > len(shown) {
			fmt.Fprintf(w, "    ... and %d more\n", len(sites)-len(shown))
		}
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "  counters:")
		for _, c := range s.Counters {
			if c.Value == 0 {
				continue
			}
			fmt.Fprintf(w, "    %-44s %10d\n", c.Name, c.Value)
		}
	}
	return nil
}
