// Package viz renders text visualizations of the monitoring results: the
// spanning tree with its event collectors (figure 1), the load-balance
// monitor's weighted tree (the per-contributor last-arrival counts used to
// spot stragglers), and statsm's per-wrapper statistics tables. The paper
// generates graphical views from the same front-end structures; a text
// rendering keeps this reproduction dependency-free while exercising the
// identical data.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"eventspace/internal/analysis"
	"eventspace/internal/cluster"
	"eventspace/internal/collect"
	"eventspace/internal/escope"
	"eventspace/internal/monitor"
)

// Tree renders the spanning tree's node hierarchy with per-node fan-in and
// instrumentation summary.
func Tree(w io.Writer, t *cluster.Tree) error {
	fmt.Fprintf(w, "spanning tree %s: %d collective wrappers, %d links, %d thread ports, %d event collectors\n",
		t.Name, len(t.Nodes), len(t.Links), len(t.Ports), t.ECCount())
	if len(t.Nodes) == 0 {
		return nil
	}
	byName := make(map[string]*cluster.Node, len(t.Nodes))
	children := make(map[string][]string)
	isChild := make(map[string]bool)
	for _, n := range t.Nodes {
		byName[n.Name] = n
		children[n.Name] = n.Children
		for _, c := range n.Children {
			isChild[c] = true
		}
	}
	var render func(name, indent string) error
	render = func(name, indent string) error {
		n, ok := byName[name]
		if !ok {
			_, err := fmt.Fprintf(w, "%s- %s (leaf host feed)\n", indent, name)
			return err
		}
		ecs := ""
		if n.CollectiveEC != nil {
			ecs = fmt.Sprintf(" [EC%d + %d contributor ECs]", n.CollectiveEC.ID(), len(n.ContribECs))
		}
		if _, err := fmt.Fprintf(w, "%s- %s on %s (fan-in %d)%s\n", indent, n.Name, n.Host.Name(), n.AR.Fanin(), ecs); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := render(c, indent+"  "); err != nil {
				return err
			}
		}
		return nil
	}
	for _, n := range t.Nodes {
		if !isChild[n.Name] {
			if err := render(n.Name, "  "); err != nil {
				return err
			}
		}
	}
	if len(t.Exchanges) > 0 {
		fmt.Fprintf(w, "  inter-cluster all-to-all exchange: %d participants\n", t.Exchanges[0].Participants())
	}
	return nil
}

// bar renders a proportional bar of width cells.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// WeightedTree renders the load-balance monitor's last-arrival counts: one
// block per collective wrapper, one bar per contributor. The dominant bar
// is the straggler the paper's analysis hunts for.
func WeightedTree(w io.Writer, wt *monitor.WeightedTree) error {
	nodes := wt.Nodes()
	sort.Strings(nodes)
	if len(nodes) == 0 {
		_, err := fmt.Fprintln(w, "weighted tree: no observations")
		return err
	}
	for _, node := range nodes {
		counts := wt.Counts(node)
		var total uint64
		for _, v := range counts {
			total += v
		}
		if _, err := fmt.Fprintf(w, "%s (%d rounds observed)\n", node, total); err != nil {
			return err
		}
		contribs := make([]int, 0, len(counts))
		for c := range counts {
			contribs = append(contribs, c)
		}
		sort.Ints(contribs)
		for _, c := range contribs {
			frac := 0.0
			if total > 0 {
				frac = float64(counts[c]) / float64(total)
			}
			if _, err := fmt.Fprintf(w, "  contributor %2d %s %5.1f%% (%d)\n",
				c, bar(frac, 30), frac*100, counts[c]); err != nil {
				return err
			}
		}
	}
	return nil
}

// statKinds is the display order for wrapper statistics.
var statKinds = []int{
	analysis.KindDown, analysis.KindUp, analysis.KindTotal,
	analysis.KindArrivalWait, analysis.KindDepartureWait, analysis.KindTCP,
}

// AnalysisTree renders statsm's front-end analysis tree as a table of
// microsecond statistics per wrapper and latency kind.
func AnalysisTree(w io.Writer, at *monitor.AnalysisTree, tree *cluster.Tree) error {
	ids := at.IDs()
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	if len(ids) == 0 {
		_, err := fmt.Fprintln(w, "analysis tree: no statistics gathered")
		return err
	}
	name := func(id uint32) string {
		if tree != nil {
			if ec, ok := tree.Collectors.ByID(id); ok {
				return ec.Name()
			}
		}
		return fmt.Sprintf("wrapper#%d", id)
	}
	fmt.Fprintf(w, "%-34s %-14s %8s %10s %10s %10s %10s %10s\n",
		"wrapper", "metric", "n", "mean", "min", "max", "std", "median")
	for _, id := range ids {
		for _, kind := range statKinds {
			rec, ok := at.Get(id, kind)
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-34s %-14s %8d %9.1fu %9.1fu %9.1fu %9.1fu %9.1fu\n",
				name(id), analysis.KindName(kind), rec.Count,
				rec.Mean, rec.Min, rec.Max, rec.Std, rec.Median); err != nil {
				return err
			}
		}
	}
	return nil
}

// GatherReport renders an event scope's delivery accounting.
func GatherReport(w io.Writer, label string, rate float64, pulls uint64) error {
	status := "all tuples gathered"
	if rate < 0.99 {
		status = "tuples discarded"
	}
	_, err := fmt.Fprintf(w, "%s: gather rate %5.1f%% over %d pulls (%s)\n", label, rate*100, pulls, status)
	return err
}

// Modes renders a scope's degradation-ladder history: one line per mode
// transition, stamped in modelled time. Live (Scope.ModeLog) and
// archive-replayed (monitor.ModeReplay.Changes) histories render
// byte-identically when the run was recorded faithfully.
func Modes(w io.Writer, label string, changes []escope.ModeChange) error {
	if _, err := fmt.Fprintf(w, "== degradation ladder: %s ==\n", label); err != nil {
		return err
	}
	if len(changes) == 0 {
		_, err := fmt.Fprintln(w, "  (never left strict mode)")
		return err
	}
	for _, ch := range changes {
		if _, err := fmt.Fprintf(w, "  #%-3d %12v  %s -> %s\n",
			ch.Seq, time.Duration(ch.At), ch.From, ch.To); err != nil {
			return err
		}
	}
	return nil
}

// Alerts renders a continuous-query alert stream: one line per fired
// alert, stamped in modelled time. queries maps a statement's hash
// (query.Stmt.Hash) to its canonical esql source for labelling;
// unmapped hashes render as hex. Live (Engine.Alerts) and
// archive-replayed (archive.ReplayAlerts, query.Replay) streams render
// byte-identically when the run was recorded faithfully.
func Alerts(w io.Writer, label string, alerts []collect.AlertTuple, queries map[uint64]string) error {
	if _, err := fmt.Fprintf(w, "== alerts: %s ==\n", label); err != nil {
		return err
	}
	if len(alerts) == 0 {
		_, err := fmt.Fprintln(w, "  (no alerts fired)")
		return err
	}
	for _, a := range alerts {
		q, ok := queries[a.QueryHash]
		if !ok {
			q = fmt.Sprintf("query %016x", a.QueryHash)
		}
		group := "all"
		if a.Group != 0 {
			group = fmt.Sprintf("ec %d", a.Group)
		}
		if _, err := fmt.Fprintf(w, "  #%-3d %12v  %-6s  %s\n",
			a.Seq, time.Duration(a.At), group, q); err != nil {
			return err
		}
	}
	return nil
}

// Topology renders the testbed: clusters, hosts, gateways and the WAN
// emulator placement.
func Topology(w io.Writer, tb *cluster.Testbed) error {
	for _, c := range tb.Clusters {
		if _, err := fmt.Fprintf(w, "cluster %-8s site=%-10s hosts=%-3d gateway=%s\n",
			c.Name(), c.Site(), len(c.Hosts()), c.Gateway().Name()); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "front-end %s (%d CPUs)\n", tb.FrontEnd.Name(), tb.FrontEnd.CPUs())
	if tb.Emulator != nil {
		fmt.Fprintf(w, "WAN links emulated by Longcut (max base RTT %v)\n", 36*time.Millisecond)
	}
	return nil
}

// Rows renders experiment rows as a right-padded table (the esbench
// output format).
func Rows(w io.Writer, title string, rows []fmt.Stringer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", title); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "  %s\n", r.String()); err != nil {
			return err
		}
	}
	return nil
}
