package viz

import (
	"fmt"
	"io"
	"sort"
	"time"

	"eventspace/internal/escope"
	"eventspace/internal/reconfig"
)

// RepairPlans renders a reconfig manager's executed repair plans: per
// plan the trigger (which uplink died, at what modelled time), each
// step's action and outcome, and the repair latency.
func RepairPlans(w io.Writer, plans []reconfig.RepairPlan) error {
	fmt.Fprintf(w, "repair plans: %d\n", len(plans))
	for i, p := range plans {
		fmt.Fprintf(w, "  plan %d @%v: uplink %s (cluster %s) %s -> %s\n",
			i, time.Duration(p.Trigger.At), p.Trigger.Target, p.Cluster,
			p.Trigger.From, p.Trigger.To)
		if p.Aborted {
			fmt.Fprintf(w, "    aborted: %s\n", p.Reason)
			continue
		}
		for _, st := range p.Steps {
			switch st.Kind {
			case reconfig.StepReparent:
				fmt.Fprintf(w, "    reparent %s: %s -> %s", st.Host, st.Cluster, st.Target)
			case reconfig.StepPromote:
				fmt.Fprintf(w, "    promote %s as gateway of %s", st.Host, st.Cluster)
			default:
				fmt.Fprintf(w, "    %v %s", st.Kind, st.Host)
			}
			if st.Err != "" {
				fmt.Fprintf(w, " FAILED: %s", st.Err)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "    latency: %v\n", time.Duration(p.Finished-p.Started))
	}
	return nil
}

// CoverageDetail renders a scope coverage snapshot with the repair-aware
// fields: reporting/expected, how many reporting hosts recovered from an
// outage or repair, who is missing, and per-host last-heard ages (the
// age of the last successful gather over each host's path, relative to
// the newest one).
func CoverageDetail(w io.Writer, cov escope.Coverage) error {
	fmt.Fprintf(w, "coverage: %d/%d reporting", cov.Reporting, cov.Expected)
	if cov.Recovered > 0 {
		fmt.Fprintf(w, " (%d recovered)", cov.Recovered)
	}
	if len(cov.Missing) > 0 {
		fmt.Fprintf(w, ", missing: %v", cov.Missing)
	}
	if cov.Staleness > 0 {
		fmt.Fprintf(w, ", staleness %v", cov.Staleness)
	}
	fmt.Fprintln(w)
	if len(cov.LastHeard) == 0 {
		return nil
	}
	hosts := make([]string, 0, len(cov.LastHeard))
	newest := cov.LastHeard[""]
	for h, st := range cov.LastHeard {
		hosts = append(hosts, h)
		if st > newest {
			newest = st
		}
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		fmt.Fprintf(w, "  %-14s last heard %v ago\n", h, time.Duration(newest-cov.LastHeard[h]))
	}
	return nil
}

// Transitions renders a guard transition log (as captured by a scope
// transition hook) in arrival order.
func Transitions(w io.Writer, trs []escope.Transition) error {
	fmt.Fprintf(w, "guard transitions: %d\n", len(trs))
	for _, tr := range trs {
		fmt.Fprintf(w, "  @%v %s [%s] %s -> %s (cluster %q)\n",
			time.Duration(tr.At), tr.Target, tr.Role, tr.From, tr.To, tr.Cluster)
	}
	return nil
}
