package escope

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eventspace/internal/hrtime"
	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// slowChild is a wrapper whose replies the test can hold back at will,
// standing in for a straggling guard+stub chain underneath a breaker.
type slowChild struct {
	host *vnet.Host
	ops  atomic.Int64

	mu   sync.Mutex
	hold chan struct{}
	rep  paths.Reply
	err  error
}

func (c *slowChild) Name() string     { return "slowchild" }
func (c *slowChild) Host() *vnet.Host { return c.host }

func (c *slowChild) Op(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
	c.ops.Add(1)
	c.mu.Lock()
	hold := c.hold
	c.mu.Unlock()
	if hold != nil {
		<-hold
	}
	// Re-read after the hold so a reply installed mid-call is observed.
	c.mu.Lock()
	rep, err := c.rep, c.err
	c.mu.Unlock()
	return rep, err
}

// block makes subsequent (and in-flight) calls wait until release.
func (c *slowChild) block() {
	c.mu.Lock()
	c.hold = make(chan struct{})
	c.mu.Unlock()
}

func (c *slowChild) release() {
	c.mu.Lock()
	hold := c.hold
	c.hold = nil
	c.mu.Unlock()
	if hold != nil {
		close(hold)
	}
}

func (c *slowChild) set(rep paths.Reply, err error) {
	c.mu.Lock()
	c.rep, c.err = rep, err
	c.mu.Unlock()
}

func testBreaker(pol *BreakerPolicy, child paths.Wrapper, m Mode) (*breaker, *atomic.Int32) {
	var mode atomic.Int32
	mode.Store(int32(m))
	return newBreaker("test!breaker", "child", nil, child, pol, &mode), &mode
}

func TestBreakerStrictModePassThrough(t *testing.T) {
	child := &slowChild{}
	child.set(paths.Reply{Ret: 1, Data: []byte{42}}, nil)
	b, mode := testBreaker(&BreakerPolicy{}, child, ModeStrict)
	ctx := &paths.Ctx{Thread: "t"}

	rep, err := b.Op(ctx, paths.Request{Kind: paths.OpRead})
	if err != nil || rep.Ret != 1 || len(rep.Data) != 1 {
		t.Fatalf("strict pass-through: %+v, %v", rep, err)
	}
	appErr := errors.New("app")
	child.set(paths.Reply{}, appErr)
	if _, err := b.Op(ctx, paths.Request{Kind: paths.OpRead}); !errors.Is(err, appErr) {
		t.Fatalf("strict app error: %v", err)
	}
	h := b.snapshot()
	if h.State != BreakerClosed || h.HasData || h.TotalOverruns != 0 || h.Skips != 0 {
		t.Fatalf("strict mode left accounting: %+v", h)
	}

	// Off-strict the breaker engages: a prompt answer is recorded.
	mode.Store(int32(ModeSummary))
	child.set(paths.Reply{Ret: 1, Data: []byte{7}}, nil)
	rep, err = b.Op(ctx, paths.Request{Kind: paths.OpRead})
	if err != nil || len(rep.Data) != 1 {
		t.Fatalf("summary-mode op: %+v, %v", rep, err)
	}
	if h := b.snapshot(); !h.HasData {
		t.Fatalf("summary-mode success not recorded: %+v", h)
	}
}

func TestBreakerDeadlineOverrunTripAndStaleDelivery(t *testing.T) {
	child := &slowChild{}
	pol := &BreakerPolicy{
		RoundDeadline:  2 * time.Millisecond,
		TripAfter:      2,
		ReopenBase:     10 * time.Second, // no trial during the test
		ReopenMax:      10 * time.Second,
		StalenessBound: time.Hour,
	}
	b, _ := testBreaker(pol, child, ModeBounded)
	ctx := &paths.Ctx{Thread: "t"}
	req := paths.Request{Kind: paths.OpRead}

	child.block()
	defer child.release()

	// Round 1: the call overruns the deadline and is abandoned.
	rep, err := b.Op(ctx, req)
	if err != nil || len(rep.Data) != 0 {
		t.Fatalf("overrun round: %+v, %v", rep, err)
	}
	h := b.snapshot()
	if h.State != BreakerClosed || h.Overruns != 1 || !h.Pending {
		t.Fatalf("after first overrun: %+v", h)
	}

	// Round 2: the abandoned call is still running — another overrun,
	// which reaches TripAfter and opens the breaker.
	if rep, err := b.Op(ctx, req); err != nil || len(rep.Data) != 0 {
		t.Fatalf("pending round: %+v, %v", rep, err)
	}
	h = b.snapshot()
	if h.State != BreakerOpen || h.Overruns != 2 || h.Trips != 1 || h.Skips != 1 {
		t.Fatalf("after trip: %+v", h)
	}

	// The child finally answers: its late result is delivered as stale
	// data on a later round, and the breaker stays open.
	child.set(paths.Reply{Ret: 1, Data: []byte{7}}, nil)
	child.release()
	var stale paths.Reply
	for i := 0; i < 2000; i++ {
		stale, err = b.Op(ctx, req)
		if err != nil {
			t.Fatalf("stale round: %v", err)
		}
		if len(stale.Data) > 0 {
			break
		}
		hrtime.SleepOutside(time.Millisecond)
	}
	if len(stale.Data) != 1 || stale.Data[0] != 7 {
		t.Fatalf("late result not delivered stale: %+v", stale)
	}
	h = b.snapshot()
	if h.State != BreakerOpen || h.Stale != 1 || !h.HasData || h.Pending {
		t.Fatalf("after stale delivery: %+v", h)
	}

	// Open with fresh-enough data and a distant trial: rounds skip the
	// child entirely.
	skips := h.Skips
	if rep, err := b.Op(ctx, req); err != nil || len(rep.Data) != 0 {
		t.Fatalf("skip round: %+v, %v", rep, err)
	}
	if h := b.snapshot(); h.Skips != skips+1 || h.State != BreakerOpen {
		t.Fatalf("open breaker did not skip: %+v", h)
	}
}

// TestBreakerStalenessBoundForcesTrial: an open breaker whose coasting
// data is beyond the staleness bound (here: no data was ever delivered)
// must trial the child immediately, ignoring the reopen backoff — and a
// successful trial closes the circuit.
func TestBreakerStalenessBoundForcesTrial(t *testing.T) {
	child := &slowChild{}
	pol := &BreakerPolicy{
		RoundDeadline:  2 * time.Millisecond,
		TripAfter:      2,
		ReopenBase:     10 * time.Second,
		ReopenMax:      10 * time.Second,
		StalenessBound: time.Hour,
	}
	b, _ := testBreaker(pol, child, ModeBounded)
	ctx := &paths.Ctx{Thread: "t"}
	req := paths.Request{Kind: paths.OpRead}

	child.block()
	b.Op(ctx, req) // overrun 1
	b.Op(ctx, req) // overrun 2 -> open
	h := b.snapshot()
	if h.State != BreakerOpen || h.HasData {
		t.Fatalf("setup: %+v", h)
	}
	if wait := time.Duration(h.NextTrial - hrtime.Now()); wait < 5*time.Second {
		t.Fatalf("reopen backoff suspiciously near: %v", wait)
	}

	// Release with an empty reply: the pending result is discarded, and
	// with no data to coast on the next round trials the child at once —
	// ten seconds ahead of the scheduled reopen — and closes on success.
	child.set(paths.Reply{}, nil)
	child.release()
	for i := 0; i < 2000 && b.State() != BreakerClosed; i++ {
		if _, err := b.Op(ctx, req); err != nil {
			t.Fatal(err)
		}
		hrtime.SleepOutside(time.Millisecond)
	}
	h = b.snapshot()
	if h.State != BreakerClosed || h.Trips != 1 {
		t.Fatalf("forced trial did not close the breaker: %+v", h)
	}

	// Closed again: fresh data flows normally.
	child.set(paths.Reply{Ret: 1, Data: []byte{9}}, nil)
	rep, err := b.Op(ctx, req)
	if err != nil || len(rep.Data) != 1 {
		t.Fatalf("post-recovery op: %+v, %v", rep, err)
	}
	if h := b.snapshot(); !h.HasData || h.Overruns != 0 {
		t.Fatalf("post-recovery accounting: %+v", h)
	}
}

// TestBreakerReopenBackoffDoubles pins the open-state backoff schedule:
// doubling per trip, capped, with the deterministic jitter drawing the
// next trial inside (0, wait].
func TestBreakerReopenBackoffDoubles(t *testing.T) {
	child := &slowChild{}
	pol := &BreakerPolicy{ReopenBase: 2 * time.Millisecond, ReopenMax: 5 * time.Millisecond}
	b, _ := testBreaker(pol, child, ModeBounded)
	now := hrtime.Now()

	waits := make([]time.Duration, 0, 3)
	trial := make([]time.Duration, 0, 3)
	for i := 0; i < 3; i++ {
		b.mu.Lock()
		if i > 0 {
			b.state = BreakerHalfOpen // a failed trial re-trips immediately
			b.overrunLocked(now)
		} else {
			b.tripLocked(now)
		}
		waits = append(waits, b.reopenWait)
		trial = append(trial, time.Duration(b.nextTrial-now))
		if b.state != BreakerOpen {
			t.Fatalf("trip %d: state %v", i, b.state)
		}
		b.mu.Unlock()
	}
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 5 * time.Millisecond}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("reopen wait %d = %v, want %v", i, waits[i], want[i])
		}
		if trial[i] < want[i]/2 || trial[i] >= want[i] {
			t.Fatalf("trial wait %d = %v outside jitter window [%v, %v)", i, trial[i], want[i]/2, want[i])
		}
	}
	if h := b.snapshot(); h.Trips != 3 {
		t.Fatalf("trips = %d", h.Trips)
	}
}

// TestBreakerGuardCoupling: guard death opens the breaker without waiting
// for deadline overruns; guard recovery closes it.
func TestBreakerGuardCoupling(t *testing.T) {
	child := &slowChild{}
	b, _ := testBreaker(&BreakerPolicy{}, child, ModeBounded)

	b.onGuardTransition(Transition{To: Dead, At: hrtime.Now()})
	if h := b.snapshot(); h.State != BreakerOpen || h.Trips != 1 {
		t.Fatalf("after guard death: %+v", h)
	}
	// A second death report is a no-op while already open.
	b.onGuardTransition(Transition{To: Dead, At: hrtime.Now()})
	if h := b.snapshot(); h.Trips != 1 {
		t.Fatalf("re-tripped while open: %+v", h)
	}
	b.onGuardTransition(Transition{To: Alive, At: hrtime.Now()})
	if h := b.snapshot(); h.State != BreakerClosed || h.Overruns != 0 {
		t.Fatalf("after guard recovery: %+v", h)
	}
}

// openCoastingBreaker builds a breaker parked on the decision hot path:
// open, coasting on fresh data, next trial far away — every Op skips.
func openCoastingBreaker() *breaker {
	child := &slowChild{}
	pol := &BreakerPolicy{StalenessBound: time.Hour}
	b, _ := testBreaker(pol, child, ModeBounded)
	b.noteSuccess(hrtime.Now(), 1)
	b.onGuardTransition(Transition{To: Dead, At: hrtime.Now() + hrtime.Stamp(time.Hour)})
	return b
}

// TestBreakerDecisionZeroAlloc is the breaker-decision allocation gate:
// the skip path — the decision every gather round makes for every open
// breaker — must not allocate.
func TestBreakerDecisionZeroAlloc(t *testing.T) {
	b := openCoastingBreaker()
	ctx := &paths.Ctx{Thread: "t"}
	req := paths.Request{Kind: paths.OpRead}
	allocs := testing.AllocsPerRun(1000, func() {
		rep, err := b.Op(ctx, req)
		if err != nil || len(rep.Data) != 0 {
			panic("skip path returned data")
		}
	})
	if allocs != 0 {
		t.Fatalf("breaker decision allocates %.1f allocs/op, want 0", allocs)
	}
	if h := b.snapshot(); h.State != BreakerOpen || h.Skips == 0 {
		t.Fatalf("hot path not exercised: %+v", h)
	}
}

func BenchmarkBreakerDecision(b *testing.B) {
	br := openCoastingBreaker()
	ctx := &paths.Ctx{Thread: "t"}
	req := paths.Request{Kind: paths.OpRead}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Op(ctx, req)
	}
}

// stormResult is one straggler-storm run's evidence.
type stormResult struct {
	durs []time.Duration // per-round pull durations (modelled time)
	cov  Coverage
	brs  []BreakerHealth
	now  hrtime.Stamp // when cov/brs were snapshotted
}

// runStragglerStorm drives a 5-host scope under the virtual clock with a
// seeded FaultSlow storm on h1 and h3, pulling round by round in the
// given mode, and returns the timing and coverage evidence.
func runStragglerStorm(t *testing.T, seed uint64, mode Mode, rounds int) stormResult {
	t.Helper()
	vclock.Enable(0)
	defer vclock.Disable()
	defer vclock.Quiesce(10 * time.Second)

	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	fe, err := n.AddStandaloneHost("fe", 4)
	if err != nil {
		t.Fatal(err)
	}
	const nhosts = 5
	sources := make([]Source, nhosts)
	elems := make([]*pastset.Element, nhosts)
	for i := 0; i < nhosts; i++ {
		h, err := n.AddStandaloneHost(fmt.Sprintf("h%d", i), 2)
		if err != nil {
			t.Fatal(err)
		}
		elems[i] = pastset.MustNewElement(fmt.Sprintf("trace%d", i), 4096)
		sources[i] = Source{Host: h, Elem: elems[i], RecSize: 16}
	}

	pol := &BreakerPolicy{
		RoundDeadline:  time.Millisecond,
		TripAfter:      2,
		ReopenBase:     2 * time.Millisecond,
		ReopenMax:      8 * time.Millisecond,
		StalenessBound: 25 * time.Millisecond,
	}
	scope, err := Build(n, Spec{
		Name:        "storm",
		FrontEnd:    fe,
		RootHelpers: nhosts,
		Sources:     sources,
		Health:      &HealthPolicy{},
		Breaker:     pol,
		Mode:        mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()

	// Factor 80: each message served by a slowed host takes an extra
	// (80-1) x 62µs x [0.5,1.5) ≈ 2.4–7.3ms — far beyond the 1ms round
	// deadline, while healthy round trips stay near 300µs.
	n.InjectFaults(vnet.FaultPlan{Seed: seed, Events: []vnet.FaultEvent{
		{At: 0, Kind: vnet.FaultSlow, Host: "h1", Factor: 80},
		{At: 0, Kind: vnet.FaultSlow, Host: "h3", Factor: 80},
	}})
	defer n.ClearFaults()

	res := stormResult{durs: make([]time.Duration, 0, rounds)}
	for r := 0; r < rounds; r++ {
		for _, e := range elems {
			rec := make([]byte, 16)
			rec[0] = byte(r)
			if _, err := e.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		ch := make(chan time.Duration, 1)
		vclock.Go(func() {
			ctx := &paths.Ctx{Thread: "storm/driver"}
			start := hrtime.Now()
			if _, err := scope.Pull(ctx); err != nil {
				t.Errorf("round %d pull: %v", r, err)
			}
			d := time.Duration(hrtime.Since(start))
			hrtime.Sleep(500 * time.Microsecond) // inter-round interval
			ch <- d
		})
		res.durs = append(res.durs, <-ch)
	}
	res.cov = scope.Coverage()
	res.brs = scope.Breakers()
	res.now = hrtime.Now()
	return res
}

func minmax(durs []time.Duration) (min, max time.Duration) {
	min, max = durs[0], durs[0]
	for _, d := range durs {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return
}

// TestStragglerStormBoundedStaleness is the chaos e2e of the degradation
// ladder: under a seeded FaultSlow storm on two of five children,
// bounded-staleness mode keeps every gather round within the configured
// deadline (stragglers are cut, tripped, and served stale within the
// staleness bound, with Coverage naming them), while strict mode on the
// same seed demonstrably stalls on every round.
func TestStragglerStormBoundedStaleness(t *testing.T) {
	slow := map[string]bool{"h1": true, "h3": true}
	for _, seed := range []uint64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			bounded := runStragglerStorm(t, seed, ModeBounded, 30)
			strict := runStragglerStorm(t, seed, ModeStrict, 6)

			// Bounded-staleness rounds stay within 2x the 1ms deadline
			// (the deadline plus healthy gather overhead) — every round,
			// from the first storm round on.
			_, bMax := minmax(bounded.durs)
			if lim := 2 * time.Millisecond; bMax > lim {
				t.Errorf("bounded round reached %v > %v", bMax, lim)
			}
			// Strict mode on the same seed waits out every straggler.
			sMin, _ := minmax(strict.durs)
			if floor := 2 * time.Millisecond; sMin < floor {
				t.Errorf("strict round took only %v — expected a stall >= %v", sMin, floor)
			}
			if sMin < 2*bMax {
				t.Errorf("strict rounds (min %v) not demonstrably slower than bounded (max %v)", sMin, bMax)
			}

			// Coverage: the slow children are reported as stale or
			// skipped — never missing (slowness is not death) — and the
			// healthy children are neither.
			cov := bounded.cov
			if len(cov.Missing) != 0 || cov.Reporting != cov.Expected {
				t.Errorf("coverage lost hosts: %+v", cov)
			}
			degraded := append(append([]string(nil), cov.Stale...), cov.Skipped...)
			if len(degraded) != len(slow) {
				t.Errorf("degraded hosts %v, want %v", degraded, slow)
			}
			for _, h := range degraded {
				if !slow[h] {
					t.Errorf("healthy host %s reported degraded (stale %v skipped %v)", h, cov.Stale, cov.Skipped)
				}
			}
			if cov.Bound != polStalenessBound {
				t.Errorf("coverage bound %v, want %v", cov.Bound, polStalenessBound)
			}

			// Breakers: the slow children's breakers tripped and served
			// stale data whose age never exceeds the staleness bound;
			// the healthy children's breakers never left closed.
			for _, bh := range bounded.brs {
				if slow[bh.Target] {
					if bh.Trips == 0 || bh.State == BreakerClosed {
						t.Errorf("slow child %s breaker never tripped: %+v", bh.Target, bh)
					}
					if bh.Stale == 0 || !bh.HasData {
						t.Errorf("slow child %s delivered no stale data: %+v", bh.Target, bh)
					}
					if age := time.Duration(bounded.now - bh.LastData); age > polStalenessBound {
						t.Errorf("slow child %s staleness %v exceeds bound %v", bh.Target, age, polStalenessBound)
					}
				} else if bh.State != BreakerClosed || bh.Trips != 0 {
					t.Errorf("healthy child %s breaker degraded: %+v", bh.Target, bh)
				}
			}

			// Strict mode leaves the ladder untouched: no breaker state,
			// no stale/skipped classification.
			if len(strict.cov.Stale) != 0 || len(strict.cov.Skipped) != 0 {
				t.Errorf("strict coverage degraded: %+v", strict.cov)
			}
			for _, bh := range strict.brs {
				if bh.State != BreakerClosed || bh.TotalOverruns != 0 {
					t.Errorf("strict mode engaged breaker %s: %+v", bh.Target, bh)
				}
			}
		})
	}
}

// polStalenessBound mirrors runStragglerStorm's policy for assertions.
const polStalenessBound = 25 * time.Millisecond
