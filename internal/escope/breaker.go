// Straggler circuit breakers and the degradation-mode ladder. Health
// guards (health.go) handle children that *fail*; a child that merely
// answers slowly never faults, so a single straggler host stalls every
// gather round — the monitor's accuracy silently dies with its latency.
// A breaker wraps each guarded child with a per-round deadline: a call
// that overruns is abandoned (it keeps running in the background and its
// late result is delivered as *stale* data on a later round), and a
// child that overruns repeatedly trips the breaker open — rounds skip it
// entirely, coasting on its last data while that data is younger than
// the configured staleness bound. Guard transitions drive the breaker
// too: a child declared dead opens its breaker immediately, and a
// recovery closes it.
//
// The breaker is active only in the bounded-staleness and summary-only
// rungs of a scope's mode ladder (ModeStrict leaves gathers untouched,
// exactly the paper's behaviour). Mode transitions are first-class
// events: the scope logs them and hands them to a hook so the trace
// archive records them as control tuples — replaying an archive
// reproduces a degraded run byte-identically, mode changes included.
package escope

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/paths"
	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// Mode is a rung of a scope's degradation ladder.
type Mode int32

const (
	// ModeStrict is full-fidelity monitoring: every gather round waits
	// for every child, however slow (the paper's behaviour).
	ModeStrict Mode = iota
	// ModeBounded is bounded-staleness monitoring: rounds are bounded by
	// the breaker deadline, slow children are skipped and served stale
	// within the policy's staleness bound.
	ModeBounded
	// ModeSummary is summary-only monitoring: bounded-staleness gathers
	// plus payload shedding at the monitor's ingest queue — only
	// aggregate counts survive. The cheapest rung; the monitor stays
	// alive under overload it could not otherwise absorb.
	ModeSummary
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeStrict:
		return "strict"
	case ModeBounded:
		return "bounded-staleness"
	case ModeSummary:
		return "summary-only"
	}
	return fmt.Sprintf("Mode(%d)", int32(m))
}

// ModeChange is one degradation-ladder transition of a scope. Stamps are
// modelled time and Seq is a dense per-scope sequence, so a run's mode
// history is deterministic and replayable.
type ModeChange struct {
	Scope    string
	From, To Mode
	Seq      uint32
	At       hrtime.Stamp
}

// BreakerPolicy configures the per-child straggler circuit breakers of a
// scope. It only takes effect together with a HealthPolicy (breakers
// build on guards) and outside ModeStrict.
type BreakerPolicy struct {
	// RoundDeadline bounds each guarded child call per gather round; a
	// call still running at the deadline is abandoned (delivered stale
	// later) and counts as an overrun. 0 means 1ms.
	RoundDeadline time.Duration
	// TripAfter is the number of consecutive overruns that trips the
	// breaker open. 0 means 2.
	TripAfter int
	// ReopenBase is the wait before an open breaker's first half-open
	// trial; each failed trial doubles it. 0 means 2ms.
	ReopenBase time.Duration
	// ReopenMax caps the reopen wait. 0 means 50ms.
	ReopenMax time.Duration
	// StalenessBound is how old a skipped child's last delivered data may
	// grow before the breaker forces a trial regardless of the reopen
	// backoff — the bound Coverage reports against. 0 means 20ms.
	StalenessBound time.Duration
}

func (p *BreakerPolicy) roundDeadline() time.Duration {
	if p.RoundDeadline > 0 {
		return p.RoundDeadline
	}
	return time.Millisecond
}

func (p *BreakerPolicy) tripAfter() int {
	if p.TripAfter > 0 {
		return p.TripAfter
	}
	return 2
}

func (p *BreakerPolicy) reopenBase() time.Duration {
	if p.ReopenBase > 0 {
		return p.ReopenBase
	}
	return 2 * time.Millisecond
}

func (p *BreakerPolicy) reopenMax() time.Duration {
	if p.ReopenMax > 0 {
		return p.ReopenMax
	}
	return 50 * time.Millisecond
}

func (p *BreakerPolicy) stalenessBound() time.Duration {
	if p.StalenessBound > 0 {
		return p.StalenessBound
	}
	return 20 * time.Millisecond
}

// BreakerState is a circuit breaker's state.
type BreakerState int

const (
	// BreakerClosed: calls flow normally (deadline-bounded).
	BreakerClosed BreakerState = iota
	// BreakerOpen: the child is skipped; rounds coast on its stale data.
	BreakerOpen
	// BreakerHalfOpen: one trial call is probing whether the child
	// recovered.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerHealth is a point-in-time snapshot of one child's breaker.
type BreakerHealth struct {
	Name     string // breaker's wrapper name
	Target   string // host (or gateway) the guarded link leads to
	State    BreakerState
	Overruns int          // consecutive deadline overruns
	LastData hrtime.Stamp // stamp of the last data delivered (fresh or stale)
	HasData  bool         // whether any data was ever delivered
	Pending  bool         // an abandoned call is still running
	NextTrial hrtime.Stamp
	TotalOverruns uint64
	Trips         uint64 // times the breaker opened
	Skips         uint64 // rounds that skipped the child entirely
	Stale         uint64 // late results delivered as stale data
}

// errRoundDeadline is the timer goroutine's losing fire; it never
// escapes the breaker.
var errRoundDeadline = errors.New("escope: gather round deadline")

// inflight is one deadline-raced child call. The call goroutine stores
// its result and fires the event; the timer goroutine fires the same
// event at the deadline (first fire wins, so the caller wakes at
// whichever comes sooner and checks done to tell them apart).
type inflight struct {
	ev *vclock.Event

	mu   sync.Mutex
	done bool
	rep  paths.Reply
	err  error
	at   hrtime.Stamp // completion stamp
}

func (fl *inflight) result() (rep paths.Reply, err error, at hrtime.Stamp, done bool) {
	fl.mu.Lock()
	rep, err, at, done = fl.rep, fl.err, fl.at, fl.done
	fl.mu.Unlock()
	return
}

// breaker wraps a guarded child with the per-round deadline and the
// closed → open → half-open circuit. It implements paths.Wrapper and is
// inert (pure pass-through) while its scope is in ModeStrict.
type breaker struct {
	name   string
	host   *vnet.Host // the gathering side's host
	target string
	child  paths.Wrapper // the health guard
	pol    *BreakerPolicy
	mode   *atomic.Int32 // the owning scope's mode

	// seed/step drive the deterministic reopen-wait jitter, mirroring
	// the guards' probe jitter.
	seed uint64

	mu         sync.Mutex
	state      BreakerState
	overruns   int // consecutive
	reopenWait time.Duration
	nextTrial  hrtime.Stamp
	step       uint64
	pending    *inflight
	lastData   hrtime.Stamp
	hasData    bool
	trips      uint64
	totOverruns uint64

	skips  atomic.Uint64
	stales atomic.Uint64

	// Optional self-metrics (nil-safe).
	op        *metrics.Op
	mTrips    *metrics.Counter
	mOverruns *metrics.Counter
	mSkips    *metrics.Counter
	mStales   *metrics.Counter
}

func newBreaker(name, target string, host *vnet.Host, child paths.Wrapper, pol *BreakerPolicy, mode *atomic.Int32) *breaker {
	return &breaker{
		name:   name,
		host:   host,
		target: target,
		child:  child,
		pol:    pol,
		mode:   mode,
		seed:   hashName(name),
	}
}

func (b *breaker) Name() string     { return b.name }
func (b *breaker) Host() *vnet.Host { return b.host }

// Op runs one gather round's visit of the child. In ModeStrict it
// forwards untouched. Otherwise: a late result from a previously
// abandoned call is delivered as stale data; an open breaker skips the
// child (while its data is within the staleness bound and a trial is not
// due); an admitted call races the round deadline.
func (b *breaker) Op(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
	if Mode(b.mode.Load()) == ModeStrict {
		return b.child.Op(ctx, req)
	}
	now := hrtime.Now()
	if rep, handled := b.consumePending(now); handled {
		return rep, nil
	}
	if !b.admit(now) {
		b.skips.Add(1)
		b.mSkips.Inc()
		return paths.Reply{}, nil
	}
	start := hrtime.Now()
	rep, err, timedOut := b.timedCall(ctx, req)
	b.op.Record(hrtime.Since(start), len(rep.Data), err)
	if timedOut {
		b.noteOverrun(now)
		return paths.Reply{}, nil
	}
	// The child answered within the deadline: the circuit is healthy,
	// whatever the answer was (transport faults were already absorbed by
	// the guard underneath; a residual error is an application error and
	// passes through).
	b.noteSuccess(hrtime.Now(), len(rep.Data))
	return rep, err
}

// consumePending checks the abandoned call from an earlier round. A call
// still running counts as another overrun and the round skips the child;
// a completed call with data is delivered (stale); a completed empty or
// failed call is discarded and the round proceeds normally.
//
//lint:hotpath tripped-breaker skip path; must not allocate while coasting on stale data
func (b *breaker) consumePending(now hrtime.Stamp) (paths.Reply, bool) {
	b.mu.Lock()
	fl := b.pending
	if fl == nil {
		b.mu.Unlock()
		return paths.Reply{}, false
	}
	rep, err, at, done := fl.result()
	if !done {
		// Still outstanding: only one call may be in flight per child,
		// so this round skips it — and the continued silence is another
		// overrun against the trip threshold.
		b.overrunLocked(now)
		b.mu.Unlock()
		b.skips.Add(1)
		b.mSkips.Inc()
		return paths.Reply{}, true
	}
	b.pending = nil
	if err == nil && len(rep.Data) > 0 {
		b.lastData = at
		b.hasData = true
		b.mu.Unlock()
		b.stales.Add(1)
		b.mStales.Inc()
		return rep, true
	}
	b.mu.Unlock()
	return paths.Reply{}, false
}

// admit decides whether this round's call reaches the child. Caller does
// NOT hold b.mu. The skip path is allocation-free — it is the breaker
// decision hot path.
//
//lint:hotpath breaker skip decision runs once per child per round
func (b *breaker) admit(now hrtime.Stamp) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return true
	}
	// Open: coast on stale data while it is within the bound and the
	// reopen backoff has not elapsed; data older than the bound forces a
	// trial immediately — staleness stays bounded by construction.
	withinBound := b.hasData && now-b.lastData <= hrtime.Stamp(b.pol.stalenessBound())
	if withinBound && now < b.nextTrial {
		return false
	}
	b.state = BreakerHalfOpen
	return true
}

// timedCall races the child call against the round deadline. On timeout
// the call keeps running in the background and is parked as pending.
func (b *breaker) timedCall(ctx *paths.Ctx, req paths.Request) (paths.Reply, error, bool) {
	fl := &inflight{ev: vclock.NewEvent()}
	child := b.child
	bgCtx := &paths.Ctx{Thread: ctx.Thread}
	vclock.Go(func() {
		rep, err := child.Op(bgCtx, req)
		fl.mu.Lock()
		fl.rep, fl.err, fl.at, fl.done = rep, err, hrtime.Now(), true
		fl.mu.Unlock()
		fl.ev.Fire(nil, nil)
	})
	deadline := b.pol.roundDeadline()
	vclock.Go(func() {
		hrtime.Sleep(deadline)
		fl.ev.Fire(nil, errRoundDeadline)
	})
	_, _ = fl.ev.Wait()
	rep, err, _, done := fl.result()
	if done {
		return rep, err, false
	}
	b.mu.Lock()
	b.pending = fl
	b.mu.Unlock()
	return paths.Reply{}, nil, true
}

// overrunLocked records one consecutive overrun and trips the breaker
// when warranted. Caller holds b.mu.
func (b *breaker) overrunLocked(now hrtime.Stamp) {
	b.overruns++
	b.totOverruns++
	b.mOverruns.Inc()
	trip := false
	switch b.state {
	case BreakerHalfOpen:
		trip = true // a failed trial reopens immediately
	case BreakerClosed:
		trip = b.overruns >= b.pol.tripAfter()
	}
	if trip {
		b.tripLocked(now)
	}
}

// tripLocked opens the breaker and schedules the next half-open trial
// with doubling, deterministically jittered backoff. Caller holds b.mu.
func (b *breaker) tripLocked(now hrtime.Stamp) {
	b.state = BreakerOpen
	if b.reopenWait <= 0 {
		b.reopenWait = b.pol.reopenBase()
	} else if next := b.reopenWait * 2; next <= b.pol.reopenMax() {
		b.reopenWait = next
	} else {
		b.reopenWait = b.pol.reopenMax()
	}
	b.step++
	b.nextTrial = now + hrtime.Stamp(paths.Jitter(b.seed, b.step, b.reopenWait))
	b.trips++
	b.mTrips.Inc()
}

func (b *breaker) noteOverrun(now hrtime.Stamp) {
	b.mu.Lock()
	b.overrunLocked(now)
	b.mu.Unlock()
}

func (b *breaker) noteSuccess(now hrtime.Stamp, ndata int) {
	b.mu.Lock()
	b.state = BreakerClosed
	b.overruns = 0
	b.reopenWait = 0
	if ndata > 0 {
		b.lastData = now
		b.hasData = true
	}
	b.mu.Unlock()
}

// onGuardTransition couples the breaker to the health state machine
// underneath it: a child declared dead opens the breaker without waiting
// for deadline overruns, and a recovery closes it. Runs outside the
// guard's lock (guard.fire) and takes only b.mu.
func (b *breaker) onGuardTransition(tr Transition) {
	switch tr.To {
	case Dead:
		b.mu.Lock()
		if b.state != BreakerOpen {
			b.tripLocked(tr.At)
		}
		b.mu.Unlock()
	case Alive:
		b.mu.Lock()
		b.state = BreakerClosed
		b.overruns = 0
		b.reopenWait = 0
		b.mu.Unlock()
	}
}

// State returns the breaker's current state.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *breaker) snapshot() BreakerHealth {
	b.mu.Lock()
	h := BreakerHealth{
		Name:          b.name,
		Target:        b.target,
		State:         b.state,
		Overruns:      b.overruns,
		LastData:      b.lastData,
		HasData:       b.hasData,
		Pending:       b.pending != nil,
		NextTrial:     b.nextTrial,
		TotalOverruns: b.totOverruns,
		Trips:         b.trips,
	}
	b.mu.Unlock()
	h.Skips = b.skips.Load()
	h.Stale = b.stales.Load()
	return h
}

var _ paths.Wrapper = (*breaker)(nil)
