package escope

//lint:file-allow wallclock tests poll real goroutine progress against wall-clock deadlines

import (
	"sync"
	"testing"
	"time"

	"eventspace/internal/hrtime"
	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vnet"
)

// rig is a two-cluster testbed with a front-end.
type rig struct {
	net *vnet.Network
	c1  *vnet.Cluster
	c2  *vnet.Cluster
	fe  *vnet.Host
}

func newRig(t *testing.T) *rig {
	t.Helper()
	old := hrtime.Scale()
	hrtime.SetScale(0.005)
	t.Cleanup(func() { hrtime.SetScale(old) })
	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	c1, err := n.AddCluster("a", "s1", 3, 2, vnet.GigabitEthernet)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := n.AddCluster("b", "s1", 2, 2, vnet.GigabitEthernet)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := n.AddStandaloneHost("fe", 2)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{net: n, c1: c1, c2: c2, fe: fe}
}

func fill(t *testing.T, e *pastset.Element, recs ...[]byte) {
	t.Helper()
	for _, r := range recs {
		if _, err := e.Write(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	r := newRig(t)
	if _, err := Build(r.net, Spec{Name: "s", Sources: []Source{{}}}); err == nil {
		t.Fatal("nil front-end accepted")
	}
	if _, err := Build(r.net, Spec{Name: "s", FrontEnd: r.fe}); err == nil {
		t.Fatal("no sources accepted")
	}
	if _, err := Build(r.net, Spec{Name: "s", FrontEnd: r.fe, Sources: []Source{{}}}); err == nil {
		t.Fatal("incomplete source accepted")
	}
	e := pastset.MustNewElement("x", 4)
	if _, err := Build(r.net, Spec{Name: "s", FrontEnd: r.fe, Sources: []Source{
		{Host: r.c1.Hosts()[0], Elem: e, RecSize: 0},
	}}); err == nil {
		t.Fatal("bad record size accepted")
	}
}

func TestSingleClusterScopePullsAllTuples(t *testing.T) {
	r := newRig(t)
	h0, h1 := r.c1.Hosts()[0], r.c1.Hosts()[1]
	e0 := pastset.MustNewElement("t0", 16)
	e1 := pastset.MustNewElement("t1", 16)
	fill(t, e0, []byte{1, 1}, []byte{1, 2})
	fill(t, e1, []byte{2, 1})
	scope, err := Build(r.net, Spec{
		Name:     "lb",
		FrontEnd: r.fe,
		Sources: []Source{
			{Host: h0, Elem: e0, RecSize: 2},
			{Host: h1, Elem: e1, RecSize: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()
	rep, err := scope.Pull(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ret != 3 || len(rep.Data) != 6 {
		t.Fatalf("pull: ret=%d len=%d", rep.Ret, len(rep.Data))
	}
	// Child order: host order of sources.
	want := []byte{1, 1, 1, 2, 2, 1}
	for i := range want {
		if rep.Data[i] != want[i] {
			t.Fatalf("data = % x, want % x", rep.Data, want)
		}
	}
	if scope.GatherRate() != 1 {
		t.Fatalf("GatherRate = %v", scope.GatherRate())
	}
	if scope.Pulls() != 1 {
		t.Fatalf("Pulls = %d", scope.Pulls())
	}
	if scope.Name() != "lb" || scope.Root() == nil || len(scope.Readers()) != 2 {
		t.Fatal("accessors wrong")
	}
}

func TestMultiClusterScopeGathersThroughGateways(t *testing.T) {
	r := newRig(t)
	srcs := []Source{
		{Host: r.c1.Hosts()[0], Elem: pastset.MustNewElement("a0", 8), RecSize: 1},
		{Host: r.c1.Hosts()[2], Elem: pastset.MustNewElement("a2", 8), RecSize: 1},
		{Host: r.c2.Hosts()[1], Elem: pastset.MustNewElement("b1", 8), RecSize: 1},
	}
	fill(t, srcs[0].Elem, []byte{10})
	fill(t, srcs[1].Elem, []byte{11})
	fill(t, srcs[2].Elem, []byte{20})
	scope, err := Build(r.net, Spec{Name: "mc", FrontEnd: r.fe, Sources: srcs, GatewayHelpers: 2, RootHelpers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()
	rep, err := scope.Pull(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ret != 3 {
		t.Fatalf("ret = %d", rep.Ret)
	}
	got := map[byte]bool{}
	for _, b := range rep.Data {
		got[b] = true
	}
	if !got[10] || !got[11] || !got[20] {
		t.Fatalf("data = % x", rep.Data)
	}
}

func TestScopeWithSourceOnGatewayAndFrontEnd(t *testing.T) {
	r := newRig(t)
	gwElem := pastset.MustNewElement("gw", 8)
	feElem := pastset.MustNewElement("fe", 8)
	fill(t, gwElem, []byte{7})
	fill(t, feElem, []byte{9})
	scope, err := Build(r.net, Spec{
		Name:     "edge",
		FrontEnd: r.fe,
		Sources: []Source{
			{Host: r.c1.Gateway(), Elem: gwElem, RecSize: 1},
			{Host: r.fe, Elem: feElem, RecSize: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()
	rep, err := scope.Pull(nil)
	if err != nil || rep.Ret != 2 {
		t.Fatalf("pull: %+v %v", rep, err)
	}
}

func TestScopeTransformRunsAtSource(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	e := pastset.MustNewElement("t", 16)
	fill(t, e, []byte{3}, []byte{9}, []byte{5})
	// Reduce at the source: keep only the max record.
	scope, err := Build(r.net, Spec{
		Name:     "red",
		FrontEnd: r.fe,
		Sources: []Source{{
			Host: h, Elem: e, RecSize: 1,
			Transform: func(rep paths.Reply) (paths.Reply, error) {
				var best byte
				for _, b := range rep.Data {
					if b > best {
						best = b
					}
				}
				if len(rep.Data) == 0 {
					return paths.Reply{}, nil
				}
				return paths.Reply{Data: []byte{best}, Ret: 1}, nil
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()
	rep, err := scope.Pull(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Data) != 1 || rep.Data[0] != 9 {
		t.Fatalf("reduced pull = % x", rep.Data)
	}
}

func TestGatherRateReflectsOverwrites(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	e := pastset.MustNewElement("t", 2) // tiny: will overwrite
	scope, err := Build(r.net, Spec{
		Name:     "slow",
		FrontEnd: r.fe,
		Sources:  []Source{{Host: h, Elem: e, RecSize: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()
	for i := 0; i < 10; i++ {
		e.Write([]byte{byte(i)})
	}
	if _, err := scope.Pull(nil); err != nil {
		t.Fatal(err)
	}
	// 8 of 10 overwritten before the cursor saw them.
	if got := scope.GatherRate(); got != 0.2 {
		t.Fatalf("GatherRate = %v, want 0.2", got)
	}
}

func TestPullerDrainsContinuously(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	e := pastset.MustNewElement("t", 1024)
	scope, err := Build(r.net, Spec{
		Name:     "drain",
		FrontEnd: r.fe,
		Sources:  []Source{{Host: h, Elem: e, RecSize: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()
	var mu sync.Mutex
	var got []byte
	p := scope.StartPuller(0, func(rep paths.Reply) error {
		mu.Lock()
		got = append(got, rep.Data...)
		mu.Unlock()
		return nil
	})
	for i := 0; i < 50; i++ {
		e.Write([]byte{byte(i)})
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("puller drained %d of 50 tuples", n)
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
	if p.Pulls() == 0 {
		t.Fatal("no pulls counted")
	}
	for i := 0; i < 50; i++ {
		if got[i] != byte(i) {
			t.Fatalf("tuple %d = %d", i, got[i])
		}
	}
}

func TestPullerCountsErrors(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	e := pastset.MustNewElement("t", 8)
	scope, err := Build(r.net, Spec{
		Name:     "err",
		FrontEnd: r.fe,
		Sources:  []Source{{Host: h, Elem: e, RecSize: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Closing the scope's connections makes pulls fail.
	scope.Close()
	p := scope.StartPuller(time.Millisecond, nil)
	deadline := time.Now().Add(5 * time.Second)
	for p.Errors() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no errors counted after close")
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
}

func TestEmptyScopeRateIsOne(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	e := pastset.MustNewElement("t", 8)
	scope, err := Build(r.net, Spec{
		Name:     "empty",
		FrontEnd: r.fe,
		Sources:  []Source{{Host: h, Elem: e, RecSize: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()
	if scope.GatherRate() != 1 {
		t.Fatalf("GatherRate = %v", scope.GatherRate())
	}
}
