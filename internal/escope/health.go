// Per-child health tracking for event-scope gathers. A guard wraps each
// remote child of a gather with an alive → suspect → dead state machine:
// transport faults are absorbed (the gather keeps going with partial
// data) and counted; after enough consecutive faults the child is
// declared dead and skipped, with probe attempts at exponentially
// backed-off intervals so the child rejoins automatically once its host
// heals. Source cursors live on the source hosts and persist across
// outages, so a healed child's first successful pull resumes exactly
// where gathering stopped — the coverage gap closes without losing the
// retained window.
package escope

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/paths"
	"eventspace/internal/vnet"
)

// ChildState is a guarded child's health state.
type ChildState int

const (
	// Alive: the last operation succeeded.
	Alive ChildState = iota
	// Suspect: recent transport faults, but not enough to declare the
	// child dead; every pull still attempts it.
	Suspect
	// Dead: consecutive transport faults reached the policy threshold;
	// the child is skipped except for backed-off probe attempts.
	Dead
)

func (s ChildState) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("ChildState(%d)", int(s))
}

// GuardRole says where in the scope tree a guarded link sits — the
// repair planner treats a dead cluster uplink very differently from a
// dead leaf host.
type GuardRole int

const (
	// RoleLeaf guards a gateway -> compute-host link inside a cluster.
	RoleLeaf GuardRole = iota
	// RoleUplink guards the front-end -> cluster-gateway link; its death
	// orphans the whole cluster.
	RoleUplink
	// RoleDirect guards a front-end -> standalone-host link.
	RoleDirect
)

func (r GuardRole) String() string {
	switch r {
	case RoleLeaf:
		return "leaf"
	case RoleUplink:
		return "uplink"
	case RoleDirect:
		return "direct"
	}
	return fmt.Sprintf("GuardRole(%d)", int(r))
}

// Transition is one guard state change, delivered to the scope's
// transition hook (SetTransitionHook). Stamps are modelled time, so a
// chaos run under the virtual clock emits a deterministic transition
// sequence.
type Transition struct {
	Guard   string // guard name
	Target  string // host (or gateway) the guarded link leads to
	Role    GuardRole
	Cluster string // cluster the link belongs to ("" for direct links)
	From    ChildState
	To      ChildState
	At      hrtime.Stamp
}

// HealthPolicy configures per-child health tracking in a scope.
type HealthPolicy struct {
	// DeadAfter is the number of consecutive transport faults that moves
	// a child from suspect to dead. 0 means 3.
	DeadAfter int
	// ProbeBase is the wait before the first probe of a dead child; each
	// failed probe doubles it. 0 means 2ms.
	ProbeBase time.Duration
	// ProbeMax caps the probe interval. 0 means 50ms.
	ProbeMax time.Duration
}

func (p *HealthPolicy) deadAfter() int {
	if p.DeadAfter > 0 {
		return p.DeadAfter
	}
	return 3
}

func (p *HealthPolicy) probeBase() time.Duration {
	if p.ProbeBase > 0 {
		return p.ProbeBase
	}
	return 2 * time.Millisecond
}

func (p *HealthPolicy) probeMax() time.Duration {
	if p.ProbeMax > 0 {
		return p.ProbeMax
	}
	return 50 * time.Millisecond
}

// ChildHealth is a point-in-time snapshot of one guarded child.
type ChildHealth struct {
	Name       string // guarded child's wrapper name
	Target     string // host (or gateway) the child leads to
	Role       GuardRole
	Cluster    string // cluster the guarded link belongs to ("" for direct)
	State      ChildState
	Fails      int          // consecutive transport faults
	LastOK     hrtime.Stamp // last successful operation
	NextProbe  hrtime.Stamp // next scheduled probe while dead (jittered)
	Proven     bool         // at least one operation ever succeeded
	Skips      uint64       // operations skipped while dead
	Faults     uint64       // total transport faults absorbed
	Recoveries uint64       // dead -> alive transitions
}

// guard wraps a remote child wrapper with health tracking. It implements
// paths.Wrapper; on transport faults it returns an empty reply instead
// of an error so the enclosing gather proceeds with partial coverage.
// Application errors pass through untouched.
type guard struct {
	name    string
	host    *vnet.Host
	target  string
	role    GuardRole
	cluster string
	child   paths.Wrapper
	policy  *HealthPolicy

	// jitterSeed de-correlates this guard's probe schedule from its
	// siblings': a whole cluster dying at once must not produce a
	// synchronized probe storm. probeStep advances per scheduled probe
	// so consecutive waits draw fresh jitter.
	jitterSeed uint64
	probeStep  uint64

	// notify, when set, receives every state transition (after the
	// guard's own lock is released). The scope installs its dispatcher
	// here at build time.
	notify func(Transition)

	// br is the straggler circuit breaker wrapping this guard, when the
	// scope has a BreakerPolicy; Coverage consults it to classify the
	// guarded host as stale or skipped.
	br *breaker

	mu        sync.Mutex
	state     ChildState
	fails     int
	probeWait time.Duration
	nextProbe hrtime.Stamp
	lastOK    hrtime.Stamp
	proven    bool // true once the child has succeeded at least once

	skips      atomic.Uint64
	faults     atomic.Uint64
	recoveries atomic.Uint64

	// Optional per-scope self-metrics counters (nil-safe).
	mFaults     *metrics.Counter
	mDeaths     *metrics.Counter
	mRecoveries *metrics.Counter
}

func newGuard(name, target string, host *vnet.Host, child paths.Wrapper, policy *HealthPolicy) *guard {
	return &guard{
		name:       name,
		host:       host,
		target:     target,
		child:      child,
		policy:     policy,
		jitterSeed: hashName(name),
		lastOK:     hrtime.Now(),
	}
}

// transition builds the event for a state change; caller holds g.mu.
func (g *guard) transitionLocked(from, to ChildState) Transition {
	return Transition{
		Guard:   g.name,
		Target:  g.target,
		Role:    g.role,
		Cluster: g.cluster,
		From:    from,
		To:      to,
		At:      hrtime.Now(),
	}
}

// fire delivers a transition to the scope's dispatcher, outside g.mu.
func (g *guard) fire(tr Transition, changed bool) {
	if changed && g.notify != nil {
		g.notify(tr)
	}
}

func (g *guard) Name() string     { return g.name }
func (g *guard) Host() *vnet.Host { return g.host }

// shouldAttempt decides whether this operation reaches the child: always
// while alive or suspect, only at probe times while dead.
func (g *guard) shouldAttempt() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.state != Dead {
		return true
	}
	now := hrtime.Now()
	if now < g.nextProbe {
		return false
	}
	// Claim this probe slot; concurrent pulls skip until it resolves.
	g.nextProbe = now + hrtime.Stamp(g.jitteredWaitLocked())
	return true
}

func (g *guard) probeWaitLocked() time.Duration {
	if g.probeWait <= 0 {
		g.probeWait = g.policy.probeBase()
	}
	return g.probeWait
}

// jitteredWaitLocked draws the next probe wait: the current backoff wait
// scaled by a deterministic per-guard jitter factor in [0.5, 1.0), a
// fresh draw per probe. Caller holds g.mu.
func (g *guard) jitteredWaitLocked() time.Duration {
	g.probeStep++
	return paths.Jitter(g.jitterSeed, g.probeStep, g.probeWaitLocked())
}

func (g *guard) noteSuccess() {
	g.mu.Lock()
	from := g.state
	recovered := from == Dead
	g.state = Alive
	g.fails = 0
	g.probeWait = 0
	g.lastOK = hrtime.Now()
	g.proven = true
	tr := g.transitionLocked(from, Alive)
	g.mu.Unlock()
	if recovered {
		g.recoveries.Add(1)
		g.mRecoveries.Inc()
	}
	g.fire(tr, from != Alive)
}

func (g *guard) noteFault() {
	g.faults.Add(1)
	g.mFaults.Inc()
	g.mu.Lock()
	from := g.state
	g.fails++
	if g.fails >= g.policy.deadAfter() {
		if g.state != Dead {
			g.mDeaths.Inc()
		}
		g.state = Dead
		g.nextProbe = hrtime.Now() + hrtime.Stamp(g.jitteredWaitLocked())
		if next := g.probeWait * 2; next <= g.policy.probeMax() {
			g.probeWait = next
		} else {
			g.probeWait = g.policy.probeMax()
		}
	} else {
		g.state = Suspect
	}
	to := g.state
	tr := g.transitionLocked(from, to)
	g.mu.Unlock()
	g.fire(tr, from != to)
}

// Op forwards to the child unless it is dead and not due for a probe.
// Transport faults yield an empty reply (partial coverage); application
// errors propagate.
func (g *guard) Op(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
	if !g.shouldAttempt() {
		g.skips.Add(1)
		return paths.Reply{}, nil
	}
	rep, err := g.child.Op(ctx, req)
	if err == nil {
		g.noteSuccess()
		return rep, nil
	}
	if paths.Retryable(err) {
		g.noteFault()
		return paths.Reply{}, nil
	}
	return paths.Reply{}, err
}

// State returns the guard's current health state.
func (g *guard) State() ChildState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state
}

func (g *guard) snapshot() ChildHealth {
	g.mu.Lock()
	h := ChildHealth{
		Name:      g.name,
		Target:    g.target,
		Role:      g.role,
		Cluster:   g.cluster,
		State:     g.state,
		Fails:     g.fails,
		LastOK:    g.lastOK,
		NextProbe: g.nextProbe,
		Proven:    g.proven,
	}
	g.mu.Unlock()
	h.Skips = g.skips.Load()
	h.Faults = g.faults.Load()
	h.Recoveries = g.recoveries.Load()
	return h
}

var _ paths.Wrapper = (*guard)(nil)

// Coverage reports which source hosts a scope is currently hearing from.
type Coverage struct {
	// Expected is the number of distinct source hosts in the scope.
	Expected int
	// Reporting is how many of them have no dead guard on their gather
	// path.
	Reporting int
	// Recovered is how many reporting hosts were cut off at some point
	// in the scope's life (a guard on their path died, or they were
	// repaired onto a new parent) and are reporting again.
	Recovered int
	// Missing names the hosts currently cut off, sorted.
	Missing []string
	// LastHeard maps each source host to the stamp of the last
	// successful gather over its path (hosts whose path was never proven
	// are absent). For a host behind a gateway this is the older of the
	// uplink and leaf link successes — the bottleneck of its path.
	LastHeard map[string]hrtime.Stamp
	// Staleness is the age of the oldest last-successful gather over all
	// guarded paths (zero when the scope has no guards).
	Staleness time.Duration
	// Stale names the hosts currently behind a non-closed circuit
	// breaker whose last delivered data is still within the breaker
	// policy's staleness bound: rounds skip them but the monitor is
	// coasting on data no older than the bound. Sorted.
	Stale []string
	// Skipped names the hosts currently behind an open or half-open
	// breaker with no data within the bound — a coverage gap beyond the
	// staleness contract (like Missing, but driven by slowness rather
	// than death). Sorted.
	Skipped []string
	// Bound is the breaker policy's staleness bound (zero without
	// breakers), for reporting alongside Stale.
	Bound time.Duration
}

// Complete reports full coverage.
func (c Coverage) Complete() bool { return c.Reporting == c.Expected }
