// Package escope builds event scopes: the aggregation/gather networks
// monitors use to pull trace tuples and intermediate results from compute
// hosts to a front-end (section 4).
//
// An event scope is a spanning tree of PATHS wrappers. This package wires
// the hierarchy-aware shape the paper converged on (section 6.2,
// "Scalability"): a batch reader (plus optional data-manipulation
// transform) per source buffer on its compute host, one gather wrapper on
// each cluster's gateway reading the cluster's hosts over per-host
// connections, and a root gather on the monitor front-end reading the
// gateways. Intra-host reduction happens before inter-host gathering, and
// intra-cluster gathering before inter-cluster gathering.
//
// Gather wrappers run sequentially in the pulling thread's context, or in
// parallel with helper threads — the paper's central performance knob
// (sequential vs parallel rows of Tables 1-3).
//
// With a HealthPolicy the tree is also mutable at runtime: the scope
// retains its topology (which member hangs off which gateway), publishes
// guard state transitions through SetTransitionHook, and exposes the
// repair primitives ReparentHost and PromoteGateway that the reconfig
// manager drives when a gateway dies (see repair.go).
package escope

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eventspace/internal/hrtime"
	"eventspace/internal/metrics"
	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vclock"
	"eventspace/internal/vnet"
)

// Source is one buffer an event scope pulls from.
type Source struct {
	Host     *vnet.Host
	Elem     *pastset.Element
	RecSize  int // fixed record size of the buffer's tuples
	BatchCap int // max records per pull; 0 = drain fully
	// Transform, when set, is a data-manipulation stage applied on the
	// source host before the data leaves it — the paper's "data can be
	// reduced or filtered close to the source".
	Transform func(paths.Reply) (paths.Reply, error)
	// Custom, when set, replaces the Elem/RecSize/Transform chain with
	// an arbitrary wrapper on Host (e.g. a per-node reduce over several
	// trace buffers). Readers lists the batch readers underneath it so
	// gather-rate accounting still works.
	Custom  paths.Wrapper
	Readers []*paths.BatchReader
	// FromEnd starts the source's cursor after the newest retained tuple
	// instead of at the oldest: only tuples written after the build are
	// seen. A scope rebuilt during front-end failover sets it so the
	// resumed archive does not duplicate tuples the sealed archive
	// already holds. Ignored for Custom sources.
	FromEnd bool
}

// Spec describes an event scope to build.
type Spec struct {
	Name     string
	FrontEnd *vnet.Host
	// GatewayHelpers is the helper-thread count of each cluster-gateway
	// gather wrapper (0 = sequential gathering).
	GatewayHelpers int
	// RootHelpers is the helper-thread count of the front-end root
	// gather wrapper.
	RootHelpers int
	Sources     []Source
	// Health, when set, wraps every remote child in a health guard:
	// transport faults degrade the gather to partial coverage instead of
	// failing it, dead children are skipped and probed with backoff, and
	// Scope.Coverage reports who is reporting. It also makes the tree
	// repairable: the root is always a mutable gather and the repair
	// primitives work. nil keeps the legacy fail-fast behaviour.
	Health *HealthPolicy
	// Retry, when set, is applied to every remote stub in the scope
	// (with a per-stub deterministic jitter seed) together with a
	// reconnect path, so transient faults are retried before the health
	// guard ever sees them. nil keeps single-attempt stubs.
	Retry *paths.RetryPolicy
	// Breaker, when set (requires Health), wraps every health guard in a
	// straggler circuit breaker: outside ModeStrict each child call is
	// bounded by the policy's round deadline, slow children are skipped
	// and served stale within the staleness bound, and Coverage reports
	// them as Stale/Skipped. nil keeps unbounded gathers.
	Breaker *BreakerPolicy
	// Mode is the scope's initial degradation-ladder rung (ModeStrict
	// when unset). Change it at runtime with SetMode; every change is
	// logged and delivered to the mode hook.
	Mode Mode
	// Metrics, when set, wires every wrapper the build creates (stubs,
	// readers, gathers), the scope's pulls and its pullers into the
	// self-metrics registry. nil disables self-metrics entirely.
	Metrics *metrics.Registry
}

// memberLink is one source host's attachment to its cluster gather.
type memberLink struct {
	host  *vnet.Host
	entry paths.Wrapper // host-local chain below any stub
	child paths.Wrapper // wrapper installed in the cluster gather
	guard *guard        // leaf guard (nil when the member is the gateway itself)
	stub  *paths.Remote // leaf stub (nil when local)
}

// clusterLink is one cluster's subtree: its gather on the (current)
// gateway host, the front-end uplink reading it, and its members.
type clusterLink struct {
	name    string
	gw      *vnet.Host
	gather  *paths.Gather
	uplink  paths.Wrapper // child installed in the root gather
	uguard  *guard
	ustub   *paths.Remote
	members map[string]*memberLink // keyed by host name
}

// Scope is a built event scope.
type Scope struct {
	name    string
	root    paths.Wrapper
	readers []*paths.BatchReader

	net        *vnet.Network
	frontEnd   *vnet.Host
	gwHelpers  int
	health     *HealthPolicy
	retry      *paths.RetryPolicy
	breakerPol *BreakerPolicy

	// Degradation-ladder state: the current mode (read on every breaker
	// decision, hence atomic) and the transition log with its hook.
	mode     atomic.Int32
	modeMu   sync.Mutex
	modeSeq  uint32
	modeLog  []ModeChange
	modeHook func(ModeChange)

	// Connection bookkeeping: the scope tracks exactly the live
	// connections (redial replaces its stub's entry instead of
	// accumulating), and Close is sticky — connections dialled after
	// Close are closed immediately instead of leaking.
	connsMu sync.Mutex
	conns   map[*vnet.Conn]struct{}
	closed  bool

	// Tree state below is mutable at runtime (repair); treeMu guards it.
	treeMu       sync.Mutex
	guards       []*guard
	breakers     []*breaker
	coverPaths   map[string][]*guard // source host name -> guards on its path
	clusters     map[string]*clusterLink
	clusterOrder []string
	rootG        *paths.Gather   // non-nil iff health tracking is on
	everMissing  map[string]bool // hosts that were cut off at some point

	hook atomic.Pointer[func(Transition)]

	pulls atomic.Uint64

	met    *metrics.Registry
	pullOp *metrics.Op
	// Per-scope counters shared by every guard and stub, including the
	// ones repair creates later (all nil-safe when metrics are off).
	cHealthFaults     *metrics.Counter
	cHealthDeaths     *metrics.Counter
	cHealthRecoveries *metrics.Counter
	cStubRetries      *metrics.Counter
	cStubRedials      *metrics.Counter
	cBreakerTrips     *metrics.Counter
	cBreakerOverruns  *metrics.Counter
	cBreakerSkips     *metrics.Counter
	cBreakerStale     *metrics.Counter
}

// addConn tracks a live connection. It reports false — and closes the
// connection — when the scope is already closed.
func (s *Scope) addConn(c *vnet.Conn) bool {
	s.connsMu.Lock()
	if s.closed {
		s.connsMu.Unlock()
		c.Close()
		return false
	}
	s.conns[c] = struct{}{}
	s.connsMu.Unlock()
	return true
}

// dropConn forgets a connection replaced by a redial (the stub closes
// it); keeping it tracked would grow Close's work unboundedly.
func (s *Scope) dropConn(c *vnet.Conn) {
	s.connsMu.Lock()
	delete(s.conns, c)
	s.connsMu.Unlock()
}

// trackedConns reports how many live connections the scope tracks.
func (s *Scope) trackedConns() int {
	s.connsMu.Lock()
	defer s.connsMu.Unlock()
	return len(s.conns)
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// stubTo wires a stub from -> to over a fresh connection, applying the
// scope's retry policy (with a reconnect path) and health guard. The
// returned guard is nil when health tracking is off. Used both at build
// time and by the runtime repair primitives; callers on the repair path
// hold treeMu (guard registration here touches only s.guards via the
// caller).
func (s *Scope) stubTo(label string, from, to *vnet.Host, entry paths.Wrapper, role GuardRole, cluster string) (paths.Wrapper, *guard, *paths.Remote) {
	svc := paths.NewService()
	target := svc.Register(entry)
	conn := s.net.Dial(from, to, svc.Handler())
	s.addConn(conn)
	name := fmt.Sprintf("%s/stub(%s)", s.name, label)
	stub := paths.NewRemote(name, from, conn, target)
	if s.met != nil {
		stub.SetMetrics(&paths.RemoteMetrics{
			Op:      s.met.Op(metrics.KindStub, name),
			Retries: s.cStubRetries,
			Redials: s.cStubRedials,
		})
	}
	if s.retry != nil {
		pol := *s.retry
		if pol.JitterSeed == 0 {
			pol.JitterSeed = hashName(name)
		}
		stub.SetRetry(&pol)
		stub.SetRedial(func(stale vnet.Caller) (vnet.Caller, uint32, error) {
			nc := s.net.Dial(from, to, svc.Handler())
			if !s.addConn(nc) {
				return nil, 0, fmt.Errorf("escope: %s: scope closed", s.name)
			}
			if oc, ok := stale.(*vnet.Conn); ok {
				s.dropConn(oc)
			}
			return nc, target, nil
		})
	}
	if s.health == nil {
		return stub, nil, stub
	}
	g := newGuard(name+"!guard", to.Name(), from, stub, s.health)
	g.role, g.cluster = role, cluster
	g.mFaults, g.mDeaths, g.mRecoveries = s.cHealthFaults, s.cHealthDeaths, s.cHealthRecoveries
	if s.breakerPol == nil {
		g.notify = func(tr Transition) { s.dispatch(g, tr) }
		return g, g, stub
	}
	// Breaker -> guard -> stub: the breaker bounds each round's wait on
	// the child, the guard underneath absorbs transport faults. Guard
	// transitions drive the breaker before fanning out to the scope's
	// hook. The breaker registers itself here (Build runs
	// single-threaded; repair callers hold treeMu) so the repair
	// primitives get breakers on rebuilt links for free.
	br := newBreaker(name+"!breaker", to.Name(), from, g, s.breakerPol, &s.mode)
	g.br = br
	br.op = s.met.Op(metrics.KindBreaker, br.name)
	br.mTrips, br.mOverruns = s.cBreakerTrips, s.cBreakerOverruns
	br.mSkips, br.mStales = s.cBreakerSkips, s.cBreakerStale
	g.notify = func(tr Transition) {
		br.onGuardTransition(tr)
		s.dispatch(g, tr)
	}
	s.breakers = append(s.breakers, br)
	return br, g, stub
}

// dispatch fans a guard transition out: hosts whose cover path includes
// the now-dead guard are marked as having been missing (feeding
// Coverage.Recovered), then the installed hook — the reconfig manager's
// event queue — receives the transition.
func (s *Scope) dispatch(g *guard, tr Transition) {
	if tr.To == Dead {
		s.treeMu.Lock()
		for host, path := range s.coverPaths {
			for _, pg := range path {
				if pg == g {
					s.everMissing[host] = true
					break
				}
			}
		}
		s.treeMu.Unlock()
	}
	if h := s.hook.Load(); h != nil {
		(*h)(tr)
	}
}

// SetTransitionHook installs (or, with nil, removes) the function that
// receives every guard state transition. The hook runs in the pulling
// goroutine's context and must not block; the reconfig manager pushes
// into a clock-aware queue.
func (s *Scope) SetTransitionHook(fn func(Transition)) {
	if fn == nil {
		s.hook.Store(nil)
		return
	}
	s.hook.Store(&fn)
}

// instrumentGather wires a gather into the self-metrics registry (no-op
// when metrics are off).
func (s *Scope) instrumentGather(g *paths.Gather, err error) (*paths.Gather, error) {
	if err == nil && s.met != nil {
		g.SetMetrics(s.met.Op(metrics.KindGather, g.Name()))
	}
	return g, err
}

// pathOf filters the nil guards out of a gather path.
func pathOf(gs ...*guard) []*guard {
	var out []*guard
	for _, g := range gs {
		if g != nil {
			out = append(out, g)
		}
	}
	return out
}

// Build wires the event scope described by spec over net.
func Build(net *vnet.Network, spec Spec) (*Scope, error) {
	if spec.FrontEnd == nil {
		return nil, fmt.Errorf("escope: %q: no front-end host", spec.Name)
	}
	if len(spec.Sources) == 0 {
		return nil, fmt.Errorf("escope: %q: no sources", spec.Name)
	}
	if spec.Breaker != nil && spec.Health == nil {
		return nil, fmt.Errorf("escope: %q: Breaker requires Health (breakers wrap health guards)", spec.Name)
	}
	s := &Scope{
		name:        spec.Name,
		net:         net,
		frontEnd:    spec.FrontEnd,
		gwHelpers:   spec.GatewayHelpers,
		health:      spec.Health,
		retry:       spec.Retry,
		breakerPol:  spec.Breaker,
		conns:       make(map[*vnet.Conn]struct{}),
		coverPaths:  make(map[string][]*guard),
		clusters:    make(map[string]*clusterLink),
		everMissing: make(map[string]bool),
		met:         spec.Metrics,
	}
	if s.met != nil {
		s.pullOp = s.met.Op(metrics.KindScopePull, spec.Name)
	}
	s.cHealthFaults = s.met.Counter(spec.Name + "/health.faults")
	s.cHealthDeaths = s.met.Counter(spec.Name + "/health.deaths")
	s.cHealthRecoveries = s.met.Counter(spec.Name + "/health.recoveries")
	s.cStubRetries = s.met.Counter(spec.Name + "/stub.retries")
	s.cStubRedials = s.met.Counter(spec.Name + "/stub.redials")
	s.cBreakerTrips = s.met.Counter(spec.Name + "/breaker.trips")
	s.cBreakerOverruns = s.met.Counter(spec.Name + "/breaker.overruns")
	s.cBreakerSkips = s.met.Counter(spec.Name + "/breaker.skips")
	s.cBreakerStale = s.met.Counter(spec.Name + "/breaker.stale")

	// Per-host chains: reader (+ transform), grouped by host.
	type hostChains struct {
		host   *vnet.Host
		chains []paths.Wrapper
	}
	byHost := make(map[*vnet.Host]*hostChains)
	var hostOrder []*vnet.Host
	for i, src := range spec.Sources {
		if src.Host == nil || (src.Elem == nil && src.Custom == nil) {
			return nil, fmt.Errorf("escope: %q: source %d incomplete", spec.Name, i)
		}
		var chain paths.Wrapper
		if src.Custom != nil {
			chain = src.Custom
			s.readers = append(s.readers, src.Readers...)
		} else {
			if src.RecSize <= 0 {
				return nil, fmt.Errorf("escope: %q: source %d: record size %d", spec.Name, i, src.RecSize)
			}
			newReader := paths.NewBatchReader
			if src.FromEnd {
				newReader = paths.NewBatchReaderAtEnd
			}
			rd := newReader(
				fmt.Sprintf("%s/rd%d(%s)", spec.Name, i, src.Elem.Name()),
				src.Host, src.Elem, src.RecSize, src.BatchCap)
			if s.met != nil {
				rd.SetMetrics(s.met.Op(metrics.KindReader, rd.Name()))
			}
			s.readers = append(s.readers, rd)
			chain = rd
			if src.Transform != nil {
				chain = paths.NewTransform(
					fmt.Sprintf("%s/tr%d", spec.Name, i), src.Host, chain, src.Transform)
			}
		}
		hc, ok := byHost[src.Host]
		if !ok {
			hc = &hostChains{host: src.Host}
			byHost[src.Host] = hc
			hostOrder = append(hostOrder, src.Host)
		}
		hc.chains = append(hc.chains, chain)
	}

	// Group hosts by cluster; hosts outside any cluster (and the
	// front-end itself) attach directly under the root.
	type clusterGroup struct {
		cluster *vnet.Cluster
		hosts   []*hostChains
	}
	byCluster := make(map[*vnet.Cluster]*clusterGroup)
	var clusterOrder []*vnet.Cluster
	var direct []*hostChains
	for _, h := range hostOrder {
		hc := byHost[h]
		cl := h.Cluster()
		if cl == nil || h == spec.FrontEnd {
			direct = append(direct, hc)
			continue
		}
		cg, ok := byCluster[cl]
		if !ok {
			cg = &clusterGroup{cluster: cl}
			byCluster[cl] = cg
			clusterOrder = append(clusterOrder, cl)
		}
		cg.hosts = append(cg.hosts, hc)
	}

	// hostEntry builds the single wrapper representing one host's
	// sources: the chain itself, or a local gather joining several.
	hostEntry := func(hc *hostChains) (paths.Wrapper, error) {
		if len(hc.chains) == 1 {
			return hc.chains[0], nil
		}
		return s.instrumentGather(paths.NewGather(
			fmt.Sprintf("%s/hostgather(%s)", spec.Name, hc.host.Name()),
			hc.host, hc.chains, 0))
	}

	var rootChildren []paths.Wrapper
	for _, cl := range clusterOrder {
		cg := byCluster[cl]
		gw := cl.Gateway()
		link := &clusterLink{name: cl.Name(), gw: gw, members: make(map[string]*memberLink)}
		var gwChildren []paths.Wrapper
		for _, hc := range cg.hosts {
			entry, err := hostEntry(hc)
			if err != nil {
				return nil, err
			}
			m := &memberLink{host: hc.host, entry: entry}
			if hc.host == gw {
				m.child = entry
			} else {
				// The gateway reads the host over its own connection.
				m.child, m.guard, m.stub = s.stubTo(
					fmt.Sprintf("%s->%s", gw.Name(), hc.host.Name()),
					gw, hc.host, entry, RoleLeaf, cl.Name())
				if m.guard != nil {
					s.guards = append(s.guards, m.guard)
				}
			}
			gwChildren = append(gwChildren, m.child)
			link.members[hc.host.Name()] = m
		}
		gwGather, err := s.instrumentGather(paths.NewGather(
			fmt.Sprintf("%s/gwgather(%s)", spec.Name, cl.Name()),
			gw, gwChildren, spec.GatewayHelpers))
		if err != nil {
			return nil, err
		}
		link.gather = gwGather
		// The front-end reads the gateway gather over a connection.
		link.uplink, link.uguard, link.ustub = s.stubTo(
			fmt.Sprintf("fe->%s", gw.Name()), spec.FrontEnd, gw, gwGather, RoleUplink, cl.Name())
		if link.uguard != nil {
			s.guards = append(s.guards, link.uguard)
		}
		rootChildren = append(rootChildren, link.uplink)
		for _, m := range link.members {
			s.coverPaths[m.host.Name()] = pathOf(link.uguard, m.guard)
		}
		s.clusters[link.name] = link
		s.clusterOrder = append(s.clusterOrder, link.name)
	}
	for _, hc := range direct {
		entry, err := hostEntry(hc)
		if err != nil {
			return nil, err
		}
		if hc.host == spec.FrontEnd {
			s.coverPaths[hc.host.Name()] = nil
			rootChildren = append(rootChildren, entry)
			continue
		}
		child, g, _ := s.stubTo(fmt.Sprintf("fe->%s", hc.host.Name()), spec.FrontEnd, hc.host, entry, RoleDirect, "")
		if g != nil {
			s.guards = append(s.guards, g)
		}
		s.coverPaths[hc.host.Name()] = pathOf(g)
		rootChildren = append(rootChildren, child)
	}

	// With health tracking on, the root is always a gather — repair
	// needs a mutable root child set even when the scope starts with a
	// single cluster. Without it, a single child is the root directly
	// (the legacy shape, one less wrapper on the pull path).
	if spec.Health == nil && len(rootChildren) == 1 {
		s.root = rootChildren[0]
		s.SetMode(spec.Mode)
		return s, nil
	}
	root, err := s.instrumentGather(paths.NewGather(spec.Name+"/root", spec.FrontEnd, rootChildren, spec.RootHelpers))
	if err != nil {
		return nil, err
	}
	s.root = root
	if spec.Health != nil {
		s.rootG = root
	}
	s.SetMode(spec.Mode)
	return s, nil
}

// SetMode moves the scope to a degradation-ladder rung. A real change
// (the initial Build call included, when the spec starts off-strict) is
// appended to the mode log and delivered to the mode hook outside every
// scope lock. Safe to call at any time; breakers observe the new mode on
// their next decision.
func (s *Scope) SetMode(m Mode) {
	s.modeMu.Lock()
	cur := Mode(s.mode.Load())
	if cur == m {
		s.modeMu.Unlock()
		return
	}
	s.mode.Store(int32(m))
	ch := ModeChange{Scope: s.name, From: cur, To: m, Seq: s.modeSeq, At: hrtime.Now()}
	s.modeSeq++
	s.modeLog = append(s.modeLog, ch)
	hook := s.modeHook
	s.modeMu.Unlock()
	if hook != nil {
		hook(ch)
	}
}

// Mode returns the scope's current degradation-ladder rung.
func (s *Scope) Mode() Mode { return Mode(s.mode.Load()) }

// ModeLog returns every mode transition so far, in order.
func (s *Scope) ModeLog() []ModeChange {
	s.modeMu.Lock()
	defer s.modeMu.Unlock()
	out := make([]ModeChange, len(s.modeLog))
	copy(out, s.modeLog)
	return out
}

// SetModeHook installs (or, with nil, removes) the function receiving
// every mode transition. Transitions that already happened — including
// the Build-time one when the scope starts off-strict — are replayed
// into the hook immediately, so a late-attached recorder (the archive)
// still captures the full mode history. The hook runs outside scope
// locks and must not block.
func (s *Scope) SetModeHook(fn func(ModeChange)) {
	s.modeMu.Lock()
	s.modeHook = fn
	backlog := make([]ModeChange, len(s.modeLog))
	copy(backlog, s.modeLog)
	s.modeMu.Unlock()
	if fn == nil {
		return
	}
	for _, ch := range backlog {
		fn(ch)
	}
}

// Breakers returns a snapshot of every straggler circuit breaker in the
// scope (empty without a BreakerPolicy).
func (s *Scope) Breakers() []BreakerHealth {
	s.treeMu.Lock()
	brs := append([]*breaker(nil), s.breakers...)
	s.treeMu.Unlock()
	out := make([]BreakerHealth, 0, len(brs))
	for _, br := range brs {
		out = append(out, br.snapshot())
	}
	return out
}

// Name returns the scope's name.
func (s *Scope) Name() string { return s.name }

// Root returns the scope's root wrapper (on the front-end).
func (s *Scope) Root() paths.Wrapper { return s.root }

// FrontEnd returns the host the scope gathers to.
func (s *Scope) FrontEnd() *vnet.Host { return s.frontEnd }

// Readers returns the scope's source readers, for accounting.
func (s *Scope) Readers() []*paths.BatchReader { return s.readers }

// Pull performs one on-demand gather through the scope, returning the
// concatenated records of every source.
func (s *Scope) Pull(ctx *paths.Ctx) (paths.Reply, error) {
	s.pulls.Add(1)
	if s.pullOp == nil {
		return s.root.Op(ctx, paths.Request{Kind: paths.OpRead})
	}
	start := hrtime.Now()
	rep, err := s.root.Op(ctx, paths.Request{Kind: paths.OpRead})
	s.pullOp.Record(hrtime.Since(start), len(rep.Data), err)
	return rep, err
}

// Pulls reports how many gathers were performed.
func (s *Scope) Pulls() uint64 { return s.pulls.Load() }

// GatherRate returns the fraction of source tuples the scope delivered
// before the bounded buffers discarded them: read / (read + skipped),
// aggregated over all source cursors. This is the paper's gather rate
// (Tables 2 and 3); 1.0 means no tuple was lost.
func (s *Scope) GatherRate() float64 {
	var read, skipped uint64
	for _, r := range s.readers {
		read += r.Cursor().Read()
		skipped += r.Cursor().Skipped()
	}
	if read+skipped == 0 {
		return 1
	}
	return float64(read) / float64(read+skipped)
}

// Coverage reports which source hosts the scope is currently hearing
// from: a host is reporting unless some health guard on its gather path
// is dead. Without a HealthPolicy every host always reports (faults fail
// the pull instead).
func (s *Scope) Coverage() Coverage {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	cov := Coverage{Expected: len(s.coverPaths)}
	if s.breakerPol != nil {
		cov.Bound = s.breakerPol.stalenessBound()
	}
	now := hrtime.Now()
	var oldest hrtime.Stamp = -1
	for host, path := range s.coverPaths {
		dead := false
		stale, skipped := false, false
		var heard hrtime.Stamp = -1
		for _, g := range path {
			if br := g.br; br != nil {
				bs := br.snapshot()
				if bs.State != BreakerClosed {
					// A tripped breaker on the path: the host is served
					// stale while its data is within the bound, and
					// outright skipped beyond it.
					if bs.HasData && now-bs.LastData <= hrtime.Stamp(cov.Bound) {
						stale = true
					} else {
						skipped = true
					}
				}
			}
			snap := g.snapshot()
			if snap.State == Dead {
				dead = true
			}
			// Only guards that have succeeded at least once contribute to
			// staleness: an unproven guard's LastOK is its build time, and
			// folding that in would pin staleness to the age of the scope.
			if snap.Proven {
				if oldest < 0 || snap.LastOK < oldest {
					oldest = snap.LastOK
				}
				// A host's last-heard is the weakest link on its path.
				if heard < 0 || snap.LastOK < heard {
					heard = snap.LastOK
				}
			} else {
				heard = -1
				break
			}
		}
		if len(path) > 0 && heard >= 0 {
			if cov.LastHeard == nil {
				cov.LastHeard = make(map[string]hrtime.Stamp)
			}
			cov.LastHeard[host] = heard
		}
		if dead {
			cov.Missing = append(cov.Missing, host)
		} else {
			cov.Reporting++
			if s.everMissing[host] {
				cov.Recovered++
			}
			switch {
			case skipped:
				cov.Skipped = append(cov.Skipped, host)
			case stale:
				cov.Stale = append(cov.Stale, host)
			}
		}
	}
	sort.Strings(cov.Missing)
	sort.Strings(cov.Stale)
	sort.Strings(cov.Skipped)
	if oldest >= 0 {
		cov.Staleness = time.Duration(now - oldest)
	}
	return cov
}

// Health returns a snapshot of every guarded child in the scope.
func (s *Scope) Health() []ChildHealth {
	s.treeMu.Lock()
	guards := append([]*guard(nil), s.guards...)
	s.treeMu.Unlock()
	out := make([]ChildHealth, 0, len(guards))
	for _, g := range guards {
		out = append(out, g.snapshot())
	}
	return out
}

// Close shuts down the scope's connections. Close is sticky: any redial
// attempted afterwards fails and its fresh connection is closed
// immediately, so a racing retry loop cannot leak connections past
// shutdown.
func (s *Scope) Close() {
	s.connsMu.Lock()
	s.closed = true
	conns := make([]*vnet.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.conns = make(map[*vnet.Conn]struct{})
	s.connsMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Puller is a gather thread: it pulls the scope in a loop and hands every
// reply to a sink. Monitors use pullers as their front-end gather threads.
type Puller struct {
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	pulls    atomic.Uint64
	errcnt   atomic.Uint64
	backoffs atomic.Uint64
}

// Error backoff for the pull loop: a pull that fails outright (root
// gather error, not a guarded partial) doubles the wait before the next
// attempt, so a scope whose tree is persistently broken does not spin
// the gather thread at full speed. The first success resets it.
const (
	pullerBackoffBase = 100 * time.Microsecond
	pullerBackoffMax  = 10 * time.Millisecond
)

// growBackoff advances the capped exponential pull-loop backoff.
func growBackoff(b time.Duration) time.Duration {
	switch {
	case b == 0:
		return pullerBackoffBase
	case b < pullerBackoffMax:
		b *= 2
		if b > pullerBackoffMax {
			b = pullerBackoffMax
		}
	}
	return b
}

// StartPuller launches a gather thread pulling every interval (modelled
// time; 0 pulls continuously). The sink receives every non-empty reply;
// a nil sink discards data (pure drain). Consecutive pull errors back
// off exponentially (modelled time, capped) instead of hot-looping.
func (s *Scope) StartPuller(interval time.Duration, sink func(paths.Reply) error) *Puller {
	p := &Puller{stop: make(chan struct{}), done: make(chan struct{})}
	ctx := &paths.Ctx{Thread: s.name + "/gather"}
	cPulls := s.met.Counter(s.name + "/puller.pulls")
	cErrs := s.met.Counter(s.name + "/puller.errors")
	cBackoffs := s.met.Counter(s.name + "/puller.backoffs")
	vclock.Go(func() {
		//lint:allow closeonce this run loop is the done channel's sole closer; Stop closes only p.stop (via stopOnce)
		defer close(p.done)
		var backoff time.Duration
		for {
			select {
			case <-p.stop:
				return
			default:
			}
			rep, err := s.Pull(ctx)
			if err != nil {
				p.errcnt.Add(1)
				cErrs.Inc()
				backoff = growBackoff(backoff)
			} else {
				p.pulls.Add(1)
				cPulls.Inc()
				sinkErr := false
				if sink != nil && len(rep.Data) > 0 {
					if err := sink(rep); err != nil {
						p.errcnt.Add(1)
						cErrs.Inc()
						sinkErr = true
					}
				}
				// A failing sink (e.g. an archive writer whose disk is
				// gone) backs the loop off exactly like a failing pull:
				// without this the puller hot-loops, discarding a pull's
				// worth of tuples per iteration at full speed.
				if sinkErr {
					backoff = growBackoff(backoff)
				} else {
					backoff = 0
				}
			}
			wait := interval
			if backoff > wait {
				wait = backoff
				p.backoffs.Add(1)
				cBackoffs.Inc()
			}
			if wait > 0 {
				hrtime.Sleep(wait)
			}
		}
	})
	return p
}

// Stop halts the gather thread and waits for it to exit. It is safe to
// call concurrently and repeatedly.
func (p *Puller) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// Pulls reports successful pulls; Errors reports failed pulls or sink
// errors; Backoffs reports loop iterations that waited on the error
// backoff instead of the configured interval.
func (p *Puller) Pulls() uint64    { return p.pulls.Load() }
func (p *Puller) Errors() uint64   { return p.errcnt.Load() }
func (p *Puller) Backoffs() uint64 { return p.backoffs.Load() }

// RawSink persists a raw record batch. archive.Writer satisfies it; the
// indirection keeps escope independent of the archive's storage format.
type RawSink interface {
	AppendRaw(data []byte) error
}

// ArchiveSink adapts a raw-batch store (an archive writer) into a puller
// sink: every gathered reply's payload is appended verbatim. Use it as
// StartPuller's sink — or compose it with a monitor's own sink — to
// record a scope's traffic:
//
//	scope.StartPuller(interval, escope.ArchiveSink(w))
func ArchiveSink(w RawSink) func(paths.Reply) error {
	return func(rep paths.Reply) error {
		return w.AppendRaw(rep.Data)
	}
}
