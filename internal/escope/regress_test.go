package escope

//lint:file-allow wallclock regression tests wait on real goroutines with wall-clock deadlines

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eventspace/internal/hrtime"
	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vnet"
)

// TestPullerStopConcurrent is the regression test for the Stop double-close
// race: two goroutines that both saw the stop channel open could both
// close it. Run with -race.
func TestPullerStopConcurrent(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	e := pastset.MustNewElement("t", 8)
	scope, err := Build(r.net, Spec{
		Name:     "stoprace",
		FrontEnd: r.fe,
		Sources:  []Source{{Host: h, Elem: e, RecSize: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()
	p := scope.StartPuller(time.Millisecond, nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Stop()
		}()
	}
	wg.Wait()
	p.Stop() // still idempotent after the concurrent stops
}

// killConns closes every connection the scope tracks without untracking
// them, simulating the transport dying under the stubs.
func killConns(s *Scope) {
	s.connsMu.Lock()
	conns := make([]*vnet.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.connsMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// TestRedialPrunesReplacedConns is the regression test for the connection
// bookkeeping leak: every redial added a fresh connection to the scope's
// tracking without removing the stale one, so a flaky link grew the set
// without bound. It also covers sticky Close: a redial racing with Close
// must not leak a connection past shutdown.
func TestRedialPrunesReplacedConns(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	e := pastset.MustNewElement("t", 64)
	fill(t, e, []byte{1})
	scope, err := Build(r.net, Spec{
		Name:     "redial",
		FrontEnd: r.fe,
		Sources:  []Source{{Host: h, Elem: e, RecSize: 1}},
		Retry:    &paths.RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := scope.trackedConns()
	if base == 0 {
		t.Fatal("no connections tracked after build")
	}
	for i := 0; i < 5; i++ {
		killConns(scope)
		if _, err := scope.Pull(nil); err != nil {
			t.Fatalf("pull %d after conn kill: %v", i, err)
		}
	}
	if got := scope.trackedConns(); got != base {
		t.Fatalf("tracked conns = %d after 5 redial rounds, want %d (leak)", got, base)
	}

	// Sticky Close: a redial after Close must fail and leave nothing
	// tracked.
	scope.Close()
	if _, err := scope.Pull(nil); err == nil {
		t.Fatal("pull succeeded after Close")
	}
	if got := scope.trackedConns(); got != 0 {
		t.Fatalf("tracked conns = %d after Close, want 0", got)
	}
}

// TestPullerErrorBackoff is the regression test for the pull-error hot
// loop: with interval 0 and a persistently failing scope, the gather
// thread spun at full speed. It must now back off (bounded error rate)
// and count the backoffs. Runs at real-time scale: newRig's 0.005 scale
// would shrink the backoff sleeps below the clock's resolution.
func TestPullerErrorBackoff(t *testing.T) {
	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	c, err := n.AddCluster("a", "s1", 2, 2, vnet.GigabitEthernet)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := n.AddStandaloneHost("fe", 2)
	if err != nil {
		t.Fatal(err)
	}
	e := pastset.MustNewElement("t", 8)
	scope, err := Build(n, Spec{
		Name:     "hot",
		FrontEnd: fe,
		Sources:  []Source{{Host: c.Hosts()[0], Elem: e, RecSize: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	scope.Close() // every pull fails from the start
	p := scope.StartPuller(0, nil)
	defer p.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for p.Errors() < 5 {
		if time.Now().After(deadline) {
			t.Fatal("puller produced fewer than 5 errors")
		}
		time.Sleep(time.Millisecond)
	}
	// By the fifth consecutive error the backoff is well above zero: a
	// 100ms window must see far fewer iterations than a hot loop's
	// hundreds of thousands.
	before := p.Errors()
	time.Sleep(100 * time.Millisecond)
	window := p.Errors() - before
	if window > 1000 {
		t.Fatalf("%d errors in 100ms: puller is hot-looping", window)
	}
	if p.Backoffs() == 0 {
		t.Fatal("no backoffs counted")
	}
}

// constSource is a local wrapper whose every read returns the same
// non-empty payload, so pulls always succeed with data and the sink
// always runs.
type constSource struct {
	host *vnet.Host
	data []byte
}

func (c *constSource) Name() string     { return "const" }
func (c *constSource) Host() *vnet.Host { return c.host }
func (c *constSource) Op(*paths.Ctx, paths.Request) (paths.Reply, error) {
	return paths.Reply{Data: c.data}, nil
}

// TestPullerSinkErrorBackoff is the regression test for the sink-error
// hot loop: pulls succeed but the sink (e.g. an archive writer whose
// disk is gone) fails every time. The loop counted those errors but
// never backed off, re-pulling and discarding a batch at full speed.
// It must now apply the same capped exponential backoff as pull errors.
// Runs at real-time scale like TestPullerErrorBackoff.
func TestPullerSinkErrorBackoff(t *testing.T) {
	n := vnet.NewNetwork(vnet.FastEthernet, vnet.DefaultCostModel())
	c, err := n.AddCluster("a", "s1", 2, 2, vnet.GigabitEthernet)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := n.AddStandaloneHost("fe", 2)
	if err != nil {
		t.Fatal(err)
	}
	scope, err := Build(n, Spec{
		Name:     "sinkhot",
		FrontEnd: fe,
		Sources:  []Source{{Host: c.Hosts()[0], Custom: &constSource{host: c.Hosts()[0], data: []byte{1, 2, 3}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()
	p := scope.StartPuller(0, func(paths.Reply) error {
		return fmt.Errorf("archive writer: disk gone")
	})
	defer p.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for p.Errors() < 5 {
		if time.Now().After(deadline) {
			t.Fatal("puller produced fewer than 5 sink errors")
		}
		time.Sleep(time.Millisecond)
	}
	before := p.Errors()
	time.Sleep(100 * time.Millisecond)
	window := p.Errors() - before
	if window > 1000 {
		t.Fatalf("%d sink errors in 100ms: puller is hot-looping", window)
	}
	if p.Backoffs() == 0 {
		t.Fatal("no backoffs counted for sink errors")
	}
}

// TestCloseConcurrentWithRedialStorm is the regression test for the
// sticky-close race under load: pullers redialling dead connections
// while Close runs concurrently. The addConn/closed handshake must
// guarantee that whichever side wins, no connection outlives Close —
// a redial that lands after Close is refused and its fresh connection
// closed on the spot. Run with -race.
func TestCloseConcurrentWithRedialStorm(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	e := pastset.MustNewElement("t", 64)
	fill(t, e, []byte{1})
	scope, err := Build(r.net, Spec{
		Name:     "closerace",
		FrontEnd: r.fe,
		Sources:  []Source{{Host: h, Elem: e, RecSize: 1}},
		Retry:    &paths.RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	// Four pullers drive redials by killing tracked connections between
	// pulls; one goroutine closes the scope mid-storm.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ctx := &paths.Ctx{Thread: "storm"}
			for j := 0; j < 20; j++ {
				killConns(scope)
				_, _ = scope.Pull(ctx) // errors expected once Close lands
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(200 * time.Microsecond)
		scope.Close()
	}()
	close(start)
	wg.Wait()
	if got := scope.trackedConns(); got != 0 {
		t.Fatalf("tracked conns = %d after concurrent Close, want 0 (leak past shutdown)", got)
	}
	if _, err := scope.Pull(nil); err == nil {
		t.Fatal("pull succeeded after Close")
	}
}

// TestCloseConcurrentWithStartPuller is the regression test for closing
// a scope while gather threads are being started against it: the pullers
// must settle into the error backoff (no panic, no leaked connection)
// and stop cleanly. Run with -race.
func TestCloseConcurrentWithStartPuller(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	e := pastset.MustNewElement("t", 8)
	fill(t, e, []byte{1})
	scope, err := Build(r.net, Spec{
		Name:     "startclose",
		FrontEnd: r.fe,
		Sources:  []Source{{Host: h, Elem: e, RecSize: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pullers := make(chan *Puller, 4)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			pullers <- scope.StartPuller(10*time.Microsecond, nil)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		scope.Close()
	}()
	close(start)
	wg.Wait()
	close(pullers)
	for p := range pullers {
		p.Stop()
	}
	if got := scope.trackedConns(); got != 0 {
		t.Fatalf("tracked conns = %d after Close, want 0", got)
	}
}

// TestCloseConcurrentWithBreakerInflight is the regression test for
// sticky Close racing the breaker's background calls: outside strict
// mode an overrunning child call keeps running past its round deadline
// on a breaker goroutine, and Close must not race its stub's connection
// use or leave its redial attempts tracked. Run with -race.
func TestCloseConcurrentWithBreakerInflight(t *testing.T) {
	r := newRig(t)
	h0, h1 := r.c1.Hosts()[0], r.c1.Hosts()[1]
	e0 := pastset.MustNewElement("t0", 64)
	e1 := pastset.MustNewElement("t1", 64)
	fill(t, e0, []byte{1})
	fill(t, e1, []byte{2})
	scope, err := Build(r.net, Spec{
		Name:     "brkclose",
		FrontEnd: r.fe,
		Sources: []Source{
			{Host: h0, Elem: e0, RecSize: 1},
			{Host: h1, Elem: e1, RecSize: 1},
		},
		Retry:  &paths.RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Microsecond},
		Health: &HealthPolicy{},
		// A deadline far below the rig's modelled RTT: every round
		// overruns, parking an inflight call on a breaker goroutine.
		Breaker: &BreakerPolicy{RoundDeadline: time.Nanosecond},
		Mode:    ModeBounded,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			ctx := &paths.Ctx{Thread: "inflight"}
			for j := 0; j < 10; j++ {
				_, _ = scope.Pull(ctx)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(100 * time.Microsecond)
		scope.Close()
	}()
	close(start)
	wg.Wait()
	// Let parked inflight calls run into the closed connections and
	// finish their accounting before the final bookkeeping check.
	time.Sleep(2 * time.Millisecond)
	if got := scope.trackedConns(); got != 0 {
		t.Fatalf("tracked conns = %d after Close with inflight breaker calls, want 0", got)
	}
}

// TestCoverageStalenessUnprovenGuard is the regression test for coverage
// staleness: a guard that never succeeded reports its build time as
// LastOK, which pinned Staleness to the age of the scope (the whole run
// under the virtual clock, where build time is 0).
func TestCoverageStalenessUnprovenGuard(t *testing.T) {
	time.Sleep(5 * time.Millisecond) // ensure the clock is well past 0
	pol := &HealthPolicy{}
	proven := newGuard("g-ok", "h1", nil, nil, pol)
	unproven := newGuard("g-never", "h2", nil, nil, pol)
	proven.noteSuccess()
	okAt := proven.lastOK
	unproven.lastOK = 0 // built at the virtual epoch, never succeeded
	s := &Scope{coverPaths: map[string][]*guard{
		"h1": {proven},
		"h2": {unproven},
	}}
	time.Sleep(2 * time.Millisecond)
	cov := s.Coverage()
	if cov.Staleness <= 0 {
		t.Fatal("proven guard contributed no staleness")
	}
	if max := time.Duration(hrtime.Now() - okAt); cov.Staleness > max {
		t.Fatalf("Staleness = %v > %v: unproven guard's epoch LastOK counted", cov.Staleness, max)
	}
}
