package escope

//lint:file-allow wallclock tests poll real goroutine progress against wall-clock deadlines

import (
	"testing"
	"time"

	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vnet"
)

// repairRig builds a guarded two-cluster scope with one source per
// compute host and returns it with the per-host elements.
func repairRig(t *testing.T) (*rig, *Scope, map[string]*pastset.Element) {
	t.Helper()
	r := newRig(t)
	elems := make(map[string]*pastset.Element)
	spec := Spec{
		Name:     "repair",
		FrontEnd: r.fe,
		Health:   &HealthPolicy{DeadAfter: 2, ProbeBase: time.Millisecond, ProbeMax: 4 * time.Millisecond},
		Retry:    &paths.RetryPolicy{MaxAttempts: 2, BaseBackoff: 50 * time.Microsecond},
	}
	for _, h := range append(append([]*vnet.Host(nil), r.c1.Hosts()...), r.c2.Hosts()...) {
		e := pastset.MustNewElement("src-"+h.Name(), 64)
		fill(t, e, []byte{1})
		elems[h.Name()] = e
		spec.Sources = append(spec.Sources, Source{Host: h, Elem: e, RecSize: 1})
	}
	scope, err := Build(r.net, spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(scope.Close)
	return r, scope, elems
}

func clusterByName(topo []ClusterTopology, name string) *ClusterTopology {
	for i := range topo {
		if topo[i].Name == name {
			return &topo[i]
		}
	}
	return nil
}

func TestTopologySnapshotsClusters(t *testing.T) {
	r, scope, _ := repairRig(t)
	topo := scope.Topology()
	if len(topo) != 2 {
		t.Fatalf("clusters = %d, want 2", len(topo))
	}
	a, b := clusterByName(topo, "a"), clusterByName(topo, "b")
	if a == nil || b == nil {
		t.Fatalf("topology = %+v", topo)
	}
	if a.Gateway != r.c1.Gateway().Name() || len(a.Members) != len(r.c1.Hosts()) {
		t.Fatalf("cluster a = %+v", a)
	}
	if len(b.Members) != len(r.c2.Hosts()) {
		t.Fatalf("cluster b = %+v", b)
	}
	// Scopes without health tracking are not repairable.
	e := pastset.MustNewElement("nh", 8)
	plain, err := Build(r.net, Spec{Name: "plain", FrontEnd: r.fe,
		Sources: []Source{{Host: r.c1.Hosts()[0], Elem: e, RecSize: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if plain.Topology() != nil {
		t.Fatal("health-free scope reported a repairable topology")
	}
	if err := plain.ReparentHost(r.c1.Hosts()[0].Name(), "b"); err == nil {
		t.Fatal("health-free reparent accepted")
	}
}

func TestReparentHostRestoresCoverage(t *testing.T) {
	r, scope, elems := repairRig(t)
	if _, err := scope.Pull(nil); err != nil {
		t.Fatal(err)
	}

	// Kill cluster a's gateway: the uplink guard dies, every host in a is
	// cut off, but the hosts themselves are alive.
	gw := r.c1.Gateway()
	r.net.InjectFaults(vnet.FaultPlan{
		CallTimeout: 200 * time.Microsecond,
		Events:      []vnet.FaultEvent{{Kind: vnet.FaultCrash, Host: gw.Name()}},
	})
	defer r.net.ClearFaults()
	if !pullUntil(t, scope, 5*time.Second, func() bool {
		a := clusterByName(scope.Topology(), "a")
		return a != nil && a.UplinkState == Dead
	}) {
		t.Fatalf("uplink never died: %+v", scope.Health())
	}
	if cov := scope.Coverage(); cov.Reporting != len(r.c2.Hosts()) {
		t.Fatalf("degraded coverage: %+v", cov)
	}

	// Re-parent every host of a onto b's gateway; write fresh records so
	// delivery over the new path is observable.
	for _, h := range r.c1.Hosts() {
		if err := scope.ReparentHost(h.Name(), "b"); err != nil {
			t.Fatalf("reparent %s: %v", h.Name(), err)
		}
		fill(t, elems[h.Name()], []byte{7})
	}

	// Cluster a dissolved; b holds everyone.
	topo := scope.Topology()
	if clusterByName(topo, "a") != nil {
		t.Fatalf("cluster a not dissolved: %+v", topo)
	}
	b := clusterByName(topo, "b")
	if b == nil || len(b.Members) != len(r.c1.Hosts())+len(r.c2.Hosts()) {
		t.Fatalf("cluster b after reparent: %+v", b)
	}

	// Coverage heals and the re-parented hosts' data flows again —
	// including the record written while they were orphaned (their
	// cursors live on the hosts and survived the re-parent).
	seven := 0
	if !pullUntil(t, scope, 5*time.Second, func() bool {
		rep, err := scope.Pull(nil)
		if err == nil {
			for _, by := range rep.Data {
				if by == 7 {
					seven++
				}
			}
		}
		return seven >= len(r.c1.Hosts()) && scope.Coverage().Complete()
	}) {
		t.Fatalf("no recovery after reparent: coverage %+v, seven=%d", scope.Coverage(), seven)
	}
	cov := scope.Coverage()
	if cov.Recovered < len(r.c1.Hosts()) {
		t.Fatalf("recovered = %d, want >= %d (%+v)", cov.Recovered, len(r.c1.Hosts()), cov)
	}
	if len(cov.LastHeard) == 0 {
		t.Fatalf("no last-heard stamps: %+v", cov)
	}

	// Reparent validation.
	if err := scope.ReparentHost(r.c2.Hosts()[0].Name(), "b"); err == nil {
		t.Fatal("same-cluster reparent accepted")
	}
	if err := scope.ReparentHost("nope", "b"); err == nil {
		t.Fatal("unknown host accepted")
	}
	if err := scope.ReparentHost(r.c2.Hosts()[0].Name(), "zzz"); err == nil {
		t.Fatal("unknown target cluster accepted")
	}
}

func TestPromoteGatewayRebuildsCluster(t *testing.T) {
	r, scope, elems := repairRig(t)
	if _, err := scope.Pull(nil); err != nil {
		t.Fatal(err)
	}
	gw := r.c1.Gateway()
	r.net.InjectFaults(vnet.FaultPlan{
		CallTimeout: 200 * time.Microsecond,
		Events:      []vnet.FaultEvent{{Kind: vnet.FaultCrash, Host: gw.Name()}},
	})
	defer r.net.ClearFaults()
	if !pullUntil(t, scope, 5*time.Second, func() bool {
		a := clusterByName(scope.Topology(), "a")
		return a != nil && a.UplinkState == Dead
	}) {
		t.Fatalf("uplink never died: %+v", scope.Health())
	}

	promoted := r.c1.Hosts()[0].Name()
	if err := scope.PromoteGateway("a", promoted); err != nil {
		t.Fatal(err)
	}
	topo := scope.Topology()
	a := clusterByName(topo, "a")
	if a == nil || a.Gateway != promoted {
		t.Fatalf("after promote: %+v", a)
	}
	var localSeen bool
	for _, m := range a.Members {
		if m.Local {
			if m.Host != promoted {
				t.Fatalf("local member = %s, want %s", m.Host, promoted)
			}
			localSeen = true
		}
	}
	if !localSeen {
		t.Fatalf("promoted member not local: %+v", a.Members)
	}

	for _, h := range r.c1.Hosts() {
		fill(t, elems[h.Name()], []byte{8})
	}
	eight := 0
	if !pullUntil(t, scope, 5*time.Second, func() bool {
		rep, err := scope.Pull(nil)
		if err == nil {
			for _, by := range rep.Data {
				if by == 8 {
					eight++
				}
			}
		}
		return eight >= len(r.c1.Hosts()) && scope.Coverage().Complete()
	}) {
		t.Fatalf("no recovery after promote: coverage %+v, eight=%d", scope.Coverage(), eight)
	}

	// Promote validation.
	if err := scope.PromoteGateway("a", promoted); err == nil {
		t.Fatal("double promote accepted")
	}
	if err := scope.PromoteGateway("zzz", promoted); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	if err := scope.PromoteGateway("a", "nope"); err == nil {
		t.Fatal("unknown member accepted")
	}
}

// TestProbeJitterDecorrelatesGuards is the regression test for the
// deterministic probe jitter: eight guards sharing one policy must not
// share a probe schedule (a cluster dying at once must not produce a
// synchronized probe storm), yet each guard's schedule must be exactly
// reproducible across runs.
func TestProbeJitterDecorrelatesGuards(t *testing.T) {
	pol := &HealthPolicy{DeadAfter: 1, ProbeBase: 2 * time.Millisecond, ProbeMax: 50 * time.Millisecond}
	const n = 8
	draw := func() [n]time.Duration {
		var waits [n]time.Duration
		for i := 0; i < n; i++ {
			g := newGuard(string(rune('a'+i))+"!guard", "h", nil, nil, pol)
			g.mu.Lock()
			waits[i] = g.jitteredWaitLocked()
			g.mu.Unlock()
		}
		return waits
	}
	first := draw()
	distinct := make(map[time.Duration]bool)
	for i, w := range first {
		distinct[w] = true
		if w < time.Millisecond || w >= 2*time.Millisecond {
			t.Fatalf("guard %d wait %v outside [base/2, base)", i, w)
		}
	}
	if len(distinct) < 6 {
		t.Fatalf("only %d distinct probe waits across %d guards: %v", len(distinct), n, first)
	}
	if second := draw(); second != first {
		t.Fatalf("jitter not deterministic across runs:\n%v\n%v", first, second)
	}
	// Consecutive probes of one guard draw fresh jitter too.
	g := newGuard("a!guard", "h", nil, nil, pol)
	g.mu.Lock()
	w1 := g.jitteredWaitLocked()
	w2 := g.jitteredWaitLocked()
	g.mu.Unlock()
	if w1 == w2 {
		t.Fatalf("consecutive probe waits identical: %v", w1)
	}
}
