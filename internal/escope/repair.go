// Runtime tree repair primitives. A scope built with a HealthPolicy
// retains its topology (clusterLink/memberLink in escope.go) and exposes
// two mutations the reconfig manager composes into repair plans:
//
//   - ReparentHost moves one compute host's subtree under another
//     cluster's gateway gather (used when a gateway dies and surviving
//     gateways have fan-in to spare).
//   - PromoteGateway rebuilds a cluster's gather on one of its own
//     member hosts (used when a cluster is orphaned and no other gateway
//     can absorb its members).
//
// Both run under treeMu, swap children into the live gathers with
// copy-on-write (in-flight pulls keep their snapshot), and tear down the
// replaced stubs through the scope's connection tracking. All waiting is
// modelled time, so a repair sequence is deterministic under the virtual
// clock.
package escope

import (
	"fmt"
	"sort"

	"eventspace/internal/paths"
	"eventspace/internal/vnet"
)

// MemberHealth is one cluster member's view in Topology.
type MemberHealth struct {
	Host string
	// Local marks the member whose chain runs on the gateway host itself
	// (no guarded link of its own).
	Local bool
	// State/Proven mirror the member's leaf guard. For a Local member
	// they mirror the cluster uplink instead. Note the states reflect the
	// last gather that reached the gateway: after an uplink death the
	// leaf states are the pre-crash ones — exactly the information a
	// repair planner has to work with.
	State  ChildState
	Proven bool
}

// ClusterTopology is one cluster subtree's view in Topology.
type ClusterTopology struct {
	Name         string
	Gateway      string // current gather host (may be a promoted member)
	UplinkState  ChildState
	UplinkProven bool
	Members      []MemberHealth // sorted by host name
}

// Topology snapshots the scope's cluster subtrees for repair planning,
// in build order. Scopes without a HealthPolicy return nil.
func (s *Scope) Topology() []ClusterTopology {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	if s.rootG == nil {
		return nil
	}
	out := make([]ClusterTopology, 0, len(s.clusterOrder))
	for _, name := range s.clusterOrder {
		cl := s.clusters[name]
		usnap := cl.uguard.snapshot()
		ct := ClusterTopology{
			Name:         cl.name,
			Gateway:      cl.gw.Name(),
			UplinkState:  usnap.State,
			UplinkProven: usnap.Proven,
		}
		for _, m := range cl.members {
			mh := MemberHealth{Host: m.host.Name()}
			if m.guard == nil {
				mh.Local = true
				mh.State, mh.Proven = usnap.State, usnap.Proven
			} else {
				snap := m.guard.snapshot()
				mh.State, mh.Proven = snap.State, snap.Proven
			}
			ct.Members = append(ct.Members, mh)
		}
		sort.Slice(ct.Members, func(i, j int) bool { return ct.Members[i].Host < ct.Members[j].Host })
		out = append(out, ct)
	}
	return out
}

// removeGuardLocked drops g from the scope's guard list. Caller holds
// treeMu.
func (s *Scope) removeGuardLocked(g *guard) {
	for i, sg := range s.guards {
		if sg == g {
			s.guards = append(s.guards[:i], s.guards[i+1:]...)
			return
		}
	}
}

// teardownLinkLocked retires a guarded stub: the guard leaves the health
// list and the stub's (possibly redialled) connection is untracked and
// closed. Caller holds treeMu.
func (s *Scope) teardownLinkLocked(g *guard, stub *paths.Remote) {
	if g != nil {
		s.removeGuardLocked(g)
	}
	if stub != nil {
		if c, ok := stub.Caller().(*vnet.Conn); ok {
			s.dropConn(c)
		}
		stub.Close()
	}
}

// removeClusterLocked dissolves an empty cluster subtree: its uplink
// leaves the root gather and is torn down. Caller holds treeMu.
func (s *Scope) removeClusterLocked(cl *clusterLink) {
	s.rootG.RemoveChild(cl.uplink)
	s.teardownLinkLocked(cl.uguard, cl.ustub)
	delete(s.clusters, cl.name)
	for i, n := range s.clusterOrder {
		if n == cl.name {
			s.clusterOrder = append(s.clusterOrder[:i], s.clusterOrder[i+1:]...)
			break
		}
	}
}

// ReparentHost moves host's subtree from its current cluster gather to
// toCluster's: a fresh guarded stub from toCluster's gateway to the host
// joins the target gather, then the old link is removed and torn down.
// The source cluster is dissolved once its last member leaves. The
// host's source cursors live on the host itself, so the first gather
// over the new path resumes exactly where the old path stopped.
func (s *Scope) ReparentHost(host, toCluster string) error {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	if s.rootG == nil {
		return fmt.Errorf("escope: %s: no health tracking, tree is not repairable", s.name)
	}
	toCL, ok := s.clusters[toCluster]
	if !ok {
		return fmt.Errorf("escope: %s: reparent %s: unknown target cluster %q", s.name, host, toCluster)
	}
	var srcCL *clusterLink
	var m *memberLink
	for _, name := range s.clusterOrder {
		cl := s.clusters[name]
		if mm, ok := cl.members[host]; ok {
			srcCL, m = cl, mm
			break
		}
	}
	if m == nil {
		return fmt.Errorf("escope: %s: reparent: host %q not in any cluster", s.name, host)
	}
	if srcCL == toCL {
		return fmt.Errorf("escope: %s: reparent %s: already in cluster %q", s.name, host, toCluster)
	}
	if m.guard == nil {
		return fmt.Errorf("escope: %s: reparent %s: member is local to its gateway; promote instead", s.name, host)
	}

	child, g, stub := s.stubTo(
		fmt.Sprintf("%s->%s", toCL.gw.Name(), host),
		toCL.gw, m.host, m.entry, RoleLeaf, toCL.name)
	toCL.gather.AddChild(child)
	srcCL.gather.RemoveChild(m.child)
	s.teardownLinkLocked(m.guard, m.stub)
	delete(srcCL.members, host)

	nm := &memberLink{host: m.host, entry: m.entry, child: child, guard: g, stub: stub}
	toCL.members[host] = nm
	if g != nil {
		s.guards = append(s.guards, g)
	}
	s.coverPaths[host] = pathOf(toCL.uguard, g)
	s.everMissing[host] = true
	if len(srcCL.members) == 0 {
		s.removeClusterLocked(srcCL)
	}
	return nil
}

// PromoteGateway rebuilds cluster's gather on member host newGW: the
// promoted member's chain attaches locally, every other member gets a
// fresh guarded stub from the new gather host, a fresh uplink replaces
// the old one in the root gather, and all the old links are torn down.
// Used when the original gateway host dies and the cluster must keep
// gathering without it.
func (s *Scope) PromoteGateway(cluster, newGW string) error {
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	if s.rootG == nil {
		return fmt.Errorf("escope: %s: no health tracking, tree is not repairable", s.name)
	}
	cl, ok := s.clusters[cluster]
	if !ok {
		return fmt.Errorf("escope: %s: promote: unknown cluster %q", s.name, cluster)
	}
	pm, ok := cl.members[newGW]
	if !ok {
		return fmt.Errorf("escope: %s: promote: host %q not a member of cluster %q", s.name, newGW, cluster)
	}
	if pm.guard == nil {
		return fmt.Errorf("escope: %s: promote: %q already hosts cluster %q's gather", s.name, newGW, cluster)
	}

	// Deterministic member order for the rebuilt gather.
	names := make([]string, 0, len(cl.members))
	for name := range cl.members {
		names = append(names, name)
	}
	sort.Strings(names)

	type newLink struct {
		m     *memberLink
		child paths.Wrapper
		guard *guard
		stub  *paths.Remote
	}
	links := make([]newLink, 0, len(names))
	children := make([]paths.Wrapper, 0, len(names))
	for _, name := range names {
		m := cl.members[name]
		nl := newLink{m: m}
		if m == pm {
			nl.child = m.entry // local on the new gather host
		} else {
			nl.child, nl.guard, nl.stub = s.stubTo(
				fmt.Sprintf("%s->%s", pm.host.Name(), name),
				pm.host, m.host, m.entry, RoleLeaf, cluster)
		}
		links = append(links, nl)
		children = append(children, nl.child)
	}
	gather, err := s.instrumentGather(paths.NewGather(
		fmt.Sprintf("%s/gwgather(%s)@%s", s.name, cluster, newGW),
		pm.host, children, s.gwHelpers))
	if err != nil {
		return err
	}
	uplink, uguard, ustub := s.stubTo(
		fmt.Sprintf("fe->%s", pm.host.Name()), s.frontEnd, pm.host, gather, RoleUplink, cluster)
	if !s.rootG.ReplaceChild(cl.uplink, uplink) {
		// Should be unreachable: cl.uplink came from this root.
		s.rootG.AddChild(uplink)
	}

	// Tear down the orphaned links: the old uplink and every old leaf
	// stub (they ran from the dead gateway).
	s.teardownLinkLocked(cl.uguard, cl.ustub)
	for _, nl := range links {
		if nl.m.guard != nil {
			s.teardownLinkLocked(nl.m.guard, nl.m.stub)
		}
		nl.m.child, nl.m.guard, nl.m.stub = nl.child, nl.guard, nl.stub
	}

	cl.gw = pm.host
	cl.gather = gather
	cl.uplink, cl.uguard, cl.ustub = uplink, uguard, ustub
	if uguard != nil {
		s.guards = append(s.guards, uguard)
	}
	for _, nl := range links {
		if nl.guard != nil {
			s.guards = append(s.guards, nl.guard)
		}
		s.coverPaths[nl.m.host.Name()] = pathOf(uguard, nl.guard)
		s.everMissing[nl.m.host.Name()] = true
	}
	return nil
}
