package escope

//lint:file-allow wallclock tests poll real goroutine progress against wall-clock deadlines

import (
	"testing"
	"time"

	"eventspace/internal/pastset"
	"eventspace/internal/paths"
	"eventspace/internal/vnet"
)

// toggleChild is a wrapper whose failure mode the test flips at will.
type toggleChild struct {
	host *vnet.Host
	err  error
	ops  int
}

func (c *toggleChild) Name() string     { return "toggle" }
func (c *toggleChild) Host() *vnet.Host { return c.host }
func (c *toggleChild) Op(ctx *paths.Ctx, req paths.Request) (paths.Reply, error) {
	c.ops++
	if c.err != nil {
		return paths.Reply{}, c.err
	}
	return paths.Reply{Ret: 1, Data: []byte{9}}, nil
}

func TestGuardStateMachine(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	child := &toggleChild{host: h}
	pol := &HealthPolicy{DeadAfter: 2, ProbeBase: 2 * time.Millisecond, ProbeMax: 4 * time.Millisecond}
	g := newGuard("g", h.Name(), h, child, pol)

	// Healthy: ops pass through, state alive.
	if rep, err := g.Op(nil, paths.Request{Kind: paths.OpRead}); err != nil || rep.Ret != 1 {
		t.Fatalf("healthy op: %+v, %v", rep, err)
	}
	if g.State() != Alive {
		t.Fatalf("state = %v", g.State())
	}

	// First transport fault: absorbed, suspect. Second: dead.
	child.err = vnet.ErrTimeout
	if rep, err := g.Op(nil, paths.Request{Kind: paths.OpRead}); err != nil || rep.Ret != 0 {
		t.Fatalf("fault op: %+v, %v", rep, err)
	}
	if g.State() != Suspect {
		t.Fatalf("after 1 fault: %v", g.State())
	}
	g.Op(nil, paths.Request{Kind: paths.OpRead})
	if g.State() != Dead {
		t.Fatalf("after 2 faults: %v", g.State())
	}

	// While dead and before the probe time, ops are skipped entirely.
	before := child.ops
	g.Op(nil, paths.Request{Kind: paths.OpRead})
	if child.ops != before {
		t.Fatal("dead child attempted before probe time")
	}
	snap := g.snapshot()
	if snap.Skips == 0 || snap.Faults != 2 || snap.State != Dead {
		t.Fatalf("snapshot = %+v", snap)
	}

	// At probe time exactly one attempt goes through; a failed probe
	// re-arms the (doubled, capped) backoff.
	time.Sleep(3 * time.Millisecond)
	g.Op(nil, paths.Request{Kind: paths.OpRead})
	if child.ops != before+1 {
		t.Fatalf("probe attempts = %d, want 1", child.ops-before)
	}
	g.Op(nil, paths.Request{Kind: paths.OpRead}) // still before next probe
	if child.ops != before+1 {
		t.Fatal("second attempt before backed-off probe time")
	}

	// The child heals; the next probe recovers it.
	child.err = nil
	time.Sleep(5 * time.Millisecond)
	if rep, err := g.Op(nil, paths.Request{Kind: paths.OpRead}); err != nil || rep.Ret != 1 {
		t.Fatalf("recovery op: %+v, %v", rep, err)
	}
	snap = g.snapshot()
	if snap.State != Alive || snap.Fails != 0 || snap.Recoveries != 1 {
		t.Fatalf("after recovery: %+v", snap)
	}
}

func TestGuardPropagatesApplicationErrors(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	child := &toggleChild{host: h, err: &paths.RemoteError{Msg: "bad request"}}
	g := newGuard("g", h.Name(), h, child, &HealthPolicy{})
	if _, err := g.Op(nil, paths.Request{Kind: paths.OpRead}); !paths.IsRemote(err) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	// Application errors are not health signals.
	if g.State() != Alive || g.snapshot().Faults != 0 {
		t.Fatalf("app error changed health: %+v", g.snapshot())
	}
}

// pullUntil pulls the scope until cond holds or the deadline passes.
func pullUntil(t *testing.T, s *Scope, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		s.Pull(nil)
		time.Sleep(500 * time.Microsecond)
	}
	return cond()
}

func TestScopeCoverageDipsAndRecovers(t *testing.T) {
	r := newRig(t)
	good, bad := r.c1.Hosts()[0], r.c2.Hosts()[1]
	eGood := pastset.MustNewElement("good", 64)
	eBad := pastset.MustNewElement("bad", 64)
	fill(t, eGood, []byte{1})
	fill(t, eBad, []byte{2})
	scope, err := Build(r.net, Spec{
		Name:     "cov",
		FrontEnd: r.fe,
		Sources: []Source{
			{Host: good, Elem: eGood, RecSize: 1},
			{Host: bad, Elem: eBad, RecSize: 1},
		},
		Health: &HealthPolicy{DeadAfter: 2, ProbeBase: time.Millisecond, ProbeMax: 4 * time.Millisecond},
		Retry:  &paths.RetryPolicy{MaxAttempts: 2, BaseBackoff: 50 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()

	rep, err := scope.Pull(nil)
	if err != nil || rep.Ret != 2 {
		t.Fatalf("healthy pull: %+v, %v", rep, err)
	}
	if cov := scope.Coverage(); !cov.Complete() || cov.Expected != 2 {
		t.Fatalf("healthy coverage: %+v", cov)
	}

	// Crash the host behind one source: pulls keep succeeding on partial
	// data and coverage reports the gap.
	r.net.InjectFaults(vnet.FaultPlan{
		CallTimeout: 200 * time.Microsecond,
		Events:      []vnet.FaultEvent{{Kind: vnet.FaultCrash, Host: bad.Name()}},
	})
	if !pullUntil(t, scope, 5*time.Second, func() bool { return !scope.Coverage().Complete() }) {
		t.Fatalf("coverage never dipped: %+v", scope.Coverage())
	}
	cov := scope.Coverage()
	if cov.Reporting != 1 || len(cov.Missing) != 1 || cov.Missing[0] != bad.Name() {
		t.Fatalf("degraded coverage: %+v", cov)
	}
	// The gather itself still succeeds — that is the whole point.
	if _, err := scope.Pull(nil); err != nil {
		t.Fatalf("degraded pull failed: %v", err)
	}

	// Data written while the host is down survives in its source buffer.
	fill(t, eBad, []byte{3})

	// Heal: probes redial, the guard recovers, and the missed record is
	// delivered on the first successful pull (cursor persistence).
	r.net.ClearFaults()
	r.net.InjectFaults(vnet.FaultPlan{
		Events: []vnet.FaultEvent{{Kind: vnet.FaultRestart, Host: bad.Name()}},
	})
	sawMissed := false
	recovered := pullUntil(t, scope, 10*time.Second, func() bool {
		rep, err := scope.Pull(nil)
		if err == nil {
			for _, b := range rep.Data {
				if b == 3 {
					sawMissed = true
				}
			}
		}
		return sawMissed && scope.Coverage().Complete()
	})
	if !recovered {
		t.Fatalf("no recovery: coverage %+v, sawMissed %v, health %+v",
			scope.Coverage(), sawMissed, scope.Health())
	}
	var recoveries uint64
	for _, h := range scope.Health() {
		recoveries += h.Recoveries
	}
	if recoveries == 0 {
		t.Fatalf("no guard recorded a recovery: %+v", scope.Health())
	}
	r.net.ClearFaults()
}

func TestScopeWithoutHealthStillFailsFast(t *testing.T) {
	r := newRig(t)
	h := r.c1.Hosts()[0]
	e := pastset.MustNewElement("x", 8)
	fill(t, e, []byte{1})
	scope, err := Build(r.net, Spec{
		Name:     "legacy",
		FrontEnd: r.fe,
		Sources:  []Source{{Host: h, Elem: e, RecSize: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer scope.Close()
	if _, err := scope.Pull(nil); err != nil {
		t.Fatal(err)
	}
	r.net.InjectFaults(vnet.FaultPlan{
		CallTimeout: 200 * time.Microsecond,
		Events:      []vnet.FaultEvent{{Kind: vnet.FaultCrash, Host: h.Name()}},
	})
	defer r.net.ClearFaults()
	failed := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !failed {
		_, err := scope.Pull(nil)
		failed = err != nil
	}
	if !failed {
		t.Fatal("legacy scope never surfaced the fault")
	}
	// Legacy scopes report blanket coverage: no guards, nothing missing.
	if cov := scope.Coverage(); !cov.Complete() {
		t.Fatalf("legacy coverage: %+v", cov)
	}
	if len(scope.Health()) != 0 {
		t.Fatal("legacy scope has guards")
	}
}
