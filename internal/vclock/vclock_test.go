package vclock

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// withClock runs fn under an enabled clock and tears down cleanly.
func withClock(t *testing.T, fn func()) {
	t.Helper()
	Enable(0)
	defer func() {
		if !Quiesce(5 * time.Second) {
			t.Error("model did not quiesce")
		}
		Disable()
	}()
	fn()
}

func TestEnableDisable(t *testing.T) {
	if Active() {
		t.Fatal("clock active before Enable")
	}
	Enable(42)
	if !Active() || Now() != 42 {
		t.Fatalf("after Enable: active=%v now=%d", Active(), Now())
	}
	Disable()
	if Active() {
		t.Fatal("clock active after Disable")
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	withClock(t, func() {
		done := make(chan int64, 1)
		Go(func() {
			Sleep(5 * time.Millisecond)
			done <- Now()
		})
		if got := <-done; got != int64(5*time.Millisecond) {
			t.Errorf("Now after 5ms sleep = %d", got)
		}
	})
}

func TestSleepZeroOrNegative(t *testing.T) {
	withClock(t, func() {
		done := make(chan struct{})
		Go(func() {
			Sleep(0)
			Sleep(-time.Second)
			close(done)
		})
		<-done
		if Now() != 0 {
			t.Errorf("Now = %d after zero sleeps", Now())
		}
	})
}

func TestSleepersWakeInDeadlineOrder(t *testing.T) {
	withClock(t, func() {
		var mu sync.Mutex
		var order []int
		wg := NewWaitGroup()
		delays := []time.Duration{30, 10, 20, 50, 40}
		for i, d := range delays {
			i, d := i, d
			wg.Add(1)
			Go(func() {
				defer wg.Done()
				Sleep(d * time.Millisecond)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		done := make(chan struct{})
		Go(func() {
			wg.Wait()
			close(done)
		})
		<-done
		want := []int{1, 2, 0, 4, 3} // sorted by delay
		for i := range want {
			if order[i] != want[i] {
				t.Errorf("wake order = %v, want %v", order, want)
				return
			}
		}
		if Now() != int64(50*time.Millisecond) {
			t.Errorf("Now = %d", Now())
		}
	})
}

func TestVirtualRunsFasterThanRealTime(t *testing.T) {
	start := time.Now()
	withClock(t, func() {
		done := make(chan struct{})
		Go(func() {
			for i := 0; i < 1000; i++ {
				Sleep(time.Millisecond)
			}
			close(done)
		})
		<-done
	})
	// One virtual second must complete in far less than real time.
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("1s of virtual time took %v of real time", el)
	}
}

func TestCondTransfersRunnability(t *testing.T) {
	withClock(t, func() {
		var mu sync.Mutex
		cond := NewCond(&mu)
		ready := false
		got := make(chan int64, 1)
		Go(func() {
			mu.Lock()
			for !ready {
				cond.Wait()
			}
			mu.Unlock()
			got <- Now()
		})
		Go(func() {
			Sleep(3 * time.Millisecond)
			mu.Lock()
			ready = true
			cond.Broadcast()
			mu.Unlock()
		})
		if ts := <-got; ts != int64(3*time.Millisecond) {
			t.Errorf("waiter woke at %d", ts)
		}
	})
}

func TestCondSignalWakesOne(t *testing.T) {
	withClock(t, func() {
		var mu sync.Mutex
		cond := NewCond(&mu)
		tokens := 0
		var woken atomic.Int32
		wg := NewWaitGroup()
		for i := 0; i < 3; i++ {
			wg.Add(1)
			Go(func() {
				defer wg.Done()
				mu.Lock()
				for tokens == 0 {
					cond.Wait()
				}
				tokens--
				mu.Unlock()
				woken.Add(1)
			})
		}
		Go(func() {
			Sleep(time.Millisecond)
			for i := 0; i < 3; i++ {
				mu.Lock()
				tokens++
				cond.Signal()
				mu.Unlock()
				Sleep(time.Millisecond)
			}
		})
		done := make(chan struct{})
		Go(func() { wg.Wait(); close(done) })
		<-done
		if woken.Load() != 3 {
			t.Errorf("woken = %d", woken.Load())
		}
	})
}

func TestSemSerializesContention(t *testing.T) {
	withClock(t, func() {
		sem := NewSem(1)
		end := make(chan int64, 1)
		wg := NewWaitGroup()
		for i := 0; i < 4; i++ {
			wg.Add(1)
			Go(func() {
				defer wg.Done()
				sem.Acquire()
				Sleep(10 * time.Millisecond)
				sem.Release()
			})
		}
		Go(func() {
			wg.Wait()
			end <- Now()
		})
		// 4 occupations of 10ms on one slot take exactly 40ms.
		if ts := <-end; ts != int64(40*time.Millisecond) {
			t.Errorf("end = %v", time.Duration(ts))
		}
	})
}

func TestSemParallelSlots(t *testing.T) {
	withClock(t, func() {
		sem := NewSem(2)
		end := make(chan int64, 1)
		wg := NewWaitGroup()
		for i := 0; i < 4; i++ {
			wg.Add(1)
			Go(func() {
				defer wg.Done()
				sem.Acquire()
				Sleep(10 * time.Millisecond)
				sem.Release()
			})
		}
		Go(func() {
			wg.Wait()
			end <- Now()
		})
		if ts := <-end; ts != int64(20*time.Millisecond) {
			t.Errorf("end = %v", time.Duration(ts))
		}
	})
}

func TestEventDelivery(t *testing.T) {
	withClock(t, func() {
		ev := NewEvent()
		got := make(chan string, 1)
		Go(func() {
			val, err := ev.Wait()
			if err != nil {
				got <- "err"
				return
			}
			got <- string(val)
		})
		Go(func() {
			Sleep(time.Millisecond)
			ev.Fire([]byte("hi"), nil)
			ev.Fire([]byte("ignored"), nil) // second fire loses
		})
		if v := <-got; v != "hi" {
			t.Errorf("event value = %q", v)
		}
	})
}

func TestEventFireBeforeWait(t *testing.T) {
	ev := NewEvent()
	ev.Fire([]byte("early"), nil)
	v, err := ev.Wait()
	if err != nil || string(v) != "early" {
		t.Fatalf("Wait = %q, %v", v, err)
	}
}

func TestQueueFIFOAndClose(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 3; i++ {
		if err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d, %v", v, ok)
		}
	}
	q.Push(9)
	rest := q.Close()
	if len(rest) != 1 || rest[0] != 9 {
		t.Fatalf("Close drained %v", rest)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop succeeded after close")
	}
	if err := q.Push(1); err != ErrClosed {
		t.Fatalf("Push after close: %v", err)
	}
	if !q.Closed() {
		t.Fatal("Closed() = false")
	}
	if q.Close() != nil {
		t.Fatal("second Close returned items")
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	withClock(t, func() {
		q := NewQueue[int]()
		got := make(chan int64, 1)
		Go(func() {
			v, ok := q.Pop()
			if !ok || v != 7 {
				got <- -1
				return
			}
			got <- Now()
		})
		Go(func() {
			Sleep(2 * time.Millisecond)
			q.Push(7)
		})
		if ts := <-got; ts != int64(2*time.Millisecond) {
			t.Errorf("pop completed at %v", time.Duration(ts))
		}
	})
}

func TestRegisterUnregister(t *testing.T) {
	withClock(t, func() {
		done := make(chan struct{})
		go func() { // plain goroutine joining the model explicitly
			Register()
			defer Unregister()
			Sleep(time.Millisecond)
			close(done)
		}()
		<-done
		if Now() != int64(time.Millisecond) {
			t.Errorf("Now = %d", Now())
		}
	})
}

func TestIdleModelFreezesTime(t *testing.T) {
	withClock(t, func() {
		var mu sync.Mutex
		cond := NewCond(&mu)
		release := false
		done := make(chan struct{})
		Go(func() {
			mu.Lock()
			for !release {
				cond.Wait()
			}
			mu.Unlock()
			close(done)
		})
		time.Sleep(10 * time.Millisecond) // real time passes; model is idle
		if Now() != 0 {
			t.Errorf("virtual time advanced to %d while idle", Now())
		}
		mu.Lock()
		release = true
		cond.Broadcast()
		mu.Unlock()
		<-done
	})
}

func TestDisabledPrimitivesBehavePlain(t *testing.T) {
	// All primitives must work as ordinary sync types without the clock.
	sem := NewSem(1)
	sem.Acquire()
	released := make(chan struct{})
	go func() {
		sem.Acquire()
		close(released)
	}()
	time.Sleep(time.Millisecond)
	sem.Release()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Sem broken without clock")
	}
	sem.Release()

	wg := NewWaitGroup()
	wg.Add(2)
	go wg.Done()
	go wg.Done()
	wg.Wait()
}

func TestQuickHeapOrdering(t *testing.T) {
	f := func(raw []int16) bool {
		var h timerHeap
		for _, v := range raw {
			h.push(timer{when: int64(v)})
		}
		last := int64(-1 << 62)
		for len(h) > 0 {
			tm := h.pop()
			if tm.when < last {
				return false
			}
			last = tm.when
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicTiming runs the same random sleep schedule twice and
// requires identical completion times. Virtual timing depends only on the
// model: without contention ties (several goroutines racing for a
// resource at the same virtual instant) a schedule is fully
// deterministic. The contended case is exercised separately in
// TestSemSerializesContention, whose total is exact regardless of
// acquisition order.
func TestDeterministicTiming(t *testing.T) {
	run := func() int64 {
		Enable(0)
		defer Disable()
		rng := rand.New(rand.NewSource(99))
		wg := NewWaitGroup()
		for i := 0; i < 20; i++ {
			d := time.Duration(rng.Intn(1000)+1) * time.Microsecond
			wg.Add(1)
			Go(func() {
				defer wg.Done()
				Sleep(d)
				Sleep(d)
				Sleep(d / 2)
			})
		}
		end := make(chan int64, 1)
		Go(func() {
			wg.Wait()
			end <- Now()
		})
		v := <-end
		Quiesce(5 * time.Second)
		return v
	}
	a := run()
	b := run()
	if a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestStatsAndQuiesce(t *testing.T) {
	Enable(0)
	block := make(chan struct{})
	Go(func() { <-block }) // deliberately invisible blocking
	if _, _, live, _ := Stats(); live != 1 {
		t.Fatalf("live = %d", live)
	}
	if Quiesce(50 * time.Millisecond) {
		t.Fatal("Quiesce succeeded with a live goroutine")
	}
	close(block)
	if !Quiesce(5 * time.Second) {
		t.Fatal("Quiesce failed after release")
	}
	Disable()
}

func TestSleepOutsideWaitsForRunnableModelGoroutines(t *testing.T) {
	withClock(t, func() {
		// The driver (this goroutine, unregistered) parks on an outside
		// timer while a model goroutine still has virtual work pending.
		// The clock must not advance past the worker: by the time the
		// outside sleep returns, the worker's shorter deadline has fired.
		var workerWoke atomic.Bool
		Go(func() {
			Sleep(5 * time.Millisecond)
			workerWoke.Store(true)
		})
		SleepOutside(10 * time.Millisecond)
		if !workerWoke.Load() {
			t.Error("outside sleeper returned before the model goroutine ran")
		}
		if now := Now(); now != int64(10*time.Millisecond) {
			t.Errorf("virtual now = %d, want 10ms", now)
		}
		if _, running, _, _ := Stats(); running != 0 {
			t.Errorf("running = %d after outside sleep, want 0", running)
		}
	})
}

func TestSleepOutsideIdleModelJumps(t *testing.T) {
	withClock(t, func() {
		// With no registered goroutines at all, the outside timer is the
		// only event: the clock jumps straight to the deadline.
		start := time.Now()
		SleepOutside(time.Second)
		if real := time.Since(start); real > 100*time.Millisecond {
			t.Errorf("outside sleep of idle model took %v real time", real)
		}
		if now := Now(); now != int64(time.Second) {
			t.Errorf("virtual now = %d, want 1s", now)
		}
	})
}

func TestSleepOutsideDisabledReturns(t *testing.T) {
	SleepOutside(time.Hour) // clock inactive: must not block
}
